package wage

import (
	"math"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// traceWith builds a minimal trace: post, start at t0, submit at t1, pay.
func traceWith(events ...eventlog.Event) *eventlog.Log {
	l := eventlog.New()
	for _, e := range events {
		l.MustAppend(e)
	}
	return l
}

func TestFromLogSingleEpisode(t *testing.T) {
	l := traceWith(
		eventlog.Event{Time: 0, Type: eventlog.TaskPosted, Task: "t1", Requester: "r1"},
		eventlog.Event{Time: 1, Type: eventlog.TaskStarted, Task: "t1", Worker: "w1"},
		eventlog.Event{Time: 7, Type: eventlog.TaskSubmitted, Task: "t1", Worker: "w1", Contribution: "c1"},
		eventlog.Event{Time: 8, Type: eventlog.PaymentIssued, Task: "t1", Worker: "w1", Contribution: "c1", Amount: 3},
	)
	rep := FromLog(l)
	if len(rep.Episodes) != 1 {
		t.Fatalf("episodes = %d", len(rep.Episodes))
	}
	ep := rep.Episodes[0]
	if ep.Duration() != 6 || ep.Earned != 3 || ep.Requester != "r1" {
		t.Fatalf("episode = %+v", ep)
	}
	// 3 earned over 6 ticks = 0.5/tick = 6/hour at 12 ticks/hour.
	w, ok := rep.RequesterWage("r1")
	if !ok || math.Abs(w-6) > 1e-9 {
		t.Fatalf("requester wage = %v, %v", w, ok)
	}
	if est := rep.ByWorker["w1"]; est.HourlyWage() != w {
		t.Fatalf("worker wage = %v", est.HourlyWage())
	}
}

func TestFromLogUnpaidAndInterrupted(t *testing.T) {
	l := traceWith(
		eventlog.Event{Time: 0, Type: eventlog.TaskPosted, Task: "t1", Requester: "r1"},
		eventlog.Event{Time: 1, Type: eventlog.TaskStarted, Task: "t1", Worker: "paid"},
		eventlog.Event{Time: 1, Type: eventlog.TaskStarted, Task: "t1", Worker: "cut"},
		eventlog.Event{Time: 5, Type: eventlog.TaskSubmitted, Task: "t1", Worker: "paid", Contribution: "c1"},
		eventlog.Event{Time: 5, Type: eventlog.TaskInterrupted, Task: "t1", Worker: "cut"},
		eventlog.Event{Time: 6, Type: eventlog.PaymentIssued, Task: "t1", Worker: "paid", Contribution: "c1", Amount: 2},
	)
	rep := FromLog(l)
	if len(rep.Episodes) != 2 {
		t.Fatalf("episodes = %d", len(rep.Episodes))
	}
	est := rep.ByRequester["r1"]
	if est.Episodes != 2 || est.PaidEpisodes != 1 {
		t.Fatalf("estimate = %+v", est)
	}
	// The interrupted worker's time counts: 2 earned over 8 ticks total.
	want := 2.0 / (8.0 / TicksPerHour)
	if math.Abs(est.HourlyWage()-want) > 1e-9 {
		t.Fatalf("wage = %v, want %v", est.HourlyWage(), want)
	}
	if est.PaidRate() != 0.5 {
		t.Fatalf("paid rate = %v", est.PaidRate())
	}
	// The interruption must depress the wage vs the paid-only counterfactual.
	paidOnly := 2.0 / (4.0 / TicksPerHour)
	if est.HourlyWage() >= paidOnly {
		t.Fatal("interrupted time did not depress the wage")
	}
}

func TestFromLogIgnoresOpenEpisodes(t *testing.T) {
	l := traceWith(
		eventlog.Event{Time: 0, Type: eventlog.TaskPosted, Task: "t1", Requester: "r1"},
		eventlog.Event{Time: 1, Type: eventlog.TaskStarted, Task: "t1", Worker: "w1"},
	)
	rep := FromLog(l)
	if len(rep.Episodes) != 0 {
		t.Fatalf("open episode counted: %v", rep.Episodes)
	}
	if _, ok := rep.RequesterWage("r1"); ok {
		t.Fatal("wage reported with no finished episodes")
	}
}

func TestFromLogMinimumDuration(t *testing.T) {
	l := traceWith(
		eventlog.Event{Time: 0, Type: eventlog.TaskPosted, Task: "t1", Requester: "r1"},
		eventlog.Event{Time: 1, Type: eventlog.TaskStarted, Task: "t1", Worker: "w1"},
		eventlog.Event{Time: 1, Type: eventlog.TaskSubmitted, Task: "t1", Worker: "w1", Contribution: "c1"},
	)
	rep := FromLog(l)
	if rep.Episodes[0].Duration() != 1 {
		t.Fatalf("instant episode duration = %d, want clamped 1", rep.Episodes[0].Duration())
	}
}

func TestRankRequesters(t *testing.T) {
	l := traceWith(
		eventlog.Event{Time: 0, Type: eventlog.TaskPosted, Task: "cheap", Requester: "stingy"},
		eventlog.Event{Time: 0, Type: eventlog.TaskPosted, Task: "rich", Requester: "generous"},
		eventlog.Event{Time: 1, Type: eventlog.TaskStarted, Task: "cheap", Worker: "w1"},
		eventlog.Event{Time: 1, Type: eventlog.TaskStarted, Task: "rich", Worker: "w2"},
		eventlog.Event{Time: 5, Type: eventlog.TaskSubmitted, Task: "cheap", Worker: "w1", Contribution: "c1"},
		eventlog.Event{Time: 5, Type: eventlog.TaskSubmitted, Task: "rich", Worker: "w2", Contribution: "c2"},
		eventlog.Event{Time: 6, Type: eventlog.PaymentIssued, Task: "cheap", Worker: "w1", Contribution: "c1", Amount: 1},
		eventlog.Event{Time: 6, Type: eventlog.PaymentIssued, Task: "rich", Worker: "w2", Contribution: "c2", Amount: 5},
	)
	rep := FromLog(l)
	rank := rep.RankRequesters()
	if len(rank) != 2 || rank[0] != "generous" || rank[1] != "stingy" {
		t.Fatalf("rank = %v", rank)
	}
}

func TestFromLogOnSimulatedTrace(t *testing.T) {
	rng := stats.NewRNG(21)
	pop := workload.GeneratePopulation(workload.PopulationSpec{Workers: 30}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{Tasks: 20, Quota: 2}, pop, rng.Split())
	res, err := sim.Run(sim.Config{Population: pop, Batch: batch, Rounds: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	rep := FromLog(res.Log)
	if len(rep.Episodes) == 0 {
		t.Fatal("no episodes from simulated trace")
	}
	// Totals must reconcile with the ledger: every payment belongs to an
	// episode.
	var earned float64
	for _, ep := range rep.Episodes {
		earned += ep.Earned
	}
	if diff := math.Abs(earned - res.Ledger.Total()); diff > 1e-9 {
		t.Fatalf("episode earnings %v vs ledger %v", earned, res.Ledger.Total())
	}
	for _, id := range rep.RankRequesters() {
		w, ok := rep.RequesterWage(id)
		if !ok || w < 0 {
			t.Fatalf("requester %s wage = %v, %v", id, w, ok)
		}
	}
}

// A second TaskStarted for an already-open (worker, task) episode must not
// silently discard the first attempt's worked time: the prior episode is
// closed as interrupted at the restart time.
func TestFromLogRestartClosesPriorEpisode(t *testing.T) {
	l := traceWith(
		eventlog.Event{Time: 0, Type: eventlog.TaskPosted, Task: "t1", Requester: "r1"},
		eventlog.Event{Time: 1, Type: eventlog.TaskStarted, Task: "t1", Worker: "w1"},
		eventlog.Event{Time: 5, Type: eventlog.TaskStarted, Task: "t1", Worker: "w1"}, // restart
		eventlog.Event{Time: 8, Type: eventlog.TaskSubmitted, Task: "t1", Worker: "w1", Contribution: "c1"},
		eventlog.Event{Time: 9, Type: eventlog.PaymentIssued, Task: "t1", Worker: "w1", Contribution: "c1", Amount: 6},
	)
	rep := FromLog(l)
	if len(rep.Episodes) != 2 {
		t.Fatalf("episodes = %d, want 2 (interrupted first attempt + paid second)", len(rep.Episodes))
	}
	first, second := rep.Episodes[0], rep.Episodes[1]
	if !first.Interrupted || first.Started != 1 || first.Ended != 5 || first.Earned != 0 {
		t.Fatalf("first attempt = %+v", first)
	}
	if second.Interrupted || second.Started != 5 || second.Ended != 8 || second.Earned != 6 {
		t.Fatalf("second attempt = %+v", second)
	}
	// All 7 worked ticks count toward the requester's wage estimate:
	// 6 earned over 7 ticks at 12 ticks/hour.
	est := rep.ByRequester["r1"]
	if est == nil || est.TotalTicks != 7 || est.Episodes != 2 || est.PaidEpisodes != 1 {
		t.Fatalf("requester estimate = %+v", est)
	}
	w, ok := rep.RequesterWage("r1")
	if !ok || math.Abs(w-6.0/(7.0/TicksPerHour)) > 1e-9 {
		t.Fatalf("requester wage = %v, %v", w, ok)
	}
}
