// Package wage estimates expected hourly wages from platform traces — the
// service that Crowd-Workers (Callison-Burch 2014) and Turkbench (Hanrahan
// et al. 2015) provide externally and that §2.2 cites as worker-built
// transparency infrastructure. Here it is a first-class platform feature:
// the estimates computed from the trace are exactly what a compliant
// platform binds to the requester.hourly_wage disclosure field.
//
// Estimation is trace-based: for every (worker, task) episode the work
// duration is the span from TaskStarted to TaskSubmitted, and the earning
// is the PaymentIssued amount for the resulting contribution. Hourly wage
// is total earnings over total worked time, aggregated per requester, per
// task, or per worker. Unpaid episodes count their time (that is the
// point: rejection and interruption depress the real wage).
package wage

import (
	"fmt"
	"sort"

	"repro/internal/eventlog"
	"repro/internal/model"
)

// TicksPerHour converts the simulator's logical ticks to hours for wage
// reporting. The simulator advances one tick per work step; the calibration
// of 12 ticks/hour (5-minute microtasks) matches the AMT microtask setting
// the paper's examples assume. Estimates scale linearly in this constant,
// so comparisons between requesters are unaffected by its choice.
const TicksPerHour = 12

// Episode is one reconstructed unit of work.
type Episode struct {
	Worker    model.WorkerID
	Task      model.TaskID
	Requester model.RequesterID
	// Started and Ended are the logical timestamps of the episode; Ended
	// is the submission or interruption time.
	Started, Ended int64
	// Earned is the payment received for the episode (0 if unpaid).
	Earned float64
	// Interrupted marks episodes ended by cancellation (Axiom 5 events).
	Interrupted bool
}

// Duration returns the episode's length in ticks (at least 1, so instant
// submissions in coarse traces still count some effort).
func (e Episode) Duration() int64 {
	d := e.Ended - e.Started
	if d < 1 {
		return 1
	}
	return d
}

// Estimate is an aggregated hourly-wage figure.
type Estimate struct {
	// Episodes is the number of work episodes aggregated.
	Episodes int
	// PaidEpisodes is how many of them earned anything.
	PaidEpisodes int
	// TotalEarned and TotalTicks are the aggregation inputs.
	TotalEarned float64
	TotalTicks  int64
}

// HourlyWage returns earnings per hour of worked time (0 if no time).
func (e Estimate) HourlyWage() float64 {
	if e.TotalTicks == 0 {
		return 0
	}
	return e.TotalEarned / (float64(e.TotalTicks) / TicksPerHour)
}

// PaidRate returns the share of episodes that earned anything.
func (e Estimate) PaidRate() float64 {
	if e.Episodes == 0 {
		return 0
	}
	return float64(e.PaidEpisodes) / float64(e.Episodes)
}

// String renders the estimate for reports.
func (e Estimate) String() string {
	return fmt.Sprintf("%.3f/hour over %d episodes (%.0f%% paid)",
		e.HourlyWage(), e.Episodes, e.PaidRate()*100)
}

// Report holds the per-requester, per-task, and per-worker estimates
// reconstructed from one trace.
type Report struct {
	ByRequester map[model.RequesterID]*Estimate
	ByTask      map[model.TaskID]*Estimate
	ByWorker    map[model.WorkerID]*Estimate
	Episodes    []Episode
}

// FromLog reconstructs work episodes and wage estimates from a trace.
// Episodes still open at the end of the trace are ignored (their outcome is
// unknown); interrupted episodes are included as unpaid work.
func FromLog(log *eventlog.Log) *Report {
	type key struct {
		w model.WorkerID
		t model.TaskID
	}
	rep := &Report{
		ByRequester: make(map[model.RequesterID]*Estimate),
		ByTask:      make(map[model.TaskID]*Estimate),
		ByWorker:    make(map[model.WorkerID]*Estimate),
	}
	open := make(map[key]*Episode)
	taskOwner := make(map[model.TaskID]model.RequesterID)
	// Payments may follow submissions; index finished episodes by
	// contribution for the payment pass.
	byContribution := make(map[model.ContributionID]int) // index into rep.Episodes

	for _, e := range log.Events() {
		switch e.Type {
		case eventlog.TaskPosted:
			taskOwner[e.Task] = e.Requester
		case eventlog.TaskStarted:
			k := key{e.Worker, e.Task}
			if ep, ok := open[k]; ok {
				// A second start for an already-open episode means the first
				// attempt never concluded in the trace. Close it as
				// interrupted at the restart time instead of silently
				// overwriting its start — otherwise the time worked on the
				// first attempt vanishes from every estimate.
				ep.Ended = e.Time
				ep.Interrupted = true
				rep.Episodes = append(rep.Episodes, *ep)
			}
			open[k] = &Episode{
				Worker: e.Worker, Task: e.Task,
				Requester: taskOwner[e.Task], Started: e.Time,
			}
		case eventlog.TaskSubmitted:
			k := key{e.Worker, e.Task}
			if ep, ok := open[k]; ok {
				ep.Ended = e.Time
				rep.Episodes = append(rep.Episodes, *ep)
				if e.Contribution != "" {
					byContribution[e.Contribution] = len(rep.Episodes) - 1
				}
				delete(open, k)
			}
		case eventlog.TaskInterrupted:
			k := key{e.Worker, e.Task}
			if ep, ok := open[k]; ok {
				ep.Ended = e.Time
				ep.Interrupted = true
				rep.Episodes = append(rep.Episodes, *ep)
				delete(open, k)
			}
		case eventlog.PaymentIssued:
			if idx, ok := byContribution[e.Contribution]; ok {
				rep.Episodes[idx].Earned += e.Amount
			}
		}
	}

	for _, ep := range rep.Episodes {
		addTo := func(est *Estimate) {
			est.Episodes++
			if ep.Earned > 0 {
				est.PaidEpisodes++
			}
			est.TotalEarned += ep.Earned
			est.TotalTicks += ep.Duration()
		}
		if ep.Requester != "" {
			if rep.ByRequester[ep.Requester] == nil {
				rep.ByRequester[ep.Requester] = &Estimate{}
			}
			addTo(rep.ByRequester[ep.Requester])
		}
		if rep.ByTask[ep.Task] == nil {
			rep.ByTask[ep.Task] = &Estimate{}
		}
		addTo(rep.ByTask[ep.Task])
		if rep.ByWorker[ep.Worker] == nil {
			rep.ByWorker[ep.Worker] = &Estimate{}
		}
		addTo(rep.ByWorker[ep.Worker])
	}
	return rep
}

// RequesterWage returns the hourly-wage estimate for a requester, suitable
// for binding to the requester.hourly_wage disclosure field. The boolean is
// false when the trace has no episodes for the requester.
func (r *Report) RequesterWage(id model.RequesterID) (float64, bool) {
	est, ok := r.ByRequester[id]
	if !ok {
		return 0, false
	}
	return est.HourlyWage(), true
}

// RankRequesters returns requester ids sorted by descending hourly wage —
// the browse-time ranking Turkbench renders for workers.
func (r *Report) RankRequesters() []model.RequesterID {
	ids := make([]model.RequesterID, 0, len(r.ByRequester))
	for id := range r.ByRequester {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		wi := r.ByRequester[ids[i]].HourlyWage()
		wj := r.ByRequester[ids[j]].HourlyWage()
		if wi != wj {
			return wi > wj
		}
		return ids[i] < ids[j]
	})
	return ids
}
