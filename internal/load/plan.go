// Package load is the SLO-driven serving load harness: it materialises
// seed-deterministic HTTP request plans over the crowdfair API, replays
// them closed- or open-loop against a serve.Server, and checks the
// resulting state against a serially-applied oracle.
//
// Plans are deterministic by construction, not by locking:
//
//   - every measured mutation references only seed-phase entities, so a
//     shed or reordered request can never cascade into a dangling
//     reference for a later one;
//   - worker updates write values that are pure functions of the worker id,
//     so any application order (including duplicate folding inside a
//     coalesced batch) converges to the same final state;
//   - contributions carry plan-assigned SubmittedAt stamps and unique
//     plan-assigned ids;
//   - offers and contributions draw workers from disjoint halves of the
//     population, so no (task, worker) pair is both offered and submitted
//     during measurement — the event multiset, not its order, decides the
//     temporal axioms' verdicts.
//
// A full closed-loop replay therefore ends in the same store and trace
// contents as a serial replay of the same plan, and the final audit
// fingerprint must match Oracle()'s — the equality the -race serving gate
// and the servebench determinism check both assert.
package load

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/crowdfair"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Endpoint labels, the keys latency is aggregated under.
const (
	EpContribution = "POST /v1/contributions"
	EpWorkerUpdate = "PUT /v1/workers/{id}"
	EpOffer        = "POST /v1/offers"
	EpAudit        = "GET /v1/audit"
	EpStats        = "GET /statsz"
)

// Request is one planned HTTP request: the wire form plus the decoded
// mutation the serial oracle replays.
type Request struct {
	Endpoint string // aggregation label (one of the Ep* constants)
	Method   string
	Path     string
	Body     []byte // JSON payload; nil for GETs

	// Exactly one of the following is non-nil for mutations; all nil for
	// reads (reads have no oracle effect).
	contrib *model.Contribution
	worker  *model.Worker
	offer   *crowdfair.Offer
}

// Mutation reports whether the request mutates platform state.
func (r *Request) Mutation() bool {
	return r.contrib != nil || r.worker != nil || r.offer != nil
}

// MixSpec parameterises a plan: seed-phase sizes plus the measured request
// mix. Fractions are of the total request count; the remainder after all
// listed fractions becomes GET /statsz probes.
type MixSpec struct {
	// Workers, Tasks, Requesters size the seed phase (defaults 200/60/4).
	Workers    int
	Tasks      int
	Requesters int
	// Requests is the measured request count (default 2000).
	Requests int
	// ContribFrac, UpdateFrac, OfferFrac, AuditFrac split the measured
	// requests by endpoint (defaults 0.55/0.15/0.15/0.10; remainder
	// /statsz).
	ContribFrac float64
	UpdateFrac  float64
	OfferFrac   float64
	AuditFrac   float64
	// Prefix namespaces every generated entity id. Distinct prefixes let
	// plans share one long-lived server without id collisions (capacity
	// probes seed a fresh namespace per trial).
	Prefix string
}

func (m MixSpec) withDefaults() MixSpec {
	if m.Workers == 0 {
		m.Workers = 200
	}
	if m.Tasks == 0 {
		m.Tasks = 60
	}
	if m.Requesters == 0 {
		m.Requesters = 4
	}
	if m.Requests == 0 {
		m.Requests = 2000
	}
	if m.ContribFrac == 0 && m.UpdateFrac == 0 && m.OfferFrac == 0 && m.AuditFrac == 0 {
		m.ContribFrac, m.UpdateFrac, m.OfferFrac, m.AuditFrac = 0.55, 0.15, 0.15, 0.10
	}
	return m
}

// Plan is a fully materialised load plan: seed-phase entities plus the
// measured request sequence. Two plans built from equal specs and seeds
// are byte-identical.
type Plan struct {
	Spec MixSpec
	Seed uint64

	Universe   *crowdfair.Universe
	Requesters []*model.Requester
	Workers    []*model.Worker
	Tasks      []*model.Task

	Requests []Request
}

// BuildPlan materialises a plan from the spec and seed. Every id, payload,
// and request ordering is a pure function of (spec, seed).
func BuildPlan(spec MixSpec, seed uint64) *Plan {
	spec = spec.withDefaults()
	rng := stats.NewRNG(seed)
	pop := workload.GeneratePopulation(workload.PopulationSpec{Workers: spec.Workers}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{Tasks: spec.Tasks, Requesters: spec.Requesters}, pop, rng.Split())
	if spec.Prefix != "" {
		for _, r := range batch.Requesters {
			r.ID = model.RequesterID(spec.Prefix + string(r.ID))
		}
		for _, w := range pop.Workers {
			w.ID = model.WorkerID(spec.Prefix + string(w.ID))
		}
		for _, t := range batch.Tasks {
			t.ID = model.TaskID(spec.Prefix + string(t.ID))
			t.Requester = model.RequesterID(spec.Prefix + string(t.Requester))
		}
	}
	p := &Plan{
		Spec:       spec,
		Seed:       seed,
		Universe:   pop.Universe,
		Requesters: batch.Requesters,
		Workers:    pop.Workers,
		Tasks:      batch.Tasks,
	}

	// Workers are split in half: contributions draw from the low half,
	// offers from the high half, so no (task, worker) pair ever carries
	// both an offer and a submission — order-sensitivity in the temporal
	// axioms cannot leak into the final report.
	half := spec.Workers / 2
	if half == 0 {
		half = 1
	}

	cum := []float64{spec.ContribFrac, spec.UpdateFrac, spec.OfferFrac, spec.AuditFrac}
	for i := 1; i < len(cum); i++ {
		cum[i] += cum[i-1]
	}
	contribSeq := 0
	for i := 0; i < spec.Requests; i++ {
		u := rng.Float64()
		switch {
		case u < cum[0]:
			w := p.Workers[rng.Intn(half)]
			t := p.Tasks[rng.Intn(len(p.Tasks))]
			c := &model.Contribution{
				ID:          model.ContributionID(fmt.Sprintf("%slc%06d", spec.Prefix, contribSeq)),
				Task:        t.ID,
				Worker:      w.ID,
				Text:        fmt.Sprintf("answer %d for %s", contribSeq, t.ID),
				Quality:     0.5 + 0.4*rng.Float64(),
				SubmittedAt: int64(contribSeq + 1),
			}
			contribSeq++
			p.Requests = append(p.Requests, Request{
				Endpoint: EpContribution,
				Method:   "POST",
				Path:     "/v1/contributions",
				Body:     mustJSON(c),
				contrib:  c,
			})
		case u < cum[1]:
			idx := rng.Intn(len(p.Workers))
			w := updatedWorker(p.Workers[idx], idx)
			p.Requests = append(p.Requests, Request{
				Endpoint: EpWorkerUpdate,
				Method:   "PUT",
				Path:     "/v1/workers/" + string(w.ID),
				Body:     mustJSON(w),
				worker:   w,
			})
		case u < cum[2]:
			w := p.Workers[half+rng.Intn(len(p.Workers)-half)]
			t := p.Tasks[rng.Intn(len(p.Tasks))]
			o := &crowdfair.Offer{Task: t.ID, Worker: w.ID}
			p.Requests = append(p.Requests, Request{
				Endpoint: EpOffer,
				Method:   "POST",
				Path:     "/v1/offers",
				Body:     mustJSON(o),
				offer:    o,
			})
		case u < cum[3]:
			p.Requests = append(p.Requests, Request{Endpoint: EpAudit, Method: "GET", Path: "/v1/audit"})
		default:
			p.Requests = append(p.Requests, Request{Endpoint: EpStats, Method: "GET", Path: "/statsz"})
		}
	}
	return p
}

// updatedWorker derives the update payload for a worker: the written
// values are pure functions of the worker's index, so every update of one
// worker — however many times and in whatever order the plan issues it —
// writes the same state, and last-write-wins cannot diverge.
func updatedWorker(w *model.Worker, idx int) *model.Worker {
	c := w.Clone()
	c.Computed[model.AttrAcceptanceRatio] = model.Num(0.50 + float64(idx%50)/100)
	c.Computed[model.AttrCompleted] = model.Num(float64(idx % 23))
	return c
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("load: marshal: %v", err))
	}
	return b
}

// Mutations counts the plan's mutation requests.
func (p *Plan) Mutations() int {
	n := 0
	for i := range p.Requests {
		if p.Requests[i].Mutation() {
			n++
		}
	}
	return n
}

// Seed applies the plan's seed phase to the platform through the batch
// entry points. It must run before the measured phase: every measured
// mutation references only these entities.
func (p *Plan) SeedPlatform(pf *crowdfair.Platform) error {
	for _, r := range p.Requesters {
		if err := pf.AddRequester(r); err != nil {
			return err
		}
	}
	if err := pf.AddWorkers(cloneWorkers(p.Workers)); err != nil {
		return err
	}
	return pf.PostTasks(cloneTasks(p.Tasks))
}

// Oracle replays the plan serially — seed phase, then every mutation in
// request order against a fresh in-memory platform — and returns the final
// audit snapshot fingerprint. A concurrent replay of the same plan that
// admitted every mutation must converge to the same fingerprint.
func (p *Plan) Oracle(cfg crowdfair.AuditConfig) (string, error) {
	pf := crowdfair.NewPlatform(p.Universe)
	if err := p.SeedPlatform(pf); err != nil {
		return "", err
	}
	for i := range p.Requests {
		r := &p.Requests[i]
		var err error
		switch {
		case r.contrib != nil:
			err = pf.RecordContribution(r.contrib.Clone())
		case r.worker != nil:
			err = pf.UpdateWorkers([]*model.Worker{r.worker.Clone()})
		case r.offer != nil:
			err = pf.Offer(r.offer.Task, r.offer.Worker)
		}
		if err != nil {
			return "", fmt.Errorf("load: oracle request %d (%s): %w", i, r.Endpoint, err)
		}
	}
	return serve.AuditFingerprint(pf.AuditIncremental(cfg)), nil
}

func cloneWorkers(ws []*model.Worker) []*model.Worker {
	out := make([]*model.Worker, len(ws))
	for i, w := range ws {
		out[i] = w.Clone()
	}
	return out
}

func cloneTasks(ts []*model.Task) []*model.Task {
	out := make([]*model.Task, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

// SLO declares the latency/error budget a run is judged against.
type SLO struct {
	// P99 is the per-endpoint p99 latency bound for admitted requests.
	P99 time.Duration `json:"p99"`
	// MaxErrorRate bounds non-2xx, non-429 responses (fraction of total).
	MaxErrorRate float64 `json:"max_error_rate"`
	// MaxShedRate bounds 429s (fraction of total): a rate the server only
	// survives by shedding is not a sustained rate. The zero value tolerates
	// no shedding.
	MaxShedRate float64 `json:"max_shed_rate"`
}
