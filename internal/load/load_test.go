package load

import (
	"reflect"
	"testing"
	"time"

	"repro/crowdfair"
	"repro/internal/workload"
)

// TestBuildPlanDeterministic is the loadgen reproducibility contract: two
// plans from equal (spec, seed) are deeply equal — ids, payload bytes,
// request ordering, everything.
func TestBuildPlanDeterministic(t *testing.T) {
	spec := MixSpec{Workers: 30, Tasks: 10, Requests: 500}
	a := BuildPlan(spec, 99)
	b := BuildPlan(spec, 99)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (spec, seed) produced different plans")
	}
	c := BuildPlan(spec, 100)
	if reflect.DeepEqual(a.Requests, c.Requests) {
		t.Fatal("different seeds produced identical request sequences")
	}
}

// TestPlanReferencesOnlySeedEntities asserts the shed-safety invariant:
// every measured mutation references seed-phase entities only, so a shed
// request can never invalidate a later one.
func TestPlanReferencesOnlySeedEntities(t *testing.T) {
	p := BuildPlan(MixSpec{Workers: 20, Tasks: 8, Requests: 600}, 7)
	workers := map[string]bool{}
	for _, w := range p.Workers {
		workers[string(w.ID)] = true
	}
	tasks := map[string]bool{}
	for _, tk := range p.Tasks {
		tasks[string(tk.ID)] = true
	}
	contribWorkers := map[string]bool{}
	offerWorkers := map[string]bool{}
	muts, reads := 0, 0
	for i := range p.Requests {
		r := &p.Requests[i]
		switch {
		case r.contrib != nil:
			muts++
			if !tasks[string(r.contrib.Task)] || !workers[string(r.contrib.Worker)] {
				t.Fatalf("request %d references non-seed entities: %+v", i, r.contrib)
			}
			contribWorkers[string(r.contrib.Worker)] = true
		case r.worker != nil:
			muts++
			if !workers[string(r.worker.ID)] {
				t.Fatalf("request %d updates non-seed worker %s", i, r.worker.ID)
			}
		case r.offer != nil:
			muts++
			if !tasks[string(r.offer.Task)] || !workers[string(r.offer.Worker)] {
				t.Fatalf("request %d offers non-seed entities: %+v", i, r.offer)
			}
			offerWorkers[string(r.offer.Worker)] = true
		default:
			reads++
		}
	}
	if muts == 0 || reads == 0 {
		t.Fatalf("degenerate mix: %d mutations, %d reads", muts, reads)
	}
	if muts != p.Mutations() {
		t.Fatalf("Mutations() = %d, counted %d", p.Mutations(), muts)
	}
	// Offers and submissions must draw from disjoint worker halves — the
	// invariant that keeps the temporal axioms order-insensitive.
	for w := range contribWorkers {
		if offerWorkers[w] {
			t.Fatalf("worker %s both submits and receives offers", w)
		}
	}
}

// TestOracleReproducible pins that the serial oracle itself is a pure
// function of the plan.
func TestOracleReproducible(t *testing.T) {
	p := BuildPlan(MixSpec{Workers: 16, Tasks: 6, Requests: 120}, 3)
	cfg := crowdfair.DefaultAuditConfig()
	a, err := p.Oracle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Oracle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == "" || a != b {
		t.Fatalf("oracle fingerprints %q vs %q", a, b)
	}
}

// TestSearchCapacity checks the bisection against a synthetic server with
// a known capacity cliff.
func TestSearchCapacity(t *testing.T) {
	const cliff = 730.0
	trial := func(rate float64) *Result {
		return &Result{SLOPass: rate <= cliff, ShedRate: 0}
	}
	cr := SearchCapacity(100, 1600, 8, trial)
	if cr.SustainableRate > cliff {
		t.Fatalf("sustainable %.1f above the cliff %.1f", cr.SustainableRate, cliff)
	}
	if cliff-cr.SustainableRate > (1600-100)/256.0 {
		t.Fatalf("sustainable %.1f did not converge to the cliff %.1f", cr.SustainableRate, cliff)
	}
	if cr.FirstFailingRate <= cliff {
		t.Fatalf("first failing %.1f at or below the cliff", cr.FirstFailingRate)
	}
	if len(cr.Trials) != 10 {
		t.Fatalf("trials = %d, want lo+hi+8 bisections", len(cr.Trials))
	}

	// Degenerate ends: lower bound already failing, upper bound passing.
	if cr := SearchCapacity(100, 200, 4, func(float64) *Result { return &Result{} }); cr.SustainableRate != 0 {
		t.Fatalf("all-fail search found %.1f", cr.SustainableRate)
	}
	if cr := SearchCapacity(100, 200, 4, func(float64) *Result { return &Result{SLOPass: true} }); cr.SustainableRate != 200 || cr.FirstFailingRate != 0 {
		t.Fatalf("all-pass search = %+v", cr)
	}
}

func TestSLOJudgement(t *testing.T) {
	out := []outcome{
		{endpoint: EpContribution, latency: 2 * time.Millisecond, status: 200},
		{endpoint: EpContribution, latency: 40 * time.Millisecond, status: 200},
		{endpoint: EpOffer, latency: time.Millisecond, status: 429},
	}
	sched := workload.ClosedLoop(4)
	res := aggregate(out, sched, time.Second, &SLO{P99: 10 * time.Millisecond, MaxShedRate: 1})
	if res.SLOPass {
		t.Fatal("p99 over bound must fail the SLO")
	}
	if res.Shed != 1 || res.Endpoints[EpOffer].Shed != 1 {
		t.Fatalf("shed accounting: %+v", res)
	}
	res = aggregate(out, sched, time.Second, &SLO{P99: 100 * time.Millisecond, MaxShedRate: 1})
	if !res.SLOPass {
		t.Fatal("p99 under bound must pass")
	}
	// The zero MaxShedRate tolerates no shedding at all.
	res = aggregate(out, sched, time.Second, &SLO{P99: 100 * time.Millisecond})
	if res.SLOPass {
		t.Fatal("shedding with MaxShedRate 0 must fail")
	}
	// Sheds are excluded from latency percentiles.
	if res.Endpoints[EpOffer].P99MS != 0 {
		t.Fatalf("shed latency leaked into percentiles: %+v", res.Endpoints[EpOffer])
	}
}
