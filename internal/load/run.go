package load

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// EndpointStats aggregates one endpoint's outcomes over a run. Latencies
// are reported in milliseconds; for open-loop runs they are measured from
// the request's *scheduled* arrival instant, so queueing delay a lagging
// generator would otherwise hide (coordinated omission) is charged to the
// server.
type EndpointStats struct {
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`   // HTTP 429
	Errors   int     `json:"errors"` // non-2xx, non-429
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// Result is the outcome of one load run.
type Result struct {
	Schedule  string  `json:"schedule"`
	WallMS    float64 `json:"wall_ms"`
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	Shed      int     `json:"shed"`
	Errors    int     `json:"errors"`
	ShedRate  float64 `json:"shed_rate"`
	ErrorRate float64 `json:"error_rate"`
	// AchievedRate is completed requests per second of wall time.
	AchievedRate float64                   `json:"achieved_rate"`
	Endpoints    map[string]*EndpointStats `json:"endpoints"`
	// SLOPass reports whether every mutation endpoint's p99 and the
	// overall error rate met the SLO the run was judged against (always
	// true when no SLO was supplied).
	SLOPass bool `json:"slo_pass"`
}

// outcome is one request's measured result.
type outcome struct {
	endpoint string
	latency  time.Duration
	status   int
	err      bool // transport failure
}

// Runner replays a plan's measured requests against a base URL.
type Runner struct {
	Client *http.Client
	Base   string
}

// defaultClient keeps enough idle connections for high-concurrency runs:
// http.DefaultClient caps idle conns per host at 2, which turns every
// closed-loop client beyond the second into a fresh TCP dial per request
// and measures the dialer instead of the server.
var defaultClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
	},
}

// PooledClient returns a client holding at most maxConns connections to a
// host, reused aggressively. Open-loop overload runs need the bound: an
// unbounded client answers a saturated server by dialing a new socket per
// overflowing request, the listener's accept queue fills, and every
// request — including the fast 429s admission control exists to produce —
// stalls on SYN retransmits. A bounded pool is also what real front-end
// proxies present to a backend.
func PooledClient(maxConns int) *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			MaxConnsPerHost:     maxConns,
			MaxIdleConns:        maxConns,
			MaxIdleConnsPerHost: maxConns,
		},
	}
}

func (r *Runner) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return defaultClient
}

// SeedHTTP applies the plan's seed phase through the HTTP API (for runs
// against a remote server; in-process benchmarks seed the platform
// directly with Plan.SeedPlatform).
func (r *Runner) SeedHTTP(p *Plan) error {
	for _, rq := range p.Requesters {
		if err := r.post("/v1/requesters", mustJSON(rq)); err != nil {
			return err
		}
	}
	for _, w := range p.Workers {
		if err := r.post("/v1/workers", mustJSON(w)); err != nil {
			return err
		}
	}
	for _, t := range p.Tasks {
		if err := r.post("/v1/tasks", mustJSON(t)); err != nil {
			return err
		}
	}
	return nil
}

// post issues one seed-phase request. Seeding is setup, not measurement,
// so a 429 is retried after the server's advertised Retry-After instead of
// failing the run — admission control throttles the seeder without
// breaking it.
func (r *Runner) post(path string, body []byte) error {
	const maxRetries = 50
	for attempt := 0; ; attempt++ {
		resp, err := r.client().Post(r.Base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < maxRetries {
			delay := 50 * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, perr := strconv.ParseFloat(ra, 64); perr == nil && secs > 0 {
					delay = time.Duration(secs * float64(time.Second))
				}
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(delay)
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("load: seed %s: %s: %s", path, resp.Status, msg)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
}

// Run replays the plan's measured requests under the arrival schedule and
// aggregates outcomes. Closed-loop: Concurrency virtual clients each own
// the stride i % C of the request sequence and issue back-to-back.
// Open-loop: every request fires at its scheduled offset regardless of
// outstanding responses, and latency includes any start lag.
func (r *Runner) Run(p *Plan, sched workload.ArrivalSchedule, slo *SLO) *Result {
	n := len(p.Requests)
	outcomes := make([]outcome, n)
	start := time.Now()
	switch sched.Mode {
	case workload.ArrivalClosed:
		var wg sync.WaitGroup
		c := sched.Concurrency
		for g := 0; g < c; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < n; i += c {
					outcomes[i] = r.issue(&p.Requests[i], time.Time{})
				}
			}(g)
		}
		wg.Wait()
	case workload.ArrivalOpenPoisson:
		if len(sched.Offsets) < n {
			n = len(sched.Offsets)
		}
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				due := start.Add(sched.Offsets[i])
				time.Sleep(time.Until(due))
				outcomes[i] = r.issue(&p.Requests[i], due)
			}(i)
		}
		wg.Wait()
	default:
		panic(fmt.Sprintf("load: unknown arrival mode %q", sched.Mode))
	}
	wall := time.Since(start)
	return aggregate(outcomes[:n], sched, wall, slo)
}

// issue fires one request. due, when non-zero, is the scheduled arrival
// instant latency is measured from (open loop); otherwise latency is
// response time alone (closed loop).
func (r *Runner) issue(rq *Request, due time.Time) outcome {
	o := outcome{endpoint: rq.Endpoint}
	t0 := time.Now()
	if !due.IsZero() {
		t0 = due
	}
	var body io.Reader
	if rq.Body != nil {
		body = bytes.NewReader(rq.Body)
	}
	req, err := http.NewRequest(rq.Method, r.Base+rq.Path, body)
	if err != nil {
		o.err = true
		return o
	}
	if rq.Body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.client().Do(req)
	if err != nil {
		o.err = true
		o.latency = time.Since(t0)
		return o
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	o.status = resp.StatusCode
	o.latency = time.Since(t0)
	return o
}

func aggregate(outcomes []outcome, sched workload.ArrivalSchedule, wall time.Duration, slo *SLO) *Result {
	res := &Result{
		Schedule:  sched.String(),
		WallMS:    float64(wall.Microseconds()) / 1e3,
		Requests:  len(outcomes),
		Endpoints: map[string]*EndpointStats{},
		SLOPass:   true,
	}
	lat := map[string][]float64{}
	for i := range outcomes {
		o := &outcomes[i]
		es := res.Endpoints[o.endpoint]
		if es == nil {
			es = &EndpointStats{}
			res.Endpoints[o.endpoint] = es
		}
		es.Requests++
		ms := float64(o.latency.Microseconds()) / 1e3
		switch {
		case o.err:
			es.Errors++
			res.Errors++
		case o.status == http.StatusTooManyRequests:
			es.Shed++
			res.Shed++
		case o.status/100 == 2:
			es.OK++
			res.OK++
			// Only admitted requests contribute to the latency
			// distribution: a shed is a fast rejection by design and would
			// flatter the percentiles it exists to protect.
			lat[o.endpoint] = append(lat[o.endpoint], ms)
		default:
			es.Errors++
			res.Errors++
		}
	}
	for ep, xs := range lat {
		es := res.Endpoints[ep]
		es.P50MS = stats.Quantile(xs, 0.50)
		es.P95MS = stats.Quantile(xs, 0.95)
		es.P99MS = stats.Quantile(xs, 0.99)
		sort.Float64s(xs)
		es.MaxMS = xs[len(xs)-1]
	}
	if res.Requests > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Requests)
		res.ErrorRate = float64(res.Errors) / float64(res.Requests)
	}
	if wall > 0 {
		res.AchievedRate = float64(res.OK+res.Shed) / wall.Seconds()
	}
	if slo != nil {
		if res.ErrorRate > slo.MaxErrorRate {
			res.SLOPass = false
		}
		if res.ShedRate > slo.MaxShedRate {
			res.SLOPass = false
		}
		for _, es := range res.Endpoints {
			if es.OK > 0 && time.Duration(es.P99MS*float64(time.Millisecond)) > slo.P99 {
				res.SLOPass = false
			}
		}
	}
	return res
}

// CapacityResult is the outcome of a capacity search.
type CapacityResult struct {
	// SustainableRate is the highest probed offered rate (req/s) whose
	// trial met the SLO.
	SustainableRate float64 `json:"sustainable_rate"`
	// FirstFailingRate is the lowest probed rate that missed the SLO (0 if
	// even the upper bound passed).
	FirstFailingRate float64 `json:"first_failing_rate"`
	// Trials records every probe in search order.
	Trials []CapacityTrial `json:"trials"`
}

// CapacityTrial is one probe of the capacity search.
type CapacityTrial struct {
	Rate       float64 `json:"rate"`
	Pass       bool    `json:"pass"`
	WorstP99MS float64 `json:"worst_p99_ms"`
	ShedRate   float64 `json:"shed_rate"`
}

// SearchCapacity binary-searches the highest open-loop offered rate whose
// run passes the SLO. trial must run one fresh, isolated open-loop trial at
// the given rate and return its Result (the caller owns server lifecycle —
// a fresh server per trial keeps probes comparable). The search probes lo
// and hi first, then bisects for iters rounds.
func SearchCapacity(lo, hi float64, iters int, trial func(rate float64) *Result) *CapacityResult {
	if lo <= 0 || hi <= lo {
		panic("load: SearchCapacity needs 0 < lo < hi")
	}
	cr := &CapacityResult{}
	probe := func(rate float64) bool {
		res := trial(rate)
		worst := 0.0
		for _, es := range res.Endpoints {
			if es.OK > 0 && es.P99MS > worst {
				worst = es.P99MS
			}
		}
		cr.Trials = append(cr.Trials, CapacityTrial{Rate: rate, Pass: res.SLOPass, WorstP99MS: worst, ShedRate: res.ShedRate})
		if res.SLOPass {
			if rate > cr.SustainableRate {
				cr.SustainableRate = rate
			}
		} else if cr.FirstFailingRate == 0 || rate < cr.FirstFailingRate {
			cr.FirstFailingRate = rate
		}
		return res.SLOPass
	}
	if !probe(lo) {
		return cr
	}
	if probe(hi) {
		return cr
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		if probe(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return cr
}
