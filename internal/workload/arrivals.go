package workload

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// ArrivalMode selects how a load generator paces its requests.
type ArrivalMode string

// Arrival modes.
const (
	// ArrivalClosed is the closed-loop mode: a fixed pool of C virtual
	// clients each issue their next request the moment the previous
	// response lands, so the offered rate self-regulates to the server's
	// capacity (the Workload.play fixed-concurrency adapter shape).
	ArrivalClosed ArrivalMode = "closed"
	// ArrivalOpenPoisson is the open-loop mode: requests fire at seeded
	// Poisson arrival instants regardless of outstanding responses, so
	// overload shows up as queueing and shedding instead of silently
	// slowing the generator — the only mode that can ask "does rate R
	// hold the SLO?".
	ArrivalOpenPoisson ArrivalMode = "open-poisson"
)

// ArrivalSchedule is a fully materialised, seed-deterministic pacing plan
// for n requests. For closed-loop schedules Offsets is nil (pacing is
// response-driven); for open-loop schedules Offsets[i] is the instant,
// relative to the run start, at which request i fires. Two schedules built
// from equal parameters and seeds are byte-identical.
type ArrivalSchedule struct {
	Mode ArrivalMode
	// Concurrency is the virtual-client pool size (closed loop only).
	Concurrency int
	// Rate is the target offered rate in requests/second (open loop only).
	Rate float64
	// Offsets are the open-loop arrival instants, non-decreasing.
	Offsets []time.Duration
}

// Requests returns the number of requests the schedule paces: the offset
// count for open-loop schedules, n as given for closed-loop ones (where it
// is carried by the caller's plan instead).
func (s ArrivalSchedule) Requests() int { return len(s.Offsets) }

// String renders the schedule parameters for reports.
func (s ArrivalSchedule) String() string {
	if s.Mode == ArrivalClosed {
		return fmt.Sprintf("closed-loop c=%d", s.Concurrency)
	}
	return fmt.Sprintf("%s rate=%.0f/s n=%d", s.Mode, s.Rate, len(s.Offsets))
}

// ClosedLoop returns the degenerate schedule of a fixed-concurrency run:
// concurrency virtual clients issue requests back-to-back with no think
// time. It panics if concurrency < 1.
func ClosedLoop(concurrency int) ArrivalSchedule {
	if concurrency < 1 {
		panic("workload: ClosedLoop needs concurrency >= 1")
	}
	return ArrivalSchedule{Mode: ArrivalClosed, Concurrency: concurrency}
}

// OpenLoopPoisson materialises n Poisson arrival instants at the given
// rate (requests/second) from the caller's RNG: inter-arrival gaps are
// seeded exponential variates, so the schedule — and therefore the whole
// loadgen run shape — is byte-reproducible from the seed. It panics if
// rate <= 0 or n < 0.
func OpenLoopPoisson(rate float64, n int, rng *stats.RNG) ArrivalSchedule {
	if rate <= 0 {
		panic("workload: OpenLoopPoisson needs rate > 0")
	}
	offsets := make([]time.Duration, n)
	t := 0.0
	for i := range offsets {
		t += rng.Exp(rate)
		offsets[i] = time.Duration(t * float64(time.Second))
	}
	return ArrivalSchedule{Mode: ArrivalOpenPoisson, Rate: rate, Offsets: offsets}
}
