// Package workload synthesises the controlled populations and task batches
// the experiments run over.
//
// The paper's platforms (AMT, CrowdFlower) and their traces are
// proprietary, and §4.1 explicitly proposes *controlled experiments* with
// objective measures instead of observational studies. The generators here
// produce worker populations with clustered skills and demographics (so
// similar-worker pairs exist for Axiom 1 to quantify over), task batches
// with comparable cross-requester pairs (for Axiom 2), answer matrices with
// a controlled spammer fraction (for E4, calibrated to the ~40% spam figure
// of Vuurens et al.), and contribution sets with controlled similarity
// structure (for E3). Everything is driven by an explicit stats.RNG so runs
// are reproducible.
package workload

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/model"
	"repro/internal/stats"
)

// PopulationSpec parameterises worker-population generation.
type PopulationSpec struct {
	// Workers is the number of workers to generate.
	Workers int
	// Archetypes is the number of skill/demographic clusters; workers in
	// the same archetype are similar in the Axiom-1 sense (default 4).
	Archetypes int
	// SkillsPerArchetype is how many skills each archetype sets (default 3).
	SkillsPerArchetype int
	// SkillNoise is the probability a worker flips one extra skill on
	// (individual variation; default 0 keeps archetypes exactly similar).
	SkillNoise float64
	// AcceptanceMean/AcceptanceSpread bound the synthetic acceptance
	// ratios (computed attributes); defaults 0.85 / 0.1.
	AcceptanceMean   float64
	AcceptanceSpread float64
	// Countries is the pool of declared-location categories (default 3).
	Countries int
}

func (s PopulationSpec) withDefaults() PopulationSpec {
	if s.Archetypes == 0 {
		s.Archetypes = 4
	}
	if s.SkillsPerArchetype == 0 {
		s.SkillsPerArchetype = 3
	}
	if s.AcceptanceMean == 0 {
		s.AcceptanceMean = 0.85
	}
	if s.AcceptanceSpread == 0 {
		s.AcceptanceSpread = 0.1
	}
	if s.Countries == 0 {
		s.Countries = 3
	}
	return s
}

// Population is a generated worker population with its universe.
type Population struct {
	Universe *model.Universe
	Workers  []*model.Worker
	// Archetype maps each worker to its cluster index; workers sharing an
	// archetype are ground-truth "similar" for checker validation.
	Archetype map[model.WorkerID]int
}

// GeneratePopulation builds a clustered worker population. The universe has
// Archetypes*SkillsPerArchetype skills; archetype k sets the k-th block.
func GeneratePopulation(spec PopulationSpec, rng *stats.RNG) *Population {
	spec = spec.withDefaults()
	m := spec.Archetypes * spec.SkillsPerArchetype
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("skill-%02d", i)
	}
	u := model.MustUniverse(names...)

	pop := &Population{Universe: u, Archetype: make(map[model.WorkerID]int, spec.Workers)}
	for i := 0; i < spec.Workers; i++ {
		arch := i % spec.Archetypes
		skills := model.NewSkillVector(m)
		base := arch * spec.SkillsPerArchetype
		for j := 0; j < spec.SkillsPerArchetype; j++ {
			skills[base+j] = true
		}
		if spec.SkillNoise > 0 && rng.Bool(spec.SkillNoise) {
			skills[rng.Intn(m)] = true
		}
		acceptance := clamp01(spec.AcceptanceMean + (rng.Float64()*2-1)*spec.AcceptanceSpread)
		w := &model.Worker{
			ID: model.WorkerID(fmt.Sprintf("w%04d", i)),
			Declared: model.Attributes{
				"country": model.Str(fmt.Sprintf("country-%d", arch%spec.Countries)),
			},
			Computed: model.Attributes{
				model.AttrAcceptanceRatio: model.Num(acceptance),
			},
			Skills: skills,
		}
		pop.Workers = append(pop.Workers, w)
		pop.Archetype[w.ID] = arch
	}
	return pop
}

// TaskSpec parameterises task-batch generation.
type TaskSpec struct {
	// Tasks is the number of tasks.
	Tasks int
	// Requesters is the number of distinct requesters tasks rotate over
	// (default 4).
	Requesters int
	// RewardBase and RewardJitter control rewards: base + U(0,jitter)
	// (defaults 1.0 / 0.05 — within Axiom 2's comparable-reward band).
	RewardBase   float64
	RewardJitter float64
	// OverPublish is the ratio Published/Quota (default 1: no
	// over-publication). E5 sweeps this.
	OverPublish float64
	// Quota is the per-task target number of acceptable contributions
	// (default 3).
	Quota int
}

func (s TaskSpec) withDefaults() TaskSpec {
	if s.Requesters == 0 {
		s.Requesters = 4
	}
	if s.RewardBase == 0 {
		s.RewardBase = 1.0
	}
	if s.RewardJitter == 0 {
		s.RewardJitter = 0.05
	}
	if s.OverPublish == 0 {
		s.OverPublish = 1
	}
	if s.Quota == 0 {
		s.Quota = 3
	}
	return s
}

// Batch is a generated set of tasks and their requesters.
type Batch struct {
	Requesters []*model.Requester
	Tasks      []*model.Task
}

// GenerateTasks builds a task batch over the population's universe. Task i
// requires the skill block of archetype i%Archetypes, so every archetype
// has qualified work, and consecutive tasks from different requesters have
// identical skill requirements — the comparable pairs Axiom 2 audits.
func GenerateTasks(spec TaskSpec, pop *Population, rng *stats.RNG) *Batch {
	spec = spec.withDefaults()
	b := &Batch{}
	for r := 0; r < spec.Requesters; r++ {
		b.Requesters = append(b.Requesters, &model.Requester{
			ID:   model.RequesterID(fmt.Sprintf("r%02d", r)),
			Name: fmt.Sprintf("Requester %d", r),
		})
	}
	m := pop.Universe.Size()
	archetypes := len(distinctArchetypes(pop))
	if archetypes == 0 {
		archetypes = 1
	}
	skillsPer := m / archetypes
	for i := 0; i < spec.Tasks; i++ {
		arch := i % archetypes
		skills := model.NewSkillVector(m)
		for j := 0; j < skillsPer; j++ {
			skills[arch*skillsPer+j] = true
		}
		quota := spec.Quota
		published := int(float64(quota)*spec.OverPublish + 0.5)
		if published < quota {
			published = quota
		}
		b.Tasks = append(b.Tasks, &model.Task{
			ID:        model.TaskID(fmt.Sprintf("t%04d", i)),
			Requester: b.Requesters[i%spec.Requesters].ID,
			Skills:    skills,
			Reward:    spec.RewardBase + rng.Float64()*spec.RewardJitter,
			Quota:     quota,
			Published: published,
			Title:     fmt.Sprintf("Task %d (archetype %d)", i, arch),
		})
	}
	return b
}

func distinctArchetypes(pop *Population) map[int]bool {
	out := make(map[int]bool)
	for _, a := range pop.Archetype {
		out[a] = true
	}
	return out
}

// AnswerSpec parameterises labelled-answer generation for E4.
type AnswerSpec struct {
	// Workers is the number of answering workers.
	Workers int
	// Questions is the number of questions; GoldFraction of them carry
	// ground truth (default 0.2).
	Questions    int
	GoldFraction float64
	// Labels is the number of categories (default 4).
	Labels int
	// SpamFraction is the share of workers who answer maliciously. Honest
	// workers answer correctly with HonestAccuracy (default 0.9).
	SpamFraction   float64
	HonestAccuracy float64
	// SpamModel selects the malicious behaviour, following the spammer
	// taxonomy of Vuurens et al.: SpamRandom workers answer uniformly at
	// random; SpamUniform workers always give the same label (label 0),
	// which makes them *agree with each other* — the adversarial case for
	// agreement-based detection. Default SpamRandom.
	SpamModel SpamModel
}

// SpamModel enumerates malicious answering behaviours.
type SpamModel uint8

// Spam models.
const (
	// SpamRandom answers uniformly at random (random spammer).
	SpamRandom SpamModel = iota
	// SpamUniform always answers label 0 (uniform/repeated spammer).
	SpamUniform
)

// String renders the model name.
func (m SpamModel) String() string {
	if m == SpamUniform {
		return "uniform"
	}
	return "random"
}

func (s AnswerSpec) withDefaults() AnswerSpec {
	if s.GoldFraction == 0 {
		s.GoldFraction = 0.2
	}
	if s.Labels == 0 {
		s.Labels = 4
	}
	if s.HonestAccuracy == 0 {
		s.HonestAccuracy = 0.9
	}
	return s
}

// LabelledAnswers is a generated answer matrix with ground-truth spammers.
type LabelledAnswers struct {
	Set *detect.AnswerSet
	// Spammers is the ground truth: true for workers generated as spammers.
	Spammers map[model.WorkerID]bool
}

// GenerateAnswers builds a worker×question answer matrix with a controlled
// spammer cohort. Every worker answers every question; the true label of
// question q is q%Labels.
func GenerateAnswers(spec AnswerSpec, rng *stats.RNG) *LabelledAnswers {
	spec = spec.withDefaults()
	set := &detect.AnswerSet{
		Labels:    spec.Labels,
		Questions: spec.Questions,
		Gold:      make(map[int]int),
	}
	out := &LabelledAnswers{Set: set, Spammers: make(map[model.WorkerID]bool)}
	truth := make([]int, spec.Questions)
	for q := 0; q < spec.Questions; q++ {
		truth[q] = q % spec.Labels
		if rng.Bool(spec.GoldFraction) {
			set.Gold[q] = truth[q]
		}
	}
	nSpam := int(float64(spec.Workers)*spec.SpamFraction + 0.5)
	for i := 0; i < spec.Workers; i++ {
		id := model.WorkerID(fmt.Sprintf("w%04d", i))
		spam := i < nSpam
		out.Spammers[id] = spam
		for q := 0; q < spec.Questions; q++ {
			var label int
			switch {
			case spam && spec.SpamModel == SpamUniform:
				label = 0
			case spam:
				label = rng.Intn(spec.Labels)
			case rng.Bool(spec.HonestAccuracy):
				label = truth[q]
			default:
				// Honest mistake: uniform over the wrong labels.
				label = (truth[q] + 1 + rng.Intn(spec.Labels-1)) % spec.Labels
			}
			set.Answers = append(set.Answers, detect.Answer{Worker: id, Question: q, Label: label})
		}
	}
	return out
}

// ContributionSpec parameterises controlled-similarity contribution sets
// for E3.
type ContributionSpec struct {
	// Contributors is the number of workers contributing to the task.
	Contributors int
	// Clusters is the number of distinct answer texts; contributions in the
	// same cluster are near-identical (ground-truth "similar" for Axiom 3).
	Clusters int
	// MutationRate is the per-cluster-member chance of a one-word mutation,
	// keeping them similar-but-not-identical (default 0.5).
	MutationRate float64
	// QualityByCluster optionally assigns per-cluster quality; when nil,
	// cluster k gets quality 1 - k*0.15 floored at 0.2.
	QualityByCluster []float64
	// QualityJitter adds uniform per-member noise of ±QualityJitter to the
	// cluster quality (clamped to [0.2, 1]). Non-zero jitter makes members
	// of a similarity cluster straddle accept thresholds — the §3.1.1
	// asymmetry ("a requester may reject valid work") that E3 needs.
	QualityJitter float64
}

// GenerateContributions builds contributions to task t from the first
// Contributors workers of ids, grouped into similarity clusters. The
// returned cluster map is the ground truth for checker validation.
func GenerateContributions(spec ContributionSpec, t *model.Task, ids []model.WorkerID, rng *stats.RNG) ([]*model.Contribution, map[model.ContributionID]int) {
	if spec.Clusters <= 0 {
		spec.Clusters = 2
	}
	if spec.MutationRate == 0 {
		spec.MutationRate = 0.5
	}
	// Cluster texts draw from disjoint vocabularies so that cross-cluster
	// n-gram similarity is genuinely low while in-cluster similarity stays
	// near 1 — the ground-truth structure Axiom 3 is tested against.
	vocab := []string{
		"alpha bravo charlie delta echo foxtrot golf hotel india juliett kilo lima",
		"mango nectar orange papaya quince raisin squash tomato ugli vanilla walnut yam",
		"zinc yttrium xenon tungsten silver rhodium platinum osmium nickel mercury lead iron",
		"basalt chalk dolomite eclogite flint gypsum hornfels jasper kyanite limestone marble novaculite",
		"accordion bassoon cello drums euphonium flute guitar harp organ piano quena sitar",
	}
	baseTexts := make([]string, spec.Clusters)
	for k := range baseTexts {
		words := vocab[k%len(vocab)]
		baseTexts[k] = fmt.Sprintf("%s cluster %d of task %s", words, k, t.ID)
	}
	clusters := make(map[model.ContributionID]int)
	var out []*model.Contribution
	for i := 0; i < spec.Contributors && i < len(ids); i++ {
		k := i % spec.Clusters
		text := baseTexts[k]
		if rng.Bool(spec.MutationRate) {
			text += fmt.Sprintf(" noted %d", rng.Intn(10))
		}
		quality := 1 - float64(k)*0.15
		if spec.QualityByCluster != nil && k < len(spec.QualityByCluster) {
			quality = spec.QualityByCluster[k]
		}
		if spec.QualityJitter > 0 {
			quality += (rng.Float64()*2 - 1) * spec.QualityJitter
		}
		if quality < 0.2 {
			quality = 0.2
		}
		if quality > 1 {
			quality = 1
		}
		c := &model.Contribution{
			ID:          model.ContributionID(fmt.Sprintf("%s-c%03d", t.ID, i)),
			Task:        t.ID,
			Worker:      ids[i],
			Text:        text,
			Quality:     quality,
			Accepted:    true,
			SubmittedAt: int64(i),
		}
		out = append(out, c)
		clusters[c.ID] = k
	}
	return out, clusters
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
