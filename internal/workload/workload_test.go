package workload

import (
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/similarity"
	"repro/internal/stats"
)

func TestGeneratePopulationShape(t *testing.T) {
	pop := GeneratePopulation(PopulationSpec{Workers: 40}, stats.NewRNG(1))
	if len(pop.Workers) != 40 {
		t.Fatalf("workers = %d", len(pop.Workers))
	}
	// Default 4 archetypes × 3 skills = 12-skill universe.
	if pop.Universe.Size() != 12 {
		t.Fatalf("universe = %d", pop.Universe.Size())
	}
	// Every worker carries declared country and computed acceptance ratio.
	for _, w := range pop.Workers {
		if _, ok := w.Declared["country"]; !ok {
			t.Fatalf("worker %s missing country", w.ID)
		}
		ratio, ok := w.Computed["acceptance_ratio"]
		if !ok || ratio.Num < 0 || ratio.Num > 1 {
			t.Fatalf("worker %s acceptance ratio = %v", w.ID, ratio)
		}
	}
}

func TestGeneratePopulationArchetypesAreSimilar(t *testing.T) {
	pop := GeneratePopulation(PopulationSpec{Workers: 20}, stats.NewRNG(2))
	// Same-archetype workers have identical skills (no noise by default);
	// different archetypes are disjoint.
	byArch := make(map[int][]int)
	for i, w := range pop.Workers {
		byArch[pop.Archetype[w.ID]] = append(byArch[pop.Archetype[w.ID]], i)
	}
	for arch, idxs := range byArch {
		for _, i := range idxs[1:] {
			if !pop.Workers[idxs[0]].Skills.Equal(pop.Workers[i].Skills) {
				t.Fatalf("archetype %d skills differ", arch)
			}
		}
	}
	if similarity.Cosine(pop.Workers[0].Skills, pop.Workers[1].Skills) != 0 {
		t.Fatal("adjacent workers should be different archetypes (round-robin)")
	}
}

func TestGeneratePopulationDeterministic(t *testing.T) {
	a := GeneratePopulation(PopulationSpec{Workers: 15, SkillNoise: 0.3}, stats.NewRNG(7))
	b := GeneratePopulation(PopulationSpec{Workers: 15, SkillNoise: 0.3}, stats.NewRNG(7))
	if !reflect.DeepEqual(a.Workers, b.Workers) {
		t.Fatal("same seed produced different populations")
	}
}

func TestGenerateTasksShape(t *testing.T) {
	rng := stats.NewRNG(3)
	pop := GeneratePopulation(PopulationSpec{Workers: 20}, rng.Split())
	batch := GenerateTasks(TaskSpec{Tasks: 30, Requesters: 5, Quota: 2, OverPublish: 1.5}, pop, rng.Split())
	if len(batch.Tasks) != 30 || len(batch.Requesters) != 5 {
		t.Fatalf("batch = %d tasks, %d requesters", len(batch.Tasks), len(batch.Requesters))
	}
	for _, task := range batch.Tasks {
		if task.Quota != 2 || task.Published != 3 {
			t.Fatalf("task %s quota/published = %d/%d", task.ID, task.Quota, task.Published)
		}
		if task.Reward < 1.0 || task.Reward > 1.05 {
			t.Fatalf("task %s reward = %v", task.ID, task.Reward)
		}
	}
	// Every task must have at least one qualified worker.
	for _, task := range batch.Tasks {
		qualified := false
		for _, w := range pop.Workers {
			if w.Skills.Covers(task.Skills) {
				qualified = true
				break
			}
		}
		if !qualified {
			t.Fatalf("task %s has no qualified workers", task.ID)
		}
	}
}

func TestGenerateTasksComparableCrossRequesterPairsExist(t *testing.T) {
	rng := stats.NewRNG(4)
	pop := GeneratePopulation(PopulationSpec{Workers: 8}, rng.Split())
	batch := GenerateTasks(TaskSpec{Tasks: 20, Requesters: 5}, pop, rng.Split())
	found := false
	for i := 0; i < len(batch.Tasks) && !found; i++ {
		for j := i + 1; j < len(batch.Tasks); j++ {
			a, b := batch.Tasks[i], batch.Tasks[j]
			if a.Requester != b.Requester && a.Skills.Equal(b.Skills) {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no comparable cross-requester task pairs (Axiom 2 needs them)")
	}
}

func TestGenerateAnswersSpamFraction(t *testing.T) {
	rng := stats.NewRNG(5)
	gen := GenerateAnswers(AnswerSpec{Workers: 100, Questions: 10, SpamFraction: 0.4}, rng)
	spammers := 0
	for _, isSpam := range gen.Spammers {
		if isSpam {
			spammers++
		}
	}
	if spammers != 40 {
		t.Fatalf("spammers = %d, want 40", spammers)
	}
	if len(gen.Set.Answers) != 100*10 {
		t.Fatalf("answers = %d", len(gen.Set.Answers))
	}
	if len(gen.Set.Gold) == 0 || len(gen.Set.Gold) == 10 {
		t.Fatalf("gold questions = %d, want a strict subset", len(gen.Set.Gold))
	}
}

func TestGenerateAnswersHonestAccuracy(t *testing.T) {
	rng := stats.NewRNG(6)
	gen := GenerateAnswers(AnswerSpec{
		Workers: 50, Questions: 40, SpamFraction: 0, HonestAccuracy: 0.9,
	}, rng)
	correct, total := 0, 0
	for _, a := range gen.Set.Answers {
		total++
		if a.Label == a.Question%gen.Set.Labels {
			correct++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.85 || acc > 0.95 {
		t.Fatalf("honest accuracy = %v, want ~0.9", acc)
	}
}

func TestGenerateContributionsClusters(t *testing.T) {
	rng := stats.NewRNG(7)
	pop := GeneratePopulation(PopulationSpec{Workers: 12}, rng.Split())
	batch := GenerateTasks(TaskSpec{Tasks: 1}, pop, rng.Split())
	contribs, clusters := GenerateContributions(ContributionSpec{
		Contributors: 12, Clusters: 3,
	}, batch.Tasks[0], workerIDs(pop), rng.Split())
	if len(contribs) != 12 {
		t.Fatalf("contributions = %d", len(contribs))
	}
	// Same-cluster contributions must be highly similar; cross-cluster not.
	for i := 0; i < len(contribs); i++ {
		for j := i + 1; j < len(contribs); j++ {
			sim := similarity.ContributionSimilarity(contribs[i], contribs[j])
			same := clusters[contribs[i].ID] == clusters[contribs[j].ID]
			if same && sim < 0.8 {
				t.Fatalf("same-cluster similarity = %v", sim)
			}
			if !same && sim > 0.95 {
				t.Fatalf("cross-cluster similarity = %v", sim)
			}
		}
	}
}

func TestGenerateContributionsQuality(t *testing.T) {
	rng := stats.NewRNG(8)
	pop := GeneratePopulation(PopulationSpec{Workers: 6}, rng.Split())
	batch := GenerateTasks(TaskSpec{Tasks: 1}, pop, rng.Split())
	contribs, clusters := GenerateContributions(ContributionSpec{
		Contributors: 6, Clusters: 2, QualityByCluster: []float64{1.0, 0.3},
	}, batch.Tasks[0], workerIDs(pop), rng.Split())
	for _, c := range contribs {
		want := []float64{1.0, 0.3}[clusters[c.ID]]
		if c.Quality != want {
			t.Fatalf("contribution %s quality = %v, want %v", c.ID, c.Quality, want)
		}
	}
}

func TestGenerateContributionsValidate(t *testing.T) {
	rng := stats.NewRNG(9)
	pop := GeneratePopulation(PopulationSpec{Workers: 5}, rng.Split())
	batch := GenerateTasks(TaskSpec{Tasks: 1}, pop, rng.Split())
	contribs, _ := GenerateContributions(ContributionSpec{Contributors: 5, Clusters: 2},
		batch.Tasks[0], workerIDs(pop), rng.Split())
	for _, c := range contribs {
		if err := c.Validate(); err != nil {
			t.Fatalf("generated contribution invalid: %v", err)
		}
	}
}

func TestPopulationValidatesAgainstUniverse(t *testing.T) {
	pop := GeneratePopulation(PopulationSpec{Workers: 10, SkillNoise: 0.5}, stats.NewRNG(10))
	for _, w := range pop.Workers {
		if err := w.Validate(pop.Universe); err != nil {
			t.Fatalf("generated worker invalid: %v", err)
		}
	}
	batch := GenerateTasks(TaskSpec{Tasks: 10}, pop, stats.NewRNG(11))
	for _, task := range batch.Tasks {
		if err := task.Validate(pop.Universe); err != nil {
			t.Fatalf("generated task invalid: %v", err)
		}
	}
	for _, r := range batch.Requesters {
		if err := r.Validate(); err != nil {
			t.Fatalf("generated requester invalid: %v", err)
		}
	}
}

func TestGenerateTasksIDsUnique(t *testing.T) {
	rng := stats.NewRNG(12)
	pop := GeneratePopulation(PopulationSpec{Workers: 4}, rng.Split())
	batch := GenerateTasks(TaskSpec{Tasks: 50}, pop, rng.Split())
	seen := map[string]bool{}
	for _, task := range batch.Tasks {
		if seen[string(task.ID)] {
			t.Fatalf("duplicate task id %s", task.ID)
		}
		seen[string(task.ID)] = true
	}
}

// workerIDs extracts the population's worker ids in order.
func workerIDs(pop *Population) []model.WorkerID {
	out := make([]model.WorkerID, len(pop.Workers))
	for i, w := range pop.Workers {
		out[i] = w.ID
	}
	return out
}
