package workload

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/stats"
)

// TestOpenLoopPoissonPinned pins the generated schedule byte-for-byte: the
// loadgen determinism contract ("same seed → same request schedule") rests
// on these offsets never drifting across refactors or platforms.
func TestOpenLoopPoissonPinned(t *testing.T) {
	s := OpenLoopPoisson(1000, 6, stats.NewRNG(7))
	want := []time.Duration{
		942045,
		5029118,
		5133634,
		5673321,
		6466417,
		7854988,
	}
	if !reflect.DeepEqual(s.Offsets, want) {
		t.Fatalf("offsets drifted:\n got %v\nwant %v", s.Offsets, want)
	}
	if s.Mode != ArrivalOpenPoisson || s.Rate != 1000 {
		t.Fatalf("schedule header = %+v", s)
	}
}

func TestOpenLoopPoissonReproducible(t *testing.T) {
	a := OpenLoopPoisson(500, 2000, stats.NewRNG(42))
	b := OpenLoopPoisson(500, 2000, stats.NewRNG(42))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := OpenLoopPoisson(500, 2000, stats.NewRNG(43))
	if reflect.DeepEqual(a.Offsets, c.Offsets) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestOpenLoopPoissonShape(t *testing.T) {
	const rate, n = 2000.0, 10000
	s := OpenLoopPoisson(rate, n, stats.NewRNG(1))
	if len(s.Offsets) != n {
		t.Fatalf("len = %d", len(s.Offsets))
	}
	for i := 1; i < n; i++ {
		if s.Offsets[i] < s.Offsets[i-1] {
			t.Fatalf("offsets regress at %d: %v < %v", i, s.Offsets[i], s.Offsets[i-1])
		}
	}
	// Mean inter-arrival should track 1/rate within a few percent at this
	// sample size (the exponential's CV is 1, so the mean of 10k draws has
	// stddev ~1% of the mean).
	mean := s.Offsets[n-1].Seconds() / float64(n)
	if mean < 0.9/rate || mean > 1.1/rate {
		t.Fatalf("mean inter-arrival %.6fs, want ~%.6fs", mean, 1/rate)
	}
}

func TestClosedLoop(t *testing.T) {
	s := ClosedLoop(16)
	if s.Mode != ArrivalClosed || s.Concurrency != 16 || s.Offsets != nil {
		t.Fatalf("schedule = %+v", s)
	}
	if got := s.String(); got != "closed-loop c=16" {
		t.Fatalf("String = %q", got)
	}
}

func TestArrivalPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"closed-zero": func() { ClosedLoop(0) },
		"rate-zero":   func() { OpenLoopPoisson(0, 1, stats.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
