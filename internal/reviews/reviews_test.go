package reviews

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
)

func TestPostAndAggregate(t *testing.T) {
	b := NewBoard()
	if err := b.Post(Review{
		Worker: "w1", Requester: "r1",
		Scores: [4]int{5, 4, 3, 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Post(Review{
		Worker: "w2", Requester: "r1",
		Scores: [4]int{3, 4, 5, 4},
	}); err != nil {
		t.Fatal(err)
	}
	agg, ok := b.Aggregate("r1")
	if !ok || agg.Reviews != 2 {
		t.Fatalf("aggregate = %+v, %v", agg, ok)
	}
	if agg.Mean[AxisPay] != 4 || agg.Mean[AxisSpeed] != 4 {
		t.Fatalf("means = %v", agg.Mean)
	}
	if math.Abs(agg.Overall()-3.75) > 1e-9 {
		t.Fatalf("overall = %v", agg.Overall())
	}
	if !strings.Contains(agg.String(), "3.75 overall") {
		t.Fatalf("rendering = %s", agg)
	}
}

func TestPostIsIdempotentPerWorker(t *testing.T) {
	b := NewBoard()
	for i := 0; i < 5; i++ {
		if err := b.Post(Review{Worker: "w1", Requester: "r1", Scores: [4]int{1, 1, 1, 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Count("r1") != 1 {
		t.Fatalf("count = %d, want 1 (revisions, not stacking)", b.Count("r1"))
	}
	// A revised review replaces the old scores.
	if err := b.Post(Review{Worker: "w1", Requester: "r1", Scores: [4]int{5, 5, 5, 5}}); err != nil {
		t.Fatal(err)
	}
	agg, _ := b.Aggregate("r1")
	if agg.Overall() != 5 {
		t.Fatalf("revised overall = %v", agg.Overall())
	}
}

func TestPostValidation(t *testing.T) {
	b := NewBoard()
	cases := []Review{
		{Worker: "", Requester: "r", Scores: [4]int{3, 0, 0, 0}},
		{Worker: "w", Requester: "", Scores: [4]int{3, 0, 0, 0}},
		{Worker: "w", Requester: "r", Scores: [4]int{6, 0, 0, 0}},
		{Worker: "w", Requester: "r", Scores: [4]int{-1, 0, 0, 0}},
		{Worker: "w", Requester: "r"}, // rates nothing
	}
	for i, r := range cases {
		if err := b.Post(r); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := b.Post(Review{Worker: "w", Requester: "r", Scores: [4]int{9, 0, 0, 0}}); !errors.Is(err, ErrBadScore) {
		t.Errorf("error = %v", err)
	}
}

func TestPartialAxes(t *testing.T) {
	b := NewBoard()
	// Only pay is rated by one worker, only fairness by another.
	if err := b.Post(Review{Worker: "w1", Requester: "r1", Scores: [4]int{4, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Post(Review{Worker: "w2", Requester: "r1", Scores: [4]int{0, 2, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	agg, _ := b.Aggregate("r1")
	if agg.Mean[AxisPay] != 4 || agg.Mean[AxisFairness] != 2 {
		t.Fatalf("means = %v", agg.Mean)
	}
	if agg.Mean[AxisSpeed] != 0 {
		t.Fatalf("unrated axis mean = %v", agg.Mean[AxisSpeed])
	}
	if agg.Overall() != 3 {
		t.Fatalf("overall = %v", agg.Overall())
	}
}

func TestAggregateMissing(t *testing.T) {
	b := NewBoard()
	if _, ok := b.Aggregate("ghost"); ok {
		t.Fatal("aggregate for unreviewed requester")
	}
}

func TestRankOrdering(t *testing.T) {
	b := NewBoard()
	mustPost := func(w, r string, s int) {
		if err := b.Post(Review{Worker: model.WorkerID(w), Requester: model.RequesterID(r), Scores: [4]int{s, s, s, s}}); err != nil {
			t.Fatal(err)
		}
	}
	mustPost("w1", "mediocre", 3)
	mustPost("w1", "great", 5)
	mustPost("w1", "awful", 1)
	rank := b.Rank()
	if len(rank) != 3 || rank[0].Requester != "great" || rank[2].Requester != "awful" {
		t.Fatalf("rank = %v", rank)
	}
}

func TestReviewFromExperience(t *testing.T) {
	// Full wage, full acceptance, instant payment: all fives.
	r := ReviewFromExperience("w1", "r1", 10, 10, 1.0, 0, 48)
	if r.Scores[AxisPay] != 5 || r.Scores[AxisFairness] != 5 || r.Scores[AxisSpeed] != 5 {
		t.Fatalf("best-case review = %v", r.Scores)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Starvation wages, mass rejection, slowest payment: all ones.
	r = ReviewFromExperience("w1", "r2", 1, 10, 0.1, 48, 48)
	if r.Scores[AxisPay] != 1 || r.Scores[AxisFairness] != 1 || r.Scores[AxisSpeed] != 1 {
		t.Fatalf("worst-case review = %v", r.Scores)
	}
	// Degenerate parameters fall back to neutral scores.
	r = ReviewFromExperience("w1", "r3", 5, 0, 0.5, 0, 0)
	if r.Scores[AxisPay] != 3 || r.Scores[AxisSpeed] != 3 {
		t.Fatalf("degenerate review = %v", r.Scores)
	}
}

func TestBoardConcurrency(t *testing.T) {
	b := NewBoard()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r := Review{
					Worker:    model.WorkerID(fmt.Sprintf("w-%d-%d", g, i)),
					Requester: model.RequesterID(fmt.Sprintf("r%d", i%4)),
					Scores:    [4]int{1 + i%5, 0, 0, 0},
				}
				if err := b.Post(r); err != nil {
					t.Error(err)
					return
				}
				b.Rank()
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for i := 0; i < 4; i++ {
		total += b.Count(model.RequesterID(fmt.Sprintf("r%d", i)))
	}
	if total != 400 {
		t.Fatalf("reviews = %d, want 400", total)
	}
}

func TestAxisStrings(t *testing.T) {
	for a := AxisPay; a < numAxes; a++ {
		if strings.Contains(a.String(), "axis(") {
			t.Errorf("axis %d has no name", a)
		}
	}
}
