// Package reviews implements worker-authored requester reviews — the
// Turkopticon mechanism (Irani & Silberman 2013) that §2.2 and §3.1.2 cite
// as the workaround workers built for requester opacity: "if a worker is
// provided means to post a review of a requester, this may encourage
// requesters to be more transparent."
//
// A Board collects per-requester ratings on the four Turkopticon axes
// (pay, fairness, speed, communicativity), aggregates them, and exposes
// the aggregate that a compliant platform binds to the
// platform.requester_rating disclosure field. Reviews are idempotent per
// (worker, requester): workers can revise their review, not stack votes.
package reviews

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
)

// Axis names a rating dimension (the Turkopticon quartet).
type Axis uint8

// Rating axes.
const (
	AxisPay      Axis = iota // how well the requester pays
	AxisFairness             // how fairly work is accepted/rejected
	AxisSpeed                // how quickly work is approved and paid
	AxisComm                 // how communicative the requester is
	numAxes
)

// String renders the axis name.
func (a Axis) String() string {
	switch a {
	case AxisPay:
		return "pay"
	case AxisFairness:
		return "fairness"
	case AxisSpeed:
		return "speed"
	case AxisComm:
		return "communicativity"
	default:
		return fmt.Sprintf("axis(%d)", uint8(a))
	}
}

// Review is one worker's assessment of one requester. Scores are on the
// Turkopticon 1–5 scale.
type Review struct {
	Worker    model.WorkerID
	Requester model.RequesterID
	// Scores indexes by Axis; zero entries mean "not rated on this axis".
	Scores [4]int
	// Comment is optional free text.
	Comment string
}

// Validation errors.
var (
	ErrBadScore = errors.New("reviews: score outside 1..5")
	ErrEmptyIDs = errors.New("reviews: empty worker or requester id")
)

// Validate checks the review's structure.
func (r *Review) Validate() error {
	if r.Worker == "" || r.Requester == "" {
		return ErrEmptyIDs
	}
	rated := false
	for _, s := range r.Scores {
		if s < 0 || s > 5 {
			return fmt.Errorf("%w: %d", ErrBadScore, s)
		}
		if s != 0 {
			rated = true
		}
	}
	if !rated {
		return fmt.Errorf("%w: review rates no axis", ErrBadScore)
	}
	return nil
}

// Board stores and aggregates reviews. Safe for concurrent use.
type Board struct {
	mu      sync.RWMutex
	reviews map[model.RequesterID]map[model.WorkerID]Review
}

// NewBoard returns an empty board.
func NewBoard() *Board {
	return &Board{reviews: make(map[model.RequesterID]map[model.WorkerID]Review)}
}

// Post records a review, replacing the worker's previous review of the
// same requester if any.
func (b *Board) Post(r Review) error {
	if err := r.Validate(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.reviews[r.Requester]
	if m == nil {
		m = make(map[model.WorkerID]Review)
		b.reviews[r.Requester] = m
	}
	m[r.Worker] = r
	return nil
}

// Count returns the number of reviews for a requester.
func (b *Board) Count(id model.RequesterID) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.reviews[id])
}

// Aggregate is the averaged rating of one requester.
type Aggregate struct {
	Requester model.RequesterID
	Reviews   int
	// Mean indexes by Axis; axes nobody rated are 0.
	Mean [4]float64
}

// Overall returns the mean of the rated axes (0 if none).
func (a Aggregate) Overall() float64 {
	var sum float64
	n := 0
	for _, m := range a.Mean {
		if m > 0 {
			sum += m
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders the aggregate for reports.
func (a Aggregate) String() string {
	return fmt.Sprintf("%s: %.2f overall from %d reviews (pay %.2f, fairness %.2f, speed %.2f, comm %.2f)",
		a.Requester, a.Overall(), a.Reviews,
		a.Mean[AxisPay], a.Mean[AxisFairness], a.Mean[AxisSpeed], a.Mean[AxisComm])
}

// Aggregate computes the averaged rating of a requester; the boolean is
// false when no reviews exist.
func (b *Board) Aggregate(id model.RequesterID) (Aggregate, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	m := b.reviews[id]
	if len(m) == 0 {
		return Aggregate{}, false
	}
	agg := Aggregate{Requester: id, Reviews: len(m)}
	var counts [4]int
	for _, r := range m {
		for axis, s := range r.Scores {
			if s > 0 {
				agg.Mean[axis] += float64(s)
				counts[axis]++
			}
		}
	}
	for axis := range agg.Mean {
		if counts[axis] > 0 {
			agg.Mean[axis] /= float64(counts[axis])
		}
	}
	return agg, true
}

// Rank returns all reviewed requesters sorted by descending overall rating
// — the browse-time ordering Turkopticon-equipped workers use.
func (b *Board) Rank() []Aggregate {
	b.mu.RLock()
	ids := make([]model.RequesterID, 0, len(b.reviews))
	for id := range b.reviews {
		ids = append(ids, id)
	}
	b.mu.RUnlock()
	out := make([]Aggregate, 0, len(ids))
	for _, id := range ids {
		if agg, ok := b.Aggregate(id); ok {
			out = append(out, agg)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		oi, oj := out[i].Overall(), out[j].Overall()
		if oi != oj {
			return oi > oj
		}
		return out[i].Requester < out[j].Requester
	})
	return out
}

// ReviewFromExperience synthesises a review from a worker's measurable
// experience with a requester: pay scales with the hourly wage relative to
// fairWage, fairness with the acceptance rate, speed with the payment
// delay relative to maxDelay. It is the bridge the simulator uses to turn
// trace facts into Turkopticon-style board content.
func ReviewFromExperience(worker model.WorkerID, requester model.RequesterID,
	hourlyWage, fairWage, acceptRate float64, paymentDelay, maxDelay float64) Review {
	score := func(frac float64) int {
		switch {
		case frac >= 1:
			return 5
		case frac >= 0.75:
			return 4
		case frac >= 0.5:
			return 3
		case frac >= 0.25:
			return 2
		default:
			return 1
		}
	}
	r := Review{Worker: worker, Requester: requester}
	if fairWage > 0 {
		r.Scores[AxisPay] = score(hourlyWage / fairWage)
	} else {
		r.Scores[AxisPay] = 3
	}
	r.Scores[AxisFairness] = score(acceptRate)
	if maxDelay > 0 {
		r.Scores[AxisSpeed] = score(1 - paymentDelay/maxDelay)
	} else {
		r.Scores[AxisSpeed] = 3
	}
	if r.Scores[AxisSpeed] < 1 {
		r.Scores[AxisSpeed] = 1
	}
	return r
}
