// Package complete implements the task-completion process of §3.1.1: the
// lifecycle of an assignment from offer to paid contribution, including the
// over-publication/cancellation scenario the paper uses to motivate Axiom 5
// ("a worker who started completing a task should not be interrupted").
//
// The engine is a deterministic state machine over assignments. Requesters
// publish more assignments than they need (Published > Quota); a
// CancellationPolicy decides what happens to in-flight work once the quota
// of acceptable contributions is reached. The engine emits the full event
// trace (started / submitted / interrupted / cancelled) to an eventlog.Log
// so the Axiom 5 checker can audit it afterwards.
package complete

import (
	"errors"
	"fmt"

	"repro/internal/eventlog"
	"repro/internal/model"
)

// State is the lifecycle state of one assignment.
type State uint8

// Assignment lifecycle states.
const (
	StateOffered State = iota // visible to the worker, not yet started
	StateStarted              // worker is actively completing
	StateSubmitted
	StateInterrupted // halted by cancellation while started — the Axiom 5 violation
	StateWithdrawn   // cancelled before the worker started (no violation)
)

// String renders the state for reports.
func (s State) String() string {
	switch s {
	case StateOffered:
		return "offered"
	case StateStarted:
		return "started"
	case StateSubmitted:
		return "submitted"
	case StateInterrupted:
		return "interrupted"
	case StateWithdrawn:
		return "withdrawn"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// CancellationPolicy decides how a requester treats open assignments once
// the task quota is met.
type CancellationPolicy uint8

// Cancellation policies, ordered from worker-friendliest to harshest.
const (
	// CancelNever lets every started assignment run to submission; only
	// un-started offers are withdrawn when the task fully completes.
	CancelNever CancellationPolicy = iota
	// CancelGrace withdraws un-started offers immediately at quota but lets
	// started work finish (and be paid).
	CancelGrace
	// CancelOnQuota cancels everything the moment quota is reached,
	// interrupting started work without pay — the scenario §3.1.1 describes
	// ("a requester cancels tasks when she gets the target number of
	// acceptable responses ... unfair to a worker who has partially
	// completed a task but is not paid for her efforts").
	CancelOnQuota
)

// String renders the policy name.
func (p CancellationPolicy) String() string {
	switch p {
	case CancelNever:
		return "never"
	case CancelGrace:
		return "grace"
	case CancelOnQuota:
		return "on-quota"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Errors returned by Engine transitions.
var (
	ErrUnknownTask       = errors.New("complete: unknown task")
	ErrUnknownAssignment = errors.New("complete: unknown assignment")
	ErrBadTransition     = errors.New("complete: invalid state transition")
	ErrTaskClosed        = errors.New("complete: task closed")
)

// assignment is the engine's internal record.
type assignment struct {
	worker model.WorkerID
	task   model.TaskID
	state  State
	// effort is the number of ticks the worker has spent since starting.
	effort int64
	start  int64
}

type taskState struct {
	task      *model.Task
	accepted  int // accepted submissions so far
	submitted int
	closed    bool
	open      map[model.WorkerID]*assignment
}

// Engine runs task completion for a set of tasks under one cancellation
// policy, writing the event trace to Log.
type Engine struct {
	policy CancellationPolicy
	log    *eventlog.Log
	tasks  map[model.TaskID]*taskState
	now    int64

	// Metrics accumulated over the run.
	interrupted  int
	withdrawn    int
	submissions  int
	wastedEffort int64 // ticks spent on work that was interrupted
	totalEffort  int64 // ticks spent on work that was submitted
}

// NewEngine returns an engine with the given policy, logging to log (which
// must be non-nil).
func NewEngine(policy CancellationPolicy, log *eventlog.Log) *Engine {
	return &Engine{
		policy: policy,
		log:    log,
		tasks:  make(map[model.TaskID]*taskState),
	}
}

// Policy returns the engine's cancellation policy.
func (e *Engine) Policy() CancellationPolicy { return e.policy }

// Now returns the engine's current logical time.
func (e *Engine) Now() int64 { return e.now }

// Advance moves the logical clock forward by d ticks (d >= 0) and credits
// effort to every started assignment.
func (e *Engine) Advance(d int64) {
	if d < 0 {
		panic("complete: negative time advance")
	}
	e.now += d
	for _, ts := range e.tasks {
		for _, a := range ts.open {
			if a.state == StateStarted {
				a.effort += d
			}
		}
	}
}

// Post registers a task with the engine and logs TaskPosted.
func (e *Engine) Post(t *model.Task) error {
	if _, dup := e.tasks[t.ID]; dup {
		return fmt.Errorf("task %s: already posted", t.ID)
	}
	e.tasks[t.ID] = &taskState{task: t.Clone(), open: make(map[model.WorkerID]*assignment)}
	e.log.MustAppend(eventlog.Event{
		Time: e.now, Type: eventlog.TaskPosted, Task: t.ID, Requester: t.Requester,
	})
	return nil
}

// Offer makes the task visible to the worker and logs TaskOffered. Offers
// against closed tasks fail with ErrTaskClosed.
func (e *Engine) Offer(taskID model.TaskID, worker model.WorkerID) error {
	ts, ok := e.tasks[taskID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, taskID)
	}
	if ts.closed {
		return fmt.Errorf("%w: %s", ErrTaskClosed, taskID)
	}
	if _, dup := ts.open[worker]; dup {
		return fmt.Errorf("%w: worker %s already holds task %s", ErrBadTransition, worker, taskID)
	}
	ts.open[worker] = &assignment{worker: worker, task: taskID, state: StateOffered}
	e.log.MustAppend(eventlog.Event{
		Time: e.now, Type: eventlog.TaskOffered, Task: taskID, Worker: worker,
		Requester: ts.task.Requester,
	})
	return nil
}

// Start marks the worker as actively completing the task.
func (e *Engine) Start(taskID model.TaskID, worker model.WorkerID) error {
	a, ts, err := e.lookup(taskID, worker)
	if err != nil {
		return err
	}
	if a.state != StateOffered {
		return fmt.Errorf("%w: start from %s", ErrBadTransition, a.state)
	}
	if ts.closed {
		return fmt.Errorf("%w: %s", ErrTaskClosed, taskID)
	}
	a.state = StateStarted
	a.start = e.now
	e.log.MustAppend(eventlog.Event{
		Time: e.now, Type: eventlog.TaskStarted, Task: taskID, Worker: worker,
		Requester: ts.task.Requester,
	})
	return nil
}

// Submit records the worker's contribution; accepted controls whether it
// counts toward the quota. When the quota is reached the cancellation
// policy fires against the task's remaining open assignments.
func (e *Engine) Submit(taskID model.TaskID, worker model.WorkerID, contribution model.ContributionID, accepted bool) error {
	a, ts, err := e.lookup(taskID, worker)
	if err != nil {
		return err
	}
	if a.state != StateStarted {
		return fmt.Errorf("%w: submit from %s", ErrBadTransition, a.state)
	}
	a.state = StateSubmitted
	e.submissions++
	e.totalEffort += a.effort
	ts.submitted++
	delete(ts.open, worker)
	e.log.MustAppend(eventlog.Event{
		Time: e.now, Type: eventlog.TaskSubmitted, Task: taskID, Worker: worker,
		Requester: ts.task.Requester, Contribution: contribution,
	})
	if accepted {
		ts.accepted++
		if ts.accepted >= ts.task.EffectiveQuota() {
			e.closeTask(ts)
		}
	}
	return nil
}

// closeTask applies the cancellation policy when quota is met.
func (e *Engine) closeTask(ts *taskState) {
	if ts.closed {
		return
	}
	ts.closed = true
	e.log.MustAppend(eventlog.Event{
		Time: e.now, Type: eventlog.TaskCancelled, Task: ts.task.ID,
		Requester: ts.task.Requester, Note: "quota reached: " + e.policy.String(),
	})
	for w, a := range ts.open {
		switch a.state {
		case StateOffered:
			// Withdrawing an offer the worker has not begun is not an
			// Axiom 5 violation under any policy.
			a.state = StateWithdrawn
			e.withdrawn++
			delete(ts.open, w)
		case StateStarted:
			switch e.policy {
			case CancelNever, CancelGrace:
				// Started work is allowed to finish; keep it open.
			case CancelOnQuota:
				a.state = StateInterrupted
				e.interrupted++
				e.wastedEffort += a.effort
				delete(ts.open, w)
				e.log.MustAppend(eventlog.Event{
					Time: e.now, Type: eventlog.TaskInterrupted, Task: ts.task.ID,
					Worker: w, Requester: ts.task.Requester,
					Note: "cancelled while in progress",
				})
			}
		}
	}
}

// lookup finds the assignment for (task, worker).
func (e *Engine) lookup(taskID model.TaskID, worker model.WorkerID) (*assignment, *taskState, error) {
	ts, ok := e.tasks[taskID]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownTask, taskID)
	}
	a, ok := ts.open[worker]
	if !ok {
		return nil, nil, fmt.Errorf("%w: worker %s on task %s", ErrUnknownAssignment, worker, taskID)
	}
	return a, ts, nil
}

// TaskClosed reports whether the task has reached quota and been closed.
func (e *Engine) TaskClosed(taskID model.TaskID) bool {
	ts, ok := e.tasks[taskID]
	return ok && ts.closed
}

// CanSubmitLate reports whether a started assignment survived closure (only
// possible under CancelNever/CancelGrace).
func (e *Engine) CanSubmitLate(taskID model.TaskID, worker model.WorkerID) bool {
	ts, ok := e.tasks[taskID]
	if !ok {
		return false
	}
	a, ok := ts.open[worker]
	return ok && a.state == StateStarted
}

// Metrics summarises a completed run for the E5 experiment.
type Metrics struct {
	Policy       CancellationPolicy
	Submissions  int
	Interrupted  int   // started assignments killed by cancellation
	Withdrawn    int   // offers withdrawn before start (no violation)
	WastedEffort int64 // ticks of work discarded by interruption
	TotalEffort  int64 // ticks of work that resulted in submissions
}

// InterruptionRate returns interrupted / (interrupted + submissions): the
// share of begun work that was killed.
func (m Metrics) InterruptionRate() float64 {
	total := m.Interrupted + m.Submissions
	if total == 0 {
		return 0
	}
	return float64(m.Interrupted) / float64(total)
}

// Metrics returns the run metrics so far.
func (e *Engine) Metrics() Metrics {
	return Metrics{
		Policy:       e.policy,
		Submissions:  e.submissions,
		Interrupted:  e.interrupted,
		Withdrawn:    e.withdrawn,
		WastedEffort: e.wastedEffort,
		TotalEffort:  e.totalEffort,
	}
}
