package complete

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/model"
)

func task(id string, quota, published int) *model.Task {
	return &model.Task{
		ID: model.TaskID(id), Requester: "r1",
		Skills: model.NewSkillVector(1), Reward: 1,
		Quota: quota, Published: published,
	}
}

func TestLifecycleHappyPath(t *testing.T) {
	log := eventlog.New()
	e := NewEngine(CancelNever, log)
	if err := e.Post(task("t1", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Offer("t1", "w1"); err != nil {
		t.Fatal(err)
	}
	if err := e.Start("t1", "w1"); err != nil {
		t.Fatal(err)
	}
	e.Advance(3)
	if err := e.Submit("t1", "w1", "c1", true); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Submissions != 1 || m.Interrupted != 0 || m.TotalEffort != 3 {
		t.Fatalf("metrics = %+v", m)
	}
	types := []eventlog.Type{}
	for _, ev := range log.Events() {
		types = append(types, ev.Type)
	}
	want := []eventlog.Type{
		eventlog.TaskPosted, eventlog.TaskOffered, eventlog.TaskStarted,
		eventlog.TaskSubmitted, eventlog.TaskCancelled,
	}
	if fmt.Sprint(types) != fmt.Sprint(want) {
		t.Fatalf("event sequence = %v, want %v", types, want)
	}
}

func TestInvalidTransitions(t *testing.T) {
	e := NewEngine(CancelNever, eventlog.New())
	if err := e.Offer("ghost", "w1"); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("offer unknown task: %v", err)
	}
	if err := e.Post(task("t1", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Start("t1", "w1"); !errors.Is(err, ErrUnknownAssignment) {
		t.Errorf("start without offer: %v", err)
	}
	if err := e.Offer("t1", "w1"); err != nil {
		t.Fatal(err)
	}
	if err := e.Offer("t1", "w1"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("double offer: %v", err)
	}
	if err := e.Submit("t1", "w1", "c1", true); !errors.Is(err, ErrBadTransition) {
		t.Errorf("submit before start: %v", err)
	}
	if err := e.Start("t1", "w1"); err != nil {
		t.Fatal(err)
	}
	if err := e.Start("t1", "w1"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("double start: %v", err)
	}
	if err := e.Post(task("t1", 1, 1)); err == nil {
		t.Error("double post accepted")
	}
}

func TestCancelOnQuotaInterruptsStartedWork(t *testing.T) {
	log := eventlog.New()
	e := NewEngine(CancelOnQuota, log)
	if err := e.Post(task("t1", 1, 3)); err != nil {
		t.Fatal(err)
	}
	for _, w := range []model.WorkerID{"w1", "w2", "w3"} {
		if err := e.Offer("t1", w); err != nil {
			t.Fatal(err)
		}
		if err := e.Start("t1", w); err != nil {
			t.Fatal(err)
		}
	}
	e.Advance(2)
	if err := e.Submit("t1", "w1", "c1", true); err != nil {
		t.Fatal(err)
	}
	// Quota 1 reached: w2 and w3 must be interrupted.
	m := e.Metrics()
	if m.Interrupted != 2 {
		t.Fatalf("interrupted = %d, want 2", m.Interrupted)
	}
	if m.WastedEffort != 4 {
		t.Fatalf("wasted effort = %d, want 4", m.WastedEffort)
	}
	if !e.TaskClosed("t1") {
		t.Fatal("task not closed at quota")
	}
	if len(log.ByType(eventlog.TaskInterrupted)) != 2 {
		t.Fatal("interruption events missing")
	}
	// Interrupted workers cannot submit.
	if err := e.Submit("t1", "w2", "c2", true); !errors.Is(err, ErrUnknownAssignment) {
		t.Errorf("interrupted submit error = %v", err)
	}
}

func TestCancelGraceLetsStartedWorkFinish(t *testing.T) {
	log := eventlog.New()
	e := NewEngine(CancelGrace, log)
	if err := e.Post(task("t1", 1, 3)); err != nil {
		t.Fatal(err)
	}
	// w1, w2 started; w3 offered but not started.
	for _, w := range []model.WorkerID{"w1", "w2", "w3"} {
		if err := e.Offer("t1", w); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Start("t1", "w1"); err != nil {
		t.Fatal(err)
	}
	if err := e.Start("t1", "w2"); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit("t1", "w1", "c1", true); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Interrupted != 0 {
		t.Fatalf("grace interrupted %d workers", m.Interrupted)
	}
	if m.Withdrawn != 1 {
		t.Fatalf("withdrawn = %d, want 1 (the unstarted offer)", m.Withdrawn)
	}
	// w2 was in-flight and may still submit.
	if !e.CanSubmitLate("t1", "w2") {
		t.Fatal("grace policy blocked in-flight work")
	}
	if err := e.Submit("t1", "w2", "c2", true); err != nil {
		t.Fatalf("late submit: %v", err)
	}
	// w3's withdrawn offer cannot be started.
	if err := e.Start("t1", "w3"); !errors.Is(err, ErrUnknownAssignment) {
		t.Errorf("withdrawn start error = %v", err)
	}
}

func TestCancelNeverNeverInterrupts(t *testing.T) {
	e := NewEngine(CancelNever, eventlog.New())
	if err := e.Post(task("t1", 1, 2)); err != nil {
		t.Fatal(err)
	}
	for _, w := range []model.WorkerID{"w1", "w2"} {
		if err := e.Offer("t1", w); err != nil {
			t.Fatal(err)
		}
		if err := e.Start("t1", w); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Submit("t1", "w1", "c1", true); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit("t1", "w2", "c2", true); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Interrupted != 0 || m.Submissions != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestOfferAfterCloseRejected(t *testing.T) {
	e := NewEngine(CancelOnQuota, eventlog.New())
	if err := e.Post(task("t1", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Offer("t1", "w1"); err != nil {
		t.Fatal(err)
	}
	if err := e.Start("t1", "w1"); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit("t1", "w1", "c1", true); err != nil {
		t.Fatal(err)
	}
	if err := e.Offer("t1", "w9"); !errors.Is(err, ErrTaskClosed) {
		t.Errorf("offer after close: %v", err)
	}
}

func TestRejectedSubmissionsDoNotCount(t *testing.T) {
	e := NewEngine(CancelOnQuota, eventlog.New())
	if err := e.Post(task("t1", 2, 4)); err != nil {
		t.Fatal(err)
	}
	for _, w := range []model.WorkerID{"w1", "w2", "w3"} {
		if err := e.Offer("t1", w); err != nil {
			t.Fatal(err)
		}
		if err := e.Start("t1", w); err != nil {
			t.Fatal(err)
		}
	}
	// Two rejected submissions must not close the task.
	if err := e.Submit("t1", "w1", "c1", false); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit("t1", "w2", "c2", false); err != nil {
		t.Fatal(err)
	}
	if e.TaskClosed("t1") {
		t.Fatal("task closed by rejected submissions")
	}
}

func TestAdvancePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewEngine(CancelNever, eventlog.New()).Advance(-1)
}

func TestMetricsInterruptionRate(t *testing.T) {
	m := Metrics{Interrupted: 1, Submissions: 3}
	if got := m.InterruptionRate(); got != 0.25 {
		t.Fatalf("rate = %v, want 0.25", got)
	}
	if (Metrics{}).InterruptionRate() != 0 {
		t.Fatal("empty rate should be 0")
	}
}

func TestPolicyStrings(t *testing.T) {
	if CancelNever.String() != "never" || CancelGrace.String() != "grace" || CancelOnQuota.String() != "on-quota" {
		t.Fatal("policy names wrong")
	}
	if StateOffered.String() != "offered" || StateInterrupted.String() != "interrupted" {
		t.Fatal("state names wrong")
	}
}
