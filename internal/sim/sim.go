// Package sim is the event-driven crowdsourcing marketplace simulator: the
// controlled-experiment substrate §4.1 calls for. One Run wires every other
// subsystem together — workers join, tasks are posted and assigned
// (internal/assign), completed under a cancellation policy
// (internal/complete), evaluated and paid (internal/pay), disclosed
// according to a transparency policy (internal/transparency), while a
// behavioural model (internal/retention) converts the fairness and
// transparency treatment into the paper's objective measures: contribution
// quality and worker retention. The full trace lands in a store.Store and
// an eventlog.Log, ready for the fairness checkers.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/assign"
	"repro/internal/audit"
	"repro/internal/complete"
	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/pay"
	"repro/internal/retention"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/transparency"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Config parameterises one simulation run. Population and Batch are
// required; everything else has experiment-grade defaults.
type Config struct {
	Population *workload.Population
	Batch      *workload.Batch
	// Assigner allocates tasks each round (default FairRoundRobin).
	Assigner assign.Assigner
	// PayScheme computes payments per task (default FixedReward).
	PayScheme pay.Scheme
	// Cancellation is the task-completion policy (default CancelNever).
	Cancellation complete.CancellationPolicy
	// Policy is the platform's transparency policy; nil means a fully
	// opaque platform. Catalogue defaults to the standard catalogue.
	Policy    *transparency.Policy
	Catalogue *transparency.Catalogue
	// RetentionParams tunes the behaviour model (defaults in retention).
	RetentionParams retention.Params
	// AcceptThreshold is the quality at/above which requesters accept a
	// contribution (default 0.5).
	AcceptThreshold float64
	// Rounds is the number of assignment→completion→payment cycles
	// (default 1). Tasks are spread evenly over rounds.
	Rounds int
	// WorkerCapacity is tasks per worker per round (default 1).
	WorkerCapacity int
	// FlagLowAcceptance makes the platform emit WorkerFlagged events for
	// workers whose running acceptance ratio drops below 0.5 — the
	// detection capability Axiom 4 demands.
	FlagLowAcceptance bool
	// BonusSeries, when > 0, enables the §3.1.1 bonus-contract scenario:
	// every worker is promised BonusAmount for completing BonusSeries
	// accepted tasks. At the end of the run each due contract is honoured
	// with probability BonusHonourRate; reneged contracts shock the
	// worker's satisfaction (the paper's "promises a bonus ... but does
	// not do so in the end").
	BonusSeries     int
	BonusAmount     float64
	BonusHonourRate float64
	// AuditEvery, when > 0, runs an incremental fairness audit
	// (internal/audit) after every AuditEvery-th round — the continuous
	// monitoring loop a live platform runs alongside traffic. The last
	// audit's reports land in Result.AuditReports and the audit counters in
	// Metrics.
	AuditEvery int
	// AuditConfig parameterises the in-loop audits (zero value: the
	// DefaultConfig thresholds).
	AuditConfig fairness.Config
	// CandidateIndex selects the audit's candidate-generation backend —
	// fairness.CandidateExact (the default) or fairness.CandidateLSH for
	// sub-quadratic MinHash/LSH pruning. It overrides
	// AuditConfig.CandidateIndex when non-empty; under the LSH backend an
	// unset AuditConfig.LSHSeed is derived from Seed, so the whole run
	// stays a function of one root seed.
	CandidateIndex string
	// StoreShards sets the store's hash-partition count (0 or negative:
	// store.DefaultShardCount). One shard reproduces the old single-lock
	// layout; results are identical for every value — only contention
	// changes.
	StoreShards int
	// PersistDir, when non-empty, makes the run durable: the store's
	// changelog and the event trace are teed into segmented write-ahead
	// logs under the directory while the simulation runs, and the run ends
	// with a checkpoint (including the in-loop auditor's warm state when
	// AuditEvery is set). A later store.Open / eventlog.OpenDurable — or
	// crowdfair.OpenPlatform — recovers the full trace; the directory must
	// not already hold a durable store. Simulation results are identical
	// with and without persistence.
	PersistDir string
	// PersistWAL tunes the write-ahead logs (zero value: default segment
	// size, no fsync). Sync selects the durability policy: wal.SyncNever /
	// SyncOnRotate write through the page cache, wal.SyncInterval(d) and
	// wal.SyncAlways commit through per-shard group commit (one fsync per
	// batch of concurrent appends). Simulation results are byte-identical
	// under every policy — durability never reorders the version stream.
	PersistWAL wal.Options
	// Seed drives all randomness in the run.
	Seed uint64
}

// Metrics are the objective measures of §4.1, computed over the whole run.
type Metrics struct {
	// MeanQuality is the mean quality of all submitted contributions —
	// the paper's fairness effectiveness measure.
	MeanQuality float64
	// RetentionRate is the share of joined workers still active at the end
	// — the paper's transparency effectiveness measure.
	RetentionRate float64
	// AcceptedRate is accepted contributions / submitted.
	AcceptedRate float64
	// RequesterUtility is the total quality of accepted contributions.
	RequesterUtility float64
	// TotalPaid is the ledger total.
	TotalPaid float64
	// IncomeGini is inequality of worker income.
	IncomeGini float64
	// Interrupted counts Axiom-5 interruption events.
	Interrupted int
	// Submitted counts all contributions.
	Submitted int
	// TransparencyScore echoes the policy's score for convenience.
	TransparencyScore float64
	// BonusesPaid and BonusesReneged count settled bonus contracts (zero
	// unless Config.BonusSeries was set).
	BonusesPaid    int
	BonusesReneged int
	// AuditsRun counts the in-loop incremental audits (zero unless
	// Config.AuditEvery was set); AuditViolations is the total violation
	// count of the last audit.
	AuditsRun       int
	AuditViolations int
}

// Result bundles the artefacts of a run for auditing.
type Result struct {
	Store     *store.Store
	Log       *eventlog.Log
	Ledger    *pay.Ledger
	Retention *retention.Model
	Metrics   Metrics
	// AuditReports holds the last in-loop audit's reports in axiom order
	// (nil unless Config.AuditEvery was set).
	AuditReports []*fairness.Report
}

// Close flushes and closes the write-ahead logs of a durable run (no-op
// for in-memory runs). The in-memory trace stays readable.
func (r *Result) Close() error {
	return errors.Join(r.Store.Close(), r.Log.Close())
}

// Run executes the simulation. It returns an error only for structurally
// invalid configurations; behavioural outcomes are data, not errors.
func Run(cfg Config) (*Result, error) {
	if cfg.Population == nil || cfg.Batch == nil {
		return nil, fmt.Errorf("sim: population and batch are required")
	}
	if cfg.Assigner == nil {
		cfg.Assigner = assign.FairRoundRobin{}
	}
	if cfg.PayScheme == nil {
		cfg.PayScheme = pay.FixedReward{}
	}
	if cfg.Catalogue == nil {
		cfg.Catalogue = transparency.StandardCatalogue()
	}
	if cfg.AcceptThreshold == 0 {
		cfg.AcceptThreshold = 0.5
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.WorkerCapacity <= 0 {
		cfg.WorkerCapacity = 1
	}

	rng := stats.NewRNG(cfg.Seed + 0x5eed)
	shards := cfg.StoreShards
	if shards <= 0 {
		shards = store.DefaultShardCount
	}
	var st *store.Store
	var log *eventlog.Log
	if cfg.PersistDir != "" {
		var err error
		st, err = store.NewDurable(cfg.Population.Universe, shards, cfg.PersistDir, cfg.PersistWAL)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		log, err = eventlog.OpenDurable(store.EventsDir(cfg.PersistDir), cfg.PersistWAL)
		if err != nil {
			st.Close() // don't leak the store's per-shard WAL handles
			return nil, fmt.Errorf("sim: %w", err)
		}
	} else {
		st = store.NewSharded(cfg.Population.Universe, shards)
		log = eventlog.New()
	}
	ledger := pay.NewLedger()
	score := 0.0
	if cfg.Policy != nil {
		score = transparency.TransparencyScore(cfg.Policy, cfg.Catalogue)
	}
	ret := retention.NewModel(cfg.RetentionParams, score, rng.Split())

	r := &runner{
		cfg: cfg, rng: rng, st: st, log: log, ledger: ledger, ret: ret,
		score:     score,
		submitted: make(map[model.WorkerID]int),
		accepted:  make(map[model.WorkerID]int),
		qualSum:   make(map[model.WorkerID]float64),
		flagged:   make(map[model.WorkerID]bool),
		baseSkill: make(map[model.WorkerID]float64),
		contracts: make(map[model.WorkerID]*pay.BonusContract),
	}
	if cfg.AuditEvery > 0 {
		ac := cfg.AuditConfig
		if cfg.CandidateIndex != "" {
			ac.CandidateIndex = cfg.CandidateIndex
		}
		if ac.CandidateKind() == fairness.CandidateLSH && ac.LSHSeed == 0 {
			ac.LSHSeed = cfg.Seed + 0x15b
		}
		r.cfg.AuditConfig = ac
		r.auditor = audit.New(st, log, ac)
		// Route similarity-fair payment equalisation through the audit
		// engine's scoring kernel: one shared, memoizing (and, under LSH,
		// candidate-pruned) kernel for pay and audits. (Payments bump
		// contribution revisions before the end-of-round Axiom 3 pass, so
		// each phase keys its own cache entries — the kernel is shared, not
		// the per-round scores.) Schemes with a caller-injected kernel are
		// left alone.
		if sf, ok := r.cfg.PayScheme.(pay.SimilarityFair); ok && sf.PairScores == nil {
			sf.PairScores = r.auditor.PairScores
			r.cfg.PayScheme = sf
		}
	}
	if err := r.setup(); err != nil {
		return nil, err
	}
	if err := r.runRounds(); err != nil {
		return nil, err
	}
	if err := r.settleBonuses(); err != nil {
		return nil, err
	}
	res := r.finish()
	if cfg.PersistDir != "" {
		if err := r.checkpoint(); err != nil {
			res.Close() // the error return discards the only WAL handles
			return nil, err
		}
	}
	return res, nil
}

// checkpoint ends a durable run with a recovery point: snapshot, manifest
// (carrying the in-loop auditor's warm state when one ran), and truncated
// write-ahead segments. The store and log stay open — Result.Close
// releases them.
func (r *runner) checkpoint() error {
	o, err := audit.BuildCheckpointOptions(r.auditor, r.cfg.AuditConfig, r.log.Len())
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := r.log.Sync(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if _, err := r.st.Checkpoint(o); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

type runner struct {
	cfg    Config
	rng    *stats.RNG
	st     *store.Store
	log    *eventlog.Log
	ledger *pay.Ledger
	ret    *retention.Model
	score  float64
	now    int64

	auditor      *audit.Engine
	auditReports []*fairness.Report
	auditsRun    int

	contribSeq     int
	submitted      map[model.WorkerID]int
	accepted       map[model.WorkerID]int
	qualSum        map[model.WorkerID]float64
	flagged        map[model.WorkerID]bool
	contracts      map[model.WorkerID]*pay.BonusContract
	bonusesPaid    int
	bonusesReneged int
	// baseSkill is each worker's intrinsic competence, captured at setup.
	// Computed attributes (acceptance ratio etc.) are refreshed from run
	// history for disclosure and auditing, but quality generation must use
	// the intrinsic value — feeding the realized 0/1 acceptance history
	// back into quality collapses the behavioural dynamics.
	baseSkill map[model.WorkerID]float64

	totalQuality   float64
	totalSubmitted int
	totalAccepted  int
	requesterUtil  float64
	interruptedN   int
}

// discloseAlways emits the policy's unconditional always-rules for each
// worker at signup, binding the worker's computed attributes into the
// context so platform.* and worker.* disclosures carry real values.
func (r *runner) discloseWorkerView(w *model.Worker, trig transparency.Trigger) {
	if r.cfg.Policy == nil {
		return
	}
	ctx := transparency.NewContext()
	if v, ok := w.Computed[model.AttrAcceptanceRatio]; ok {
		ctx.SetNum(transparency.SubjectWorker, "acceptance_ratio", v.Num)
	}
	if v, ok := w.Computed[model.AttrPerformance]; ok {
		ctx.SetNum(transparency.SubjectWorker, "performance", v.Num)
	}
	if v, ok := w.Computed[model.AttrCompleted]; ok {
		ctx.SetNum(transparency.SubjectWorker, "completed", v.Num)
	}
	ds, err := r.cfg.Policy.Evaluate(r.cfg.Catalogue, ctx, transparency.AudienceWorkers, trig)
	if err != nil {
		// Conditional rules referencing unbound fields simply do not fire
		// for this worker view; an opaque context is not a platform error.
		return
	}
	for _, d := range ds {
		r.log.MustAppend(eventlog.Event{
			Time: r.now, Type: eventlog.Disclosure, Worker: w.ID, Field: d.Field.String(),
		})
	}
}

func (r *runner) setup() error {
	// Insert the whole population through the store's shard-parallel bulk
	// path; the per-worker bookkeeping below stays in population order, so
	// the event log and contract setup are identical to a sequential load.
	if err := r.st.BulkPutWorkers(r.cfg.Population.Workers); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	for _, w := range r.cfg.Population.Workers {
		r.log.MustAppend(eventlog.Event{Time: r.now, Type: eventlog.WorkerJoined, Worker: w.ID})
		r.ret.Join(w.ID)
		base := 0.5
		if v, ok := w.Computed[model.AttrAcceptanceRatio]; ok && v.Kind == model.AttrNum {
			base = v.Num
		}
		r.baseSkill[w.ID] = base
		if r.cfg.BonusSeries > 0 {
			// The promise is platform-wide in this model; attribute it to
			// the first requester for trace purposes.
			var req model.RequesterID
			if len(r.cfg.Batch.Requesters) > 0 {
				req = r.cfg.Batch.Requesters[0].ID
			}
			r.contracts[w.ID] = pay.NewBonusContract(req, w.ID, r.cfg.BonusSeries, r.cfg.BonusAmount)
			r.log.MustAppend(eventlog.Event{
				Time: r.now, Type: eventlog.BonusPromised, Worker: w.ID, Requester: req,
				Amount: r.cfg.BonusAmount,
				Note:   fmt.Sprintf("for %d accepted tasks", r.cfg.BonusSeries),
			})
		}
		r.discloseWorkerView(w, transparency.TriggerSignup)
	}
	for _, req := range r.cfg.Batch.Requesters {
		if err := r.st.PutRequester(req); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

func (r *runner) runRounds() error {
	tasks := r.cfg.Batch.Tasks
	perRound := (len(tasks) + r.cfg.Rounds - 1) / r.cfg.Rounds
	for round := 0; round < r.cfg.Rounds; round++ {
		lo := round * perRound
		if lo >= len(tasks) {
			break
		}
		hi := lo + perRound
		if hi > len(tasks) {
			hi = len(tasks)
		}
		if err := r.runRound(tasks[lo:hi]); err != nil {
			return err
		}
		// Continuous monitoring: audit the live trace on the configured
		// cadence — incrementally, so only this round's churn is re-checked.
		if r.auditor != nil && (round+1)%r.cfg.AuditEvery == 0 {
			r.auditReports = r.auditor.Audit()
			r.auditsRun++
		}
	}
	return nil
}

func (r *runner) runRound(tasks []*model.Task) error {
	engine := complete.NewEngine(r.cfg.Cancellation, r.log)
	engine.Advance(r.now - engine.Now())

	// Shard-parallel insert of the round's batch; posting and disclosure
	// keep batch order so the trace is unchanged.
	if err := r.st.BulkPutTasks(tasks); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	for _, t := range tasks {
		if err := engine.Post(t); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		r.discloseTask(t)
	}

	// Active workers participate in assignment.
	var active []*model.Worker
	for _, w := range r.st.Workers() {
		if r.ret.Active(w.ID) {
			active = append(active, w)
		}
	}
	if len(active) == 0 {
		r.now++
		return nil
	}

	res, err := r.cfg.Assigner.Assign(&assign.Problem{
		Workers:  active,
		Tasks:    tasks,
		Capacity: r.cfg.WorkerCapacity,
		RNG:      r.rng.Split(),
	})
	if err != nil {
		return fmt.Errorf("sim: assignment: %w", err)
	}

	// Log offers (the Axiom 1/2 evidence) and open engine assignments.
	byTask := make(map[model.TaskID]*model.Task, len(tasks))
	for _, t := range tasks {
		byTask[t.ID] = t
	}
	offered := make(map[model.TaskID]map[model.WorkerID]bool)
	for _, w := range active {
		for _, tid := range res.Offers[w.ID] {
			r.log.MustAppend(eventlog.Event{
				Time: r.now, Type: eventlog.TaskOffered, Worker: w.ID, Task: tid,
				Requester: byTask[tid].Requester,
			})
			r.discloseWorkerView(w, transparency.TriggerTaskView)
		}
	}
	for _, a := range res.Assignments {
		if offered[a.Task] == nil {
			offered[a.Task] = make(map[model.WorkerID]bool)
		}
		offered[a.Task][a.Worker] = true
		if err := engine.Offer(a.Task, a.Worker); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}

	// Workers start in a random order and work for effort proportional to
	// their (in)competence; submissions happen one tick apart so the
	// cancellation policy has in-flight victims when quotas fill early.
	order := r.rng.Perm(len(res.Assignments))
	for _, i := range order {
		a := res.Assignments[i]
		if engine.TaskClosed(a.Task) {
			continue // offer withdrawn before start
		}
		if err := engine.Start(a.Task, a.Worker); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	engine.Advance(1)
	r.now = engine.Now()

	var roundContribs []pendingContrib
	for _, i := range order {
		a := res.Assignments[i]
		if !engine.CanSubmitLate(a.Task, a.Worker) {
			continue // interrupted or withdrawn
		}
		quality := r.ret.EffectiveQuality(a.Worker, r.baseSkill[a.Worker])
		accepted := quality >= r.cfg.AcceptThreshold
		r.contribSeq++
		c := &model.Contribution{
			ID:          model.ContributionID(fmt.Sprintf("c%06d", r.contribSeq)),
			Task:        a.Task,
			Worker:      a.Worker,
			Text:        contributionText(byTask[a.Task], quality),
			Quality:     quality,
			Accepted:    accepted,
			SubmittedAt: engine.Now(),
		}
		if err := engine.Submit(a.Task, a.Worker, c.ID, accepted); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		if err := r.st.PutContribution(c); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		roundContribs = append(roundContribs, pendingContrib{a, c})
		engine.Advance(1)
		r.now = engine.Now()
	}

	// Requester decisions, payment, and behavioural feedback.
	r.settle(byTask, roundContribs)

	// Refresh computed attributes and run the platform's detection pass.
	if err := r.refreshWorkers(); err != nil {
		return err
	}
	// Opacity frustration accrues once per round; churned workers leave.
	for _, id := range r.ret.EndRound() {
		r.log.MustAppend(eventlog.Event{Time: r.now, Type: eventlog.WorkerLeft, Worker: id, Note: "opacity churn"})
	}
	r.interruptedN += engine.Metrics().Interrupted
	r.now++
	return nil
}

// discloseTask emits requester/task disclosures for a posted task when the
// policy mandates them.
func (r *runner) discloseTask(t *model.Task) {
	if r.cfg.Policy == nil {
		return
	}
	ctx := transparency.NewContext().
		SetNum(transparency.SubjectTask, "reward", t.Reward).
		SetNum(transparency.SubjectRequester, "hourly_wage", t.Reward*6). // 6 tasks/hour nominal pace
		SetNum(transparency.SubjectRequester, "payment_delay", 24).
		SetStr(transparency.SubjectTask, "recruitment_criteria", "skills "+t.Skills.String()).
		SetStr(transparency.SubjectTask, "rejection_criteria", fmt.Sprintf("quality below %.2f", r.cfg.AcceptThreshold)).
		SetStr(transparency.SubjectTask, "evaluation_scheme", "automated quality scoring")
	ds, err := r.cfg.Policy.Evaluate(r.cfg.Catalogue, ctx, transparency.AudienceWorkers, transparency.TriggerTaskView)
	if err != nil {
		return
	}
	for _, d := range ds {
		switch d.Field.Subject {
		case transparency.SubjectRequester:
			r.log.MustAppend(eventlog.Event{
				Time: r.now, Type: eventlog.Disclosure, Requester: t.Requester, Field: d.Field.String(),
			})
		case transparency.SubjectTask:
			r.log.MustAppend(eventlog.Event{
				Time: r.now, Type: eventlog.Disclosure, Task: t.ID, Requester: t.Requester, Field: d.Field.String(),
			})
		}
	}
}

// rejectionExplained reports whether the policy discloses rejection
// criteria to workers (making rejections legible).
func (r *runner) rejectionExplained() bool {
	if r.cfg.Policy == nil {
		return false
	}
	for _, rule := range r.cfg.Policy.RulesFor(transparency.AudienceWorkers) {
		if rule.Field.Subject == transparency.SubjectTask && rule.Field.Field == "rejection_criteria" {
			return true
		}
	}
	return false
}

type pendingContrib struct {
	a assign.Assignment
	c *model.Contribution
}

func (r *runner) settle(byTask map[model.TaskID]*model.Task, contribs []pendingContrib) {
	explained := r.rejectionExplained()
	// Group per task for the pay scheme; iterate in first-seen task order
	// so float accumulation is deterministic across runs.
	perTask := make(map[model.TaskID][]*model.Contribution)
	var taskOrder []model.TaskID
	for _, pc := range contribs {
		if _, ok := perTask[pc.c.Task]; !ok {
			taskOrder = append(taskOrder, pc.c.Task)
		}
		perTask[pc.c.Task] = append(perTask[pc.c.Task], pc.c)
	}
	for _, tid := range taskOrder {
		cs := perTask[tid]
		t := byTask[tid]
		pays := r.cfg.PayScheme.Pay(t, cs)
		for i, c := range cs {
			c.Paid = pays[i]
			if c.Accepted {
				r.log.MustAppend(eventlog.Event{
					Time: r.now, Type: eventlog.ContributionAccepted,
					Worker: c.Worker, Task: tid, Contribution: c.ID, Requester: t.Requester,
				})
				r.accepted[c.Worker]++
				r.totalAccepted++
				r.requesterUtil += c.Quality
				if contract, ok := r.contracts[c.Worker]; ok {
					contract.Complete()
				}
			} else {
				r.log.MustAppend(eventlog.Event{
					Time: r.now, Type: eventlog.ContributionRejected,
					Worker: c.Worker, Task: tid, Contribution: c.ID, Requester: t.Requester,
				})
				r.ret.OnRejection(c.Worker, explained)
				if !r.ret.Active(c.Worker) {
					r.log.MustAppend(eventlog.Event{Time: r.now, Type: eventlog.WorkerLeft, Worker: c.Worker})
				}
			}
			if c.Paid > 0 {
				// Panic like the surrounding MustAppend calls: a payment
				// that reaches the event log but not the ledger would
				// silently diverge the two records.
				if err := r.ledger.Record(pay.Payment{
					Worker: c.Worker, Task: tid, Contribution: c.ID, Amount: c.Paid, Time: r.now,
				}); err != nil {
					panic(fmt.Sprintf("sim: record payment: %v", err))
				}
				r.log.MustAppend(eventlog.Event{
					Time: r.now, Type: eventlog.PaymentIssued,
					Worker: c.Worker, Task: tid, Contribution: c.ID, Amount: c.Paid,
				})
				r.ret.OnPayment(c.Worker)
			}
			if err := r.st.UpdateContribution(c); err != nil {
				panic(fmt.Sprintf("sim: update contribution: %v", err)) // invariant: it was just inserted
			}
			r.submitted[c.Worker]++
			r.qualSum[c.Worker] += c.Quality
			r.totalSubmitted++
			r.totalQuality += c.Quality
		}
	}
}

// refreshWorkers recomputes computed attributes from the run history and
// emits detection flags. The attribute updates are applied through the
// store's shard-parallel bulk path; flags are emitted afterwards in the
// same sorted worker order as before, so the event log is unchanged.
func (r *runner) refreshWorkers() error {
	var updates []*model.Worker
	for _, w := range r.st.Workers() {
		n := r.submitted[w.ID]
		if n == 0 {
			continue
		}
		ratio := float64(r.accepted[w.ID]) / float64(n)
		perf := r.qualSum[w.ID] / float64(n)
		w.Computed[model.AttrAcceptanceRatio] = model.Num(ratio)
		w.Computed[model.AttrPerformance] = model.Num(perf)
		w.Computed[model.AttrCompleted] = model.Num(float64(n))
		updates = append(updates, w)
	}
	if len(updates) == 0 {
		return nil
	}
	if err := r.st.BulkUpdateWorkers(updates); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if !r.cfg.FlagLowAcceptance {
		return nil
	}
	for _, w := range updates {
		ratio := w.Computed[model.AttrAcceptanceRatio].Num
		if ratio < 0.5 && !r.flagged[w.ID] {
			r.flagged[w.ID] = true
			r.log.MustAppend(eventlog.Event{
				Time: r.now, Type: eventlog.WorkerFlagged, Worker: w.ID,
				Note: fmt.Sprintf("acceptance ratio %.2f", ratio),
			})
		}
	}
	return nil
}

// settleBonuses resolves every due bonus contract at the end of the run.
func (r *runner) settleBonuses() error {
	if r.cfg.BonusSeries <= 0 {
		return nil
	}
	for _, w := range r.st.Workers() { // sorted: deterministic settlement order
		contract, ok := r.contracts[w.ID]
		if !ok || !contract.Due() {
			continue
		}
		honour := r.rng.Bool(r.cfg.BonusHonourRate)
		paid, err := contract.Settle(r.ledger, honour, r.now)
		if err != nil {
			return fmt.Errorf("sim: settle bonus: %w", err)
		}
		if paid {
			r.bonusesPaid++
			r.log.MustAppend(eventlog.Event{
				Time: r.now, Type: eventlog.BonusPaid, Worker: w.ID,
				Requester: contract.Requester, Amount: contract.Amount,
			})
			r.ret.OnPayment(w.ID)
		} else {
			r.bonusesReneged++
			r.ret.OnRenege(w.ID)
			if !r.ret.Active(w.ID) {
				r.log.MustAppend(eventlog.Event{
					Time: r.now, Type: eventlog.WorkerLeft, Worker: w.ID, Note: "reneged bonus",
				})
			}
		}
	}
	return nil
}

func (r *runner) finish() *Result {
	m := Metrics{
		RetentionRate:     r.ret.RetentionRate(),
		TotalPaid:         r.ledger.Total(),
		IncomeGini:        stats.Gini(r.ledger.Incomes()),
		Interrupted:       r.interruptedN,
		Submitted:         r.totalSubmitted,
		RequesterUtility:  r.requesterUtil,
		TransparencyScore: r.score,
		BonusesPaid:       r.bonusesPaid,
		BonusesReneged:    r.bonusesReneged,
	}
	if r.totalSubmitted > 0 {
		m.MeanQuality = r.totalQuality / float64(r.totalSubmitted)
		m.AcceptedRate = float64(r.totalAccepted) / float64(r.totalSubmitted)
	}
	m.AuditsRun = r.auditsRun
	for _, rep := range r.auditReports {
		m.AuditViolations += len(rep.Violations)
	}
	return &Result{
		Store: r.st, Log: r.log, Ledger: r.ledger, Retention: r.ret, Metrics: m,
		AuditReports: r.auditReports,
	}
}

// contributionText synthesises a textual payload whose n-gram similarity
// tracks quality: high-quality answers converge on the task's canonical
// answer, low-quality ones diverge.
func contributionText(t *model.Task, quality float64) string {
	base := fmt.Sprintf("canonical answer for task %s covering requirements %s in full detail", t.ID, t.Skills)
	switch {
	case quality >= 0.75:
		return base
	case quality >= 0.5:
		return base + " with some omissions"
	case quality >= 0.25:
		return fmt.Sprintf("partial answer for task %s missing most requirements", t.ID)
	default:
		return "irrelevant spam content"
	}
}
