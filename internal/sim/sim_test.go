package sim

import (
	"testing"

	"repro/internal/assign"
	"repro/internal/complete"
	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/pay"
	"repro/internal/stats"
	"repro/internal/transparency"
	"repro/internal/workload"
)

func smallConfig(seed uint64) Config {
	rng := stats.NewRNG(seed)
	pop := workload.GeneratePopulation(workload.PopulationSpec{
		Workers: 40, AcceptanceMean: 0.7, AcceptanceSpread: 0.25,
	}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{
		Tasks: 30, Quota: 2, OverPublish: 1.5,
	}, pop, rng.Split())
	return Config{
		Population: pop,
		Batch:      batch,
		Rounds:     3,
		Seed:       seed,
	}
}

func TestRunBasics(t *testing.T) {
	res, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Submitted == 0 {
		t.Fatal("no contributions submitted")
	}
	if m.MeanQuality <= 0 || m.MeanQuality > 1 {
		t.Fatalf("mean quality = %v", m.MeanQuality)
	}
	if m.RetentionRate < 0 || m.RetentionRate > 1 {
		t.Fatalf("retention = %v", m.RetentionRate)
	}
	if m.TotalPaid <= 0 {
		t.Fatalf("total paid = %v", m.TotalPaid)
	}
	// The trace must contain the full lifecycle.
	for _, typ := range []eventlog.Type{
		eventlog.WorkerJoined, eventlog.TaskPosted, eventlog.TaskOffered,
		eventlog.TaskStarted, eventlog.TaskSubmitted, eventlog.PaymentIssued,
	} {
		if len(res.Log.ByType(typ)) == 0 {
			t.Errorf("trace has no %s events", typ)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Fatalf("same seed, different metrics:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	if a.Log.Len() != b.Log.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", a.Log.Len(), b.Log.Len())
	}
}

func TestRunSeedChangesOutcome(t *testing.T) {
	a, _ := Run(smallConfig(1))
	b, _ := Run(smallConfig(2))
	if a.Metrics == b.Metrics {
		t.Fatal("different seeds produced identical metrics")
	}
}

func TestRunRequiresPopulationAndBatch(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestRunPaymentsMatchLedger(t *testing.T) {
	res, err := Run(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// Ledger total must equal the sum of Paid over stored contributions.
	var fromContribs float64
	for _, c := range res.Store.Contributions() {
		fromContribs += c.Paid
	}
	if diff := res.Ledger.Total() - fromContribs; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ledger %v vs contributions %v", res.Ledger.Total(), fromContribs)
	}
	// And equal the sum of PaymentIssued amounts in the trace.
	var fromEvents float64
	for _, e := range res.Log.ByType(eventlog.PaymentIssued) {
		fromEvents += e.Amount
	}
	if diff := res.Ledger.Total() - fromEvents; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ledger %v vs events %v", res.Ledger.Total(), fromEvents)
	}
}

func TestRunFairAssignerSatisfiesAxiom1(t *testing.T) {
	cfg := smallConfig(4)
	cfg.Assigner = assign.FairRoundRobin{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := fairness.CheckAxiom1(res.Store, res.Log, fairness.DefaultConfig())
	if !rep.Satisfied() {
		t.Fatalf("fair-round-robin produced Axiom 1 violations: %v", rep.Violations[0])
	}
}

func TestRunRequesterCentricViolatesAxiom1(t *testing.T) {
	cfg := smallConfig(4)
	cfg.Assigner = assign.RequesterCentric{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := fairness.CheckAxiom1(res.Store, res.Log, fairness.DefaultConfig())
	if rep.Satisfied() {
		t.Fatal("requester-centric produced no Axiom 1 violations (expected discrimination)")
	}
}

func TestRunCancelOnQuotaProducesInterruptions(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Cancellation = complete.CancelOnQuota
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Interrupted == 0 {
		t.Fatal("over-published tasks under on-quota cancellation produced no interruptions")
	}
	rep := fairness.CheckAxiom5(res.Log)
	if len(rep.Violations) != res.Metrics.Interrupted {
		t.Fatalf("checker found %d violations, engine counted %d",
			len(rep.Violations), res.Metrics.Interrupted)
	}
}

func TestRunCancelNeverSatisfiesAxiom5(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Cancellation = complete.CancelNever
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep := fairness.CheckAxiom5(res.Log); !rep.Satisfied() {
		t.Fatalf("never-cancel run violated Axiom 5: %v", rep.Violations)
	}
}

func TestRunSimilarityFairPaySatisfiesAxiom3(t *testing.T) {
	cfg := smallConfig(6)
	cfg.PayScheme = pay.SimilarityFair{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep := fairness.CheckAxiom3(res.Store, fairness.DefaultConfig()); !rep.Satisfied() {
		t.Fatalf("similarity-fair run violated Axiom 3: %v", rep.Violations[0])
	}
}

func TestRunFullPolicySatisfiesTransparencyAxioms(t *testing.T) {
	cfg := smallConfig(8)
	cat := transparency.StandardCatalogue()
	full := &transparency.Policy{Name: "full"}
	for _, e := range cat.Entries() {
		full.Rules = append(full.Rules, &transparency.Rule{
			Field: e.Ref, To: transparency.AudienceWorkers, On: transparency.TriggerAlways,
		})
	}
	cfg.Policy = full
	cfg.Catalogue = cat
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep := transparency.CheckAxiom6(cat, res.Log); !rep.Satisfied() {
		t.Fatalf("full policy violated Axiom 6: %v", rep.Detail[0])
	}
	if rep := transparency.CheckAxiom7(cat, res.Log); !rep.Satisfied() {
		t.Fatalf("full policy violated Axiom 7: %v", rep.Detail[0])
	}
	if res.Metrics.TransparencyScore != 1 {
		t.Fatalf("score = %v", res.Metrics.TransparencyScore)
	}
}

func TestRunOpaquePlatformFailsTransparencyAxioms(t *testing.T) {
	cfg := smallConfig(8)
	res, err := Run(cfg) // no policy
	if err != nil {
		t.Fatal(err)
	}
	cat := transparency.StandardCatalogue()
	if rep := transparency.CheckAxiom6(cat, res.Log); rep.Satisfied() {
		t.Fatal("opaque platform passed Axiom 6")
	}
	if rep := transparency.CheckAxiom7(cat, res.Log); rep.Satisfied() {
		t.Fatal("opaque platform passed Axiom 7")
	}
}

func TestRunFlagsLowAcceptanceWorkers(t *testing.T) {
	cfg := smallConfig(9)
	cfg.FlagLowAcceptance = true
	cfg.AcceptThreshold = 0.75 // reject plenty
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Log.ByType(eventlog.WorkerFlagged)) == 0 {
		t.Fatal("no workers flagged despite harsh acceptance")
	}
	// With flagging on, Axiom 4 must hold.
	if rep := fairness.CheckAxiom4(res.Store, res.Log); !rep.Satisfied() {
		t.Fatalf("Axiom 4 violated despite flagging: %v", rep.Violations[0])
	}
}

func TestRunComputedAttributesRefreshed(t *testing.T) {
	res, err := Run(smallConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	refreshed := 0
	for _, w := range res.Store.Workers() {
		if _, ok := w.Computed["completed"]; ok {
			refreshed++
		}
	}
	if refreshed == 0 {
		t.Fatal("no workers have refreshed computed attributes")
	}
}

func TestRunBonusContracts(t *testing.T) {
	cfg := smallConfig(12)
	cfg.BonusSeries = 1
	cfg.BonusAmount = 5
	cfg.BonusHonourRate = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.BonusesPaid == 0 {
		t.Fatal("no bonuses paid at honour rate 1")
	}
	if res.Metrics.BonusesReneged != 0 {
		t.Fatalf("reneged %d at honour rate 1", res.Metrics.BonusesReneged)
	}
	if got := len(res.Log.ByType(eventlog.BonusPromised)); got == 0 {
		t.Fatal("no promise events")
	}
	if got := len(res.Log.ByType(eventlog.BonusPaid)); got != res.Metrics.BonusesPaid {
		t.Fatalf("paid events = %d, metrics say %d", got, res.Metrics.BonusesPaid)
	}

	// At honour rate 0 every due contract reneges and nothing is paid.
	cfg = smallConfig(12)
	cfg.BonusSeries = 1
	cfg.BonusAmount = 5
	cfg.BonusHonourRate = 0
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.BonusesPaid != 0 || res.Metrics.BonusesReneged == 0 {
		t.Fatalf("honour rate 0: paid=%d reneged=%d", res.Metrics.BonusesPaid, res.Metrics.BonusesReneged)
	}
	if got := len(res.Log.ByType(eventlog.BonusPaid)); got != 0 {
		t.Fatalf("paid events at honour rate 0: %d", got)
	}
}

func TestRunTraceIsWellFormed(t *testing.T) {
	res, err := Run(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	// Timestamps are non-decreasing (the log enforces it; this asserts the
	// invariant survived the whole run).
	events := res.Log.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatalf("time regression at %d", i)
		}
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("seq gap at %d", i)
		}
	}
}

// In-loop incremental audits must run on the configured cadence and agree
// with a from-scratch full audit of the final trace.
func TestRunWithInLoopAudits(t *testing.T) {
	rng := stats.NewRNG(77)
	pop := workload.GeneratePopulation(workload.PopulationSpec{Workers: 40}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{Tasks: 40, Quota: 2}, pop, rng.Split())
	res, err := Run(Config{
		Population: pop, Batch: batch, Rounds: 4, Seed: 77,
		AuditEvery: 2, FlagLowAcceptance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.AuditsRun != 2 {
		t.Fatalf("audits run = %d, want 2", res.Metrics.AuditsRun)
	}
	if len(res.AuditReports) != 5 {
		t.Fatalf("audit reports = %d", len(res.AuditReports))
	}
	// The last in-loop audit saw the full trace (it ran after the final
	// round), so its violations must match a fresh full audit.
	full := fairness.CheckAll(res.Store, res.Log, fairness.Config{})
	total := 0
	for i, rep := range res.AuditReports {
		if len(rep.Violations) != len(full[i].Violations) {
			t.Fatalf("%s: %d violations (in-loop) vs %d (full)",
				rep.Axiom, len(rep.Violations), len(full[i].Violations))
		}
		for j := range rep.Violations {
			if rep.Violations[j].String() != full[i].Violations[j].String() {
				t.Fatalf("%s: %s vs %s", rep.Axiom, rep.Violations[j], full[i].Violations[j])
			}
		}
		total += len(rep.Violations)
	}
	if res.Metrics.AuditViolations != total {
		t.Fatalf("AuditViolations = %d, want %d", res.Metrics.AuditViolations, total)
	}
	// Audits are pure observation: a run without them is byte-identical.
	res2, err := Run(Config{
		Population: pop, Batch: batch, Rounds: 4, Seed: 77, FlagLowAcceptance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Log.Len() != res.Log.Len() || res2.Metrics.TotalPaid != res.Metrics.TotalPaid {
		t.Fatal("in-loop audits perturbed the simulation")
	}
}

// TestRunStoreShardsInvariant pins that the store's shard count is purely a
// concurrency knob: runs differing only in StoreShards produce identical
// metrics, traces, and in-loop audit reports.
func TestRunStoreShardsInvariant(t *testing.T) {
	build := func(shards int) Config {
		cfg := smallConfig(13)
		cfg.Rounds = 4
		cfg.AuditEvery = 2
		cfg.FlagLowAcceptance = true
		cfg.StoreShards = shards
		return cfg
	}
	base, err := Run(build(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 5} { // 0 = DefaultShardCount
		res, err := Run(build(shards))
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics != base.Metrics {
			t.Fatalf("shards=%d: metrics differ:\n%+v\n%+v", shards, res.Metrics, base.Metrics)
		}
		if res.Log.Len() != base.Log.Len() {
			t.Fatalf("shards=%d: trace lengths differ", shards)
		}
		for i, rep := range res.AuditReports {
			want := base.AuditReports[i]
			if rep.Checked != want.Checked || len(rep.Violations) != len(want.Violations) {
				t.Fatalf("shards=%d, %s: report differs", shards, rep.Axiom)
			}
			for j := range rep.Violations {
				if rep.Violations[j].String() != want.Violations[j].String() {
					t.Fatalf("shards=%d, %s: violation %d differs", shards, rep.Axiom, j)
				}
			}
		}
	}
}

// TestRunSimilarityFairUsesAuditCache pins the pay-scheme/audit-cache
// routing: with in-loop audits on, a nil-PairScores SimilarityFair scheme
// is rewired through the engine's memoized kernel, and the payments are
// identical to the uncached kernel's.
func TestRunSimilarityFairUsesAuditCache(t *testing.T) {
	build := func(scheme pay.Scheme, auditEvery int) Config {
		cfg := smallConfig(29)
		cfg.Rounds = 4
		cfg.PayScheme = scheme
		cfg.AuditEvery = auditEvery
		return cfg
	}
	cached, err := Run(build(pay.SimilarityFair{}, 1))
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := Run(build(pay.SimilarityFair{}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if cached.Metrics.TotalPaid != uncached.Metrics.TotalPaid ||
		cached.Metrics.IncomeGini != uncached.Metrics.IncomeGini {
		t.Fatalf("cache-routed payments differ: %+v vs %+v", cached.Metrics, uncached.Metrics)
	}
	if cached.Metrics.TotalPaid <= 0 {
		t.Fatal("no payments issued; scenario exercises nothing")
	}
	// That the kernel itself memoizes is pinned at unit level by
	// TestCachePairScoresMemoizes in internal/audit.
}
