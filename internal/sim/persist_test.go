package sim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/audit"
	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/store"
	"repro/internal/wal"
)

// persistConfig is smallConfig with in-loop audits and a durable root.
func persistConfig(seed uint64, dir string) Config {
	cfg := smallConfig(seed)
	cfg.Rounds = 4
	cfg.AuditEvery = 2
	cfg.FlagLowAcceptance = true
	cfg.PersistDir = dir
	cfg.PersistWAL = wal.Options{SegmentBytes: 16 << 10}
	return cfg
}

// TestRunPersistenceInvariant pins that teeing the run into a WAL changes
// nothing about the simulation outcome.
func TestRunPersistenceInvariant(t *testing.T) {
	volatile, err := Run(func() Config { c := persistConfig(7, ""); c.PersistDir = ""; return c }())
	if err != nil {
		t.Fatal(err)
	}
	durable, err := Run(persistConfig(7, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer durable.Close()
	if volatile.Metrics != durable.Metrics {
		t.Fatalf("metrics diverge:\nvolatile %+v\ndurable  %+v", volatile.Metrics, durable.Metrics)
	}
	if volatile.Log.Len() != durable.Log.Len() {
		t.Fatalf("event counts diverge: %d vs %d", volatile.Log.Len(), durable.Log.Len())
	}
}

// recoverRun reopens a persisted simulation directory.
func recoverRun(t *testing.T, dir string) (*store.Store, *store.Manifest, *eventlog.Log) {
	t.Helper()
	st, man, err := store.Open(dir, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	log, err := eventlog.OpenDurable(store.EventsDir(dir), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st, man, log
}

// requireWarmEqualsCold resumes the auditor from the manifest and asserts
// its first pass renders byte-identical violations — and equal Checked
// counts — to a cold fairness.CheckAll over the same recovered trace.
func requireWarmEqualsCold(t *testing.T, st *store.Store, man *store.Manifest, log *eventlog.Log, cfg fairness.Config) {
	t.Helper()
	if len(man.Audit) == 0 {
		t.Fatal("manifest carries no audit state")
	}
	var state audit.State
	if err := json.Unmarshal(man.Audit, &state); err != nil {
		t.Fatal(err)
	}
	if state.ConfigSig != audit.ConfigSig(cfg) {
		t.Fatalf("config signature mismatch: %q vs %q", state.ConfigSig, audit.ConfigSig(cfg))
	}
	warmEng, err := audit.Resume(st, log, cfg, &state)
	if err != nil {
		t.Fatal(err)
	}
	warm := warmEng.Audit()
	cold := fairness.CheckAll(st, log, cfg)
	if len(warm) != len(cold) {
		t.Fatalf("report counts: %d vs %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i].Checked != cold[i].Checked {
			t.Fatalf("%s: warm checked %d, cold %d", warm[i].Axiom, warm[i].Checked, cold[i].Checked)
		}
		if len(warm[i].Violations) != len(cold[i].Violations) {
			t.Fatalf("%s: warm %d violations, cold %d", warm[i].Axiom, len(warm[i].Violations), len(cold[i].Violations))
		}
		for j := range warm[i].Violations {
			if warm[i].Violations[j].String() != cold[i].Violations[j].String() {
				t.Fatalf("%s violation %d:\nwarm: %s\ncold: %s",
					warm[i].Axiom, j, warm[i].Violations[j], cold[i].Violations[j])
			}
		}
	}
}

// TestRunPersistRecoverAuditRoundTrip is the end-to-end acceptance flow:
// simulate → checkpoint+WAL → store.Open → warm audit == cold full scan.
func TestRunPersistRecoverAuditRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := persistConfig(3, dir)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, err := res.Store.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := res.Log.Len()
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}

	st, man, log := recoverRun(t, dir)
	defer st.Close()
	defer log.Close()
	gotSnap, err := st.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotSnap) != string(wantSnap) {
		t.Fatal("recovered store differs from the simulated one")
	}
	if log.Len() != wantEvents {
		t.Fatalf("recovered %d events, want %d", log.Len(), wantEvents)
	}
	requireWarmEqualsCold(t, st, man, log, cfg.AuditConfig)
}

// TestRunPersistRecoverAfterTornRecord tears the final bytes off the
// largest WAL segment (simulating a crash mid-append after the last
// checkpoint... the end-of-run checkpoint makes tails short, so rerun
// without the final checkpoint's truncation by tearing the events log and
// a changelog segment) and asserts warm-vs-cold equivalence still holds
// over the recovered prefix.
func TestRunPersistRecoverAfterTornRecord(t *testing.T) {
	dir := t.TempDir()
	cfg := persistConfig(11, dir)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint, the changelog WALs are truncated; damage the event
	// log's tail (events are never truncated) and the manifest still lets
	// the auditor warm-start over the shorter recovered trace.
	segs, err := filepath.Glob(filepath.Join(store.EventsDir(dir), "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no event segments: %v", err)
	}
	seg := segs[len(segs)-1]
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-2); err != nil {
		t.Fatal(err)
	}

	st, man, log := recoverRun(t, dir)
	defer st.Close()
	defer log.Close()
	if len(man.Audit) == 0 {
		t.Fatal("no audit state")
	}
	var state audit.State
	if err := json.Unmarshal(man.Audit, &state); err != nil {
		t.Fatal(err)
	}
	if state.EventPos > log.Len() {
		// The tear removed events the state depends on: resuming must be
		// refused, and a cold engine still matches the full scan.
		if _, err := audit.Resume(st, log, cfg.AuditConfig, &state); err == nil {
			t.Fatal("resume accepted a state beyond the recovered log")
		}
		eng := audit.New(st, log, cfg.AuditConfig)
		if !audit.ViolationsEqual(eng.Audit(), fairness.CheckAll(st, log, cfg.AuditConfig)) {
			t.Fatal("cold engine diverges from full scan after tear")
		}
		return
	}
	requireWarmEqualsCold(t, st, man, log, cfg.AuditConfig)
}

// TestRunPersistCheckpointIsComplete pins that the end-of-run checkpoint
// alone carries the whole trace: after it, the changelog WAL holds no
// unsnapshotted tail, and recovery lands exactly on the run's final
// version with a warm-startable auditor.
func TestRunPersistCheckpointIsComplete(t *testing.T) {
	dir := t.TempDir()
	cfg := persistConfig(5, dir)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	totalVersions := res.Store.Version()
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := store.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != totalVersions || man.Snapshot == "" {
		t.Fatalf("manifest version %d snapshot %q, run ended at %d", man.Version, man.Snapshot, totalVersions)
	}
	st, man2, log := recoverRun(t, dir)
	defer st.Close()
	defer log.Close()
	if st.Version() != totalVersions {
		t.Fatalf("recovered version %d, run ended at %d", st.Version(), totalVersions)
	}
	requireWarmEqualsCold(t, st, man2, log, cfg.AuditConfig)
}
