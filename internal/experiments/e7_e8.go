package experiments

import (
	"fmt"
	"time"

	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/transparency"
	"repro/internal/workload"
)

// E7Params sizes the checker-scalability experiment.
type E7Params struct {
	// Sizes is the worker-count sweep.
	Sizes []int
	Seed  uint64
}

// DefaultE7Params returns the scale used in EXPERIMENTS.md.
func DefaultE7Params(seed uint64) E7Params {
	return E7Params{Sizes: []int{100, 300, 1000, 3000}, Seed: seed}
}

// e7Spec exposes E7 to the sweep engine.
func e7Spec() Spec {
	return Spec{ID: "E7", Name: "axiom-1 checker scalability", Run: func(p Params) *Table {
		q := DefaultE7Params(p.Seed)
		for i, n := range q.Sizes {
			q.Sizes[i] = p.ScaleInt(n)
		}
		return E7CheckScale(q)
	}}
}

// e8Spec exposes E8 to the sweep engine.
func e8Spec() Spec {
	return Spec{ID: "E8", Name: "transparency rule-engine throughput", Run: func(p Params) *Table {
		q := DefaultE8Params(p.Seed)
		q.Evaluations = p.ScaleInt(q.Evaluations)
		return E8RuleEngine(q)
	}}
}

// e7Trace builds a store + offer log at a given worker scale with an
// assignment that produces some Axiom-1 violations (archetype-biased
// offers).
func e7Trace(workers int, seed uint64) (*store.Store, *eventlog.Log) {
	rng := stats.NewRNG(seed + 0xe7)
	pop := workload.GeneratePopulation(workload.PopulationSpec{
		Workers: workers, Archetypes: 8,
	}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{Tasks: workers / 4, Quota: 2}, pop, rng.Split())
	st := store.New(pop.Universe)
	for _, r := range batch.Requesters {
		mustDo(st.PutRequester(r))
	}
	for _, w := range pop.Workers {
		mustDo(st.PutWorker(w))
	}
	for _, t := range batch.Tasks {
		mustDo(st.PutTask(t))
	}
	log := eventlog.New()
	// Offer each task to qualified workers, skipping every 53rd worker —
	// a sparse access bias the checker must find. (Density matters: a
	// pathologically biased platform makes violation *reporting*, not pair
	// *checking*, the bottleneck, which is not what this experiment
	// measures.)
	for wi, w := range pop.Workers {
		if wi%53 == 0 {
			continue
		}
		for _, t := range batch.Tasks {
			if w.Skills.Covers(t.Skills) {
				log.MustAppend(eventlog.Event{Type: eventlog.TaskOffered, Worker: w.ID, Task: t.ID})
			}
		}
	}
	return st, log
}

// E7CheckScale measures the fairness-check benchmark of §3.3.1: Axiom-1
// audit cost at increasing scale, exhaustive O(n²) pair scan vs the skill
// inverted-index pruning (the ablation of DESIGN.md §4). Both variants must
// find the same violations; the table reports pair counts and wall time.
func E7CheckScale(p E7Params) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Axiom-1 checker scalability: exhaustive vs index-pruned pair generation",
		Columns: []string{"workers", "mode", "pairs-checked", "violations", "wall-time"},
		Notes: []string{
			"expected shape: identical violation counts; the indexed mode generates ~1/k of",
			"the candidate pairs (k = archetype count). Wall-time gains are bounded: truly",
			"similar pairs must be fully checked by both modes and dominate the audit cost,",
			"so pruning pays off exactly in proportion to how dissimilar the population is.",
		},
	}
	for _, n := range p.Sizes {
		st, log := e7Trace(n, p.Seed)
		for _, exhaustive := range []bool{true, false} {
			cfg := fairness.DefaultConfig()
			cfg.Exhaustive = exhaustive
			start := time.Now()
			rep := fairness.CheckAxiom1(st, log, cfg)
			elapsed := time.Since(start)
			mode := "indexed"
			if exhaustive {
				mode = "exhaustive"
			}
			t.AddRow(n, mode, rep.Checked, len(rep.Violations), elapsed.Round(time.Microsecond).String())
		}
	}
	return t
}

// E8Params sizes the rule-engine throughput experiment.
type E8Params struct {
	// RuleCounts is the policy-size sweep.
	RuleCounts []int
	// Evaluations per measurement.
	Evaluations int
	Seed        uint64
}

// DefaultE8Params returns the scale used in EXPERIMENTS.md.
func DefaultE8Params(seed uint64) E8Params {
	return E8Params{RuleCounts: []int{1, 10, 50, 100}, Evaluations: 2000, Seed: seed}
}

// SyntheticPolicy builds a well-formed policy with n rules cycling over the
// standard catalogue with a mix of triggers and conditions; used by E8 and
// the engine benchmarks.
func SyntheticPolicy(n int) *transparency.Policy {
	cat := transparency.StandardCatalogue()
	entries := cat.Entries()
	pol := &transparency.Policy{Name: fmt.Sprintf("synthetic-%d", n)}
	triggers := []transparency.Trigger{
		transparency.TriggerAlways, transparency.TriggerTaskView, transparency.TriggerPayment,
	}
	for i := 0; i < n; i++ {
		e := entries[i%len(entries)]
		r := &transparency.Rule{
			Field: e.Ref,
			To:    transparency.AudienceWorkers,
			On:    triggers[i%len(triggers)],
		}
		if i%4 == 3 {
			r.When = &transparency.BinaryExpr{
				Op:    ">=",
				Left:  &transparency.FieldExpr{Ref: transparency.FieldRef{Subject: transparency.SubjectWorker, Field: "completed"}},
				Right: &transparency.NumberExpr{Value: float64(i % 20)},
			}
		}
		pol.Rules = append(pol.Rules, r)
	}
	return pol
}

// E8Context returns the evaluation context used by E8 and the benchmarks.
func E8Context() *transparency.Context {
	return transparency.NewContext().
		SetNum(transparency.SubjectWorker, "completed", 12).
		SetNum(transparency.SubjectWorker, "performance", 0.8).
		SetNum(transparency.SubjectWorker, "acceptance_ratio", 0.9).
		SetNum(transparency.SubjectTask, "reward", 1.5)
}

// E8RuleEngine measures the declarative engine of §3.3.2: parse cost (via
// the canonical round-trip source) and evaluation throughput at increasing
// policy sizes.
func E8RuleEngine(p E8Params) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Declarative transparency rule engine throughput",
		Columns: []string{"rules", "parse-time", "evals", "eval-time-total", "evals-per-sec"},
		Notes: []string{
			"expected shape: parse and eval cost grow linearly in rule count;",
			"throughput stays far above any plausible platform event rate.",
		},
	}
	cat := transparency.StandardCatalogue()
	for _, n := range p.RuleCounts {
		pol := SyntheticPolicy(n)
		src := pol.String()

		start := time.Now()
		parsed, err := transparency.Parse(src)
		if err != nil {
			panic(err)
		}
		if errs := cat.Check(parsed); len(errs) > 0 {
			panic(errs[0])
		}
		parseTime := time.Since(start)

		ctx := E8Context()
		start = time.Now()
		for i := 0; i < p.Evaluations; i++ {
			if _, err := parsed.Evaluate(cat, ctx, transparency.AudienceWorkers, transparency.TriggerTaskView); err != nil {
				panic(err)
			}
		}
		evalTime := time.Since(start)
		perSec := float64(p.Evaluations) / evalTime.Seconds()
		t.AddRow(n, parseTime.Round(time.Microsecond).String(), p.Evaluations,
			evalTime.Round(time.Microsecond).String(), fmt.Sprintf("%.0f", perSec))
	}
	return t
}
