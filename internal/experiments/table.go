// Package experiments implements the evaluation protocol of DESIGN.md:
// experiments E1–E8, each reproducing one question the paper's §3.3.1
// ("fairness check benchmarks"), §4.1 (objective validation measures), or
// §4.2 (research agenda: assess the discriminatory power of existing
// algorithms) poses. Every experiment returns a Table that cmd/benchrunner
// prints and EXPERIMENTS.md records; bench_test.go wraps the same entry
// points in testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Table is one experiment's result grid.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes the experiment and its paper anchor.
	Title string
	// Columns are the header names.
	Columns []string
	// Rows hold pre-formatted cells, parallel to Columns.
	Rows [][]string
	// Notes carry the expected-shape commentary checked in EXPERIMENTS.md.
	Notes []string
}

// AddRow appends a row of cells formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// All runs every experiment at its default scale with the given seed and
// returns the tables in order, driving the same Spec registry the sweep
// engine uses.
func All(seed uint64) []*Table {
	specs := Specs()
	out := make([]*Table, len(specs))
	for i, s := range specs {
		out[i] = s.Run(Params{Seed: seed, Scale: 1})
	}
	return out
}
