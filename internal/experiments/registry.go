package experiments

import "math"

// Params is the uniform knob set every experiment accepts through its Spec:
// a seed for the deterministic RNG streams and a scale factor applied to
// the experiment's default population/task sizes. It is what lets the sweep
// engine drive E1–E11 over a grid without knowing any per-experiment
// parameter struct.
type Params struct {
	// Seed feeds every RNG stream of the experiment.
	Seed uint64
	// Scale multiplies the default sizes (workers, tasks, questions, ...).
	// Zero or negative means 1.0 (the EXPERIMENTS.md defaults).
	Scale float64
}

// ScaleInt applies the scale factor to a default size, never returning
// less than 1 so scaled-down experiments stay well-formed.
func (p Params) ScaleInt(n int) int {
	s := p.Scale
	if s <= 0 {
		s = 1
	}
	scaled := int(math.Round(float64(n) * s))
	if scaled < 1 {
		return 1
	}
	return scaled
}

// Spec is the uniform description of one experiment: an identifier, a
// short name for reports, and a Run hook the sweep engine can drive with
// nothing but Params.
type Spec struct {
	// ID is the experiment identifier ("E1".."E11").
	ID string
	// Name is a short human description.
	Name string
	// Run executes the experiment at the given seed and scale.
	Run func(p Params) *Table
}

// Specs returns every experiment in report order, E1 through E11.
func Specs() []Spec {
	return []Spec{
		e1Spec(), e2Spec(), e3Spec(), e4Spec(), e5Spec(),
		e6Spec(), e7Spec(), e8Spec(), e9Spec(), e10Spec(), e11Spec(),
	}
}

// SpecByID resolves an experiment by identifier; the boolean is false for
// unknown IDs.
func SpecByID(id string) (Spec, bool) {
	for _, s := range Specs() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// IDs returns the identifiers of every experiment in report order.
func IDs() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.ID
	}
	return out
}
