package experiments

import (
	"fmt"

	"repro/internal/assign"
	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/workload"
)

// E1Params sizes the discriminatory-power experiment.
type E1Params struct {
	Workers int
	Tasks   int
	Seed    uint64
}

// DefaultE1Params returns the scale used in EXPERIMENTS.md.
func DefaultE1Params(seed uint64) E1Params {
	return E1Params{Workers: 400, Tasks: 200, Seed: seed}
}

// e1Spec exposes E1 to the sweep engine.
func e1Spec() Spec {
	return Spec{ID: "E1", Name: "discriminatory power of task assignment", Run: func(p Params) *Table {
		q := DefaultE1Params(p.Seed)
		q.Workers = p.ScaleInt(q.Workers)
		q.Tasks = p.ScaleInt(q.Tasks)
		return E1Assignment(q)
	}}
}

// e2Spec exposes E2 to the sweep engine.
func e2Spec() Spec {
	return Spec{ID: "E2", Name: "requester fairness in task visibility", Run: func(p Params) *Table {
		q := DefaultE2Params(p.Seed)
		q.Workers = p.ScaleInt(q.Workers)
		q.Tasks = p.ScaleInt(q.Tasks)
		return E2Visibility(q)
	}}
}

// e1Env builds the shared population/tasks/store for E1/E2.
func e1Env(workers, tasks int, seed uint64) (*workload.Population, *workload.Batch, *store.Store) {
	rng := stats.NewRNG(seed + 0xe1)
	// A heterogeneous population (acceptance ratios spread over [0.4, 1.0])
	// is what gives requester-centric assignment something to discriminate
	// on; five requesters against four archetypes guarantees comparable
	// cross-requester task pairs for Axiom 2.
	pop := workload.GeneratePopulation(workload.PopulationSpec{
		Workers: workers, AcceptanceMean: 0.7, AcceptanceSpread: 0.3,
	}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{
		Tasks: tasks, Requesters: 5, Quota: 2, OverPublish: 1.5,
	}, pop, rng.Split())
	st := store.New(pop.Universe)
	for _, r := range batch.Requesters {
		if err := st.PutRequester(r); err != nil {
			panic(err)
		}
	}
	for _, w := range pop.Workers {
		if err := st.PutWorker(w); err != nil {
			panic(err)
		}
	}
	for _, t := range batch.Tasks {
		if err := st.PutTask(t); err != nil {
			panic(err)
		}
	}
	return pop, batch, st
}

// E1Assignment assesses the discriminatory power of each assignment
// algorithm (§3.1.1, §4.2): Axiom-1 violation rate over similar-worker
// pairs, requester utility, income Gini (each assignment earns the task
// reward), and the share of workers left with no work.
func E1Assignment(p E1Params) *Table {
	pop, batch, st := e1Env(p.Workers, p.Tasks, p.Seed)
	t := &Table{
		ID:    "E1",
		Title: fmt.Sprintf("Discriminatory power of task assignment (%d workers, %d tasks)", p.Workers, p.Tasks),
		Columns: []string{"algorithm", "axiom1-violation-rate", "requester-utility",
			"income-gini", "jobless-rate", "assignments"},
		Notes: []string{
			"expected shape: requester-centric maximises utility with the worst fairness;",
			"self-appointment and fair-round-robin have (near-)zero Axiom-1 violations;",
			"online-greedy sits between the two regimes.",
		},
	}
	cfg := fairness.DefaultConfig()
	for _, a := range assign.All() {
		res, err := a.Assign(&assign.Problem{
			Workers: pop.Workers, Tasks: batch.Tasks, Capacity: 2,
			RNG: stats.NewRNG(p.Seed + 7),
		})
		if err != nil {
			panic(err)
		}
		rep := fairness.Axiom1FromOffers(st, res.Offers, cfg)

		rewardByTask := make(map[model.TaskID]float64, len(batch.Tasks))
		for _, task := range batch.Tasks {
			rewardByTask[task.ID] = task.Reward
		}
		income := make(map[model.WorkerID]float64, len(pop.Workers))
		for _, w := range pop.Workers {
			income[w.ID] = 0
		}
		for _, as := range res.Assignments {
			income[as.Worker] += rewardByTask[as.Task]
		}
		incomes := make([]float64, 0, len(income))
		jobless := 0
		for _, w := range pop.Workers {
			incomes = append(incomes, income[w.ID])
			if income[w.ID] == 0 {
				jobless++
			}
		}
		t.AddRow(a.Name(), rep.ViolationRate(), res.Utility,
			stats.Gini(incomes), float64(jobless)/float64(len(pop.Workers)), len(res.Assignments))
	}
	return t
}

// E2Params sizes the task-visibility experiment.
type E2Params struct {
	Workers int
	Tasks   int
	Seed    uint64
}

// DefaultE2Params returns the scale used in EXPERIMENTS.md.
func DefaultE2Params(seed uint64) E2Params {
	return E2Params{Workers: 300, Tasks: 120, Seed: seed}
}

// E2Visibility audits Axiom 2 per algorithm: do comparable tasks posted by
// different requesters reach the same audiences?
func E2Visibility(p E2Params) *Table {
	pop, batch, st := e1Env(p.Workers, p.Tasks, p.Seed)
	t := &Table{
		ID:    "E2",
		Title: fmt.Sprintf("Requester fairness in task visibility (%d workers, %d tasks)", p.Workers, p.Tasks),
		Columns: []string{"algorithm", "comparable-pairs", "axiom2-violation-rate",
			"mean-audience-size"},
		Notes: []string{
			"expected shape: full-visibility mechanisms (self-appointment, worker-centric,",
			"fair-round-robin) satisfy Axiom 2; slate- and pick-based mechanisms violate it.",
		},
	}
	cfg := fairness.DefaultConfig()
	for _, a := range assign.All() {
		res, err := a.Assign(&assign.Problem{
			Workers: pop.Workers, Tasks: batch.Tasks, Capacity: 2,
			RNG: stats.NewRNG(p.Seed + 11),
		})
		if err != nil {
			panic(err)
		}
		log := eventlog.New()
		audSize := make(map[model.TaskID]int)
		for _, w := range pop.Workers {
			for _, tid := range res.Offers[w.ID] {
				log.MustAppend(eventlog.Event{Type: eventlog.TaskOffered, Worker: w.ID, Task: tid})
				audSize[tid]++
			}
		}
		rep := fairness.CheckAxiom2(st, log, cfg)
		var meanAud float64
		if len(batch.Tasks) > 0 {
			total := 0
			for _, task := range batch.Tasks {
				total += audSize[task.ID]
			}
			meanAud = float64(total) / float64(len(batch.Tasks))
		}
		t.AddRow(a.Name(), rep.Checked, rep.ViolationRate(), meanAud)
	}
	return t
}
