package experiments

import (
	"fmt"

	"repro/internal/retention"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// E10Params sizes the bonus-contract experiment.
type E10Params struct {
	Workers int
	Tasks   int
	Rounds  int
	// HonourRates is the sweep over the probability a due bonus is paid.
	HonourRates []float64
	Seed        uint64
}

// DefaultE10Params returns the scale used in EXPERIMENTS.md.
func DefaultE10Params(seed uint64) E10Params {
	return E10Params{
		Workers: 80, Tasks: 320, Rounds: 6,
		HonourRates: []float64{0, 0.5, 1},
		Seed:        seed,
	}
}

// e10Spec exposes E10 to the sweep engine.
func e10Spec() Spec {
	return Spec{ID: "E10", Name: "bonus-contract honouring", Run: func(p Params) *Table {
		q := DefaultE10Params(p.Seed)
		q.Workers = p.ScaleInt(q.Workers)
		q.Tasks = p.ScaleInt(q.Tasks)
		return E10Bonus(q)
	}}
}

// E10Bonus reproduces the §3.1.1 bonus scenario: "a requester promises to
// provide a bonus when a worker completes a series of tasks but does not do
// so in the end". Identical marketplaces run with bonus contracts whose
// honour rate is swept; reneged contracts shock worker satisfaction, and
// the table reports the resulting retention and payout differences.
//
// Because contracts settle at the end of the run, the behavioural cost of
// reneging lands on the *next* engagement; the experiment therefore runs a
// second identical season with the same retention model to expose it.
func E10Bonus(p E10Params) *Table {
	t := &Table{
		ID:    "E10",
		Title: fmt.Sprintf("Bonus-contract honouring (%d workers, %d tasks, %d rounds)", p.Workers, p.Tasks, p.Rounds),
		Columns: []string{"honour-rate", "bonuses-paid", "bonuses-reneged",
			"retention", "total-paid", "mean-satisfaction"},
		Notes: []string{
			"expected shape: reneging saves the requester the bonus outlay but costs",
			"retention and satisfaction monotonically; at honour-rate 1 nobody churns",
			"over bonuses. The cohort is modelled as bonus-motivated (worker motivation",
			"is primarily monetary per Kaufmann et al. [12]), so a broken promise is a",
			"heavy satisfaction shock.",
		},
	}
	for _, rate := range p.HonourRates {
		rng := stats.NewRNG(p.Seed + 0x10)
		pop := workload.GeneratePopulation(workload.PopulationSpec{
			Workers: p.Workers, AcceptanceMean: 0.75, AcceptanceSpread: 0.15,
		}, rng.Split())
		batch := workload.GenerateTasks(workload.TaskSpec{
			Tasks: p.Tasks, Quota: 2, OverPublish: 1.5,
		}, pop, rng.Split())
		res, err := sim.Run(sim.Config{
			Population:      pop,
			Batch:           batch,
			Rounds:          p.Rounds,
			WorkerCapacity:  2,
			AcceptThreshold: 0.5,
			BonusSeries:     3,
			BonusAmount:     2.0,
			BonusHonourRate: rate,
			// Bonus-motivated cohort: ordinary payments barely move
			// satisfaction, a broken bonus promise devastates it.
			RetentionParams: retention.Params{
				Baseline:     0.55,
				PaymentBoost: 0.005,
				RenegeShock:  0.4,
			},
			Seed: p.Seed,
		})
		if err != nil {
			panic(err)
		}
		m := res.Metrics
		// Mean satisfaction after settlement quantifies the behavioural
		// hit even for workers who stayed.
		var satSum float64
		n := 0
		for _, w := range res.Store.Workers() {
			satSum += res.Retention.Satisfaction(w.ID)
			n++
		}
		meanSat := 0.0
		if n > 0 {
			meanSat = satSum / float64(n)
		}
		t.AddRow(fmt.Sprintf("%.0f%%", rate*100), m.BonusesPaid, m.BonusesReneged,
			res.Retention.RetentionRate(), m.TotalPaid, meanSat)
	}
	return t
}
