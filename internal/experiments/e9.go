package experiments

import (
	"fmt"

	"repro/internal/assign"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/pay"
	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/workload"
)

// E9Params sizes the ablation experiment.
type E9Params struct {
	Workers int
	Tasks   int
	// Lambdas is the tradeoff sweep (default 0, 0.25, 0.5, 0.75, 1).
	Lambdas []float64
	Seed    uint64
}

// DefaultE9Params returns the scale used in EXPERIMENTS.md.
func DefaultE9Params(seed uint64) E9Params {
	return E9Params{
		Workers: 200, Tasks: 100,
		Lambdas: []float64{0, 0.25, 0.5, 0.75, 1},
		Seed:    seed,
	}
}

// e9Spec exposes E9 to the sweep engine.
func e9Spec() Spec {
	return Spec{ID: "E9", Name: "design ablations", Run: func(p Params) *Table {
		q := DefaultE9Params(p.Seed)
		q.Workers = p.ScaleInt(q.Workers)
		q.Tasks = p.ScaleInt(q.Tasks)
		return E9Ablations(q)
	}}
}

// E9Ablations covers the design-choice ablations of DESIGN.md §4 in three
// sections sharing one table:
//
//  1. similarity-measure choice in the Axiom-1 predicate (cosine vs
//     jaccard vs exact) — the paper leaves the measure platform-dependent;
//     the ablation shows how the choice moves the violation count on the
//     same trace;
//  2. the Tradeoff assigner's Lambda sweep — utility against income
//     balance with access fairness held fixed (full visibility);
//  3. enforcement cost — the number of offer grants RepairAxiom1 needs to
//     fix a requester-centric trace, and the Axiom-3 pay top-up each
//     compensation scheme owes.
func E9Ablations(p E9Params) *Table {
	t := &Table{
		ID:      "E9",
		Title:   fmt.Sprintf("Design ablations (%d workers, %d tasks)", p.Workers, p.Tasks),
		Columns: []string{"section", "variant", "metric-1", "metric-2", "metric-3"},
		Notes: []string{
			"section A (axiom1-measure): variant = similarity measure; metrics = similar",
			"pairs, violations, violation rate. Stricter measures shrink the audited set.",
			"section B (tradeoff): variant = lambda; metrics = requester utility, income",
			"gini, axiom1 violations (always 0: visibility is full by construction).",
			"section C (repair): variant = repaired object; metrics per row in place.",
		},
	}

	// --- Section A: Axiom-1 similarity-measure ablation -----------------
	// A noisy population (workers flip one extra skill on occasionally) is
	// what separates the measures: exact equality excludes every perturbed
	// worker from the audited set, cosine/jaccard keep them with different
	// strictness.
	rngA := stats.NewRNG(p.Seed + 0xa)
	popA := workload.GeneratePopulation(workload.PopulationSpec{
		Workers: p.Workers, SkillNoise: 0.5,
		AcceptanceMean: 0.7, AcceptanceSpread: 0.3,
	}, rngA.Split())
	batchA := workload.GenerateTasks(workload.TaskSpec{
		Tasks: p.Tasks, Requesters: 5, Quota: 2, OverPublish: 1.5,
	}, popA, rngA.Split())
	stA := store.New(popA.Universe)
	for _, r := range batchA.Requesters {
		mustDo(stA.PutRequester(r))
	}
	for _, w := range popA.Workers {
		mustDo(stA.PutWorker(w))
	}
	for _, task := range batchA.Tasks {
		mustDo(stA.PutTask(task))
	}
	resA, err := (assign.RequesterCentric{}).Assign(&assign.Problem{
		Workers: popA.Workers, Tasks: batchA.Tasks, Capacity: 2,
		RNG: stats.NewRNG(p.Seed + 3),
	})
	if err != nil {
		panic(err)
	}
	// Threshold 0.85 is where the measures genuinely disagree on this
	// population: a worker with one extra skill scores 3/√12 ≈ 0.87 under
	// cosine (kept), 3/4 = 0.75 under Jaccard (excluded), and 0 under
	// exact equality (excluded).
	for _, m := range []similarity.VectorMeasure{
		similarity.MeasureCosine, similarity.MeasureJaccard, similarity.MeasureExact,
	} {
		cfg := fairness.DefaultConfig()
		cfg.SkillMeasure = m
		cfg.SkillThreshold = 0.85
		rep := fairness.Axiom1FromOffers(stA, resA.Offers, cfg)
		t.AddRow("A:axiom1-measure", m.Name+"@0.85", rep.Checked, len(rep.Violations), rep.ViolationRate())
	}

	// --- shared environment for sections B and C -------------------------
	pop, batch, st := e1Env(p.Workers, p.Tasks, p.Seed)
	res, err := (assign.RequesterCentric{}).Assign(&assign.Problem{
		Workers: pop.Workers, Tasks: batch.Tasks, Capacity: 2,
		RNG: stats.NewRNG(p.Seed + 3),
	})
	if err != nil {
		panic(err)
	}

	// --- Section B: Tradeoff lambda sweep --------------------------------
	for _, lambda := range p.Lambdas {
		tres, err := (assign.Tradeoff{Lambda: lambda}).Assign(&assign.Problem{
			Workers: pop.Workers, Tasks: batch.Tasks, Capacity: 2,
			RNG: stats.NewRNG(p.Seed + 5),
		})
		if err != nil {
			panic(err)
		}
		rewardByTask := make(map[model.TaskID]float64, len(batch.Tasks))
		for _, task := range batch.Tasks {
			rewardByTask[task.ID] = task.Reward
		}
		income := make(map[model.WorkerID]float64, len(pop.Workers))
		for _, w := range pop.Workers {
			income[w.ID] = 0
		}
		for _, a := range tres.Assignments {
			income[a.Worker] += rewardByTask[a.Task]
		}
		incomes := make([]float64, 0, len(income))
		for _, w := range pop.Workers {
			incomes = append(incomes, income[w.ID])
		}
		rep := fairness.Axiom1FromOffers(st, tres.Offers, fairness.DefaultConfig())
		t.AddRow("B:tradeoff", fmt.Sprintf("lambda=%.2f", lambda),
			tres.Utility, stats.Gini(incomes), len(rep.Violations))
	}

	// --- Section C: repair/enforcement cost ------------------------------
	cfg := fairness.DefaultConfig()
	before := fairness.Axiom1FromOffers(st, res.Offers, cfg)
	grants := fairness.RepairAxiom1(st, res.Offers, cfg)
	after := fairness.Axiom1FromOffers(st, fairness.ApplyGrants(res.Offers, grants), cfg)
	t.AddRow("C:repair-axiom1", "requester-centric trace",
		fmt.Sprintf("violations-before=%d", len(before.Violations)),
		fmt.Sprintf("grants=%d", len(grants)),
		fmt.Sprintf("violations-after=%d", len(after.Violations)))

	for _, scheme := range pay.Schemes() {
		stPay := e9PayTrace(p, scheme)
		adjs := fairness.RepairAxiom3(stPay, cfg)
		repBefore := fairness.CheckAxiom3(stPay, cfg)
		t.AddRow("C:repair-axiom3", scheme.Name(),
			fmt.Sprintf("violations=%d", len(repBefore.Violations)),
			fmt.Sprintf("top-ups=%d", len(adjs)),
			fmt.Sprintf("cost=%.2f", fairness.TotalAdjustment(adjs)))
	}
	return t
}

// e9PayTrace builds a store with contributions paid under the scheme, as in
// E3 but smaller.
func e9PayTrace(p E9Params, scheme pay.Scheme) *store.Store {
	rng := stats.NewRNG(p.Seed + 0xe9)
	pop := workload.GeneratePopulation(workload.PopulationSpec{Workers: 20}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{Tasks: 8, Requesters: 2}, pop, rng.Split())
	st := store.New(pop.Universe)
	for _, r := range batch.Requesters {
		mustDo(st.PutRequester(r))
	}
	ids := make([]model.WorkerID, len(pop.Workers))
	for i, w := range pop.Workers {
		ids[i] = w.ID
		mustDo(st.PutWorker(w))
	}
	for _, task := range batch.Tasks {
		mustDo(st.PutTask(task))
		contribs, _ := workload.GenerateContributions(workload.ContributionSpec{
			Contributors: 20, Clusters: 3, QualityJitter: 0.15,
		}, task, ids, rng.Split())
		for _, c := range contribs {
			c.Accepted = c.Quality >= 0.6
		}
		pays := scheme.Pay(task, contribs)
		for i, c := range contribs {
			c.Paid = pays[i]
			mustDo(st.PutContribution(c))
		}
	}
	return st
}
