package experiments

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/workload"
)

// E11Params sizes the incremental-audit experiment.
type E11Params struct {
	// Sizes is the worker-count sweep.
	Sizes []int
	// Rounds is the number of mutate-then-audit cycles per size.
	Rounds int
	// DirtyFrac is the fraction of workers mutated per round (the paper's
	// continuous-monitoring regime: a trickle of change between audits).
	DirtyFrac float64
	Seed      uint64
}

// DefaultE11Params returns the scale used in EXPERIMENTS.md.
func DefaultE11Params(seed uint64) E11Params {
	return E11Params{Sizes: []int{300, 1000}, Rounds: 6, DirtyFrac: 0.01, Seed: seed}
}

// e11Spec exposes E11 to the sweep engine.
func e11Spec() Spec {
	return Spec{ID: "E11", Name: "incremental vs full-rescan audits", Run: func(p Params) *Table {
		q := DefaultE11Params(p.Seed)
		for i, n := range q.Sizes {
			q.Sizes[i] = p.ScaleInt(n)
		}
		return E11IncrementalAudit(q)
	}}
}

// E11IncrementalAudit measures the tentpole of the continuous-monitoring
// deployment: a platform whose state drifts a little every tick (DirtyFrac
// of workers mutate, a few offers land) is audited after every round, once
// by the full five-axiom rescan and once by the incremental engine
// (internal/audit) that re-checks only dirty pairs over a changelog-fed
// similarity cache. The table reports total wall time over all rounds for
// both modes, the speedup, and whether the reported violations stayed
// identical (they must — the engine's contract).
func E11IncrementalAudit(p E11Params) *Table {
	t := &Table{
		ID:    "E11",
		Title: fmt.Sprintf("Incremental vs full-rescan fairness audits (%d rounds, %.1f%% dirty/round)", p.Rounds, p.DirtyFrac*100),
		Columns: []string{"workers", "cold-start", "full-total", "incr-total",
			"speedup", "identical-violations"},
		Notes: []string{
			"expected shape: identical violations always; incremental total falls further",
			"behind the full rescan as the population grows, because delta passes scale",
			"with the dirty fraction while full passes scale with the candidate-pair count.",
		},
	}
	for _, n := range p.Sizes {
		rng := stats.NewRNG(p.Seed + 0xe11)
		pop := workload.GeneratePopulation(workload.PopulationSpec{
			Workers: n, Archetypes: 8,
		}, rng.Split())
		nTasks := n / 4
		if nTasks < 1 {
			nTasks = 1 // scaled-down sweeps must stay well-formed
		}
		batch := workload.GenerateTasks(workload.TaskSpec{
			Tasks: nTasks, Quota: 2,
		}, pop, rng.Split())
		st := store.New(pop.Universe)
		for _, r := range batch.Requesters {
			mustDo(st.PutRequester(r))
		}
		for _, w := range pop.Workers {
			mustDo(st.PutWorker(w))
		}
		for _, task := range batch.Tasks {
			mustDo(st.PutTask(task))
		}
		log := eventlog.New()
		for wi, w := range pop.Workers {
			if wi%53 == 0 {
				continue // sparse access bias: material for Axiom 1
			}
			for _, task := range batch.Tasks {
				if w.Skills.Covers(task.Skills) {
					log.MustAppend(eventlog.Event{Type: eventlog.TaskOffered, Worker: w.ID, Task: task.ID})
				}
			}
		}

		cfg := fairness.DefaultConfig()
		eng := audit.New(st, log, cfg)
		coldStart := time.Now()
		eng.Audit()
		cold := time.Since(coldStart)

		nDirty := int(float64(n) * p.DirtyFrac)
		if nDirty < 1 {
			nDirty = 1
		}
		var fullTotal, incrTotal time.Duration
		identical := true
		for round := 0; round < p.Rounds; round++ {
			for i := 0; i < nDirty; i++ {
				w, err := st.Worker(pop.Workers[rng.Intn(len(pop.Workers))].ID)
				mustDo(err)
				w.Computed[model.AttrAcceptanceRatio] = model.Num(rng.Float64())
				mustDo(st.UpdateWorker(w))
			}
			for i := 0; i < nDirty; i++ {
				log.MustAppend(eventlog.Event{
					Type:   eventlog.TaskOffered,
					Worker: pop.Workers[rng.Intn(len(pop.Workers))].ID,
					Task:   batch.Tasks[rng.Intn(len(batch.Tasks))].ID,
				})
			}
			start := time.Now()
			incr := eng.Audit()
			incrTotal += time.Since(start)
			start = time.Now()
			full := fairness.CheckAll(st, log, cfg)
			fullTotal += time.Since(start)
			if !audit.ViolationsEqual(incr, full) {
				identical = false
			}
		}
		speedup := 0.0
		if incrTotal > 0 {
			speedup = float64(fullTotal) / float64(incrTotal)
		}
		t.AddRow(n, cold.Round(time.Microsecond).String(),
			fullTotal.Round(time.Microsecond).String(),
			incrTotal.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", speedup), identical)
	}
	return t
}
