package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/workload"
)

// Small-scale parameters keep the full suite fast in CI while still
// exercising every experiment's code path and shape assertions.

func findRow(t *Table, match func(row []string) bool) []string {
	for _, r := range t.Rows {
		if match(r) {
			return r
		}
	}
	return nil
}

func cell(t *testing.T, row []string, i int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[i], 64)
	if err != nil {
		t.Fatalf("cell %d = %q: %v", i, row[i], err)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	tab := E1Assignment(E1Params{Workers: 80, Tasks: 40, Seed: 1})
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byAlgo := make(map[string][]string)
	for _, r := range tab.Rows {
		byAlgo[r[0]] = r
	}
	// Fair mechanisms have zero Axiom-1 violations.
	for _, name := range []string{"self-appointment", "worker-centric", "fair-round-robin"} {
		if rate := cell(t, byAlgo[name], 1); rate != 0 {
			t.Errorf("%s violation rate = %v, want 0", name, rate)
		}
	}
	// Requester-centric violates and earns at least as much utility as the
	// fair baseline.
	rc := byAlgo["requester-centric"]
	if rate := cell(t, rc, 1); rate == 0 {
		t.Error("requester-centric shows no discrimination")
	}
	if cell(t, rc, 2) < cell(t, byAlgo["fair-round-robin"], 2) {
		t.Error("requester-centric utility below fair baseline")
	}
}

func TestE2Shape(t *testing.T) {
	tab := E2Visibility(E2Params{Workers: 60, Tasks: 30, Seed: 1})
	byAlgo := make(map[string][]string)
	for _, r := range tab.Rows {
		byAlgo[r[0]] = r
	}
	if pairs := cell(t, byAlgo["self-appointment"], 1); pairs == 0 {
		t.Fatal("no comparable pairs generated — Axiom 2 untested")
	}
	if rate := cell(t, byAlgo["self-appointment"], 2); rate != 0 {
		t.Errorf("self-appointment Axiom 2 rate = %v", rate)
	}
	if rate := cell(t, byAlgo["requester-centric"], 2); rate == 0 {
		t.Error("requester-centric shows no Axiom 2 violations")
	}
}

func TestE3Shape(t *testing.T) {
	tab := E3Compensation(E3Params{Contributors: 12, Clusters: 3, Tasks: 6, Seed: 1})
	byScheme := make(map[string][]string)
	for _, r := range tab.Rows {
		byScheme[r[0]] = r
	}
	if rate := cell(t, byScheme["similarity-fair"], 2); rate != 0 {
		t.Errorf("similarity-fair violation rate = %v, want 0", rate)
	}
	if rate := cell(t, byScheme["quality-based"], 2); rate == 0 {
		t.Error("quality-based shows no Axiom 3 violations")
	}
	// The fair scheme conserves the quality-based total.
	if byScheme["quality-based"][4] != byScheme["similarity-fair"][4] {
		t.Errorf("totals differ: %v vs %v", byScheme["quality-based"][4], byScheme["similarity-fair"][4])
	}
}

func TestE4Shape(t *testing.T) {
	tab := E4Detection(E4Params{
		Workers: 60, Questions: 30,
		SpamFractions: []float64{0.2, 0.4},
		SpamModels:    []workload.SpamModel{workload.SpamRandom, workload.SpamUniform},
		Threshold:     0.5, Seed: 1,
	})
	if len(tab.Rows) != 16 { // 4 detectors × 2 models × 2 fractions
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		detector, spamModel := r[0], r[1]
		f1 := cell(t, r, 5)
		switch {
		case detector == "gold-question":
			// Gold questions are robust to both models.
			if f1 < 0.8 {
				t.Errorf("gold-question %s: F1 = %v, want >= 0.8", spamModel, f1)
			}
		case detector == "agreement" && spamModel == "random",
			detector == "majority-deviation" && spamModel == "random",
			detector == "label-entropy" && spamModel == "uniform":
			// Each crowd-signal detector on its suited model.
			if f1 < 0.8 {
				t.Errorf("%s on %s spam: F1 = %v, want >= 0.8", detector, spamModel, f1)
			}
		case detector == "label-entropy" && spamModel == "random":
			// The documented blind spot.
			if f1 > 0.5 {
				t.Errorf("label-entropy on random spam: F1 = %v, expected blindness", f1)
			}
		}
	}
}

func TestE5Shape(t *testing.T) {
	tab := E5Completion(E5Params{
		WorkersPerTask: 8, Tasks: 10, OverPublish: []float64{1.0, 2.0}, Seed: 1,
	})
	for _, r := range tab.Rows {
		policy, over := r[0], r[1]
		violations := cell(t, r, 4)
		switch {
		case policy != "on-quota" && violations != 0:
			t.Errorf("%s/%s: violations = %v, want 0", policy, over, violations)
		case policy == "on-quota" && over == "2.0x" && violations == 0:
			t.Error("on-quota 2x over-publication produced no violations")
		}
	}
}

func TestE6Shape(t *testing.T) {
	// Labour-scarce regime (like the default parameters): task slots exceed
	// worker capacity, so churn costs output. In a labour-surplus regime the
	// survivorship effect can invert the totals — see the E6 notes.
	tab := E6Retention(E6Params{Workers: 20, Tasks: 120, Rounds: 4, Seed: 1})
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Retention must be non-decreasing in transparency score, and the full
	// policy must strictly beat opaque on retention.
	var prev float64 = -1
	for _, r := range tab.Rows {
		ret := cell(t, r, 2)
		if ret < prev-1e-9 {
			t.Errorf("retention not monotone: %v after %v", ret, prev)
		}
		prev = ret
	}
	opaque, full := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	if cell(t, full, 2) <= cell(t, opaque, 2) {
		t.Error("full transparency does not beat opaque on retention")
	}
	if cell(t, full, 3) <= cell(t, opaque, 3) {
		t.Error("full transparency does not beat opaque on total output")
	}
}

func TestE7Shape(t *testing.T) {
	tab := E7CheckScale(E7Params{Sizes: []int{60, 120}, Seed: 1})
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Per size: identical violation counts, fewer indexed pairs.
	for i := 0; i < len(tab.Rows); i += 2 {
		ex, idx := tab.Rows[i], tab.Rows[i+1]
		if ex[3] != idx[3] {
			t.Errorf("violations differ at %s workers: %s vs %s", ex[0], ex[3], idx[3])
		}
		if cell(t, idx, 2) >= cell(t, ex, 2) {
			t.Errorf("indexed checked %s pairs, exhaustive %s", idx[2], ex[2])
		}
	}
}

func TestE8Shape(t *testing.T) {
	tab := E8RuleEngine(E8Params{RuleCounts: []int{1, 20}, Evaluations: 100, Seed: 1})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if perSec := cell(t, r, 4); perSec < 1000 {
			t.Errorf("throughput %v evals/sec is implausibly low", perSec)
		}
	}
}

func TestE9Shape(t *testing.T) {
	tab := E9Ablations(E9Params{Workers: 60, Tasks: 30, Lambdas: []float64{0, 1}, Seed: 1})
	// Section A: cosine@0.85 must find at least as many violations as
	// exact@0.85 (it keeps more pairs in the audited set).
	var cosineV, exactV float64
	for _, r := range tab.Rows {
		switch {
		case r[0] == "A:axiom1-measure" && strings.HasPrefix(r[1], "cosine"):
			cosineV = cell(t, r, 3)
		case r[0] == "A:axiom1-measure" && strings.HasPrefix(r[1], "exact"):
			exactV = cell(t, r, 3)
		}
	}
	if cosineV < exactV {
		t.Errorf("cosine found %v violations, exact %v — stricter measure found more", cosineV, exactV)
	}
	// Section B: lambda=1 must earn at least lambda=0's utility.
	var u0, u1 float64
	for _, r := range tab.Rows {
		if r[0] != "B:tradeoff" {
			continue
		}
		if r[1] == "lambda=0.00" {
			u0 = cell(t, r, 2)
		}
		if r[1] == "lambda=1.00" {
			u1 = cell(t, r, 2)
		}
	}
	if u1 < u0 {
		t.Errorf("lambda=1 utility %v below lambda=0's %v", u1, u0)
	}
	// Section C: the Axiom-1 repair must report zero violations after.
	row := findRow(tab, func(r []string) bool { return r[0] == "C:repair-axiom1" })
	if row == nil || row[4] != "violations-after=0" {
		t.Errorf("repair row = %v", row)
	}
	// Similarity-fair pay needs no top-ups.
	row = findRow(tab, func(r []string) bool {
		return r[0] == "C:repair-axiom3" && r[1] == "similarity-fair"
	})
	if row == nil || row[3] != "top-ups=0" {
		t.Errorf("similarity-fair repair row = %v", row)
	}
}

func TestE10Shape(t *testing.T) {
	tab := E10Bonus(E10Params{
		Workers: 30, Tasks: 120, Rounds: 4,
		HonourRates: []float64{0, 1}, Seed: 1,
	})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	renege, honour := tab.Rows[0], tab.Rows[1]
	if cell(t, renege, 1) != 0 {
		t.Errorf("honour-rate 0 paid %v bonuses", cell(t, renege, 1))
	}
	if cell(t, honour, 2) != 0 {
		t.Errorf("honour-rate 1 reneged %v bonuses", cell(t, honour, 2))
	}
	if cell(t, honour, 3) <= cell(t, renege, 3) {
		t.Error("honouring bonuses does not improve retention")
	}
	if cell(t, honour, 4) <= cell(t, renege, 4) {
		t.Error("honouring bonuses does not increase total paid")
	}
	if cell(t, honour, 5) <= cell(t, renege, 5) {
		t.Error("honouring bonuses does not improve satisfaction")
	}
}

func TestAllProducesElevenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	tables := All(1)
	if len(tables) != 11 {
		t.Fatalf("tables = %d", len(tables))
	}
	for i, tab := range tables {
		wantID := "E" + strconv.Itoa(i+1)
		if tab.ID != wantID {
			t.Errorf("table %d id = %s", i, tab.ID)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", tab.ID)
		}
		if !strings.Contains(tab.String(), tab.Title) {
			t.Errorf("%s rendering lacks title", tab.ID)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "EX", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("x", 1.5)
	tab.AddRow(2, "y")
	out := tab.String()
	for _, want := range []string{"EX", "demo", "1.5000", "x", "y"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestSyntheticPolicyWellFormed(t *testing.T) {
	for _, n := range []int{1, 7, 50} {
		pol := SyntheticPolicy(n)
		if len(pol.Rules) != n {
			t.Fatalf("rules = %d, want %d", len(pol.Rules), n)
		}
	}
}

func TestE11Shape(t *testing.T) {
	tab := E11IncrementalAudit(E11Params{Sizes: []int{80}, Rounds: 3, DirtyFrac: 0.05, Seed: 1})
	if tab.ID != "E11" || len(tab.Rows) != 1 {
		t.Fatalf("table = %+v", tab)
	}
	// The engine's contract: violations identical to the full rescan in
	// every round.
	if got := tab.Rows[0][len(tab.Rows[0])-1]; got != "true" {
		t.Fatalf("identical-violations = %q", got)
	}
}
