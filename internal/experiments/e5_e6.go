package experiments

import (
	"fmt"

	"repro/internal/complete"
	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/retention"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transparency"
	"repro/internal/workload"
)

// E5Params sizes the task-completion experiment.
type E5Params struct {
	// Workers per task (all start; quota fills first-come).
	WorkersPerTask int
	Tasks          int
	// OverPublish factors to sweep (Published = Quota * factor).
	OverPublish []float64
	Seed        uint64
}

// DefaultE5Params returns the scale used in EXPERIMENTS.md.
func DefaultE5Params(seed uint64) E5Params {
	return E5Params{
		WorkersPerTask: 12, Tasks: 30,
		OverPublish: []float64{1.0, 1.5, 2.0, 3.0},
		Seed:        seed,
	}
}

// e5Spec exposes E5 to the sweep engine.
func e5Spec() Spec {
	return Spec{ID: "E5", Name: "worker fairness in task completion", Run: func(p Params) *Table {
		q := DefaultE5Params(p.Seed)
		q.Tasks = p.ScaleInt(q.Tasks)
		return E5Completion(q)
	}}
}

// e6Spec exposes E6 to the sweep engine.
func e6Spec() Spec {
	return Spec{ID: "E6", Name: "transparency vs retention and quality", Run: func(p Params) *Table {
		q := DefaultE6Params(p.Seed)
		q.Workers = p.ScaleInt(q.Workers)
		q.Tasks = p.ScaleInt(q.Tasks)
		return E6Retention(q)
	}}
}

// E5Completion reproduces the §3.1.1 survey scenario: requesters publish
// more assignments than they need; once the quota of acceptable responses
// arrives, the cancellation policy decides the fate of in-flight work. The
// experiment sweeps the over-publication factor under each policy and
// reports the interruption rate, wasted worker effort, and Axiom-5
// violations found by the checker on the emitted trace.
func E5Completion(p E5Params) *Table {
	t := &Table{
		ID:    "E5",
		Title: fmt.Sprintf("Worker fairness in task completion (%d tasks, %d workers/task)", p.Tasks, p.WorkersPerTask),
		Columns: []string{"policy", "over-publish", "interruption-rate", "wasted-effort",
			"axiom5-violations", "submissions"},
		Notes: []string{
			"expected shape: 'never' and 'grace' policies produce zero Axiom-5 violations;",
			"'on-quota' interruptions grow with the over-publication factor.",
		},
	}
	policies := []complete.CancellationPolicy{complete.CancelNever, complete.CancelGrace, complete.CancelOnQuota}
	for _, policy := range policies {
		for _, over := range p.OverPublish {
			rng := stats.NewRNG(p.Seed + 0xe5)
			log := eventlog.New()
			engine := complete.NewEngine(policy, log)
			quota := 4
			published := int(float64(quota)*over + 0.5)
			for ti := 0; ti < p.Tasks; ti++ {
				task := &model.Task{
					ID:        model.TaskID(fmt.Sprintf("t%03d", ti)),
					Requester: "r0",
					Skills:    model.NewSkillVector(1),
					Reward:    1,
					Quota:     quota,
					Published: published,
				}
				mustDo(engine.Post(task))
				// published slots get offered and started; workers finish
				// in random order one tick apart, so late workers are
				// in-flight when the quota fills.
				n := published
				if n > p.WorkersPerTask {
					n = p.WorkersPerTask
				}
				workers := make([]model.WorkerID, n)
				for wi := range workers {
					workers[wi] = model.WorkerID(fmt.Sprintf("w-%03d-%02d", ti, wi))
					mustDo(engine.Offer(task.ID, workers[wi]))
					mustDo(engine.Start(task.ID, workers[wi]))
				}
				engine.Advance(1)
				order := rng.Perm(len(workers))
				for _, wi := range order {
					w := workers[wi]
					if !engine.CanSubmitLate(task.ID, w) {
						continue
					}
					cid := model.ContributionID(fmt.Sprintf("%s-%s", task.ID, w))
					mustDo(engine.Submit(task.ID, w, cid, true))
					engine.Advance(1)
				}
			}
			m := engine.Metrics()
			rep := fairness.CheckAxiom5(log)
			t.AddRow(policy.String(), fmt.Sprintf("%.1fx", over),
				m.InterruptionRate(), m.WastedEffort, len(rep.Violations), m.Submissions)
		}
	}
	return t
}

// E6Params sizes the transparency→retention experiment.
type E6Params struct {
	Workers int
	Tasks   int
	Rounds  int
	Seed    uint64
}

// DefaultE6Params returns the scale used in EXPERIMENTS.md. The worker
// pool is deliberately scarce relative to task slots so that churn shows up
// in total platform output, not just in the retention rate.
func DefaultE6Params(seed uint64) E6Params {
	return E6Params{Workers: 60, Tasks: 240, Rounds: 6, Seed: seed}
}

// transparencyLevels returns named policies of increasing disclosure, from
// fully opaque to the full standard catalogue.
func transparencyLevels() []struct {
	name   string
	policy *transparency.Policy
} {
	return []struct {
		name   string
		policy *transparency.Policy
	}{
		{"opaque", nil},
		{"minimal", transparency.MustParse(`policy "minimal" {
			disclose task.reward to workers always;
		}`)},
		{"requester", transparency.MustParse(`policy "requester" {
			disclose task.reward to workers always;
			disclose requester.hourly_wage to workers always;
			disclose requester.payment_delay to workers always;
			disclose task.recruitment_criteria to workers on task_view;
			disclose task.rejection_criteria to workers on task_view;
		}`)},
		{"full", FullDisclosurePolicy()},
	}
}

// FullDisclosurePolicy discloses every standard-catalogue field to workers
// unconditionally — the transparency ceiling of E6.
func FullDisclosurePolicy() *transparency.Policy {
	cat := transparency.StandardCatalogue()
	pol := &transparency.Policy{Name: "full"}
	for _, e := range cat.Entries() {
		pol.Rules = append(pol.Rules, &transparency.Rule{
			Field: e.Ref, To: transparency.AudienceWorkers, On: transparency.TriggerAlways,
		})
	}
	return pol
}

// E6Retention runs the §4.1 controlled experiment: identical marketplaces
// under increasing transparency, reporting the paper's two objective
// measures (worker retention and mean contribution quality) plus the
// transparency score of each level.
func E6Retention(p E6Params) *Table {
	t := &Table{
		ID:    "E6",
		Title: fmt.Sprintf("Transparency vs retention & quality (%d workers, %d tasks, %d rounds)", p.Workers, p.Tasks, p.Rounds),
		Columns: []string{"policy", "transparency-score", "retention", "total-output",
			"mean-quality", "submitted", "income-gini"},
		Notes: []string{
			"expected shape: retention and total platform output (sum of accepted quality)",
			"increase monotonically with disclosure — the paper's hypothesis from [12,13,16].",
			"mean per-contribution quality can dip under full transparency: opaque platforms",
			"churn their weakest workers, a survivorship effect the totals column corrects for.",
		},
	}
	for _, level := range transparencyLevels() {
		rng := stats.NewRNG(p.Seed + 0xe6)
		pop := workload.GeneratePopulation(workload.PopulationSpec{
			Workers: p.Workers, AcceptanceMean: 0.6, AcceptanceSpread: 0.3,
		}, rng.Split())
		batch := workload.GenerateTasks(workload.TaskSpec{Tasks: p.Tasks, Quota: 2, OverPublish: 1.5}, pop, rng.Split())
		res, err := sim.Run(sim.Config{
			Population:        pop,
			Batch:             batch,
			Policy:            level.policy,
			Rounds:            p.Rounds,
			WorkerCapacity:    2,
			AcceptThreshold:   0.62,
			RetentionParams:   retention.Params{QualityCoupling: 0.5},
			Seed:              p.Seed,
			FlagLowAcceptance: true,
		})
		if err != nil {
			panic(err)
		}
		m := res.Metrics
		t.AddRow(level.name, m.TransparencyScore, m.RetentionRate, m.RequesterUtility,
			m.MeanQuality, m.Submitted, m.IncomeGini)
	}
	return t
}
