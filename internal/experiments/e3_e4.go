package experiments

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/pay"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/workload"
)

// E3Params sizes the compensation-fairness experiment.
type E3Params struct {
	Contributors int
	Clusters     int
	Tasks        int
	Seed         uint64
}

// DefaultE3Params returns the scale used in EXPERIMENTS.md.
func DefaultE3Params(seed uint64) E3Params {
	return E3Params{Contributors: 30, Clusters: 3, Tasks: 20, Seed: seed}
}

// e3Spec exposes E3 to the sweep engine.
func e3Spec() Spec {
	return Spec{ID: "E3", Name: "compensation fairness", Run: func(p Params) *Table {
		q := DefaultE3Params(p.Seed)
		q.Contributors = p.ScaleInt(q.Contributors)
		q.Tasks = p.ScaleInt(q.Tasks)
		return E3Compensation(q)
	}}
}

// e4Spec exposes E4 to the sweep engine.
func e4Spec() Spec {
	return Spec{ID: "E4", Name: "malicious-worker detection", Run: func(p Params) *Table {
		q := DefaultE4Params(p.Seed)
		q.Workers = p.ScaleInt(q.Workers)
		q.Questions = p.ScaleInt(q.Questions)
		return E4Detection(q)
	}}
}

// E3Compensation audits Axiom 3 under each compensation scheme: similar
// contributions to the same task must be paid equally. Contributions are
// generated in controlled similarity clusters with per-cluster quality, so
// quality-based pay (which tracks quality, not similarity) pays near-equal
// within clusters while fixed pay diverges only through rejections and the
// similarity-fair scheme equalises by construction.
func E3Compensation(p E3Params) *Table {
	t := &Table{
		ID:    "E3",
		Title: fmt.Sprintf("Compensation fairness (%d tasks × %d contributors, %d clusters)", p.Tasks, p.Contributors, p.Clusters),
		Columns: []string{"scheme", "pairs-checked", "axiom3-violation-rate",
			"mean-pay", "total-paid"},
		Notes: []string{
			"expected shape: similarity-fair drives Axiom-3 violations to zero;",
			"fixed pay violates through accept/reject asymmetry on similar work;",
			"quality-based violates where in-cluster quality noise crosses the pay tolerance.",
		},
	}
	for _, scheme := range pay.Schemes() {
		rng := stats.NewRNG(p.Seed + 0xe3)
		pop := workload.GeneratePopulation(workload.PopulationSpec{Workers: p.Contributors}, rng.Split())
		batch := workload.GenerateTasks(workload.TaskSpec{Tasks: p.Tasks, Requesters: 2}, pop, rng.Split())
		st := store.New(pop.Universe)
		for _, r := range batch.Requesters {
			mustDo(st.PutRequester(r))
		}
		ids := make([]model.WorkerID, len(pop.Workers))
		for i, w := range pop.Workers {
			ids[i] = w.ID
			mustDo(st.PutWorker(w))
		}
		var totalPaid float64
		var n int
		for _, task := range batch.Tasks {
			mustDo(st.PutTask(task))
			contribs, _ := workload.GenerateContributions(workload.ContributionSpec{
				Contributors: p.Contributors, Clusters: p.Clusters,
				QualityJitter: 0.15,
			}, task, ids, rng.Split())
			// Mark the lowest-quality cluster rejected under a 0.6 bar to
			// create the accept/reject asymmetry of §3.1.1.
			for _, c := range contribs {
				c.Accepted = c.Quality >= 0.6
			}
			pays := scheme.Pay(task, contribs)
			for i, c := range contribs {
				c.Paid = pays[i]
				totalPaid += pays[i]
				n++
				mustDo(st.PutContribution(c))
			}
		}
		rep := fairness.CheckAxiom3(st, fairness.DefaultConfig())
		meanPay := 0.0
		if n > 0 {
			meanPay = totalPaid / float64(n)
		}
		t.AddRow(scheme.Name(), rep.Checked, rep.ViolationRate(), meanPay, totalPaid)
	}
	return t
}

// E4Params sizes the malicious-worker detection experiment.
type E4Params struct {
	Workers   int
	Questions int
	// SpamFractions is the sweep; defaults to 0.1–0.5 in steps of 0.1,
	// bracketing the ~40% figure of Vuurens et al.
	SpamFractions []float64
	// SpamModels selects the malicious behaviours swept (default both
	// random and uniform spammers, the Vuurens taxonomy).
	SpamModels []workload.SpamModel
	Threshold  float64
	Seed       uint64
}

// DefaultE4Params returns the scale used in EXPERIMENTS.md.
func DefaultE4Params(seed uint64) E4Params {
	return E4Params{
		Workers: 200, Questions: 50,
		SpamFractions: []float64{0.1, 0.2, 0.3, 0.4, 0.5},
		SpamModels:    []workload.SpamModel{workload.SpamRandom, workload.SpamUniform},
		Threshold:     0.5,
		Seed:          seed,
	}
}

// E4Detection sweeps the spammer fraction and behaviour model and scores
// each detector's precision/recall/F1 — the Axiom 4 capability, quantified.
// The model dimension exposes each detector's blind spot: agreement-based
// detection cannot see uniform spammers (they agree with each other), and
// entropy-based detection cannot see random spammers (their answers look
// maximally varied). Gold questions are robust to both.
func E4Detection(p E4Params) *Table {
	models := p.SpamModels
	if len(models) == 0 {
		models = []workload.SpamModel{workload.SpamRandom}
	}
	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("Malicious-worker detection (%d workers, %d questions, threshold %.2f)", p.Workers, p.Questions, p.Threshold),
		Columns: []string{"detector", "spam-model", "spam-fraction", "precision", "recall", "f1"},
		Notes: []string{
			"expected shape: gold questions are robust to both spammer models; each",
			"crowd-signal detector has its complementary blind spot — agreement and",
			"majority-deviation miss uniform spammers as their share grows (they agree with",
			"each other and can *become* the majority), label-entropy misses random spammers.",
		},
	}
	for _, det := range detect.Detectors() {
		for _, m := range models {
			for _, frac := range p.SpamFractions {
				rng := stats.NewRNG(p.Seed + 0xe4 + uint64(frac*1000) + uint64(m))
				gen := workload.GenerateAnswers(workload.AnswerSpec{
					Workers: p.Workers, Questions: p.Questions,
					SpamFraction: frac, SpamModel: m,
				}, rng)
				scores := det.Score(gen.Set)
				flagged := detect.Classify(scores, p.Threshold)
				ev := detect.Evaluate(flagged, gen.Spammers)
				t.AddRow(det.Name(), m.String(), fmt.Sprintf("%.0f%%", frac*100),
					ev.Precision(), ev.Recall(), ev.F1())
			}
		}
	}
	return t
}

func mustDo(err error) {
	if err != nil {
		panic(err)
	}
}
