// Package par provides the bounded parallel-for primitive behind every
// fan-out in this repository: similarity pair scoring, detector
// answer-matrix scoring, and the sweep engine's job pool all shard their
// index space over a GOMAXPROCS-sized goroutine pool through For.
//
// Determinism is preserved by construction: workers claim indices from a
// shared atomic counter but write results only to caller-owned, disjoint
// slots (slice element i for index i), so the output of a parallel run is
// byte-identical to the serial one regardless of scheduling order.
//
// Nested fan-outs compose through a global token budget. The process owns
// GOMAXPROCS-1 extra-worker tokens; every For acquires tokens (without
// blocking) for each worker beyond the caller's own goroutine and releases
// them as those workers drain. When the sweep engine's outer job pool
// holds the whole budget, the inner kernels it calls find no tokens and
// run inline on their job's goroutine — total runnable goroutines stay at
// GOMAXPROCS instead of multiplying per nesting level.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// serialThreshold is the problem size below which For runs inline; spawning
// goroutines for a handful of cheap iterations costs more than it saves.
const serialThreshold = 16

// extraTokens budgets the extra worker goroutines the whole process may
// have in flight: GOMAXPROCS minus the caller's own goroutine.
var extraTokens = make(chan struct{}, Workers()-1)

// Workers returns the maximum pool size used by For: GOMAXPROCS, the
// number of OS threads the runtime will actually schedule.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) on the caller's goroutine plus up
// to workers-1 extra pool workers (workers <= 0 means Workers()), subject
// to the process-wide token budget. fn must be safe to call concurrently
// and must confine its writes to per-index state; For returns when every
// index has been processed.
//
// For is meant for fine-grained kernels and runs small iteration counts
// inline; use Do for coarse jobs (whole experiments) where even two
// iterations are worth a goroutine.
func For(n, workers int, fn func(i int)) {
	if n < serialThreshold {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	Do(n, workers, fn)
}

// Do is For without the small-n inline shortcut: it parallelises any n > 1
// (budget permitting). Use it when each iteration is expensive enough —
// a sweep job, a whole experiment — that pool overhead never dominates.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	extra := 0
acquire:
	for extra < workers-1 {
		select {
		case extraTokens <- struct{}{}:
			extra++
		default:
			break acquire // budget exhausted
		}
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(extra)
	for w := 0; w < extra; w++ {
		go func() {
			defer wg.Done()
			defer func() { <-extraTokens }()
			work()
		}()
	}
	work() // the caller's goroutine is the pool's first worker
	wg.Wait()
}
