// Package par provides the bounded parallel-for primitive behind every
// fan-out in this repository: similarity pair scoring, detector
// answer-matrix scoring, the audit engine's axiom task graph, and the
// sweep engine's job pool all shard their index space over a bounded
// goroutine pool through For and Do.
//
// Determinism is preserved by construction: workers claim indices from a
// shared atomic counter but write results only to caller-owned, disjoint
// slots (slice element i for index i), so the output of a parallel run is
// byte-identical to the serial one regardless of scheduling order.
//
// Nested fan-outs compose through a global token budget. The process owns
// Workers()-1 extra-worker tokens; every For acquires tokens (without
// blocking) for each worker beyond the caller's own goroutine and releases
// them as those workers drain. When the sweep engine's outer job pool
// holds the whole budget, the inner kernels it calls find no tokens and
// run inline on their job's goroutine — total runnable goroutines stay at
// the budget instead of multiplying per nesting level.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// serialThreshold is the problem size below which For runs inline; spawning
// goroutines for a handful of cheap iterations costs more than it saves.
const serialThreshold = 16

// budget is one process-wide parallelism regime: a worker ceiling plus the
// token channel that enforces it. Budgets are immutable once published;
// SetMaxWorkers swaps in a fresh one. In-flight fan-outs release tokens to
// the channel they acquired from (captured per Do call), so a swap never
// leaks or double-frees a token.
type budget struct {
	workers int
	tokens  chan struct{}
}

var curBudget atomic.Pointer[budget]

func init() {
	curBudget.Store(newBudget(runtime.GOMAXPROCS(0)))
}

func newBudget(workers int) *budget {
	if workers < 1 {
		workers = 1
	}
	return &budget{workers: workers, tokens: make(chan struct{}, workers-1)}
}

// Workers returns the current pool ceiling used by For and Do: GOMAXPROCS
// unless SetMaxWorkers overrode it.
func Workers() int {
	return curBudget.Load().workers
}

// SetMaxWorkers replaces the process-wide parallelism budget with n total
// workers (the caller's goroutine plus n-1 pool workers); n <= 0 restores
// the GOMAXPROCS default. It returns the previous ceiling. The new budget
// applies to For/Do calls that start after it is published; fan-outs
// already in flight finish under the budget they started with. Intended
// for benchmarks and scaling sweeps, not for concurrent tuning: calls
// racing active fan-outs briefly let old-budget and new-budget workers
// coexist.
func SetMaxWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return curBudget.Swap(newBudget(n)).workers
}

// For runs fn(i) for every i in [0, n) on the caller's goroutine plus up
// to workers-1 extra pool workers (workers <= 0 means Workers()), subject
// to the process-wide token budget. fn must be safe to call concurrently
// and must confine its writes to per-index state; For returns when every
// index has been processed.
//
// For is meant for fine-grained kernels and runs small iteration counts
// inline; use Do for coarse jobs (whole experiments) where even two
// iterations are worth a goroutine.
func For(n, workers int, fn func(i int)) {
	if n < serialThreshold {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	Do(n, workers, fn)
}

// Do is For without the small-n inline shortcut: it parallelises any n > 1
// (budget permitting). Use it when each iteration is expensive enough —
// a sweep job, an axiom pass, a whole experiment — that pool overhead
// never dominates.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	b := curBudget.Load()
	if workers <= 0 || workers > b.workers {
		workers = b.workers
	}
	if workers > n {
		workers = n
	}
	extra := 0
acquire:
	for extra < workers-1 {
		select {
		case b.tokens <- struct{}{}:
			extra++
		default:
			break acquire // budget exhausted
		}
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(extra)
	for w := 0; w < extra; w++ {
		go func() {
			defer wg.Done()
			defer func() { <-b.tokens }()
			work()
		}()
	}
	work() // the caller's goroutine is the pool's first worker
	wg.Wait()
}
