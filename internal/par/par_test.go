package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 16, 1000} {
		for _, workers := range []int{0, 1, 4, 32} {
			hits := make([]atomic.Int32, n)
			For(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("n=%d workers=%d: index %d hit %d times, want 1", n, workers, i, got)
				}
			}
		}
	}
}

func TestForDeterministicOutputSlots(t *testing.T) {
	const n = 500
	serial := make([]int, n)
	For(n, 1, func(i int) { serial[i] = i * i })
	parallel := make([]int, n)
	For(n, 8, func(i int) { parallel[i] = i * i })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
}

func TestDoParallelisesSmallN(t *testing.T) {
	// Do must cover tiny iteration counts too (sweep grids can be 2 jobs).
	for _, n := range []int{1, 2, 4} {
		hits := make([]atomic.Int32, n)
		Do(n, 4, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("Do n=%d: index %d hit %d times", n, i, got)
			}
		}
	}
}

func TestNestedForStaysBounded(t *testing.T) {
	// A nested fan-out must complete and cover everything even when the
	// outer level holds the entire token budget.
	const outer, inner = 8, 100
	sums := make([]int64, outer)
	Do(outer, 0, func(o int) {
		var s atomic.Int64
		For(inner, 0, func(i int) { s.Add(int64(i)) })
		sums[o] = s.Load()
	})
	for o, s := range sums {
		if s != inner*(inner-1)/2 {
			t.Fatalf("outer %d: inner sum %d, want %d", o, s, inner*(inner-1)/2)
		}
	}
}

func TestForAroundSerialThreshold(t *testing.T) {
	// Just under the threshold For must stay inline (serial order); at and
	// above it delegates to Do. Either way every index is hit exactly once.
	for _, n := range []int{serialThreshold - 1, serialThreshold, serialThreshold + 1} {
		hits := make([]atomic.Int32, n)
		order := make([]int, 0, n)
		var mu sync.Mutex
		For(n, 0, func(i int) {
			hits[i].Add(1)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d hit %d times, want 1", n, i, got)
			}
		}
		if n < serialThreshold {
			for i, got := range order {
				if got != i {
					t.Fatalf("n=%d below threshold must run in serial order, got %v", n, order)
				}
			}
		}
	}
}

func TestDoWorkersExceedN(t *testing.T) {
	// More workers than indices must not spawn idle goroutines that miss
	// the counter, double-claim, or deadlock.
	for _, n := range []int{1, 2, 3, 5} {
		hits := make([]atomic.Int32, n)
		Do(n, n*10, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d workers=%d: index %d hit %d times", n, n*10, i, got)
			}
		}
	}
}

func TestDoZeroAndNegativeN(t *testing.T) {
	ran := false
	Do(0, 4, func(int) { ran = true })
	Do(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("Do must not invoke fn for n <= 0")
	}
}

func TestBudgetExhaustionRunsInline(t *testing.T) {
	// Drain the whole token budget: every For/Do must then run inline on
	// the caller's goroutine — concurrency exactly 1, no goroutines spawned.
	b := curBudget.Load()
	held := 0
	for {
		select {
		case b.tokens <- struct{}{}:
			held++
			continue
		default:
		}
		break
	}
	defer func() {
		for i := 0; i < held; i++ {
			<-b.tokens
		}
	}()
	var cur, max atomic.Int32
	For(10*serialThreshold, 0, func(i int) {
		c := cur.Add(1)
		if c > max.Load() {
			max.Store(c)
		}
		cur.Add(-1)
	})
	if got := max.Load(); got != 1 {
		t.Fatalf("For under exhausted budget ran with concurrency %d, want 1", got)
	}
}

func TestSetMaxWorkersBoundsConcurrency(t *testing.T) {
	// Under a budget of w total workers, observed concurrency must never
	// exceed w — including for nested fan-outs — and SetMaxWorkers must
	// restore the default cleanly.
	for _, w := range []int{1, 2, 3} {
		prev := SetMaxWorkers(w)
		if got := Workers(); got != w {
			t.Fatalf("Workers() = %d after SetMaxWorkers(%d)", got, w)
		}
		// Concurrency is sampled in the innermost kernel only: a nested For
		// that degrades to inline runs on its caller's goroutine, so the
		// outer activation must not be counted while the inner one runs.
		var cur, max atomic.Int32
		note := func() {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			cur.Add(-1)
		}
		Do(64, 0, func(o int) {
			note()
			For(2*serialThreshold, 0, func(i int) { note() })
		})
		SetMaxWorkers(prev)
		if got := max.Load(); got > int32(w) {
			t.Fatalf("budget %d: observed concurrency %d", w, got)
		}
	}
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d after restore, want GOMAXPROCS", got)
	}
}
