package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 16, 1000} {
		for _, workers := range []int{0, 1, 4, 32} {
			hits := make([]atomic.Int32, n)
			For(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("n=%d workers=%d: index %d hit %d times, want 1", n, workers, i, got)
				}
			}
		}
	}
}

func TestForDeterministicOutputSlots(t *testing.T) {
	const n = 500
	serial := make([]int, n)
	For(n, 1, func(i int) { serial[i] = i * i })
	parallel := make([]int, n)
	For(n, 8, func(i int) { parallel[i] = i * i })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
}

func TestDoParallelisesSmallN(t *testing.T) {
	// Do must cover tiny iteration counts too (sweep grids can be 2 jobs).
	for _, n := range []int{1, 2, 4} {
		hits := make([]atomic.Int32, n)
		Do(n, 4, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("Do n=%d: index %d hit %d times", n, i, got)
			}
		}
	}
}

func TestNestedForStaysBounded(t *testing.T) {
	// A nested fan-out must complete and cover everything even when the
	// outer level holds the entire token budget.
	const outer, inner = 8, 100
	sums := make([]int64, outer)
	Do(outer, 0, func(o int) {
		var s atomic.Int64
		For(inner, 0, func(i int) { s.Add(int64(i)) })
		sums[o] = s.Load()
	})
	for o, s := range sums {
		if s != inner*(inner-1)/2 {
			t.Fatalf("outer %d: inner sum %d, want %d", o, s, inner*(inner-1)/2)
		}
	}
}
