package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCloseSyncsTailRegardlessOfPolicy is the regression test for the
// SyncNever Close hole: a clean shutdown must fsync the sealed tail even
// when the policy never fsyncs during appends, so a close-then-crash loses
// nothing that Close reported as kept.
func TestCloseSyncsTailRegardlessOfPolicy(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncNever, SyncOnRotate, SyncInterval(time.Millisecond), SyncAlways} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, err := Create(dir, Options{Sync: pol})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 5; i++ {
				if err := w.Append(uint64(i), []byte("payload")); err != nil {
					t.Fatal(err)
				}
			}
			before := w.Stats().Syncs
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			st := w.Stats()
			if st.Syncs <= before {
				t.Fatalf("Close issued no fsync under %s (syncs %d before, %d after)", pol, before, st.Syncs)
			}
			if st.Appends != 5 {
				t.Fatalf("stats count %d appends, want 5", st.Appends)
			}
			keys, _, damaged := readAll(t, dir)
			if damaged || len(keys) != 5 {
				t.Fatalf("reopened log has %d records (damaged=%v), want 5 clean", len(keys), damaged)
			}
		})
	}
}

// TestGroupCommitConcurrentAppends hammers AppendAsync+Wait from many
// goroutines under SyncAlways and asserts every record survives, disk order
// is a permutation of the appended set, and the leader/follower path
// actually grouped appends (fewer batches than appends).
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const (
		appenders = 8
		perG      = 25
	)
	// Keys must be non-decreasing across AppendAsync calls, so hand them
	// out from a shared counter under a mutex, enqueueing while it is held.
	var (
		mu   sync.Mutex
		next uint64
		wg   sync.WaitGroup
	)
	errs := make([]error, appenders)
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				mu.Lock()
				next++
				key := next
				c, err := w.AppendAsync(key, []byte(fmt.Sprintf("r%04d", key)))
				mu.Unlock()
				if err == nil {
					err = c.Wait()
				}
				if err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("appender %d: %v", g, err)
		}
	}
	st := w.Stats()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Appends != appenders*perG {
		t.Fatalf("stats count %d appends, want %d", st.Appends, appenders*perG)
	}
	if st.Batches == 0 || st.Batches > st.Appends {
		t.Fatalf("implausible batch count %d for %d appends", st.Batches, st.Appends)
	}
	keys, payloads, damaged := readAll(t, dir)
	if damaged || len(keys) != appenders*perG {
		t.Fatalf("log holds %d records (damaged=%v), want %d", len(keys), damaged, appenders*perG)
	}
	for i, k := range keys {
		if k != uint64(i+1) {
			t.Fatalf("record %d has key %d, want %d (disk order must equal key order)", i, k, i+1)
		}
		if string(payloads[i]) != fmt.Sprintf("r%04d", k) {
			t.Fatalf("record %d payload %q does not match its key", i, payloads[i])
		}
	}
}

// TestSyncIntervalFlushesWithoutWait pins the interval contract: appends
// ack immediately (zero ticket) and the background committer makes them
// readable from disk within a few ticks without any Sync call.
func TestSyncIntervalFlushesWithoutWait(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{Sync: SyncInterval(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		c, err := w.AppendAsync(uint64(i), []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Wait(); err != nil { // zero ticket: must return nil instantly
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if w.Stats().Syncs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval committer issued no fsync within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	keys, _, damaged := readAll(t, dir)
	if damaged || len(keys) != 10 {
		t.Fatalf("log holds %d records (damaged=%v), want 10", len(keys), damaged)
	}
}

// TestZeroCommitWait pins the zero-ticket contract relied on by memory
// sinks and replay paths.
func TestZeroCommitWait(t *testing.T) {
	var c Commit
	if err := c.Wait(); err != nil {
		t.Fatalf("zero Commit.Wait() = %v, want nil", err)
	}
}

// TestParseSyncPolicyInterval covers the interval:<duration> syntax and
// round-tripping through the text marshalling used by JSON configs.
func TestParseSyncPolicyInterval(t *testing.T) {
	p, err := ParseSyncPolicy("interval:2ms")
	if err != nil {
		t.Fatal(err)
	}
	if p != SyncInterval(2*time.Millisecond) {
		t.Fatalf("parsed %v, want interval:2ms", p)
	}
	if p == SyncInterval(3*time.Millisecond) {
		t.Fatal("distinct intervals compared equal")
	}
	d, err := ParseSyncPolicy("interval")
	if err != nil {
		t.Fatal(err)
	}
	if d != SyncInterval(0) {
		t.Fatalf("bare interval parsed as %v, want the default interval", d)
	}
	text, err := p.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back SyncPolicy
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round-trip gave %v, want %v", back, p)
	}
	if _, err := ParseSyncPolicy("interval:nonsense"); err == nil {
		t.Fatal("bad interval duration parsed without error")
	}
}

// TestAdaptiveLingerUncontendedOccupancy pins the adaptive linger's
// steady-state behaviour for a strictly serial appender: the lifetime mean
// occupancy settles at one record per batch, so the leader seals
// immediately instead of yielding, and every append still lands in its own
// durable batch with nothing lost.
func TestAdaptiveLingerUncontendedOccupancy(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 1; i <= n; i++ {
		c, err := w.AppendAsync(uint64(i), []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Appends != n || st.Batches != n {
		t.Fatalf("uncontended writer: %d appends over %d batches, want %d batches of one record",
			st.Appends, st.Batches, n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	keys, _, damaged := readAll(t, dir)
	if damaged || len(keys) != n {
		t.Fatalf("reopened log has %d records (damaged=%v), want %d clean", len(keys), damaged, n)
	}
}
