package wal

import (
	"fmt"
	"runtime"
	"time"
)

// Group commit: the durable policies (SyncAlways, SyncInterval) never fsync
// per append. AppendAsync frames the record into the writer's open batch
// under qmu and returns a Commit ticket; durability happens when a leader
// seals the batch, writes it with one Write call, issues one fsync, and
// wakes every ticket the batch covered.
//
// Leader election is the flush mutex: under SyncAlways the first waiter to
// acquire flushMu becomes the leader and followers piggyback (they block on
// flushMu or the batch's done channel and find their batch already
// committed); under SyncInterval a background committer drains the batch on
// a ticker and appenders do not wait at all — the crash-loss window is the
// tick.
//
// Invariant (what makes "wait on the last ticket covers the whole group"
// sound, see store.bulkApply): batches seal and complete strictly in append
// order. cur is replaced only by flushLocked, which writes, fsyncs, and
// closes the old batch's done channel before flushMu is released, so a
// later batch can never commit — or fail — ahead of an earlier one. A
// failed flush latches w.err, and every subsequent batch fails with that
// sticky error without writing, so durability errors cannot be skipped
// over.

// batch is one group-commit unit: framed records from consecutive
// AppendAsync calls, flushed with a single write+fsync.
type batch struct {
	buf    []byte
	count  int
	maxKey uint64
	done   chan struct{} // closed once the batch is committed or failed
	err    error         // valid after done is closed
}

// Commit is the durability ticket AppendAsync returns. The zero Commit is
// already durable (ungrouped policies, memory sinks): Wait returns nil
// immediately.
type Commit struct {
	w *Writer
	b *batch
}

// Wait blocks until the record's covering batch is fsynced (becoming the
// flush leader if nobody else is) and returns the batch outcome. Safe to
// call from any goroutine, at most once per ticket's appender plus any
// number of observers; waiting on a later ticket from the same writer also
// guarantees durability of every earlier one.
func (c Commit) Wait() error {
	if c.b == nil {
		return nil
	}
	return c.w.commitWait(c.b)
}

// AppendAsync frames and enqueues one record. Under ungrouped policies it
// writes directly (page cache) and returns a zero Commit. Under SyncAlways
// it returns a ticket the caller must Wait on for durability; under
// SyncInterval it returns a zero Commit (the background committer makes the
// record durable within the interval). Like Append, key must be
// non-decreasing and calls must come from one goroutine at a time.
func (w *Writer) AppendAsync(key uint64, payload []byte) (Commit, error) {
	if !w.opts.Sync.grouped() {
		w.mu.Lock()
		err := w.appendLocked(key, payload)
		w.mu.Unlock()
		if err == nil {
			w.nAppends.Add(1)
		}
		return Commit{}, err
	}
	w.qmu.Lock()
	if w.closed {
		w.qmu.Unlock()
		return Commit{}, fmt.Errorf("wal: append on closed writer")
	}
	if w.err != nil {
		err := w.err
		w.qmu.Unlock()
		return Commit{}, err
	}
	b := w.cur
	if b == nil {
		b = &batch{done: make(chan struct{})}
		w.cur = b
	}
	b.buf = appendFrame(b.buf, key, payload)
	b.count++
	if key > b.maxKey {
		b.maxKey = key
	}
	w.qmu.Unlock()
	w.nAppends.Add(1)
	if w.opts.Sync.mode == modeAlways {
		return Commit{w: w, b: b}, nil
	}
	return Commit{}, nil
}

// commitWait blocks until b is committed, flushing it as leader if it is
// still pending once flushMu is acquired.
func (w *Writer) commitWait(b *batch) error {
	select {
	case <-b.done:
		return b.err
	default:
	}
	w.flushMu.Lock()
	select {
	case <-b.done:
		// A leader (or the interval committer) covered us while we queued.
		w.flushMu.Unlock()
		return b.err
	default:
	}
	// Leader: while flushMu is held any uncommitted batch must still be
	// w.cur (seal and completion happen without releasing flushMu), so
	// flushing the current batch flushes b.
	//
	// Before sealing, linger while the batch is still growing: each yield
	// lets the appenders the previous flush just woke (runnable but not yet
	// scheduled) frame their records into this batch, so one fsync covers
	// the whole convoy. Without it, a blocking fsync on a single-P runtime
	// stalls every other appender and batches collapse to one record.
	//
	// The linger is adaptive: it stops once the batch reaches the writer's
	// lifetime mean occupancy (appends per batch so far) — the batch has
	// already collected a typical convoy, so further yields trade latency
	// for marginal coverage — or the first time a yield adds nothing, with
	// the fixed yield budget as a backstop. An uncontended writer's mean
	// sits at one record per batch, so it skips the linger entirely; a
	// convoyed writer's mean grows with the observed group size and keeps
	// the full linger.
	target := 1
	if batches := w.nBatches.Load(); batches > 0 {
		target = int(w.nAppends.Load() / batches)
	}
	w.qmu.Lock()
	prev := b.count
	w.qmu.Unlock()
	for i := 0; i < 4 && prev < target; i++ {
		runtime.Gosched()
		w.qmu.Lock()
		n := b.count
		w.qmu.Unlock()
		if n == prev {
			break
		}
		prev = n
	}
	w.flushLocked()
	w.flushMu.Unlock()
	return b.err
}

// flushLocked seals the open batch, writes it with one fsync, and wakes its
// waiters. Caller holds flushMu. Returns the batch outcome (or the sticky
// error when there is nothing to flush).
func (w *Writer) flushLocked() error {
	w.qmu.Lock()
	b := w.cur
	w.cur = nil
	err := w.err
	w.qmu.Unlock()
	if b == nil {
		return err
	}
	if err == nil {
		err = w.writeBatch(b)
		if err != nil {
			w.qmu.Lock()
			if w.err == nil {
				w.err = err
			}
			w.qmu.Unlock()
		}
	}
	b.err = err
	close(b.done)
	return err
}

// writeBatch writes a sealed batch under w.mu: one Write, one fsync, then
// rotation if the segment crossed the threshold.
func (w *Writer) writeBatch(b *batch) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("wal: append on closed writer")
	}
	if _, err := w.f.Write(b.buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.size += int64(len(b.buf))
	if b.maxKey > w.maxKey {
		w.maxKey = b.maxKey
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.nBatches.Add(1)
	w.nSyncs.Add(1)
	if w.size >= w.opts.segmentBytes() {
		return w.rotateLocked()
	}
	return nil
}

// intervalLoop is the SyncInterval background committer: it drains the open
// batch every tick. Flush errors latch w.err and surface on the next
// Append/Sync/Close.
func (w *Writer) intervalLoop() {
	defer close(w.done)
	t := time.NewTicker(w.opts.Sync.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.flushMu.Lock()
			w.flushLocked()
			w.flushMu.Unlock()
		}
	}
}
