package wal

import (
	"fmt"
	"io"
	"os"
)

// Exported segment-level access to a WAL directory: enough for an external
// tailer (internal/replica) to ship a live log without re-implementing the
// directory layout or the frame scan. Reader (reader.go) remains the whole-
// log replay path; Segments/SegmentReader expose the per-segment structure —
// which files exist, which are sealed, and incremental reads from a byte
// offset so the active segment can be polled as it grows.

// SegmentInfo describes one on-disk segment file.
type SegmentInfo struct {
	// Ordinal is the segment's position in the log (ascending; appends go
	// to the highest ordinal — every lower ordinal is sealed).
	Ordinal int
	// Path is the segment file's location.
	Path string
	// Size is the file's byte length at listing time. For the highest
	// ordinal this is a lower bound: the writer may still be appending.
	Size int64
}

// Segments lists a WAL directory's segment files in log order. A missing
// directory lists as an empty log, matching OpenDir.
func Segments(dir string) ([]SegmentInfo, error) {
	ords, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	out := make([]SegmentInfo, 0, len(ords))
	for _, n := range ords {
		p := segPath(dir, n)
		fi, err := os.Stat(p)
		if err != nil {
			if os.IsNotExist(err) {
				// Raced a truncation; the segment is gone, skip it.
				continue
			}
			return nil, fmt.Errorf("wal: stat segment: %w", err)
		}
		out = append(out, SegmentInfo{Ordinal: n, Path: p, Size: fi.Size()})
	}
	return out, nil
}

// SegmentReader iterates the records of a single segment file starting at
// a byte offset — the polling read of a live log tail. Unlike Reader, a
// torn frame is not latched as damage: Next returns io.EOF and Offset
// stays at the start of the incomplete frame, so the caller re-opens at
// the same offset after the writer finishes (or repairs) it.
type SegmentReader struct {
	data []byte
	off  int64
}

// OpenSegmentReader opens one segment for reading from the given byte
// offset (0 reads the whole segment). The file is snapshotted in memory at
// open time: records appended afterwards are picked up by the next open.
func OpenSegmentReader(path string, offset int64) (*SegmentReader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: read segment: %w", err)
	}
	if offset < 0 || offset > int64(len(data)) {
		return nil, fmt.Errorf("wal: segment offset %d out of range [0,%d]", offset, len(data))
	}
	return &SegmentReader{data: data, off: offset}, nil
}

// Next returns the next record, or io.EOF when no complete valid frame
// remains at the current offset (clean end of the snapshot, a frame still
// being appended, or a corrupt one — Offset distinguishes a clean end).
func (r *SegmentReader) Next() (key uint64, payload []byte, err error) {
	if r.off >= int64(len(r.data)) {
		return 0, nil, io.EOF
	}
	frame, next, ok := nextFrame(r.data, r.off)
	if !ok {
		return 0, nil, io.EOF
	}
	k, rest, ok := recordKey(frame)
	if !ok {
		return 0, nil, io.EOF
	}
	r.off = next
	return k, rest, nil
}

// Offset returns the byte position after the last complete record read —
// the resume point for the next OpenSegmentReader over the same file.
func (r *SegmentReader) Offset() int64 { return r.off }

// Clean reports whether the reader consumed its snapshot exactly to the
// end: false after io.EOF means a partial or invalid frame sits at Offset.
func (r *SegmentReader) Clean() bool { return r.off == int64(len(r.data)) }

// Close releases the segment buffer.
func (r *SegmentReader) Close() error {
	r.data = nil
	return nil
}
