package wal

import (
	"fmt"
	"io"
	"os"
	"testing"
)

// TestSegmentsListing pins the exported listing against a log spread over
// several sealed segments plus an active one.
func TestSegmentsListing(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 1; i <= n; i++ {
		if err := w.Append(uint64(i), []byte(fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("want multiple segments from a 128-byte rotation, got %d", len(segs))
	}
	for i, sg := range segs {
		if i > 0 && sg.Ordinal <= segs[i-1].Ordinal {
			t.Fatalf("segments out of order: %d after %d", sg.Ordinal, segs[i-1].Ordinal)
		}
		if sg.Size <= 0 {
			t.Fatalf("segment %d: size %d", sg.Ordinal, sg.Size)
		}
		if fi, err := os.Stat(sg.Path); err != nil || fi.Size() != sg.Size {
			t.Fatalf("segment %d: path/size mismatch (%v)", sg.Ordinal, err)
		}
	}

	// Reading every segment end to end yields the full key sequence.
	var keys []uint64
	for _, sg := range segs {
		r, err := OpenSegmentReader(sg.Path, 0)
		if err != nil {
			t.Fatal(err)
		}
		for {
			k, payload, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if want := fmt.Sprintf("record-%03d", k); string(payload) != want {
				t.Fatalf("key %d: payload %q, want %q", k, payload, want)
			}
			keys = append(keys, k)
		}
		if !r.Clean() {
			t.Fatalf("segment %d: unclean end at offset %d", sg.Ordinal, r.Offset())
		}
		r.Close()
	}
	if len(keys) != n {
		t.Fatalf("read %d records, want %d", len(keys), n)
	}
	for i, k := range keys {
		if k != uint64(i+1) {
			t.Fatalf("keys[%d] = %d, want %d", i, k, i+1)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A missing directory lists as an empty log, like OpenDir.
	if segs, err := Segments(dir + "-nope"); err != nil || len(segs) != 0 {
		t.Fatalf("missing dir: got %d segments, err %v", len(segs), err)
	}
}

// TestSegmentReaderResume pins the polling contract: Offset after a partial
// read is a valid resume point, and a torn tail reads as io.EOF with
// Clean() == false, leaving Offset at the incomplete frame.
func TestSegmentReaderResume(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := w.Append(uint64(i), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d (err %v)", len(segs), err)
	}
	path := segs[0].Path

	r, err := OpenSegmentReader(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	mid := r.Offset()
	r.Close()

	// More records arrive; resuming at the saved offset sees exactly the
	// remainder.
	for i := 11; i <= 12; i++ {
		if err := w.Append(uint64(i), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err = OpenSegmentReader(path, mid)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for {
		k, _, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, k)
	}
	if !r.Clean() {
		t.Fatalf("unclean end at %d", r.Offset())
	}
	r.Close()
	if len(got) != 8 || got[0] != 5 || got[len(got)-1] != 12 {
		t.Fatalf("resume read %v, want keys 5..12", got)
	}

	// Tear the tail: chop the last 3 bytes off the final frame.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	r, err = OpenSegmentReader(path, mid)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, _, err := r.Next(); err == io.EOF {
			break
		}
		n++
	}
	if n != 7 {
		t.Fatalf("torn tail: read %d complete records, want 7", n)
	}
	if r.Clean() {
		t.Fatal("torn tail reported clean")
	}
	tornAt := r.Offset()
	r.Close()

	// The offset parks at the incomplete frame, so a reader opened there
	// sees it immediately.
	r, err = OpenSegmentReader(path, tornAt)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("read past torn frame: %v", err)
	}
	r.Close()

	if _, err := OpenSegmentReader(path, 1<<30); err == nil {
		t.Fatal("out-of-range offset accepted")
	}
}
