// Package wal implements the segmented write-ahead log underneath the
// store's durable changelog sinks and the event log's durable tee.
//
// A log is a directory of append-only segment files (seg-00000001.wal,
// seg-00000002.wal, ...). Each record is framed as
//
//	[4-byte LE payload length][4-byte LE CRC32-IEEE of payload][payload]
//
// where the payload starts with the record's uvarint-encoded key (the
// store version or event sequence number, monotonically non-decreasing)
// followed by the caller's opaque bytes. The CRC covers the whole payload,
// so a torn or corrupted tail is detected record-by-record: readers stop
// at the first invalid frame and recover exactly the longest valid prefix,
// and a Writer reopening an existing directory truncates the damaged tail
// before appending, so the log never grows past a hole.
//
// Segments rotate once the active file reaches Options.SegmentBytes. The
// writer remembers each completed segment's maximum key, which is what
// checkpoint truncation uses: TruncateBefore(k) unlinks every completed
// segment whose records are all at or below k — the per-shard low-water
// version — without ever touching the active segment.
//
// Durability is a policy knob (Options.Sync): SyncNever leaves flushing to
// the OS (fastest, loses the unsynced tail on power failure — process
// crashes lose nothing), SyncOnRotate fsyncs each segment as it is sealed,
// SyncInterval(d) fsyncs the accumulated tail at most every d (durable
// within d), and SyncAlways acks each append only after a covering fsync.
// The durable policies (SyncAlways, SyncInterval) run through per-writer
// group commit — see groupcommit.go — so one fsync commits every record
// queued while the previous fsync was in flight, instead of one fsync per
// append.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// syncMode is the discriminant of a SyncPolicy.
type syncMode uint8

const (
	modeNever syncMode = iota
	modeOnRotate
	modeInterval
	modeAlways
)

// SyncPolicy selects when the writer fsyncs. Policies are comparable
// values: use the package variables (SyncNever, SyncOnRotate, SyncAlways)
// or the SyncInterval constructor.
type SyncPolicy struct {
	mode     syncMode
	interval time.Duration
}

// Sync policies, weakest to strongest. The zero value is SyncNever.
var (
	// SyncNever never fsyncs explicitly while appending; the OS flushes at
	// its leisure (Close still syncs the tail so checkpoints never manifest
	// a watermark ahead of the disk).
	SyncNever = SyncPolicy{mode: modeNever}
	// SyncOnRotate fsyncs a segment when it is sealed (and on Sync/Close).
	SyncOnRotate = SyncPolicy{mode: modeOnRotate}
	// SyncAlways acks every append only after a covering group fsync: each
	// record is durable when Append (or Commit.Wait) returns, but one fsync
	// commits every record enqueued while the previous fsync ran.
	SyncAlways = SyncPolicy{mode: modeAlways}
)

// DefaultSyncInterval is the flush cadence SyncInterval uses when given a
// non-positive duration, and what ParseSyncPolicy("interval") yields.
const DefaultSyncInterval = 5 * time.Millisecond

// SyncInterval returns the amortised-durability policy: appends ack
// immediately and a background committer fsyncs the accumulated tail every
// d, so a crash loses at most the last d of acknowledged appends.
func SyncInterval(d time.Duration) SyncPolicy {
	if d <= 0 {
		d = DefaultSyncInterval
	}
	return SyncPolicy{mode: modeInterval, interval: d}
}

// grouped reports whether the policy routes appends through the
// group-commit queue rather than writing directly.
func (p SyncPolicy) grouped() bool { return p.mode == modeInterval || p.mode == modeAlways }

// String renders the policy for reports and flag parsing; SyncInterval
// renders as "interval:<dur>".
func (p SyncPolicy) String() string {
	switch p.mode {
	case modeAlways:
		return "always"
	case modeOnRotate:
		return "rotate"
	case modeInterval:
		return "interval:" + p.interval.String()
	default:
		return "never"
	}
}

// ParseSyncPolicy maps the String form back to a policy. "interval" alone
// means SyncInterval(DefaultSyncInterval); "interval:<dur>" (e.g.
// "interval:2ms") sets the cadence explicitly.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "never":
		return SyncNever, nil
	case "rotate":
		return SyncOnRotate, nil
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval(0), nil
	}
	if rest, ok := strings.CutPrefix(s, "interval:"); ok {
		d, err := time.ParseDuration(rest)
		if err != nil || d <= 0 {
			return SyncNever, fmt.Errorf("wal: bad sync interval %q (want e.g. interval:5ms)", s)
		}
		return SyncInterval(d), nil
	}
	return SyncNever, fmt.Errorf("wal: unknown sync policy %q (want never|rotate|interval[:<dur>]|always)", s)
}

// MarshalText implements encoding.TextMarshaler so configs embedding a
// policy serialise to the same string the flag layer parses.
func (p SyncPolicy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *SyncPolicy) UnmarshalText(text []byte) error {
	parsed, err := ParseSyncPolicy(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// DefaultSegmentBytes is the rotation threshold used when Options leaves
// SegmentBytes zero: large enough that steady-state appends amortise file
// creation, small enough that checkpoint truncation reclaims space promptly.
const DefaultSegmentBytes = 4 << 20

// maxRecordBytes guards readers against interpreting garbage as a huge
// length prefix.
const maxRecordBytes = 64 << 20

// Options parameterises a log directory.
type Options struct {
	// SegmentBytes is the size at which the active segment is sealed and a
	// new one started (0: DefaultSegmentBytes).
	SegmentBytes int64
	// Sync is the fsync policy (default SyncNever).
	Sync SyncPolicy
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

// frame header: payload length + CRC.
const headerBytes = 8

// segInfo describes one sealed segment.
type segInfo struct {
	ordinal int
	maxKey  uint64
}

// Writer appends records to a segment directory. AppendAsync/Append may be
// called from one goroutine at a time (the store serialises appends under
// each shard's lock), but they run concurrently with the group-commit
// flusher and with Commit.Wait from any goroutine; the maintenance methods
// (Sync, Rotate, TruncateBefore, Close, Stats) are safe to call from any
// goroutine as well.
//
// Lock order: flushMu → qmu, flushMu → mu. flushMu serialises batch
// seal+write+fsync and is never held while waiting on anything but the
// disk; qmu guards only the open batch; mu guards the file/segment state.
type Writer struct {
	dir  string
	opts Options

	// mu guards the file/segment state below. Direct appends (ungrouped
	// policies) and batch flushes both write under it.
	mu      sync.Mutex
	f       *os.File
	seg     int   // active segment ordinal
	size    int64 // bytes written to the active segment
	maxKey  uint64
	sealed  []segInfo // completed segments, ascending ordinal
	scratch []byte

	// Group-commit state (grouped policies only); see groupcommit.go.
	qmu     sync.Mutex // guards cur, err, closed
	cur     *batch     // open batch accepting appends (nil when empty)
	err     error      // sticky flush error; fails all later operations
	closed  bool       // set by Close before the final flush
	flushMu sync.Mutex // serialises seal+write+fsync (leader election)
	stop    chan struct{}
	done    chan struct{}

	nAppends atomic.Uint64
	nBatches atomic.Uint64
	nSyncs   atomic.Uint64
}

// WriterStats counts a writer's lifetime activity. Appends/Syncs is the
// group-commit amortisation factor; for ungrouped policies Batches stays 0.
type WriterStats struct {
	Appends uint64 // records accepted
	Batches uint64 // group-commit batches written
	Syncs   uint64 // fsyncs issued
}

// Stats returns a snapshot of the writer's counters.
func (w *Writer) Stats() WriterStats {
	return WriterStats{
		Appends: w.nAppends.Load(),
		Batches: w.nBatches.Load(),
		Syncs:   w.nSyncs.Load(),
	}
}

// segPath returns the file path of segment ordinal n in dir.
func segPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.wal", n))
}

// listSegments returns the ordinals of the segment files in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var ords []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%d.wal", &n); err == nil && e.Name() == fmt.Sprintf("seg-%08d.wal", n) {
			ords = append(ords, n)
		}
	}
	sort.Ints(ords)
	return ords, nil
}

// scanSegment walks a segment file frame by frame, returning the byte
// length of the longest valid prefix, the number of valid records, the
// maximum key seen, and whether an invalid frame (torn tail, corruption)
// cut the scan short.
func scanSegment(path string) (validLen int64, records int, maxKey uint64, damaged bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("wal: scan %s: %w", path, err)
	}
	off := int64(0)
	for {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			return off, records, maxKey, next != int64(len(data)) || off != int64(len(data)), nil
		}
		key, _, ok := recordKey(payload)
		if !ok {
			return off, records, maxKey, true, nil
		}
		records++
		if key > maxKey {
			maxKey = key
		}
		off = next
	}
}

// nextFrame validates the frame starting at off. ok=false means no valid
// frame starts there; next then reports len(data) only when the file ended
// exactly at off (clean end).
func nextFrame(data []byte, off int64) (payload []byte, next int64, ok bool) {
	if off == int64(len(data)) {
		return nil, off, false
	}
	if int64(len(data))-off < headerBytes {
		return nil, off, false
	}
	n := int64(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if n == 0 || n > maxRecordBytes || off+headerBytes+n > int64(len(data)) {
		return nil, off, false
	}
	payload = data[off+headerBytes : off+headerBytes+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, off, false
	}
	return payload, off + headerBytes + n, true
}

// recordKey splits a payload into its key prefix and the caller bytes.
func recordKey(payload []byte) (key uint64, rest []byte, ok bool) {
	key, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, nil, false
	}
	return key, payload[n:], true
}

// Create opens the log directory for appending, creating it if needed. An
// existing directory is recovered first: every segment is scanned, the
// first invalid frame truncates its segment to the longest valid prefix,
// and any later segments (which would sit past the hole) are deleted, so
// appends always continue a dense valid log.
func Create(dir string, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", dir, err)
	}
	w := &Writer{dir: dir, opts: opts, seg: 1}
	ords, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, ord := range ords {
		path := segPath(dir, ord)
		validLen, records, maxKey, damaged, err := scanSegment(path)
		if err != nil {
			return nil, err
		}
		if damaged {
			if err := os.Truncate(path, validLen); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
			for _, later := range ords[i+1:] {
				if err := os.Remove(segPath(dir, later)); err != nil {
					return nil, fmt.Errorf("wal: drop post-hole segment: %w", err)
				}
			}
		}
		w.seg = ord
		w.size = validLen
		if maxKey > w.maxKey {
			w.maxKey = maxKey
		}
		_ = records
		if damaged {
			break
		}
		if i < len(ords)-1 {
			w.sealed = append(w.sealed, segInfo{ordinal: ord, maxKey: maxKey})
		}
	}
	if err := w.openActive(); err != nil {
		return nil, err
	}
	if opts.Sync.mode == modeInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.intervalLoop()
	}
	return w, nil
}

// openActive opens the current segment file for appending.
func (w *Writer) openActive() error {
	f, err := os.OpenFile(segPath(w.dir, w.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	w.f = f
	return nil
}

// appendFrame frames one record (header + uvarint key + payload) onto dst.
func appendFrame(dst []byte, key uint64, payload []byte) []byte {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = binary.AppendUvarint(dst, key)
	dst = append(dst, payload...)
	body := dst[base+headerBytes:]
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[base+4:], crc32.ChecksumIEEE(body))
	return dst
}

// Append frames and writes one record and, under a durable policy, blocks
// until the covering group fsync completes. key must be non-decreasing
// across appends (store versions and event sequence numbers are).
// Equivalent to AppendAsync followed by Commit.Wait.
func (w *Writer) Append(key uint64, payload []byte) error {
	c, err := w.AppendAsync(key, payload)
	if err != nil {
		return err
	}
	return c.Wait()
}

// appendLocked writes one framed record directly (ungrouped policies).
// Caller holds w.mu.
func (w *Writer) appendLocked(key uint64, payload []byte) error {
	if w.f == nil {
		return fmt.Errorf("wal: append on closed writer")
	}
	w.scratch = appendFrame(w.scratch[:0], key, payload)
	if _, err := w.f.Write(w.scratch); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.size += int64(len(w.scratch))
	if key > w.maxKey {
		w.maxKey = key
	}
	if w.size >= w.opts.segmentBytes() {
		return w.rotateLocked()
	}
	return nil
}

// Rotate seals the active segment and starts the next one, flushing any
// pending group-commit batch first. Sealing an empty segment is a no-op.
// Checkpoints rotate before truncating so the whole pre-checkpoint history
// becomes eligible for TruncateBefore.
func (w *Writer) Rotate() error {
	if w.opts.Sync.grouped() {
		w.flushMu.Lock()
		defer w.flushMu.Unlock()
		if err := w.flushLocked(); err != nil {
			return err
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotateLocked()
}

// rotateLocked seals the active segment under the held w.mu.
func (w *Writer) rotateLocked() error {
	if w.f == nil {
		return fmt.Errorf("wal: rotate on closed writer")
	}
	if w.size == 0 {
		return nil
	}
	if w.opts.Sync.mode != modeNever {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync on rotate: %w", err)
		}
		w.nSyncs.Add(1)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	w.sealed = append(w.sealed, segInfo{ordinal: w.seg, maxKey: w.maxKey})
	w.seg++
	w.size = 0
	return w.openActive()
}

// TruncateBefore unlinks every sealed segment whose keys are all at or
// below key. The active segment is never removed.
func (w *Writer) TruncateBefore(key uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	kept := w.sealed[:0]
	for _, s := range w.sealed {
		if s.maxKey <= key {
			if err := os.Remove(segPath(w.dir, s.ordinal)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: truncate: %w", err)
			}
			continue
		}
		kept = append(kept, s)
	}
	w.sealed = kept
	return nil
}

// TruncateAfter physically removes every record with key > key from the
// log directory: the containing segment is cut at the first such record
// and all later segments are deleted. Recovery uses it to discard a tail
// that lost global density (a torn record in one shard's log invalidates
// every higher version across shards), so that writers reopened afterwards
// append immediately after the last surviving record. A damaged frame cuts
// at the damage point as well.
func TruncateAfter(dir string, key uint64) error {
	ords, err := listSegments(dir)
	if err != nil {
		return err
	}
	for idx, ord := range ords {
		path := segPath(dir, ord)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: truncate-after scan: %w", err)
		}
		cut := int64(-1)
		off := int64(0)
		for {
			payload, next, ok := nextFrame(data, off)
			if !ok {
				if off != int64(len(data)) {
					cut = off // damaged frame: cut here too
				}
				break
			}
			k, _, ok := recordKey(payload)
			if !ok || k > key {
				cut = off
				break
			}
			off = next
		}
		if cut < 0 {
			continue
		}
		if err := os.Truncate(path, cut); err != nil {
			return fmt.Errorf("wal: truncate-after: %w", err)
		}
		for _, later := range ords[idx+1:] {
			if err := os.Remove(segPath(dir, later)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: truncate-after drop segment: %w", err)
			}
		}
		return nil
	}
	return nil
}

// Sync flushes everything accepted so far — pending group-commit batch
// included — to stable storage regardless of policy.
func (w *Writer) Sync() error {
	if w.opts.Sync.grouped() {
		w.flushMu.Lock()
		defer w.flushMu.Unlock()
		w.qmu.Lock()
		pending := w.cur != nil
		sticky := w.err
		w.qmu.Unlock()
		if pending {
			return w.flushLocked() // flush writes and fsyncs the batch
		}
		if sticky != nil {
			return sticky
		}
		return w.syncFile()
	}
	return w.syncFile()
}

// syncFile fsyncs the active segment.
func (w *Writer) syncFile() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.nSyncs.Add(1)
	return nil
}

// Close stops the background committer, flushes any pending batch, syncs
// the tail — regardless of policy, so a checkpoint manifest written after
// Close never references a watermark ahead of what is durable on disk —
// and closes the active segment. The writer is unusable afterwards.
func (w *Writer) Close() error {
	var flushErr error
	if w.opts.Sync.grouped() {
		w.qmu.Lock()
		alreadyClosed := w.closed
		w.closed = true
		w.qmu.Unlock()
		if !alreadyClosed && w.stop != nil {
			close(w.stop)
			<-w.done
		}
		w.flushMu.Lock()
		flushErr = w.flushLocked()
		w.flushMu.Unlock()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return flushErr
	}
	serr := w.f.Sync()
	if serr == nil {
		w.nSyncs.Add(1)
	}
	cerr := w.f.Close()
	w.f = nil
	if flushErr != nil {
		return flushErr
	}
	if serr != nil {
		return fmt.Errorf("wal: sync on close: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: close: %w", cerr)
	}
	return nil
}

// Dir returns the directory the writer appends into.
func (w *Writer) Dir() string { return w.dir }

// SegmentCount returns the number of on-disk segments (sealed + active).
func (w *Writer) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.sealed)
	if w.size > 0 || n == 0 {
		n++
	}
	return n
}

// MaxKey returns the highest key flushed to the log (appended or
// recovered); records still queued in an unflushed batch do not count.
func (w *Writer) MaxKey() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.maxKey
}
