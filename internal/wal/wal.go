// Package wal implements the segmented write-ahead log underneath the
// store's durable changelog sinks and the event log's durable tee.
//
// A log is a directory of append-only segment files (seg-00000001.wal,
// seg-00000002.wal, ...). Each record is framed as
//
//	[4-byte LE payload length][4-byte LE CRC32-IEEE of payload][payload]
//
// where the payload starts with the record's uvarint-encoded key (the
// store version or event sequence number, monotonically non-decreasing)
// followed by the caller's opaque bytes. The CRC covers the whole payload,
// so a torn or corrupted tail is detected record-by-record: readers stop
// at the first invalid frame and recover exactly the longest valid prefix,
// and a Writer reopening an existing directory truncates the damaged tail
// before appending, so the log never grows past a hole.
//
// Segments rotate once the active file reaches Options.SegmentBytes. The
// writer remembers each completed segment's maximum key, which is what
// checkpoint truncation uses: TruncateBefore(k) unlinks every completed
// segment whose records are all at or below k — the per-shard low-water
// version — without ever touching the active segment.
//
// Durability is a policy knob (Options.Sync): SyncNever leaves flushing to
// the OS (fastest, loses the unsynced tail on power failure — process
// crashes lose nothing), SyncOnRotate fsyncs each segment as it is sealed,
// and SyncAlways fsyncs after every append (group-commit-free, slowest,
// strongest).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// SyncPolicy selects when the writer fsyncs.
type SyncPolicy int

// Sync policies, weakest to strongest.
const (
	// SyncNever never fsyncs explicitly; the OS flushes at its leisure.
	SyncNever SyncPolicy = iota
	// SyncOnRotate fsyncs a segment when it is sealed (and on Sync/Close).
	SyncOnRotate
	// SyncAlways fsyncs after every append.
	SyncAlways
)

// String renders the policy for reports and flag parsing.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOnRotate:
		return "rotate"
	default:
		return "never"
	}
}

// ParseSyncPolicy maps the String form back to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "never":
		return SyncNever, nil
	case "rotate":
		return SyncOnRotate, nil
	case "always":
		return SyncAlways, nil
	}
	return SyncNever, fmt.Errorf("wal: unknown sync policy %q (want never|rotate|always)", s)
}

// DefaultSegmentBytes is the rotation threshold used when Options leaves
// SegmentBytes zero: large enough that steady-state appends amortise file
// creation, small enough that checkpoint truncation reclaims space promptly.
const DefaultSegmentBytes = 4 << 20

// maxRecordBytes guards readers against interpreting garbage as a huge
// length prefix.
const maxRecordBytes = 64 << 20

// Options parameterises a log directory.
type Options struct {
	// SegmentBytes is the size at which the active segment is sealed and a
	// new one started (0: DefaultSegmentBytes).
	SegmentBytes int64
	// Sync is the fsync policy (default SyncNever).
	Sync SyncPolicy
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

// frame header: payload length + CRC.
const headerBytes = 8

// segInfo describes one sealed segment.
type segInfo struct {
	ordinal int
	maxKey  uint64
}

// Writer appends records to a segment directory. Not safe for concurrent
// use; the store serialises appends under each shard's lock.
type Writer struct {
	dir     string
	opts    Options
	f       *os.File
	seg     int   // active segment ordinal
	size    int64 // bytes written to the active segment
	maxKey  uint64
	sealed  []segInfo // completed segments, ascending ordinal
	scratch []byte
}

// segPath returns the file path of segment ordinal n in dir.
func segPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.wal", n))
}

// listSegments returns the ordinals of the segment files in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var ords []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%d.wal", &n); err == nil && e.Name() == fmt.Sprintf("seg-%08d.wal", n) {
			ords = append(ords, n)
		}
	}
	sort.Ints(ords)
	return ords, nil
}

// scanSegment walks a segment file frame by frame, returning the byte
// length of the longest valid prefix, the number of valid records, the
// maximum key seen, and whether an invalid frame (torn tail, corruption)
// cut the scan short.
func scanSegment(path string) (validLen int64, records int, maxKey uint64, damaged bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("wal: scan %s: %w", path, err)
	}
	off := int64(0)
	for {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			return off, records, maxKey, next != int64(len(data)) || off != int64(len(data)), nil
		}
		key, _, ok := recordKey(payload)
		if !ok {
			return off, records, maxKey, true, nil
		}
		records++
		if key > maxKey {
			maxKey = key
		}
		off = next
	}
}

// nextFrame validates the frame starting at off. ok=false means no valid
// frame starts there; next then reports len(data) only when the file ended
// exactly at off (clean end).
func nextFrame(data []byte, off int64) (payload []byte, next int64, ok bool) {
	if off == int64(len(data)) {
		return nil, off, false
	}
	if int64(len(data))-off < headerBytes {
		return nil, off, false
	}
	n := int64(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if n == 0 || n > maxRecordBytes || off+headerBytes+n > int64(len(data)) {
		return nil, off, false
	}
	payload = data[off+headerBytes : off+headerBytes+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, off, false
	}
	return payload, off + headerBytes + n, true
}

// recordKey splits a payload into its key prefix and the caller bytes.
func recordKey(payload []byte) (key uint64, rest []byte, ok bool) {
	key, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, nil, false
	}
	return key, payload[n:], true
}

// Create opens the log directory for appending, creating it if needed. An
// existing directory is recovered first: every segment is scanned, the
// first invalid frame truncates its segment to the longest valid prefix,
// and any later segments (which would sit past the hole) are deleted, so
// appends always continue a dense valid log.
func Create(dir string, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", dir, err)
	}
	w := &Writer{dir: dir, opts: opts, seg: 1}
	ords, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, ord := range ords {
		path := segPath(dir, ord)
		validLen, records, maxKey, damaged, err := scanSegment(path)
		if err != nil {
			return nil, err
		}
		if damaged {
			if err := os.Truncate(path, validLen); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
			for _, later := range ords[i+1:] {
				if err := os.Remove(segPath(dir, later)); err != nil {
					return nil, fmt.Errorf("wal: drop post-hole segment: %w", err)
				}
			}
		}
		w.seg = ord
		w.size = validLen
		if maxKey > w.maxKey {
			w.maxKey = maxKey
		}
		_ = records
		if damaged {
			break
		}
		if i < len(ords)-1 {
			w.sealed = append(w.sealed, segInfo{ordinal: ord, maxKey: maxKey})
		}
	}
	if err := w.openActive(); err != nil {
		return nil, err
	}
	return w, nil
}

// openActive opens the current segment file for appending.
func (w *Writer) openActive() error {
	f, err := os.OpenFile(segPath(w.dir, w.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	w.f = f
	return nil
}

// Append frames and writes one record. key must be non-decreasing across
// appends (store versions and event sequence numbers are). The write lands
// in the OS page cache unless the sync policy says otherwise; rotation
// happens after the append once the active segment reaches the threshold.
func (w *Writer) Append(key uint64, payload []byte) error {
	if w.f == nil {
		return fmt.Errorf("wal: append on closed writer")
	}
	w.scratch = w.scratch[:0]
	w.scratch = append(w.scratch, 0, 0, 0, 0, 0, 0, 0, 0)
	w.scratch = binary.AppendUvarint(w.scratch, key)
	w.scratch = append(w.scratch, payload...)
	body := w.scratch[headerBytes:]
	binary.LittleEndian.PutUint32(w.scratch[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(w.scratch[4:], crc32.ChecksumIEEE(body))
	if _, err := w.f.Write(w.scratch); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.size += int64(len(w.scratch))
	if key > w.maxKey {
		w.maxKey = key
	}
	if w.opts.Sync == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	if w.size >= w.opts.segmentBytes() {
		return w.Rotate()
	}
	return nil
}

// Rotate seals the active segment and starts the next one. Sealing an
// empty segment is a no-op. Checkpoints rotate before truncating so the
// whole pre-checkpoint history becomes eligible for TruncateBefore.
func (w *Writer) Rotate() error {
	if w.f == nil {
		return fmt.Errorf("wal: rotate on closed writer")
	}
	if w.size == 0 {
		return nil
	}
	if w.opts.Sync != SyncNever {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync on rotate: %w", err)
		}
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	w.sealed = append(w.sealed, segInfo{ordinal: w.seg, maxKey: w.maxKey})
	w.seg++
	w.size = 0
	return w.openActive()
}

// TruncateBefore unlinks every sealed segment whose keys are all at or
// below key. The active segment is never removed.
func (w *Writer) TruncateBefore(key uint64) error {
	kept := w.sealed[:0]
	for _, s := range w.sealed {
		if s.maxKey <= key {
			if err := os.Remove(segPath(w.dir, s.ordinal)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: truncate: %w", err)
			}
			continue
		}
		kept = append(kept, s)
	}
	w.sealed = kept
	return nil
}

// TruncateAfter physically removes every record with key > key from the
// log directory: the containing segment is cut at the first such record
// and all later segments are deleted. Recovery uses it to discard a tail
// that lost global density (a torn record in one shard's log invalidates
// every higher version across shards), so that writers reopened afterwards
// append immediately after the last surviving record. A damaged frame cuts
// at the damage point as well.
func TruncateAfter(dir string, key uint64) error {
	ords, err := listSegments(dir)
	if err != nil {
		return err
	}
	for idx, ord := range ords {
		path := segPath(dir, ord)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: truncate-after scan: %w", err)
		}
		cut := int64(-1)
		off := int64(0)
		for {
			payload, next, ok := nextFrame(data, off)
			if !ok {
				if off != int64(len(data)) {
					cut = off // damaged frame: cut here too
				}
				break
			}
			k, _, ok := recordKey(payload)
			if !ok || k > key {
				cut = off
				break
			}
			off = next
		}
		if cut < 0 {
			continue
		}
		if err := os.Truncate(path, cut); err != nil {
			return fmt.Errorf("wal: truncate-after: %w", err)
		}
		for _, later := range ords[idx+1:] {
			if err := os.Remove(segPath(dir, later)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: truncate-after drop segment: %w", err)
			}
		}
		return nil
	}
	return nil
}

// Sync flushes the active segment to stable storage regardless of policy.
func (w *Writer) Sync() error {
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close syncs (unless SyncNever) and closes the active segment. The writer
// is unusable afterwards.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	if w.opts.Sync != SyncNever {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync on close: %w", err)
		}
	}
	err := w.f.Close()
	w.f = nil
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Dir returns the directory the writer appends into.
func (w *Writer) Dir() string { return w.dir }

// SegmentCount returns the number of on-disk segments (sealed + active).
func (w *Writer) SegmentCount() int {
	n := len(w.sealed)
	if w.size > 0 || n == 0 {
		n++
	}
	return n
}

// MaxKey returns the highest key ever appended (or recovered) in this log.
func (w *Writer) MaxKey() uint64 { return w.maxKey }
