package wal

import (
	"encoding/binary"
	"errors"
	"math"
)

// Compact binary codec helpers shared by the WAL payload codecs
// (store.Change mutations, eventlog.Event records). Encoders append to a
// caller-owned buffer; the Dec reader consumes a payload front to back and
// latches the first error so call sites stay unconditional.

// ErrShortPayload reports a payload that ended before its schema did.
var ErrShortPayload = errors.New("wal: short payload")

// AppendUvarint appends v as a uvarint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendString appends a uvarint length prefix followed by the bytes.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendVarint appends v zigzag-encoded (for timestamps that could in
// principle be negative).
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendFloat64 appends the IEEE 754 bits, little-endian.
func AppendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendBool appends one byte (1/0).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendBits appends a bool slice as a uvarint length plus packed bits.
func AppendBits(b []byte, bits []bool) []byte {
	b = binary.AppendUvarint(b, uint64(len(bits)))
	var cur byte
	n := 0
	for _, set := range bits {
		if set {
			cur |= 1 << n
		}
		n++
		if n == 8 {
			b = append(b, cur)
			cur, n = 0, 0
		}
	}
	if n > 0 {
		b = append(b, cur)
	}
	return b
}

// Dec consumes a payload produced with the Append helpers. The zero value
// over a payload slice is ready to use; after the first decoding error all
// further reads return zero values and Err reports the failure.
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{b: payload} }

// Err returns the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Rest returns the unconsumed remainder of the payload, so codecs can
// sanity-bound element counts before allocating.
func (d *Dec) Rest() []byte { return d.b }

// Fail latches ErrShortPayload from codec-level validation (e.g. an
// element count the remaining payload cannot possibly hold).
func (d *Dec) Fail() { d.fail() }

// Done reports whether the payload was consumed exactly and without error.
func (d *Dec) Done() bool { return d.err == nil && len(d.b) == 0 }

func (d *Dec) fail() {
	if d.err == nil {
		d.err = ErrShortPayload
	}
}

// Uvarint reads one uvarint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Varint reads one zigzag-encoded signed value.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// String reads one length-prefixed string.
func (d *Dec) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// Float64 reads one little-endian IEEE 754 value.
func (d *Dec) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// Bool reads one byte as a bool.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 {
		d.fail()
		return false
	}
	v := d.b[0] != 0
	d.b = d.b[1:]
	return v
}

// Byte reads one raw byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Bits reads a packed bool slice written by AppendBits.
func (d *Dec) Bits() []bool {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	// Bound n by the bits the remaining payload can actually hold before
	// any allocation: a corrupt length must latch an error, not panic in
	// make (and (n+7)/8 would wrap for n near 2^64).
	if n > uint64(len(d.b))*8 {
		d.fail()
		return nil
	}
	bytes := (n + 7) / 8
	out := make([]bool, n)
	for i := uint64(0); i < n; i++ {
		out[i] = d.b[i/8]&(1<<(i%8)) != 0
	}
	d.b = d.b[bytes:]
	return out
}
