package wal

import (
	"fmt"
	"io"
	"os"
)

// Reader iterates every record in a segment directory in append order —
// the sequential replay path of store.Open and eventlog.OpenDurable. The
// whole current segment is read into memory and frames are sliced out of
// the buffer (an mmap-style zero-copy scan: returned payloads alias the
// segment buffer and must not be retained across Close).
//
// A torn or corrupted frame ends the stream: Next returns io.EOF and
// Damaged reports true, so consumers recover exactly the longest valid
// prefix of the log.
type Reader struct {
	dir     string
	ords    []int
	idx     int    // next ordinal index to load
	data    []byte // current segment buffer
	off     int64
	damaged bool
}

// OpenDir opens a segment directory for reading. A missing directory reads
// as an empty log.
func OpenDir(dir string) (*Reader, error) {
	ords, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	return &Reader{dir: dir, ords: ords}, nil
}

// Next returns the next record's key and payload, or io.EOF at the end of
// the log (including a damaged tail — check Damaged to distinguish).
func (r *Reader) Next() (key uint64, payload []byte, err error) {
	for {
		if r.damaged {
			return 0, nil, io.EOF
		}
		if r.data == nil || r.off >= int64(len(r.data)) {
			if r.off != int64(len(r.data)) {
				r.damaged = true
				return 0, nil, io.EOF
			}
			if r.idx >= len(r.ords) {
				return 0, nil, io.EOF
			}
			data, err := os.ReadFile(segPath(r.dir, r.ords[r.idx]))
			if err != nil {
				return 0, nil, fmt.Errorf("wal: read segment: %w", err)
			}
			r.idx++
			r.data = data
			r.off = 0
			continue
		}
		frame, next, ok := nextFrame(r.data, r.off)
		if !ok {
			r.damaged = true
			return 0, nil, io.EOF
		}
		k, rest, ok := recordKey(frame)
		if !ok {
			r.damaged = true
			return 0, nil, io.EOF
		}
		r.off = next
		return k, rest, nil
	}
}

// Damaged reports whether the stream was cut short by an invalid frame
// (torn tail or corruption) rather than ending cleanly.
func (r *Reader) Damaged() bool { return r.damaged }

// Close releases the segment buffer.
func (r *Reader) Close() error {
	r.data = nil
	r.ords = nil
	return nil
}
