package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// readAll drains a reader, returning keys and payload copies.
func readAll(t *testing.T, dir string) (keys []uint64, payloads [][]byte, damaged bool) {
	t.Helper()
	r, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for {
		k, p, err := r.Next()
		if err == io.EOF {
			return keys, payloads, r.Damaged()
		}
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
		payloads = append(payloads, append([]byte(nil), p...))
	}
}

func TestWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		if err := w.Append(uint64(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	if w.SegmentCount() < 2 {
		t.Fatalf("expected rotation with 64-byte segments, got %d segment(s)", w.SegmentCount())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	keys, payloads, damaged := readAll(t, dir)
	if damaged {
		t.Fatal("clean log read as damaged")
	}
	if len(payloads) != len(want) {
		t.Fatalf("got %d records, want %d", len(payloads), len(want))
	}
	for i := range want {
		if string(payloads[i]) != string(want[i]) {
			t.Fatalf("record %d: got %q want %q", i, payloads[i], want[i])
		}
		if keys[i] != uint64(i+1) {
			t.Fatalf("record %d: key %d want %d", i, keys[i], i+1)
		}
	}
}

func TestReopenContinuesAppending(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(uint64(i+1), []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = Create(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxKey() != 10 {
		t.Fatalf("recovered MaxKey %d, want 10", w.MaxKey())
	}
	for i := 10; i < 20; i++ {
		if err := w.Append(uint64(i+1), []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	keys, _, damaged := readAll(t, dir)
	if damaged || len(keys) != 20 {
		t.Fatalf("got %d records (damaged=%v), want 20 clean", len(keys), damaged)
	}
}

func TestTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{SegmentBytes: 1}) // every record seals a segment
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(uint64(i+1), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.TruncateBefore(7); err != nil {
		t.Fatal(err)
	}
	keys, _, _ := readAll(t, dir)
	for _, k := range keys {
		if k <= 7 && len(keys) > 3 {
			t.Fatalf("key %d survived TruncateBefore(7): %v", k, keys)
		}
	}
	if len(keys) < 3 {
		t.Fatalf("truncation removed live records: %v", keys)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// lastSegment returns the path of the highest-ordinal segment in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ords, err := listSegments(dir)
	if err != nil || len(ords) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return segPath(dir, ords[len(ords)-1])
}

// copyDir clones a segment directory for destructive experiments.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestTornTailTorture truncates the final segment at every byte offset and
// asserts the reader recovers exactly the records whose frames survived in
// full — the longest valid prefix.
func TestTornTailTorture(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var frames []int // cumulative byte length of each record's frame
	total := 0
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("payload-%02d-%s", i, "abcdefgh"[:1+i%8]))
		if err := w.Append(uint64(i+1), p); err != nil {
			t.Fatal(err)
		}
		// frame = header + uvarint key + payload; keys < 128 take 1 byte.
		total += headerBytes + 1 + len(p)
		frames = append(frames, total)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != total {
		t.Fatalf("segment is %d bytes, frame accounting says %d", len(data), total)
	}
	for cut := 0; cut <= len(data); cut++ {
		wantRecords := 0
		for _, end := range frames {
			if end <= cut {
				wantRecords++
			}
		}
		trial := copyDir(t, dir)
		if err := os.Truncate(lastSegment(t, trial), int64(cut)); err != nil {
			t.Fatal(err)
		}
		keys, _, damaged := readAll(t, trial)
		if len(keys) != wantRecords {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(keys), wantRecords)
		}
		// The stream reads as damaged exactly when the cut left a partial
		// frame behind (a cut on a frame boundary is indistinguishable from
		// a clean end).
		onBoundary := cut == 0 || (wantRecords > 0 && cut == frames[wantRecords-1])
		if damaged == onBoundary {
			t.Fatalf("cut at %d: damaged=%v, boundary=%v", cut, damaged, onBoundary)
		}
		// A writer reopening the torn log must also settle on the same prefix
		// and keep appending cleanly.
		w2, err := Create(trial, Options{SegmentBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.Append(999, []byte("after")); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		keys2, _, damaged2 := readAll(t, trial)
		if damaged2 || len(keys2) != wantRecords+1 || keys2[len(keys2)-1] != 999 {
			t.Fatalf("cut at %d: reopen+append gave %d records (damaged=%v), want %d", cut, len(keys2), damaged2, wantRecords+1)
		}
	}
}

// TestCorruptByteTorture flips one byte at every offset of the final
// segment and asserts the reader never returns a record past the damage.
func TestCorruptByteTorture(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var frames []int
	total := 0
	for i := 0; i < 12; i++ {
		p := []byte(fmt.Sprintf("rec-%02d", i))
		if err := w.Append(uint64(i+1), p); err != nil {
			t.Fatal(err)
		}
		total += headerBytes + 1 + len(p)
		frames = append(frames, total)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for off := 0; off < total; off++ {
		// Records fully before the flipped byte must survive intact.
		intact := 0
		for _, end := range frames {
			if end <= off {
				intact++
			}
		}
		trial := copyDir(t, dir)
		seg := lastSegment(t, trial)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[off] ^= 0xff
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		keys, _, _ := readAll(t, trial)
		if len(keys) < intact {
			t.Fatalf("flip at %d: recovered %d records, want at least the %d intact ones", off, len(keys), intact)
		}
		for i := 0; i < intact; i++ {
			if keys[i] != uint64(i+1) {
				t.Fatalf("flip at %d: record %d has key %d", off, i, keys[i])
			}
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncNever, SyncOnRotate, SyncAlways} {
		dir := t.TempDir()
		w, err := Create(dir, Options{SegmentBytes: 64, Sync: pol})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := w.Append(uint64(i+1), []byte("sync-policy-record")); err != nil {
				t.Fatalf("%v: %v", pol, err)
			}
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		keys, _, damaged := readAll(t, dir)
		if damaged || len(keys) != 20 {
			t.Fatalf("%v: got %d records damaged=%v", pol, len(keys), damaged)
		}
		rt, err := ParseSyncPolicy(pol.String())
		if err != nil || rt != pol {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", pol.String(), rt, err)
		}
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 1<<40)
	b = AppendString(b, "hello, wal")
	b = AppendString(b, "")
	b = AppendFloat64(b, 3.14159)
	b = AppendBool(b, true)
	b = AppendBits(b, []bool{true, false, true, true, false, false, true, false, true})
	d := NewDec(b)
	if v := d.Uvarint(); v != 1<<40 {
		t.Fatalf("uvarint: %d", v)
	}
	if s := d.String(); s != "hello, wal" {
		t.Fatalf("string: %q", s)
	}
	if s := d.String(); s != "" {
		t.Fatalf("empty string: %q", s)
	}
	if f := d.Float64(); f != 3.14159 {
		t.Fatalf("float: %v", f)
	}
	if !d.Bool() {
		t.Fatal("bool")
	}
	bits := d.Bits()
	want := []bool{true, false, true, true, false, false, true, false, true}
	if len(bits) != len(want) {
		t.Fatalf("bits len %d", len(bits))
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d", i)
		}
	}
	if !d.Done() {
		t.Fatalf("not done: err=%v", d.Err())
	}
	// Truncated payloads latch an error instead of panicking.
	d2 := NewDec(b[:3])
	_ = d2.Uvarint()
	_ = d2.String()
	_ = d2.Float64()
	if d2.Err() == nil {
		t.Fatal("expected error on truncated payload")
	}
}
