package assign

import (
	"sort"

	"repro/internal/model"
)

// SelfAppointment models the AMT/CrowdFlower browse-and-pick mechanism of
// §3.1.1: every qualified worker sees every open task ("workers have access
// to the same set of tasks" — the paper's fair baseline), then workers pick
// in a random arrival order, each taking their most-preferred tasks while
// slots remain.
type SelfAppointment struct{}

// Name implements Assigner.
func (SelfAppointment) Name() string { return "self-appointment" }

// Assign implements Assigner.
func (SelfAppointment) Assign(p *Problem) (*Result, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	res := &Result{
		Algorithm: SelfAppointment{}.Name(),
		Offers:    make(map[model.WorkerID][]model.TaskID),
	}
	// Full visibility: every worker is offered every task they qualify for.
	qualified := make(map[model.WorkerID][]int, len(p.Workers))
	for _, w := range p.Workers {
		qi := qualifiedTasks(p, w)
		qualified[w.ID] = qi
		for _, i := range qi {
			res.Offers[w.ID] = append(res.Offers[w.ID], p.Tasks[i].ID)
		}
	}
	// Workers arrive in random order and self-select.
	rng := p.rng()
	order := rng.Perm(len(p.Workers))
	remaining := slots(p.Tasks)
	pref := p.preference()
	workers := sortedWorkers(p.Workers)
	for _, wi := range order {
		w := workers[wi]
		// The worker ranks their qualified tasks by personal preference and
		// takes the top ones that still have open slots.
		qi := append([]int(nil), qualified[w.ID]...)
		sort.SliceStable(qi, func(a, b int) bool {
			pa := pref(w, p.Tasks[qi[a]])
			pb := pref(w, p.Tasks[qi[b]])
			if pa != pb {
				return pa > pb
			}
			return p.Tasks[qi[a]].ID < p.Tasks[qi[b]].ID
		})
		taken := 0
		for _, ti := range qi {
			if taken >= p.capacity() {
				break
			}
			if remaining[ti] == 0 {
				continue
			}
			remaining[ti]--
			taken++
			res.Assignments = append(res.Assignments, Assignment{Worker: w.ID, Task: p.Tasks[ti].ID})
		}
	}
	res.Utility = scoreUtility(p, res.Assignments)
	return res, nil
}
