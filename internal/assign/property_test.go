package assign

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/stats"
)

// randomProblem builds a structurally random assignment instance.
func randomProblem(rng *stats.RNG) *Problem {
	m := 2 + rng.Intn(5)
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	nW := 1 + rng.Intn(12)
	nT := rng.Intn(10)
	var workers []*model.Worker
	for i := 0; i < nW; i++ {
		skills := model.NewSkillVector(m)
		for k := range skills {
			skills[k] = rng.Bool(0.5)
		}
		workers = append(workers, &model.Worker{
			ID:       model.WorkerID(fmt.Sprintf("w%02d", i)),
			Computed: model.Attributes{model.AttrAcceptanceRatio: model.Num(rng.Float64())},
			Skills:   skills,
		})
	}
	var tasks []*model.Task
	for i := 0; i < nT; i++ {
		skills := model.NewSkillVector(m)
		for k := range skills {
			skills[k] = rng.Bool(0.3)
		}
		tasks = append(tasks, &model.Task{
			ID:        model.TaskID(fmt.Sprintf("t%02d", i)),
			Requester: model.RequesterID(fmt.Sprintf("r%d", i%3)),
			Skills:    skills,
			Reward:    0.1 + rng.Float64()*2,
			Quota:     1 + rng.Intn(3),
			Published: 1 + rng.Intn(5),
		})
	}
	return &Problem{
		Workers:  workers,
		Tasks:    tasks,
		Capacity: 1 + rng.Intn(3),
		RNG:      rng.Split(),
	}
}

// problemInvariants checks the universal assigner contract on a result
// without a testing.T (for use inside quick properties).
func problemInvariants(p *Problem, res *Result) error {
	byW := make(map[model.WorkerID]*model.Worker)
	for _, w := range p.Workers {
		byW[w.ID] = w
	}
	byT := make(map[model.TaskID]*model.Task)
	for _, task := range p.Tasks {
		byT[task.ID] = task
	}
	load := make(map[model.WorkerID]int)
	slots := make(map[model.TaskID]int)
	seen := make(map[Assignment]bool)
	for _, a := range res.Assignments {
		w, ok := byW[a.Worker]
		if !ok {
			return fmt.Errorf("unknown worker %s", a.Worker)
		}
		task, ok := byT[a.Task]
		if !ok {
			return fmt.Errorf("unknown task %s", a.Task)
		}
		if !w.Skills.Covers(task.Skills) {
			return fmt.Errorf("unqualified assignment %v", a)
		}
		if seen[a] {
			return fmt.Errorf("duplicate assignment %v", a)
		}
		seen[a] = true
		load[a.Worker]++
		slots[a.Task]++
	}
	for w, n := range load {
		if n > p.capacity() {
			return fmt.Errorf("worker %s over capacity: %d", w, n)
		}
	}
	for tid, n := range slots {
		if n > byT[tid].EffectivePublished() {
			return fmt.Errorf("task %s over slots: %d", tid, n)
		}
	}
	// Offers must only reference real entities and cover all assignments.
	offered := make(map[Assignment]bool)
	for w, ts := range res.Offers {
		if _, ok := byW[w]; !ok {
			return fmt.Errorf("offer to unknown worker %s", w)
		}
		for _, tid := range ts {
			if _, ok := byT[tid]; !ok {
				return fmt.Errorf("offer of unknown task %s", tid)
			}
			offered[Assignment{Worker: w, Task: tid}] = true
		}
	}
	for a := range seen {
		if !offered[a] {
			return fmt.Errorf("assignment %v without offer", a)
		}
	}
	return nil
}

// Every assigner (including Tradeoff at several lambdas) must satisfy the
// contract on arbitrary random instances.
func TestAssignerInvariantsProperty(t *testing.T) {
	assigners := append(All(),
		Tradeoff{Lambda: 0}, Tradeoff{Lambda: 0.5}, Tradeoff{Lambda: 1},
		OnlineGreedy{SlateSize: 1}, OnlineGreedy{SlateSize: 10},
	)
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := randomProblem(rng)
		for _, a := range assigners {
			// Fresh RNG per assigner so failures reproduce in isolation.
			p.RNG = stats.NewRNG(seed + 1)
			res, err := a.Assign(p)
			if err != nil {
				t.Logf("%s: %v", a.Name(), err)
				return false
			}
			if err := problemInvariants(p, res); err != nil {
				t.Logf("%s on seed %d: %v", a.Name(), seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The optimal matcher must never do worse than greedy on requester utility.
func TestOptimalAtLeastGreedyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := randomProblem(rng)
		// Keep instances small: the Hungarian expansion is cubic.
		if len(p.Workers) > 8 || len(p.Tasks) > 6 {
			return true
		}
		greedy, err := (RequesterCentric{}).Assign(p)
		if err != nil {
			return false
		}
		optimal, err := (RequesterCentric{Optimal: true}).Assign(p)
		if err != nil {
			return false
		}
		return optimal.Utility >= greedy.Utility-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Full-visibility assigners must produce identical offer sets for workers
// with identical skills — Axiom 1's access condition by construction.
func TestFullVisibilityOffersProperty(t *testing.T) {
	fullVisibility := []Assigner{SelfAppointment{}, WorkerCentric{}, FairRoundRobin{}, Tradeoff{}}
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := randomProblem(rng)
		for _, a := range fullVisibility {
			p.RNG = stats.NewRNG(seed + 2)
			res, err := a.Assign(p)
			if err != nil {
				return false
			}
			for i := 0; i < len(p.Workers); i++ {
				for j := i + 1; j < len(p.Workers); j++ {
					wi, wj := p.Workers[i], p.Workers[j]
					if !wi.Skills.Equal(wj.Skills) {
						continue
					}
					if !sameTaskSet(res.Offers[wi.ID], res.Offers[wj.ID]) {
						t.Logf("%s: twins %s/%s offers differ: %v vs %v",
							a.Name(), wi.ID, wj.ID, res.Offers[wi.ID], res.Offers[wj.ID])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func sameTaskSet(a, b []model.TaskID) bool {
	as := make(map[model.TaskID]bool, len(a))
	for _, t := range a {
		as[t] = true
	}
	bs := make(map[model.TaskID]bool, len(b))
	for _, t := range b {
		bs[t] = true
	}
	if len(as) != len(bs) {
		return false
	}
	for t := range as {
		if !bs[t] {
			return false
		}
	}
	return true
}
