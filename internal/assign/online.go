package assign

import (
	"sort"

	"repro/internal/model"
)

// OnlineGreedy models online task assignment in the spirit of Ho & Vaughan
// (AAAI 2012): workers arrive one at a time in random order and the
// platform must irrevocably offer each arriving worker a small slate of
// open tasks, choosing the slate to maximise marginal requester gain. The
// worker accepts the best-paying task on the slate they qualify for.
//
// SlateSize controls how many tasks are shown per arrival; the offer sets
// it generates are narrower than self-appointment but broader than
// requester-centric, which places it between the two on the fairness axis —
// the crossover E1 looks for.
type OnlineGreedy struct {
	// SlateSize is the number of tasks offered per arrival (default 3).
	SlateSize int
}

// Name implements Assigner.
func (OnlineGreedy) Name() string { return "online-greedy" }

// Assign implements Assigner.
func (o OnlineGreedy) Assign(p *Problem) (*Result, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	slate := o.SlateSize
	if slate <= 0 {
		slate = 3
	}
	res := &Result{Algorithm: o.Name(), Offers: make(map[model.WorkerID][]model.TaskID)}
	u := p.utility()
	workers := sortedWorkers(p.Workers)
	rng := p.rng()
	order := rng.Perm(len(workers))
	remaining := slots(p.Tasks)

	for _, wi := range order {
		w := workers[wi]
		taken := make(map[int]bool, p.capacity())
		for c := 0; c < p.capacity(); c++ {
			// Rank open tasks by marginal gain for this worker, excluding
			// tasks the worker already holds (one contribution per task).
			type cand struct {
				ti   int
				gain float64
			}
			var cands []cand
			for ti, t := range p.Tasks {
				if remaining[ti] == 0 || taken[ti] {
					continue
				}
				if g := u(w, t); g > 0 {
					cands = append(cands, cand{ti, g})
				}
			}
			if len(cands) == 0 {
				break
			}
			sort.SliceStable(cands, func(a, b int) bool {
				if cands[a].gain != cands[b].gain {
					return cands[a].gain > cands[b].gain
				}
				return p.Tasks[cands[a].ti].ID < p.Tasks[cands[b].ti].ID
			})
			if len(cands) > slate {
				cands = cands[:slate]
			}
			// The slate is what the worker can see: record offers.
			for _, c := range cands {
				res.Offers[w.ID] = appendTaskOnce(res.Offers[w.ID], p.Tasks[c.ti].ID)
			}
			// The worker takes the best-paying task on the slate.
			best := cands[0].ti
			bestReward := p.Tasks[best].Reward
			for _, c := range cands[1:] {
				if r := p.Tasks[c.ti].Reward; r > bestReward {
					best, bestReward = c.ti, r
				}
			}
			remaining[best]--
			taken[best] = true
			res.Assignments = append(res.Assignments, Assignment{Worker: w.ID, Task: p.Tasks[best].ID})
		}
	}
	res.Utility = scoreUtility(p, res.Assignments)
	return res, nil
}

func appendTaskOnce(ids []model.TaskID, id model.TaskID) []model.TaskID {
	for _, v := range ids {
		if v == id {
			return ids
		}
	}
	return append(ids, id)
}
