package assign

// MaxWeightMatching solves the assignment problem exactly: given a gain
// matrix (rows = agents, cols = jobs), it returns, per row, the column
// assigned to it, or -1 if the row is left unmatched. The implementation is
// the O(n³) Jonker-style potentials formulation of the Hungarian algorithm
// run on the cost matrix (max-gain = min-cost of negated gains), padded to
// square form.
//
// Gains may be any finite values; only the relative order matters. The
// caller is responsible for pruning assignments whose gain it considers
// unusable (e.g. zero-gain pairs).
func MaxWeightMatching(gain [][]float64) []int {
	nRows := len(gain)
	if nRows == 0 {
		return nil
	}
	nCols := len(gain[0])
	n := nRows
	if nCols > n {
		n = nCols
	}

	// Build a square cost matrix of negated gains; padding cells cost 0,
	// which never beats a real positive gain and never blocks feasibility.
	const inf = 1e18
	cost := make([][]float64, n+1)
	for i := 0; i <= n; i++ {
		cost[i] = make([]float64, n+1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i < nRows && j < nCols {
				cost[i+1][j+1] = -gain[i][j]
			}
		}
	}

	// Standard Hungarian with row/column potentials (1-based internals).
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	out := make([]int, nRows)
	for i := range out {
		out[i] = -1
	}
	for j := 1; j <= n; j++ {
		i := p[j] - 1
		if i >= 0 && i < nRows && j-1 < nCols {
			out[i] = j - 1
		}
	}
	return out
}
