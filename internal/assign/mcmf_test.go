package assign

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// bruteForceBMatching enumerates all subsets of positive-gain edges that
// respect worker and task capacities and returns the best total gain.
// Exponential — tiny instances only.
func bruteForceBMatching(gain [][]float64, workerCap, taskCap []int) float64 {
	type edge struct {
		w, t int
		g    float64
	}
	var edges []edge
	for i := range gain {
		for j := range gain[i] {
			if gain[i][j] > 0 {
				edges = append(edges, edge{i, j, gain[i][j]})
			}
		}
	}
	wUsed := make([]int, len(workerCap))
	tUsed := make([]int, len(taskCap))
	var rec func(idx int) float64
	rec = func(idx int) float64 {
		if idx == len(edges) {
			return 0
		}
		best := rec(idx + 1) // skip this edge
		e := edges[idx]
		if wUsed[e.w] < workerCap[e.w] && tUsed[e.t] < taskCap[e.t] {
			wUsed[e.w]++
			tUsed[e.t]++
			if v := e.g + rec(idx+1); v > best {
				best = v
			}
			wUsed[e.w]--
			tUsed[e.t]--
		}
		return best
	}
	return rec(0)
}

func matchingGain(gain [][]float64, m map[[2]int]bool) float64 {
	var total float64
	for pr := range m {
		total += gain[pr[0]][pr[1]]
	}
	return total
}

func TestBMatchingKnownCase(t *testing.T) {
	// Greedy would take a/t1=10 then b/t2=1; optimal takes the cross.
	gain := [][]float64{
		{10, 9},
		{9, 1},
	}
	m := MaxWeightBMatching(gain, []int{1, 1}, []int{1, 1})
	if got := matchingGain(gain, m); got != 18 {
		t.Fatalf("gain = %v, want 18 (match %v)", got, m)
	}
}

func TestBMatchingRespectsCapacities(t *testing.T) {
	gain := [][]float64{
		{5, 4, 3},
	}
	m := MaxWeightBMatching(gain, []int{2}, []int{1, 1, 1})
	if len(m) != 2 {
		t.Fatalf("matches = %v, want 2 (worker capacity)", m)
	}
	if got := matchingGain(gain, m); got != 9 {
		t.Fatalf("gain = %v, want 9", got)
	}
}

func TestBMatchingNoDuplicatePairs(t *testing.T) {
	// Worker capacity 2, one task with 2 slots: the pair may appear once.
	gain := [][]float64{{7}}
	m := MaxWeightBMatching(gain, []int{2}, []int{2})
	if len(m) != 1 {
		t.Fatalf("matches = %v, want exactly one use of the pair", m)
	}
}

func TestBMatchingSkipsNonPositive(t *testing.T) {
	gain := [][]float64{
		{0, -2},
	}
	if m := MaxWeightBMatching(gain, []int{1}, []int{1, 1}); len(m) != 0 {
		t.Fatalf("non-positive gains matched: %v", m)
	}
}

func TestBMatchingEmpty(t *testing.T) {
	if m := MaxWeightBMatching(nil, nil, nil); len(m) != 0 {
		t.Fatalf("empty instance matched: %v", m)
	}
}

func TestBMatchingOptimalityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		nW := 1 + rng.Intn(4)
		nT := 1 + rng.Intn(4)
		gain := make([][]float64, nW)
		for i := range gain {
			gain[i] = make([]float64, nT)
			for j := range gain[i] {
				// Mix of positive and non-positive gains.
				gain[i][j] = rng.Float64()*4 - 1
			}
		}
		workerCap := make([]int, nW)
		for i := range workerCap {
			workerCap[i] = 1 + rng.Intn(3)
		}
		taskCap := make([]int, nT)
		for j := range taskCap {
			taskCap[j] = 1 + rng.Intn(3)
		}
		m := MaxWeightBMatching(gain, workerCap, taskCap)
		// Feasibility.
		wUsed := make([]int, nW)
		tUsed := make([]int, nT)
		for pr := range m {
			wUsed[pr[0]]++
			tUsed[pr[1]]++
			if gain[pr[0]][pr[1]] <= 0 {
				return false
			}
		}
		for i, u := range wUsed {
			if u > workerCap[i] {
				return false
			}
		}
		for j, u := range tUsed {
			if u > taskCap[j] {
				return false
			}
		}
		// Optimality.
		want := bruteForceBMatching(gain, workerCap, taskCap)
		return math.Abs(matchingGain(gain, m)-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
