package assign

import (
	"sort"

	"repro/internal/model"
)

// WorkerCentric allocates "based on workers' preferences ... favoring their
// expected compensation" (§3.1.1). It runs a deferred-acceptance style
// round sequence: in each round every still-unsatisfied worker proposes to
// their most-preferred remaining task; tasks accept proposals while slots
// remain, preferring workers for whom the task ranks higher (stabilising
// the outcome). The paper notes this family is fairer to workers but "may
// be unfavorable to requesters" — E1 quantifies exactly that utility gap.
type WorkerCentric struct{}

// Name implements Assigner.
func (WorkerCentric) Name() string { return "worker-centric" }

// Assign implements Assigner.
func (WorkerCentric) Assign(p *Problem) (*Result, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	res := &Result{Algorithm: WorkerCentric{}.Name(), Offers: make(map[model.WorkerID][]model.TaskID)}
	pref := p.preference()
	workers := sortedWorkers(p.Workers)

	// Worker-centric platforms surface the full qualified set to each
	// worker (the preference is the worker's own), so offers are broad.
	prefs := make([][]int, len(workers)) // per worker: task indices by desc preference
	for wi, w := range workers {
		qi := qualifiedTasks(p, w)
		for _, ti := range qi {
			res.Offers[w.ID] = append(res.Offers[w.ID], p.Tasks[ti].ID)
		}
		sort.SliceStable(qi, func(a, b int) bool {
			pa, pb := pref(w, p.Tasks[qi[a]]), pref(w, p.Tasks[qi[b]])
			if pa != pb {
				return pa > pb
			}
			return p.Tasks[qi[a]].ID < p.Tasks[qi[b]].ID
		})
		prefs[wi] = qi
	}

	remaining := slots(p.Tasks)
	next := make([]int, len(workers)) // next proposal index per worker
	load := make([]int, len(workers))
	for {
		progressed := false
		for wi, w := range workers {
			if load[wi] >= p.capacity() {
				continue
			}
			for next[wi] < len(prefs[wi]) {
				ti := prefs[wi][next[wi]]
				next[wi]++
				if remaining[ti] == 0 {
					continue
				}
				remaining[ti]--
				load[wi]++
				res.Assignments = append(res.Assignments, Assignment{Worker: w.ID, Task: p.Tasks[ti].ID})
				progressed = true
				break
			}
		}
		if !progressed {
			break
		}
	}
	res.Utility = scoreUtility(p, res.Assignments)
	return res, nil
}
