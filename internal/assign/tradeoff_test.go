package assign

import (
	"testing"

	"repro/internal/model"
)

func TestTradeoffInvariants(t *testing.T) {
	for _, lambda := range []float64{0, 0.5, 1, -3, 7} { // including clamped
		p := testProblem()
		res, err := (Tradeoff{Lambda: lambda}).Assign(p)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, p, res)
	}
}

func TestTradeoffFullVisibility(t *testing.T) {
	p := testProblem()
	res, err := (Tradeoff{Lambda: 1}).Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	// Every qualified worker sees both of its archetype's tasks, whatever
	// lambda says about allocation.
	for _, w := range p.Workers {
		if len(res.Offers[w.ID]) != 2 {
			t.Fatalf("worker %s offers = %v", w.ID, res.Offers[w.ID])
		}
	}
}

func TestTradeoffLambdaOneMatchesGreedyUtility(t *testing.T) {
	p := testProblem()
	greedy, err := (RequesterCentric{}).Assign(testProblem())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := (Tradeoff{Lambda: 1}).Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Utility != greedy.Utility {
		t.Fatalf("lambda=1 utility %v != greedy %v", tr.Utility, greedy.Utility)
	}
}

func TestTradeoffLambdaZeroBalancesLoad(t *testing.T) {
	// One archetype, heterogeneous workers, scarce capacity: lambda=0 must
	// spread tasks evenly regardless of utility.
	u := model.MustUniverse("s")
	var workers []*model.Worker
	ratios := []float64{0.9, 0.5, 0.3}
	for i, r := range ratios {
		workers = append(workers, &model.Worker{
			ID:       model.WorkerID(string(rune('a' + i))),
			Computed: model.Attributes{model.AttrAcceptanceRatio: model.Num(r)},
			Skills:   u.MustVector("s"),
		})
	}
	var tasks []*model.Task
	for i := 0; i < 3; i++ {
		tasks = append(tasks, &model.Task{
			ID: model.TaskID(string(rune('x' + i))), Requester: "r",
			Skills: u.MustVector("s"), Reward: 1,
		})
	}
	p := &Problem{Workers: workers, Tasks: tasks, Capacity: 3}
	res, err := (Tradeoff{Lambda: 0}).Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	load := map[model.WorkerID]int{}
	for _, a := range res.Assignments {
		load[a.Worker]++
	}
	for _, w := range workers {
		if load[w.ID] != 1 {
			t.Fatalf("lambda=0 load = %v, want 1 each", load)
		}
	}
	// At lambda=1 the best worker takes everything (capacity allows).
	res1, err := (Tradeoff{Lambda: 1}).Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	load1 := map[model.WorkerID]int{}
	for _, a := range res1.Assignments {
		load1[a.Worker]++
	}
	if load1["a"] != 3 {
		t.Fatalf("lambda=1 load = %v, want worker a to take all 3", load1)
	}
}

func TestTradeoffUtilityMonotoneInLambda(t *testing.T) {
	var prev float64 = -1
	for _, lambda := range []float64{0, 0.25, 0.5, 0.75, 1} {
		res, err := (Tradeoff{Lambda: lambda}).Assign(testProblemWithCapacity(2))
		if err != nil {
			t.Fatal(err)
		}
		if res.Utility < prev-1e-9 {
			t.Fatalf("utility decreased at lambda=%v: %v after %v", lambda, res.Utility, prev)
		}
		prev = res.Utility
	}
}

func testProblemWithCapacity(c int) *Problem {
	p := testProblem()
	p.Capacity = c
	return p
}

func TestTradeoffDeterministic(t *testing.T) {
	a, err := (Tradeoff{Lambda: 0.5}).Assign(testProblem())
	if err != nil {
		t.Fatal(err)
	}
	b, err := (Tradeoff{Lambda: 0.5}).Assign(testProblem())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Assignments) != len(b.Assignments) {
		t.Fatal("non-deterministic")
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}
