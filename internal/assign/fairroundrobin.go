package assign

import (
	"sort"

	"repro/internal/model"
)

// FairRoundRobin is the fairness-enforcing assigner this repository
// contributes on top of the paper's taxonomy: it makes every task visible
// to every qualified worker (satisfying Axiom 1's access condition by
// construction) and then allocates slots in round-robin order of ascending
// worker load, so similarly-qualified workers end the run with task counts
// differing by at most one.
type FairRoundRobin struct{}

// Name implements Assigner.
func (FairRoundRobin) Name() string { return "fair-round-robin" }

// Assign implements Assigner.
func (FairRoundRobin) Assign(p *Problem) (*Result, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	res := &Result{Algorithm: FairRoundRobin{}.Name(), Offers: make(map[model.WorkerID][]model.TaskID)}
	workers := sortedWorkers(p.Workers)

	qualified := make([][]int, len(workers))
	for wi, w := range workers {
		qi := qualifiedTasks(p, w)
		qualified[wi] = qi
		for _, ti := range qi {
			res.Offers[w.ID] = append(res.Offers[w.ID], p.Tasks[ti].ID)
		}
	}

	remaining := slots(p.Tasks)
	load := make([]int, len(workers))
	next := make([]int, len(workers))
	// Rounds: each pass gives every worker at most one task, in worker-id
	// order; repeat until capacity is exhausted or nothing can move.
	for round := 0; round < p.capacity(); round++ {
		progressed := false
		// Within a round, serve workers with the lowest load first so
		// stragglers (fewer qualified tasks) are not starved by early ids.
		order := make([]int, len(workers))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			if load[order[a]] != load[order[b]] {
				return load[order[a]] < load[order[b]]
			}
			return workers[order[a]].ID < workers[order[b]].ID
		})
		for _, wi := range order {
			if load[wi] > round { // already served this round
				continue
			}
			for next[wi] < len(qualified[wi]) {
				ti := qualified[wi][next[wi]]
				next[wi]++
				if remaining[ti] == 0 {
					continue
				}
				remaining[ti]--
				load[wi]++
				res.Assignments = append(res.Assignments, Assignment{
					Worker: workers[wi].ID, Task: p.Tasks[ti].ID,
				})
				progressed = true
				break
			}
		}
		if !progressed {
			break
		}
	}
	res.Utility = scoreUtility(p, res.Assignments)
	return res, nil
}
