package assign

import (
	"sort"

	"repro/internal/model"
)

// Tradeoff is the utility–fairness hybrid assigner this repository adds as
// an extension of the paper's taxonomy: §3.1.1 presents requester-centric
// and worker-centric assignment as opposite poles; Tradeoff interpolates
// between them with a single parameter.
//
// Visibility is always full (every qualified worker sees every task, so the
// Axiom 1/2 access conditions hold by construction — fairness of *access*
// is not traded away). What Lambda controls is slot allocation: each
// assignment is scored
//
//	score = Lambda*gain - (1-Lambda)*loadPenalty
//
// where gain is the requester utility and loadPenalty is the number of
// tasks the worker already holds. Lambda=1 reproduces greedy
// requester-centric allocation (on full visibility); Lambda=0 reproduces
// round-robin-style load balancing. The E9 ablation sweeps Lambda.
type Tradeoff struct {
	// Lambda in [0,1] weights requester utility against load balance
	// (default 0.5). Values outside the range are clamped.
	Lambda float64
}

// Name implements Assigner.
func (t Tradeoff) Name() string { return "tradeoff" }

// Assign implements Assigner.
func (t Tradeoff) Assign(p *Problem) (*Result, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	lambda := t.Lambda
	if lambda < 0 {
		lambda = 0
	}
	if lambda > 1 {
		lambda = 1
	}
	res := &Result{Algorithm: t.Name(), Offers: make(map[model.WorkerID][]model.TaskID)}
	u := p.utility()
	workers := sortedWorkers(p.Workers)

	// Full visibility: fairness of access by construction.
	type edge struct {
		wi, ti int
		gain   float64
	}
	var edges []edge
	for wi, w := range workers {
		for ti, task := range p.Tasks {
			if !Qualified(w, task) {
				continue
			}
			res.Offers[w.ID] = append(res.Offers[w.ID], task.ID)
			if g := u(w, task); g > 0 {
				edges = append(edges, edge{wi, ti, g})
			}
		}
	}

	remaining := slots(p.Tasks)
	load := make([]int, len(workers))
	assignedPair := make(map[[2]int]bool)
	// Repeatedly take the best-scoring feasible edge. Scores depend on
	// load, so re-sort per round; rounds are bounded by total slots.
	less := func(a, b edge) bool { // deterministic tie-break
		if workers[a.wi].ID != workers[b.wi].ID {
			return workers[a.wi].ID < workers[b.wi].ID
		}
		return p.Tasks[a.ti].ID < p.Tasks[b.ti].ID
	}
	for {
		best := -1
		bestScore := 0.0
		for i, e := range edges {
			if load[e.wi] >= p.capacity() || remaining[e.ti] == 0 || assignedPair[[2]int{e.wi, e.ti}] {
				continue
			}
			score := lambda*e.gain - (1-lambda)*float64(load[e.wi])
			if best == -1 || score > bestScore || (score == bestScore && less(e, edges[best])) {
				best, bestScore = i, score
			}
		}
		if best == -1 {
			break
		}
		e := edges[best]
		assignedPair[[2]int{e.wi, e.ti}] = true
		load[e.wi]++
		remaining[e.ti]--
		res.Assignments = append(res.Assignments, Assignment{
			Worker: workers[e.wi].ID, Task: p.Tasks[e.ti].ID,
		})
	}
	sort.Slice(res.Assignments, func(a, b int) bool {
		if res.Assignments[a].Worker != res.Assignments[b].Worker {
			return res.Assignments[a].Worker < res.Assignments[b].Worker
		}
		return res.Assignments[a].Task < res.Assignments[b].Task
	})
	res.Utility = scoreUtility(p, res.Assignments)
	return res, nil
}
