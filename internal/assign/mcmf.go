package assign

import "container/heap"

// MaxWeightBMatching solves the capacitated assignment problem exactly:
// worker i may take up to workerCap[i] tasks, task j has taskCap[j] slots,
// each (worker, task) pair is used at most once, and the total gain is
// maximised. Only strictly positive gains are ever matched. The result maps
// each matched pair to true.
//
// The slot-expanded Hungarian reduction is *incorrect* for this problem —
// it can match the same worker to the same task through two different
// slots and count the gain twice — so the optimal requester-centric
// assigner uses this min-cost max-flow formulation instead: successive
// shortest augmenting paths on the residual graph with Johnson potentials
// (costs are negated gains, so Dijkstra applies after the first
// Bellman-Ford pass), stopping when no augmenting path has negative cost —
// i.e. exactly at the maximum-weight (not maximum-cardinality) matching.
func MaxWeightBMatching(gain [][]float64, workerCap, taskCap []int) map[[2]int]bool {
	nW := len(gain)
	if nW == 0 {
		return nil
	}
	nT := len(gain[0])

	// Node ids: 0 = source, 1..nW = workers, nW+1..nW+nT = tasks, last = sink.
	n := nW + nT + 2
	source, sink := 0, n-1

	type arc struct {
		to, rev int // rev indexes the reverse arc in graph[to]
		cap     int
		cost    float64
	}
	graph := make([][]arc, n)
	addArc := func(from, to, cap int, cost float64) {
		graph[from] = append(graph[from], arc{to: to, rev: len(graph[to]), cap: cap, cost: cost})
		graph[to] = append(graph[to], arc{to: from, rev: len(graph[from]) - 1, cap: 0, cost: -cost})
	}

	for i := 0; i < nW; i++ {
		if workerCap[i] > 0 {
			addArc(source, 1+i, workerCap[i], 0)
		}
	}
	for j := 0; j < nT; j++ {
		if taskCap[j] > 0 {
			addArc(1+nW+j, sink, taskCap[j], 0)
		}
	}
	for i := 0; i < nW; i++ {
		for j := 0; j < nT; j++ {
			if gain[i][j] > 0 {
				addArc(1+i, 1+nW+j, 1, -gain[i][j])
			}
		}
	}

	const inf = 1e18
	// Potentials start at 0: all source/sink arcs cost 0 and worker→task
	// arcs are only reachable through them, so an initial Bellman-Ford is
	// equivalent to one Dijkstra run with reduced costs clamped — but
	// negative arc costs make plain Dijkstra wrong on the first pass.
	// Run Bellman-Ford once to seed the potentials.
	pot := make([]float64, n)
	for i := range pot {
		pot[i] = inf
	}
	pot[source] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if pot[u] == inf {
				continue
			}
			for _, a := range graph[u] {
				if a.cap > 0 && pot[u]+a.cost < pot[a.to]-1e-12 {
					pot[a.to] = pot[u] + a.cost
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := range pot {
		if pot[i] == inf {
			pot[i] = 0 // unreachable nodes get neutral potential
		}
	}

	dist := make([]float64, n)
	prevNode := make([]int, n)
	prevArc := make([]int, n)

	dijkstra := func() bool {
		for i := range dist {
			dist[i] = inf
			prevNode[i] = -1
		}
		dist[source] = 0
		pq := &nodeHeap{{node: source, dist: 0}}
		for pq.Len() > 0 {
			item := heap.Pop(pq).(nodeDist)
			u := item.node
			if item.dist > dist[u]+1e-12 {
				continue
			}
			for ai, a := range graph[u] {
				if a.cap <= 0 {
					continue
				}
				nd := dist[u] + a.cost + pot[u] - pot[a.to]
				if nd < dist[a.to]-1e-12 {
					dist[a.to] = nd
					prevNode[a.to] = u
					prevArc[a.to] = ai
					heap.Push(pq, nodeDist{node: a.to, dist: nd})
				}
			}
		}
		return dist[sink] < inf
	}

	for {
		if !dijkstra() {
			break
		}
		// Real path cost with potentials unwound; stop once augmenting no
		// longer improves the total weight.
		realCost := dist[sink] + pot[sink] - pot[source]
		if realCost >= -1e-12 {
			break
		}
		for i := 0; i < n; i++ {
			if dist[i] < inf {
				pot[i] += dist[i]
			}
		}
		// Augment one unit along the path (middle arcs have capacity 1).
		v := sink
		for v != source {
			u := graph[prevNode[v]][prevArc[v]]
			graph[prevNode[v]][prevArc[v]].cap--
			graph[v][u.rev].cap++
			v = prevNode[v]
		}
	}

	out := make(map[[2]int]bool)
	for i := 0; i < nW; i++ {
		for _, a := range graph[1+i] {
			// A saturated worker→task arc (cap 0 on a forward arc) is a match.
			if a.to >= 1+nW && a.to < 1+nW+nT && a.cap == 0 && a.cost < 0 {
				out[[2]int{i, a.to - 1 - nW}] = true
			}
		}
	}
	return out
}

// nodeDist is a priority-queue entry for the Dijkstra pass.
type nodeDist struct {
	node int
	dist float64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
