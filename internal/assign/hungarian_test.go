package assign

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// bruteForceBest finds the maximum total gain of any one-to-one matching by
// trying every assignment of rows to columns (permutations over the larger
// side). Exponential — only for tiny matrices in tests.
func bruteForceBest(gain [][]float64) float64 {
	nRows := len(gain)
	if nRows == 0 {
		return 0
	}
	nCols := len(gain[0])
	used := make([]bool, nCols)
	var rec func(row int) float64
	rec = func(row int) float64 {
		if row == nRows {
			return 0
		}
		// Option: leave this row unmatched.
		best := rec(row + 1)
		for c := 0; c < nCols; c++ {
			if used[c] {
				continue
			}
			used[c] = true
			if v := gain[row][c] + rec(row+1); v > best {
				best = v
			}
			used[c] = false
		}
		return best
	}
	return rec(0)
}

func matchGain(gain [][]float64, match []int) float64 {
	var total float64
	for i, j := range match {
		if j >= 0 {
			total += gain[i][j]
		}
	}
	return total
}

func TestHungarianKnownCase(t *testing.T) {
	gain := [][]float64{
		{3, 1},
		{1, 3},
	}
	m := MaxWeightMatching(gain)
	if got := matchGain(gain, m); got != 6 {
		t.Fatalf("gain = %v, want 6 (match %v)", got, m)
	}
}

func TestHungarianRectangularWide(t *testing.T) {
	gain := [][]float64{
		{1, 5, 2, 8},
	}
	m := MaxWeightMatching(gain)
	if m[0] != 3 {
		t.Fatalf("single row should take the best column, got %v", m)
	}
}

func TestHungarianRectangularTall(t *testing.T) {
	gain := [][]float64{
		{5},
		{9},
		{2},
	}
	m := MaxWeightMatching(gain)
	matched := 0
	for i, j := range m {
		if j == 0 {
			matched++
			if gain[i][0] != 9 {
				t.Fatalf("column went to row with gain %v, want 9", gain[i][0])
			}
		}
	}
	if matched != 1 {
		t.Fatalf("one column matched %d times", matched)
	}
}

func TestHungarianEmpty(t *testing.T) {
	if m := MaxWeightMatching(nil); m != nil {
		t.Fatalf("empty matrix gave %v", m)
	}
}

func TestHungarianNoColumnReuse(t *testing.T) {
	gain := [][]float64{
		{9, 9},
		{9, 9},
		{9, 9},
	}
	m := MaxWeightMatching(gain)
	seen := make(map[int]bool)
	for _, j := range m {
		if j < 0 {
			continue
		}
		if seen[j] {
			t.Fatalf("column %d reused: %v", j, m)
		}
		seen[j] = true
	}
}

func TestHungarianOptimalityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		nRows := 1 + rng.Intn(5)
		nCols := 1 + rng.Intn(5)
		gain := make([][]float64, nRows)
		for i := range gain {
			gain[i] = make([]float64, nCols)
			for j := range gain[i] {
				gain[i][j] = rng.Float64() * 10
			}
		}
		m := MaxWeightMatching(gain)
		got := matchGain(gain, m)
		want := bruteForceBest(gain)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHungarianNegativeGains(t *testing.T) {
	// With all-negative gains the padded zero column is preferable: the
	// matcher may match rows to padding (reported as -1 for real columns
	// beyond range), but any matched real pair must not be forced.
	gain := [][]float64{
		{-5, -1},
		{-1, -5},
	}
	m := MaxWeightMatching(gain)
	// Square matrix with no padding: the optimal perfect matching is
	// -1 + -1 = -2.
	if got := matchGain(gain, m); got != -2 {
		t.Fatalf("gain = %v, want -2", got)
	}
}
