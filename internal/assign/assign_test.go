package assign

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

// testProblem builds a small two-archetype marketplace: workers w0/w1 know
// "go", workers w2/w3 know "nlp"; two go-tasks and two nlp-tasks with one
// slot each.
func testProblem() *Problem {
	u := model.MustUniverse("go", "nlp")
	mkWorker := func(id string, ratio float64, skills ...string) *model.Worker {
		return &model.Worker{
			ID:       model.WorkerID(id),
			Computed: model.Attributes{model.AttrAcceptanceRatio: model.Num(ratio)},
			Skills:   u.MustVector(skills...),
		}
	}
	mkTask := func(id string, reward float64, skills ...string) *model.Task {
		return &model.Task{
			ID: model.TaskID(id), Requester: "r1",
			Skills: u.MustVector(skills...), Reward: reward,
		}
	}
	return &Problem{
		Workers: []*model.Worker{
			mkWorker("w0", 0.9, "go"),
			mkWorker("w1", 0.6, "go"),
			mkWorker("w2", 0.9, "nlp"),
			mkWorker("w3", 0.6, "nlp"),
		},
		Tasks: []*model.Task{
			mkTask("t0", 1.0, "go"),
			mkTask("t1", 2.0, "go"),
			mkTask("t2", 1.0, "nlp"),
			mkTask("t3", 2.0, "nlp"),
		},
		RNG: stats.NewRNG(1),
	}
}

// checkInvariants verifies properties every assigner must satisfy.
func checkInvariants(t *testing.T, p *Problem, res *Result) {
	t.Helper()
	byW := make(map[model.WorkerID]*model.Worker)
	for _, w := range p.Workers {
		byW[w.ID] = w
	}
	byT := make(map[model.TaskID]*model.Task)
	for _, task := range p.Tasks {
		byT[task.ID] = task
	}
	cap := p.capacity()
	load := make(map[model.WorkerID]int)
	slots := make(map[model.TaskID]int)
	seen := make(map[Assignment]bool)
	for _, a := range res.Assignments {
		w, ok := byW[a.Worker]
		if !ok {
			t.Fatalf("%s: assignment to unknown worker %s", res.Algorithm, a.Worker)
		}
		task, ok := byT[a.Task]
		if !ok {
			t.Fatalf("%s: assignment to unknown task %s", res.Algorithm, a.Task)
		}
		if !w.Skills.Covers(task.Skills) {
			t.Errorf("%s: unqualified worker %s assigned to %s", res.Algorithm, a.Worker, a.Task)
		}
		if seen[a] {
			t.Errorf("%s: duplicate assignment %v", res.Algorithm, a)
		}
		seen[a] = true
		load[a.Worker]++
		slots[a.Task]++
	}
	for w, n := range load {
		if n > cap {
			t.Errorf("%s: worker %s over capacity: %d > %d", res.Algorithm, w, n, cap)
		}
	}
	for tid, n := range slots {
		if n > byT[tid].EffectivePublished() {
			t.Errorf("%s: task %s over published slots: %d", res.Algorithm, tid, n)
		}
	}
	// Every assignment must have been offered (visible) to its worker.
	for _, a := range res.Assignments {
		found := false
		for _, tid := range res.Offers[a.Worker] {
			if tid == a.Task {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: assignment %v without a matching offer", res.Algorithm, a)
		}
	}
}

func TestAllAssignersInvariants(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name(), func(t *testing.T) {
			p := testProblem()
			res, err := a.Assign(p)
			if err != nil {
				t.Fatal(err)
			}
			checkInvariants(t, p, res)
			if res.Algorithm != a.Name() {
				t.Errorf("algorithm label = %q", res.Algorithm)
			}
		})
	}
}

func TestAllAssignersDeterministic(t *testing.T) {
	for _, name := range []string{"self-appointment", "requester-centric", "requester-centric-optimal", "worker-centric", "fair-round-robin", "online-greedy"} {
		a, ok := ByName(name)
		if !ok {
			t.Fatalf("assigner %q missing", name)
		}
		p1, p2 := testProblem(), testProblem()
		r1, err := a.Assign(p1)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := a.Assign(p2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Assignments, r2.Assignments) {
			t.Errorf("%s: non-deterministic assignments", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown assigner resolved")
	}
}

func TestValidateRejectsDuplicates(t *testing.T) {
	p := testProblem()
	p.Workers = append(p.Workers, p.Workers[0])
	if _, err := (SelfAppointment{}).Assign(p); err == nil {
		t.Error("duplicate worker accepted")
	}
	p = testProblem()
	p.Tasks = append(p.Tasks, p.Tasks[0])
	if _, err := (SelfAppointment{}).Assign(p); err == nil {
		t.Error("duplicate task accepted")
	}
}

func TestNoWorkersError(t *testing.T) {
	if _, err := (SelfAppointment{}).Assign(&Problem{}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("error = %v", err)
	}
}

func TestSelfAppointmentFullVisibility(t *testing.T) {
	p := testProblem()
	res, err := SelfAppointment{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	// Every worker must see every task they qualify for.
	if len(res.Offers["w0"]) != 2 || len(res.Offers["w2"]) != 2 {
		t.Fatalf("offers = %v", res.Offers)
	}
}

func TestRequesterCentricPrefersHighUtilityWorkers(t *testing.T) {
	p := testProblem()
	res, err := RequesterCentric{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	// With capacity 1 and two go-tasks for two go-workers, the
	// high-acceptance worker w0 must be assigned before w1 gets anything;
	// both end up assigned, but w0's offer set is non-empty first. The
	// utility must equal the best achievable 0.9+0.6 per archetype.
	if res.Utility != 3.0 {
		t.Fatalf("utility = %v, want 3.0", res.Utility)
	}
}

func TestRequesterCentricOptimalAtLeastGreedy(t *testing.T) {
	// On a matrix where greedy is suboptimal, the Hungarian variant must
	// strictly beat it.
	u := model.MustUniverse("s")
	w := func(id string, ratio float64) *model.Worker {
		return &model.Worker{ID: model.WorkerID(id),
			Computed: model.Attributes{model.AttrAcceptanceRatio: model.Num(ratio)},
			Skills:   u.MustVector("s")}
	}
	// Utility matrix (acceptance ratio is per-worker here, so greedy and
	// optimal coincide; craft a custom utility to break greedy):
	util := func(wk *model.Worker, task *model.Task) float64 {
		key := string(wk.ID) + "/" + string(task.ID)
		return map[string]float64{
			"a/t1": 10, "a/t2": 9,
			"b/t1": 9, "b/t2": 1,
		}[key]
	}
	p := &Problem{
		Workers: []*model.Worker{w("a", 1), w("b", 1)},
		Tasks: []*model.Task{
			{ID: "t1", Requester: "r", Skills: u.MustVector("s"), Reward: 1},
			{ID: "t2", Requester: "r", Skills: u.MustVector("s"), Reward: 1},
		},
		Utility: util,
	}
	greedy, err := RequesterCentric{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	optimal, err := RequesterCentric{Optimal: true}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy takes a/t1=10 then b/t2=1 (11); optimal takes a/t2=9 + b/t1=9 (18).
	if greedy.Utility != 11 {
		t.Fatalf("greedy utility = %v, want 11", greedy.Utility)
	}
	if optimal.Utility != 18 {
		t.Fatalf("optimal utility = %v, want 18", optimal.Utility)
	}
}

func TestWorkerCentricPrefersRewards(t *testing.T) {
	p := testProblem()
	p.Capacity = 1
	res, err := WorkerCentric{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	// Workers propose to the higher-reward task first; with one slot each,
	// exactly one go-worker gets t1 (reward 2) and the other t0.
	got := make(map[model.TaskID]int)
	for _, a := range res.Assignments {
		got[a.Task]++
	}
	for _, tid := range []model.TaskID{"t0", "t1", "t2", "t3"} {
		if got[tid] != 1 {
			t.Fatalf("task %s filled %d times: %v", tid, got[tid], res.Assignments)
		}
	}
}

func TestFairRoundRobinBalancesLoad(t *testing.T) {
	u := model.MustUniverse("s")
	var workers []*model.Worker
	for i := 0; i < 4; i++ {
		workers = append(workers, &model.Worker{
			ID: model.WorkerID(fmt.Sprintf("w%d", i)), Skills: u.MustVector("s"),
		})
	}
	var tasks []*model.Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, &model.Task{
			ID: model.TaskID(fmt.Sprintf("t%d", i)), Requester: "r",
			Skills: u.MustVector("s"), Reward: 1,
		})
	}
	p := &Problem{Workers: workers, Tasks: tasks, Capacity: 2}
	res, err := FairRoundRobin{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	load := make(map[model.WorkerID]int)
	for _, a := range res.Assignments {
		load[a.Worker]++
	}
	for _, w := range workers {
		if load[w.ID] != 2 {
			t.Fatalf("load = %v, want 2 each", load)
		}
	}
}

func TestFairRoundRobinLoadGapAtMostOne(t *testing.T) {
	// 3 tasks, 2 workers, capacity 2: loads must differ by at most 1.
	u := model.MustUniverse("s")
	p := &Problem{
		Workers: []*model.Worker{
			{ID: "w0", Skills: u.MustVector("s")},
			{ID: "w1", Skills: u.MustVector("s")},
		},
		Tasks: []*model.Task{
			{ID: "t0", Requester: "r", Skills: u.MustVector("s"), Reward: 1},
			{ID: "t1", Requester: "r", Skills: u.MustVector("s"), Reward: 1},
			{ID: "t2", Requester: "r", Skills: u.MustVector("s"), Reward: 1},
		},
		Capacity: 2,
	}
	res, err := FairRoundRobin{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	load := map[model.WorkerID]int{}
	for _, a := range res.Assignments {
		load[a.Worker]++
	}
	if len(res.Assignments) != 3 {
		t.Fatalf("assignments = %d, want 3", len(res.Assignments))
	}
	gap := load["w0"] - load["w1"]
	if gap < -1 || gap > 1 {
		t.Fatalf("load gap = %d: %v", gap, load)
	}
}

func TestOnlineGreedySlateSize(t *testing.T) {
	p := testProblem()
	res, err := OnlineGreedy{SlateSize: 1}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	for w, offers := range res.Offers {
		// With slate 1 and capacity 1, a worker sees exactly one task.
		if len(offers) > 1 {
			t.Fatalf("worker %s saw %d tasks with slate 1", w, len(offers))
		}
	}
}

func TestOnlineGreedyRespectsQualification(t *testing.T) {
	p := testProblem()
	res, err := OnlineGreedy{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, p, res)
}

func TestQualificationUtilityZeroForUnqualified(t *testing.T) {
	u := model.MustUniverse("a", "b")
	w := &model.Worker{ID: "w", Skills: u.MustVector("a")}
	task := &model.Task{ID: "t", Requester: "r", Skills: u.MustVector("b")}
	if QualificationUtility(w, task) != 0 {
		t.Error("unqualified utility should be 0")
	}
	if RewardPreference(w, task) != 0 {
		t.Error("unqualified preference should be 0")
	}
}

func TestQualificationUtilityDefaults(t *testing.T) {
	u := model.MustUniverse("a")
	w := &model.Worker{ID: "w", Skills: u.MustVector("a")}
	task := &model.Task{ID: "t", Requester: "r", Skills: u.MustVector("a")}
	if got := QualificationUtility(w, task); got != 0.5 {
		t.Errorf("default utility = %v, want 0.5", got)
	}
	w.Computed = model.Attributes{model.AttrAcceptanceRatio: model.Num(0.8)}
	if got := QualificationUtility(w, task); got != 0.8 {
		t.Errorf("utility = %v, want 0.8", got)
	}
}

func TestCapacityDefaultsToOne(t *testing.T) {
	p := testProblem()
	p.Capacity = 0
	res, err := SelfAppointment{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	load := map[model.WorkerID]int{}
	for _, a := range res.Assignments {
		load[a.Worker]++
	}
	for w, n := range load {
		if n > 1 {
			t.Fatalf("worker %s load %d with default capacity", w, n)
		}
	}
}

func TestPublishedSlotsRespected(t *testing.T) {
	u := model.MustUniverse("s")
	p := &Problem{
		Workers: []*model.Worker{
			{ID: "w0", Skills: u.MustVector("s")},
			{ID: "w1", Skills: u.MustVector("s")},
			{ID: "w2", Skills: u.MustVector("s")},
		},
		Tasks: []*model.Task{
			{ID: "t0", Requester: "r", Skills: u.MustVector("s"), Reward: 1, Quota: 1, Published: 2},
		},
	}
	for _, a := range All() {
		res, err := a.Assign(p)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if len(res.Assignments) > 2 {
			t.Errorf("%s: %d assignments to a 2-slot task", a.Name(), len(res.Assignments))
		}
	}
}
