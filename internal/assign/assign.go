// Package assign implements the task-assignment algorithms whose
// discriminatory power the paper's research agenda (§4.2) calls to assess.
//
// §3.1.1 distinguishes three families:
//
//   - self-appointment ("workers have access to the same set of tasks" —
//     characterised as fair),
//   - requester-centric assignment (maximise requester gain; can be
//     discriminatory to workers),
//   - worker-centric assignment (favour workers' preferences/compensation;
//     may be unfavourable to requesters).
//
// The package provides those three plus a fairness-enforcing round-robin
// and an online greedy assigner in the spirit of Ho & Vaughan (AAAI 2012).
// Every assigner produces both the final matching and the offer sets
// (which tasks were visible to which worker) so the Axiom 1/2 checkers can
// audit access, not just outcomes.
package assign

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/stats"
)

// Assignment is one worker↔task pairing produced by an assigner.
type Assignment struct {
	Worker model.WorkerID
	Task   model.TaskID
}

// Result is the full output of an assignment run.
type Result struct {
	// Algorithm names the assigner that produced the result.
	Algorithm string
	// Assignments is the matching, at most Capacity entries per worker and
	// at most EffectivePublished entries per task.
	Assignments []Assignment
	// Offers records, per worker, the set of task ids made visible to that
	// worker during the run — the "access" audited by Axiom 1 and the
	// "shown to" audited by Axiom 2. Workers with no offers have no entry.
	Offers map[model.WorkerID][]model.TaskID
	// Utility is the total requester gain of the matching as scored by the
	// run's utility function.
	Utility float64
}

// Problem is the input to an assigner.
type Problem struct {
	Workers []*model.Worker
	Tasks   []*model.Task
	// Capacity is the maximum number of tasks per worker (default 1).
	Capacity int
	// Utility scores the requester gain of giving task t to worker w.
	// Nil defaults to QualificationUtility.
	Utility func(w *model.Worker, t *model.Task) float64
	// Preference scores worker w's own preference for task t (used by the
	// worker-centric assigner). Nil defaults to RewardPreference.
	Preference func(w *model.Worker, t *model.Task) float64
	// RNG drives tie-breaking/browsing order where an algorithm is
	// randomised. Nil defaults to a fixed-seed generator, keeping runs
	// deterministic.
	RNG *stats.RNG
}

// ErrNoWorkers is returned when a problem has no workers.
var ErrNoWorkers = errors.New("assign: no workers")

func (p *Problem) capacity() int {
	if p.Capacity <= 0 {
		return 1
	}
	return p.Capacity
}

func (p *Problem) utility() func(w *model.Worker, t *model.Task) float64 {
	if p.Utility != nil {
		return p.Utility
	}
	return QualificationUtility
}

func (p *Problem) preference() func(w *model.Worker, t *model.Task) float64 {
	if p.Preference != nil {
		return p.Preference
	}
	return RewardPreference
}

func (p *Problem) rng() *stats.RNG {
	if p.RNG != nil {
		return p.RNG
	}
	return stats.NewRNG(1)
}

// QualificationUtility is the default requester gain: the worker's
// acceptance ratio (or 0.5 when absent) scaled by qualification — an
// unqualified worker contributes nothing.
func QualificationUtility(w *model.Worker, t *model.Task) float64 {
	if !w.Skills.Covers(t.Skills) {
		return 0
	}
	if v, ok := w.Computed[model.AttrAcceptanceRatio]; ok && v.Kind == model.AttrNum {
		return v.Num
	}
	return 0.5
}

// RewardPreference is the default worker preference: the task reward,
// zeroed for tasks the worker is not qualified for.
func RewardPreference(w *model.Worker, t *model.Task) float64 {
	if !w.Skills.Covers(t.Skills) {
		return 0
	}
	return t.Reward
}

// Assigner is a named assignment algorithm.
type Assigner interface {
	// Name identifies the algorithm in reports and benchmarks.
	Name() string
	// Assign computes a matching for the problem.
	Assign(p *Problem) (*Result, error)
}

// Qualified reports whether worker w qualifies for task t (covers all its
// required skills).
func Qualified(w *model.Worker, t *model.Task) bool {
	return w.Skills.Covers(t.Skills)
}

// qualifiedTasks returns the indices of tasks in p that w qualifies for,
// in input order.
func qualifiedTasks(p *Problem, w *model.Worker) []int {
	var out []int
	for i, t := range p.Tasks {
		if Qualified(w, t) {
			out = append(out, i)
		}
	}
	return out
}

// slots returns the per-task remaining assignment slots (EffectivePublished).
func slots(tasks []*model.Task) []int {
	s := make([]int, len(tasks))
	for i, t := range tasks {
		s[i] = t.EffectivePublished()
	}
	return s
}

// sortedWorkers returns workers sorted by id for deterministic iteration.
func sortedWorkers(ws []*model.Worker) []*model.Worker {
	out := append([]*model.Worker(nil), ws...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// validate checks the problem for basic well-formedness.
func validate(p *Problem) error {
	if len(p.Workers) == 0 {
		return ErrNoWorkers
	}
	seen := make(map[model.WorkerID]bool, len(p.Workers))
	for _, w := range p.Workers {
		if seen[w.ID] {
			return fmt.Errorf("assign: duplicate worker %s", w.ID)
		}
		seen[w.ID] = true
	}
	seenT := make(map[model.TaskID]bool, len(p.Tasks))
	for _, t := range p.Tasks {
		if seenT[t.ID] {
			return fmt.Errorf("assign: duplicate task %s", t.ID)
		}
		seenT[t.ID] = true
	}
	return nil
}

// scoreUtility totals the utility of a matching.
func scoreUtility(p *Problem, asg []Assignment) float64 {
	byW := make(map[model.WorkerID]*model.Worker, len(p.Workers))
	for _, w := range p.Workers {
		byW[w.ID] = w
	}
	byT := make(map[model.TaskID]*model.Task, len(p.Tasks))
	for _, t := range p.Tasks {
		byT[t.ID] = t
	}
	u := p.utility()
	var total float64
	for _, a := range asg {
		total += u(byW[a.Worker], byT[a.Task])
	}
	return total
}

// All returns one instance of every assigner in the package, in the order
// they are reported by the experiments.
func All() []Assigner {
	return []Assigner{
		SelfAppointment{},
		RequesterCentric{},
		RequesterCentric{Optimal: true},
		WorkerCentric{},
		FairRoundRobin{},
		OnlineGreedy{},
	}
}

// ByName resolves an assigner from its Name; the boolean is false for
// unknown names.
func ByName(name string) (Assigner, bool) {
	for _, a := range All() {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}
