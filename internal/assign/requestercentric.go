package assign

import (
	"sort"

	"repro/internal/model"
)

// RequesterCentric allocates tasks "so as to maximize the total gain of the
// requester" (§3.1.1) — the assignment family the paper flags as
// potentially discriminatory to workers, because only the workers the
// requester values ever see an offer.
//
// With Optimal false the assigner is greedy: it sorts all (worker, task)
// pairs by utility and takes them subject to capacity. With Optimal true it
// solves the maximum-weight bipartite matching exactly via the Hungarian
// algorithm (on worker-slot × task-slot expansion), which is the E-ablation
// comparator for the greedy heuristic.
type RequesterCentric struct {
	// Optimal selects exact Hungarian matching instead of the greedy
	// heuristic.
	Optimal bool
}

// Name implements Assigner.
func (r RequesterCentric) Name() string {
	if r.Optimal {
		return "requester-centric-optimal"
	}
	return "requester-centric"
}

// Assign implements Assigner.
func (r RequesterCentric) Assign(p *Problem) (*Result, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	if r.Optimal {
		return r.assignOptimal(p)
	}
	return r.assignGreedy(p)
}

func (r RequesterCentric) assignGreedy(p *Problem) (*Result, error) {
	res := &Result{Algorithm: r.Name(), Offers: make(map[model.WorkerID][]model.TaskID)}
	u := p.utility()
	workers := sortedWorkers(p.Workers)

	type edge struct {
		wi, ti int
		gain   float64
	}
	var edges []edge
	for wi, w := range workers {
		for ti, t := range p.Tasks {
			if g := u(w, t); g > 0 {
				edges = append(edges, edge{wi, ti, g})
			}
		}
	}
	sort.SliceStable(edges, func(a, b int) bool {
		if edges[a].gain != edges[b].gain {
			return edges[a].gain > edges[b].gain
		}
		if workers[edges[a].wi].ID != workers[edges[b].wi].ID {
			return workers[edges[a].wi].ID < workers[edges[b].wi].ID
		}
		return p.Tasks[edges[a].ti].ID < p.Tasks[edges[b].ti].ID
	})

	remaining := slots(p.Tasks)
	load := make([]int, len(workers))
	for _, e := range edges {
		if load[e.wi] >= p.capacity() || remaining[e.ti] == 0 {
			continue
		}
		w, t := workers[e.wi], p.Tasks[e.ti]
		// Requester-centric platforms only surface the task to the worker
		// they chose: the offer and the assignment coincide. This is
		// exactly the restricted visibility Axiom 1 catches.
		res.Offers[w.ID] = append(res.Offers[w.ID], t.ID)
		res.Assignments = append(res.Assignments, Assignment{Worker: w.ID, Task: t.ID})
		load[e.wi]++
		remaining[e.ti]--
	}
	res.Utility = scoreUtility(p, res.Assignments)
	return res, nil
}

func (r RequesterCentric) assignOptimal(p *Problem) (*Result, error) {
	res := &Result{Algorithm: r.Name(), Offers: make(map[model.WorkerID][]model.TaskID)}
	u := p.utility()
	workers := sortedWorkers(p.Workers)
	if len(workers) == 0 || len(p.Tasks) == 0 {
		res.Utility = 0
		return res, nil
	}

	gain := make([][]float64, len(workers))
	for i, w := range workers {
		gain[i] = make([]float64, len(p.Tasks))
		for j, t := range p.Tasks {
			gain[i][j] = u(w, t)
		}
	}
	workerCap := make([]int, len(workers))
	for i := range workerCap {
		workerCap[i] = p.capacity()
	}
	matched := MaxWeightBMatching(gain, workerCap, slots(p.Tasks))
	for pr := range matched {
		w, t := workers[pr[0]], p.Tasks[pr[1]]
		res.Assignments = append(res.Assignments, Assignment{Worker: w.ID, Task: t.ID})
	}
	for _, a := range res.Assignments {
		res.Offers[a.Worker] = append(res.Offers[a.Worker], a.Task)
	}
	sort.Slice(res.Assignments, func(a, b int) bool {
		if res.Assignments[a].Worker != res.Assignments[b].Worker {
			return res.Assignments[a].Worker < res.Assignments[b].Worker
		}
		return res.Assignments[a].Task < res.Assignments[b].Task
	})
	res.Utility = scoreUtility(p, res.Assignments)
	return res, nil
}
