// Package detect implements the malicious-worker detection that Axiom 4
// requires ("requesters must be able to detect workers behaving maliciously
// during task completion").
//
// The detectors follow the approaches the paper surveys: Vuurens, de Vries
// & Eickhoff (SIGIR CIR 2011) observed that nearly 40% of AMT answers came
// from malicious users and proposed agreement-based counter-measures; gold
// questions are the standard platform mechanism. Detection here operates
// over labelled answer matrices (worker × question), which the workload
// package synthesises with a controlled spammer fraction so the E4
// experiment can sweep it.
package detect

import (
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/par"
)

// Answer is one worker's label for one question of a labelling task.
type Answer struct {
	Worker   model.WorkerID
	Question int
	// Label is the chosen category index.
	Label int
}

// AnswerSet is the input to the detectors: all answers to one labelling
// task plus the ground truth for the subset of questions that are gold.
type AnswerSet struct {
	// Labels is the number of label categories.
	Labels int
	// Questions is the number of questions.
	Questions int
	// Answers holds every (worker, question, label) triple.
	Answers []Answer
	// Gold maps a question index to its true label for gold questions.
	// Non-gold questions are absent.
	Gold map[int]int
}

// byWorker groups answers per worker in question order.
func (s *AnswerSet) byWorker() map[model.WorkerID][]Answer {
	m := make(map[model.WorkerID][]Answer)
	for _, a := range s.Answers {
		m[a.Worker] = append(m[a.Worker], a)
	}
	for _, as := range m {
		sort.Slice(as, func(i, j int) bool { return as[i].Question < as[j].Question })
	}
	return m
}

// Workers returns the distinct worker ids in the set, sorted.
func (s *AnswerSet) Workers() []model.WorkerID {
	seen := make(map[model.WorkerID]bool)
	var out []model.WorkerID
	for _, a := range s.Answers {
		if !seen[a.Worker] {
			seen[a.Worker] = true
			out = append(out, a.Worker)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// scoreWorkers fans per-worker scoring across the bounded pool: each worker
// row of the answer matrix is independent, so every detector whose signal
// is a function of one worker's answers (given shared read-only context)
// parallelises here. Results land in per-worker slots indexed by the sorted
// worker list, so the returned map is identical to the serial loop's.
func (s *AnswerSet) scoreWorkers(score func(w model.WorkerID, answers []Answer) float64) map[model.WorkerID]float64 {
	byW := s.byWorker()
	workers := s.Workers()
	scores := make([]float64, len(workers))
	par.For(len(workers), 0, func(i int) {
		scores[i] = score(workers[i], byW[workers[i]])
	})
	out := make(map[model.WorkerID]float64, len(workers))
	for i, w := range workers {
		out[w] = scores[i]
	}
	return out
}

// Detector scores workers for maliciousness over an answer set.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Score returns a suspicion score in [0,1] per worker (1 = certainly
	// malicious). Workers not present in the answer set are absent.
	Score(s *AnswerSet) map[model.WorkerID]float64
}

// GoldQuestion scores workers by their error rate on gold questions — the
// platform-standard detector. Workers who answered no gold questions score
// the neutral 0.5.
type GoldQuestion struct{}

// Name implements Detector.
func (GoldQuestion) Name() string { return "gold-question" }

// Score implements Detector.
func (GoldQuestion) Score(s *AnswerSet) map[model.WorkerID]float64 {
	return s.scoreWorkers(func(_ model.WorkerID, answers []Answer) float64 {
		golds, errs := 0, 0
		for _, a := range answers {
			truth, ok := s.Gold[a.Question]
			if !ok {
				continue
			}
			golds++
			if a.Label != truth {
				errs++
			}
		}
		if golds == 0 {
			return 0.5
		}
		return float64(errs) / float64(golds)
	})
}

// MajorityDeviation scores workers by how often they disagree with the
// per-question majority label — Vuurens et al.'s core signal for random
// spammers, which needs no gold questions at all.
type MajorityDeviation struct{}

// Name implements Detector.
func (MajorityDeviation) Name() string { return "majority-deviation" }

// Score implements Detector.
func (MajorityDeviation) Score(s *AnswerSet) map[model.WorkerID]float64 {
	majority := majorityLabels(s)
	return s.scoreWorkers(func(_ model.WorkerID, answers []Answer) float64 {
		dev := 0
		for _, a := range answers {
			if m, ok := majority[a.Question]; ok && a.Label != m {
				dev++
			}
		}
		return float64(dev) / float64(len(answers))
	})
}

// Agreement scores workers by one minus their mean pairwise agreement with
// other workers on shared questions. Honest workers agree with each other
// through the truth; random spammers agree with no one — the inter-worker
// agreement signal of Vuurens et al. Workers sharing no questions with
// anyone score the neutral 0.5.
type Agreement struct{}

// Name implements Detector.
func (Agreement) Name() string { return "agreement" }

// Score implements Detector.
func (Agreement) Score(s *AnswerSet) map[model.WorkerID]float64 {
	// Build question -> (worker -> label), deduplicating repeated answers
	// (last answer wins) so a worker cannot dilute their own suspicion
	// score by answering a question twice, then fold each question's
	// labels into multiplicity counts. Both maps are read-only by the time
	// the per-worker fan-out shares them: a worker's agreements with the
	// others on a question are (count of their label - 1) out of
	// (answering workers - 1).
	perQ := make(map[int]map[model.WorkerID]int)
	for _, a := range s.Answers {
		m, ok := perQ[a.Question]
		if !ok {
			m = make(map[model.WorkerID]int)
			perQ[a.Question] = m
		}
		m[a.Worker] = a.Label
	}
	type qStats struct {
		counts map[int]int
		n      int
	}
	statsQ := make(map[int]*qStats, len(perQ))
	for q, labels := range perQ {
		st := &qStats{counts: make(map[int]int), n: len(labels)}
		for _, l := range labels {
			st.counts[l]++
		}
		statsQ[q] = st
	}
	return s.scoreWorkers(func(w model.WorkerID, answers []Answer) float64 {
		agree, total := 0, 0
		lastQ := -1 // answers arrive sorted by question; skip duplicates
		for _, a := range answers {
			if a.Question == lastQ {
				continue
			}
			lastQ = a.Question
			st := statsQ[a.Question]
			if st.n < 2 {
				continue
			}
			agree += st.counts[perQ[a.Question][w]] - 1
			total += st.n - 1
		}
		if total == 0 {
			return 0.5
		}
		return 1 - float64(agree)/float64(total)
	})
}

// majorityLabels computes the plurality label per question (ties broken by
// smaller label for determinism).
func majorityLabels(s *AnswerSet) map[int]int {
	perQ := make(map[int]map[int]int)
	for _, a := range s.Answers {
		m, ok := perQ[a.Question]
		if !ok {
			m = make(map[int]int)
			perQ[a.Question] = m
		}
		m[a.Label]++
	}
	out := make(map[int]int, len(perQ))
	for q, counts := range perQ {
		best, bestCount := -1, -1
		labels := make([]int, 0, len(counts))
		for l := range counts {
			labels = append(labels, l)
		}
		sort.Ints(labels)
		for _, l := range labels {
			if counts[l] > bestCount {
				best, bestCount = l, counts[l]
			}
		}
		out[q] = best
	}
	return out
}

// LabelEntropy scores workers by one minus the normalised Shannon entropy
// of their answer distribution: a worker who gives (nearly) the same label
// to every question — the *uniform spammer* of Vuurens et al., which
// defeats agreement-based detection because uniform spammers agree with
// each other — scores near 1. Honest workers answering varied questions
// score near 0. Workers with fewer than two answers score the neutral 0.5.
//
// The score is meaningful only when the true labels are themselves varied;
// the answer generator uses round-robin truth, which matches real labelling
// batches where categories are balanced.
type LabelEntropy struct{}

// Name implements Detector.
func (LabelEntropy) Name() string { return "label-entropy" }

// Score implements Detector.
func (LabelEntropy) Score(s *AnswerSet) map[model.WorkerID]float64 {
	labels := s.Labels
	if labels < 2 {
		labels = 2
	}
	maxEntropy := math.Log2(float64(labels))
	return s.scoreWorkers(func(_ model.WorkerID, answers []Answer) float64 {
		if len(answers) < 2 {
			return 0.5
		}
		counts := make(map[int]int)
		for _, a := range answers {
			counts[a.Label]++
		}
		var h float64
		for _, c := range counts {
			p := float64(c) / float64(len(answers))
			h -= p * math.Log2(p)
		}
		score := 1 - h/maxEntropy
		if score < 0 {
			score = 0
		}
		return score
	})
}

// Detectors returns one instance of every detector, in report order.
func Detectors() []Detector {
	return []Detector{GoldQuestion{}, MajorityDeviation{}, Agreement{}, LabelEntropy{}}
}

// Classify thresholds detector scores into a flagged set.
func Classify(scores map[model.WorkerID]float64, threshold float64) map[model.WorkerID]bool {
	out := make(map[model.WorkerID]bool, len(scores))
	for w, s := range scores {
		out[w] = s >= threshold
	}
	return out
}

// Evaluation is the precision/recall scorecard for a detector against
// ground-truth spammer labels.
type Evaluation struct {
	TruePositives  int
	FalsePositives int
	TrueNegatives  int
	FalseNegatives int
}

// Evaluate compares flagged against truth (truth[w] == true means w is a
// spammer). Workers missing from flagged count as not-flagged.
func Evaluate(flagged map[model.WorkerID]bool, truth map[model.WorkerID]bool) Evaluation {
	var e Evaluation
	for w, isSpammer := range truth {
		switch {
		case isSpammer && flagged[w]:
			e.TruePositives++
		case isSpammer && !flagged[w]:
			e.FalseNegatives++
		case !isSpammer && flagged[w]:
			e.FalsePositives++
		default:
			e.TrueNegatives++
		}
	}
	return e
}

// Precision returns TP/(TP+FP), or 1 when nothing was flagged.
func (e Evaluation) Precision() float64 {
	d := e.TruePositives + e.FalsePositives
	if d == 0 {
		return 1
	}
	return float64(e.TruePositives) / float64(d)
}

// Recall returns TP/(TP+FN), or 1 when no spammers exist.
func (e Evaluation) Recall() float64 {
	d := e.TruePositives + e.FalseNegatives
	if d == 0 {
		return 1
	}
	return float64(e.TruePositives) / float64(d)
}

// F1 returns the harmonic mean of precision and recall.
func (e Evaluation) F1() float64 {
	p, r := e.Precision(), e.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
