package detect_test

import (
	"math"
	"testing"

	"repro/internal/detect"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/workload"
)

// detectorByName resolves a detector for table-driven tests.
func detectorByName(t *testing.T, name string) detect.Detector {
	t.Helper()
	for _, d := range detect.Detectors() {
		if d.Name() == name {
			return d
		}
	}
	t.Fatalf("detector %q missing", name)
	return nil
}

func evaluate(d detect.Detector, gen *workload.LabelledAnswers, threshold float64) detect.Evaluation {
	scores := d.Score(gen.Set)
	return detect.Evaluate(detect.Classify(scores, threshold), gen.Spammers)
}

// Each detector must reach F1 >= 0.9 at 30% spam on the spam model it is
// designed for — the Axiom 4 capability at the paper's spam levels.
func TestDetectorsOnSuitedModels(t *testing.T) {
	cases := []struct {
		detector string
		model    workload.SpamModel
	}{
		{"gold-question", workload.SpamRandom},
		{"gold-question", workload.SpamUniform},
		{"majority-deviation", workload.SpamRandom},
		{"agreement", workload.SpamRandom},
		{"label-entropy", workload.SpamUniform},
	}
	for _, c := range cases {
		rng := stats.NewRNG(7 + uint64(c.model))
		gen := workload.GenerateAnswers(workload.AnswerSpec{
			Workers: 100, Questions: 40, SpamFraction: 0.3, SpamModel: c.model,
		}, rng)
		ev := evaluate(detectorByName(t, c.detector), gen, 0.5)
		if ev.F1() < 0.9 {
			t.Errorf("%s on %s spam: F1 = %v, want >= 0.9", c.detector, c.model, ev.F1())
		}
	}
}

// The complementary blind spots: label-entropy cannot see random spammers;
// agreement loses recall against a large uniform-spammer cohort (they agree
// with each other). These are documented properties, asserted so a future
// change that silently "fixes" them is noticed.
func TestDetectorBlindSpots(t *testing.T) {
	rng := stats.NewRNG(8)
	random := workload.GenerateAnswers(workload.AnswerSpec{
		Workers: 100, Questions: 40, SpamFraction: 0.3, SpamModel: workload.SpamRandom,
	}, rng)
	ev := evaluate(detectorByName(t, "label-entropy"), random, 0.5)
	if ev.Recall() > 0.2 {
		t.Errorf("label-entropy recall on random spam = %v, expected near-blindness", ev.Recall())
	}

	uniform := workload.GenerateAnswers(workload.AnswerSpec{
		Workers: 100, Questions: 40, SpamFraction: 0.45, SpamModel: workload.SpamUniform,
	}, rng)
	evA := evaluate(detectorByName(t, "agreement"), uniform, 0.5)
	if evA.Recall() > 0.5 {
		t.Errorf("agreement recall on 45%% uniform spam = %v, expected degradation", evA.Recall())
	}
}

func TestScoresInRange(t *testing.T) {
	for _, m := range []workload.SpamModel{workload.SpamRandom, workload.SpamUniform} {
		rng := stats.NewRNG(9)
		gen := workload.GenerateAnswers(workload.AnswerSpec{
			Workers: 50, Questions: 20, SpamFraction: 0.4, SpamModel: m,
		}, rng)
		for _, d := range detect.Detectors() {
			for w, s := range d.Score(gen.Set) {
				if s < 0 || s > 1 || math.IsNaN(s) {
					t.Errorf("%s score for %s = %v out of range", d.Name(), w, s)
				}
			}
		}
	}
}

func TestLabelEntropyCrafted(t *testing.T) {
	s := &detect.AnswerSet{Labels: 4, Questions: 4}
	add := func(w string, labels ...int) {
		for q, l := range labels {
			s.Answers = append(s.Answers, detect.Answer{Worker: model.WorkerID(w), Question: q, Label: l})
		}
	}
	add("varied", 0, 1, 2, 3) // maximum entropy -> score 0
	add("stuck", 2, 2, 2, 2)  // zero entropy -> score 1
	add("half", 0, 0, 1, 1)   // half entropy -> score 0.5
	scores := (detect.LabelEntropy{}).Score(s)
	if scores["varied"] != 0 {
		t.Errorf("varied score = %v, want 0", scores["varied"])
	}
	if scores["stuck"] != 1 {
		t.Errorf("stuck score = %v, want 1", scores["stuck"])
	}
	if math.Abs(scores["half"]-0.5) > 1e-9 {
		t.Errorf("half score = %v, want 0.5", scores["half"])
	}
}

func TestLabelEntropySingleAnswerNeutral(t *testing.T) {
	s := &detect.AnswerSet{Labels: 2, Questions: 1}
	s.Answers = []detect.Answer{{Worker: "solo", Question: 0, Label: 0}}
	if got := (detect.LabelEntropy{}).Score(s)["solo"]; got != 0.5 {
		t.Errorf("solo score = %v, want neutral 0.5", got)
	}
}
