package detect

import (
	"testing"

	"repro/internal/model"
)

// craftedSet builds a 3-worker set: honest answers truth, spammer answers
// wrong, lurker answers truth but no golds exist for their questions.
func craftedSet() *AnswerSet {
	s := &AnswerSet{Labels: 2, Questions: 4, Gold: map[int]int{0: 0, 1: 1}}
	add := func(w string, labels ...int) {
		for q, l := range labels {
			s.Answers = append(s.Answers, Answer{Worker: model.WorkerID(w), Question: q, Label: l})
		}
	}
	add("honest", 0, 1, 0, 1)
	add("honest2", 0, 1, 0, 1)
	add("spammer", 1, 0, 1, 0)
	return s
}

func TestGoldQuestionScores(t *testing.T) {
	scores := GoldQuestion{}.Score(craftedSet())
	if scores["honest"] != 0 {
		t.Errorf("honest gold error = %v, want 0", scores["honest"])
	}
	if scores["spammer"] != 1 {
		t.Errorf("spammer gold error = %v, want 1", scores["spammer"])
	}
}

func TestGoldQuestionNoGolds(t *testing.T) {
	s := craftedSet()
	s.Gold = map[int]int{}
	scores := GoldQuestion{}.Score(s)
	if scores["honest"] != 0.5 {
		t.Errorf("no-gold score = %v, want neutral 0.5", scores["honest"])
	}
}

func TestMajorityDeviationScores(t *testing.T) {
	scores := MajorityDeviation{}.Score(craftedSet())
	if scores["honest"] != 0 || scores["honest2"] != 0 {
		t.Errorf("honest deviation = %v/%v, want 0", scores["honest"], scores["honest2"])
	}
	if scores["spammer"] != 1 {
		t.Errorf("spammer deviation = %v, want 1", scores["spammer"])
	}
}

func TestAgreementScores(t *testing.T) {
	scores := Agreement{}.Score(craftedSet())
	// Honest pair agree with each other (1 of 2 peers each), spammer
	// agrees with nobody.
	if scores["spammer"] != 1 {
		t.Errorf("spammer agreement score = %v, want 1", scores["spammer"])
	}
	if scores["honest"] != 0.5 {
		t.Errorf("honest agreement score = %v, want 0.5 (agrees with 1 of 2 peers)", scores["honest"])
	}
}

func TestAgreementSingleWorker(t *testing.T) {
	s := &AnswerSet{Labels: 2, Questions: 1, Gold: map[int]int{}}
	s.Answers = []Answer{{Worker: "solo", Question: 0, Label: 0}}
	scores := Agreement{}.Score(s)
	if scores["solo"] != 0.5 {
		t.Errorf("solo score = %v, want neutral 0.5", scores["solo"])
	}
}

func TestWorkersSorted(t *testing.T) {
	s := craftedSet()
	ws := s.Workers()
	if len(ws) != 3 || ws[0] != "honest" || ws[2] != "spammer" {
		t.Fatalf("workers = %v", ws)
	}
}

func TestClassify(t *testing.T) {
	flagged := Classify(map[model.WorkerID]float64{"a": 0.9, "b": 0.3}, 0.5)
	if !flagged["a"] || flagged["b"] {
		t.Fatalf("flagged = %v", flagged)
	}
}

func TestEvaluate(t *testing.T) {
	truth := map[model.WorkerID]bool{"s1": true, "s2": true, "h1": false, "h2": false}
	flagged := map[model.WorkerID]bool{"s1": true, "h1": true}
	e := Evaluate(flagged, truth)
	if e.TruePositives != 1 || e.FalsePositives != 1 || e.FalseNegatives != 1 || e.TrueNegatives != 1 {
		t.Fatalf("evaluation = %+v", e)
	}
	if e.Precision() != 0.5 || e.Recall() != 0.5 {
		t.Fatalf("p/r = %v/%v", e.Precision(), e.Recall())
	}
	if e.F1() != 0.5 {
		t.Fatalf("f1 = %v", e.F1())
	}
}

func TestEvaluateDegenerate(t *testing.T) {
	e := Evaluate(nil, map[model.WorkerID]bool{"h": false})
	if e.Precision() != 1 || e.Recall() != 1 {
		t.Fatalf("vacuous p/r = %v/%v, want 1/1", e.Precision(), e.Recall())
	}
	if (Evaluation{}).F1() != 0 && (Evaluation{}).F1() != 1 {
		// F1 of all-zero evaluation: p=1, r=1 -> 1.
		t.Fatalf("empty F1 = %v", (Evaluation{}).F1())
	}
}

func TestMajorityTieBreaksDeterministically(t *testing.T) {
	s := &AnswerSet{Labels: 2, Questions: 1}
	s.Answers = []Answer{
		{Worker: "a", Question: 0, Label: 0},
		{Worker: "b", Question: 0, Label: 1},
	}
	// Tie on question 0: majority must pick label 0 (smaller label).
	scores := MajorityDeviation{}.Score(s)
	if scores["a"] != 0 || scores["b"] != 1 {
		t.Fatalf("tie-break scores = %v", scores)
	}
}

func TestAgreementDeduplicatesRepeatedAnswers(t *testing.T) {
	// w1 answers question 0 twice; the duplicate must not count as w1
	// agreeing with itself (which would dilute its suspicion score).
	s := &AnswerSet{Labels: 3, Questions: 1}
	s.Answers = []Answer{
		{Worker: "w1", Question: 0, Label: 1},
		{Worker: "w1", Question: 0, Label: 1},
		{Worker: "w2", Question: 0, Label: 2},
	}
	scores := Agreement{}.Score(s)
	if scores["w1"] != 1 || scores["w2"] != 1 {
		t.Fatalf("duplicate answers diluted agreement scores: %v", scores)
	}
}
