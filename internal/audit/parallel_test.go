package audit

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fairness"
	"repro/internal/par"
)

// renderReports serialises a report set to a stable byte form: axiom,
// Checked count, and every violation's rendered string, in report order.
// Two runs that produce different bytes here differ observably.
func renderReports(reps []*fairness.Report) string {
	var b strings.Builder
	for _, r := range reps {
		fmt.Fprintf(&b, "%s checked=%d violations=%d\n", r.Axiom, r.Checked, len(r.Violations))
		for _, v := range r.Violations {
			b.WriteString(v.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestParallelAuditMatchesSerial is the determinism gate for the parallel
// audit pipeline: the same mutation stream driven through two engines in
// lockstep — one audited with the worker budget pinned to 1 (every fan-out
// runs inline, i.e. the serial pipeline), one with a multi-worker budget —
// must render byte-identical reports every round, across seeds, shard
// widths, and both candidate backends. Run with -race to also pin down
// that the parallel passes share no unsynchronised state.
func TestParallelAuditMatchesSerial(t *testing.T) {
	defer par.SetMaxWorkers(0)
	for _, seed := range []uint64{7, 41} {
		for _, shards := range []int{1, 4} {
			for _, backend := range []string{fairness.CandidateExact, fairness.CandidateLSH} {
				seed, shards, backend := seed, shards, backend
				t.Run(fmt.Sprintf("seed=%d/shards=%d/%s", seed, shards, backend), func(t *testing.T) {
					cfg := fairness.DefaultConfig()
					if backend == fairness.CandidateLSH {
						cfg = lshConfig(seed * 2027)
					}
					// Two identical scenarios: same seed, same RNG, so the
					// mutation streams are byte-for-byte the same trace.
					sS := newScenarioSharded(t, seed, shards)
					sP := newScenarioSharded(t, seed, shards)
					sS.seed(40, 16, 200, 24)
					sP.seed(40, 16, 200, 24)
					engS := New(sS.st, sS.log, cfg)
					engP := New(sP.st, sP.log, cfg)
					for round := 0; round < 6; round++ {
						for i := 0; i < 12; i++ {
							sS.mutate()
							sP.mutate()
						}
						par.SetMaxWorkers(1)
						serial := renderReports(engS.Audit())
						par.SetMaxWorkers(4)
						parallel := renderReports(engP.Audit())
						if serial != parallel {
							t.Fatalf("round %d: parallel audit diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s",
								round, serial, parallel)
						}
					}
				})
			}
		}
	}
}
