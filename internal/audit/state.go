package audit

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/similarity"
	"repro/internal/store"
)

// BuildCheckpointOptions assembles the store.CheckpointOptions every
// durable surface (crowdfair.Platform.Checkpoint, sim's end-of-run
// checkpoint) hands to store.Checkpoint: the event count plus — when eng
// has completed at least one pass — the engine's serialised state, signed
// with cfg's fingerprint, and the changelog cursors that protect its WAL
// records from truncation. A nil or unprimed engine yields plain options.
func BuildCheckpointOptions(eng *Engine, cfg fairness.Config, events int) (store.CheckpointOptions, error) {
	o := store.CheckpointOptions{Events: events}
	if eng == nil {
		return o, nil
	}
	state := eng.State()
	if state == nil {
		return o, nil
	}
	state.ConfigSig = ConfigSig(cfg)
	blob, err := json.Marshal(state)
	if err != nil {
		return o, fmt.Errorf("audit: encode state: %w", err)
	}
	o.Audit = blob
	o.AuditCursors = state.Cursors
	return o, nil
}

// ConfigSig deterministically fingerprints the checker-relevant fields of
// a fairness.Config — measure names, every threshold and tolerance, and
// the attribute policy's per-field maps in sorted order. Persisted audit
// state carries the signature of the config it was computed under; a
// resume is only warm when the signatures match (the function-valued
// config cannot be compared directly).
func ConfigSig(cfg fairness.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "skill=%s@%v;attrT=%v;access=%v;reward=%v;contrib=%v;pay=%v;exh=%v",
		cfg.SkillMeasure.Name, cfg.SkillThreshold, cfg.AttrThreshold, cfg.AccessThreshold,
		cfg.RewardTolerance, cfg.ContributionThreshold, cfg.PayTolerance, cfg.Exhaustive)
	fmt.Fprintf(&b, ";cand=%s", cfg.CandidateKind())
	if cfg.CandidateKind() == fairness.CandidateLSH {
		fmt.Fprintf(&b, "@%d", cfg.LSHSeed)
	}
	if p := cfg.AttrPolicy; p != nil {
		fmt.Fprintf(&b, ";attr=%v/%v", p.NumTolerance, p.MissingPenalty)
		keys := make([]string, 0, len(p.FieldTolerance))
		for k := range p.FieldTolerance {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, ";ft.%s=%v", k, p.FieldTolerance[k])
		}
		keys = keys[:0]
		for k, on := range p.IgnoreFields {
			if on {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, ";ig.%s", k)
		}
	}
	return b.String()
}

// State is the serialisable warm-start image of an Engine: the changelog
// cursors, the event-log position, the temporal indexes (deduplicated
// offer sets, flagged workers, the Axiom 5 stream), and every maintained
// verdict. It is what Platform.Checkpoint embeds in the store manifest so
// a restarted auditor replays only post-checkpoint deltas — no full event
// replay, no candidate-pair scan.
//
// Only the similarity cache is deliberately NOT serialised: it re-warms on
// demand, and persisting revision-keyed scores across a restart would tie
// the state format to the cache layout for little gain.
type State struct {
	// ConfigSig fingerprints the fairness.Config the verdicts were computed
	// under; callers (crowdfair) compare it before resuming and cold-start
	// on mismatch. Opaque to this package.
	ConfigSig string `json:"config_sig,omitempty"`
	// Cursors are the per-shard changelog positions at save time.
	Cursors []uint64 `json:"cursors"`
	// EventPos is the event-log cursor position at save time.
	EventPos int `json:"event_pos"`

	// Offers are the access index's deduplicated per-worker offer sets
	// (the task-audience direction is derived on restore); Flagged lists
	// the workers the platform ever flagged; Ax5 is the streaming Axiom 5
	// checker's image. Together they stand in for replaying the event
	// prefix [0, EventPos).
	Offers  map[model.WorkerID][]model.TaskID `json:"offers,omitempty"`
	Flagged []model.WorkerID                  `json:"flagged,omitempty"`
	Ax5     *fairness.Axiom5State             `json:"ax5,omitempty"`

	Ax1Violations []fairness.Violation `json:"ax1_violations,omitempty"`
	Ax1Pairs      [][2]string          `json:"ax1_pairs,omitempty"`
	Ax2Violations []fairness.Violation `json:"ax2_violations,omitempty"`
	Ax2Pairs      [][2]string          `json:"ax2_pairs,omitempty"`

	Ax3Violations map[model.TaskID][]fairness.Violation `json:"ax3_violations,omitempty"`
	Ax3Checked    map[model.TaskID]int                  `json:"ax3_checked,omitempty"`

	Ax4Violations map[model.WorkerID]fairness.Violation `json:"ax4_violations,omitempty"`
	Ax4Eligible   []model.WorkerID                      `json:"ax4_eligible,omitempty"`

	// Index is the serialised candidate-index image (nil in states saved
	// before the candidate layer existed; Resume then rebuilds linearly).
	Index *IndexState `json:"index,omitempty"`
}

// IndexState is the warm-start image of the engine's candidate indexes.
// For the LSH backend it carries every entity's MinHash signature
// (base64-encoded little-endian uint32s), so Resume restores the banded
// buckets by re-bucketing stored signatures — linear in entity count, with
// no token re-hashing and no pairwise work. For the exact backend only the
// kind is recorded: rebuilding the inverted index from store snapshots is
// already linear, and its token lists are bulkier than the entities
// themselves. If the recorded shape (kind, seed, band/row geometry) does
// not match the resuming config's plan, or a signature fails to decode,
// Resume falls back to a from-scratch build — correctness never depends on
// the image being usable.
type IndexState struct {
	Kind string `json:"kind"`
	Seed uint64 `json:"seed,omitempty"`

	WorkerBands int `json:"worker_bands,omitempty"`
	WorkerRows  int `json:"worker_rows,omitempty"`
	TaskBands   int `json:"task_bands,omitempty"`
	TaskRows    int `json:"task_rows,omitempty"`

	// Workers and Tasks map entity id → encoded signature (LSH only).
	Workers map[string]string `json:"workers,omitempty"`
	Tasks   map[string]string `json:"tasks,omitempty"`
}

// encodeSig packs a MinHash signature as base64 over little-endian
// uint32s — compact, JSON-safe, and byte-deterministic for a given
// signature.
func encodeSig(sig []uint32) string {
	buf := make([]byte, 4*len(sig))
	for i, v := range sig {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// decodeSig inverts encodeSig, checking that the payload holds exactly k
// slots.
func decodeSig(s string, k int) ([]uint32, bool) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil || len(buf) != 4*k {
		return nil, false
	}
	sig := make([]uint32, k)
	for i := range sig {
		sig[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return sig, true
}

// indexState exports the engine's candidate indexes for serialisation.
// Caller holds e.mu.
func (e *Engine) indexState() *IndexState {
	ix := &IndexState{Kind: e.plan.Kind}
	if e.plan.Kind != fairness.CandidateLSH {
		return ix
	}
	ix.Seed = e.plan.Seed
	ix.WorkerBands, ix.WorkerRows = e.plan.Worker.Bands, e.plan.Worker.Rows
	ix.TaskBands, ix.TaskRows = e.plan.Task.Bands, e.plan.Task.Rows
	if w, ok := e.workerIx.(*similarity.LSHIndex); ok {
		ix.Workers = make(map[string]string, w.Len())
		w.Signatures(func(id string, sig []uint32) { ix.Workers[id] = encodeSig(sig) })
	}
	if t, ok := e.taskIx.(*similarity.LSHIndex); ok {
		ix.Tasks = make(map[string]string, t.Len())
		t.Signatures(func(id string, sig []uint32) { ix.Tasks[id] = encodeSig(sig) })
	}
	return ix
}

// restoreIndexes installs candidate indexes from a serialised image,
// falling back to a from-scratch build when the image is missing, is for a
// different plan shape, or holds an undecodable signature. Caller holds
// e.mu. Both paths are linear in entity count; neither enumerates pairs.
func (e *Engine) restoreIndexes(ix *IndexState) {
	if ix == nil || ix.Kind != e.plan.Kind {
		e.buildIndexes()
		return
	}
	if e.plan.Kind != fairness.CandidateLSH {
		// Exact images carry no payload; rebuild the inverted index from the
		// store (linear in total token count).
		e.buildIndexes()
		return
	}
	if ix.Seed != e.plan.Seed ||
		ix.WorkerBands != e.plan.Worker.Bands || ix.WorkerRows != e.plan.Worker.Rows ||
		ix.TaskBands != e.plan.Task.Bands || ix.TaskRows != e.plan.Task.Rows {
		e.buildIndexes()
		return
	}
	wix, ok := restoreLSH(e.plan.Worker, ix.Workers)
	if !ok {
		e.buildIndexes()
		return
	}
	tix, ok := restoreLSH(e.plan.Task, ix.Tasks)
	if !ok {
		e.buildIndexes()
		return
	}
	e.workerIx = wix
	e.taskIx = tix
}

// restoreLSH decodes a serialised signature map and bulk-installs it into a
// fresh index (decoding serially, band hashing and bucket insertion on the
// parallel pool). ok is false when any signature fails to decode.
func restoreLSH(params similarity.LSHParams, encoded map[string]string) (*similarity.LSHIndex, bool) {
	ids := make([]string, 0, len(encoded))
	sigs := make([][]uint32, 0, len(encoded))
	for id, enc := range encoded {
		sig, ok := decodeSig(enc, params.K())
		if !ok {
			return nil, false
		}
		ids = append(ids, id)
		sigs = append(sigs, sig)
	}
	x := similarity.NewLSHIndex(params)
	x.BulkUpsertSignatures(ids, sigs)
	return x, true
}

// pairs lists the census adjacency set once per pair, deterministically
// ordered, for serialisation; add() restores it.
func (p *pairSet) pairs() [][2]string {
	var out [][2]string
	for a, partners := range p.adj {
		for b := range partners {
			if a < b {
				out = append(out, [2]string{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// State captures the engine's warm-start image. It returns nil until the
// engine has completed its first Audit pass (an unprimed engine has no
// verdicts worth saving). ConfigSig is left empty for the caller to fill.
func (e *Engine) State() *State {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.primed {
		return nil
	}
	st := &State{
		Cursors:       append([]uint64(nil), e.cursors...),
		EventPos:      e.cursor.Pos(),
		Offers:        e.access.Offers(),
		Ax5:           e.ax5.Save(),
		Ax1Violations: append([]fairness.Violation(nil), e.ax1Viol...),
		Ax1Pairs:      e.ax1Census.pairs(),
		Ax2Violations: append([]fairness.Violation(nil), e.ax2Viol...),
		Ax2Pairs:      e.ax2Census.pairs(),
		Ax3Violations: make(map[model.TaskID][]fairness.Violation, len(e.ax3)),
		Ax3Checked:    make(map[model.TaskID]int, len(e.ax3Checked)),
		Ax4Violations: make(map[model.WorkerID]fairness.Violation, len(e.ax4)),
		Index:         e.indexState(),
	}
	for id, vs := range e.ax3 {
		st.Ax3Violations[id] = append([]fairness.Violation(nil), vs...)
	}
	for id, n := range e.ax3Checked {
		st.Ax3Checked[id] = n
	}
	for id, v := range e.ax4 {
		st.Ax4Violations[id] = v
	}
	for id := range e.ax4Eligible {
		st.Ax4Eligible = append(st.Ax4Eligible, id)
	}
	sort.Slice(st.Ax4Eligible, func(i, j int) bool { return st.Ax4Eligible[i] < st.Ax4Eligible[j] })
	for id := range e.flagged {
		st.Flagged = append(st.Flagged, id)
	}
	sort.Slice(st.Flagged, func(i, j int) bool { return st.Flagged[i] < st.Flagged[j] })
	return st
}

// Resume rebuilds a warm engine over a recovered trace: the temporal
// state (access index, flagged set, Axiom 5 stream) and the maintained
// verdicts are restored from the saved image, and the changelog and event
// cursors pick up where the checkpoint left them — so the next Audit call
// is a delta pass over post-checkpoint changes only, with no full event
// replay and no candidate-pair scan. If the store's changelog no longer
// covers a cursor (deep tail loss, shard-width change), that first Audit
// transparently falls back to the full rebuild; correctness never depends
// on the state being fresh.
//
// The caller is responsible for checking State.ConfigSig against cfg (the
// engine cannot compare the function-valued config itself).
func Resume(st *store.Store, log *eventlog.Log, cfg fairness.Config, state *State) (*Engine, error) {
	if state == nil {
		return nil, fmt.Errorf("audit: resume from nil state")
	}
	if len(state.Cursors) != st.ShardCount() {
		return nil, fmt.Errorf("audit: state has %d cursors, store has %d shards",
			len(state.Cursors), st.ShardCount())
	}
	if state.EventPos > log.Len() {
		return nil, fmt.Errorf("audit: state event position %d beyond recovered log length %d",
			state.EventPos, log.Len())
	}
	e := New(st, log, cfg)
	e.mu.Lock()
	defer e.mu.Unlock()

	for w, tasks := range state.Offers {
		for _, t := range tasks {
			e.access.RestoreOffer(w, t)
		}
	}
	for _, w := range state.Flagged {
		e.flagged[w] = true
	}
	e.ax5 = fairness.RestoreAxiom5Stream(state.Ax5)
	e.cursor = eventlog.NewCursorAt(log, state.EventPos)
	copy(e.cursors, state.Cursors)

	e.ax1Viol = append([]fairness.Violation(nil), state.Ax1Violations...)
	fairness.SortViolations(e.ax1Viol)
	e.ax1Census.add(state.Ax1Pairs)
	e.ax2Viol = append([]fairness.Violation(nil), state.Ax2Violations...)
	fairness.SortViolations(e.ax2Viol)
	e.ax2Census.add(state.Ax2Pairs)
	for id, vs := range state.Ax3Violations {
		e.ax3[id] = append([]fairness.Violation(nil), vs...)
	}
	for id, n := range state.Ax3Checked {
		e.ax3Checked[id] = n
	}
	for id, v := range state.Ax4Violations {
		e.ax4[id] = v
	}
	for _, id := range state.Ax4Eligible {
		e.ax4Eligible[id] = true
	}
	e.restoreIndexes(state.Index)
	e.primed = true
	return e, nil
}
