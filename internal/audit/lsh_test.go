package audit

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/store"
	"repro/internal/wal"
)

// lshConfig is the default config switched to the LSH candidate backend.
func lshConfig(seed uint64) fairness.Config {
	cfg := fairness.DefaultConfig()
	cfg.CandidateIndex = fairness.CandidateLSH
	cfg.LSHSeed = seed
	return cfg
}

// The engine's incrementally maintained LSH indexes must generate exactly
// the candidate sets the checkers' transient per-call indexes generate —
// signatures are pure functions of entity content plus the seed — so the
// incremental engine under LSH matches fairness.CheckAll under LSH across
// arbitrary mutation streams, violations and Checked counts alike.
func TestIncrementalLSHMatchesCheckAllLSH(t *testing.T) {
	for _, seed := range []uint64{4, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := newScenario(t, seed)
			s.seed(50, 20, 250, 30)
			cfg := lshConfig(seed * 1013)
			eng := New(s.st, s.log, cfg)
			for round := 0; round < 8; round++ {
				for i := 0; i < 15; i++ {
					s.mutate()
				}
				inc := eng.Audit()
				full := fairness.CheckAll(s.st, s.log, cfg)
				requireEquivalent(t, round, inc, full)
				for i := range inc {
					if inc[i].Checked != full[i].Checked {
						t.Fatalf("round %d, %s: checked %d (incremental) vs %d (full)",
							round, inc[i].Axiom, inc[i].Checked, full[i].Checked)
					}
				}
			}
		})
	}
}

// A warm restart under the LSH backend must equal a cold start: the
// serialised signatures restore the banded index without re-tokenising a
// single entity, and the first warm delta pass reports exactly what a cold
// full scan reports.
func TestResumeWarmEqualsColdLSH(t *testing.T) {
	dir := t.TempDir()
	opts := wal.Options{SegmentBytes: 8 << 10}
	s := durableScenario(t, 31, dir, opts)
	s.seed(60, 30, 300, 50)
	cfg := lshConfig(777)
	eng := New(s.st, s.log, cfg)
	eng.Audit()
	for i := 0; i < 60; i++ {
		s.mutate()
	}
	eng.Audit()

	// The saved image must actually carry the signatures (the warm path),
	// not just the kind tag.
	state := eng.State()
	if state.Index == nil || state.Index.Kind != fairness.CandidateLSH {
		t.Fatalf("state.Index = %+v, want LSH image", state.Index)
	}
	if len(state.Index.Workers) != s.wn || len(state.Index.Tasks) != s.tn {
		t.Fatalf("index image has %d workers / %d tasks, store has %d / %d",
			len(state.Index.Workers), len(state.Index.Tasks), s.wn, s.tn)
	}

	checkpointWithAudit(t, s.st, s.log, eng, cfg)
	for i := 0; i < 40; i++ {
		s.mutate()
	}
	if err := s.st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.log.Close(); err != nil {
		t.Fatal(err)
	}

	st2, man, err := store.Open(dir, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	log2, err := eventlog.OpenDurable(store.EventsDir(dir), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()

	warm := resumeFromManifest(t, st2, log2, cfg, man)
	warmReports := warm.Audit()
	full := fairness.CheckAll(st2, log2, cfg)
	requireEquivalent(t, 0, warmReports, full)
	for i := range warmReports {
		if warmReports[i].Checked != full[i].Checked {
			t.Fatalf("%s: warm checked %d, full %d",
				warmReports[i].Axiom, warmReports[i].Checked, full[i].Checked)
		}
	}
}

// A state saved under one LSH seed resumed under another must fall back to
// a from-scratch index build (stored signatures are useless under a
// different hash family) and still audit correctly.
func TestResumeLSHSeedMismatchFallsBack(t *testing.T) {
	s := newScenario(t, 8)
	s.seed(40, 20, 150, 30)
	cfg := lshConfig(1)
	eng := New(s.st, s.log, cfg)
	eng.Audit()
	blob, err := json.Marshal(eng.State())
	if err != nil {
		t.Fatal(err)
	}
	var state State
	if err := json.Unmarshal(blob, &state); err != nil {
		t.Fatal(err)
	}
	// Corrupt one signature and shift the recorded seed; both paths must
	// route to buildIndexes without error.
	state.Index.Seed++
	for id := range state.Index.Workers {
		state.Index.Workers[id] = "not base64!"
		break
	}
	cfg2 := lshConfig(2)
	warm, err := Resume(s.st, s.log, cfg2, &state)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.mutate()
	}
	requireEquivalent(t, 0, warm.Audit(), fairness.CheckAll(s.st, s.log, cfg2))
}

// ConfigSig must separate configs that differ only in candidate backend or
// LSH seed — resuming LSH-computed verdicts under exact (or another seed)
// must read as a config change, not a warm match.
func TestConfigSigSeparatesCandidateBackends(t *testing.T) {
	exact := fairness.DefaultConfig()
	lshA := lshConfig(1)
	lshB := lshConfig(2)
	sigs := map[string]string{
		"exact": ConfigSig(exact),
		"lshA":  ConfigSig(lshA),
		"lshB":  ConfigSig(lshB),
	}
	for a, sa := range sigs {
		for b, sb := range sigs {
			if a != b && sa == sb {
				t.Fatalf("ConfigSig(%s) == ConfigSig(%s): %q", a, b, sa)
			}
		}
	}
}
