package audit

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/store"
)

// TestAuditUnderConcurrentMutation runs incremental audits while several
// writers insert workers, tasks, offers, and contributions concurrently.
// Under -race this pins down that the engine performs no torn reads; in
// either mode it asserts the engine's convergence contract — once mutation
// stops, the next incremental audit matches a from-scratch full audit.
func TestAuditUnderConcurrentMutation(t *testing.T) {
	u := model.MustUniverse("go", "nlp")
	st := store.New(u)
	log := eventlog.New()
	if err := st.PutRequester(&model.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutRequester(&model.Requester{ID: "r2"}); err != nil {
		t.Fatal(err)
	}
	cfg := fairness.DefaultConfig()
	eng := New(st, log, cfg)
	eng.Audit() // prime before the storm

	const writers = 4
	const perWriter = 60
	var wg sync.WaitGroup
	stop := make(chan struct{})
	auditDone := make(chan error, 1)
	go func() {
		defer close(auditDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			eng.Audit()
			time.Sleep(time.Millisecond)
		}
	}()

	skills := []string{"go", "nlp"}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := model.RequesterID(fmt.Sprintf("r%d", 1+g%2))
			for i := 0; i < perWriter; i++ {
				wid := model.WorkerID(fmt.Sprintf("w%d-%04d", g, i))
				w := &model.Worker{
					ID:       wid,
					Declared: model.Attributes{"country": model.Str([]string{"jp", "fr"}[i%2])},
					Computed: model.Attributes{model.AttrAcceptanceRatio: model.Num([]float64{0.3, 0.8}[(i/2)%2])},
					Skills:   u.MustVector(skills[i%len(skills)]),
				}
				if err := st.PutWorker(w); err != nil {
					t.Error(err)
					return
				}
				tid := model.TaskID(fmt.Sprintf("t%d-%04d", g, i))
				task := &model.Task{
					ID: tid, Requester: req,
					Skills: u.MustVector(skills[i%len(skills)]),
					Reward: []float64{1.0, 1.02}[i%2],
				}
				if err := st.PutTask(task); err != nil {
					t.Error(err)
					return
				}
				log.MustAppend(eventlog.Event{Type: eventlog.TaskOffered, Worker: wid, Task: tid})
				if i%3 == 0 {
					c := &model.Contribution{
						ID:     model.ContributionID(fmt.Sprintf("c%d-%04d", g, i)),
						Task:   tid,
						Worker: wid,
						Text:   "the canonical answer",
						Paid:   []float64{0.5, 2.0}[i%2],
					}
					if err := st.PutContribution(c); err != nil {
						t.Error(err)
						return
					}
				}
				if i%5 == 0 {
					w.Computed[model.AttrAcceptanceRatio] = model.Num(0.4)
					if err := st.UpdateWorker(w); err != nil {
						t.Error(err)
						return
					}
				}
				if i%7 == 0 {
					log.MustAppend(eventlog.Event{Type: eventlog.WorkerFlagged, Worker: wid})
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-auditDone
	if t.Failed() {
		return
	}

	inc := eng.Audit()
	full := fairness.CheckAll(st, log, cfg)
	requireEquivalent(t, 0, inc, full)
}
