// Package audit is the incremental fairness-audit engine: the subsystem
// that turns the paper's batch audits into the continuous monitoring loop a
// long-lived platform needs. A full AuditFairness pass re-scans every
// candidate pair on every call — quadratic per tick, untenable alongside
// live traffic. Engine instead subscribes to the store's per-shard
// changelogs (store.ShardChangesSince, one cursor per shard so no
// cross-shard merge is ever needed) and the event log's cursor, computes
// per-axiom dirty sets — workers whose attributes or offer sets moved,
// tasks whose audiences or contribution sets moved — and re-checks only
// pairs with at least one dirty endpoint, maintaining the violation set
// across passes.
//
// Guarantee: after any sequence of mutations, Audit reports exactly the
// violations a full fairness.CheckAll over the same trace reports (the
// determinism tests pin this down pair by pair). Report.Checked is exact
// for every axiom: Axioms 3–5 maintain per-unit counts, and Axioms 1–2
// maintain a candidate-pair census (fairness.Report.CheckedPairs feeds an
// adjacency set) so delta passes report the same Checked a full scan would.
//
// A revision-keyed similarity cache (Cache) is shared across Axioms 1–3,
// so even the pairs a dirty entity drags back into scope only recompute the
// similarity legs that actually moved. When the engine falls behind any
// shard's changelog retention window it falls back to a full rebuild — the
// cold start and the catch-up path are the same code, and the rebuild's
// per-task / per-worker folds fan out on the bounded worker pool.
package audit

import (
	"sort"
	"sync"

	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/similarity"
	"repro/internal/store"
)

// Engine maintains incremental audit state over one store + event log.
// Construct with New. Audit is safe to call concurrently with store and log
// mutation (each pass sees some consistent recent state, and a pass issued
// after mutation stops reflects every mutation); concurrent Audit calls
// serialise on an internal mutex.
type Engine struct {
	mu    sync.Mutex
	st    *store.Store
	log   *eventlog.Log
	cfg   fairness.Config
	cache *Cache
	plan  fairness.IndexPlan

	primed  bool
	cursors []uint64 // per-shard changelog positions
	cursor  *eventlog.Cursor
	access  *fairness.AccessIndex
	flagged map[model.WorkerID]bool
	ax5     *fairness.Axiom5Stream

	// Candidate indexes for the Axiom 1/2 checkers, owned by the engine
	// and advanced incrementally from the same per-shard changelog deltas
	// that drive the dirty sets — an entity mutation re-tokenises exactly
	// that entity. Built shard-parallel on rebuild, serialised in State
	// for warm restarts, and keyed by entity id, so Reshard's cursor
	// remaps never touch them. Contribution candidates are generated
	// transiently per dirty task (see fairness.IndexPlan.ContribCandidates)
	// and need no engine state.
	workerIx similarity.CandidateIndex
	taskIx   similarity.CandidateIndex

	// Maintained verdicts. Axioms 1/2 keep their violations as a sorted
	// slice — delta passes filter out entries touching dirty subjects and
	// merge in the (already sorted, dirty-only) fresh findings, so no pass
	// ever re-sorts the full set — plus the exact candidate-pair census
	// (pairSet) that keeps their Checked counts equal to a full scan's.
	// Axiom 3 stores per-task results; Axiom 4 per-worker results plus the
	// eligibility set that makes its Checked count exact.
	ax1Viol     []fairness.Violation
	ax1Census   *pairSet
	ax2Viol     []fairness.Violation
	ax2Census   *pairSet
	ax3         map[model.TaskID][]fairness.Violation
	ax3Checked  map[model.TaskID]int
	ax4         map[model.WorkerID]fairness.Violation
	ax4Eligible map[model.WorkerID]bool

	scr scratch
}

// scratch is the engine's per-pass workspace: the changelog buffer, the four
// dirty sets, and their sorted projections are cleared and refilled each
// pass instead of reallocated, so a steady-state delta audit's fixed
// bookkeeping costs no allocations — what remains scales with what the pass
// actually found.
type scratch struct {
	changes []store.Change
	dirtyW1 map[model.WorkerID]bool
	dirtyT2 map[model.TaskID]bool
	dirtyT3 map[model.TaskID]bool
	dirtyW4 map[model.WorkerID]bool
	w1      []model.WorkerID
	t2      []model.TaskID
	t3      []model.TaskID
	w4      []model.WorkerID
	s1      []string // w1 in the violation subjects' string domain
	s2      []string // t2, likewise
}

// begin readies the workspace for one pass.
func (s *scratch) begin() {
	s.changes = s.changes[:0]
	if s.dirtyW1 == nil {
		s.dirtyW1 = make(map[model.WorkerID]bool)
		s.dirtyT2 = make(map[model.TaskID]bool)
		s.dirtyT3 = make(map[model.TaskID]bool)
		s.dirtyW4 = make(map[model.WorkerID]bool)
		return
	}
	clear(s.dirtyW1)
	clear(s.dirtyT2)
	clear(s.dirtyT3)
	clear(s.dirtyW4)
}

// sortedIDs refills dst with m's keys in ascending order.
func sortedIDs[T ~string](dst []T, m map[T]bool) []T {
	dst = dst[:0]
	for id := range m {
		dst = append(dst, id)
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dst
}

// idStrings refills dst with ids projected onto plain strings, preserving
// order.
func idStrings[T ~string](dst []string, ids []T) []string {
	dst = dst[:0]
	for _, id := range ids {
		dst = append(dst, string(id))
	}
	return dst
}

// containsSortedStr reports membership of id in an ascending-sorted slice.
func containsSortedStr(ids []string, id string) bool {
	i := sort.SearchStrings(ids, id)
	return i < len(ids) && ids[i] == id
}

// pairSet is an adjacency-set census of the candidate pairs currently in
// scope for one pair axiom. A delta pass first evicts every pair touching a
// dirty subject, then folds in the pairs the pass actually examined
// (fairness.Report.CheckedPairs); pairs between two clean subjects cannot
// have entered or left the candidate set, so the census count always equals
// the Checked of a full scan over the current state.
type pairSet struct {
	adj   map[string]map[string]bool
	count int
}

func newPairSet() *pairSet { return &pairSet{adj: make(map[string]map[string]bool)} }

// dropDirty evicts every pair with at least one endpoint in dirty.
func (p *pairSet) dropDirty(dirty []string) {
	for _, d := range dirty {
		partners := p.adj[d]
		if partners == nil {
			continue
		}
		for q := range partners {
			p.count--
			if qa := p.adj[q]; qa != nil {
				delete(qa, d)
				if len(qa) == 0 {
					delete(p.adj, q)
				}
			}
		}
		delete(p.adj, d)
	}
}

// add folds in examined pairs, ignoring ones already present.
func (p *pairSet) add(pairs [][2]string) {
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		if p.adj[a][b] {
			continue
		}
		if p.adj[a] == nil {
			p.adj[a] = make(map[string]bool)
		}
		if p.adj[b] == nil {
			p.adj[b] = make(map[string]bool)
		}
		p.adj[a][b] = true
		p.adj[b][a] = true
		p.count++
	}
}

// New returns an engine over the given trace. cfg parameterises the
// checkers exactly as in fairness.CheckAll; the engine attaches its own
// similarity cache (any caller-provided cfg.Memo is replaced), its own
// incrementally maintained candidate provider (any caller-provided
// cfg.Candidates is replaced), and turns on candidate-pair recording for
// the Checked census.
func New(st *store.Store, log *eventlog.Log, cfg fairness.Config) *Engine {
	e := &Engine{st: st, log: log, cache: NewCache(st)}
	e.plan = cfg.Plan()
	cfg.Memo = e.cache
	cfg.Candidates = engineProvider{e}
	cfg.RecordCheckedPairs = true
	e.cfg = cfg
	e.reset()
	return e
}

// Cache exposes the engine's similarity cache (for stats and cap tuning).
func (e *Engine) Cache() *Cache { return e.cache }

// PairScores scores every contribution pair in similarity.PairAt order
// through the engine's cache — the hook pay.SimilarityFair.PairScores
// expects. With the exact backend every pair is scored; with the LSH
// backend only the index's candidate pairs are scored and the rest are
// zero (below any threshold), so payment-side clustering reuses the same
// pruned candidate generation as the audit. The pay scheme's similarity
// threshold must be at or above the audit's ContributionThreshold for the
// pruning to be sound.
func (e *Engine) PairScores(contribs []*model.Contribution) []float64 {
	if e.plan.Kind != fairness.CandidateLSH {
		return e.cache.PairScores(contribs)
	}
	ks, _ := e.plan.ContribCandidates(contribs)
	return e.cache.pairScoresFiltered(contribs, ks)
}

// engineProvider adapts the engine's maintained indexes to
// fairness.CandidateProvider. It is only consulted by checkers the engine
// itself invokes while holding e.mu (or from the per-task Axiom 3 fold,
// which touches no index state), so reads never race index maintenance.
type engineProvider struct{ e *Engine }

// WorkerPairs implements fairness.CandidateProvider.
func (p engineProvider) WorkerPairs(yield func(a, b model.WorkerID)) {
	p.e.workerIx.Pairs(func(a, b string) { yield(model.WorkerID(a), model.WorkerID(b)) })
}

// WorkerPartners implements fairness.CandidateProvider.
func (p engineProvider) WorkerPartners(id model.WorkerID, yield func(q model.WorkerID)) {
	p.e.workerIx.Partners(string(id), func(q string) { yield(model.WorkerID(q)) })
}

// TaskPairs implements fairness.CandidateProvider.
func (p engineProvider) TaskPairs(yield func(a, b model.TaskID)) {
	p.e.taskIx.Pairs(func(a, b string) { yield(model.TaskID(a), model.TaskID(b)) })
}

// TaskPartners implements fairness.CandidateProvider.
func (p engineProvider) TaskPartners(id model.TaskID, yield func(q model.TaskID)) {
	p.e.taskIx.Partners(string(id), func(q string) { yield(model.TaskID(q)) })
}

// ContribPairs implements fairness.CandidateProvider.
func (p engineProvider) ContribPairs(_ model.TaskID, contribs []*model.Contribution) ([]int, bool) {
	return p.e.plan.ContribCandidates(contribs)
}

func (e *Engine) reset() {
	e.primed = false
	e.workerIx = nil
	e.taskIx = nil
	e.cursors = make([]uint64, e.st.ShardCount())
	e.cursor = eventlog.NewCursor(e.log)
	e.access = fairness.NewAccessIndex()
	e.flagged = make(map[model.WorkerID]bool)
	e.ax5 = fairness.NewAxiom5Stream()
	e.ax1Viol = nil
	e.ax1Census = newPairSet()
	e.ax2Viol = nil
	e.ax2Census = newPairSet()
	e.ax3 = make(map[model.TaskID][]fairness.Violation)
	e.ax3Checked = make(map[model.TaskID]int)
	e.ax4 = make(map[model.WorkerID]fairness.Violation)
	e.ax4Eligible = make(map[model.WorkerID]bool)
}

// Audit brings the engine up to date with the trace and returns the five
// axiom reports in axiom order. The first call (and any call that finds a
// shard's changelog truncated past the engine's cursor) runs the full
// cold-start scan; subsequent calls re-check only dirty pairs.
func (e *Engine) Audit() []*fairness.Report {
	e.mu.Lock()
	defer e.mu.Unlock()

	// The version bracket must be read before any entity snapshot so the
	// cache never stores a score under a revision newer than the data it
	// was computed from (see Cache).
	passVer := e.st.Version()
	e.cache.BeginPass(passVer)

	if !e.primed {
		return e.rebuild()
	}
	if n := e.st.ShardCount(); len(e.cursors) != n {
		// A reshard changed the shard width underneath us. Changelog
		// records kept their versions when the handoff moved them between
		// rings, so the engine survives the epoch change without a cold
		// rebuild: restart every new-layout cursor at the lowest old
		// cursor — re-delivered changes only re-dirty entities whose
		// verdicts are then recomputed to identical values — and let the
		// per-shard truncation check below decide whether ring retention
		// actually covers the replayed span.
		low := e.cursors[0]
		for _, c := range e.cursors[1:] {
			if c < low {
				low = c
			}
		}
		e.cursors = make([]uint64, n)
		for i := range e.cursors {
			e.cursors[i] = low
		}
	}
	sc := &e.scr
	sc.begin()
	for i := range e.cursors {
		ch, ok := e.st.ShardChangesSince(i, e.cursors[i])
		if !ok {
			// Fell behind this shard's retention window: mutations were
			// lost, dirty sets would be incomplete. Start over.
			e.reset()
			return e.rebuild()
		}
		if len(ch) > 0 {
			e.cursors[i] = ch[len(ch)-1].Version
		}
		sc.changes = append(sc.changes, ch...)
	}

	for _, c := range sc.changes {
		switch c.Entity {
		case store.EntityWorker:
			sc.dirtyW1[c.Worker] = true // attrs/skills moved
			sc.dirtyW4[c.Worker] = true
		case store.EntityTask:
			sc.dirtyT2[c.Task] = true // new task or content moved
		case store.EntityContribution:
			sc.dirtyT3[c.Task] = true // contribution set moved
		}
	}
	// Re-tokenise exactly the entities the changelog touched, before any
	// checker consults the indexes. Offer events (below) dirty workers and
	// tasks too, but offers never change an entity's tokens, so only
	// changelog deltas reach the indexes.
	e.refreshIndexes(sc.dirtyW1, sc.dirtyT2)
	for _, ev := range e.cursor.Next() {
		if e.access.Observe(ev) {
			sc.dirtyW1[ev.Worker] = true
			sc.dirtyT2[ev.Task] = true
		}
		if ev.Type == eventlog.WorkerFlagged && !e.flagged[ev.Worker] {
			e.flagged[ev.Worker] = true
			sc.dirtyW4[ev.Worker] = true
		}
		e.ax5.Observe(ev)
	}
	sc.w1 = sortedIDs(sc.w1, sc.dirtyW1)
	sc.t2 = sortedIDs(sc.t2, sc.dirtyT2)
	sc.t3 = sortedIDs(sc.t3, sc.dirtyT3)
	sc.w4 = sortedIDs(sc.w4, sc.dirtyW4)
	sc.s1 = idStrings(sc.s1, sc.w1)
	sc.s2 = idStrings(sc.s2, sc.t2)

	// The five axiom passes form a task graph over disjoint engine state —
	// task t reads the shared immutable prologue products (access index,
	// candidate indexes, flag set, dirty slices) and writes only its own
	// axiom's verdicts — so they fan out on the bounded pool. Each task's
	// internal fan-outs nest under the same token budget; on a saturated
	// pool they simply run inline. All task outputs are deterministic, so
	// the assembled report set is too.
	var out1, out2, out5 *fairness.Report
	par.Do(5, 0, func(t int) {
		switch t {
		case 0:
			rep1 := fairness.CheckAxiom1DeltaIndexed(e.st, e.access, e.cfg, sc.w1)
			e.ax1Census.dropDirty(sc.s1)
			e.ax1Census.add(rep1.CheckedPairs)
			out1, e.ax1Viol = mergePairReport(e.ax1Viol, sc.s1, rep1, e.ax1Census.count)
		case 1:
			rep2 := fairness.CheckAxiom2DeltaIndexed(e.st, e.access, e.cfg, sc.t2)
			e.ax2Census.dropDirty(sc.s2)
			e.ax2Census.add(rep2.CheckedPairs)
			out2, e.ax2Viol = mergePairReport(e.ax2Viol, sc.s2, rep2, e.ax2Census.count)
		case 2:
			e.foldTasks(sc.t3)
		case 3:
			e.foldWorkers(sc.w4)
		case 4:
			out5 = e.ax5.Report()
		}
	})
	return []*fairness.Report{
		out1,
		out2,
		e.report3(),
		e.report4(),
		out5,
	}
}

// rebuild is the cold-start/catch-up path: consume the whole trace, run the
// full-scan checkers over the maintained access index, and seed the
// per-task and per-worker state for Axioms 3–4 (folded shard-parallel on
// the bounded pool).
func (e *Engine) rebuild() []*fairness.Report {
	// Per-shard cursors are seeded from the shard watermarks, read before
	// any entity scan: a mutation not yet covered by its watermark is
	// re-delivered on the next pass, never skipped.
	for i := range e.cursors {
		e.cursors[i] = e.st.ShardVersion(i)
	}
	for _, ev := range e.cursor.Next() {
		e.access.Observe(ev)
		if ev.Type == eventlog.WorkerFlagged {
			e.flagged[ev.Worker] = true
		}
		e.ax5.Observe(ev)
	}
	e.buildIndexes()
	e.primed = true

	allTasks := make([]model.TaskID, 0, 64)
	allWorkers := make([]model.WorkerID, 0, 64)
	for _, t := range e.st.Tasks() {
		allTasks = append(allTasks, t.ID)
	}
	for _, w := range e.st.Workers() {
		allWorkers = append(allWorkers, w.ID)
	}
	sort.Slice(allTasks, func(i, j int) bool { return allTasks[i] < allTasks[j] })
	sort.Slice(allWorkers, func(i, j int) bool { return allWorkers[i] < allWorkers[j] })

	// Same task-graph shape as the delta pass (Axiom 5 already folded its
	// events above): four full passes over disjoint engine state.
	var rep1, rep2 *fairness.Report
	par.Do(4, 0, func(t int) {
		switch t {
		case 0:
			rep1 = fairness.CheckAxiom1Indexed(e.st, e.access, e.cfg)
			e.ax1Viol = rep1.Violations
			e.ax1Census.add(rep1.CheckedPairs)
			rep1.CheckedPairs = nil
		case 1:
			rep2 = fairness.CheckAxiom2Indexed(e.st, e.access, e.cfg)
			e.ax2Viol = rep2.Violations
			e.ax2Census.add(rep2.CheckedPairs)
			rep2.CheckedPairs = nil
		case 2:
			e.foldTasks(allTasks)
		case 3:
			e.foldWorkers(allWorkers)
		}
	})
	return []*fairness.Report{rep1, rep2, e.report3(), e.report4(), e.ax5.Report()}
}

// buildIndexes constructs the worker and task candidate indexes from the
// current store snapshots, fanning LSH signature hashing out on the
// bounded pool. Any entity mutated after the snapshot is above a shard
// watermark read earlier, so its change is re-delivered to the next pass
// and the index upsert reconciles then.
func (e *Engine) buildIndexes() {
	ws := e.st.Workers()
	wix := e.plan.NewWorkerIndex()
	fairness.PopulateIndex(wix, len(ws), func(i int) string { return string(ws[i].ID) },
		func(i int) []uint64 { return e.plan.WorkerTokens(ws[i]) })
	e.workerIx = wix
	ts := e.st.Tasks()
	tix := e.plan.NewTaskIndex()
	fairness.PopulateIndex(tix, len(ts), func(i int) string { return string(ts[i].ID) },
		func(i int) []uint64 { return e.plan.TaskTokens(ts[i]) })
	e.taskIx = tix
}

// refreshIndexes re-tokenises the entities one delta pass found changed.
// Signatures are pure functions of entity content (plus the seed), so an
// incremental upsert leaves the index exactly as a from-scratch build over
// the current state would — the property that keeps delta audits equal to
// full ones and warm restarts equal to cold starts.
func (e *Engine) refreshIndexes(workers map[model.WorkerID]bool, tasks map[model.TaskID]bool) {
	for id := range workers {
		if w, err := e.st.Worker(id); err == nil {
			e.workerIx.Upsert(string(id), e.plan.WorkerTokens(w))
		} else {
			e.workerIx.Remove(string(id))
		}
	}
	for id := range tasks {
		if t, err := e.st.Task(id); err == nil {
			e.taskIx.Upsert(string(id), e.plan.TaskTokens(t))
		} else {
			e.taskIx.Remove(string(id))
		}
	}
}

// mergePairReport folds a delta pass into the maintained sorted violation
// slice: stored violations touching a dirty subject (dirty is sorted
// ascending) are dropped — the delta re-examined those pairs — the pass's
// findings, all dirty-touching and so disjoint from what is kept, are
// merged in by order, and the report carries the census count as its
// full-scan-equal Checked. Both the returned report and the returned slice
// alias the merged storage; the engine never mutates it afterwards, so
// handing it to the caller is safe.
func mergePairReport(prev []fairness.Violation, dirty []string, rep *fairness.Report, checked int) (*fairness.Report, []fairness.Violation) {
	kept := make([]fairness.Violation, 0, len(prev)+len(rep.Violations))
	for _, v := range prev {
		if containsSortedStr(dirty, v.Subjects[0]) || containsSortedStr(dirty, v.Subjects[1]) {
			continue
		}
		kept = append(kept, v)
	}
	merged := mergeViolations(kept, rep.Violations)
	return &fairness.Report{Axiom: rep.Axiom, Checked: checked, Violations: merged}, merged
}

// mergeViolations merges two violation runs already in ViolationLess order.
func mergeViolations(a, b []fairness.Violation) []fairness.Violation {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]fairness.Violation, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if fairness.ViolationLess(a[i], b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// foldTasks replaces the stored Axiom 3 verdict of every task in ids
// (sorted ascending). The per-task checks are independent (disjoint
// contribution sets, a concurrency-safe memo), so the batch checker fans
// them out on the bounded pool; the fold into engine state stays sequential
// in ids order.
func (e *Engine) foldTasks(ids []model.TaskID) {
	audits := fairness.CheckAxiom3Tasks(e.st, e.cfg, ids)
	for i := range audits {
		a := &audits[i]
		e.ax3Checked[a.Task] = a.Checked
		if len(a.Violations) > 0 {
			e.ax3[a.Task] = a.Violations
		} else {
			delete(e.ax3, a.Task)
		}
	}
}

// foldWorkers replaces the stored Axiom 4 verdict of every worker in ids
// (sorted ascending), fanning the per-worker checks out like foldTasks.
func (e *Engine) foldWorkers(ids []model.WorkerID) {
	audits := fairness.CheckAxiom4Workers(e.st, e.flagged, ids)
	for i := range audits {
		a := &audits[i]
		if a.Checked > 0 {
			e.ax4Eligible[a.Worker] = true
		} else {
			delete(e.ax4Eligible, a.Worker)
		}
		if len(a.Violations) > 0 {
			e.ax4[a.Worker] = a.Violations[0]
		} else {
			delete(e.ax4, a.Worker)
		}
	}
}

func (e *Engine) report3() *fairness.Report {
	rep := &fairness.Report{Axiom: fairness.Axiom3Compensation}
	for _, n := range e.ax3Checked {
		rep.Checked += n
	}
	for _, vs := range e.ax3 {
		rep.Violations = append(rep.Violations, vs...)
	}
	fairness.SortViolations(rep.Violations)
	return rep
}

func (e *Engine) report4() *fairness.Report {
	rep := &fairness.Report{Axiom: fairness.Axiom4MaliciousDetection, Checked: len(e.ax4Eligible)}
	for _, v := range e.ax4 {
		rep.Violations = append(rep.Violations, v)
	}
	fairness.SortViolations(rep.Violations)
	return rep
}

// ViolationsEqual reports whether two report sets agree axiom by axiom on
// their rendered violations — the equivalence the engine guarantees against
// fairness.CheckAll. Checked counts are not compared here (the engine's
// Checked parity with the full scan is asserted separately in the tests).
func ViolationsEqual(a, b []*fairness.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Axiom != b[i].Axiom || len(a[i].Violations) != len(b[i].Violations) {
			return false
		}
		for j := range a[i].Violations {
			if a[i].Violations[j].String() != b[i].Violations[j].String() {
				return false
			}
		}
	}
	return true
}
