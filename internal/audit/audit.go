// Package audit is the incremental fairness-audit engine: the subsystem
// that turns the paper's batch audits into the continuous monitoring loop a
// long-lived platform needs. A full AuditFairness pass re-scans every
// candidate pair on every call — quadratic per tick, untenable alongside
// live traffic. Engine instead subscribes to the store's changelog
// (store.ChangesSince) and the event log's cursor, computes per-axiom dirty
// sets — workers whose attributes or offer sets moved, tasks whose
// audiences or contribution sets moved — and re-checks only pairs with at
// least one dirty endpoint, maintaining the violation set across passes.
//
// Guarantee: after any sequence of mutations, Audit reports exactly the
// violations a full fairness.CheckAll over the same trace reports (the
// determinism tests pin this down pair by pair). Report.Checked is exact
// for Axioms 3–5; for Axioms 1–2 it counts the pairs the delta pass
// actually examined — the engine's work, not the full scan's.
//
// A revision-keyed similarity cache (Cache) is shared across Axioms 1–3,
// so even the pairs a dirty entity drags back into scope only recompute the
// similarity legs that actually moved. When the engine falls behind the
// changelog's retention window it falls back to a full rebuild — the cold
// start and the catch-up path are the same code.
package audit

import (
	"sort"
	"sync"

	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/store"
)

// Engine maintains incremental audit state over one store + event log.
// Construct with New. Audit is safe to call concurrently with store and log
// mutation (each pass sees some consistent recent state, and a pass issued
// after mutation stops reflects every mutation); concurrent Audit calls
// serialise on an internal mutex.
type Engine struct {
	mu    sync.Mutex
	st    *store.Store
	log   *eventlog.Log
	cfg   fairness.Config
	cache *Cache

	primed  bool
	version uint64 // store version through which changes are folded in
	cursor  *eventlog.Cursor
	access  *fairness.AccessIndex
	flagged map[model.WorkerID]bool
	ax5     *fairness.Axiom5Stream

	// Maintained verdicts. Axioms 1/2 key violations by subject pair;
	// Axiom 3 stores per-task results; Axiom 4 per-worker results plus the
	// eligibility set that makes its Checked count exact.
	ax1         map[subjectPair]fairness.Violation
	ax2         map[subjectPair]fairness.Violation
	ax3         map[model.TaskID][]fairness.Violation
	ax3Checked  map[model.TaskID]int
	ax4         map[model.WorkerID]fairness.Violation
	ax4Eligible map[model.WorkerID]bool
}

type subjectPair struct{ a, b string }

// New returns an engine over the given trace. cfg parameterises the
// checkers exactly as in fairness.CheckAll; the engine attaches its own
// similarity cache (any caller-provided cfg.Memo is replaced).
func New(st *store.Store, log *eventlog.Log, cfg fairness.Config) *Engine {
	e := &Engine{st: st, log: log, cache: NewCache(st)}
	cfg.Memo = e.cache
	e.cfg = cfg
	e.reset()
	return e
}

// Cache exposes the engine's similarity cache (for stats and cap tuning).
func (e *Engine) Cache() *Cache { return e.cache }

func (e *Engine) reset() {
	e.primed = false
	e.version = 0
	e.cursor = eventlog.NewCursor(e.log)
	e.access = fairness.NewAccessIndex()
	e.flagged = make(map[model.WorkerID]bool)
	e.ax5 = fairness.NewAxiom5Stream()
	e.ax1 = make(map[subjectPair]fairness.Violation)
	e.ax2 = make(map[subjectPair]fairness.Violation)
	e.ax3 = make(map[model.TaskID][]fairness.Violation)
	e.ax3Checked = make(map[model.TaskID]int)
	e.ax4 = make(map[model.WorkerID]fairness.Violation)
	e.ax4Eligible = make(map[model.WorkerID]bool)
}

// Audit brings the engine up to date with the trace and returns the five
// axiom reports in axiom order. The first call (and any call that finds the
// changelog truncated past the engine's position) runs the full cold-start
// scan; subsequent calls re-check only dirty pairs.
func (e *Engine) Audit() []*fairness.Report {
	e.mu.Lock()
	defer e.mu.Unlock()

	// The version bracket must be read before any entity snapshot so the
	// cache never stores a score under a revision newer than the data it
	// was computed from (see Cache).
	passVer := e.st.Version()
	e.cache.BeginPass(passVer)

	if !e.primed {
		return e.rebuild(passVer)
	}
	changes, ok := e.st.ChangesSince(e.version)
	if !ok {
		// Fell behind the changelog's retention window: mutations were
		// lost, dirty sets would be incomplete. Start over.
		e.reset()
		return e.rebuild(passVer)
	}
	if len(changes) > 0 {
		e.version = changes[len(changes)-1].Version
	}

	dirtyW1 := make(map[model.WorkerID]bool) // attrs/skills/offers moved
	dirtyT2 := make(map[model.TaskID]bool)   // new task or audience moved
	dirtyT3 := make(map[model.TaskID]bool)   // contribution set moved
	dirtyW4 := make(map[model.WorkerID]bool) // attrs moved or newly flagged
	for _, c := range changes {
		switch c.Entity {
		case store.EntityWorker:
			dirtyW1[c.Worker] = true
			dirtyW4[c.Worker] = true
		case store.EntityTask:
			dirtyT2[c.Task] = true
		case store.EntityContribution:
			dirtyT3[c.Task] = true
		}
	}
	for _, ev := range e.cursor.Next() {
		if e.access.Observe(ev) {
			dirtyW1[ev.Worker] = true
			dirtyT2[ev.Task] = true
		}
		if ev.Type == eventlog.WorkerFlagged && !e.flagged[ev.Worker] {
			e.flagged[ev.Worker] = true
			dirtyW4[ev.Worker] = true
		}
		e.ax5.Observe(ev)
	}

	rep1 := fairness.CheckAxiom1DeltaIndexed(e.st, e.access, e.cfg, dirtyW1)
	rep2 := fairness.CheckAxiom2DeltaIndexed(e.st, e.access, e.cfg, dirtyT2)
	e.foldTasks(dirtyT3)
	e.foldWorkers(dirtyW4)
	return []*fairness.Report{
		e.mergePairs(e.ax1, stringKeys(dirtyW1), rep1),
		e.mergePairs(e.ax2, stringKeys(dirtyT2), rep2),
		e.report3(),
		e.report4(),
		e.ax5.Report(),
	}
}

// rebuild is the cold-start/catch-up path: consume the whole trace, run the
// full-scan checkers over the maintained access index, and seed the
// per-task and per-worker state for Axioms 3–4.
func (e *Engine) rebuild(passVer uint64) []*fairness.Report {
	for _, ev := range e.cursor.Next() {
		e.access.Observe(ev)
		if ev.Type == eventlog.WorkerFlagged {
			e.flagged[ev.Worker] = true
		}
		e.ax5.Observe(ev)
	}
	e.version = passVer
	e.primed = true

	rep1 := fairness.CheckAxiom1Indexed(e.st, e.access, e.cfg)
	for _, v := range rep1.Violations {
		e.ax1[subjectPair{v.Subjects[0], v.Subjects[1]}] = v
	}
	rep2 := fairness.CheckAxiom2Indexed(e.st, e.access, e.cfg)
	for _, v := range rep2.Violations {
		e.ax2[subjectPair{v.Subjects[0], v.Subjects[1]}] = v
	}
	allTasks := make(map[model.TaskID]bool)
	allWorkers := make(map[model.WorkerID]bool)
	for _, t := range e.st.Tasks() {
		allTasks[t.ID] = true
	}
	for _, w := range e.st.Workers() {
		allWorkers[w.ID] = true
	}
	e.foldTasks(allTasks)
	e.foldWorkers(allWorkers)
	return []*fairness.Report{rep1, rep2, e.report3(), e.report4(), e.ax5.Report()}
}

// mergePairs drops every stored pair violation touching a dirty subject,
// folds in the delta pass's findings, and renders the merged report.
func (e *Engine) mergePairs(state map[subjectPair]fairness.Violation, dirty map[string]bool, rep *fairness.Report) *fairness.Report {
	for k := range state {
		if dirty[k.a] || dirty[k.b] {
			delete(state, k)
		}
	}
	for _, v := range rep.Violations {
		state[subjectPair{v.Subjects[0], v.Subjects[1]}] = v
	}
	out := &fairness.Report{Axiom: rep.Axiom, Checked: rep.Checked}
	for _, v := range state {
		out.Violations = append(out.Violations, v)
	}
	fairness.SortViolations(out.Violations)
	return out
}

// stringKeys projects a dirty-id set onto the violation subjects' string
// domain.
func stringKeys[T ~string](m map[T]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for id := range m {
		out[string(id)] = true
	}
	return out
}

// foldTasks replaces the stored Axiom 3 verdict of every dirty task.
func (e *Engine) foldTasks(dirty map[model.TaskID]bool) {
	ids := make([]model.TaskID, 0, len(dirty))
	for id := range dirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rep := fairness.CheckAxiom3Delta(e.st, e.cfg, map[model.TaskID]bool{id: true})
		e.ax3Checked[id] = rep.Checked
		if len(rep.Violations) > 0 {
			e.ax3[id] = rep.Violations
		} else {
			delete(e.ax3, id)
		}
	}
}

// foldWorkers replaces the stored Axiom 4 verdict of every dirty worker.
func (e *Engine) foldWorkers(dirty map[model.WorkerID]bool) {
	ids := make([]model.WorkerID, 0, len(dirty))
	for id := range dirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rep := fairness.CheckAxiom4Flagged(e.st, e.flagged, map[model.WorkerID]bool{id: true})
		if rep.Checked > 0 {
			e.ax4Eligible[id] = true
		} else {
			delete(e.ax4Eligible, id)
		}
		if len(rep.Violations) > 0 {
			e.ax4[id] = rep.Violations[0]
		} else {
			delete(e.ax4, id)
		}
	}
}

func (e *Engine) report3() *fairness.Report {
	rep := &fairness.Report{Axiom: fairness.Axiom3Compensation}
	for _, n := range e.ax3Checked {
		rep.Checked += n
	}
	for _, vs := range e.ax3 {
		rep.Violations = append(rep.Violations, vs...)
	}
	fairness.SortViolations(rep.Violations)
	return rep
}

func (e *Engine) report4() *fairness.Report {
	rep := &fairness.Report{Axiom: fairness.Axiom4MaliciousDetection, Checked: len(e.ax4Eligible)}
	for _, v := range e.ax4 {
		rep.Violations = append(rep.Violations, v)
	}
	fairness.SortViolations(rep.Violations)
	return rep
}

// ViolationsEqual reports whether two report sets agree axiom by axiom on
// their rendered violations — the equivalence the engine guarantees against
// fairness.CheckAll. Checked counts are not compared (the engine's Checked
// is delta work for Axioms 1–2).
func ViolationsEqual(a, b []*fairness.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Axiom != b[i].Axiom || len(a[i].Violations) != len(b[i].Violations) {
			return false
		}
		for j := range a[i].Violations {
			if a[i].Violations[j].String() != b[i].Violations[j].String() {
				return false
			}
		}
	}
	return true
}
