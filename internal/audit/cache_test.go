package audit

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/similarity"
	"repro/internal/store"
)

// TestCachePairScoresMemoizes pins the PairScores kernel contract: results
// equal the uncached similarity kernel, repeated calls over unchanged
// contributions are pure cache hits (per-call version bracket, no
// BeginPass needed), and mutating one contribution invalidates exactly its
// own pairs.
func TestCachePairScoresMemoizes(t *testing.T) {
	u := model.MustUniverse("go")
	st := store.NewSharded(u, 4)
	if err := st.PutRequester(&model.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutWorker(&model.Worker{ID: "w1", Skills: u.MustVector("go")}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutTask(&model.Task{ID: "t1", Requester: "r1", Skills: u.MustVector("go")}); err != nil {
		t.Fatal(err)
	}
	texts := []string{"the canonical answer", "the canonical answer", "something else", "yet another thing"}
	contribs := make([]*model.Contribution, len(texts))
	for i, txt := range texts {
		contribs[i] = &model.Contribution{
			ID: model.ContributionID(fmt.Sprintf("c%d", i)), Task: "t1", Worker: "w1",
			Text: txt, Quality: 0.5,
		}
		if err := st.PutContribution(contribs[i]); err != nil {
			t.Fatal(err)
		}
	}

	c := NewCache(st)
	got := c.PairScores(contribs)
	want := similarity.ContributionPairScores(contribs)
	if len(got) != len(want) {
		t.Fatalf("scores: %d, want %d", len(got), len(want))
	}
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("score %d: %v, want %v", k, got[k], want[k])
		}
	}
	hits0, misses0 := c.Stats()
	if hits0 != 0 || misses0 != uint64(len(want)) {
		t.Fatalf("first call stats: hits %d, misses %d", hits0, misses0)
	}

	// Second call over unchanged contributions: all hits.
	second := c.PairScores(contribs)
	hits1, misses1 := c.Stats()
	if misses1 != misses0 || hits1 != uint64(len(want)) {
		t.Fatalf("second call stats: hits %d, misses %d", hits1, misses1)
	}
	for k := range second {
		if second[k] != want[k] {
			t.Fatalf("cached score %d: %v, want %v", k, second[k], want[k])
		}
	}

	// Mutating one contribution invalidates exactly its pairs (n-1 of
	// them); the rest stay hits.
	mut := contribs[0]
	mut.Paid = 1.5
	if err := st.UpdateContribution(mut); err != nil {
		t.Fatal(err)
	}
	c.PairScores(contribs)
	hits2, misses2 := c.Stats()
	if wantMiss := misses1 + uint64(len(contribs)-1); misses2 != wantMiss {
		t.Fatalf("post-mutation misses = %d, want %d", misses2, wantMiss)
	}
	if wantHit := hits1 + uint64(len(want)-(len(contribs)-1)); hits2 != wantHit {
		t.Fatalf("post-mutation hits = %d, want %d", hits2, wantHit)
	}
}
