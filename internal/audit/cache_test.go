package audit

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/similarity"
	"repro/internal/store"
)

// TestCachePairScoresMemoizes pins the PairScores kernel contract: results
// equal the uncached similarity kernel, repeated calls over unchanged
// contributions are pure cache hits (per-call version bracket, no
// BeginPass needed), and mutating one contribution invalidates exactly its
// own pairs.
func TestCachePairScoresMemoizes(t *testing.T) {
	u := model.MustUniverse("go")
	st := store.NewSharded(u, 4)
	if err := st.PutRequester(&model.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutWorker(&model.Worker{ID: "w1", Skills: u.MustVector("go")}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutTask(&model.Task{ID: "t1", Requester: "r1", Skills: u.MustVector("go")}); err != nil {
		t.Fatal(err)
	}
	texts := []string{"the canonical answer", "the canonical answer", "something else", "yet another thing"}
	contribs := make([]*model.Contribution, len(texts))
	for i, txt := range texts {
		contribs[i] = &model.Contribution{
			ID: model.ContributionID(fmt.Sprintf("c%d", i)), Task: "t1", Worker: "w1",
			Text: txt, Quality: 0.5,
		}
		if err := st.PutContribution(contribs[i]); err != nil {
			t.Fatal(err)
		}
	}

	c := NewCache(st)
	got := c.PairScores(contribs)
	want := similarity.ContributionPairScores(contribs)
	if len(got) != len(want) {
		t.Fatalf("scores: %d, want %d", len(got), len(want))
	}
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("score %d: %v, want %v", k, got[k], want[k])
		}
	}
	hits0, misses0 := c.Stats()
	if hits0 != 0 || misses0 != uint64(len(want)) {
		t.Fatalf("first call stats: hits %d, misses %d", hits0, misses0)
	}

	// Second call over unchanged contributions: all hits.
	second := c.PairScores(contribs)
	hits1, misses1 := c.Stats()
	if misses1 != misses0 || hits1 != uint64(len(want)) {
		t.Fatalf("second call stats: hits %d, misses %d", hits1, misses1)
	}
	for k := range second {
		if second[k] != want[k] {
			t.Fatalf("cached score %d: %v, want %v", k, second[k], want[k])
		}
	}

	// Mutating one contribution invalidates exactly its pairs (n-1 of
	// them); the rest stay hits.
	mut := contribs[0]
	mut.Paid = 1.5
	if err := st.UpdateContribution(mut); err != nil {
		t.Fatal(err)
	}
	c.PairScores(contribs)
	hits2, misses2 := c.Stats()
	if wantMiss := misses1 + uint64(len(contribs)-1); misses2 != wantMiss {
		t.Fatalf("post-mutation misses = %d, want %d", misses2, wantMiss)
	}
	if wantHit := hits1 + uint64(len(want)-(len(contribs)-1)); hits2 != wantHit {
		t.Fatalf("post-mutation hits = %d, want %d", hits2, wantHit)
	}
}

// TestCacheEvictionIsGenerationalAndDeterministic pins the bounded-cache
// contract: entries untouched since the previous BeginPass are swept when a
// full table takes a write, entries read or written in the current
// generation survive, and a working set exceeding the cap leaves the
// overflow entry uncached without counting an eviction. Every decision is
// per-entry, so the counters are reproducible run to run.
func TestCacheEvictionIsGenerationalAndDeterministic(t *testing.T) {
	u := model.MustUniverse("go")
	st := store.NewSharded(u, 4)
	if err := st.PutRequester(&model.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutWorker(&model.Worker{ID: "w1", Skills: u.MustVector("go")}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutTask(&model.Task{ID: "t1", Requester: "r1", Skills: u.MustVector("go")}); err != nil {
		t.Fatal(err)
	}
	ids := make([]model.ContributionID, 6)
	for i := range ids {
		ids[i] = model.ContributionID(fmt.Sprintf("c%d", i))
		err := st.PutContribution(&model.Contribution{ID: ids[i], Task: "t1", Worker: "w1", Text: "x"})
		if err != nil {
			t.Fatal(err)
		}
	}
	pair := func(c *Cache, i int) float64 {
		// Pair each id with a fixed partner so every i is a distinct key.
		return c.ContribPair(ids[i], ids[5], func() float64 { return float64(i) })
	}

	c := NewCache(st)
	c.SetCap(2)
	c.BeginPass(st.Version()) // generation 1
	pair(c, 0)
	pair(c, 1)
	if got := c.Len(); got != 2 {
		t.Fatalf("len after two writes = %d, want 2", got)
	}

	// Generation 2: a write into the full table sweeps both untouched
	// entries, then caches the newcomer.
	c.BeginPass(st.Version())
	pair(c, 2)
	if got := c.Counters().Evictions; got != 2 {
		t.Fatalf("evictions after sweep = %d, want 2", got)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("len after sweep = %d, want 1", got)
	}

	// Generation 3: a hit re-stamps its entry, so the next sweep spares it.
	pair(c, 3) // fill the table back to cap (gen 2)
	c.BeginPass(st.Version())
	pair(c, 2) // hit → gen 3
	pair(c, 4) // write into full table: sweeps only entry 3
	s := c.Counters()
	if s.Evictions != 3 {
		t.Fatalf("evictions after second sweep = %d, want 3", s.Evictions)
	}
	if s.Hits != 1 {
		t.Fatalf("hits = %d, want 1", s.Hits)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("len after second sweep = %d, want 2", got)
	}

	// Still within generation 3 the table is full of current-generation
	// entries: an overflow write is simply not cached — no eviction counted,
	// and the overflow key misses again on re-lookup.
	pair(c, 0)
	if got := c.Counters().Evictions; got != 3 {
		t.Fatalf("overflow counted as eviction: %d", got)
	}
	missesBefore := c.Counters().Misses
	pair(c, 0)
	if got := c.Counters().Misses; got != missesBefore+1 {
		t.Fatalf("overflow entry was cached: misses %d, want %d", got, missesBefore+1)
	}
	// The resident entries still hit.
	hitsBefore := c.Counters().Hits
	pair(c, 2)
	pair(c, 4)
	if got := c.Counters().Hits; got != hitsBefore+2 {
		t.Fatalf("resident entries missed: hits %d, want %d", got, hitsBefore+2)
	}
}

// TestCacheCapZeroDisables pins that a non-positive cap turns the cache
// into a pass-through: every lookup misses, nothing is stored.
func TestCacheCapZeroDisables(t *testing.T) {
	u := model.MustUniverse("go")
	st := store.NewSharded(u, 2)
	if err := st.PutRequester(&model.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutWorker(&model.Worker{ID: "w1", Skills: u.MustVector("go")}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutTask(&model.Task{ID: "t1", Requester: "r1", Skills: u.MustVector("go")}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []model.ContributionID{"a", "b"} {
		if err := st.PutContribution(&model.Contribution{ID: id, Task: "t1", Worker: "w1"}); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCache(st)
	c.SetCap(0)
	c.BeginPass(st.Version())
	for i := 0; i < 3; i++ {
		c.ContribPair("a", "b", func() float64 { return 1 })
	}
	s := c.Counters()
	if s.Hits != 0 || s.Misses != 3 || c.Len() != 0 {
		t.Fatalf("disabled cache: hits %d, misses %d, len %d", s.Hits, s.Misses, c.Len())
	}
}
