package audit

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/wal"
)

// durableScenario builds the usual audit scenario over a durable store and
// a durable event log rooted at dir.
func durableScenario(tb testing.TB, seed uint64, dir string, opts wal.Options) *scenario {
	tb.Helper()
	u := model.MustUniverse("go", "nlp", "vision", "audio")
	st, err := store.NewDurable(u, 4, dir, opts)
	if err != nil {
		tb.Fatal(err)
	}
	log, err := eventlog.OpenDurable(store.EventsDir(dir), opts)
	if err != nil {
		tb.Fatal(err)
	}
	s := &scenario{tb: tb, st: st, log: log, rng: stats.NewRNG(seed), u: u}
	for _, r := range []model.RequesterID{"r1", "r2", "r3"} {
		if err := s.st.PutRequester(&model.Requester{ID: r}); err != nil {
			tb.Fatal(err)
		}
		s.reqs = append(s.reqs, r)
	}
	return s
}

// checkpointWithAudit saves the engine state into a store checkpoint the
// way the crowdfair/sim layers do.
func checkpointWithAudit(tb testing.TB, st *store.Store, log *eventlog.Log, eng *Engine, cfg fairness.Config) *store.Manifest {
	tb.Helper()
	o, err := BuildCheckpointOptions(eng, cfg, log.Len())
	if err != nil {
		tb.Fatal(err)
	}
	if len(o.Audit) == 0 {
		tb.Fatal("engine state empty after audit")
	}
	man, err := st.Checkpoint(o)
	if err != nil {
		tb.Fatal(err)
	}
	return man
}

// resumeFromManifest recovers the engine from a manifest's audit blob.
func resumeFromManifest(tb testing.TB, st *store.Store, log *eventlog.Log, cfg fairness.Config, man *store.Manifest) *Engine {
	tb.Helper()
	if len(man.Audit) == 0 {
		tb.Fatal("manifest has no audit state")
	}
	var state State
	if err := json.Unmarshal(man.Audit, &state); err != nil {
		tb.Fatal(err)
	}
	eng, err := Resume(st, log, cfg, &state)
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

// TestResumeWarmEqualsCold is the acceptance-criterion test: simulate →
// checkpoint (with audit state) → more traffic → restart → warm Audit
// must report violations identical to a cold fairness.CheckAll over the
// recovered trace, with exact Checked parity.
func TestResumeWarmEqualsCold(t *testing.T) {
	dir := t.TempDir()
	opts := wal.Options{SegmentBytes: 8 << 10}
	s := durableScenario(t, 21, dir, opts)
	s.seed(60, 30, 300, 50)
	cfg := fairness.DefaultConfig()
	eng := New(s.st, s.log, cfg)
	eng.Audit()
	for i := 0; i < 60; i++ {
		s.mutate()
	}
	eng.Audit()
	checkpointWithAudit(t, s.st, s.log, eng, cfg)
	// Post-checkpoint traffic: this is the delta a warm restart replays.
	for i := 0; i < 40; i++ {
		s.mutate()
	}
	if err := s.st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.log.Close(); err != nil {
		t.Fatal(err)
	}

	st2, man, err := store.Open(dir, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	log2, err := eventlog.OpenDurable(store.EventsDir(dir), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()

	warm := resumeFromManifest(t, st2, log2, cfg, man)
	warmReports := warm.Audit()
	full := fairness.CheckAll(st2, log2, cfg)
	requireEquivalent(t, 0, warmReports, full)
	for i := range warmReports {
		if warmReports[i].Checked != full[i].Checked {
			t.Fatalf("%s: warm checked %d, full %d",
				warmReports[i].Axiom, warmReports[i].Checked, full[i].Checked)
		}
	}
	// Warm engine keeps auditing correctly as traffic continues.
	s2 := &scenario{tb: t, st: st2, log: log2, rng: stats.NewRNG(77), u: s.u, reqs: s.reqs}
	s2.wn, s2.tn, s2.cn = s.wn, s.tn, s.cn
	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			s2.mutate()
		}
		requireEquivalent(t, round+1, warm.Audit(), fairness.CheckAll(st2, log2, cfg))
	}
}

// TestResumeAfterTornRecord tears the final record off both the changelog
// and event WALs after the checkpoint: the warm restart over the recovered
// prefix must still match a cold full scan over that same prefix.
func TestResumeAfterTornRecord(t *testing.T) {
	dir := t.TempDir()
	opts := wal.Options{SegmentBytes: 1 << 20}
	s := durableScenario(t, 5, dir, opts)
	s.seed(40, 20, 200, 30)
	cfg := fairness.DefaultConfig()
	eng := New(s.st, s.log, cfg)
	eng.Audit()
	checkpointWithAudit(t, s.st, s.log, eng, cfg)
	for i := 0; i < 30; i++ {
		s.mutate()
	}
	if err := s.st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.log.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear a few bytes off the largest post-checkpoint changelog segment
	// and the event log's tail.
	tearTail(t, filepath.Join(store.WALDir(dir)), 3)
	tearTail(t, store.EventsDir(dir), 2)

	st2, man, err := store.Open(dir, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	log2, err := eventlog.OpenDurable(store.EventsDir(dir), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if man.Version > st2.Version() {
		t.Fatalf("recovered version %d below checkpoint %d", st2.Version(), man.Version)
	}

	warm := resumeFromManifest(t, st2, log2, cfg, man)
	warmReports := warm.Audit()
	full := fairness.CheckAll(st2, log2, cfg)
	requireEquivalent(t, 0, warmReports, full)
	for i := range warmReports {
		if warmReports[i].Checked != full[i].Checked {
			t.Fatalf("%s after tear: warm checked %d, full %d",
				warmReports[i].Axiom, warmReports[i].Checked, full[i].Checked)
		}
	}
}

// tearTail truncates the largest final segment found under root (walking
// one directory level of shard dirs, or root itself) by n bytes.
func tearTail(t *testing.T, root string, n int64) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(root, "seg-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	nested, err := filepath.Glob(filepath.Join(root, "*", "seg-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	segs = append(segs, nested...)
	best, bestSize := "", int64(-1)
	for _, seg := range segs {
		info, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > bestSize {
			best, bestSize = seg, info.Size()
		}
	}
	if best == "" || bestSize < n {
		t.Fatalf("no tearable segment under %s", root)
	}
	if err := os.Truncate(best, bestSize-n); err != nil {
		t.Fatal(err)
	}
}

// TestResumeRejectsMismatchedShape pins the defensive checks: wrong cursor
// counts or an event position beyond the log must refuse to resume.
func TestResumeRejectsMismatchedShape(t *testing.T) {
	s := newScenario(t, 3)
	s.seed(10, 5, 20, 5)
	cfg := fairness.DefaultConfig()
	if _, err := Resume(s.st, s.log, cfg, nil); err == nil {
		t.Fatal("nil state resumed")
	}
	if _, err := Resume(s.st, s.log, cfg, &State{Cursors: []uint64{1}}); err == nil {
		t.Fatal("cursor-count mismatch resumed")
	}
	bad := &State{Cursors: make([]uint64, s.st.ShardCount()), EventPos: s.log.Len() + 1}
	if _, err := Resume(s.st, s.log, cfg, bad); err == nil {
		t.Fatal("event position beyond log resumed")
	}
}

// TestStateRoundTripsThroughJSON pins that a state survives the manifest
// embedding byte-for-byte semantically: resuming from a decoded copy gives
// the same first-audit reports as resuming from the original.
func TestStateRoundTripsThroughJSON(t *testing.T) {
	s := newScenario(t, 9)
	s.seed(40, 20, 150, 30)
	cfg := fairness.DefaultConfig()
	eng := New(s.st, s.log, cfg)
	eng.Audit()
	for i := 0; i < 30; i++ {
		s.mutate()
	}
	eng.Audit()
	state := eng.State()
	blob, err := json.Marshal(state)
	if err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		s.mutate()
	}
	a, err := Resume(s.st, s.log, cfg, state)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resume(s.st, s.log, cfg, &decoded)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Audit(), b.Audit()
	requireEquivalent(t, 0, ra, rb)
	requireEquivalent(t, 1, ra, fairness.CheckAll(s.st, s.log, cfg))
}
