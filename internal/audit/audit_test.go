package audit

import (
	"fmt"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/store"
)

// scenario drives a deterministic random mutation stream over a store +
// log, shaped so every axiom has live material: few skill patterns (many
// similar workers), few reward buckets (comparable tasks), few text
// variants (similar contributions), biased offers, occasional flags.
type scenario struct {
	tb   testing.TB
	st   *store.Store
	log  *eventlog.Log
	rng  *stats.RNG
	u    *model.Universe
	wn   int
	tn   int
	cn   int
	reqs []model.RequesterID
}

func newScenario(tb testing.TB, seed uint64) *scenario {
	return newScenarioSharded(tb, seed, 0)
}

// newScenarioSharded builds the scenario over a store with the given shard
// count (0: the default sharding).
func newScenarioSharded(tb testing.TB, seed uint64, shards int) *scenario {
	u := model.MustUniverse("go", "nlp", "vision", "audio")
	st := store.New(u)
	if shards > 0 {
		st = store.NewSharded(u, shards)
	}
	s := &scenario{
		tb: tb, st: st, log: eventlog.New(),
		rng: stats.NewRNG(seed), u: u,
	}
	for _, r := range []model.RequesterID{"r1", "r2", "r3"} {
		if err := s.st.PutRequester(&model.Requester{ID: r}); err != nil {
			tb.Fatal(err)
		}
		s.reqs = append(s.reqs, r)
	}
	return s
}

var skillPatterns = [][]string{{"go"}, {"nlp"}, {"go", "nlp"}, {"vision"}}

func (s *scenario) addWorker() model.WorkerID {
	s.wn++
	id := model.WorkerID(fmt.Sprintf("w%05d", s.wn))
	pat := skillPatterns[s.rng.Intn(len(skillPatterns))]
	w := &model.Worker{
		ID:       id,
		Declared: model.Attributes{"country": model.Str([]string{"jp", "fr"}[s.rng.Intn(2)])},
		Computed: model.Attributes{model.AttrAcceptanceRatio: model.Num([]float64{0.3, 0.8}[s.rng.Intn(2)])},
		Skills:   s.u.MustVector(pat...),
	}
	if err := s.st.PutWorker(w); err != nil {
		s.tb.Fatal(err)
	}
	return id
}

func (s *scenario) addTask() model.TaskID {
	s.tn++
	id := model.TaskID(fmt.Sprintf("t%05d", s.tn))
	pat := skillPatterns[s.rng.Intn(len(skillPatterns))]
	t := &model.Task{
		ID:        id,
		Requester: s.reqs[s.rng.Intn(len(s.reqs))],
		Skills:    s.u.MustVector(pat...),
		Reward:    []float64{1.0, 1.02, 3.0}[s.rng.Intn(3)],
	}
	if err := s.st.PutTask(t); err != nil {
		s.tb.Fatal(err)
	}
	return id
}

func (s *scenario) randomWorker() model.WorkerID {
	return model.WorkerID(fmt.Sprintf("w%05d", 1+s.rng.Intn(s.wn)))
}

func (s *scenario) randomTask() model.TaskID {
	return model.TaskID(fmt.Sprintf("t%05d", 1+s.rng.Intn(s.tn)))
}

func (s *scenario) offer() {
	s.log.MustAppend(eventlog.Event{
		Type: eventlog.TaskOffered, Worker: s.randomWorker(), Task: s.randomTask(),
	})
}

func (s *scenario) addContribution() {
	s.cn++
	c := &model.Contribution{
		ID:     model.ContributionID(fmt.Sprintf("c%05d", s.cn)),
		Task:   s.randomTask(),
		Worker: s.randomWorker(),
		Text:   []string{"the canonical answer", "the canonical answer", "something else entirely"}[s.rng.Intn(3)],
		Paid:   []float64{0.5, 0.5, 2.0}[s.rng.Intn(3)],
	}
	c.Quality = 0.7
	if err := s.st.PutContribution(c); err != nil {
		s.tb.Fatal(err)
	}
}

func (s *scenario) updateWorker() {
	w, err := s.st.Worker(s.randomWorker())
	if err != nil {
		s.tb.Fatal(err)
	}
	w.Computed[model.AttrAcceptanceRatio] = model.Num([]float64{0.3, 0.8}[s.rng.Intn(2)])
	if err := s.st.UpdateWorker(w); err != nil {
		s.tb.Fatal(err)
	}
}

func (s *scenario) updateContribution() {
	if s.cn == 0 {
		return
	}
	id := model.ContributionID(fmt.Sprintf("c%05d", 1+s.rng.Intn(s.cn)))
	c, err := s.st.Contribution(id)
	if err != nil {
		s.tb.Fatal(err)
	}
	c.Paid = []float64{0.5, 2.0}[s.rng.Intn(2)]
	if err := s.st.UpdateContribution(c); err != nil {
		s.tb.Fatal(err)
	}
}

func (s *scenario) flagWorker() {
	s.log.MustAppend(eventlog.Event{Type: eventlog.WorkerFlagged, Worker: s.randomWorker()})
}

func (s *scenario) startInterrupt() {
	w, t := s.randomWorker(), s.randomTask()
	s.log.MustAppend(eventlog.Event{Type: eventlog.TaskStarted, Worker: w, Task: t})
	if s.rng.Bool(0.5) {
		s.log.MustAppend(eventlog.Event{Type: eventlog.TaskInterrupted, Worker: w, Task: t})
	} else {
		s.log.MustAppend(eventlog.Event{Type: eventlog.TaskSubmitted, Worker: w, Task: t})
	}
}

// seed populates the initial platform.
func (s *scenario) seed(workers, tasks, offers, contribs int) {
	for i := 0; i < workers; i++ {
		s.addWorker()
	}
	for i := 0; i < tasks; i++ {
		s.addTask()
	}
	for i := 0; i < offers; i++ {
		s.offer()
	}
	for i := 0; i < contribs; i++ {
		s.addContribution()
	}
}

// mutate applies one random mutation of any supported kind.
func (s *scenario) mutate() {
	switch s.rng.Intn(8) {
	case 0:
		s.addWorker()
	case 1:
		s.addTask()
	case 2, 3:
		s.offer()
	case 4:
		s.addContribution()
	case 5:
		s.updateWorker()
	case 6:
		s.updateContribution()
	case 7:
		if s.rng.Bool(0.3) {
			s.flagWorker()
		} else {
			s.startInterrupt()
		}
	}
}

func requireEquivalent(t *testing.T, round int, inc, full []*fairness.Report) {
	t.Helper()
	if ViolationsEqual(inc, full) {
		return
	}
	for i := range inc {
		if len(inc[i].Violations) != len(full[i].Violations) {
			t.Fatalf("round %d, %s: %d violations (incremental) vs %d (full)",
				round, inc[i].Axiom, len(inc[i].Violations), len(full[i].Violations))
		}
		for j := range inc[i].Violations {
			if inc[i].Violations[j].String() != full[i].Violations[j].String() {
				t.Fatalf("round %d, %s, violation %d:\nincremental: %s\nfull:        %s",
					round, inc[i].Axiom, j, inc[i].Violations[j], full[i].Violations[j])
			}
		}
	}
	t.Fatalf("round %d: reports differ in shape", round)
}

// The cold-start audit must match fairness.CheckAll exactly, including the
// Checked counts (the full-scan paths are shared).
func TestColdStartMatchesCheckAll(t *testing.T) {
	s := newScenario(t, 11)
	s.seed(60, 25, 300, 40)
	cfg := fairness.DefaultConfig()
	eng := New(s.st, s.log, cfg)
	inc := eng.Audit()
	full := fairness.CheckAll(s.st, s.log, cfg)
	requireEquivalent(t, 0, inc, full)
	for i := range inc {
		if inc[i].Checked != full[i].Checked {
			t.Errorf("%s: cold-start checked %d, full %d", inc[i].Axiom, inc[i].Checked, full[i].Checked)
		}
	}
}

// The determinism contract of the tentpole: across seeds and arbitrary
// interleavings of mutations and audits, the incremental engine reports
// exactly the violations a from-scratch full audit reports.
func TestIncrementalMatchesFullAcrossMutations(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 17, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := newScenario(t, seed)
			s.seed(50, 20, 250, 30)
			cfg := fairness.DefaultConfig()
			eng := New(s.st, s.log, cfg)
			for round := 0; round < 12; round++ {
				for i := 0; i < 15; i++ {
					s.mutate()
				}
				inc := eng.Audit()
				full := fairness.CheckAll(s.st, s.log, cfg)
				requireEquivalent(t, round, inc, full)
				// All five axioms keep exact Checked counts incrementally:
				// 3–5 via per-unit folds, 1–2 via the candidate-pair census.
				for i := range inc {
					if inc[i].Checked != full[i].Checked {
						t.Fatalf("round %d, %s: checked %d (incremental) vs %d (full)",
							round, inc[i].Axiom, inc[i].Checked, full[i].Checked)
					}
				}
			}
		})
	}
}

// TestShardCountInvariance is the tentpole's audit-level determinism
// contract: the same trace driven into stores of different shard counts —
// including the single-lock one-shard layout — must produce identical
// incremental audit reports (violations and Checked counts) round after
// round, against both each other and the full scan.
func TestShardCountInvariance(t *testing.T) {
	type lane struct {
		s   *scenario
		eng *Engine
	}
	cfg := fairness.DefaultConfig()
	var lanes []lane
	for _, shards := range []int{1, 4, 9} {
		s := newScenarioSharded(t, 77, shards)
		s.seed(50, 20, 250, 30)
		lanes = append(lanes, lane{s, New(s.st, s.log, cfg)})
	}
	for round := 0; round < 6; round++ {
		var reports [][]*fairness.Report
		for _, l := range lanes {
			// The same RNG seed drives every lane, so all stores see the
			// same mutation stream.
			for i := 0; i < 20; i++ {
				l.s.mutate()
			}
			reports = append(reports, l.eng.Audit())
		}
		full := fairness.CheckAll(lanes[0].s.st, lanes[0].s.log, cfg)
		requireEquivalent(t, round, reports[0], full)
		for li := 1; li < len(reports); li++ {
			if !ViolationsEqual(reports[0], reports[li]) {
				t.Fatalf("round %d: lane %d (shards>1) disagrees with single-shard lane", round, li)
			}
			for ax := range reports[li] {
				if reports[li][ax].Checked != reports[0][ax].Checked {
					t.Fatalf("round %d, %s: lane %d checked %d, single-shard %d",
						round, reports[li][ax].Axiom, li, reports[li][ax].Checked, reports[0][ax].Checked)
				}
			}
		}
	}
}

// Falling behind the changelog's retention window must trigger a rebuild,
// not a wrong report.
func TestChangelogTruncationFallsBackToRebuild(t *testing.T) {
	s := newScenario(t, 5)
	s.seed(40, 15, 150, 20)
	s.st.SetChangelogCap(8)
	cfg := fairness.DefaultConfig()
	eng := New(s.st, s.log, cfg)
	eng.Audit()
	// Far more mutations than the changelog retains.
	for i := 0; i < 100; i++ {
		s.mutate()
	}
	if _, ok := s.st.ChangesSince(0); ok {
		t.Fatal("test setup: changelog should be truncated")
	}
	inc := eng.Audit()
	full := fairness.CheckAll(s.st, s.log, cfg)
	requireEquivalent(t, 0, inc, full)
	// And the engine keeps working incrementally afterwards.
	for i := 0; i < 5; i++ {
		s.mutate()
	}
	requireEquivalent(t, 1, eng.Audit(), fairness.CheckAll(s.st, s.log, cfg))
}

// Offer churn re-examines pairs whose entities did not change; those pair
// similarities must come out of the cache, and an entity mutation must
// invalidate exactly its own pairs (correctness of the result is pinned by
// the equivalence tests; this pins that the cache is actually consulted).
func TestCacheHitsOnOfferChurn(t *testing.T) {
	s := newScenario(t, 23)
	s.seed(60, 20, 300, 0)
	eng := New(s.st, s.log, fairness.DefaultConfig())
	eng.Audit()
	_, missesAfterCold := eng.Cache().Stats()
	if missesAfterCold == 0 {
		t.Fatal("cold start should have populated the cache")
	}
	hits0, _ := eng.Cache().Stats()
	// New offers only: no store mutation, so every re-examined pair has
	// unchanged revisions and must hit.
	for i := 0; i < 10; i++ {
		s.offer()
	}
	eng.Audit()
	hits1, misses1 := eng.Cache().Stats()
	if hits1 <= hits0 {
		t.Fatalf("offer churn produced no cache hits (hits %d -> %d)", hits0, hits1)
	}
	if misses1 != missesAfterCold {
		t.Fatalf("offer churn missed the cache: misses %d -> %d", missesAfterCold, misses1)
	}
	// A worker mutation must force recomputation for its pairs.
	s.updateWorker()
	eng.Audit()
	_, misses2 := eng.Cache().Stats()
	if misses2 <= misses1 {
		t.Fatal("worker mutation did not invalidate any cached pair")
	}
}

// An audit pass between mutations must not disturb later equivalence even
// when nothing changed (empty delta).
func TestEmptyDeltaIsStable(t *testing.T) {
	s := newScenario(t, 31)
	s.seed(30, 12, 100, 15)
	cfg := fairness.DefaultConfig()
	eng := New(s.st, s.log, cfg)
	first := eng.Audit()
	second := eng.Audit()
	if !ViolationsEqual(first, second) {
		t.Fatal("back-to-back audits disagree")
	}
	// An empty delta examines no pairs, yet the census keeps the reported
	// Checked equal to the cold start's full scan.
	for _, i := range []int{0, 1} {
		if second[i].Checked != first[i].Checked {
			t.Errorf("%s: empty delta reported checked %d, cold start %d",
				second[i].Axiom, second[i].Checked, first[i].Checked)
		}
	}
}
