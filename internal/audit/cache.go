package audit

import (
	"sync"

	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/similarity"
	"repro/internal/store"
)

// DefaultCacheCap bounds each of the cache's three tables. One entry is a
// few dozen bytes, so the default keeps the whole cache under ~100 MB even
// when every table fills.
const DefaultCacheCap = 1 << 20

// CacheStats is the cache's cumulative counter snapshot.
type CacheStats struct {
	// Hits and Misses count lookups that found / did not find a
	// revision-valid entry.
	Hits   uint64
	Misses uint64
	// Evictions counts entries removed by the capacity sweep (entries
	// invalidated by revision mismatch are overwritten in place and do not
	// count here).
	Evictions uint64
}

// Cache memoizes the pairwise similarity scores of Axioms 1–3 across audit
// passes. Entries are keyed by the canonical id pair and validated against
// the store's entity revisions: a hit requires the stored revisions to
// equal the entities' current revisions, so any mutation — attribute
// update, pay change — silently invalidates every pair the entity takes
// part in. Invalidation therefore costs nothing at mutation time; the
// changelog-driven dirty sets decide which pairs get looked up again.
//
// Each table is bounded by the cap, with deterministic generational
// eviction: every entry is stamped with the pass generation that last
// read or wrote it, and when a write finds its table full, every entry not
// touched in the current generation is evicted in one sweep — at most one
// sweep per table per generation, since the sweep leaves only
// current-generation entries behind. If the table is still full after the
// sweep (the working set of one pass exceeds the cap), the new entry is
// simply not cached. Which entries survive is a
// pure function of the operation sequence — never of map iteration order —
// so two identical runs hit, miss, and evict identically.
//
// To stay sound under audits racing store mutations, entries are only
// written when both revisions are at or below the version bracket the
// current pass declared via BeginPass: scores are computed from entity
// values read after the bracket was taken, so a revision above the bracket
// means the value used may not correspond to the revision observed, and the
// score is returned uncached. Safe for concurrent use.
type Cache struct {
	st *store.Store

	mu       sync.Mutex
	cap      int
	pass     uint64
	gen      uint64
	workers  map[workerKey]*workerEntry
	tasks    map[taskKey]*taskEntry
	contribs map[contribKey]*contribEntry
	// workersSwept/tasksSwept/contribsSwept record the generation of each
	// table's last capacity sweep. After a sweep, every survivor carries the
	// current generation, so a second sweep in the same generation cannot
	// evict anything — skipping it keeps a working set larger than the cap
	// at one O(cap) sweep per pass instead of one per overflowing write.
	workersSwept  uint64
	tasksSwept    uint64
	contribsSwept uint64
	hits          uint64
	misses        uint64
	evictions     uint64
}

type workerKey struct{ a, b model.WorkerID }
type taskKey struct{ a, b model.TaskID }
type contribKey struct{ a, b model.ContributionID }

type workerEntry struct {
	ra, rb uint64
	gen    uint64
	scores fairness.WorkerPairScores
}
type taskEntry struct {
	ra, rb uint64
	gen    uint64
	score  float64
}
type contribEntry struct {
	ra, rb uint64
	gen    uint64
	score  float64
}

// NewCache returns an empty cache over the store's revision counters.
func NewCache(st *store.Store) *Cache {
	return &Cache{
		st:       st,
		cap:      DefaultCacheCap,
		workers:  make(map[workerKey]*workerEntry),
		tasks:    make(map[taskKey]*taskEntry),
		contribs: make(map[contribKey]*contribEntry),
	}
}

// SetCap bounds each table to at most n entries (n < 1 disables caching).
func (c *Cache) SetCap(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
}

// BeginPass declares the store version the next audit pass read before
// taking its entity snapshots, and advances the eviction generation:
// entries untouched since the previous BeginPass become eviction
// candidates once a table fills. Scores computed during the pass are
// cached only for entities whose revisions do not exceed this bracket.
func (c *Cache) BeginPass(version uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pass = version
	c.gen++
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Counters returns the full counter snapshot, including evictions.
func (c *Cache) Counters() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}

// Len returns the number of live entries across all three tables.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers) + len(c.tasks) + len(c.contribs)
}

// sweepStale deletes every entry whose generation predates cur, returning
// the eviction count. Eviction is per-entry and order-independent, so the
// surviving set never depends on map iteration order.
func sweepStale[K comparable, V any](m map[K]V, gen func(V) uint64, cur uint64) uint64 {
	var evicted uint64
	for k, v := range m {
		if gen(v) < cur {
			delete(m, k)
			evicted++
		}
	}
	return evicted
}

// WorkerPair implements fairness.PairMemo.
func (c *Cache) WorkerPair(a, b model.WorkerID, compute func() fairness.WorkerPairScores) fairness.WorkerPairScores {
	if b < a {
		a, b = b, a // scores are symmetric; keys are canonical
	}
	ra, rb := c.st.WorkerRevision(a), c.st.WorkerRevision(b)
	k := workerKey{a, b}
	c.mu.Lock()
	pass := c.pass
	if e, ok := c.workers[k]; ok && e.ra == ra && e.rb == rb {
		c.hits++
		e.gen = c.gen
		c.mu.Unlock()
		return e.scores
	}
	c.misses++
	c.mu.Unlock()
	sc := compute()
	if ra <= pass && rb <= pass {
		c.mu.Lock()
		if c.cap > 0 {
			if _, ok := c.workers[k]; !ok && len(c.workers) >= c.cap && c.workersSwept != c.gen {
				c.workersSwept = c.gen
				c.evictions += sweepStale(c.workers, func(e *workerEntry) uint64 { return e.gen }, c.gen)
			}
			if _, ok := c.workers[k]; ok || len(c.workers) < c.cap {
				c.workers[k] = &workerEntry{ra, rb, c.gen, sc}
			}
		}
		c.mu.Unlock()
	}
	return sc
}

// TaskPair implements fairness.PairMemo.
func (c *Cache) TaskPair(a, b model.TaskID, compute func() float64) float64 {
	if b < a {
		a, b = b, a
	}
	ra, rb := c.st.TaskRevision(a), c.st.TaskRevision(b)
	k := taskKey{a, b}
	c.mu.Lock()
	pass := c.pass
	if e, ok := c.tasks[k]; ok && e.ra == ra && e.rb == rb {
		c.hits++
		e.gen = c.gen
		c.mu.Unlock()
		return e.score
	}
	c.misses++
	c.mu.Unlock()
	s := compute()
	if ra <= pass && rb <= pass {
		c.mu.Lock()
		if c.cap > 0 {
			if _, ok := c.tasks[k]; !ok && len(c.tasks) >= c.cap && c.tasksSwept != c.gen {
				c.tasksSwept = c.gen
				c.evictions += sweepStale(c.tasks, func(e *taskEntry) uint64 { return e.gen }, c.gen)
			}
			if _, ok := c.tasks[k]; ok || len(c.tasks) < c.cap {
				c.tasks[k] = &taskEntry{ra, rb, c.gen, s}
			}
		}
		c.mu.Unlock()
	}
	return s
}

// PairScores scores every contribution pair through the revision-keyed
// cache, in similarity.PairAt order — a drop-in replacement for
// similarity.ContributionPairScores, and the hook pay.SimilarityFair's
// PairScores field expects (internal/sim wires it up — via
// Engine.PairScores — whenever in-loop auditing is enabled). Unlike the
// PairMemo entry points, which bracket cache writes at the audit pass's
// declared version, PairScores brackets each call at the current store
// version; the caller must therefore pass contribution values that are
// current at call time, with no concurrent mutation of those contributions
// during the call — the natural contract for a pay scheme holding the
// authoritative contribution set. Repeated calls over unchanged
// contributions are then cache hits. Note the limit of pay/audit sharing
// in the simulator's loop: recording the payment bumps each contribution's
// revision, so the Axiom 3 audit that follows settlement keys its own
// entries at the post-payment revisions rather than reusing pay-time
// scores — the win here is the shared, memoizing kernel, not cross-phase
// reuse.
func (c *Cache) PairScores(contribs []*model.Contribution) []float64 {
	bracket := c.st.Version() // read before any revision or value, like BeginPass
	return similarity.ScorePairs(len(contribs), func(i, j int) float64 {
		a, b := contribs[i], contribs[j]
		return c.contribPair(a.ID, b.ID, bracket, func() float64 {
			return similarity.ContributionSimilarity(a, b)
		})
	})
}

// pairScoresFiltered is PairScores restricted to the candidate pairs named
// by ks (ascending linear pair indices over len(contribs)); every other
// slot is zero. It is the pruned scoring path Engine.PairScores uses when
// the LSH index is active: non-candidate pairs sit below the similarity
// threshold with the index's recall guarantee, and a zero score is exactly
// "below threshold" to every consumer of the slice.
func (c *Cache) pairScoresFiltered(contribs []*model.Contribution, ks []int) []float64 {
	bracket := c.st.Version()
	out := make([]float64, similarity.PairCount(len(contribs)))
	par.For(len(ks), 0, func(x int) {
		i, j := similarity.PairAt(len(contribs), ks[x])
		a, b := contribs[i], contribs[j]
		out[ks[x]] = c.contribPair(a.ID, b.ID, bracket, func() float64 {
			return similarity.ContributionSimilarity(a, b)
		})
	})
	return out
}

// ContribPair implements fairness.PairMemo.
func (c *Cache) ContribPair(a, b model.ContributionID, compute func() float64) float64 {
	c.mu.Lock()
	pass := c.pass
	c.mu.Unlock()
	return c.contribPair(a, b, pass, compute)
}

func (c *Cache) contribPair(a, b model.ContributionID, pass uint64, compute func() float64) float64 {
	if b < a {
		a, b = b, a
	}
	ra, rb := c.st.ContributionRevision(a), c.st.ContributionRevision(b)
	k := contribKey{a, b}
	c.mu.Lock()
	if e, ok := c.contribs[k]; ok && e.ra == ra && e.rb == rb {
		c.hits++
		e.gen = c.gen
		c.mu.Unlock()
		return e.score
	}
	c.misses++
	c.mu.Unlock()
	s := compute()
	if ra <= pass && rb <= pass {
		c.mu.Lock()
		if c.cap > 0 {
			if _, ok := c.contribs[k]; !ok && len(c.contribs) >= c.cap && c.contribsSwept != c.gen {
				c.contribsSwept = c.gen
				c.evictions += sweepStale(c.contribs, func(e *contribEntry) uint64 { return e.gen }, c.gen)
			}
			if _, ok := c.contribs[k]; ok || len(c.contribs) < c.cap {
				c.contribs[k] = &contribEntry{ra, rb, c.gen, s}
			}
		}
		c.mu.Unlock()
	}
	return s
}
