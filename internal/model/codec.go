package model

import (
	"encoding/json"
	"fmt"
)

// jsonAttrValue is the wire form of AttrValue: numeric attributes serialise
// as {"num": x}, categorical ones as {"str": s}.
type jsonAttrValue struct {
	Num *float64 `json:"num,omitempty"`
	Str *string  `json:"str,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (a AttrValue) MarshalJSON() ([]byte, error) {
	var j jsonAttrValue
	if a.Kind == AttrNum {
		j.Num = &a.Num
	} else {
		j.Str = &a.Str
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *AttrValue) UnmarshalJSON(data []byte) error {
	var j jsonAttrValue
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("model: attr value: %w", err)
	}
	switch {
	case j.Num != nil && j.Str != nil:
		return fmt.Errorf("model: attr value has both num and str")
	case j.Num != nil:
		*a = Num(*j.Num)
	case j.Str != nil:
		*a = Str(*j.Str)
	default:
		return fmt.Errorf("model: attr value has neither num nor str")
	}
	return nil
}

// MarshalJSON encodes the vector as a bitstring ("10110") for compactness
// and human readability in traces.
func (v SkillVector) MarshalJSON() ([]byte, error) {
	return json.Marshal(v.String())
}

// UnmarshalJSON decodes a bitstring back into a vector.
func (v *SkillVector) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("model: skill vector: %w", err)
	}
	out := NewSkillVector(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			out[i] = true
		case '0':
		default:
			return fmt.Errorf("model: skill vector: invalid bit %q", s[i])
		}
	}
	*v = out
	return nil
}

// Snapshot is a serialisable capture of an entire platform state: the skill
// universe plus every entity. It is the interchange format between the
// generator, the simulator, the store, and the audit tools.
type Snapshot struct {
	Skills        []string        `json:"skills"`
	Workers       []*Worker       `json:"workers"`
	Requesters    []*Requester    `json:"requesters"`
	Tasks         []*Task         `json:"tasks"`
	Contributions []*Contribution `json:"contributions,omitempty"`
}

// Universe reconstructs the skill universe embedded in the snapshot.
func (s *Snapshot) Universe() (*Universe, error) {
	return NewUniverse(s.Skills...)
}

// Validate checks every entity in the snapshot against its universe.
func (s *Snapshot) Validate() error {
	u, err := s.Universe()
	if err != nil {
		return err
	}
	for _, w := range s.Workers {
		if err := w.Validate(u); err != nil {
			return err
		}
	}
	for _, r := range s.Requesters {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	for _, t := range s.Tasks {
		if err := t.Validate(u); err != nil {
			return err
		}
	}
	for _, c := range s.Contributions {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Encode serialises the snapshot to JSON.
func (s *Snapshot) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DecodeSnapshot parses a snapshot previously produced by Encode and
// validates it.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("model: decode snapshot: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("model: decode snapshot: %w", err)
	}
	return &s, nil
}
