// Package model defines the crowdsourcing data model of Borromeo et al.
// (EDBT 2017), §3.2: tasks with required-skill vectors and rewards, workers
// with self-declared and computed attributes plus interest-skill vectors,
// requesters, and worker contributions.
//
// The types here are deliberately plain data: behaviour (assignment,
// payment, fairness checking, ...) lives in the sibling packages so that a
// platform trace can be serialised, stored, and audited independently of
// any particular algorithm.
package model

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Common validation errors returned by the Validate methods.
var (
	ErrEmptyID        = errors.New("model: empty identifier")
	ErrNegativeReward = errors.New("model: negative reward")
	ErrNoSkills       = errors.New("model: skill universe is empty")
	ErrUnknownSkill   = errors.New("model: skill not in universe")
)

// WorkerID uniquely identifies a worker (id_w in the paper).
type WorkerID string

// TaskID uniquely identifies a task (id_t in the paper).
type TaskID string

// RequesterID uniquely identifies a requester (id_r in the paper).
type RequesterID string

// ContributionID uniquely identifies a single worker contribution to a task.
type ContributionID string

// SkillVector is the Boolean vector ⟨s1..sm⟩ of §3.2: for a task it marks
// required skills, for a worker it marks interests/qualifications. The
// indices refer to positions in a Universe.
type SkillVector []bool

// NewSkillVector returns an all-false vector of length m.
func NewSkillVector(m int) SkillVector { return make(SkillVector, m) }

// Clone returns an independent copy of v.
func (v SkillVector) Clone() SkillVector {
	return append(SkillVector(nil), v...)
}

// Count returns the number of set skills.
func (v SkillVector) Count() int {
	n := 0
	for _, b := range v {
		if b {
			n++
		}
	}
	return n
}

// Covers reports whether v has every skill set in req — the qualification
// predicate "worker v qualifies for task req".
func (v SkillVector) Covers(req SkillVector) bool {
	for i, need := range req {
		if need && (i >= len(v) || !v[i]) {
			return false
		}
	}
	return true
}

// Equal reports whether two vectors are identical bit-for-bit (and in
// length).
func (v SkillVector) Equal(o SkillVector) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Indices returns the positions of set skills, ascending.
func (v SkillVector) Indices() []int {
	var out []int
	for i, b := range v {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// String renders the vector as a compact bitstring, e.g. "10110".
func (v SkillVector) String() string {
	var b strings.Builder
	for _, set := range v {
		if set {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Universe names the skill keywords S = {s1..sm} shared by all tasks and
// workers on a platform. A Universe is immutable after construction.
type Universe struct {
	names []string
	index map[string]int
}

// NewUniverse builds a universe from skill keyword names. Names are
// deduplicated; order of first appearance is preserved. It returns an error
// if no names are supplied or any name is empty.
func NewUniverse(names ...string) (*Universe, error) {
	if len(names) == 0 {
		return nil, ErrNoSkills
	}
	u := &Universe{index: make(map[string]int, len(names))}
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("model: empty skill name: %w", ErrUnknownSkill)
		}
		if _, dup := u.index[n]; dup {
			continue
		}
		u.index[n] = len(u.names)
		u.names = append(u.names, n)
	}
	return u, nil
}

// MustUniverse is NewUniverse that panics on error; intended for tests and
// examples with literal inputs.
func MustUniverse(names ...string) *Universe {
	u, err := NewUniverse(names...)
	if err != nil {
		panic(err)
	}
	return u
}

// Size returns m, the number of skill keywords.
func (u *Universe) Size() int { return len(u.names) }

// Name returns the keyword at index i.
func (u *Universe) Name(i int) string { return u.names[i] }

// Names returns a copy of all keyword names in index order.
func (u *Universe) Names() []string { return append([]string(nil), u.names...) }

// Index returns the position of a keyword, or an error if unknown.
func (u *Universe) Index(name string) (int, error) {
	i, ok := u.index[name]
	if !ok {
		return 0, fmt.Errorf("model: skill %q: %w", name, ErrUnknownSkill)
	}
	return i, nil
}

// Vector builds a SkillVector with the named skills set. Unknown names
// yield an error.
func (u *Universe) Vector(names ...string) (SkillVector, error) {
	v := NewSkillVector(u.Size())
	for _, n := range names {
		i, err := u.Index(n)
		if err != nil {
			return nil, err
		}
		v[i] = true
	}
	return v, nil
}

// MustVector is Vector that panics on error.
func (u *Universe) MustVector(names ...string) SkillVector {
	v, err := u.Vector(names...)
	if err != nil {
		panic(err)
	}
	return v
}

// Attributes is a set of named scalar attributes. For workers it holds both
// the self-declared set A_w (demographics, location, ...) and the computed
// set C_w (acceptance ratio, performance, ...). String values are modelled
// as categories; numeric values as float64.
type Attributes map[string]AttrValue

// AttrValue is a tagged union of the attribute kinds the model supports.
// Exactly one of the fields is meaningful, selected by Kind.
type AttrValue struct {
	Kind AttrKind
	Num  float64
	Str  string
}

// AttrKind discriminates AttrValue variants.
type AttrKind uint8

// Attribute kinds.
const (
	AttrNum AttrKind = iota // numeric attribute (e.g. acceptance ratio)
	AttrStr                 // categorical attribute (e.g. country)
)

// Num returns a numeric attribute value.
func Num(x float64) AttrValue { return AttrValue{Kind: AttrNum, Num: x} }

// Str returns a categorical attribute value.
func Str(s string) AttrValue { return AttrValue{Kind: AttrStr, Str: s} }

// Equal reports exact equality of two values.
func (a AttrValue) Equal(b AttrValue) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == AttrNum {
		return a.Num == b.Num
	}
	return a.Str == b.Str
}

// String renders the value for logs and reports.
func (a AttrValue) String() string {
	if a.Kind == AttrNum {
		return fmt.Sprintf("%g", a.Num)
	}
	return a.Str
}

// Clone returns an independent copy of the attribute set.
func (a Attributes) Clone() Attributes {
	if a == nil {
		return nil
	}
	out := make(Attributes, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Keys returns the attribute names in sorted order (for deterministic
// iteration in reports and similarity computations).
func (a Attributes) Keys() []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Task is the tuple (id_t, id_r, S_t, d_t) of §3.2 — a unit of work posted
// by a requester, requiring the skills in Skills and paying Reward on
// completion.
type Task struct {
	ID        TaskID
	Requester RequesterID
	Skills    SkillVector
	Reward    float64
	// Quota is the number of contributions the requester actually needs;
	// Published is how many assignments were opened. Published > Quota
	// models the over-publication scenario of §3.1.1 (survey tasks) that
	// Axiom 5 is concerned with. Zero values mean "one of each".
	Quota     int
	Published int
	// Title is an optional human-readable label used in reports.
	Title string
}

// Validate reports structural problems with the task relative to universe u.
func (t *Task) Validate(u *Universe) error {
	if t.ID == "" {
		return fmt.Errorf("task: %w", ErrEmptyID)
	}
	if t.Requester == "" {
		return fmt.Errorf("task %s: requester: %w", t.ID, ErrEmptyID)
	}
	if t.Reward < 0 {
		return fmt.Errorf("task %s: %w", t.ID, ErrNegativeReward)
	}
	if len(t.Skills) != u.Size() {
		return fmt.Errorf("task %s: skill vector length %d != universe size %d: %w",
			t.ID, len(t.Skills), u.Size(), ErrUnknownSkill)
	}
	if t.Quota < 0 || t.Published < 0 {
		return fmt.Errorf("task %s: negative quota/published", t.ID)
	}
	return nil
}

// EffectiveQuota returns Quota, defaulting to 1.
func (t *Task) EffectiveQuota() int {
	if t.Quota <= 0 {
		return 1
	}
	return t.Quota
}

// EffectivePublished returns Published, defaulting to EffectiveQuota.
func (t *Task) EffectivePublished() int {
	if t.Published <= 0 {
		return t.EffectiveQuota()
	}
	return t.Published
}

// Clone returns a deep copy of the task.
func (t *Task) Clone() *Task {
	c := *t
	c.Skills = t.Skills.Clone()
	return &c
}

// Worker is the tuple (id_w, A_w, C_w, S_w) of §3.2.
type Worker struct {
	ID       WorkerID
	Declared Attributes  // A_w: self-declared (demographics, location, ...)
	Computed Attributes  // C_w: platform-computed (acceptance ratio, ...)
	Skills   SkillVector // S_w: interests/qualifications
}

// Validate reports structural problems with the worker relative to u.
func (w *Worker) Validate(u *Universe) error {
	if w.ID == "" {
		return fmt.Errorf("worker: %w", ErrEmptyID)
	}
	if len(w.Skills) != u.Size() {
		return fmt.Errorf("worker %s: skill vector length %d != universe size %d: %w",
			w.ID, len(w.Skills), u.Size(), ErrUnknownSkill)
	}
	return nil
}

// Clone returns a deep copy of the worker.
func (w *Worker) Clone() *Worker {
	c := *w
	c.Declared = w.Declared.Clone()
	c.Computed = w.Computed.Clone()
	c.Skills = w.Skills.Clone()
	return &c
}

// Well-known computed attribute names. Platforms are free to add more; the
// fairness checkers compare whatever is present.
const (
	AttrAcceptanceRatio = "acceptance_ratio" // accepted / submitted
	AttrPerformance     = "performance"      // mean contribution quality
	AttrCompleted       = "completed"        // number of completed tasks
)

// Requester is a task publisher.
type Requester struct {
	ID RequesterID
	// Name is an optional display name.
	Name string
}

// Validate reports structural problems with the requester.
func (r *Requester) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("requester: %w", ErrEmptyID)
	}
	return nil
}

// Contribution is one worker's submitted answer to one task, together with
// its evaluation outcome. Payloads are free-form text (the paper's examples
// are text summarisation and survey answers); ranked-list contributions use
// Ranking instead.
type Contribution struct {
	ID     ContributionID
	Task   TaskID
	Worker WorkerID
	// Text is the textual payload; compared with n-gram similarity.
	Text string
	// Ranking is a ranked list of item identifiers; compared with nDCG.
	// Nil for textual contributions.
	Ranking []string
	// Quality in [0,1] as judged by the platform/requester (1 = perfect).
	Quality float64
	// Accepted records the requester's accept/reject decision.
	Accepted bool
	// Paid is the amount actually paid to the worker for this contribution.
	Paid float64
	// SubmittedAt is the simulation time of submission (arbitrary ticks).
	SubmittedAt int64
}

// Validate reports structural problems with the contribution.
func (c *Contribution) Validate() error {
	if c.ID == "" {
		return fmt.Errorf("contribution: %w", ErrEmptyID)
	}
	if c.Task == "" || c.Worker == "" {
		return fmt.Errorf("contribution %s: task/worker: %w", c.ID, ErrEmptyID)
	}
	if c.Quality < 0 || c.Quality > 1 {
		return fmt.Errorf("contribution %s: quality %v outside [0,1]", c.ID, c.Quality)
	}
	if c.Paid < 0 {
		return fmt.Errorf("contribution %s: %w", c.ID, ErrNegativeReward)
	}
	return nil
}

// Clone returns a deep copy of the contribution.
func (c *Contribution) Clone() *Contribution {
	cc := *c
	cc.Ranking = append([]string(nil), c.Ranking...)
	return &cc
}
