package model

import (
	"encoding/json"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAttrValueJSONRoundTrip(t *testing.T) {
	for _, v := range []AttrValue{Num(3.25), Num(0), Str("tokyo"), Str("")} {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back AttrValue
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !v.Equal(back) {
			t.Errorf("round trip %v -> %s -> %v", v, data, back)
		}
	}
}

func TestAttrValueJSONErrors(t *testing.T) {
	var v AttrValue
	if err := json.Unmarshal([]byte(`{}`), &v); err == nil {
		t.Error("neither field accepted")
	}
	if err := json.Unmarshal([]byte(`{"num":1,"str":"x"}`), &v); err == nil {
		t.Error("both fields accepted")
	}
	if err := json.Unmarshal([]byte(`"not an object"`), &v); err == nil {
		t.Error("non-object accepted")
	}
}

func TestSkillVectorJSONRoundTrip(t *testing.T) {
	for _, s := range []string{"", "1", "0", "10110", "0000"} {
		v := NewSkillVector(len(s))
		for i := range s {
			v[i] = s[i] == '1'
		}
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back SkillVector
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !v.Equal(back) {
			t.Errorf("round trip %s -> %s -> %s", v, data, back)
		}
	}
}

func TestSkillVectorJSONRejectsBadBits(t *testing.T) {
	var v SkillVector
	if err := json.Unmarshal([]byte(`"10x"`), &v); err == nil {
		t.Error("invalid bit accepted")
	}
}

func TestSkillVectorRoundTripProperty(t *testing.T) {
	f := func(bits []bool) bool {
		v := SkillVector(bits)
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		var back SkillVector
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		if len(bits) == 0 {
			return back.Count() == 0
		}
		return v.Equal(back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testSnapshot() *Snapshot {
	u := MustUniverse("a", "b")
	return &Snapshot{
		Skills: u.Names(),
		Workers: []*Worker{{
			ID:       "w1",
			Declared: Attributes{"country": Str("jp")},
			Computed: Attributes{AttrAcceptanceRatio: Num(0.875)},
			Skills:   u.MustVector("a"),
		}},
		Requesters: []*Requester{{ID: "r1", Name: "R"}},
		Tasks: []*Task{{
			ID: "t1", Requester: "r1", Skills: u.MustVector("b"),
			Reward: 1.5, Quota: 2, Published: 4, Title: "demo",
		}},
		Contributions: []*Contribution{{
			ID: "c1", Task: "t1", Worker: "w1", Text: "hello",
			Quality: 0.8, Accepted: true, Paid: 1.5, SubmittedAt: 7,
		}},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := testSnapshot()
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", snap, back)
	}
}

func TestDecodeSnapshotValidates(t *testing.T) {
	snap := testSnapshot()
	snap.Tasks[0].Reward = -1
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(data); err == nil {
		t.Error("invalid snapshot accepted")
	}
	if _, err := DecodeSnapshot([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSnapshotUniverse(t *testing.T) {
	snap := testSnapshot()
	u, err := snap.Universe()
	if err != nil {
		t.Fatal(err)
	}
	if u.Size() != 2 {
		t.Fatalf("universe size = %d", u.Size())
	}
}

func TestSnapshotValidateCatchesEveryEntity(t *testing.T) {
	mutations := []func(*Snapshot){
		func(s *Snapshot) { s.Workers[0].ID = "" },
		func(s *Snapshot) { s.Requesters[0].ID = "" },
		func(s *Snapshot) { s.Tasks[0].ID = "" },
		func(s *Snapshot) { s.Contributions[0].Quality = 2 },
		func(s *Snapshot) { s.Skills = nil },
	}
	for i, mutate := range mutations {
		snap := testSnapshot()
		mutate(snap)
		if err := snap.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}
