package model

import (
	"errors"
	"testing"
)

func TestNewUniverse(t *testing.T) {
	u, err := NewUniverse("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if u.Size() != 3 {
		t.Fatalf("size = %d", u.Size())
	}
	if u.Name(1) != "b" {
		t.Fatalf("Name(1) = %q", u.Name(1))
	}
	i, err := u.Index("c")
	if err != nil || i != 2 {
		t.Fatalf("Index(c) = %d, %v", i, err)
	}
	if _, err := u.Index("zzz"); !errors.Is(err, ErrUnknownSkill) {
		t.Fatalf("unknown skill error = %v", err)
	}
}

func TestNewUniverseErrors(t *testing.T) {
	if _, err := NewUniverse(); !errors.Is(err, ErrNoSkills) {
		t.Errorf("empty universe error = %v", err)
	}
	if _, err := NewUniverse("a", ""); !errors.Is(err, ErrUnknownSkill) {
		t.Errorf("empty name error = %v", err)
	}
}

func TestUniverseDedup(t *testing.T) {
	u := MustUniverse("a", "b", "a")
	if u.Size() != 2 {
		t.Fatalf("dedup failed, size = %d", u.Size())
	}
	names := u.Names()
	if names[0] != "a" || names[1] != "b" {
		t.Fatalf("order not preserved: %v", names)
	}
}

func TestUniverseVector(t *testing.T) {
	u := MustUniverse("x", "y", "z")
	v, err := u.Vector("x", "z")
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "101" {
		t.Fatalf("vector = %s", v)
	}
	if _, err := u.Vector("nope"); err == nil {
		t.Fatal("unknown skill accepted")
	}
}

func TestSkillVectorCovers(t *testing.T) {
	u := MustUniverse("a", "b", "c")
	worker := u.MustVector("a", "b")
	cases := []struct {
		req  SkillVector
		want bool
	}{
		{u.MustVector(), true},
		{u.MustVector("a"), true},
		{u.MustVector("a", "b"), true},
		{u.MustVector("c"), false},
		{u.MustVector("a", "c"), false},
	}
	for _, c := range cases {
		if got := worker.Covers(c.req); got != c.want {
			t.Errorf("Covers(%s) = %v, want %v", c.req, got, c.want)
		}
	}
}

func TestSkillVectorCoversLengthMismatch(t *testing.T) {
	short := SkillVector{true}
	long := SkillVector{true, true}
	if short.Covers(long) {
		t.Error("short vector cannot cover longer requirement")
	}
	if !long.Covers(short) {
		t.Error("long vector should cover shorter requirement")
	}
}

func TestSkillVectorEqual(t *testing.T) {
	a := SkillVector{true, false}
	if !a.Equal(SkillVector{true, false}) {
		t.Error("equal vectors reported unequal")
	}
	if a.Equal(SkillVector{true, true}) {
		t.Error("unequal vectors reported equal")
	}
	if a.Equal(SkillVector{true}) {
		t.Error("different lengths reported equal")
	}
}

func TestSkillVectorCloneIndependence(t *testing.T) {
	a := SkillVector{true, false}
	b := a.Clone()
	b[1] = true
	if a[1] {
		t.Error("clone shares storage")
	}
}

func TestSkillVectorCountIndices(t *testing.T) {
	v := SkillVector{true, false, true, true}
	if v.Count() != 3 {
		t.Fatalf("count = %d", v.Count())
	}
	idx := v.Indices()
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 2 || idx[2] != 3 {
		t.Fatalf("indices = %v", idx)
	}
}

func TestAttrValue(t *testing.T) {
	if !Num(1.5).Equal(Num(1.5)) || Num(1).Equal(Num(2)) {
		t.Error("numeric equality broken")
	}
	if !Str("x").Equal(Str("x")) || Str("x").Equal(Str("y")) {
		t.Error("string equality broken")
	}
	if Num(1).Equal(Str("1")) {
		t.Error("cross-kind equality should be false")
	}
	if Num(2.5).String() != "2.5" || Str("hi").String() != "hi" {
		t.Error("String rendering broken")
	}
}

func TestAttributesCloneAndKeys(t *testing.T) {
	a := Attributes{"b": Num(1), "a": Str("x")}
	c := a.Clone()
	c["b"] = Num(9)
	if a["b"].Num != 1 {
		t.Error("clone shares storage")
	}
	keys := a.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
	if Attributes(nil).Clone() != nil {
		t.Error("nil clone should be nil")
	}
}

func TestTaskValidate(t *testing.T) {
	u := MustUniverse("a", "b")
	ok := &Task{ID: "t1", Requester: "r1", Skills: u.MustVector("a"), Reward: 1}
	if err := ok.Validate(u); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	cases := []struct {
		name string
		task Task
		want error
	}{
		{"empty id", Task{Requester: "r", Skills: u.MustVector()}, ErrEmptyID},
		{"empty requester", Task{ID: "t", Skills: u.MustVector()}, ErrEmptyID},
		{"negative reward", Task{ID: "t", Requester: "r", Skills: u.MustVector(), Reward: -1}, ErrNegativeReward},
		{"wrong vector", Task{ID: "t", Requester: "r", Skills: SkillVector{true}}, ErrUnknownSkill},
	}
	for _, c := range cases {
		if err := c.task.Validate(u); !errors.Is(err, c.want) {
			t.Errorf("%s: error = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestTaskQuotaDefaults(t *testing.T) {
	task := &Task{}
	if task.EffectiveQuota() != 1 || task.EffectivePublished() != 1 {
		t.Fatal("zero quota/published should default to 1")
	}
	task.Quota = 3
	if task.EffectivePublished() != 3 {
		t.Fatal("published should default to quota")
	}
	task.Published = 5
	if task.EffectivePublished() != 5 {
		t.Fatal("explicit published ignored")
	}
}

func TestWorkerValidate(t *testing.T) {
	u := MustUniverse("a")
	w := &Worker{ID: "w1", Skills: u.MustVector("a")}
	if err := w.Validate(u); err != nil {
		t.Fatalf("valid worker rejected: %v", err)
	}
	if err := (&Worker{Skills: u.MustVector()}).Validate(u); !errors.Is(err, ErrEmptyID) {
		t.Errorf("empty id error = %v", err)
	}
	if err := (&Worker{ID: "w", Skills: SkillVector{}}).Validate(u); !errors.Is(err, ErrUnknownSkill) {
		t.Errorf("bad vector error = %v", err)
	}
}

func TestWorkerCloneDeep(t *testing.T) {
	u := MustUniverse("a")
	w := &Worker{
		ID:       "w1",
		Declared: Attributes{"country": Str("jp")},
		Computed: Attributes{AttrAcceptanceRatio: Num(0.9)},
		Skills:   u.MustVector("a"),
	}
	c := w.Clone()
	c.Declared["country"] = Str("fr")
	c.Skills[0] = false
	if w.Declared["country"].Str != "jp" || !w.Skills[0] {
		t.Error("clone shares storage with original")
	}
}

func TestRequesterValidate(t *testing.T) {
	if err := (&Requester{ID: "r"}).Validate(); err != nil {
		t.Fatalf("valid requester rejected: %v", err)
	}
	if err := (&Requester{}).Validate(); !errors.Is(err, ErrEmptyID) {
		t.Errorf("empty id error = %v", err)
	}
}

func TestContributionValidate(t *testing.T) {
	ok := &Contribution{ID: "c", Task: "t", Worker: "w", Quality: 0.5}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid contribution rejected: %v", err)
	}
	bad := []Contribution{
		{Task: "t", Worker: "w"},
		{ID: "c", Worker: "w"},
		{ID: "c", Task: "t"},
		{ID: "c", Task: "t", Worker: "w", Quality: 1.5},
		{ID: "c", Task: "t", Worker: "w", Quality: -0.1},
		{ID: "c", Task: "t", Worker: "w", Paid: -1},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("invalid contribution %d accepted", i)
		}
	}
}

func TestContributionCloneDeep(t *testing.T) {
	c := &Contribution{ID: "c", Task: "t", Worker: "w", Ranking: []string{"a", "b"}}
	cc := c.Clone()
	cc.Ranking[0] = "z"
	if c.Ranking[0] != "a" {
		t.Error("clone shares ranking storage")
	}
}
