package similarity

import (
	"math"
	"sort"

	"repro/internal/par"
)

// LSHParams fixes the shape of a banded MinHash index: Bands × Rows hash
// functions, signature sliced into Bands bands of Rows slots each, and a
// pair becomes a candidate iff some band hashes identically for both
// entities. The candidate probability for Jaccard similarity j is
// 1 − (1 − j^Rows)^Bands. Seed derives the hash family; all three fields
// must match for two indexes to generate the same candidate sets.
type LSHParams struct {
	Bands int
	Rows  int
	Seed  uint64
}

// K returns the signature length Bands × Rows.
func (p LSHParams) K() int { return p.Bands * p.Rows }

// CandidateProbability returns the probability that a pair with Jaccard
// similarity j lands in at least one shared band.
func (p LSHParams) CandidateProbability(j float64) float64 {
	return 1 - math.Pow(1-math.Pow(j, float64(p.Rows)), float64(p.Bands))
}

// ChooseLSHParams picks band/row parameters from a cosine similarity
// threshold t in (0, 1]. The worst-case Jaccard of a pair at cosine t over
// token sets is t² (attained by nested sets), so the parameters are sized
// to catch Jaccard s₀ = 0.8·t² — a safety margin below the worst case —
// with miss probability ≤ 0.1% per pair:
//
//	bands = ceil(ln(0.001) / ln(1 − s₀^rows))
//
// Rows are chosen adaptively: the largest row count in [3, 8] whose band
// requirement fits the 128-band budget. More rows per band sharpen the
// S-curve — dissimilar pairs fall off as J^rows — so high thresholds,
// which can afford them, generate far fewer spurious candidates on
// populations where many entities share a single common token (t = 0.9 →
// 6 rows × 90 bands; t = 0.8 → 4 rows × 98 bands).
func ChooseLSHParams(threshold float64, seed uint64) LSHParams {
	if threshold <= 0 || threshold > 1 {
		panic("similarity: LSH threshold must be in (0, 1]")
	}
	s0 := 0.8 * threshold * threshold
	bandsFor := func(rows int) int {
		return int(math.Ceil(math.Log(0.001) / math.Log(1-math.Pow(s0, float64(rows)))))
	}
	rows := 3
	for r := 8; r > 3; r-- {
		if bandsFor(r) <= 128 {
			rows = r
			break
		}
	}
	bands := bandsFor(rows)
	if bands < 4 {
		bands = 4
	}
	if bands > 128 {
		bands = 128
	}
	return LSHParams{Bands: bands, Rows: rows, Seed: seed}
}

// LSHIndex is the banded-MinHash CandidateIndex. Each entity's token set is
// reduced to a signature once on Upsert; candidate generation then touches
// only bucket maps, never token sets, so an entity update re-hashes exactly
// one entity and full-pass enumeration is linear in the number of occupied
// buckets plus emitted pairs.
type LSHIndex struct {
	params LSHParams
	hasher *MinHasher
	// sigs holds each id's full signature (kept for EstimateJaccard-style
	// introspection and for serialization).
	sigs map[string][]uint32
	// bandHashes caches each id's per-band bucket keys so Remove and the
	// first-shared-band dedup never recompute them.
	bandHashes map[string][]uint64
	// buckets[b] maps a band-b hash to the ids currently in that bucket,
	// kept sorted. Slices instead of member maps keep index construction
	// allocation-light (one growing slice per occupied bucket rather than
	// millions of small maps) and give Pairs pre-sorted members for free;
	// buckets stay small under any reasonable banding, so the O(len)
	// sorted insert and delete are cheaper than map bookkeeping.
	buckets []map[uint64][]string
	// sigFree/bhFree recycle the signature and band-hash storage of
	// removed, replaced, or Reset entries, so a pooled transient index
	// (fairness.ContribCandidates builds one per dirty task) re-upserts
	// without allocating per entity. Consequence of recycling: a slice
	// returned by Signature/Signatures is valid only until its entity is
	// re-upserted or removed.
	sigFree [][]uint32
	bhFree  [][]uint64
}

// NewLSHIndex returns an empty index with the given parameters.
func NewLSHIndex(params LSHParams) *LSHIndex {
	if params.Bands < 1 || params.Rows < 1 {
		panic("similarity: LSH bands and rows must be >= 1")
	}
	ix := &LSHIndex{
		params:     params,
		hasher:     NewMinHasher(params.K(), params.Seed),
		sigs:       make(map[string][]uint32),
		bandHashes: make(map[string][]uint64),
		buckets:    make([]map[uint64][]string, params.Bands),
	}
	for b := range ix.buckets {
		ix.buckets[b] = make(map[uint64][]string)
	}
	return ix
}

// Params returns the index's parameters.
func (x *LSHIndex) Params() LSHParams { return x.params }

// Name implements CandidateIndex.
func (x *LSHIndex) Name() string { return "lsh" }

// Len implements CandidateIndex.
func (x *LSHIndex) Len() int { return len(x.sigs) }

// Upsert implements CandidateIndex.
func (x *LSHIndex) Upsert(id string, tokens []uint64) {
	x.UpsertSignature(id, x.hasher.AppendSignature(x.takeSigBuf(), tokens))
}

// takeSigBuf pops a recycled signature buffer (nil when the freelist is
// empty; AppendSignature then allocates).
func (x *LSHIndex) takeSigBuf() []uint32 {
	n := len(x.sigFree)
	if n == 0 {
		return nil
	}
	s := x.sigFree[n-1]
	x.sigFree = x.sigFree[:n-1]
	return s
}

// takeBHBuf pops a recycled band-hash buffer (nil when the freelist is
// empty).
func (x *LSHIndex) takeBHBuf() []uint64 {
	n := len(x.bhFree)
	if n == 0 {
		return nil
	}
	b := x.bhFree[n-1]
	x.bhFree = x.bhFree[:n-1]
	return b
}

// UpsertSignature installs a precomputed signature (as produced by this
// index's Hasher) — the restore path for serialized state and the batch
// path for shard-parallel rebuilds, where signatures are computed off the
// index's goroutine. It panics on signature length mismatch.
func (x *LSHIndex) UpsertSignature(id string, sig []uint32) {
	if len(sig) != x.params.K() {
		panic("similarity: signature length does not match LSH params")
	}
	if old, ok := x.sigs[id]; ok {
		if sigsEqual(old, sig) {
			return
		}
		x.dropFromBuckets(id)
		x.sigFree = append(x.sigFree, old)
		x.bhFree = append(x.bhFree, x.bandHashes[id])
	}
	bh := x.appendBandHashes(x.takeBHBuf(), sig)
	x.sigs[id] = sig
	x.bandHashes[id] = bh
	for b, h := range bh {
		bucket := x.buckets[b][h]
		i := sort.SearchStrings(bucket, id)
		bucket = append(bucket, "")
		copy(bucket[i+1:], bucket[i:])
		bucket[i] = id
		x.buckets[b][h] = bucket
	}
}

// BulkUpsertSignatures installs many precomputed signatures at once — the
// bulk path for full index rebuilds and checkpoint restores. It is
// equivalent to calling UpsertSignature(ids[i], sigs[i]) in order, but
// band-hash computation fans out over the parallel pool and each band's
// bucket map is then populated by a single goroutine (inserts in batch
// order), so the resulting index is byte-identical to the serial build
// while the per-entity hashing and the Bands independent bucket structures
// fill concurrently. ids must be distinct; it panics on a length mismatch
// between ids and sigs or between a signature and the index parameters.
func (x *LSHIndex) BulkUpsertSignatures(ids []string, sigs [][]uint32) {
	if len(ids) != len(sigs) {
		panic("similarity: ids/sigs length mismatch")
	}
	// Serial pre-pass: validate, skip unchanged entries, and unlink the
	// stale buckets of replaced ones.
	keep := make([]int, 0, len(ids))
	for i, id := range ids {
		if len(sigs[i]) != x.params.K() {
			panic("similarity: signature length does not match LSH params")
		}
		if old, ok := x.sigs[id]; ok {
			if sigsEqual(old, sigs[i]) {
				continue
			}
			x.dropFromBuckets(id)
			x.sigFree = append(x.sigFree, old)
			x.bhFree = append(x.bhFree, x.bandHashes[id])
		}
		keep = append(keep, i)
	}
	bhs := make([][]uint64, len(keep))
	par.For(len(keep), 0, func(k int) {
		bhs[k] = x.bandHashesOf(sigs[keep[k]])
	})
	for k, i := range keep {
		x.sigs[ids[i]] = sigs[i]
		x.bandHashes[ids[i]] = bhs[k]
	}
	par.For(x.params.Bands, 0, func(b int) {
		bandBuckets := x.buckets[b]
		for k, i := range keep {
			id := ids[i]
			h := bhs[k][b]
			bucket := bandBuckets[h]
			j := sort.SearchStrings(bucket, id)
			bucket = append(bucket, "")
			copy(bucket[j+1:], bucket[j:])
			bucket[j] = id
			bandBuckets[h] = bucket
		}
	})
}

// Hasher exposes the index's hash family so callers can compute signatures
// in parallel and feed them to UpsertSignature.
func (x *LSHIndex) Hasher() *MinHasher { return x.hasher }

// Signature returns the stored signature for id (nil if absent). The
// returned slice is the index's own storage; callers must not mutate it,
// and it is valid only until the entity is re-upserted or removed (its
// backing array is then recycled).
func (x *LSHIndex) Signature(id string) []uint32 { return x.sigs[id] }

// Signatures calls yield for every indexed (id, signature) pair, in
// unspecified order — the export hook for serialising the index. The
// yielded slices are the index's own storage; callers must not mutate or
// retain them across mutations.
func (x *LSHIndex) Signatures(yield func(id string, sig []uint32)) {
	for id, sig := range x.sigs {
		yield(id, sig)
	}
}

// Remove implements CandidateIndex.
func (x *LSHIndex) Remove(id string) {
	sig, ok := x.sigs[id]
	if !ok {
		return
	}
	x.dropFromBuckets(id)
	x.sigFree = append(x.sigFree, sig)
	x.bhFree = append(x.bhFree, x.bandHashes[id])
	delete(x.sigs, id)
	delete(x.bandHashes, id)
}

// Reset empties the index in place, keeping its parameters, hasher, bucket
// maps, and recycled signature storage. A Reset index is observationally
// identical to a fresh NewLSHIndex with the same parameters; it exists so
// transient per-task contribution indexes can be pooled instead of
// reallocating ~Bands bucket maps and a hash family per audit.
func (x *LSHIndex) Reset() {
	for _, sig := range x.sigs {
		x.sigFree = append(x.sigFree, sig)
	}
	for _, bh := range x.bandHashes {
		x.bhFree = append(x.bhFree, bh)
	}
	clear(x.sigs)
	clear(x.bandHashes)
	for b := range x.buckets {
		clear(x.buckets[b])
	}
}

func (x *LSHIndex) dropFromBuckets(id string) {
	for b, h := range x.bandHashes[id] {
		bucket := x.buckets[b][h]
		i := sort.SearchStrings(bucket, id)
		if i >= len(bucket) || bucket[i] != id {
			continue
		}
		if len(bucket) == 1 {
			delete(x.buckets[b], h)
			continue
		}
		x.buckets[b][h] = append(bucket[:i], bucket[i+1:]...)
	}
}

// bandHashesOf collapses each band of a signature to one uint64 bucket key
// via a running mix (band index seeds the chain so identical row values in
// different bands hash apart).
func (x *LSHIndex) bandHashesOf(sig []uint32) []uint64 {
	return x.appendBandHashes(nil, sig)
}

// appendBandHashes is bandHashesOf into caller-provided storage.
func (x *LSHIndex) appendBandHashes(dst []uint64, sig []uint32) []uint64 {
	bh := dst
	if cap(bh) < x.params.Bands {
		bh = make([]uint64, x.params.Bands)
	} else {
		bh = bh[:x.params.Bands]
	}
	for b := 0; b < x.params.Bands; b++ {
		h := mix64(uint64(b) + 0x51_7c_c1_b7_27_22_0a_95)
		for r := 0; r < x.params.Rows; r++ {
			h = mix64(h ^ uint64(sig[b*x.params.Rows+r]))
		}
		bh[b] = h
	}
	return bh
}

// Pairs implements CandidateIndex. A pair sharing several bands is emitted
// only from the first band it shares, so enumeration needs no cross-bucket
// dedup set — per-pair dedup is an O(Bands) scan of the two cached
// band-hash vectors. Buckets are maintained sorted, so members enumerate
// in order with no per-bucket sort.
func (x *LSHIndex) Pairs(yield func(a, b string)) {
	for b, bandBuckets := range x.buckets {
		for _, members := range bandBuckets {
			for i := 0; i < len(members); i++ {
				bhI := x.bandHashes[members[i]]
				for j := i + 1; j < len(members); j++ {
					if firstSharedBand(bhI, x.bandHashes[members[j]]) == b {
						yield(members[i], members[j])
					}
				}
			}
		}
	}
}

// Partners implements CandidateIndex.
func (x *LSHIndex) Partners(id string, yield func(partner string)) {
	bh, ok := x.bandHashes[id]
	if !ok {
		return
	}
	seen := getSeen(id)
	defer putSeen(seen)
	for b, h := range bh {
		for _, p := range x.buckets[b][h] {
			if !seen[p] {
				seen[p] = true
				yield(p)
			}
		}
	}
}

// firstSharedBand returns the lowest band index at which the two band-hash
// vectors agree, or -1 if none.
func firstSharedBand(a, b []uint64) int {
	for i := range a {
		if a[i] == b[i] {
			return i
		}
	}
	return -1
}

func sigsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
