package similarity

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestAttrExactPolicy(t *testing.T) {
	p := ExactAttrPolicy()
	a := model.Attributes{"country": model.Str("jp"), "age": model.Num(30)}
	b := model.Attributes{"country": model.Str("jp"), "age": model.Num(30)}
	if got := p.Similarity(a, b); got != 1 {
		t.Errorf("identical sets = %v, want 1", got)
	}
	b["age"] = model.Num(31)
	if got := p.Similarity(a, b); got != 0.5 {
		t.Errorf("one mismatched field = %v, want 0.5", got)
	}
}

func TestAttrTolerantPolicy(t *testing.T) {
	p := TolerantAttrPolicy(0.1)
	a := model.Attributes{"ratio": model.Num(0.90)}
	cases := []struct {
		val  float64
		want float64
	}{
		{0.90, 1},   // exact
		{0.95, 1},   // within tolerance
		{1.00, 1},   // at tolerance boundary
		{0.75, 0.5}, // halfway into the decay band (d=0.15)
		{0.70, 0},   // at 2*tolerance
		{0.50, 0},   // far out
	}
	for _, c := range cases {
		b := model.Attributes{"ratio": model.Num(c.val)}
		if got := p.Similarity(a, b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("tolerance sim at %v = %v, want %v", c.val, got, c.want)
		}
	}
}

func TestAttrFieldToleranceOverride(t *testing.T) {
	p := AttrPolicy{NumTolerance: 0.01, FieldTolerance: map[string]float64{"loose": 10}}
	a := model.Attributes{"loose": model.Num(0), "tight": model.Num(0)}
	b := model.Attributes{"loose": model.Num(5), "tight": model.Num(5)}
	// loose matches (tolerance 10), tight does not (tolerance 0.01).
	if got := p.Similarity(a, b); got != 0.5 {
		t.Errorf("override sim = %v, want 0.5", got)
	}
}

func TestAttrMissingFields(t *testing.T) {
	p := ExactAttrPolicy()
	a := model.Attributes{"x": model.Num(1), "y": model.Num(2)}
	b := model.Attributes{"x": model.Num(1)}
	if got := p.Similarity(a, b); got != 0.5 {
		t.Errorf("missing field = %v, want 0.5", got)
	}
	p.MissingPenalty = 1
	if got := p.Similarity(a, b); got != 1 {
		t.Errorf("forgiving missing = %v, want 1", got)
	}
}

func TestAttrIgnoreFields(t *testing.T) {
	p := AttrPolicy{IgnoreFields: map[string]bool{"internal_id": true}}
	a := model.Attributes{"internal_id": model.Str("a"), "country": model.Str("jp")}
	b := model.Attributes{"internal_id": model.Str("b"), "country": model.Str("jp")}
	if got := p.Similarity(a, b); got != 1 {
		t.Errorf("ignored field still compared: %v", got)
	}
	// A set containing only ignored fields is vacuously identical.
	onlyIgnored := model.Attributes{"internal_id": model.Str("a")}
	if got := p.Similarity(onlyIgnored, model.Attributes{}); got != 1 {
		t.Errorf("only-ignored similarity = %v, want 1", got)
	}
}

func TestAttrKindMismatch(t *testing.T) {
	p := ExactAttrPolicy()
	a := model.Attributes{"v": model.Num(1)}
	b := model.Attributes{"v": model.Str("1")}
	if got := p.Similarity(a, b); got != 0 {
		t.Errorf("kind mismatch = %v, want 0", got)
	}
}

func TestAttrEmptySets(t *testing.T) {
	p := ExactAttrPolicy()
	if got := p.Similarity(nil, nil); got != 1 {
		t.Errorf("two empty sets = %v, want 1", got)
	}
	if got := p.Similarity(model.Attributes{"x": model.Num(1)}, nil); got != 0 {
		t.Errorf("empty vs non-empty = %v, want 0", got)
	}
}

func TestAttrSimilarityProperties(t *testing.T) {
	p := TolerantAttrPolicy(0.5)
	f := func(keys []string, nums []float64) bool {
		a := make(model.Attributes)
		b := make(model.Attributes)
		for i, k := range keys {
			if i >= len(nums) {
				break
			}
			v := nums[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			a[k] = model.Num(v)
			if i%2 == 0 {
				b[k] = model.Num(v)
			}
		}
		ab, ba := p.Similarity(a, b), p.Similarity(b, a)
		if math.Abs(ab-ba) > 1e-12 {
			return false
		}
		if ab < 0 || ab > 1 {
			return false
		}
		return p.Similarity(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
