package similarity

import (
	"math"

	"repro/internal/model"
)

// AttrPolicy configures how two attribute sets (A_w or C_w) are compared.
// Axiom 1 requires comparing both the declared and computed attribute sets
// of two workers; the paper leaves the measure platform-dependent, so the
// policy supports exact categorical matching plus per-field numeric
// tolerances.
type AttrPolicy struct {
	// NumTolerance is the default absolute tolerance for numeric
	// attributes: |a-b| <= NumTolerance counts as a full match, with
	// similarity decaying linearly to 0 at 2*NumTolerance.
	// A zero tolerance demands exact numeric equality.
	NumTolerance float64
	// FieldTolerance overrides NumTolerance per attribute name.
	FieldTolerance map[string]float64
	// IgnoreFields lists attributes excluded from comparison (e.g. an
	// opaque internal id that happens to live in the attribute map).
	IgnoreFields map[string]bool
	// MissingPenalty is the similarity contributed by a field present on
	// one side only. 0 (the default) treats asymmetric fields as complete
	// mismatches.
	MissingPenalty float64
}

// fieldSim scores one attribute pair in [0,1].
func (p AttrPolicy) fieldSim(name string, a, b model.AttrValue) float64 {
	if a.Kind != b.Kind {
		return 0
	}
	if a.Kind == model.AttrStr {
		if a.Str == b.Str {
			return 1
		}
		return 0
	}
	tol := p.NumTolerance
	if t, ok := p.FieldTolerance[name]; ok {
		tol = t
	}
	d := math.Abs(a.Num - b.Num)
	switch {
	case d <= tol:
		return 1
	case tol == 0:
		return 0
	case d >= 2*tol:
		return 0
	default:
		return 1 - (d-tol)/tol
	}
}

// Similarity returns the mean per-field similarity of the two attribute
// sets over the union of their field names, in [0,1]. Two empty sets are
// identical (1). The union is walked without building an intermediate set:
// this function sits on the hot path of the Axiom-1 checker, which calls it
// twice per candidate worker pair.
func (p AttrPolicy) Similarity(a, b model.Attributes) float64 {
	var total float64
	union := 0
	for name, av := range a {
		if p.IgnoreFields[name] {
			continue
		}
		union++
		if bv, ok := b[name]; ok {
			total += p.fieldSim(name, av, bv)
		} else {
			total += p.MissingPenalty
		}
	}
	for name := range b {
		if p.IgnoreFields[name] {
			continue
		}
		if _, ok := a[name]; ok {
			continue // already counted in the first pass
		}
		union++
		total += p.MissingPenalty
	}
	if union == 0 {
		return 1
	}
	return total / float64(union)
}

// ExactAttrPolicy demands perfect equality on every shared field and
// penalises asymmetric fields fully — the strict end of the paper's
// similarity spectrum.
func ExactAttrPolicy() AttrPolicy { return AttrPolicy{} }

// TolerantAttrPolicy returns a policy with the given default numeric
// tolerance, suitable for computed attributes like acceptance ratios where
// small differences should not distinguish workers.
func TolerantAttrPolicy(numTolerance float64) AttrPolicy {
	return AttrPolicy{NumTolerance: numTolerance}
}
