package similarity

import "repro/internal/model"

// ContributionSimilarity compares two contributions to the same task using
// the measure appropriate to their payload, per the paper's Axiom 3
// discussion: n-gram cosine similarity for text, nDCG-based similarity for
// ranked lists. Mixed payloads (one text, one ranking) compare as 0.
// When both payloads are empty the contributions are trivially identical.
func ContributionSimilarity(a, b *model.Contribution) float64 {
	aRanked := len(a.Ranking) > 0
	bRanked := len(b.Ranking) > 0
	switch {
	case aRanked && bRanked:
		// Symmetrise: nDCG is reference-directional, so average both ways.
		return (RankingSimilarity(a.Ranking, b.Ranking) + RankingSimilarity(b.Ranking, a.Ranking)) / 2
	case aRanked != bRanked:
		return 0
	case a.Text == "" && b.Text == "":
		return 1
	default:
		return TextSimilarity(a.Text, b.Text)
	}
}
