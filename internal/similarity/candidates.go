package similarity

import "sort"

// CandidateIndex generates the candidate pairs a similarity audit examines,
// replacing the O(n²) all-pairs scan. An index holds one entry per entity
// id, described by a token set (skill indices, attribute buckets, n-gram
// hashes — the caller chooses the tokenisation), and answers two queries:
// every candidate pair currently in scope (Pairs, the full-scan path) and
// the candidate partners of one entity (Partners, the delta path). Both
// views are guaranteed to describe the same pair set, which is what lets an
// incremental auditor's candidate-pair census stay equal to a full scan's.
//
// Upsert is incremental: re-describing an entity re-indexes only that
// entity. Implementations are deterministic — the candidate pair SET is a
// pure function of the current entries (and, for LSHIndex, the seed) —
// but enumeration ORDER is unspecified; consumers must not depend on it.
// Indexes are not safe for concurrent mutation; the audit engine serialises
// access behind its own lock.
type CandidateIndex interface {
	// Name identifies the implementation ("exact" or "lsh").
	Name() string
	// Upsert adds or re-describes an entity. The previous token set, if
	// any, is fully replaced.
	Upsert(id string, tokens []uint64)
	// Remove deletes an entity (a no-op for unknown ids).
	Remove(id string)
	// Len returns the number of indexed entities.
	Len() int
	// Pairs calls yield exactly once for every candidate pair, with a < b.
	Pairs(yield func(a, b string))
	// Partners calls yield exactly once for every candidate partner of id
	// (never id itself); a no-op for unknown ids.
	Partners(id string, yield func(partner string))
}

// ExactIndex is the inverted-token-index CandidateIndex: a pair is a
// candidate iff the two entities share at least one token. With skill
// indices as tokens this reproduces the store's skill-sharing candidate
// generation exactly — the escape hatch and determinism oracle the pruned
// index is validated against. Recall is 1 by construction (for token
// schemes where similar entities always share a token).
type ExactIndex struct {
	// tokens holds each id's sorted, deduplicated token set.
	tokens map[string][]uint64
	// buckets is the inverted index: token -> member ids.
	buckets map[uint64]map[string]bool
}

// NewExactIndex returns an empty exact index.
func NewExactIndex() *ExactIndex {
	return &ExactIndex{
		tokens:  make(map[string][]uint64),
		buckets: make(map[uint64]map[string]bool),
	}
}

// Name implements CandidateIndex.
func (x *ExactIndex) Name() string { return "exact" }

// Len implements CandidateIndex.
func (x *ExactIndex) Len() int { return len(x.tokens) }

// Upsert implements CandidateIndex.
func (x *ExactIndex) Upsert(id string, tokens []uint64) {
	ts := normaliseTokens(tokens)
	if old, ok := x.tokens[id]; ok {
		if tokensEqual(old, ts) {
			return
		}
		x.dropFromBuckets(id, old)
	}
	x.tokens[id] = ts
	for _, t := range ts {
		b := x.buckets[t]
		if b == nil {
			b = make(map[string]bool)
			x.buckets[t] = b
		}
		b[id] = true
	}
}

// Remove implements CandidateIndex.
func (x *ExactIndex) Remove(id string) {
	old, ok := x.tokens[id]
	if !ok {
		return
	}
	x.dropFromBuckets(id, old)
	delete(x.tokens, id)
}

func (x *ExactIndex) dropFromBuckets(id string, tokens []uint64) {
	for _, t := range tokens {
		if b := x.buckets[t]; b != nil {
			delete(b, id)
			if len(b) == 0 {
				delete(x.buckets, t)
			}
		}
	}
}

// Pairs implements CandidateIndex. Each bucket contributes its member
// pairs, and the pair is emitted only from the bucket of the smallest
// token the two ids share, so no pair is yielded twice and no cross-bucket
// dedup set is ever materialised — enumeration streams in O(1) extra
// memory no matter how many candidate pairs exist.
func (x *ExactIndex) Pairs(yield func(a, b string)) {
	for t, b := range x.buckets {
		if len(b) < 2 {
			continue
		}
		members := make([]string, 0, len(b))
		for id := range b {
			members = append(members, id)
		}
		sort.Strings(members)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if smallestSharedToken(x.tokens[members[i]], x.tokens[members[j]]) == t {
					yield(members[i], members[j])
				}
			}
		}
	}
}

// Partners implements CandidateIndex.
func (x *ExactIndex) Partners(id string, yield func(partner string)) {
	ts, ok := x.tokens[id]
	if !ok {
		return
	}
	seen := getSeen(id)
	defer putSeen(seen)
	for _, t := range ts {
		for p := range x.buckets[t] {
			if !seen[p] {
				seen[p] = true
				yield(p)
			}
		}
	}
}

// smallestSharedToken merges two sorted token sets and returns their
// smallest common token (both sets are known to share at least one when
// called from Pairs).
func smallestSharedToken(a, b []uint64) uint64 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return a[i]
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return emptyTokenSentinel
}

// emptyTokenSentinel is returned by smallestSharedToken for disjoint sets;
// it is never a bucket key for a shared pair because normaliseTokens keeps
// real tokens as-is.
const emptyTokenSentinel = ^uint64(0)

// normaliseTokens returns a sorted, deduplicated copy of tokens.
func normaliseTokens(tokens []uint64) []uint64 {
	out := append([]uint64(nil), tokens...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, t := range out {
		if i == 0 || t != out[w-1] {
			out[w] = t
			w++
		}
	}
	return out[:w]
}

func tokensEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
