package similarity

import (
	"math"
	"strings"
)

// NGramProfile is a frequency vector of character n-grams of a text, the
// language-independent representation of Damashek (Science, 1995) that the
// paper recommends for comparing textual contributions under Axiom 3.
type NGramProfile struct {
	n      int
	counts map[string]float64
	norm   float64
}

// NewNGramProfile builds the n-gram profile of text. Whitespace runs are
// collapsed to single spaces and the text is lowercased, following
// Damashek's preprocessing. n must be >= 1; it panics otherwise.
func NewNGramProfile(text string, n int) *NGramProfile {
	if n < 1 {
		panic("similarity: n-gram size must be >= 1")
	}
	normalised := strings.ToLower(strings.Join(strings.Fields(text), " "))
	p := &NGramProfile{n: n, counts: make(map[string]float64)}
	runes := []rune(normalised)
	if len(runes) < n {
		if len(runes) > 0 {
			p.counts[string(runes)]++
		}
	} else {
		for i := 0; i+n <= len(runes); i++ {
			p.counts[string(runes[i:i+n])]++
		}
	}
	var sq float64
	for _, c := range p.counts {
		sq += c * c
	}
	p.norm = math.Sqrt(sq)
	return p
}

// N returns the n-gram size.
func (p *NGramProfile) N() int { return p.n }

// Grams returns the number of distinct n-grams in the profile.
func (p *NGramProfile) Grams() int { return len(p.counts) }

// Similarity returns the cosine similarity between two profiles, in [0,1].
// Profiles of different n compare as 0; two empty texts compare as 1.
func (p *NGramProfile) Similarity(q *NGramProfile) float64 {
	if p.n != q.n {
		return 0
	}
	if p.norm == 0 && q.norm == 0 {
		return 1
	}
	if p.norm == 0 || q.norm == 0 {
		return 0
	}
	// Iterate the smaller map.
	a, b := p, q
	if len(b.counts) < len(a.counts) {
		a, b = b, a
	}
	var dot float64
	for g, ca := range a.counts {
		if cb, ok := b.counts[g]; ok {
			dot += ca * cb
		}
	}
	return dot / (p.norm * q.norm)
}

// TextNGramTokens returns the hashed distinct n-grams of text under the
// same preprocessing as NewNGramProfile — the token-set view of a text
// that candidate indexes consume. An empty (or whitespace-only) text
// yields no tokens.
func TextNGramTokens(text string, n int) []uint64 {
	p := NewNGramProfile(text, n)
	out := make([]uint64, 0, len(p.counts))
	for g := range p.counts {
		out = append(out, HashToken(g))
	}
	return out
}

// TextSimilarity is a convenience wrapper: the n-gram cosine similarity of
// two texts with the conventional n=3 (trigram) profile.
func TextSimilarity(a, b string) float64 {
	return TextSimilarityN(a, b, 3)
}

// TextSimilarityN computes n-gram similarity with an explicit n.
func TextSimilarityN(a, b string, n int) float64 {
	return NewNGramProfile(a, n).Similarity(NewNGramProfile(b, n))
}
