package similarity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDCGKnownValue(t *testing.T) {
	// DCG([3,2,1]) = 3 + 2/log2(3) + 1/2.
	want := 3 + 2/math.Log2(3) + 0.5
	if got := DCG([]float64{3, 2, 1}); math.Abs(got-want) > 1e-9 {
		t.Errorf("DCG = %v, want %v", got, want)
	}
	if DCG(nil) != 0 {
		t.Error("empty DCG should be 0")
	}
}

func TestNDCG(t *testing.T) {
	if got := NDCG([]float64{3, 2, 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("ideal order nDCG = %v, want 1", got)
	}
	rev := NDCG([]float64{1, 2, 3})
	if rev >= 1 || rev <= 0 {
		t.Errorf("reversed order nDCG = %v, want in (0,1)", rev)
	}
	if NDCG([]float64{0, 0}) != 1 {
		t.Error("all-zero gains should be trivially ideal")
	}
}

func TestNDCGRangeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		gains := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Bound gains to a realistic relevance scale; 1e308 sums
			// overflow any DCG computation.
			gains = append(gains, math.Mod(math.Abs(x), 1000))
		}
		v := NDCG(gains)
		return v >= 0 && v <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRankingSimilarityIdentical(t *testing.T) {
	r := []string{"a", "b", "c"}
	if got := RankingSimilarity(r, r); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical rankings = %v, want 1", got)
	}
}

func TestRankingSimilarityEmpty(t *testing.T) {
	if RankingSimilarity(nil, nil) != 1 {
		t.Error("two empty rankings should be 1")
	}
	if got := RankingSimilarity(nil, []string{"a"}); got != 0 {
		t.Errorf("empty submission vs non-empty reference = %v, want 0", got)
	}
}

func TestRankingSimilarityTopWeighted(t *testing.T) {
	ref := []string{"a", "b", "c", "d"}
	topSwap := RankingSimilarity([]string{"b", "a", "c", "d"}, ref)
	botSwap := RankingSimilarity([]string{"a", "b", "d", "c"}, ref)
	if topSwap >= botSwap {
		t.Errorf("top swap (%v) should hurt more than bottom swap (%v)", topSwap, botSwap)
	}
}

func TestRankingSimilarityMissingItems(t *testing.T) {
	ref := []string{"a", "b", "c"}
	got := RankingSimilarity([]string{"x", "y", "z"}, ref)
	if got != 0 {
		t.Errorf("fully-foreign ranking = %v, want 0", got)
	}
	partial := RankingSimilarity([]string{"a", "x", "y"}, ref)
	if partial <= 0 || partial >= 1 {
		t.Errorf("partial ranking = %v, want in (0,1)", partial)
	}
}

func TestKendallTau(t *testing.T) {
	a := []string{"x", "y", "z"}
	if got := KendallTau(a, a); got != 1 {
		t.Errorf("identical tau = %v, want 1", got)
	}
	if got := KendallTau(a, []string{"z", "y", "x"}); got != 0 {
		t.Errorf("reversed tau = %v, want 0", got)
	}
	if got := KendallTau(a, []string{"x", "z", "y"}); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("one-swap tau = %v, want 2/3", got)
	}
}

func TestKendallTauDisjoint(t *testing.T) {
	if got := KendallTau([]string{"a"}, []string{"b"}); got != 1 {
		t.Errorf("no shared items tau = %v, want 1 (vacuous)", got)
	}
}

func TestKendallTauIgnoresUnshared(t *testing.T) {
	a := []string{"a", "q", "b", "c"}
	b := []string{"a", "b", "r", "c"}
	if got := KendallTau(a, b); got != 1 {
		t.Errorf("tau over shared subsequence = %v, want 1", got)
	}
}
