package similarity

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func vec(bits string) model.SkillVector {
	v := model.NewSkillVector(len(bits))
	for i := range bits {
		v[i] = bits[i] == '1'
	}
	return v
}

func TestCosineKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"110", "110", 1},
		{"100", "010", 0},
		{"110", "011", 0.5},
		{"000", "000", 1},
		{"000", "100", 0},
	}
	for _, c := range cases {
		if got := Cosine(vec(c.a), vec(c.b)); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Cosine(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"110", "110", 1},
		{"110", "011", 1.0 / 3},
		{"100", "010", 0},
		{"000", "000", 1},
	}
	for _, c := range cases {
		if got := Jaccard(vec(c.a), vec(c.b)); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Jaccard(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDiceKnownValues(t *testing.T) {
	if got := Dice(vec("110"), vec("011")); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Dice = %v, want 0.5", got)
	}
	if Dice(vec("00"), vec("00")) != 1 {
		t.Error("empty Dice should be 1")
	}
}

func TestHammingKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"1010", "1010", 1},
		{"1010", "0101", 0},
		{"1100", "1000", 0.75},
		{"", "", 1},
	}
	for _, c := range cases {
		if got := Hamming(vec(c.a), vec(c.b)); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Hamming(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestHammingDifferentLengths(t *testing.T) {
	// Missing positions are false: "1" vs "10" agree everywhere.
	if got := Hamming(vec("1"), vec("10")); got != 1 {
		t.Errorf("Hamming over shorter vector = %v, want 1", got)
	}
	if got := Hamming(vec("1"), vec("11")); got != 0.5 {
		t.Errorf("Hamming with extra set bit = %v, want 0.5", got)
	}
}

func TestMeasureExact(t *testing.T) {
	if MeasureExact.Func(vec("101"), vec("101")) != 1 {
		t.Error("exact equal = 0")
	}
	if MeasureExact.Func(vec("101"), vec("100")) != 0 {
		t.Error("exact unequal = 1")
	}
}

func TestVectorMeasureByName(t *testing.T) {
	for _, name := range []string{"cosine", "jaccard", "dice", "hamming", "exact"} {
		m, ok := VectorMeasureByName(name)
		if !ok || m.Name != name {
			t.Errorf("measure %q not resolvable", name)
		}
	}
	if _, ok := VectorMeasureByName("nope"); ok {
		t.Error("unknown measure resolved")
	}
}

// Properties every measure must satisfy: symmetry, range [0,1], and
// self-similarity 1.
func TestMeasureProperties(t *testing.T) {
	measures := []VectorMeasure{MeasureCosine, MeasureJaccard, MeasureDice, MeasureHamming, MeasureExact}
	f := func(aBits, bBits []bool) bool {
		a, b := model.SkillVector(aBits), model.SkillVector(bBits)
		// Pad to equal length: the axioms compare same-universe vectors.
		for len(a) < len(b) {
			a = append(a, false)
		}
		for len(b) < len(a) {
			b = append(b, false)
		}
		for _, m := range measures {
			ab, ba := m.Func(a, b), m.Func(b, a)
			if math.Abs(ab-ba) > 1e-12 {
				return false
			}
			if ab < 0 || ab > 1 {
				return false
			}
			if m.Func(a, a) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
