package similarity

import "math"

// MinHash signatures over uint64 token sets, the candidate-pruning kernel
// behind LSHIndex. A MinHasher is a seed-deterministic family of k hash
// functions h_i(t) = (aᵢ·mix64(t) + bᵢ) >> 32 — one strong base hash per
// token, then a 2-universal multiply-add-shift per slot (Dietzfelbinger's
// scheme, the shape MinHash libraries conventionally use), which keeps
// signature cost at one multiply-add per slot instead of a full avalanche
// mix. The signature of a token set is the per-function minimum. Two sets'
// signatures agree at position i with probability (approximately) equal to
// their Jaccard similarity, which is what the banded index exploits — and
// what the recall-bound test pins empirically. The same seed always yields
// the same family, so signatures — and therefore candidate sets and audit
// reports — are byte-identical run to run.

// emptySlot is the signature value of a position no token ever hashed to
// (only possible for an empty token set).
const emptySlot = uint32(math.MaxUint32)

// mix64 is the splitmix64 finalizer: an invertible avalanche mix whose
// output behaves as a uniform hash of its input.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Mix64 exposes the mixer for callers composing their own token hashes
// (e.g. combining a field-name hash with a bucketed value).
func Mix64(x uint64) uint64 { return mix64(x) }

// HashToken maps an arbitrary string to a uint64 token (FNV-1a folded
// through mix64, so short strings still spread over the full word).
func HashToken(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// MinHasher is a fixed family of k seed-derived hash functions. Safe for
// concurrent use (it is immutable after construction).
type MinHasher struct {
	a []uint64 // odd multipliers
	b []uint64 // offsets
}

// NewMinHasher derives a k-function family from seed. The multiplier and
// offset streams follow the splitmix64 sequence (multipliers forced odd,
// as multiply-add-shift requires), so distinct seeds give independent
// families and the same seed always gives the same one. k must be >= 1;
// it panics otherwise.
func NewMinHasher(k int, seed uint64) *MinHasher {
	if k < 1 {
		panic("similarity: minhash family size must be >= 1")
	}
	m := &MinHasher{a: make([]uint64, k), b: make([]uint64, k)}
	s := seed
	for i := range m.a {
		s += 0x9e3779b97f4a7c15
		m.a[i] = mix64(s) | 1
		s += 0x9e3779b97f4a7c15
		m.b[i] = mix64(s)
	}
	return m
}

// K returns the family size (the signature length).
func (m *MinHasher) K() int { return len(m.a) }

// Signature computes the k-slot MinHash signature of a token set.
// Duplicate tokens are harmless (min is idempotent); an empty set yields
// the all-emptySlot signature, which collides only with other empty sets.
func (m *MinHasher) Signature(tokens []uint64) []uint32 {
	return m.AppendSignature(nil, tokens)
}

// AppendSignature is Signature into caller-provided storage: dst is resized
// (reallocating only when capacity is short) and returned. It lets index
// code recycle signature buffers through a freelist instead of allocating
// one slice per hashed entity.
func (m *MinHasher) AppendSignature(dst []uint32, tokens []uint64) []uint32 {
	sig := dst
	if cap(sig) < len(m.a) {
		sig = make([]uint32, len(m.a))
	} else {
		sig = sig[:len(m.a)]
	}
	for i := range sig {
		sig[i] = emptySlot
	}
	a, b := m.a, m.b
	for _, t := range tokens {
		h := mix64(t)
		for i := range a {
			if v := uint32((a[i]*h + b[i]) >> 32); v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// EstimateJaccard estimates the Jaccard similarity of the two token sets a
// pair of equal-length signatures was computed from: the fraction of
// agreeing slots. It panics on length mismatch (signatures from different
// families are not comparable).
func EstimateJaccard(a, b []uint32) float64 {
	if len(a) != len(b) {
		panic("similarity: signatures of different minhash families")
	}
	if len(a) == 0 {
		return 1
	}
	agree := 0
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(a))
}
