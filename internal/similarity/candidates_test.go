package similarity

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// collectPairs drains an index's Pairs enumeration into a sorted,
// canonical "a|b" key list, failing on ordering or duplicate violations.
func collectPairs(t *testing.T, ix CandidateIndex) []string {
	t.Helper()
	seen := make(map[string]bool)
	ix.Pairs(func(a, b string) {
		if a >= b {
			t.Fatalf("Pairs yielded (%q, %q): not ordered a < b", a, b)
		}
		key := a + "|" + b
		if seen[key] {
			t.Fatalf("Pairs yielded (%q, %q) twice", a, b)
		}
		seen[key] = true
	})
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// collectPartners drains Partners(id) into a sorted list, failing on
// duplicates or self-emission.
func collectPartners(t *testing.T, ix CandidateIndex, id string) []string {
	t.Helper()
	seen := make(map[string]bool)
	ix.Partners(id, func(p string) {
		if p == id {
			t.Fatalf("Partners(%q) yielded the id itself", id)
		}
		if seen[p] {
			t.Fatalf("Partners(%q) yielded %q twice", id, p)
		}
		seen[p] = true
	})
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// randomTokenSets builds n token sets drawn from a small universe so
// overlaps are common.
func randomTokenSets(rng *rand.Rand, n, universe, maxLen int) map[string][]uint64 {
	sets := make(map[string][]uint64, n)
	for i := 0; i < n; i++ {
		ln := rng.Intn(maxLen + 1)
		toks := make([]uint64, 0, ln)
		for j := 0; j < ln; j++ {
			toks = append(toks, uint64(rng.Intn(universe)))
		}
		sets[fmt.Sprintf("e%03d", i)] = toks
	}
	return sets
}

func TestExactIndexMatchesSharedTokenOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sets := randomTokenSets(rng, 60, 12, 5)
	ix := NewExactIndex()
	for id, toks := range sets {
		ix.Upsert(id, toks)
	}
	if ix.Len() != len(sets) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(sets))
	}

	var want []string
	ids := make([]string, 0, len(sets))
	for id := range sets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if smallestSharedToken(normaliseTokens(sets[ids[i]]), normaliseTokens(sets[ids[j]])) != emptyTokenSentinel {
				want = append(want, ids[i]+"|"+ids[j])
			}
		}
	}

	got := collectPairs(t, ix)
	if !equalStrings(got, want) {
		t.Fatalf("ExactIndex pairs = %d, oracle = %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}

	// Partners must describe exactly the same pair set as Pairs.
	for _, id := range ids {
		var want []string
		for _, other := range ids {
			if other == id {
				continue
			}
			a, b := id, other
			if a > b {
				a, b = b, a
			}
			if contains(got, a+"|"+b) {
				want = append(want, other)
			}
		}
		sort.Strings(want)
		if ps := collectPartners(t, ix, id); !equalStrings(ps, want) {
			t.Fatalf("Partners(%q) = %v, want %v", id, ps, want)
		}
	}
}

func TestExactIndexUpsertReplacesAndRemoveDeletes(t *testing.T) {
	ix := NewExactIndex()
	ix.Upsert("a", []uint64{1, 2})
	ix.Upsert("b", []uint64{1, 2})
	ix.Upsert("c", []uint64{3})
	if got := collectPairs(t, ix); !equalStrings(got, []string{"a|b"}) {
		t.Fatalf("initial pairs = %v", got)
	}
	// Re-describing a moves it away from b and next to c.
	ix.Upsert("a", []uint64{3})
	if got := collectPairs(t, ix); !equalStrings(got, []string{"a|c"}) {
		t.Fatalf("after upsert pairs = %v", got)
	}
	ix.Remove("c")
	if got := collectPairs(t, ix); len(got) != 0 {
		t.Fatalf("after remove pairs = %v, want none", got)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
	ix.Remove("zzz") // unknown id: no-op
}

func TestLSHIndexIncrementalEqualsBatch(t *testing.T) {
	params := LSHParams{Bands: 8, Rows: 4, Seed: 99}
	rng := rand.New(rand.NewSource(3))
	sets := randomTokenSets(rng, 80, 30, 8)

	batch := NewLSHIndex(params)
	for id, toks := range sets {
		batch.Upsert(id, toks)
	}

	// Incremental: insert everything with garbage tokens first, churn with
	// removals, then upsert the real sets one at a time.
	inc := NewLSHIndex(params)
	for id := range sets {
		inc.Upsert(id, []uint64{^uint64(0) - 1})
	}
	ids := make([]string, 0, len(sets))
	for id := range sets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for i, id := range ids {
		if i%3 == 0 {
			inc.Remove(id)
		}
		inc.Upsert(id, sets[id])
	}

	gb, gi := collectPairs(t, batch), collectPairs(t, inc)
	if !equalStrings(gb, gi) {
		t.Fatalf("batch build yields %d pairs, incremental %d", len(gb), len(gi))
	}

	// Same seed + same data => identical candidate sets on a fresh index.
	again := NewLSHIndex(params)
	for id, toks := range sets {
		again.Upsert(id, toks)
	}
	if ga := collectPairs(t, again); !equalStrings(ga, gb) {
		t.Fatal("identical seed and data gave different candidate sets")
	}

	// Partners view must agree with the Pairs view.
	for _, id := range ids[:20] {
		var want []string
		for _, other := range ids {
			if other == id {
				continue
			}
			a, b := id, other
			if a > b {
				a, b = b, a
			}
			if contains(gb, a+"|"+b) {
				want = append(want, other)
			}
		}
		sort.Strings(want)
		if ps := collectPartners(t, batch, id); !equalStrings(ps, want) {
			t.Fatalf("Partners(%q) = %v, want %v", id, ps, want)
		}
	}
}

func TestLSHIndexUpsertSignatureMatchesUpsert(t *testing.T) {
	params := LSHParams{Bands: 6, Rows: 4, Seed: 5}
	rng := rand.New(rand.NewSource(11))
	sets := randomTokenSets(rng, 40, 20, 6)

	direct := NewLSHIndex(params)
	viaSig := NewLSHIndex(params)
	for id, toks := range sets {
		direct.Upsert(id, toks)
		viaSig.UpsertSignature(id, viaSig.Hasher().Signature(toks))
	}
	if got, want := collectPairs(t, viaSig), collectPairs(t, direct); !equalStrings(got, want) {
		t.Fatalf("UpsertSignature pairs %d != Upsert pairs %d", len(got), len(want))
	}
	if direct.Signature("e000") == nil {
		t.Fatal("Signature lookup returned nil for an indexed id")
	}
	if direct.Signature("missing") != nil {
		t.Fatal("Signature lookup returned non-nil for an unknown id")
	}
}

func TestLSHIndexBulkUpsertMatchesSerial(t *testing.T) {
	params := LSHParams{Bands: 6, Rows: 4, Seed: 5}
	rng := rand.New(rand.NewSource(13))
	sets := randomTokenSets(rng, 60, 20, 6)
	ids := make([]string, 0, len(sets))
	for id := range sets {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	serial := NewLSHIndex(params)
	bulk := NewLSHIndex(params)
	sigs := make([][]uint32, len(ids))
	for i, id := range ids {
		sig := serial.Hasher().Signature(sets[id])
		serial.UpsertSignature(id, sig)
		sigs[i] = sig
	}
	bulk.BulkUpsertSignatures(ids, sigs)
	if got, want := collectPairs(t, bulk), collectPairs(t, serial); !equalStrings(got, want) {
		t.Fatalf("bulk pairs %d != serial pairs %d", len(got), len(want))
	}

	// Re-upserting a mix of unchanged and replaced signatures must keep the
	// two indexes identical: the bulk path's skip/replace pre-pass has to
	// match UpsertSignature's semantics.
	for i, id := range ids {
		if i%3 == 0 {
			sigs[i] = serial.Hasher().Signature(append(append([]uint64(nil), sets[id]...), uint64(7_000+i)))
		}
		serial.UpsertSignature(id, sigs[i])
	}
	bulk.BulkUpsertSignatures(ids, sigs)
	if got, want := collectPairs(t, bulk), collectPairs(t, serial); !equalStrings(got, want) {
		t.Fatalf("after replacement: bulk pairs %d != serial pairs %d", len(got), len(want))
	}
	for _, id := range ids[:10] {
		if got, want := collectPartners(t, bulk, id), collectPartners(t, serial, id); !equalStrings(got, want) {
			t.Fatalf("Partners(%q): bulk %v != serial %v", id, got, want)
		}
	}
}

func TestMinHashDeterminismAndJaccard(t *testing.T) {
	a := NewMinHasher(128, 42)
	b := NewMinHasher(128, 42)
	toks := []uint64{1, 5, 9, 1 << 40}
	sa, sb := a.Signature(toks), b.Signature(toks)
	if !sigsEqual(sa, sb) {
		t.Fatal("same seed gave different signatures")
	}
	c := NewMinHasher(128, 43)
	if sigsEqual(sa, c.Signature(toks)) {
		t.Fatal("different seeds gave identical signatures (astronomically unlikely)")
	}
	if got := EstimateJaccard(sa, sb); got != 1 {
		t.Fatalf("identical sets: estimate = %v, want 1", got)
	}

	// Estimate should track true Jaccard within MinHash error bounds.
	x := make([]uint64, 0, 200)
	y := make([]uint64, 0, 200)
	for i := uint64(0); i < 200; i++ {
		x = append(x, i)
		y = append(y, i+100) // overlap 100..199: true J = 100/300
	}
	h := NewMinHasher(512, 7)
	est := EstimateJaccard(h.Signature(x), h.Signature(y))
	if est < 0.25 || est > 0.42 {
		t.Fatalf("estimate %v too far from true Jaccard 0.333", est)
	}

	// Empty sets collide only with each other.
	empty := h.Signature(nil)
	if EstimateJaccard(empty, h.Signature(nil)) != 1 {
		t.Fatal("two empty sets should estimate 1")
	}
	if EstimateJaccard(empty, h.Signature(x)) != 0 {
		t.Fatal("empty vs non-empty should estimate 0")
	}
}

func TestChooseLSHParams(t *testing.T) {
	p9 := ChooseLSHParams(0.9, 1)
	if p9.Rows < 3 || p9.Rows > 8 || p9.Bands < 4 || p9.Bands > 128 {
		t.Fatalf("params at 0.9 out of range: %+v", p9)
	}
	p8 := ChooseLSHParams(0.8, 1)
	if p8.Rows >= p9.Rows {
		// Higher thresholds afford sharper (more-row) bands within the
		// fixed band budget.
		t.Fatalf("lower threshold should use fewer rows: t=0.8 -> %d, t=0.9 -> %d", p8.Rows, p9.Rows)
	}
	// At the engineered margin s0 = 0.8 t², a pair must be caught with
	// probability >= 0.999 by construction.
	s0 := 0.8 * 0.9 * 0.9
	if p := p9.CandidateProbability(s0); p < 0.999 {
		t.Fatalf("candidate probability at margin = %v, want >= 0.999", p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ChooseLSHParams(0, ...) should panic")
		}
	}()
	ChooseLSHParams(0, 1)
}

func TestHashTokenSpreads(t *testing.T) {
	seen := make(map[uint64]string)
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("skill-%d", i)
		h := HashToken(s)
		if prev, dup := seen[h]; dup {
			t.Fatalf("HashToken collision: %q and %q", prev, s)
		}
		seen[h] = s
	}
	if HashToken("go") != HashToken("go") {
		t.Fatal("HashToken is not deterministic")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func contains(sorted []string, s string) bool {
	i := sort.SearchStrings(sorted, s)
	return i < len(sorted) && sorted[i] == s
}

func TestLSHIndexResetBehavesLikeFresh(t *testing.T) {
	// Reset recycles signature/band-hash storage for the transient-index
	// pool; a Reset index must be observationally identical to a fresh one
	// with the same parameters, across several reuse generations.
	params := LSHParams{Bands: 8, Rows: 4, Seed: 7}
	rng := rand.New(rand.NewSource(11))
	pooled := NewLSHIndex(params)
	for gen := 0; gen < 4; gen++ {
		sets := randomTokenSets(rng, 40, 20, 6)
		fresh := NewLSHIndex(params)
		for id, toks := range sets {
			fresh.Upsert(id, toks)
			pooled.Upsert(id, toks)
		}
		if pooled.Len() != fresh.Len() {
			t.Fatalf("gen %d: Len %d vs fresh %d", gen, pooled.Len(), fresh.Len())
		}
		gp, gf := collectPairs(t, pooled), collectPairs(t, fresh)
		if !equalStrings(gp, gf) {
			t.Fatalf("gen %d: pooled index yields %d pairs, fresh %d", gen, len(gp), len(gf))
		}
		for id := range sets {
			if !sigsEqual(pooled.Signature(id), fresh.Signature(id)) {
				t.Fatalf("gen %d: signature mismatch for %q after reuse", gen, id)
			}
			break
		}
		pooled.Reset()
		if pooled.Len() != 0 {
			t.Fatalf("gen %d: Len %d after Reset, want 0", gen, pooled.Len())
		}
		if ps := collectPairs(t, pooled); len(ps) != 0 {
			t.Fatalf("gen %d: Reset index still yields %d pairs", gen, len(ps))
		}
	}
}
