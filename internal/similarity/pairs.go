package similarity

import (
	"math"

	"repro/internal/model"
	"repro/internal/par"
)

// PairCount returns the number of unordered pairs over n items: n(n-1)/2.
func PairCount(n int) int {
	return n * (n - 1) / 2
}

// pairRowStart returns the linear index of pair (i, i+1): the number of
// pairs in rows 0..i-1, each row r contributing n-1-r pairs.
func pairRowStart(n, i int) int {
	return i * (2*n - i - 1) / 2
}

// PairAt maps a linear pair index k in [0, PairCount(n)) to its (i, j)
// coordinates with i < j, enumerating row by row: (0,1), (0,2), ...,
// (0,n-1), (1,2), ... The mapping is the O(1) inverse of the classic
// nested upper-triangle loop — row i solves the triangular-number
// quadratic, with a float-rounding correction — so parallel shards can
// decode any index directly and still produce results in exactly the
// serial loop's order.
func PairAt(n, k int) (i, j int) {
	d := float64(2*n-1)*float64(2*n-1) - 8*float64(k)
	i = int((float64(2*n-1) - math.Sqrt(d)) / 2)
	if i < 0 {
		i = 0
	}
	for i+1 < n-1 && pairRowStart(n, i+1) <= k {
		i++
	}
	for i > 0 && pairRowStart(n, i) > k {
		i--
	}
	return i, i + 1 + k - pairRowStart(n, i)
}

// PairIndex is the inverse of PairAt: it maps coordinates (i, j) with
// 0 <= i < j < n back to the linear pair index k such that
// PairAt(n, k) == (i, j). It panics if the coordinates are out of range.
func PairIndex(n, i, j int) int {
	if i < 0 || j <= i || j >= n {
		panic("similarity: pair coordinates out of range")
	}
	return pairRowStart(n, i) + j - i - 1
}

// ScorePairs evaluates score(i, j) for every unordered pair over n items,
// fanning the pair space out across a GOMAXPROCS-sized pool. The result is
// indexed by the linear pair order of PairAt, so the output is
// byte-identical to the serial nested loop no matter how the work is
// scheduled. score must be safe for concurrent calls.
func ScorePairs(n int, score func(i, j int) float64) []float64 {
	return ScorePairsInto(nil, n, score)
}

// ScorePairsInto is ScorePairs into caller-provided storage: dst is resized
// to PairCount(n) (reallocating only when capacity is short) and returned.
// It exists so per-task audit loops can recycle the pair-score buffer
// through a pool instead of allocating one per task per pass.
func ScorePairsInto(dst []float64, n int, score func(i, j int) float64) []float64 {
	m := PairCount(n)
	out := dst
	if cap(out) < m {
		out = make([]float64, m)
	} else {
		out = out[:m]
	}
	par.For(m, 0, func(k int) {
		i, j := PairAt(n, k)
		out[k] = score(i, j)
	})
	return out
}

// ContributionPairScores computes ContributionSimilarity for every
// unordered pair of contributions in parallel — the candidate-scoring hot
// loop of the Axiom 3 checker, where each comparison builds n-gram or
// ranking profiles and dominates audit cost on text-heavy tasks.
func ContributionPairScores(contribs []*model.Contribution) []float64 {
	return ScorePairs(len(contribs), func(i, j int) float64 {
		return ContributionSimilarity(contribs[i], contribs[j])
	})
}
