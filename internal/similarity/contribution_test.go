package similarity

import (
	"math"
	"testing"

	"repro/internal/model"
)

func TestContributionSimilarityText(t *testing.T) {
	a := &model.Contribution{ID: "a", Text: "the quick brown fox"}
	b := &model.Contribution{ID: "b", Text: "the quick brown fox"}
	if got := ContributionSimilarity(a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical text = %v, want 1", got)
	}
	c := &model.Contribution{ID: "c", Text: "zzzzzz qqqqqq"}
	if got := ContributionSimilarity(a, c); got > 0.1 {
		t.Errorf("unrelated text = %v, want ~0", got)
	}
}

func TestContributionSimilarityRanking(t *testing.T) {
	a := &model.Contribution{ID: "a", Ranking: []string{"x", "y", "z"}}
	b := &model.Contribution{ID: "b", Ranking: []string{"x", "y", "z"}}
	if got := ContributionSimilarity(a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical ranking = %v, want 1", got)
	}
	c := &model.Contribution{ID: "c", Ranking: []string{"z", "y", "x"}}
	mid := ContributionSimilarity(a, c)
	if mid <= 0 || mid >= 1 {
		t.Errorf("reversed ranking = %v, want in (0,1)", mid)
	}
}

func TestContributionSimilaritySymmetricRanking(t *testing.T) {
	a := &model.Contribution{ID: "a", Ranking: []string{"x", "y"}}
	b := &model.Contribution{ID: "b", Ranking: []string{"y", "x", "w"}}
	ab := ContributionSimilarity(a, b)
	ba := ContributionSimilarity(b, a)
	if math.Abs(ab-ba) > 1e-12 {
		t.Errorf("asymmetric: %v vs %v", ab, ba)
	}
}

func TestContributionSimilarityMixedPayloads(t *testing.T) {
	text := &model.Contribution{ID: "a", Text: "hello"}
	ranked := &model.Contribution{ID: "b", Ranking: []string{"x"}}
	if got := ContributionSimilarity(text, ranked); got != 0 {
		t.Errorf("mixed payloads = %v, want 0", got)
	}
}

func TestContributionSimilarityEmpty(t *testing.T) {
	a := &model.Contribution{ID: "a"}
	b := &model.Contribution{ID: "b"}
	if got := ContributionSimilarity(a, b); got != 1 {
		t.Errorf("two empty payloads = %v, want 1", got)
	}
}
