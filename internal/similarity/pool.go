package similarity

import "sync"

// seenPool recycles the per-call dedup sets Partners enumeration needs:
// delta audits call Partners once per dirty entity per pass, and at
// steady-state traffic those short-lived maps dominate the candidate
// layer's allocation profile. Maps are returned cleared, so a pooled map
// behaves exactly like a fresh one.
var seenPool = sync.Pool{New: func() any { return make(map[string]bool, 32) }}

func getSeen(id string) map[string]bool {
	m := seenPool.Get().(map[string]bool)
	m[id] = true
	return m
}

func putSeen(m map[string]bool) {
	clear(m)
	seenPool.Put(m)
}
