package similarity

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNGramIdenticalTexts(t *testing.T) {
	if got := TextSimilarity("the quick brown fox", "the quick brown fox"); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical texts = %v, want 1", got)
	}
}

func TestNGramCaseAndWhitespaceInsensitive(t *testing.T) {
	a := "The  Quick\tBrown   Fox"
	b := "the quick brown fox"
	if got := TextSimilarity(a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("normalised texts = %v, want 1", got)
	}
}

func TestNGramDisjointTexts(t *testing.T) {
	if got := TextSimilarity("aaaaaaa", "zzzzzzz"); got != 0 {
		t.Errorf("disjoint texts = %v, want 0", got)
	}
}

func TestNGramSimilarTexts(t *testing.T) {
	a := "the quick brown fox jumps over the lazy dog"
	b := "the quick brown fox jumps over the lazy cat"
	got := TextSimilarity(a, b)
	if got <= 0.7 || got >= 1 {
		t.Errorf("near-identical texts = %v, want in (0.7, 1)", got)
	}
}

func TestNGramEmptyTexts(t *testing.T) {
	if TextSimilarity("", "") != 1 {
		t.Error("two empty texts should be identical")
	}
	if TextSimilarity("", "hello") != 0 {
		t.Error("empty vs non-empty should be 0")
	}
}

func TestNGramShortText(t *testing.T) {
	// Texts shorter than n fall back to one whole-text gram.
	if TextSimilarity("ab", "ab") != 1 {
		t.Error("short identical texts should be 1")
	}
	if TextSimilarity("ab", "cd") != 0 {
		t.Error("short distinct texts should be 0")
	}
}

func TestNGramUnicode(t *testing.T) {
	if got := TextSimilarity("日本語のテキスト", "日本語のテキスト"); math.Abs(got-1) > 1e-9 {
		t.Errorf("unicode identical = %v", got)
	}
}

func TestNGramDifferentN(t *testing.T) {
	p2 := NewNGramProfile("hello world", 2)
	p3 := NewNGramProfile("hello world", 3)
	if p2.Similarity(p3) != 0 {
		t.Error("different n should compare as 0")
	}
	if p2.N() != 2 || p3.N() != 3 {
		t.Error("N accessor broken")
	}
}

func TestNGramPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 did not panic")
		}
	}()
	NewNGramProfile("x", 0)
}

func TestNGramGrams(t *testing.T) {
	p := NewNGramProfile("abcd", 3) // "abc", "bcd"
	if p.Grams() != 2 {
		t.Fatalf("grams = %d, want 2", p.Grams())
	}
}

func TestNGramProperties(t *testing.T) {
	f := func(a, b string) bool {
		// Bound input sizes to keep the property fast.
		if len(a) > 200 {
			a = a[:200]
		}
		if len(b) > 200 {
			b = b[:200]
		}
		ab := TextSimilarity(a, b)
		ba := TextSimilarity(b, a)
		if math.Abs(ab-ba) > 1e-12 {
			return false
		}
		if ab < 0 || ab > 1+1e-12 {
			return false
		}
		return math.Abs(TextSimilarity(a, a)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNGramRepetitionInsensitive(t *testing.T) {
	// Damashek profiles are frequency-weighted: heavy repetition still
	// yields high similarity to the single occurrence.
	a := "spam"
	b := strings.Repeat("spam ", 50)
	if got := TextSimilarity(a, b); got < 0.5 {
		t.Errorf("repeated text similarity = %v, want >= 0.5", got)
	}
}
