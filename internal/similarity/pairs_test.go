package similarity

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

func TestPairAtEnumeratesSerialOrder(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 20, 137, 1000} {
		k := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				gi, gj := PairAt(n, k)
				if gi != i || gj != j {
					t.Fatalf("n=%d: PairAt(%d) = (%d,%d), want (%d,%d)", n, k, gi, gj, i, j)
				}
				k++
			}
		}
		if k != PairCount(n) {
			t.Fatalf("n=%d: enumerated %d pairs, PairCount says %d", n, k, PairCount(n))
		}
	}
}

func TestScorePairsMatchesSerialLoop(t *testing.T) {
	const n = 40
	score := func(i, j int) float64 { return float64(i*1000 + j) }
	got := ScorePairs(n, score)
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if got[k] != score(i, j) {
				t.Fatalf("pair %d (%d,%d): got %v want %v", k, i, j, got[k], score(i, j))
			}
			k++
		}
	}
}

func TestContributionPairScoresMatchesDirectCalls(t *testing.T) {
	var contribs []*model.Contribution
	for i := 0; i < 12; i++ {
		contribs = append(contribs, &model.Contribution{
			ID:   model.ContributionID(fmt.Sprintf("c%d", i)),
			Text: fmt.Sprintf("the quick brown fox number %d jumps", i%3),
		})
	}
	got := ContributionPairScores(contribs)
	k := 0
	for i := 0; i < len(contribs); i++ {
		for j := i + 1; j < len(contribs); j++ {
			want := ContributionSimilarity(contribs[i], contribs[j])
			if got[k] != want {
				t.Fatalf("pair (%d,%d): got %v want %v", i, j, got[k], want)
			}
			k++
		}
	}
}
