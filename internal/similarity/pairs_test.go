package similarity

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

func TestPairAtEnumeratesSerialOrder(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 20, 137, 1000} {
		k := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				gi, gj := PairAt(n, k)
				if gi != i || gj != j {
					t.Fatalf("n=%d: PairAt(%d) = (%d,%d), want (%d,%d)", n, k, gi, gj, i, j)
				}
				k++
			}
		}
		if k != PairCount(n) {
			t.Fatalf("n=%d: enumerated %d pairs, PairCount says %d", n, k, PairCount(n))
		}
	}
}

func TestPairAtBoundaryIndices(t *testing.T) {
	for _, n := range []int{2, 3, 5, 64, 1001} {
		i, j := PairAt(n, 0)
		if i != 0 || j != 1 {
			t.Fatalf("n=%d: PairAt(0) = (%d,%d), want (0,1)", n, i, j)
		}
		last := PairCount(n) - 1
		i, j = PairAt(n, last)
		if i != n-2 || j != n-1 {
			t.Fatalf("n=%d: PairAt(%d) = (%d,%d), want (%d,%d)", n, last, i, j, n-2, n-1)
		}
	}
}

func TestPairCountDegenerateSizes(t *testing.T) {
	for _, n := range []int{0, 1} {
		if c := PairCount(n); c != 0 {
			t.Fatalf("PairCount(%d) = %d, want 0", n, c)
		}
	}
	// pairRowStart must agree with PairCount at the row-0 boundary even for
	// degenerate sizes, since PairAt's correction loops rely on it.
	if s := pairRowStart(1, 0); s != 0 {
		t.Fatalf("pairRowStart(1, 0) = %d, want 0", s)
	}
}

func TestPairIndexInvertsPairAt(t *testing.T) {
	for _, n := range []int{2, 3, 7, 50} {
		for k := 0; k < PairCount(n); k++ {
			i, j := PairAt(n, k)
			if got := PairIndex(n, i, j); got != k {
				t.Fatalf("n=%d: PairIndex(%d,%d) = %d, want %d", n, i, j, got, k)
			}
		}
	}
}

func FuzzPairAtRoundTrip(f *testing.F) {
	f.Add(2, 0)
	f.Add(10, 44)
	f.Add(1000, 499499)
	f.Add(1<<16, 0)
	f.Fuzz(func(t *testing.T, n, k int) {
		if n < 2 || n > 1<<20 {
			return
		}
		total := PairCount(n)
		if k < 0 || k >= total {
			return
		}
		i, j := PairAt(n, k)
		if i < 0 || j <= i || j >= n {
			t.Fatalf("PairAt(%d, %d) = (%d,%d): out of range", n, k, i, j)
		}
		if got := PairIndex(n, i, j); got != k {
			t.Fatalf("PairIndex(%d, %d, %d) = %d, want %d", n, i, j, got, k)
		}
	})
}

func TestScorePairsMatchesSerialLoop(t *testing.T) {
	const n = 40
	score := func(i, j int) float64 { return float64(i*1000 + j) }
	got := ScorePairs(n, score)
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if got[k] != score(i, j) {
				t.Fatalf("pair %d (%d,%d): got %v want %v", k, i, j, got[k], score(i, j))
			}
			k++
		}
	}
}

func TestContributionPairScoresMatchesDirectCalls(t *testing.T) {
	var contribs []*model.Contribution
	for i := 0; i < 12; i++ {
		contribs = append(contribs, &model.Contribution{
			ID:   model.ContributionID(fmt.Sprintf("c%d", i)),
			Text: fmt.Sprintf("the quick brown fox number %d jumps", i%3),
		})
	}
	got := ContributionPairScores(contribs)
	k := 0
	for i := 0; i < len(contribs); i++ {
		for j := i + 1; j < len(contribs); j++ {
			want := ContributionSimilarity(contribs[i], contribs[j])
			if got[k] != want {
				t.Fatalf("pair (%d,%d): got %v want %v", i, j, got[k], want)
			}
			k++
		}
	}
}
