// Package similarity implements the similarity measures the fairness axioms
// of Borromeo et al. (EDBT 2017) are parameterised by.
//
// The paper states that "similarity can be platform-dependent and ranges
// from perfect equality to threshold-based similarity" (Axiom 1), names
// cosine similarity for skill vectors (Axiom 2), and for contributions
// names n-grams for text [Damashek 1995] and Discounted Cumulative Gain for
// ranked lists [Järvelin & Kekäläinen 2002] (Axiom 3). This package
// provides all of those, plus Jaccard/Dice/Hamming companions, attribute-set
// similarity with per-field tolerances, and a small registry so checkers can
// be configured by measure name.
package similarity

import (
	"math"

	"repro/internal/model"
)

// Cosine returns the cosine similarity of two Boolean skill vectors: the
// number of shared skills over the geometric mean of the set counts. Two
// all-false vectors are defined to be identical (1).
func Cosine(a, b model.SkillVector) float64 {
	shared, na, nb := overlap(a, b)
	if na == 0 && nb == 0 {
		return 1
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return float64(shared) / math.Sqrt(float64(na)*float64(nb))
}

// Jaccard returns |a∩b| / |a∪b| for Boolean vectors; empty∪empty is 1.
func Jaccard(a, b model.SkillVector) float64 {
	shared, na, nb := overlap(a, b)
	union := na + nb - shared
	if union == 0 {
		return 1
	}
	return float64(shared) / float64(union)
}

// Dice returns 2|a∩b| / (|a|+|b|) for Boolean vectors; empty,empty is 1.
func Dice(a, b model.SkillVector) float64 {
	shared, na, nb := overlap(a, b)
	if na+nb == 0 {
		return 1
	}
	return 2 * float64(shared) / float64(na+nb)
}

// Hamming returns 1 - (differing positions / vector length): an agreement
// ratio in [0,1]. Vectors of differing length compare over the longer
// length, with missing positions treated as false.
func Hamming(a, b model.SkillVector) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 1
	}
	diff := 0
	for i := 0; i < n; i++ {
		av := i < len(a) && a[i]
		bv := i < len(b) && b[i]
		if av != bv {
			diff++
		}
	}
	return 1 - float64(diff)/float64(n)
}

// overlap counts shared set bits and each vector's set count.
func overlap(a, b model.SkillVector) (shared, na, nb int) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] && b[i] {
			shared++
		}
	}
	for _, v := range a {
		if v {
			na++
		}
	}
	for _, v := range b {
		if v {
			nb++
		}
	}
	return shared, na, nb
}

// VectorMeasure is a named similarity function over skill vectors, the
// pluggable parameter of Axioms 1 and 2.
type VectorMeasure struct {
	// Name identifies the measure in configuration and reports.
	Name string
	// Func maps two vectors to a similarity in [0,1].
	Func func(a, b model.SkillVector) float64
}

// Built-in vector measures.
var (
	MeasureCosine  = VectorMeasure{Name: "cosine", Func: Cosine}
	MeasureJaccard = VectorMeasure{Name: "jaccard", Func: Jaccard}
	MeasureDice    = VectorMeasure{Name: "dice", Func: Dice}
	MeasureHamming = VectorMeasure{Name: "hamming", Func: Hamming}
	// MeasureExact realises the "perfect equality" end of the paper's
	// similarity spectrum: 1 if identical, else 0.
	MeasureExact = VectorMeasure{Name: "exact", Func: func(a, b model.SkillVector) float64 {
		if a.Equal(b) {
			return 1
		}
		return 0
	}}
)

// VectorMeasureByName resolves a measure from its name; the boolean is
// false for unknown names.
func VectorMeasureByName(name string) (VectorMeasure, bool) {
	switch name {
	case "cosine":
		return MeasureCosine, true
	case "jaccard":
		return MeasureJaccard, true
	case "dice":
		return MeasureDice, true
	case "hamming":
		return MeasureHamming, true
	case "exact":
		return MeasureExact, true
	}
	return VectorMeasure{}, false
}
