package similarity

import "math"

// DCG returns the Discounted Cumulative Gain of a ranked list given
// per-position relevance gains (Järvelin & Kekäläinen, TOIS 2002):
//
//	DCG = gain[0] + Σ_{i>=1} gain[i] / log2(i+2)
//
// using the standard log2(rank+1) discount with 1-based ranks.
func DCG(gains []float64) float64 {
	var dcg float64
	for i, g := range gains {
		dcg += g / math.Log2(float64(i)+2)
	}
	return dcg
}

// NDCG returns DCG normalised by the ideal (sorted-descending) DCG of the
// same gains, yielding a score in [0,1]. All-zero gains yield 1 (the list
// is trivially ideal).
func NDCG(gains []float64) float64 {
	ideal := append([]float64(nil), gains...)
	// Insertion sort descending — gain lists are short.
	for i := 1; i < len(ideal); i++ {
		for j := i; j > 0 && ideal[j] > ideal[j-1]; j-- {
			ideal[j], ideal[j-1] = ideal[j-1], ideal[j]
		}
	}
	idcg := DCG(ideal)
	if idcg == 0 {
		return 1
	}
	return DCG(gains) / idcg
}

// RankingSimilarity compares a submitted ranked list against a reference
// ranking using nDCG: items earn graded relevance by their position in the
// reference (top item = |ref| ... last = 1, absent = 0), so agreement at the
// top of the list dominates — the property the paper wants when judging
// whether two ranked-list contributions deserve equal pay. The result is in
// [0,1]; identical rankings score 1.
func RankingSimilarity(submitted, reference []string) float64 {
	if len(submitted) == 0 {
		if len(reference) == 0 {
			return 1
		}
		return 0 // nothing submitted against a non-empty reference
	}
	rel := make(map[string]float64, len(reference))
	for i, item := range reference {
		rel[item] = float64(len(reference) - i)
	}
	gains := make([]float64, len(submitted))
	for i, item := range submitted {
		gains[i] = rel[item]
	}
	// Normalise against the ideal ordering of the reference gains over the
	// same list length, so missing high-relevance items are penalised.
	ideal := make([]float64, 0, len(reference))
	for i := range reference {
		ideal = append(ideal, float64(len(reference)-i))
	}
	if len(ideal) > len(submitted) {
		ideal = ideal[:len(submitted)]
	}
	idcg := DCG(ideal)
	if idcg == 0 {
		return 1
	}
	s := DCG(gains) / idcg
	if s > 1 {
		s = 1
	}
	return s
}

// KendallTau returns the Kendall rank correlation of two rankings over the
// same item set, mapped to [0,1] (1 = identical order, 0 = reversed).
// Items present in only one list are ignored; if fewer than two shared
// items exist the result is 1.
func KendallTau(a, b []string) float64 {
	posA := make(map[string]int, len(a))
	for i, item := range a {
		posA[item] = i
	}
	type pair struct{ pa, pb int }
	var shared []pair
	for j, item := range b {
		if i, ok := posA[item]; ok {
			shared = append(shared, pair{i, j})
		}
	}
	n := len(shared)
	if n < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := shared[i].pa - shared[j].pa
			db := shared[i].pb - shared[j].pb
			switch {
			case da*db > 0:
				concordant++
			case da*db < 0:
				discordant++
			}
		}
	}
	total := n * (n - 1) / 2
	tau := float64(concordant-discordant) / float64(total)
	return (tau + 1) / 2
}
