package eventlog

import (
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/wal"
)

// Durable event logs. OpenDurable replays the segmented write-ahead log in
// dir (recovering the longest valid prefix after a torn tail), attaches a
// writer, and returns a Log whose Append tees every event to disk. Unlike
// the store's changelog WAL, event segments are never truncated by
// checkpoints: a cold audit rebuild replays the entire trace (the access
// index and Axiom 5 are temporal), so the whole history stays replayable.
//
// The binary codec is the compact counterpart of the JSON-lines form
// (WriteTo/Read): the sequence number travels as the WAL frame key and the
// remaining fields as length-prefixed strings and fixed-width scalars.

// encodeEvent appends the WAL payload for e (Seq is carried by the frame
// key, not the payload).
func encodeEvent(b []byte, e Event) []byte {
	b = wal.AppendVarint(b, e.Time)
	b = wal.AppendString(b, string(e.Type))
	b = wal.AppendString(b, string(e.Worker))
	b = wal.AppendString(b, string(e.Task))
	b = wal.AppendString(b, string(e.Requester))
	b = wal.AppendString(b, string(e.Contribution))
	b = wal.AppendFloat64(b, e.Amount)
	b = wal.AppendString(b, e.Field)
	b = wal.AppendString(b, e.Note)
	return b
}

// DecodeWALEvent decodes one event-log WAL frame (key = sequence number,
// payload as written by a durable Log) — the ingestion side of WAL
// shipping, used by replicas tailing another process's events directory.
func DecodeWALEvent(seq uint64, payload []byte) (Event, error) {
	return decodeEvent(seq, payload)
}

// decodeEvent rebuilds an event from a WAL frame.
func decodeEvent(seq uint64, payload []byte) (Event, error) {
	d := wal.NewDec(payload)
	e := Event{
		Seq:          seq,
		Time:         d.Varint(),
		Type:         Type(d.String()),
		Worker:       model.WorkerID(d.String()),
		Task:         model.TaskID(d.String()),
		Requester:    model.RequesterID(d.String()),
		Contribution: model.ContributionID(d.String()),
		Amount:       d.Float64(),
		Field:        d.String(),
		Note:         d.String(),
	}
	if !d.Done() {
		if err := d.Err(); err != nil {
			return Event{}, fmt.Errorf("eventlog: wal record %d: %w", seq, err)
		}
		return Event{}, fmt.Errorf("eventlog: wal record %d: trailing bytes", seq)
	}
	return e, nil
}

// OpenDurable opens (or creates) a durable event log rooted at dir: the
// existing segments are replayed into memory — a torn or corrupt tail
// recovers the longest valid prefix, and the attached writer truncates the
// damaged bytes so appends continue a dense log. Sequence numbers are
// reassigned on replay (they always equal the append position, so a clean
// log round-trips identically).
func OpenDurable(dir string, opts wal.Options) (*Log, error) {
	r, err := wal.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	l := New()
	poisoned := false
	for {
		seq, payload, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			r.Close()
			return nil, err
		}
		e, err := decodeEvent(seq, payload)
		if err != nil {
			// CRC-valid but undecodable: treat like a torn frame — stop at
			// the longest valid prefix. The record must also be physically
			// removed below: wal.Create only truncates CRC-invalid tails,
			// and appending behind a poison record would strand every
			// later event on the next recovery.
			poisoned = true
			break
		}
		if _, err := l.Append(Event{
			Time: e.Time, Type: e.Type,
			Worker: e.Worker, Task: e.Task, Requester: e.Requester, Contribution: e.Contribution,
			Amount: e.Amount, Field: e.Field, Note: e.Note,
		}); err != nil {
			r.Close()
			return nil, fmt.Errorf("eventlog: replay: %w", err)
		}
	}
	r.Close()
	if poisoned {
		// Keys are the dense sequence numbers 1..Len, so cutting after the
		// last replayed one removes the undecodable record and everything
		// behind it.
		if err := wal.TruncateAfter(dir, uint64(l.Len())); err != nil {
			return nil, err
		}
	}
	// wal.Create truncates whatever CRC-torn tail the replay stopped at
	// before any new appends land. Reassigned sequence numbers match the
	// write keys: the recovered prefix is dense from 1.
	w, err := wal.Create(dir, opts)
	if err != nil {
		return nil, err
	}
	l.sink = w
	return l, nil
}

// Durable reports whether the log tees appends into a write-ahead log.
func (l *Log) Durable() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.sink != nil
}

// Sync flushes the durable tee to stable storage (no-op when volatile).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sink == nil {
		return nil
	}
	return l.sink.Sync()
}

// Close closes the durable tee. The log stays readable and appendable in
// memory, but new events are no longer persisted.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sink == nil {
		return nil
	}
	err := l.sink.Close()
	l.sink = nil
	return err
}
