package eventlog

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestAppendAssignsSeq(t *testing.T) {
	l := New()
	e1, err := l.Append(Event{Time: 1, Type: TaskPosted, Task: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := l.Append(Event{Time: 2, Type: TaskOffered, Task: "t1", Worker: "w1"})
	if err != nil {
		t.Fatal(err)
	}
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("seqs = %d, %d", e1.Seq, e2.Seq)
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestAppendRejectsTimeRegression(t *testing.T) {
	l := New()
	l.MustAppend(Event{Time: 5, Type: TaskPosted})
	_, err := l.Append(Event{Time: 4, Type: TaskPosted})
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("error = %v", err)
	}
	// Equal timestamps are allowed.
	if _, err := l.Append(Event{Time: 5, Type: TaskPosted}); err != nil {
		t.Fatalf("equal time rejected: %v", err)
	}
}

func TestMustAppendPanics(t *testing.T) {
	l := New()
	l.MustAppend(Event{Time: 5, Type: TaskPosted})
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppend did not panic on regression")
		}
	}()
	l.MustAppend(Event{Time: 1, Type: TaskPosted})
}

func seededLog() *Log {
	l := New()
	l.MustAppend(Event{Time: 1, Type: TaskPosted, Task: "t1", Requester: "r1"})
	l.MustAppend(Event{Time: 2, Type: TaskOffered, Task: "t1", Worker: "w1", Requester: "r1"})
	l.MustAppend(Event{Time: 3, Type: TaskStarted, Task: "t1", Worker: "w1"})
	l.MustAppend(Event{Time: 4, Type: TaskSubmitted, Task: "t1", Worker: "w1", Contribution: "c1"})
	l.MustAppend(Event{Time: 5, Type: PaymentIssued, Task: "t1", Worker: "w1", Amount: 1.25})
	l.MustAppend(Event{Time: 6, Type: TaskOffered, Task: "t2", Worker: "w2"})
	return l
}

func TestFilters(t *testing.T) {
	l := seededLog()
	if got := l.ByType(TaskOffered); len(got) != 2 {
		t.Fatalf("ByType = %d events", len(got))
	}
	if got := l.ByWorker("w1"); len(got) != 4 {
		t.Fatalf("ByWorker = %d events", len(got))
	}
	if got := l.ByTask("t2"); len(got) != 1 || got[0].Worker != "w2" {
		t.Fatalf("ByTask = %v", got)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	l := seededLog()
	es := l.Events()
	es[0].Task = "mutated"
	if l.Events()[0].Task != "t1" {
		t.Fatal("Events exposes internal storage")
	}
}

func TestWriteToReadRoundTrip(t *testing.T) {
	l := seededLog()
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l.Events(), back.Events()) {
		t.Fatalf("round trip mismatch:\n%v\n%v", l.Events(), back.Events())
	}
}

func TestReadRejectsBadSeq(t *testing.T) {
	input := `{"seq":2,"time":1,"type":"task_posted"}`
	if _, err := Read(strings.NewReader(input)); err == nil {
		t.Error("bad seq accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	l := seededLog()
	var buf bytes.Buffer
	l.WriteTo(&buf)
	padded := strings.ReplaceAll(buf.String(), "\n", "\n\n")
	back, err := Read(strings.NewReader(padded))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("len = %d, want %d", back.Len(), l.Len())
	}
}

func TestCursor(t *testing.T) {
	l := New()
	c := NewCursor(l)
	if got := c.Next(); got != nil {
		t.Fatalf("empty cursor returned %v", got)
	}
	l.MustAppend(Event{Time: 1, Type: WorkerJoined, Worker: "w1"})
	l.MustAppend(Event{Time: 2, Type: WorkerJoined, Worker: "w2"})
	first := c.Next()
	if len(first) != 2 {
		t.Fatalf("first batch = %d", len(first))
	}
	if got := c.Next(); got != nil {
		t.Fatalf("drained cursor returned %v", got)
	}
	l.MustAppend(Event{Time: 3, Type: WorkerLeft, Worker: "w1"})
	second := c.Next()
	if len(second) != 1 || second[0].Type != WorkerLeft {
		t.Fatalf("second batch = %v", second)
	}
}

func TestFilterPredicate(t *testing.T) {
	l := seededLog()
	paid := l.Filter(func(e Event) bool { return e.Amount > 0 })
	if len(paid) != 1 || paid[0].Type != PaymentIssued {
		t.Fatalf("filter = %v", paid)
	}
}

func TestByWorkerEmptyResult(t *testing.T) {
	l := seededLog()
	if got := l.ByWorker(model.WorkerID("ghost")); len(got) != 0 {
		t.Fatalf("ghost worker events = %v", got)
	}
}

func TestAppendBatch(t *testing.T) {
	l := New()
	l.MustAppend(Event{Time: 3, Type: WorkerJoined, Worker: "w0"})
	batch := []Event{
		{Time: 3, Type: WorkerJoined, Worker: "w1"},
		{Time: 4, Type: TaskPosted, Task: "t1", Requester: "r1"},
		{Time: 4, Type: TaskOffered, Task: "t1", Worker: "w1"},
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := l.Len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	for i, e := range l.Events() {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	// Sequence numbers are written back into the caller's slice.
	if batch[0].Seq != 2 || batch[2].Seq != 4 {
		t.Fatalf("batch seqs = %d,%d,%d", batch[0].Seq, batch[1].Seq, batch[2].Seq)
	}
}

func TestAppendBatchRejectsTimeRegression(t *testing.T) {
	l := New()
	l.MustAppend(Event{Time: 5, Type: WorkerJoined, Worker: "w0"})
	err := l.AppendBatch([]Event{
		{Time: 5, Type: WorkerJoined, Worker: "w1"},
		{Time: 4, Type: WorkerJoined, Worker: "w2"},
	})
	if err == nil {
		t.Fatal("regressing batch accepted")
	}
	if got := l.Len(); got != 1 {
		t.Fatalf("rejected batch left %d events, want 1", got)
	}
}

func TestAppendBatchEmpty(t *testing.T) {
	l := New()
	if err := l.AppendBatch(nil); err != nil {
		t.Fatal(err)
	}
}

func TestLastTime(t *testing.T) {
	l := New()
	if got := l.LastTime(); got != 0 {
		t.Fatalf("empty LastTime = %d", got)
	}
	l.MustAppend(Event{Time: 7, Type: WorkerJoined, Worker: "w1"})
	if got := l.LastTime(); got != 7 {
		t.Fatalf("LastTime = %d, want 7", got)
	}
}
