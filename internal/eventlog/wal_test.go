package eventlog

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/wal"
)

func demoEvents(n int) []Event {
	var out []Event
	for i := 0; i < n; i++ {
		out = append(out, Event{
			Time: int64(i / 3), Type: TaskOffered,
			Worker: "w1", Task: "t1", Requester: "r1",
		})
		switch i % 4 {
		case 1:
			out[i] = Event{Time: int64(i / 3), Type: PaymentIssued, Worker: "w2", Task: "t2", Contribution: "c1", Amount: 1.25}
		case 2:
			out[i] = Event{Time: int64(i / 3), Type: Disclosure, Requester: "r1", Field: "requester.hourly_wage"}
		case 3:
			out[i] = Event{Time: int64(i / 3), Type: WorkerFlagged, Worker: "w3", Note: "acceptance ratio 0.40"}
		}
	}
	return out
}

func TestDurableLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDurable(dir, wal.Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	events := demoEvents(30)
	for _, e := range events {
		l.MustAppend(e)
	}
	if !l.Durable() {
		t.Fatal("log not durable")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := OpenDurable(dir, wal.Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	want := New()
	for _, e := range events {
		want.MustAppend(e)
	}
	if !reflect.DeepEqual(got.Events(), want.Events()) {
		t.Fatal("replayed events differ from originals")
	}
	// Appends after recovery continue the sequence densely.
	got.MustAppend(Event{Time: 99, Type: TaskPosted, Task: "t9", Requester: "r1"})
	if n := got.Len(); n != len(events)+1 {
		t.Fatalf("len %d", n)
	}
	if err := got.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := OpenDurable(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Len() != len(events)+1 {
		t.Fatalf("second recovery len %d", again.Len())
	}
	last := again.Events()[again.Len()-1]
	if last.Type != TaskPosted || last.Seq != uint64(len(events)+1) {
		t.Fatalf("last event %+v", last)
	}
}

func TestDurableLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDurable(dir, wal.Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range demoEvents(20) {
		l.MustAppend(e)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	seg := segs[len(segs)-1]
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-2); err != nil {
		t.Fatal(err)
	}
	got, err := OpenDurable(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.Len() != 19 {
		t.Fatalf("recovered %d events, want 19 (longest valid prefix)", got.Len())
	}
	for i, e := range got.Events() {
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq gap at %d", i)
		}
	}
	// The torn bytes were truncated on reopen: appending works and a
	// further recovery sees a clean 20-event log.
	got.MustAppend(Event{Time: 99, Type: WorkerLeft, Worker: "wx"})
	if err := got.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := OpenDurable(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Len() != 20 {
		t.Fatalf("post-tear append recovery len %d", again.Len())
	}
}

// TestDurableLogPoisonRecord covers the CRC-valid-but-undecodable case: a
// frame whose checksum passes but whose payload fails the event codec must
// be physically truncated on recovery, so later appends never land behind
// it and get stranded on the next recovery.
func TestDurableLogPoisonRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDurable(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range demoEvents(10) {
		l.MustAppend(e)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a well-framed record with an undecodable payload.
	w, err := wal.Create(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(11, []byte{0xff}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := OpenDurable(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 {
		t.Fatalf("recovered %d events, want 10", got.Len())
	}
	got.MustAppend(Event{Time: 99, Type: WorkerLeft, Worker: "wx"})
	if err := got.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := OpenDurable(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Len() != 11 {
		t.Fatalf("post-poison append lost: recovered %d events, want 11", again.Len())
	}
}

func TestCursorAtAndPos(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.MustAppend(Event{Time: int64(i), Type: TaskPosted, Task: "t", Requester: "r"})
	}
	c := NewCursor(l)
	if got := c.Next(); len(got) != 10 || c.Pos() != 10 {
		t.Fatalf("cursor drained %d, pos %d", len(got), c.Pos())
	}
	c2 := NewCursorAt(l, 7)
	if got := c2.Next(); len(got) != 3 || got[0].Seq != 8 {
		t.Fatalf("resumed cursor read %d events (first seq %d)", len(got), got[0].Seq)
	}
	if c3 := NewCursorAt(l, 99); c3.Pos() != 10 {
		t.Fatalf("clamp failed: %d", c3.Pos())
	}
}

func TestDurableAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDurable(dir, wal.Options{SegmentBytes: 256, Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	events := demoEvents(9)
	if err := l.AppendBatch(events[:5]); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(events[5:]); err != nil {
		t.Fatal(err)
	}
	want := l.Events()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir, wal.Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %d events != appended %d", len(got), len(want))
	}
}
