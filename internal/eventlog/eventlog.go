// Package eventlog provides the append-only trace of platform events that
// the fairness checkers audit.
//
// Several of the paper's axioms are inherently temporal: Axiom 5 ("a worker
// who started completing a task should not be interrupted") and Axiom 1's
// access condition ("should have access to the same tasks") cannot be
// checked from a state snapshot alone — they need the history of offers,
// starts, cancellations, and payments. The log records that history as
// typed events with a monotonically increasing sequence number and logical
// timestamp, supports filtered replay, and round-trips through JSON lines
// so traces can be archived and re-audited.
package eventlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/model"
	"repro/internal/wal"
)

// Type enumerates the platform event kinds.
type Type string

// Event types. The set covers the full task lifecycle of §3.1 plus the
// disclosure events of the transparency axioms.
const (
	// TaskPosted: a requester published a task.
	TaskPosted Type = "task_posted"
	// TaskOffered: the platform made a task visible/available to a worker
	// (the "access" of Axiom 1 and the "shown to" of Axiom 2).
	TaskOffered Type = "task_offered"
	// TaskStarted: a worker began completing a task.
	TaskStarted Type = "task_started"
	// TaskSubmitted: a worker submitted a contribution.
	TaskSubmitted Type = "task_submitted"
	// TaskInterrupted: the platform/requester halted a worker's in-progress
	// work (e.g. the task was cancelled after quota was reached) — the
	// Axiom 5 violation event.
	TaskInterrupted Type = "task_interrupted"
	// TaskCancelled: a requester withdrew remaining assignments of a task.
	TaskCancelled Type = "task_cancelled"
	// ContributionAccepted / ContributionRejected: the requester's decision.
	ContributionAccepted Type = "contribution_accepted"
	ContributionRejected Type = "contribution_rejected"
	// PaymentIssued: a worker was paid Amount for a contribution.
	PaymentIssued Type = "payment_issued"
	// BonusPromised / BonusPaid: the §3.1.1 bonus-contract scenario.
	BonusPromised Type = "bonus_promised"
	BonusPaid     Type = "bonus_paid"
	// WorkerFlagged: a detector flagged the worker as malicious (Axiom 4).
	WorkerFlagged Type = "worker_flagged"
	// Disclosure: a requester or the platform disclosed an information item
	// (Axioms 6-7); Field names the disclosed item.
	Disclosure Type = "disclosure"
	// WorkerJoined / WorkerLeft: population churn, consumed by the
	// retention metrics of §4.1.
	WorkerJoined Type = "worker_joined"
	WorkerLeft   Type = "worker_left"
)

// Event is one immutable log record. Unused entity fields are empty.
type Event struct {
	// Seq is the 1-based position in the log, assigned on append.
	Seq uint64 `json:"seq"`
	// Time is the logical timestamp (simulation tick).
	Time int64 `json:"time"`
	Type Type  `json:"type"`

	Worker       model.WorkerID       `json:"worker,omitempty"`
	Task         model.TaskID         `json:"task,omitempty"`
	Requester    model.RequesterID    `json:"requester,omitempty"`
	Contribution model.ContributionID `json:"contribution,omitempty"`

	// Amount carries payment/bonus values for payment events.
	Amount float64 `json:"amount,omitempty"`
	// Field names the disclosed item for Disclosure events (e.g.
	// "hourly_wage", "rejection_criteria").
	Field string `json:"field,omitempty"`
	// Note is free-form context (detector name, cancellation reason, ...).
	Note string `json:"note,omitempty"`
}

// Log is an append-only event log, safe for concurrent use. Logs built
// with OpenDurable additionally tee every appended event into a segmented
// write-ahead log (see wal.go) so a restarted auditor can replay the full
// trace instead of losing it.
type Log struct {
	mu     sync.RWMutex
	events []Event

	// sink is the durable tee (nil for in-memory logs); scratch is its
	// encode buffer, reused under mu.
	sink    *wal.Writer
	scratch []byte
}

// ErrOutOfOrder is returned when an append's timestamp precedes the log's
// latest timestamp.
var ErrOutOfOrder = errors.New("eventlog: timestamp out of order")

// New returns an empty log.
func New() *Log { return &Log{} }

// Append adds e to the log, assigning its sequence number, and returns the
// stored event. Timestamps must be non-decreasing. On a durable log the
// event is also framed into the write-ahead segments under the same lock
// (so disk order equals sequence order), but the durability wait of a
// group-commit sync policy happens after the lock is released — appenders
// queued behind l.mu land in the batch the one covering fsync commits. A
// WAL failure leaves the event appended in memory and reports the lost
// durability as an error.
func (l *Log) Append(e Event) (Event, error) {
	l.mu.Lock()
	if n := len(l.events); n > 0 && e.Time < l.events[n-1].Time {
		last := l.events[n-1].Time
		l.mu.Unlock()
		return Event{}, fmt.Errorf("%w: %d < %d", ErrOutOfOrder, e.Time, last)
	}
	e.Seq = uint64(len(l.events) + 1)
	l.events = append(l.events, e)
	var ack wal.Commit
	var err error
	if l.sink != nil {
		l.scratch = encodeEvent(l.scratch[:0], e)
		ack, err = l.sink.AppendAsync(e.Seq, l.scratch)
	}
	l.mu.Unlock()
	if err == nil {
		err = ack.Wait()
	}
	if err != nil {
		return e, fmt.Errorf("eventlog: wal append: %w", err)
	}
	return e, nil
}

// MustAppend is Append that panics on error; for writers that control
// their own clock (the simulator).
func (l *Log) MustAppend(e Event) Event {
	out, err := l.Append(e)
	if err != nil {
		panic(err)
	}
	return out
}

// AppendBatch appends events in order under one lock acquisition and — on a
// durable log — waits on a single durability ticket covering the whole
// batch. WAL batches seal and flush strictly in append order with a sticky
// error (wal/groupcommit.go), so the last append's ack covers every earlier
// one: one fsync wait amortises over the entire admitted batch, which is
// what makes coalesced serving writes cheap. Timestamps must be
// non-decreasing across the batch; on a violation nothing is appended.
// The stored events (with sequence numbers assigned) are written back into
// events.
func (l *Log) AppendBatch(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	l.mu.Lock()
	last := int64(0)
	if n := len(l.events); n > 0 {
		last = l.events[n-1].Time
	}
	for i := range events {
		if events[i].Time < last {
			l.mu.Unlock()
			return fmt.Errorf("%w: %d < %d", ErrOutOfOrder, events[i].Time, last)
		}
		last = events[i].Time
	}
	var ack wal.Commit
	var err error
	for i := range events {
		events[i].Seq = uint64(len(l.events) + 1)
		l.events = append(l.events, events[i])
		if l.sink != nil && err == nil {
			l.scratch = encodeEvent(l.scratch[:0], events[i])
			ack, err = l.sink.AppendAsync(events[i].Seq, l.scratch)
		}
	}
	l.mu.Unlock()
	if err == nil {
		err = ack.Wait()
	}
	if err != nil {
		return fmt.Errorf("eventlog: wal append: %w", err)
	}
	return nil
}

// Len returns the number of events.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// LastTime returns the timestamp of the most recent event (0 for an empty
// log) without copying the log — the cheap clock query serving hot paths
// need to stamp new events monotonically.
func (l *Log) LastTime() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if n := len(l.events); n > 0 {
		return l.events[n-1].Time
	}
	return 0
}

// Events returns a copy of the whole log in append order.
func (l *Log) Events() []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Event(nil), l.events...)
}

// Filter returns the events for which keep returns true, in order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for _, e := range l.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByType returns the events of the given type, in order.
func (l *Log) ByType(t Type) []Event {
	return l.Filter(func(e Event) bool { return e.Type == t })
}

// ByWorker returns the events touching the given worker, in order.
func (l *Log) ByWorker(id model.WorkerID) []Event {
	return l.Filter(func(e Event) bool { return e.Worker == id })
}

// ByTask returns the events touching the given task, in order.
func (l *Log) ByTask(id model.TaskID) []Event {
	return l.Filter(func(e Event) bool { return e.Task == id })
}

// WriteTo serialises the log as JSON lines. It implements io.WriterTo.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var total int64
	bw := bufio.NewWriter(w)
	for _, e := range l.events {
		data, err := json.Marshal(e)
		if err != nil {
			return total, fmt.Errorf("eventlog: encode: %w", err)
		}
		n, err := bw.Write(append(data, '\n'))
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("eventlog: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return total, fmt.Errorf("eventlog: flush: %w", err)
	}
	return total, nil
}

// Read parses a JSON-lines trace produced by WriteTo, validating sequence
// numbers and timestamp monotonicity.
func Read(r io.Reader) (*Log, error) {
	l := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("eventlog: line %d: %w", lineNo, err)
		}
		wantSeq := uint64(len(l.events) + 1)
		if e.Seq != wantSeq {
			return nil, fmt.Errorf("eventlog: line %d: seq %d, want %d", lineNo, e.Seq, wantSeq)
		}
		if _, err := l.Append(Event{
			Time: e.Time, Type: e.Type,
			Worker: e.Worker, Task: e.Task, Requester: e.Requester, Contribution: e.Contribution,
			Amount: e.Amount, Field: e.Field, Note: e.Note,
		}); err != nil {
			return nil, fmt.Errorf("eventlog: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eventlog: read: %w", err)
	}
	return l, nil
}

// Cursor iterates a log incrementally; each Next call returns events
// appended since the previous call. It is the mechanism the retention model
// uses to consume the trace online during simulation.
type Cursor struct {
	log *Log
	pos int
}

// NewCursor returns a cursor positioned at the start of l.
func NewCursor(l *Log) *Cursor { return &Cursor{log: l} }

// NewCursorAt returns a cursor positioned after the first pos events —
// how a warm-started auditor resumes where its checkpointed cursor left
// off. pos is clamped to the current log length.
func NewCursorAt(l *Log, pos int) *Cursor {
	if pos < 0 {
		pos = 0
	}
	if n := l.Len(); pos > n {
		pos = n
	}
	return &Cursor{log: l, pos: pos}
}

// Pos returns the number of events the cursor has consumed — the value to
// persist in a checkpoint and hand back to NewCursorAt.
func (c *Cursor) Pos() int { return c.pos }

// Next returns all events appended since the last call (possibly none).
func (c *Cursor) Next() []Event {
	c.log.mu.RLock()
	defer c.log.mu.RUnlock()
	if c.pos >= len(c.log.events) {
		return nil
	}
	out := append([]Event(nil), c.log.events[c.pos:]...)
	c.pos = len(c.log.events)
	return out
}
