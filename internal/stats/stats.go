package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice and
// panics if q is outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Gini returns the Gini coefficient of xs — the canonical inequality index
// used in the E1 experiment to quantify income disparity across workers.
// Values are clamped at 0 for negative inputs; the result is in [0, 1)
// where 0 is perfect equality. An empty or all-zero slice yields 0.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	for i, x := range xs {
		if x < 0 {
			x = 0
		}
		s[i] = x
	}
	sort.Float64s(s)
	n := float64(len(s))
	var cum, total float64
	for i, x := range s {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(n*total) - (n+1)/n
}

// DisparityRatio returns max/min over the positive values of xs; it is a
// coarse fairness indicator (1 means perfectly equal). It returns 1 when
// fewer than two positive values exist.
func DisparityRatio(xs []float64) float64 {
	var lo, hi float64
	seen := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		if seen == 0 {
			lo, hi = x, x
		} else {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		seen++
	}
	if seen < 2 || lo == 0 {
		return 1
	}
	return hi / lo
}

// Summary bundles the descriptive statistics reported by the benchmark
// harness for a series of observations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P90    float64
	Max    float64
}

// Describe computes a Summary for xs.
func Describe(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P50:    Quantile(xs, 0.5),
		P90:    Quantile(xs, 0.9),
		Max:    Max(xs),
	}
}

// String renders the summary as a single human-readable line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f p50=%.4f p90=%.4f max=%.4f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P90, s.Max)
}

// ConfidenceInterval95 returns the half-width of the 95% normal-approximation
// confidence interval for the mean of xs (1.96 * sd / sqrt(n)). It returns 0
// for fewer than two samples.
func ConfidenceInterval95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}
