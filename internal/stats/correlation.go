package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient of two equal-length
// series, in [-1, 1]. Degenerate inputs (length < 2, mismatched lengths,
// or zero variance on either side) return 0.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of two equal-length
// series: Pearson correlation of their ranks, with ties assigned mean
// ranks. Degenerate inputs return 0.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns 1-based mean ranks (ties averaged).
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Mean rank for the tie group [i, j].
		mean := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = mean
		}
		i = j + 1
	}
	return out
}
