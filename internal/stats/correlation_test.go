package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPearsonKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Pearson(xs, xs); math.Abs(got-1) > 1e-9 {
		t.Errorf("self correlation = %v", got)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-9 {
		t.Errorf("reversed correlation = %v", got)
	}
	// Linear transform preserves correlation.
	ys := []float64{3, 5, 7, 9, 11}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-9 {
		t.Errorf("linear correlation = %v", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1}, []float64{1}) != 0 {
		t.Error("single sample should give 0")
	}
	if Pearson([]float64{1, 2}, []float64{1, 2, 3}) != 0 {
		t.Error("length mismatch should give 0")
	}
	if Pearson([]float64{2, 2, 2}, []float64{1, 2, 3}) != 0 {
		t.Error("zero variance should give 0")
	}
}

func TestPearsonRangeProperty(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		xs := make([]float64, 0, len(pairs))
		ys := make([]float64, 0, len(pairs))
		for _, p := range pairs {
			a, b := p[0], p[1]
			if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
				continue
			}
			xs = append(xs, math.Mod(a, 1e6))
			ys = append(ys, math.Mod(b, 1e6))
		}
		r := Pearson(xs, ys)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone (non-linear) relation has Spearman 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // x³
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-9 {
		t.Errorf("monotone Spearman = %v, want 1", got)
	}
	// Pearson of the same data is below 1 (non-linear).
	if got := Pearson(xs, ys); got >= 1-1e-9 {
		t.Errorf("non-linear Pearson = %v, want < 1", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-9 {
		t.Errorf("tied Spearman = %v, want 1", got)
	}
}

func TestRanks(t *testing.T) {
	r := ranks([]float64{30, 10, 20})
	if r[0] != 3 || r[1] != 1 || r[2] != 2 {
		t.Fatalf("ranks = %v", r)
	}
	// Ties get the mean rank.
	r = ranks([]float64{5, 5, 1})
	if r[0] != 2.5 || r[1] != 2.5 || r[2] != 1 {
		t.Fatalf("tied ranks = %v", r)
	}
}
