package stats

import (
	"fmt"
	"strings"
)

// Histogram accumulates observations into fixed-width buckets over a range.
// It is used by the benchmark harness to report distributions of wages,
// quality scores, and waiting times.
type Histogram struct {
	lo, hi  float64
	buckets []int
	under   int
	over    int
	count   int
}

// NewHistogram returns a histogram with n equal-width buckets spanning
// [lo, hi). It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, n)}
}

// Observe records x. Values below lo or at/above hi are tallied in the
// under/over counters rather than dropped, so totals are conserved.
func (h *Histogram) Observe(x float64) {
	h.count++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		idx := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if idx == len(h.buckets) { // guard float rounding at the top edge
			idx--
		}
		h.buckets[idx]++
	}
}

// Count returns the total number of observations including out-of-range ones.
func (h *Histogram) Count() int { return h.count }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// Buckets returns the number of in-range buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// OutOfRange returns the under- and over-range counts.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// String renders an ASCII bar chart, one bucket per line, scaled to a
// maximum bar width of 40 characters.
func (h *Histogram) String() string {
	maxCount := 1
	for _, c := range h.buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	width := (h.hi - h.lo) / float64(len(h.buckets))
	var b strings.Builder
	for i, c := range h.buckets {
		bar := strings.Repeat("#", c*40/maxCount)
		fmt.Fprintf(&b, "[%8.3f, %8.3f) %6d %s\n", h.lo+float64(i)*width, h.lo+float64(i+1)*width, c, bar)
	}
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(&b, "out of range: under=%d over=%d\n", h.under, h.over)
	}
	return b.String()
}
