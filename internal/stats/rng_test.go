package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical values in 100 draws", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child must not replay the parent's stream.
	p := NewRNG(7)
	p.Uint64() // parent consumed one value for the split
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child replays parent stream at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(6)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v, want ~0.3", frac)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(8)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestGaussianShift(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Gaussian(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.1 {
		t.Fatalf("Gaussian(10,2) mean = %v", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(10)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp produced negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermIsShuffled(t *testing.T) {
	r := NewRNG(12)
	identity := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		p := r.Perm(10)
		id := true
		for j, v := range p {
			if v != j {
				id = false
				break
			}
		}
		if id {
			identity++
		}
	}
	if identity > 2 {
		t.Fatalf("identity permutation appeared %d/%d times", identity, trials)
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(13)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 45 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestPickRespectsWeights(t *testing.T) {
	r := NewRNG(14)
	counts := [3]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick([]float64{1, 2, 1})]++
	}
	frac := float64(counts[1]) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("middle weight picked %v, want ~0.5", frac)
	}
}

func TestPickZeroWeightNeverChosen(t *testing.T) {
	r := NewRNG(15)
	for i := 0; i < 10000; i++ {
		if r.Pick([]float64{1, 0, 1}) == 1 {
			t.Fatal("zero-weight index chosen")
		}
	}
}

func TestPickPanics(t *testing.T) {
	for name, ws := range map[string][]float64{
		"all-zero": {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pick(%s) did not panic", name)
				}
			}()
			NewRNG(1).Pick(ws)
		}()
	}
}

func TestDeriveSeedDeterministicAndDistinct(t *testing.T) {
	a := DeriveSeed(42, 1, 2, 3)
	if b := DeriveSeed(42, 1, 2, 3); a != b {
		t.Fatalf("DeriveSeed not deterministic: %d vs %d", a, b)
	}
	seen := map[uint64][]uint64{}
	for i := uint64(0); i < 50; i++ {
		for j := uint64(0); j < 50; j++ {
			s := DeriveSeed(42, i, j)
			if prev, ok := seen[s]; ok {
				t.Fatalf("collision: (%d,%d) and %v both derive %d", i, j, prev, s)
			}
			seen[s] = []uint64{i, j}
		}
	}
	if DeriveSeed(1, 7) == DeriveSeed(2, 7) {
		t.Fatal("distinct bases derived the same seed")
	}
	if DeriveSeed(1) == DeriveSeed(1, 0) {
		t.Fatal("DeriveSeed ignores a zero coordinate")
	}
}
