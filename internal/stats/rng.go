// Package stats provides deterministic random number generation and
// descriptive statistics used throughout the crowdfair experiments.
//
// All experiments in this repository must be reproducible bit-for-bit, so
// the package deliberately avoids math/rand's global source and instead
// exposes RNG, a splitmix64-based generator that is seeded explicitly and
// is safe to copy (value semantics are never relied upon; use New).
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on
// splitmix64 (Steele, Lea, Flood 2014). It is small, fast, passes BigCrush
// for the intended workload sizes, and — unlike math/rand's default source —
// yields identical streams on every platform for a given seed.
//
// RNG is not safe for concurrent use; give each goroutine its own instance
// via Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds yield
// independent-looking streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, independently-seeded generator from r, advancing r.
// Use it to hand a private stream to a sub-component without coupling its
// consumption to the parent's.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// DeriveSeed deterministically mixes a base seed with shard coordinates
// (experiment index, grid position, replicate number, ...) into an
// independent-looking seed. Every distinct coordinate tuple yields a
// distinct stream, and the derivation is pure: the sweep engine uses it to
// hand each parallel shard a private RNG whose stream depends only on the
// base seed and the shard's position in the grid, never on scheduling.
func DeriveSeed(base uint64, parts ...uint64) uint64 {
	r := RNG{state: base}
	for _, p := range parts {
		r.state ^= r.Uint64() + p
	}
	return r.Uint64()
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the Box–Muller
// transform. Two uniforms are consumed per call; no state is cached so the
// stream position stays easy to reason about.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Exp returns an exponential variate with the given rate (lambda).
// It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp called with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Perm returns a uniformly random permutation of [0, n) using
// Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen index weighted by weights, which must be
// non-negative and not all zero; it panics otherwise.
func (r *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: Pick called with negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("stats: Pick called with all-zero weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
