package stats

import (
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99} {
		h.Observe(x)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	wantBuckets := []int{2, 1, 1, 0, 1}
	for i, want := range wantBuckets {
		if got := h.Bucket(i); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Observe(-0.5)
	h.Observe(1.0) // hi is exclusive
	h.Observe(2.0)
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", under, over)
	}
	if h.Count() != 3 {
		t.Fatalf("count should include out-of-range: %d", h.Count())
	}
}

func TestHistogramTopEdgeRounding(t *testing.T) {
	// A value infinitesimally below hi must land in the last bucket, not
	// panic on an off-by-one index.
	h := NewHistogram(0, 1, 3)
	h.Observe(0.9999999999999999)
	if got := h.Bucket(2); got != 1 {
		t.Fatalf("top-edge value in bucket 2 = %d, want 1", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, build := range map[string]func(){
		"zero-buckets": func() { NewHistogram(0, 1, 0) },
		"empty-range":  func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			build()
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(1.6)
	h.Observe(5)
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Errorf("rendering has no bars:\n%s", s)
	}
	if !strings.Contains(s, "over=1") {
		t.Errorf("rendering missing out-of-range line:\n%s", s)
	}
}

func TestHistogramBucketsAccessor(t *testing.T) {
	if got := NewHistogram(0, 1, 7).Buckets(); got != 7 {
		t.Fatalf("Buckets() = %d, want 7", got)
	}
}
