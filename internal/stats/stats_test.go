package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almost(got, c.want) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almost(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("variance of single sample should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); !almost(got, 1.5) {
		t.Errorf("interpolated median = %v, want 1.5", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(1.5) did not panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Fatalf("min/max/sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 || Sum(nil) != 0 {
		t.Fatal("empty slices should give 0")
	}
}

func TestGiniKnownValues(t *testing.T) {
	if got := Gini([]float64{1, 1, 1, 1}); !almost(got, 0) {
		t.Errorf("equal incomes Gini = %v, want 0", got)
	}
	// One person has everything among n=4: Gini = (n-1)/n = 0.75.
	if got := Gini([]float64{0, 0, 0, 10}); !almost(got, 0.75) {
		t.Errorf("max inequality Gini = %v, want 0.75", got)
	}
	if Gini(nil) != 0 || Gini([]float64{0, 0}) != 0 {
		t.Error("degenerate Gini should be 0")
	}
}

func TestGiniNegativeClamped(t *testing.T) {
	// Negative incomes are clamped to zero, not allowed to produce
	// out-of-range coefficients.
	g := Gini([]float64{-5, 10})
	if g < 0 || g >= 1 {
		t.Fatalf("Gini with negative input = %v, outside [0,1)", g)
	}
}

// boundIncomes maps arbitrary generated floats into a realistic income
// range; income sums at 1e308 overflow any summation and are outside the
// library's documented domain.
func boundIncomes(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 1
		}
		out[i] = math.Mod(math.Abs(x), 1e6)
	}
	return out
}

func TestGiniRangeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		g := Gini(boundIncomes(xs))
		return g >= 0 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGiniScaleInvariantProperty(t *testing.T) {
	f := func(xs []float64) bool {
		pos := boundIncomes(xs)
		scaled := make([]float64, len(pos))
		for i, x := range pos {
			scaled[i] = 3 * x
		}
		return math.Abs(Gini(pos)-Gini(scaled)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisparityRatio(t *testing.T) {
	if got := DisparityRatio([]float64{2, 4, 8}); !almost(got, 4) {
		t.Errorf("DisparityRatio = %v, want 4", got)
	}
	if DisparityRatio([]float64{5}) != 1 {
		t.Error("single value should give 1")
	}
	if DisparityRatio([]float64{0, 0}) != 1 {
		t.Error("no positive values should give 1")
	}
	if got := DisparityRatio([]float64{0, 3, 6}); !almost(got, 2) {
		t.Errorf("zeros ignored: got %v, want 2", got)
	}
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Min, 1) || !almost(s.Max, 5) || !almost(s.P50, 3) {
		t.Fatalf("Describe = %+v", s)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("Summary.String missing n: %s", s)
	}
}

func TestConfidenceInterval95(t *testing.T) {
	if ConfidenceInterval95([]float64{1}) != 0 {
		t.Error("CI of single sample should be 0")
	}
	ci := ConfidenceInterval95([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := 1.96 * 2 / math.Sqrt(8)
	if !almost(ci, want) {
		t.Errorf("CI = %v, want %v", ci, want)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
