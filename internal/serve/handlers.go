package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/crowdfair"
	"repro/internal/model"
	"repro/internal/store"
)

// buildMux wires the /v1 API, the health/stats endpoints, and the /debug
// surface. Routing is Go 1.21-style (this module pins go 1.21, so the 1.22
// method/wildcard mux patterns are unavailable): literal paths for
// collections, trailing-slash subtrees with manual id extraction for
// single entities, and explicit method dispatch in each handler.
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/workers", s.handleWorkers)
	mux.HandleFunc("/v1/workers/", s.handleWorkerByID)
	mux.HandleFunc("/v1/requesters", s.handleRequesters)
	mux.HandleFunc("/v1/tasks", s.handleTasks)
	mux.HandleFunc("/v1/tasks/", s.handleTaskByID)
	mux.HandleFunc("/v1/contributions", s.handleContributions)
	mux.HandleFunc("/v1/contributions/", s.handleContributionByID)
	mux.HandleFunc("/v1/offers", s.handleOffers)
	mux.HandleFunc("/v1/audit", s.handleAudit)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	registerDebug(mux)
	return mux
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// writeError maps err onto an HTTP status: shed → 429 with Retry-After,
// store sentinels → 409/404/400, anything else → 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var shed *ShedError
	status := http.StatusInternalServerError
	switch {
	case errors.As(err, &shed):
		w.Header().Set("Retry-After", strconv.FormatFloat(s.cfg.RetryAfter.Seconds(), 'f', -1, 64))
		status = http.StatusTooManyRequests
	case errors.Is(err, store.ErrDuplicate):
		status = http.StatusConflict
	case errors.Is(err, store.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, store.ErrInvalid):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decodeInto strictly decodes the request body into v.
func decodeInto(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: bad request body: %v", store.ErrInvalid, err)
	}
	return nil
}

// mutate runs one op through admission control and the coalescing
// dispatcher, writing the outcome.
func (s *Server) mutate(w http.ResponseWriter, o *op, created any) {
	if err := s.enqueue(o); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, created)
}

// okBody acknowledges an applied mutation.
type okBody struct {
	OK      bool   `json:"ok"`
	Version uint64 `json:"version"`
}

func (s *Server) okNow() okBody { return okBody{OK: true, Version: s.p.Version()} }

func methodNotAllowed(w http.ResponseWriter) {
	writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "method not allowed"})
}

// pathID extracts the entity id from a subtree path like /v1/workers/w12.
func pathID(r *http.Request, prefix string) (string, bool) {
	id := strings.TrimPrefix(r.URL.Path, prefix)
	if id == "" || strings.Contains(id, "/") {
		return "", false
	}
	return id, true
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var wk model.Worker
	if err := decodeInto(r, &wk); err != nil {
		s.writeError(w, err)
		return
	}
	s.mutate(w, &op{kind: opAddWorker, worker: &wk}, s.okNow())
}

func (s *Server) handleWorkerByID(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(r, "/v1/workers/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	switch r.Method {
	case http.MethodGet:
		wk, err := s.p.Store().Worker(model.WorkerID(id))
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, wk)
	case http.MethodPut:
		var wk model.Worker
		if err := decodeInto(r, &wk); err != nil {
			s.writeError(w, err)
			return
		}
		if wk.ID == "" {
			wk.ID = model.WorkerID(id)
		}
		if wk.ID != model.WorkerID(id) {
			s.writeError(w, fmt.Errorf("%w: body id %q != path id %q", store.ErrInvalid, wk.ID, id))
			return
		}
		s.mutate(w, &op{kind: opUpdateWorker, worker: &wk}, s.okNow())
	default:
		methodNotAllowed(w)
	}
}

func (s *Server) handleRequesters(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var rq model.Requester
	if err := decodeInto(r, &rq); err != nil {
		s.writeError(w, err)
		return
	}
	s.mutate(w, &op{kind: opAddRequester, requester: &rq}, s.okNow())
}

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var t model.Task
	if err := decodeInto(r, &t); err != nil {
		s.writeError(w, err)
		return
	}
	s.mutate(w, &op{kind: opPostTask, task: &t}, s.okNow())
}

func (s *Server) handleTaskByID(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(r, "/v1/tasks/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	t, err := s.p.Store().Task(model.TaskID(id))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, t)
}

func (s *Server) handleContributions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var c model.Contribution
	if err := decodeInto(r, &c); err != nil {
		s.writeError(w, err)
		return
	}
	s.mutate(w, &op{kind: opAddContribution, contrib: &c}, s.okNow())
}

func (s *Server) handleContributionByID(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(r, "/v1/contributions/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	switch r.Method {
	case http.MethodGet:
		c, err := s.p.Store().Contribution(model.ContributionID(id))
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, c)
	case http.MethodPut:
		var c model.Contribution
		if err := decodeInto(r, &c); err != nil {
			s.writeError(w, err)
			return
		}
		if c.ID == "" {
			c.ID = model.ContributionID(id)
		}
		if c.ID != model.ContributionID(id) {
			s.writeError(w, fmt.Errorf("%w: body id %q != path id %q", store.ErrInvalid, c.ID, id))
			return
		}
		s.mutate(w, &op{kind: opUpdateContribution, contrib: &c}, s.okNow())
	default:
		methodNotAllowed(w)
	}
}

func (s *Server) handleOffers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var o crowdfair.Offer
	if err := decodeInto(r, &o); err != nil {
		s.writeError(w, err)
		return
	}
	s.mutate(w, &op{kind: opOffer, offer: o}, s.okNow())
}

// handleAudit serves the cached, version-stamped audit snapshot. It never
// runs an audit: freshness is whatever the in-loop auditor last published,
// and the Version/lag fields tell the client exactly how fresh that is.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	snap := s.Snapshot()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no audit snapshot yet"})
		return
	}
	resp := struct {
		*AuditSnapshot
		StoreVersion uint64 `json:"store_version"`
		Lag          uint64 `json:"lag"`
	}{snap, s.p.Version(), s.AuditLag()}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	if !s.p.Durable() {
		writeJSON(w, http.StatusConflict, errorBody{Error: "platform is not durable (no WAL directory)"})
		return
	}
	if err := s.p.Checkpoint(); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.okNow())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// statszBody is the serving stats snapshot: entity inventory, audit
// freshness, queue occupancy, and the coalescing/shedding counters the
// load harness asserts against.
type statszBody struct {
	Version       uint64  `json:"version"`
	Workers       int     `json:"workers"`
	Tasks         int     `json:"tasks"`
	Contributions int     `json:"contributions"`
	Events        int     `json:"events"`
	AuditVersion  uint64  `json:"audit_version"`
	AuditLag      uint64  `json:"audit_lag"`
	AuditPasses   uint64  `json:"audit_passes"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`
	Admitted      uint64  `json:"admitted"`
	ShedQueue     uint64  `json:"shed_queue"`
	ShedLag       uint64  `json:"shed_lag"`
	Batches       uint64  `json:"batches"`
	BatchedOps    uint64  `json:"batched_ops"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	WALAppends    uint64  `json:"wal_appends"`
	WALBatches    uint64  `json:"wal_batches"`
	WALSyncs      uint64  `json:"wal_syncs"`
}

func (s *Server) statsz() statszBody {
	workers, tasks, contribs, events := s.p.EntityCounts()
	b := statszBody{
		Version:       s.p.Version(),
		Workers:       workers,
		Tasks:         tasks,
		Contributions: contribs,
		Events:        events,
		AuditVersion:  s.audited.Load(),
		AuditLag:      s.AuditLag(),
		AuditPasses:   s.audits.Load(),
		QueueDepth:    len(s.ops),
		QueueCap:      cap(s.ops),
		Admitted:      s.admitted.Load(),
		ShedQueue:     s.shedQueue.Load(),
		ShedLag:       s.shedLag.Load(),
		Batches:       s.batches.Load(),
		BatchedOps:    s.batchedOps.Load(),
	}
	if b.Batches > 0 {
		b.MeanBatchSize = float64(b.BatchedOps) / float64(b.Batches)
	}
	if s.p.Durable() {
		ws := s.p.Store().WALStats()
		b.WALAppends, b.WALBatches, b.WALSyncs = ws.Appends, ws.Batches, ws.Syncs
	}
	return b
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	writeJSON(w, http.StatusOK, s.statsz())
}
