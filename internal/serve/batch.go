package serve

import (
	"fmt"
	"time"

	"repro/crowdfair"
	"repro/internal/model"
	"repro/internal/store"
)

// opKind enumerates the coalescible mutations. The numeric order is the
// apply order within a batch: referenced-by entities land before their
// referencers (requesters before tasks, workers and tasks before
// contributions and offers), so a batch admitted together never fails on
// an in-batch dependency.
type opKind uint8

const (
	opAddRequester opKind = iota
	opAddWorker
	opUpdateWorker
	opPostTask
	opAddContribution
	opUpdateContribution
	opOffer
	opKinds // count
)

// op is one queued mutation awaiting a coalesced batch. Exactly one
// payload field matching kind is set. done receives the per-request
// outcome once the batch containing the op has been applied and its
// durability wait completed.
type op struct {
	kind      opKind
	worker    *model.Worker
	requester *model.Requester
	task      *model.Task
	contrib   *model.Contribution
	offer     crowdfair.Offer
	done      chan error
}

// ShedError is returned (and mapped to HTTP 429 + Retry-After) when
// admission control rejects a mutation. Reason distinguishes the
// queue-full and audit-lag valves.
type ShedError struct {
	Reason string
	Lag    uint64
}

func (e *ShedError) Error() string {
	if e.Lag > 0 {
		return fmt.Sprintf("serve: shed (%s, audit lag %d versions)", e.Reason, e.Lag)
	}
	return fmt.Sprintf("serve: shed (%s)", e.Reason)
}

// enqueue admits o into the dispatcher queue or sheds it. On admission it
// blocks until the batch containing o has been applied (including the
// batch's single durability wait) and returns the op's own outcome.
func (s *Server) enqueue(o *op) error {
	if m := s.cfg.MaxAuditLag; m > 0 {
		if lag := s.AuditLag(); lag > m {
			s.shedLag.Add(1)
			return &ShedError{Reason: "audit lag over bound", Lag: lag}
		}
	}
	o.done = make(chan error, 1)
	select {
	case s.ops <- o:
	default:
		s.shedQueue.Add(1)
		return &ShedError{Reason: "mutation queue full"}
	}
	s.admitted.Add(1)
	return <-o.done
}

// dispatch is the single batch dispatcher: it blocks for the first queued
// op, drains up to BatchMax-1 more (waiting at most Linger for laggards),
// and applies them as one coalesced batch. With Linger 0 the drain never
// waits — the durability stall of the previous batch is the accumulation
// window for the next, so batching emerges from load instead of imposed
// delay.
func (s *Server) dispatch() {
	defer s.wg.Done()
	batch := make([]*op, 0, s.cfg.BatchMax)
	for {
		select {
		case <-s.stopc:
			s.drainAll(batch)
			return
		case first := <-s.ops:
			batch = append(batch[:0], first)
			if s.cfg.Linger > 0 {
				t := time.NewTimer(s.cfg.Linger)
			linger:
				for len(batch) < s.cfg.BatchMax {
					select {
					case o := <-s.ops:
						batch = append(batch, o)
					case <-t.C:
						break linger
					case <-s.stopc:
						break linger
					}
				}
				t.Stop()
			} else {
			drain:
				for len(batch) < s.cfg.BatchMax {
					select {
					case o := <-s.ops:
						batch = append(batch, o)
					default:
						break drain
					}
				}
			}
			s.applyBatch(batch)
		}
	}
}

// drainAll flushes everything still queued at shutdown: queued clients are
// blocked on their done channels and must be answered, not dropped.
func (s *Server) drainAll(batch []*op) {
	for {
		select {
		case o := <-s.ops:
			batch = append(batch, o)
			if len(batch) >= s.cfg.BatchMax {
				s.applyBatch(batch)
				batch = batch[:0]
			}
		default:
			if len(batch) > 0 {
				s.applyBatch(batch)
			}
			return
		}
	}
}

// applyBatch partitions ops by kind, screens each group against the store
// and the batch itself (so one bad request 4xxes alone instead of
// poisoning its shard group), applies each kind through the platform's
// bulk entry point, and acks every op. Kinds apply in dependency order;
// within a kind, arrival order is preserved.
func (s *Server) applyBatch(ops []*op) {
	s.batches.Add(1)
	s.batchedOps.Add(uint64(len(ops)))
	groups := make([][]*op, opKinds)
	for _, o := range ops {
		groups[o.kind] = append(groups[o.kind], o)
	}
	s.applyRequesters(groups[opAddRequester])
	s.applyWorkerAdds(groups[opAddWorker])
	s.applyWorkerUpdates(groups[opUpdateWorker])
	s.applyTaskPosts(groups[opPostTask])
	s.applyContribAdds(groups[opAddContribution])
	s.applyContribUpdates(groups[opUpdateContribution])
	s.applyOffers(groups[opOffer])
}

// ack answers every op in g with err.
func ack(g []*op, err error) {
	for _, o := range g {
		o.done <- err
	}
}

// applyRequesters inserts requesters one by one (they are rare and have no
// bulk path) and acks each with its own outcome.
func (s *Server) applyRequesters(g []*op) {
	for _, o := range g {
		if err := o.requester.Validate(); err != nil {
			o.done <- fmt.Errorf("%w: %v", store.ErrInvalid, err)
			continue
		}
		o.done <- s.p.AddRequester(o.requester)
	}
}

// applyWorkerAdds screens duplicates (in-store and in-batch) out of the
// group, bulk-inserts the survivors, and acks per op.
func (s *Server) applyWorkerAdds(g []*op) {
	if len(g) == 0 {
		return
	}
	st := s.p.Store()
	u := s.p.Universe()
	seen := make(map[model.WorkerID]bool, len(g))
	var clean []*op
	ws := make([]*model.Worker, 0, len(g))
	for _, o := range g {
		if err := o.worker.Validate(u); err != nil {
			o.done <- fmt.Errorf("%w: %v", store.ErrInvalid, err)
			continue
		}
		if seen[o.worker.ID] {
			o.done <- fmt.Errorf("worker %s: %w", o.worker.ID, store.ErrDuplicate)
			continue
		}
		if _, err := st.Worker(o.worker.ID); err == nil {
			o.done <- fmt.Errorf("worker %s: %w", o.worker.ID, store.ErrDuplicate)
			continue
		}
		seen[o.worker.ID] = true
		clean = append(clean, o)
		ws = append(ws, o.worker)
	}
	if len(clean) > 0 {
		ack(clean, s.p.AddWorkers(ws))
	}
}

// applyWorkerUpdates screens unknown ids, folds repeated updates of one
// worker down to the last write (arrival order — the superseded writes
// share the winner's outcome), and bulk-applies.
func (s *Server) applyWorkerUpdates(g []*op) {
	if len(g) == 0 {
		return
	}
	st := s.p.Store()
	u := s.p.Universe()
	last := make(map[model.WorkerID]int, len(g))
	var order []model.WorkerID
	var pending []*op
	for _, o := range g {
		if err := o.worker.Validate(u); err != nil {
			o.done <- fmt.Errorf("%w: %v", store.ErrInvalid, err)
			continue
		}
		if _, err := st.Worker(o.worker.ID); err != nil {
			o.done <- err
			continue
		}
		if _, dup := last[o.worker.ID]; !dup {
			order = append(order, o.worker.ID)
		}
		last[o.worker.ID] = len(pending)
		pending = append(pending, o)
	}
	if len(pending) == 0 {
		return
	}
	ws := make([]*model.Worker, 0, len(order))
	for _, id := range order {
		ws = append(ws, pending[last[id]].worker)
	}
	ack(pending, s.p.UpdateWorkers(ws))
}

// applyTaskPosts screens duplicates and dangling requesters, then
// bulk-posts.
func (s *Server) applyTaskPosts(g []*op) {
	if len(g) == 0 {
		return
	}
	st := s.p.Store()
	u := s.p.Universe()
	seen := make(map[model.TaskID]bool, len(g))
	var clean []*op
	ts := make([]*model.Task, 0, len(g))
	for _, o := range g {
		if err := o.task.Validate(u); err != nil {
			o.done <- fmt.Errorf("%w: %v", store.ErrInvalid, err)
			continue
		}
		if seen[o.task.ID] {
			o.done <- fmt.Errorf("task %s: %w", o.task.ID, store.ErrDuplicate)
			continue
		}
		if _, err := st.Task(o.task.ID); err == nil {
			o.done <- fmt.Errorf("task %s: %w", o.task.ID, store.ErrDuplicate)
			continue
		}
		if _, err := st.Requester(o.task.Requester); err != nil {
			o.done <- err
			continue
		}
		seen[o.task.ID] = true
		clean = append(clean, o)
		ts = append(ts, o.task)
	}
	if len(clean) > 0 {
		ack(clean, s.p.PostTasks(ts))
	}
}

// applyContribAdds screens duplicates and dangling task/worker refs, then
// bulk-records.
func (s *Server) applyContribAdds(g []*op) {
	if len(g) == 0 {
		return
	}
	st := s.p.Store()
	seen := make(map[model.ContributionID]bool, len(g))
	var clean []*op
	cs := make([]*model.Contribution, 0, len(g))
	for _, o := range g {
		if err := o.contrib.Validate(); err != nil {
			o.done <- fmt.Errorf("%w: %v", store.ErrInvalid, err)
			continue
		}
		if seen[o.contrib.ID] {
			o.done <- fmt.Errorf("contribution %s: %w", o.contrib.ID, store.ErrDuplicate)
			continue
		}
		if _, err := st.Contribution(o.contrib.ID); err == nil {
			o.done <- fmt.Errorf("contribution %s: %w", o.contrib.ID, store.ErrDuplicate)
			continue
		}
		if _, err := st.Task(o.contrib.Task); err != nil {
			o.done <- err
			continue
		}
		if _, err := st.Worker(o.contrib.Worker); err != nil {
			o.done <- err
			continue
		}
		seen[o.contrib.ID] = true
		clean = append(clean, o)
		cs = append(cs, o.contrib)
	}
	if len(clean) > 0 {
		ack(clean, s.p.RecordContributions(cs))
	}
}

// applyContribUpdates applies contribution updates individually (the
// accept/pay path has no bulk store API; updates are far rarer than
// submissions).
func (s *Server) applyContribUpdates(g []*op) {
	for _, o := range g {
		if err := o.contrib.Validate(); err != nil {
			o.done <- fmt.Errorf("%w: %v", store.ErrInvalid, err)
			continue
		}
		o.done <- s.p.UpdateContribution(o.contrib)
	}
}

// applyOffers screens dangling refs and appends the surviving offers as
// one trace batch.
func (s *Server) applyOffers(g []*op) {
	if len(g) == 0 {
		return
	}
	var clean []*op
	offers := make([]crowdfair.Offer, 0, len(g))
	for _, o := range g {
		if err := s.p.ValidateOffer(o.offer); err != nil {
			o.done <- err
			continue
		}
		clean = append(clean, o)
		offers = append(offers, o.offer)
	}
	if len(clean) > 0 {
		ack(clean, s.p.OfferBatch(offers))
	}
}
