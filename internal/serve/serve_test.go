package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/crowdfair"
	"repro/internal/load"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/workload"
)

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.Platform == nil {
		cfg.Platform = crowdfair.NewPlatform(crowdfair.NewUniverse("s0", "s1", "s2"))
	}
	if cfg.Audit.SkillThreshold == 0 {
		cfg.Audit = crowdfair.DefaultAuditConfig()
	}
	s := serve.New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Stop()
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func wantStatus(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != want {
		var b bytes.Buffer
		_, _ = b.ReadFrom(resp.Body)
		t.Fatalf("status = %d, want %d (body: %s)", resp.StatusCode, want, b.String())
	}
}

func TestCRUDRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})

	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/requesters", &model.Requester{ID: "r1", Name: "R"}), 200)
	w := &model.Worker{ID: "w1", Skills: model.SkillVector{true, false, true}}
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/workers", w), 200)
	task := &model.Task{ID: "t1", Requester: "r1", Skills: model.SkillVector{true, false, false}, Reward: 1}
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/tasks", task), 200)
	c := &model.Contribution{ID: "c1", Task: "t1", Worker: "w1", Quality: 0.9, SubmittedAt: 1}
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/contributions", c), 200)
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/offers", &crowdfair.Offer{Task: "t1", Worker: "w1"}), 200)

	// Read the worker back and check the payload survived the round trip.
	resp := doJSON(t, "GET", ts.URL+"/v1/workers/w1", nil)
	var got model.Worker
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.ID != "w1" || len(got.Skills) != 3 || !got.Skills[0] {
		t.Fatalf("worker round trip = %+v", got)
	}

	// Update the worker and confirm the write took.
	w.Computed = model.Attributes{model.AttrAcceptanceRatio: model.Num(0.5)}
	wantStatus(t, doJSON(t, "PUT", ts.URL+"/v1/workers/w1", w), 200)
	resp = doJSON(t, "GET", ts.URL+"/v1/workers/w1", nil)
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Computed[model.AttrAcceptanceRatio] != model.Num(0.5) {
		t.Fatalf("update not visible: %+v", got.Computed)
	}

	// Accept the contribution through PUT.
	c.Accepted = true
	c.Paid = 1
	wantStatus(t, doJSON(t, "PUT", ts.URL+"/v1/contributions/c1", c), 200)

	// Error mapping: duplicate → 409, missing → 404, garbage → 400.
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/workers", w), 409)
	wantStatus(t, doJSON(t, "GET", ts.URL+"/v1/workers/nope", nil), 404)
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/tasks", map[string]any{"Bogus": 1}), 400)
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/offers", &crowdfair.Offer{Task: "t404", Worker: "w1"}), 404)
	// Checkpoint on an in-memory platform is a conflict, not a crash.
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/checkpoint", nil), 409)
}

func TestAuditEndpointServesCachedSnapshot(t *testing.T) {
	// Background audits disabled: the snapshot only moves via AuditNow, so
	// the handler observably serves the cache rather than re-auditing.
	s, ts := newTestServer(t, serve.Config{AuditEvery: -1})
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/requesters", &model.Requester{ID: "r1"}), 200)

	resp := doJSON(t, "GET", ts.URL+"/v1/audit", nil)
	var snap struct {
		Version      uint64 `json:"version"`
		Pass         uint64 `json:"pass"`
		Fingerprint  string `json:"fingerprint"`
		StoreVersion uint64 `json:"store_version"`
		Lag          uint64 `json:"lag"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Pass != 1 {
		t.Fatalf("pass = %d, want 1 (the synchronous Start audit)", snap.Pass)
	}
	if snap.Lag == 0 {
		t.Fatal("mutation after the audit should show as lag")
	}
	if snap.Fingerprint == "" {
		t.Fatal("empty fingerprint")
	}
	if got := s.AuditNow(); got.Pass != 2 {
		t.Fatalf("AuditNow pass = %d", got.Pass)
	}
}

// TestShedOnAuditLag drives the audit-lag valve deterministically: with
// background audits off and MaxAuditLag=1, the third sequential mutation
// must observe lag 2 and shed with 429 + Retry-After, and a catch-up audit
// must re-open admission.
func TestShedOnAuditLag(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{MaxAuditLag: 1, AuditEvery: -1})
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/requesters", &model.Requester{ID: "r1"}), 200)
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/requesters", &model.Requester{ID: "r2"}), 200)

	resp := doJSON(t, "POST", ts.URL+"/v1/requesters", &model.Requester{ID: "r3"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var body struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if !strings.Contains(body.Error, "audit lag") {
		t.Fatalf("shed reason = %q", body.Error)
	}

	// Catching the auditor up re-opens admission.
	s.AuditNow()
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/requesters", &model.Requester{ID: "r3"}), 200)
}

// TestShedOnFullQueue fills the dispatcher queue before the dispatcher
// starts: the overflow request must shed immediately with 429 rather than
// block, and starting the dispatcher must drain the queued one.
func TestShedOnFullQueue(t *testing.T) {
	p := crowdfair.NewPlatform(crowdfair.NewUniverse("s0", "s1", "s2"))
	s := serve.New(serve.Config{Platform: p, Audit: crowdfair.DefaultAuditConfig(), MaxQueue: 1, AuditEvery: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan *http.Response, 1)
	go func() {
		first <- doJSON(t, "POST", ts.URL+"/v1/requesters", &model.Requester{ID: "r1"})
	}()
	// Wait for the first request to occupy the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp := doJSON(t, "POST", ts.URL+"/v1/requesters", &model.Requester{ID: "r2"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	s.Start()
	defer s.Stop()
	wantStatus(t, <-first, 200)
}

// TestCoalescing parks N mutations in the queue before the dispatcher
// starts and asserts they apply as a single coalesced batch.
func TestCoalescing(t *testing.T) {
	p := crowdfair.NewPlatform(crowdfair.NewUniverse("s0", "s1", "s2"))
	s := serve.New(serve.Config{Platform: p, Audit: crowdfair.DefaultAuditConfig(), AuditEvery: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 16
	done := make(chan *http.Response, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("r%02d", i)
		go func() {
			done <- doJSON(t, "POST", ts.URL+"/v1/requesters", &model.Requester{ID: model.RequesterID(id)})
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests queued", s.QueueDepth(), n)
		}
		time.Sleep(time.Millisecond)
	}

	s.Start()
	defer s.Stop()
	for i := 0; i < n; i++ {
		wantStatus(t, <-done, 200)
	}
	batches, ops := s.BatchStats()
	if batches != 1 || ops != n {
		t.Fatalf("batches = %d, batched ops = %d; want 1 coalesced batch of %d", batches, ops, n)
	}
}

// TestConcurrentServeMatchesSerialOracle is the serving determinism gate
// (run under -race in CI): a closed-loop concurrent replay of a seeded
// plan — mutation HTTP requests racing the in-loop incremental auditor —
// must end in exactly the audit report a serial application of the same
// plan produces.
func TestConcurrentServeMatchesSerialOracle(t *testing.T) {
	plan := load.BuildPlan(load.MixSpec{Workers: 40, Tasks: 12, Requests: 400}, 12345)
	cfg := crowdfair.DefaultAuditConfig()

	p := crowdfair.NewPlatform(plan.Universe)
	if err := plan.SeedPlatform(p); err != nil {
		t.Fatal(err)
	}
	// A fast audit cadence maximises audits racing mutations.
	s := serve.New(serve.Config{Platform: p, Audit: cfg, AuditEvery: time.Millisecond})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	runner := &load.Runner{Base: ts.URL}
	res := runner.Run(plan, workload.ClosedLoop(8), nil)
	if res.Errors != 0 || res.Shed != 0 {
		t.Fatalf("run had %d errors, %d sheds (all requests must apply for the oracle comparison)", res.Errors, res.Shed)
	}
	s.Stop()

	final := s.AuditNow()
	want, err := plan.Oracle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if final.Fingerprint != want {
		t.Fatalf("concurrent replay fingerprint %s != serial oracle %s", final.Fingerprint, want)
	}
}

// TestStatszAndDebugVars exercises the observability surface.
func TestStatszAndDebugVars(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/requesters", &model.Requester{ID: "r1"}), 200)

	resp := doJSON(t, "GET", ts.URL+"/statsz", nil)
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"version", "admitted", "batches", "audit_lag", "queue_cap", "mean_batch_size"} {
		if _, ok := st[key]; !ok {
			t.Fatalf("statsz missing %q: %v", key, st)
		}
	}

	resp = doJSON(t, "GET", ts.URL+"/debug/vars", nil)
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := vars["crowdserve"]; !ok {
		t.Fatal("/debug/vars missing crowdserve")
	}
	resp = doJSON(t, "GET", ts.URL+"/debug/pprof/cmdline", nil)
	wantStatus(t, resp, 200)
}
