package serve

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"repro/crowdfair"
)

func TestReviewStopDoesNotReapply(t *testing.T) {
	u := crowdfair.NewUniverse("s0", "s1")
	p := crowdfair.NewPlatform(u)
	s := New(Config{Platform: p, AuditEvery: -1})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	post := func(path, body string) int {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := post("/v1/requesters", `{"ID":"r1"}`); c != 200 { t.Fatalf("req %d", c) }
	if c := post("/v1/workers", `{"ID":"w1","Skills":[true,false]}`); c != 200 { t.Fatalf("worker %d", c) }
	if c := post("/v1/tasks", `{"ID":"t1","Requester":"r1"}`); c != 200 { t.Fatalf("task %d", c) }
	if code := post("/v1/offers", `{"Task":"t1","Worker":"w1"}`); code != 200 {
		t.Fatalf("offer status %d", code)
	}
	before := p.Log().Len()
	ts.Close()
	s.Stop()
	after := p.Log().Len()
	if after != before {
		t.Fatalf("Stop re-applied: events %d -> %d", before, after)
	}
}
