// Package serve is the online serving surface over crowdfair.Platform: an
// HTTP/JSON front-end whose hot path is engineered for the layers below it
// rather than merely wired to them.
//
// Three mechanisms carry the load story:
//
//   - Request coalescing (batch.go): concurrent mutation requests are
//     enqueued into a single channel and drained by one dispatcher into
//     type-ordered batches, applied through the platform's bulk entry
//     points. The store fans each batch out by owning shard under one lock
//     acquisition per shard, and both the store WAL and the event trace pay
//     one group-commit durability wait per shard for the whole batch — the
//     per-request fsync cost of a naive front-end amortises away exactly
//     like the group-commit WAL amortises appends.
//
//   - Admission control: mutations are shed with HTTP 429 + Retry-After
//     when the dispatcher queue is full or the incremental auditor has
//     fallen more than MaxAuditLag store versions behind, so overload
//     degrades into fast, explicit rejections instead of collapsing the
//     latency of admitted requests.
//
//   - Read caching: audit reports are served from a version-stamped
//     snapshot refreshed by an in-loop AuditIncremental goroutine — a read
//     never triggers an audit, it observes the freshest completed one.
//
// A /debug surface (net/http/pprof + expvar counters for batch occupancy,
// shed counts, and audit lag) makes serving benchmarks profilable like the
// existing -memprofile paths.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/crowdfair"
	"repro/internal/fairness"
)

// Platform and AuditConfig alias the public API types the server fronts.
type (
	Platform    = crowdfair.Platform
	AuditConfig = crowdfair.AuditConfig
)

// Config parameterises a Server. The zero value of every knob selects the
// documented default; Platform is required.
type Config struct {
	// Platform is the platform under service (required).
	Platform *Platform
	// Audit is the fairness configuration the in-loop auditor runs under.
	Audit AuditConfig

	// BatchMax caps how many queued mutations one coalesced batch admits
	// (default 256).
	BatchMax int
	// Linger is how long the dispatcher waits for more arrivals after the
	// first of a batch before applying it. The default 0 never waits: the
	// durability stall of the in-flight batch is itself the accumulation
	// window for the next one (natural batching, as in group commit), so
	// an uncontended request pays no added latency.
	Linger time.Duration
	// MaxQueue bounds the mutations queued awaiting a batch (default
	// 4096). Arrivals beyond it are shed with 429.
	MaxQueue int
	// MaxAuditLag sheds mutations once the cached audit snapshot trails
	// the store by more than this many versions (default 0: disabled).
	// It is the backpressure valve that keeps "audited" a live property
	// under write floods.
	MaxAuditLag uint64
	// RetryAfter is the advisory delay clients receive with a 429
	// (default 500ms).
	RetryAfter time.Duration
	// AuditEvery is the cadence of the in-loop AuditIncremental refresh
	// (default 100ms; negative disables the loop — snapshots then move
	// only through AuditNow).
	AuditEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.BatchMax == 0 {
		c.BatchMax = 256
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4096
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	if c.AuditEvery == 0 {
		c.AuditEvery = 100 * time.Millisecond
	}
	return c
}

// Server is the HTTP front-end. Construct with New, wire Handler into an
// http.Server (or httptest), call Start before serving and Stop when done.
type Server struct {
	cfg Config
	p   *Platform
	mux *http.ServeMux

	ops   chan *op
	stopc chan struct{}
	wg    sync.WaitGroup

	// snapshot is the cached audit result reads are served from; audited
	// is the store version stamped into it (the admission lag baseline).
	snapshot atomic.Pointer[AuditSnapshot]
	audited  atomic.Uint64
	auditMu  sync.Mutex // serialises AuditNow with the background loop

	// Counters, exported through /statsz and /debug/vars.
	admitted   atomic.Uint64 // mutations accepted into the queue
	shedQueue  atomic.Uint64 // 429s from a full queue
	shedLag    atomic.Uint64 // 429s from audit lag
	batches    atomic.Uint64 // coalesced batches applied
	batchedOps atomic.Uint64 // mutations covered by those batches
	audits     atomic.Uint64 // audit passes completed
}

// AuditSnapshot is the version-stamped cached audit result served by
// GET /v1/audit.
type AuditSnapshot struct {
	// Version is the store version observed before the audit pass began:
	// every mutation at or below it is reflected in the reports.
	Version uint64 `json:"version"`
	// Pass counts completed audit passes (1 = cold scan).
	Pass uint64 `json:"pass"`
	// TookMS is the wall time of the pass in milliseconds.
	TookMS float64 `json:"took_ms"`
	// Fingerprint is a SHA-256 over every rendered report — the equality
	// handle determinism checks and serial oracles compare against.
	Fingerprint string `json:"fingerprint"`
	// Reports summarises the five axiom reports in axiom order.
	Reports []ReportSummary `json:"reports"`
}

// ReportSummary is the wire form of one axiom report.
type ReportSummary struct {
	Axiom      string `json:"axiom"`
	Checked    int    `json:"checked"`
	Violations int    `json:"violations"`
	Satisfied  bool   `json:"satisfied"`
}

// AuditFingerprint reduces a report set to a stable hex digest: axiom,
// Checked, and every rendered violation, hashed. Two report sets with equal
// fingerprints rendered identically — the comparison the serving
// determinism gates (same seed → same final audit report) are built on.
func AuditFingerprint(reps []*fairness.Report) string {
	h := sha256.New()
	for _, r := range reps {
		fmt.Fprintf(h, "%s|%d|%d\n", r.Axiom, r.Checked, len(r.Violations))
		for _, v := range r.Violations {
			h.Write([]byte(v.String()))
			h.Write([]byte{'\n'})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// New builds a Server over cfg.Platform. It panics if the platform is nil.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Platform == nil {
		panic("serve: Config.Platform is required")
	}
	s := &Server{
		cfg:   cfg,
		p:     cfg.Platform,
		ops:   make(chan *op, cfg.MaxQueue),
		stopc: make(chan struct{}),
	}
	s.mux = s.buildMux()
	return s
}

// Start launches the dispatcher and the in-loop audit goroutine, and runs
// one synchronous audit pass so reads have a snapshot from the first
// request on.
func (s *Server) Start() {
	s.AuditNow()
	s.wg.Add(1)
	go s.dispatch()
	if s.cfg.AuditEvery > 0 {
		s.wg.Add(1)
		go s.auditLoop()
	}
	setDebugServer(s)
}

// Stop drains the dispatcher (queued mutations are applied, not dropped)
// and stops the audit loop. The platform stays usable.
func (s *Server) Stop() {
	close(s.stopc)
	s.wg.Wait()
}

// Handler returns the server's HTTP handler, including the /debug surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the current cached audit snapshot (nil before the first
// pass completes, which Start prevents by auditing synchronously).
func (s *Server) Snapshot() *AuditSnapshot { return s.snapshot.Load() }

// QueueDepth returns how many admitted mutations currently await a batch.
func (s *Server) QueueDepth() int { return len(s.ops) }

// BatchStats returns the coalesced batch count and the mutations those
// batches covered.
func (s *Server) BatchStats() (batches, ops uint64) {
	return s.batches.Load(), s.batchedOps.Load()
}

// AuditLag returns how many store versions the cached audit snapshot
// trails the live store by.
func (s *Server) AuditLag() uint64 {
	v := s.p.Version()
	a := s.audited.Load()
	if v <= a {
		return 0
	}
	return v - a
}

// AuditNow runs one audit pass synchronously and publishes the refreshed
// snapshot. Benchmarks and tests use it to observe a final, fully
// caught-up report; the background loop calls the same path.
func (s *Server) AuditNow() *AuditSnapshot {
	s.auditMu.Lock()
	defer s.auditMu.Unlock()
	ver := s.p.Version()
	start := time.Now()
	reps := s.p.AuditIncremental(s.cfg.Audit)
	took := time.Since(start)
	snap := &AuditSnapshot{
		Version:     ver,
		Pass:        s.audits.Add(1),
		TookMS:      float64(took.Microseconds()) / 1e3,
		Fingerprint: AuditFingerprint(reps),
	}
	for _, r := range reps {
		snap.Reports = append(snap.Reports, ReportSummary{
			Axiom:      r.Axiom.String(),
			Checked:    r.Checked,
			Violations: len(r.Violations),
			Satisfied:  r.Satisfied(),
		})
	}
	s.snapshot.Store(snap)
	s.audited.Store(ver)
	return snap
}

// auditLoop refreshes the audit snapshot on the configured cadence,
// skipping passes while the store version is unchanged.
func (s *Server) auditLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.AuditEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-t.C:
			if s.p.Version() != s.audited.Load() {
				s.AuditNow()
			}
		}
	}
}
