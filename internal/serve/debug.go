package serve

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// debugServer points at the most recently started Server: expvar allows a
// name to be published exactly once per process, so the "crowdserve" var is
// an indirection that always reads the latest server instead of a direct
// publish per instance (tests start many servers in one process).
var (
	debugServer  atomic.Pointer[Server]
	debugPublish sync.Once
)

// setDebugServer registers s as the process's expvar subject.
func setDebugServer(s *Server) {
	debugServer.Store(s)
	debugPublish.Do(func() {
		expvar.Publish("crowdserve", expvar.Func(func() any {
			cur := debugServer.Load()
			if cur == nil {
				return nil
			}
			return cur.statsz()
		}))
	})
}

// registerDebug wires the /debug surface onto mux: expvar under
// /debug/vars and the pprof handlers under /debug/pprof/, matching what
// http.DefaultServeMux would carry, so serving benchmarks are profilable
// against any Server without importing the default mux's side effects.
func registerDebug(mux *http.ServeMux) {
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
