package pay

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/similarity"
)

func payTask() *model.Task {
	return &model.Task{ID: "t1", Requester: "r1", Skills: model.NewSkillVector(1), Reward: 2}
}

func contrib(id string, worker string, quality float64, accepted bool, text string) *model.Contribution {
	return &model.Contribution{
		ID: model.ContributionID(id), Task: "t1", Worker: model.WorkerID(worker),
		Quality: quality, Accepted: accepted, Text: text,
	}
}

func TestFixedReward(t *testing.T) {
	cs := []*model.Contribution{
		contrib("c1", "w1", 0.9, true, "a"),
		contrib("c2", "w2", 0.9, false, "a"),
	}
	pays := FixedReward{}.Pay(payTask(), cs)
	if pays[0] != 2 || pays[1] != 0 {
		t.Fatalf("pays = %v", pays)
	}
}

func TestQualityBased(t *testing.T) {
	q := QualityBased{Floor: 0.2, MinFraction: 0.25}
	cs := []*model.Contribution{
		contrib("c1", "w1", 1.0, true, "a"),  // full reward
		contrib("c2", "w2", 0.2, true, "a"),  // floor -> min fraction
		contrib("c3", "w3", 0.1, true, "a"),  // below floor -> 0
		contrib("c4", "w4", 0.6, true, "a"),  // interpolated
		contrib("c5", "w5", 1.0, false, "a"), // rejected -> 0
	}
	pays := q.Pay(payTask(), cs)
	if pays[0] != 2 {
		t.Errorf("full quality pay = %v, want 2", pays[0])
	}
	if pays[1] != 0.5 {
		t.Errorf("floor pay = %v, want 0.5 (25%% of 2)", pays[1])
	}
	if pays[2] != 0 || pays[4] != 0 {
		t.Errorf("cutoff pays = %v, %v, want 0", pays[2], pays[4])
	}
	want := 2 * (0.25 + 0.75*(0.6-0.2)/0.8)
	if math.Abs(pays[3]-want) > 1e-9 {
		t.Errorf("interpolated pay = %v, want %v", pays[3], want)
	}
}

func TestQualityBasedDefaults(t *testing.T) {
	pays := QualityBased{}.Pay(payTask(), []*model.Contribution{
		contrib("c1", "w1", 1.0, true, "a"),
	})
	if pays[0] != 2 {
		t.Fatalf("default full pay = %v", pays[0])
	}
}

func TestSimilarityFairEqualisesClusters(t *testing.T) {
	// Two identical texts with different qualities: the quality-based base
	// pays differently, the fair scheme must equalise them.
	same := "the quick brown fox jumps over the lazy dog in the morning light"
	cs := []*model.Contribution{
		contrib("c1", "w1", 1.0, true, same),
		contrib("c2", "w2", 0.5, true, same),
		contrib("c3", "w3", 0.9, true, "completely different answer about databases and indexing strategies"),
	}
	pays := SimilarityFair{}.Pay(payTask(), cs)
	if pays[0] != pays[1] {
		t.Fatalf("similar contributions paid differently: %v vs %v", pays[0], pays[1])
	}
	if pays[2] == pays[0] {
		t.Fatal("dissimilar contribution was pulled into the cluster")
	}
	// The cluster pay is the mean of the base payments.
	base := (QualityBased{}).Pay(payTask(), cs)
	wantMean := (base[0] + base[1]) / 2
	if math.Abs(pays[0]-wantMean) > 1e-9 {
		t.Fatalf("cluster pay = %v, want mean %v", pays[0], wantMean)
	}
}

func TestSimilarityFairRemediesWrongfulRejection(t *testing.T) {
	// A rejected contribution identical to an accepted one gets the
	// cluster's (positive) mean pay — the §3.1.1 wrongful-rejection remedy.
	same := "survey answer agreeing strongly with the first three statements"
	cs := []*model.Contribution{
		contrib("c1", "w1", 0.9, true, same),
		contrib("c2", "w2", 0.9, false, same),
	}
	pays := SimilarityFair{Base: FixedReward{}}.Pay(payTask(), cs)
	if pays[0] != pays[1] {
		t.Fatalf("pays = %v, want equal", pays)
	}
	if pays[1] != 1 { // mean of (2, 0)
		t.Fatalf("remedied pay = %v, want 1", pays[1])
	}
}

func TestSimilarityFairTransitiveClustering(t *testing.T) {
	// a~b and b~c with a and c less similar: single-link must still place
	// all three in one cluster.
	a := "alpha beta gamma delta epsilon zeta eta theta"
	b := "alpha beta gamma delta epsilon zeta eta iota"
	c := "alpha beta gamma delta epsilon zeta kappa iota"
	cs := []*model.Contribution{
		contrib("c1", "w1", 1.0, true, a),
		contrib("c2", "w2", 0.8, true, b),
		contrib("c3", "w3", 0.6, true, c),
	}
	pays := SimilarityFair{Threshold: 0.75}.Pay(payTask(), cs)
	if pays[0] != pays[1] || pays[1] != pays[2] {
		t.Fatalf("transitive cluster not equalised: %v", pays)
	}
}

func TestSimilarityFairEmpty(t *testing.T) {
	if got := (SimilarityFair{}).Pay(payTask(), nil); len(got) != 0 {
		t.Fatalf("empty pay = %v", got)
	}
}

func TestSchemeConservationProperty(t *testing.T) {
	// SimilarityFair redistributes but never changes the total paid.
	f := func(seed int64) bool {
		n := int(seed%7) + 2
		if n < 0 {
			n = 2
		}
		var cs []*model.Contribution
		for i := 0; i < n; i++ {
			text := "common answer core"
			if i%2 == 0 {
				text = "a completely distinct response body"
			}
			cs = append(cs, contrib(
				fmt.Sprintf("c%d", i), fmt.Sprintf("w%d", i),
				float64((int(seed)+i*13)%100)/100.0,
				(int(seed)+i)%3 != 0, text))
		}
		base := (QualityBased{}).Pay(payTask(), cs)
		fair := (SimilarityFair{}).Pay(payTask(), cs)
		var sumBase, sumFair float64
		for i := range base {
			sumBase += base[i]
			sumFair += fair[i]
		}
		return math.Abs(sumBase-sumFair) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"fixed", "quality-based", "similarity-fair"} {
		s, ok := SchemeByName(name)
		if !ok || s.Name() != name {
			t.Errorf("scheme %q not resolvable", name)
		}
	}
	if _, ok := SchemeByName("nope"); ok {
		t.Error("unknown scheme resolved")
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	if err := l.Record(Payment{Worker: "w1", Amount: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(Payment{Worker: "w1", Amount: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(Payment{Worker: "w2", Amount: 1}); err != nil {
		t.Fatal(err)
	}
	if l.WorkerIncome("w1") != 5 || l.WorkerIncome("w2") != 1 {
		t.Fatalf("incomes = %v, %v", l.WorkerIncome("w1"), l.WorkerIncome("w2"))
	}
	if l.Total() != 6 {
		t.Fatalf("total = %v", l.Total())
	}
	incomes := l.Incomes()
	if len(incomes) != 2 || incomes[0] != 5 || incomes[1] != 1 {
		t.Fatalf("incomes slice = %v", incomes)
	}
	if len(l.Payments()) != 3 {
		t.Fatalf("payments = %d", len(l.Payments()))
	}
}

func TestLedgerRejectsNegative(t *testing.T) {
	l := NewLedger()
	if err := l.Record(Payment{Worker: "w1", Amount: -1}); err == nil {
		t.Fatal("negative payment accepted")
	}
}

func TestLedgerConservationProperty(t *testing.T) {
	// Total always equals the sum of recorded amounts.
	f := func(amounts []float64) bool {
		l := NewLedger()
		var want float64
		for i, a := range amounts {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				continue
			}
			a = math.Mod(math.Abs(a), 1e6)
			if err := l.Record(Payment{Worker: model.WorkerID(fmt.Sprintf("w%d", i%5)), Amount: a}); err != nil {
				return false
			}
			want += a
		}
		return math.Abs(l.Total()-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBonusContract(t *testing.T) {
	l := NewLedger()
	b := NewBonusContract("r1", "w1", 3, 5)
	if b.Due() {
		t.Fatal("new contract already due")
	}
	b.Complete()
	b.Complete()
	if paid, err := b.Settle(l, true, 0); err != nil || paid {
		t.Fatalf("premature settle = %v, %v", paid, err)
	}
	b.Complete()
	if !b.Due() {
		t.Fatal("contract not due after series")
	}
	paid, err := b.Settle(l, true, 0)
	if err != nil || !paid {
		t.Fatalf("settle = %v, %v", paid, err)
	}
	if l.WorkerIncome("w1") != 5 {
		t.Fatalf("bonus not paid: %v", l.WorkerIncome("w1"))
	}
	// Double settle is a no-op.
	if paid, _ := b.Settle(l, true, 0); paid {
		t.Fatal("double settle paid twice")
	}
	if !b.Paid() {
		t.Fatal("Paid() false after payment")
	}
}

func TestBonusContractRenege(t *testing.T) {
	l := NewLedger()
	b := NewBonusContract("r1", "w1", 1, 5)
	b.Complete()
	paid, err := b.Settle(l, false, 0)
	if err != nil || paid {
		t.Fatalf("renege settle = %v, %v", paid, err)
	}
	if !b.Reneged() {
		t.Fatal("contract not marked reneged")
	}
	if l.Total() != 0 {
		t.Fatal("reneged contract paid")
	}
	// Once reneged, even an honour attempt pays nothing (the harm is done).
	if paid, _ := b.Settle(l, true, 0); paid {
		t.Fatal("reneged contract later paid")
	}
}

func TestBonusContractPanicsOnBadParams(t *testing.T) {
	for name, build := range map[string]func(){
		"zero-series":     func() { NewBonusContract("r", "w", 0, 1) },
		"negative-amount": func() { NewBonusContract("r", "w", 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			build()
		}()
	}
}

// Negative fields are the explicit-zero sentinel; plain zero still selects
// the documented default.
func TestQualityBasedExplicitZeroSentinel(t *testing.T) {
	task := &model.Task{ID: "t1", Requester: "r1", Reward: 1.0}
	low := &model.Contribution{ID: "c1", Task: "t1", Worker: "w1", Quality: 0.1, Accepted: true}
	// Default floor 0.2: quality 0.1 earns nothing.
	if got := (QualityBased{}).Pay(task, []*model.Contribution{low})[0]; got != 0 {
		t.Fatalf("default floor paid %v", got)
	}
	// Explicit-zero floor: every accepted contribution earns.
	got := QualityBased{Floor: -1}.Pay(task, []*model.Contribution{low})[0]
	if got <= 0 {
		t.Fatalf("explicit-zero floor paid %v", got)
	}
	// Explicit-zero MinFraction: interpolation starts at nothing, so
	// quality 1 still pays the full reward and floor-quality pays ~0.
	qb := QualityBased{MinFraction: -1}
	perfect := &model.Contribution{ID: "c2", Task: "t1", Worker: "w2", Quality: 1, Accepted: true}
	if got := qb.Pay(task, []*model.Contribution{perfect})[0]; got != 1.0 {
		t.Fatalf("perfect quality paid %v, want full reward", got)
	}
}

// SimilarityFair must produce identical payments through the parallel
// pair-scoring kernel and through an injected scorer (the memoized path the
// incremental audit engine uses).
func TestSimilarityFairInjectedScorerMatches(t *testing.T) {
	task := &model.Task{ID: "t1", Requester: "r1", Reward: 2.0}
	contribs := []*model.Contribution{
		{ID: "c1", Task: "t1", Worker: "w1", Text: "the quick brown fox jumps", Quality: 0.9, Accepted: true},
		{ID: "c2", Task: "t1", Worker: "w2", Text: "the quick brown fox jumps", Quality: 0.4, Accepted: true},
		{ID: "c3", Task: "t1", Worker: "w3", Text: "entirely unrelated words here", Quality: 0.8, Accepted: true},
	}
	def := SimilarityFair{}.Pay(task, contribs)
	calls := 0
	injected := SimilarityFair{PairScores: func(cs []*model.Contribution) []float64 {
		calls++
		return similarity.ContributionPairScores(cs)
	}}.Pay(task, contribs)
	if calls != 1 {
		t.Fatalf("injected scorer called %d times", calls)
	}
	for i := range def {
		if def[i] != injected[i] {
			t.Fatalf("payment %d: %v (default) vs %v (injected)", i, def[i], injected[i])
		}
	}
	// The similar pair (c1, c2) must be equalised; the dissimilar c3 not.
	if def[0] != def[1] {
		t.Fatalf("similar contributions paid %v vs %v", def[0], def[1])
	}
	if def[2] == def[0] {
		t.Fatal("dissimilar contribution was dragged into the cluster")
	}
}
