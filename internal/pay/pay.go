// Package pay implements the worker-compensation strategies of §3.1.1 and
// the payment ledger audited by Axiom 3 ("workers with similar
// contributions to the same task should receive the same reward").
//
// Three families are provided: fixed per-task rewards (the AMT default),
// quality-based pricing after Wang, Ipeirotis & Provost (2013), and a
// similarity-fair scheme that equalises pay inside clusters of mutually
// similar contributions — the enforcement mechanism for Axiom 3. A
// BonusContract type models the promised-bonus scenario the paper lists as
// a discrimination source.
package pay

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/similarity"
)

// Scheme computes the payment for each contribution to a single task.
type Scheme interface {
	// Name identifies the scheme in reports and benchmarks.
	Name() string
	// Pay returns the payment per contribution (parallel to contribs).
	// All contributions belong to task t.
	Pay(t *model.Task, contribs []*model.Contribution) []float64
}

// FixedReward pays the task reward to every accepted contribution and
// nothing to rejected ones — the AMT baseline where wage discrimination
// manifests as wrongful rejection.
type FixedReward struct{}

// Name implements Scheme.
func (FixedReward) Name() string { return "fixed" }

// Pay implements Scheme.
func (FixedReward) Pay(t *model.Task, contribs []*model.Contribution) []float64 {
	out := make([]float64, len(contribs))
	for i, c := range contribs {
		if c.Accepted {
			out[i] = t.Reward
		}
	}
	return out
}

// QualityBased scales the task reward by contribution quality, following
// the quality-based reward scheme of Wang–Ipeirotis–Provost the paper cites
// ("compensation that depends on the quality of a worker's contribution").
// Quality below Floor earns nothing (the spam cutoff); above it the payment
// interpolates linearly from MinFraction*Reward to Reward.
//
// Zero fields select the documented defaults; an explicit zero is expressed
// with a negative value (Floor: -1 pays every accepted contribution,
// MinFraction: -1 starts the interpolation at nothing).
type QualityBased struct {
	// Floor is the minimum quality that earns any payment (default 0.2).
	Floor float64
	// MinFraction is the fraction of the reward paid at quality == Floor
	// (default 0.25). Quality 1 always pays the full reward.
	MinFraction float64
}

// Name implements Scheme.
func (QualityBased) Name() string { return "quality-based" }

// orDefault maps 0 to the documented default and any negative value to an
// explicit 0.
func orDefault(v, def float64) float64 {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// Pay implements Scheme.
func (q QualityBased) Pay(t *model.Task, contribs []*model.Contribution) []float64 {
	floor := orDefault(q.Floor, 0.2)
	minFrac := orDefault(q.MinFraction, 0.25)
	out := make([]float64, len(contribs))
	for i, c := range contribs {
		if !c.Accepted || c.Quality < floor {
			continue
		}
		frac := minFrac
		if c.Quality > floor {
			frac = minFrac + (1-minFrac)*(c.Quality-floor)/(1-floor)
		}
		out[i] = t.Reward * frac
	}
	return out
}

// SimilarityFair enforces Axiom 3 directly: contributions to the same task
// are clustered by pairwise similarity (single-link over the
// ContributionSimilarity measure at Threshold), and every member of a
// cluster is paid the same amount — the cluster's mean base payment under
// the wrapped Base scheme. Rejected contributions whose cluster contains an
// accepted one are paid too (their work was demonstrably equivalent), which
// is precisely the wrongful-rejection remedy of §3.1.1.
type SimilarityFair struct {
	// Base computes the pre-equalisation payments (default QualityBased{}).
	Base Scheme
	// Threshold is the similarity above which two contributions are "the
	// same work" (default 0.8; a negative value means 0 — every pair
	// clusters together).
	Threshold float64
	// PairScores overrides the pairwise similarity kernel (default
	// similarity.ContributionPairScores, the parallel pair-scoring path the
	// Axiom 3 checker uses). Incremental auditors inject their memoized
	// scorer here so payment equalisation shares the cache. Results must be
	// indexed in similarity.PairAt order.
	PairScores func([]*model.Contribution) []float64
}

// Name implements Scheme.
func (s SimilarityFair) Name() string { return "similarity-fair" }

// Pay implements Scheme.
func (s SimilarityFair) Pay(t *model.Task, contribs []*model.Contribution) []float64 {
	base := s.Base
	if base == nil {
		base = QualityBased{}
	}
	thr := orDefault(s.Threshold, 0.8)
	pays := base.Pay(t, contribs)
	n := len(contribs)
	if n == 0 {
		return pays
	}

	// Single-link clustering via union-find over similar pairs. Pair
	// similarities come from the shared parallel kernel instead of a serial
	// nested loop — profile construction dominates on text-heavy tasks.
	scorer := s.PairScores
	if scorer == nil {
		scorer = similarity.ContributionPairScores
	}
	sims := scorer(contribs)

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for k, sim := range sims {
		if sim >= thr {
			i, j := similarity.PairAt(n, k)
			union(i, j)
		}
	}

	// Equalise each cluster at its mean payment.
	sums := make(map[int]float64)
	counts := make(map[int]int)
	for i := range contribs {
		r := find(i)
		sums[r] += pays[i]
		counts[r]++
	}
	out := make([]float64, n)
	for i := range contribs {
		r := find(i)
		out[i] = sums[r] / float64(counts[r])
	}
	return out
}

// Schemes returns one instance of every scheme, in report order.
func Schemes() []Scheme {
	return []Scheme{FixedReward{}, QualityBased{}, SimilarityFair{}}
}

// SchemeByName resolves a scheme from its Name; false for unknown names.
func SchemeByName(name string) (Scheme, bool) {
	for _, s := range Schemes() {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// Ledger records every payment and bonus, providing the per-worker income
// series the Gini/disparity metrics and Axiom 3 checker consume. Safe for
// concurrent use.
type Ledger struct {
	mu       sync.RWMutex
	payments []Payment
	byWorker map[model.WorkerID]float64
}

// Payment is one ledger entry.
type Payment struct {
	Worker       model.WorkerID
	Task         model.TaskID
	Contribution model.ContributionID
	Amount       float64
	// Bonus marks bonus payouts (vs base contribution payments).
	Bonus bool
	Time  int64
}

// ErrNegativePayment rejects negative ledger entries.
var ErrNegativePayment = errors.New("pay: negative payment")

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{byWorker: make(map[model.WorkerID]float64)}
}

// Record appends a payment.
func (l *Ledger) Record(p Payment) error {
	if p.Amount < 0 {
		return fmt.Errorf("%w: %v to %s", ErrNegativePayment, p.Amount, p.Worker)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.payments = append(l.payments, p)
	l.byWorker[p.Worker] += p.Amount
	return nil
}

// Total returns the sum of all payments. Summation runs in record order so
// the floating-point result is deterministic across runs.
func (l *Ledger) Total() float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var t float64
	for _, p := range l.payments {
		t += p.Amount
	}
	return t
}

// WorkerIncome returns the total paid to a worker.
func (l *Ledger) WorkerIncome(id model.WorkerID) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.byWorker[id]
}

// Incomes returns every worker's total income, sorted by worker id.
func (l *Ledger) Incomes() []float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	ids := make([]model.WorkerID, 0, len(l.byWorker))
	for id := range l.byWorker {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = l.byWorker[id]
	}
	return out
}

// Payments returns a copy of all entries in record order.
func (l *Ledger) Payments() []Payment {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Payment(nil), l.payments...)
}

// BonusContract models the §3.1.1 scenario where "a requester promises to
// provide a bonus when a worker completes a series of tasks but does not do
// so in the end". Completing Series tasks entitles the worker to Amount.
type BonusContract struct {
	Requester model.RequesterID
	Worker    model.WorkerID
	// Series is the number of task completions required.
	Series int
	// Amount is the promised bonus.
	Amount float64

	completed int
	paid      bool
	reneged   bool
}

// NewBonusContract returns a contract; series must be >= 1 and amount >= 0
// or it panics (contracts are constructed by test/simulation code with
// literal parameters).
func NewBonusContract(r model.RequesterID, w model.WorkerID, series int, amount float64) *BonusContract {
	if series < 1 || amount < 0 {
		panic("pay: invalid bonus contract")
	}
	return &BonusContract{Requester: r, Worker: w, Series: series, Amount: amount}
}

// Complete records one completed task in the series.
func (b *BonusContract) Complete() { b.completed++ }

// Due reports whether the worker has earned the bonus.
func (b *BonusContract) Due() bool { return b.completed >= b.Series }

// Settle pays the bonus into the ledger if due and not already handled.
// honour=false models the reneging requester: the contract is marked
// reneged and nothing is paid. It returns whether a payment was made.
func (b *BonusContract) Settle(l *Ledger, honour bool, now int64) (bool, error) {
	if !b.Due() || b.paid || b.reneged {
		return false, nil
	}
	if !honour {
		b.reneged = true
		return false, nil
	}
	if err := l.Record(Payment{Worker: b.Worker, Amount: b.Amount, Bonus: true, Time: now}); err != nil {
		return false, err
	}
	b.paid = true
	return true, nil
}

// Reneged reports whether the contract was dishonoured.
func (b *BonusContract) Reneged() bool { return b.reneged }

// Paid reports whether the bonus was paid.
func (b *BonusContract) Paid() bool { return b.paid }
