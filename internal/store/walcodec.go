package store

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/wal"
)

// Compact binary codec for WAL mutation records. The record's version
// travels as the WAL frame key, so the payload carries only the op, the
// entity kind, the routing epoch, the touched ids, and the mutated
// entity's post-image:
//
//	[op byte][entity byte][epoch uvarint]
//	[worker][requester][task][contribution]   (length-prefixed id strings)
//	[entity post-image]                       (schema per Entity kind)
//
// Ids that double as the entity's own fields (a worker change's Worker id,
// a task change's Requester, ...) are never encoded twice: decode rebuilds
// the entity from the change header plus the post-image body. The format
// is versioned implicitly by the manifest's format number; records are
// validated structurally (Dec latches on truncation) and by the WAL frame
// CRC underneath.

// encodeAttrs appends an attribute set: uvarint(n+1) with 0 meaning a nil
// map, then each field in sorted key order.
func encodeAttrs(b []byte, a model.Attributes) []byte {
	if a == nil {
		return wal.AppendUvarint(b, 0)
	}
	b = wal.AppendUvarint(b, uint64(len(a))+1)
	for _, k := range a.Keys() {
		v := a[k]
		b = wal.AppendString(b, k)
		b = append(b, byte(v.Kind))
		if v.Kind == model.AttrNum {
			b = wal.AppendFloat64(b, v.Num)
		} else {
			b = wal.AppendString(b, v.Str)
		}
	}
	return b
}

func decodeAttrs(d *wal.Dec) model.Attributes {
	n := d.Uvarint()
	if n == 0 {
		return nil
	}
	n--
	// Every encoded field costs at least two bytes (key length + kind), so
	// a count beyond the remaining payload is corruption: latch an error
	// instead of allocating from an unvalidated length.
	if n > uint64(len(d.Rest())) {
		d.Fail()
		return nil
	}
	out := make(model.Attributes, n)
	for i := uint64(0); i < n; i++ {
		k := d.String()
		kind := model.AttrKind(d.Byte())
		if kind == model.AttrNum {
			out[k] = model.Num(d.Float64())
		} else {
			out[k] = model.Str(d.String())
		}
	}
	return out
}

// encodeStrings appends a string slice with the same nil-preserving
// uvarint(n+1) scheme as encodeAttrs.
func encodeStrings(b []byte, ss []string) []byte {
	if ss == nil {
		return wal.AppendUvarint(b, 0)
	}
	b = wal.AppendUvarint(b, uint64(len(ss))+1)
	for _, s := range ss {
		b = wal.AppendString(b, s)
	}
	return b
}

func decodeStrings(d *wal.Dec) []string {
	n := d.Uvarint()
	if n == 0 {
		return nil
	}
	n--
	// Each string costs at least its one-byte length prefix; see
	// decodeAttrs.
	if n > uint64(len(d.Rest())) {
		d.Fail()
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.String()
	}
	return out
}

// encodeMutation appends the full WAL payload for m to b.
func encodeMutation(b []byte, m Mutation) []byte {
	c := m.Change
	b = append(b, byte(c.Op), byte(c.Entity))
	b = wal.AppendUvarint(b, c.Epoch)
	b = wal.AppendString(b, string(c.Worker))
	b = wal.AppendString(b, string(c.Requester))
	b = wal.AppendString(b, string(c.Task))
	b = wal.AppendString(b, string(c.Contribution))
	switch c.Entity {
	case EntityWorker:
		w := m.Worker
		b = encodeAttrs(b, w.Declared)
		b = encodeAttrs(b, w.Computed)
		b = wal.AppendBits(b, w.Skills)
	case EntityRequester:
		b = wal.AppendString(b, m.Requester.Name)
	case EntityTask:
		t := m.Task
		b = wal.AppendBits(b, t.Skills)
		b = wal.AppendFloat64(b, t.Reward)
		b = wal.AppendUvarint(b, uint64(t.Quota))
		b = wal.AppendUvarint(b, uint64(t.Published))
		b = wal.AppendString(b, t.Title)
	case EntityContribution:
		ct := m.Contribution
		b = wal.AppendString(b, ct.Text)
		b = encodeStrings(b, ct.Ranking)
		b = wal.AppendFloat64(b, ct.Quality)
		b = wal.AppendBool(b, ct.Accepted)
		b = wal.AppendFloat64(b, ct.Paid)
		b = wal.AppendVarint(b, ct.SubmittedAt)
	}
	return b
}

// decodeMutation rebuilds a Mutation from a WAL frame (key = version,
// payload = encodeMutation output).
func decodeMutation(version uint64, payload []byte) (Mutation, error) {
	d := wal.NewDec(payload)
	var m Mutation
	m.Change.Version = version
	m.Change.Op = Op(d.Byte())
	m.Change.Entity = Entity(d.Byte())
	m.Change.Epoch = d.Uvarint()
	m.Change.Worker = model.WorkerID(d.String())
	m.Change.Requester = model.RequesterID(d.String())
	m.Change.Task = model.TaskID(d.String())
	m.Change.Contribution = model.ContributionID(d.String())
	switch m.Change.Entity {
	case EntityWorker:
		m.Worker = &model.Worker{
			ID:       m.Change.Worker,
			Declared: decodeAttrs(d),
			Computed: decodeAttrs(d),
			Skills:   model.SkillVector(d.Bits()),
		}
	case EntityRequester:
		m.Requester = &model.Requester{ID: m.Change.Requester, Name: d.String()}
	case EntityTask:
		m.Task = &model.Task{
			ID:        m.Change.Task,
			Requester: m.Change.Requester,
			Skills:    model.SkillVector(d.Bits()),
			Reward:    d.Float64(),
			Quota:     int(d.Uvarint()),
			Published: int(d.Uvarint()),
			Title:     d.String(),
		}
	case EntityContribution:
		m.Contribution = &model.Contribution{
			ID:          m.Change.Contribution,
			Task:        m.Change.Task,
			Worker:      m.Change.Worker,
			Text:        d.String(),
			Ranking:     decodeStrings(d),
			Quality:     d.Float64(),
			Accepted:    d.Bool(),
			Paid:        d.Float64(),
			SubmittedAt: d.Varint(),
		}
	default:
		return Mutation{}, fmt.Errorf("store: wal record v%d: unknown entity %d", version, m.Change.Entity)
	}
	if !d.Done() {
		if err := d.Err(); err != nil {
			return Mutation{}, fmt.Errorf("store: wal record v%d: %w", version, err)
		}
		return Mutation{}, fmt.Errorf("store: wal record v%d: trailing bytes", version)
	}
	return m, nil
}
