package store_test

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"testing"

	"repro/internal/audit"
	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/wal"
)

// mutate runs goroutine g's deterministic workload against s: a requester,
// a batch of workers and tasks, contributions, and repeated updates. Each
// goroutine owns a disjoint id space and every entity's final value is a
// fixed function of its id, so the final store state is independent of how
// the goroutines interleave (only the version order varies).
func mutate(t *testing.T, s *store.Store, u *model.Universe, g, entities int) {
	t.Helper()
	rid := model.RequesterID(fmt.Sprintf("r%d", g))
	if err := s.PutRequester(&model.Requester{ID: rid, Name: fmt.Sprintf("req-%d", g)}); err != nil {
		t.Error(err)
		return
	}
	skills := []string{"go", "sql", "nlp"}
	for i := 0; i < entities; i++ {
		w := &model.Worker{
			ID:     model.WorkerID(fmt.Sprintf("w%d-%03d", g, i)),
			Skills: u.MustVector(skills[i%len(skills)]),
		}
		if err := s.PutWorker(w); err != nil {
			t.Error(err)
			return
		}
		task := &model.Task{
			ID:        model.TaskID(fmt.Sprintf("t%d-%03d", g, i)),
			Requester: rid,
			Skills:    u.MustVector(skills[i%len(skills)]),
			Reward:    float64(1 + i%7),
		}
		if err := s.PutTask(task); err != nil {
			t.Error(err)
			return
		}
		c := &model.Contribution{
			ID:          model.ContributionID(fmt.Sprintf("c%d-%03d", g, i)),
			Task:        task.ID,
			Worker:      w.ID,
			SubmittedAt: int64(i),
		}
		if err := s.PutContribution(c); err != nil {
			t.Error(err)
			return
		}
		if i%2 == 0 {
			w.Computed = model.Attributes{"rank": model.Num(float64(i % 5))}
			if err := s.UpdateWorker(w); err != nil {
				t.Error(err)
				return
			}
			c.Accepted = true
			c.Paid = task.Reward
			if err := s.UpdateContribution(c); err != nil {
				t.Error(err)
				return
			}
		}
	}
}

// walTrace decodes every mutation persisted under dir's WAL directories
// (across all route epochs) and returns them sorted by version.
func walTrace(t *testing.T, dir string) []store.Mutation {
	t.Helper()
	entries, err := os.ReadDir(store.WALDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	var muts []store.Mutation
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		r, err := wal.OpenDir(store.WALDir(dir) + "/" + e.Name())
		if err != nil {
			t.Fatal(err)
		}
		for {
			key, payload, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			m, err := store.DecodeWALMutation(key, payload)
			if err != nil {
				t.Fatal(err)
			}
			muts = append(muts, m)
		}
		r.Close()
	}
	sort.Slice(muts, func(i, j int) bool { return muts[i].Change.Version < muts[j].Change.Version })
	return muts
}

// stripEpochs zeroes the routing-metadata epoch on a change stream: two
// stores reaching the same state through different reshard histories carry
// different epochs on otherwise identical changes.
func stripEpochs(chs []store.Change) []store.Change {
	out := append([]store.Change(nil), chs...)
	for i := range out {
		out[i].Epoch = 0
	}
	return out
}

// TestReshardDeterminism is the acceptance test for online resharding: a
// durable store resharded 8 -> 16 -> 3 while concurrent mutators run must
// end byte-identical — entities, merged changelog, and audit verdicts — to
// a fresh store built at the final width from the same mutation trace, and
// to a recovery of its own directory across both reshard boundaries.
func TestReshardDeterminism(t *testing.T) {
	u := model.MustUniverse("go", "sql", "nlp")
	dir := t.TempDir()
	s, err := store.NewDurable(u, 8, dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 6
	const entities = 40
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			mutate(t, s, u, g, entities)
		}(g)
	}
	// A reader polling the merged changelog while shards split and merge
	// under it: the stream must stay gap-free the whole way.
	stopRead := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		var cursor uint64
		for {
			chs, ok := s.ChangesSince(cursor)
			if !ok {
				t.Errorf("changelog truncated during reshard (cursor %d)", cursor)
				return
			}
			for i, c := range chs {
				if c.Version != cursor+1+uint64(i) {
					t.Errorf("gap during reshard: change %d has version %d after cursor %d", i, c.Version, cursor)
					return
				}
			}
			if len(chs) > 0 {
				cursor = chs[len(chs)-1].Version
			}
			select {
			case <-stopRead:
				return
			default:
			}
		}
	}()

	close(start)
	if err := s.Reshard(16); err != nil {
		t.Fatal(err)
	}
	if got := s.ShardCount(); got != 16 {
		t.Fatalf("ShardCount after split = %d", got)
	}
	if err := s.Reshard(3); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(stopRead)
	rwg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if got := s.ShardCount(); got != 3 {
		t.Fatalf("ShardCount after merge = %d", got)
	}
	if got := s.Epoch(); got != 3 {
		t.Fatalf("Epoch = %d, want 3 (two reshards from epoch 1)", got)
	}
	log := s.EpochLog()
	if len(log) != 2 || log[0].Width != 16 || log[1].Width != 3 {
		t.Fatalf("EpochLog = %+v, want widths 16 then 3", log)
	}

	version := s.Version()
	// Per goroutine: one requester, three puts per entity, and two updates
	// for every even-indexed entity.
	wantMuts := uint64(writers * (1 + 3*entities + entities/2*2))
	if version != wantMuts {
		t.Fatalf("version %d, want %d mutations", version, wantMuts)
	}
	liveChanges, ok := s.ChangesSince(0)
	if !ok || uint64(len(liveChanges)) != version {
		t.Fatalf("merged changelog: %d records (ok=%v), want %d", len(liveChanges), ok, version)
	}
	liveSnap, err := s.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	cfg := fairness.DefaultConfig()
	emptyTrace := eventlog.New()
	liveReports := fairness.CheckAll(s, emptyTrace, cfg)

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh store at the final width, fed the identical mutation trace in
	// version order through the replication path.
	fresh := store.NewSharded(u, 3)
	trace := walTrace(t, dir)
	if uint64(len(trace)) != version {
		t.Fatalf("WAL trace has %d mutations, want %d", len(trace), version)
	}
	for _, m := range trace {
		if err := fresh.Apply(m); err != nil {
			t.Fatalf("apply v%d: %v", m.Change.Version, err)
		}
	}
	freshSnap, err := fresh.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveSnap, freshSnap) {
		t.Errorf("snapshot of resharded store differs from trace-built store (%d vs %d bytes)", len(liveSnap), len(freshSnap))
	}
	freshChanges, ok := fresh.ChangesSince(0)
	if !ok {
		t.Fatal("fresh store changelog truncated")
	}
	// Epochs are routing metadata and may legitimately differ between
	// reshard histories; everything else must match record for record.
	a, b := stripEpochs(liveChanges), stripEpochs(freshChanges)
	if len(a) != len(b) {
		t.Fatalf("changelogs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("change %d differs: live %+v, fresh %+v", i, a[i], b[i])
		}
	}
	if !audit.ViolationsEqual(liveReports, fairness.CheckAll(fresh, emptyTrace, cfg)) {
		t.Error("audit reports differ between resharded and trace-built store")
	}

	// Recovery must cross both reshard boundaries: reopening the directory
	// replays epoch-split WAL directories into the final layout.
	rec, man, err := store.Open(dir, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if man.Shards != 3 || rec.ShardCount() != 3 {
		t.Fatalf("recovered at width %d/%d, want 3", man.Shards, rec.ShardCount())
	}
	if rec.Epoch() != 3 {
		t.Fatalf("recovered epoch %d, want 3", rec.Epoch())
	}
	if rec.Version() != version {
		t.Fatalf("recovered version %d, want %d", rec.Version(), version)
	}
	recSnap, err := rec.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveSnap, recSnap) {
		t.Error("recovered snapshot differs from pre-close state")
	}
	if !audit.ViolationsEqual(liveReports, fairness.CheckAll(rec, emptyTrace, cfg)) {
		t.Error("audit reports differ after recovery")
	}
}

// TestReshardInMemory pins the volatile path: resharding a non-durable
// store moves every entity and changelog record without touching disk.
func TestReshardInMemory(t *testing.T) {
	u := model.MustUniverse("go", "sql")
	s := store.NewSharded(u, 4)
	for i := 0; i < 50; i++ {
		w := &model.Worker{ID: model.WorkerID(fmt.Sprintf("w%03d", i)), Skills: u.MustVector("go")}
		if err := s.PutWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	before, ok := s.ChangesSince(0)
	if !ok {
		t.Fatal("truncated before reshard")
	}
	if err := s.Reshard(7); err != nil {
		t.Fatal(err)
	}
	if s.ShardCount() != 7 || s.Epoch() != 2 {
		t.Fatalf("width %d epoch %d, want 7/2", s.ShardCount(), s.Epoch())
	}
	after, ok := s.ChangesSince(0)
	if !ok {
		t.Fatal("truncated after reshard")
	}
	a, b := stripEpochs(before), stripEpochs(after)
	if len(a) != len(b) {
		t.Fatalf("changelog length changed across reshard: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("change %d moved: %+v vs %+v", i, a[i], b[i])
		}
	}
	if got := len(s.Workers()); got != 50 {
		t.Fatalf("workers after reshard = %d", got)
	}
	// Same width is a no-op: the epoch must not advance.
	if err := s.Reshard(7); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 2 {
		t.Fatalf("no-op reshard advanced epoch to %d", s.Epoch())
	}
}

// TestReshardRetiredShardReads pins reader behavior on retired layouts:
// per-shard cursors against the old width report truncation rather than
// stale or panicking reads.
func TestReshardRetiredShardReads(t *testing.T) {
	u := model.MustUniverse("go")
	s := store.NewSharded(u, 8)
	for i := 0; i < 20; i++ {
		w := &model.Worker{ID: model.WorkerID(fmt.Sprintf("w%03d", i)), Skills: u.MustVector("go")}
		if err := s.PutWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reshard(2); err != nil {
		t.Fatal(err)
	}
	// Old shard indexes 2..7 no longer exist: a cursor held from the old
	// layout must see a truncation signal, not a panic.
	if chs, ok := s.ShardChangesSince(5, 0); ok || chs != nil {
		t.Fatalf("ShardChangesSince(5) on width 2 = (%v, %v), want (nil, false)", chs, ok)
	}
	if v := s.ShardVersion(5); v != 0 {
		t.Fatalf("ShardVersion(5) on width 2 = %d, want 0", v)
	}
	for i := 0; i < 2; i++ {
		if _, ok := s.ShardChangesSince(i, 0); !ok {
			t.Fatalf("live shard %d reports truncation", i)
		}
	}
}
