package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/model"
	"repro/internal/wal"
)

// Durable store layout, rooted at one directory:
//
//	dir/
//	  MANIFEST.json            checkpoint manifest (atomic rename)
//	  snapshot-<version>.json  model.Snapshot at the last checkpoint
//	  wal/shard-0000/...       per-shard segmented changelog WAL (epoch 1)
//	  wal/e0002-shard-0000/... per-shard WAL of later route epochs
//	  events/...               the event log's segments (internal/eventlog)
//
// NewDurable creates the layout and writes a version-0 manifest so Open
// always finds the universe. Checkpoint freezes the store (all shard read
// locks — mutators block for the duration), writes the snapshot plus a new
// manifest, and then truncates WAL segments below the per-shard low-water
// version: the minimum of the shard watermark and the auditor's changelog
// cursor, so a warm-started auditor still finds every record it needs.
// Open rebuilds from the snapshot and replays the WAL tail in globally
// merged version order, preserving original version numbers, stopping at
// the first version gap (a torn record in any shard invalidates every
// higher version) and physically truncating the discarded tail so appends
// continue a dense log. A Reshard (reshard.go) starts writing under a new
// epoch's directories and records the width change in the manifest's epoch
// log, so recovery merges streams across the reshard boundary; directories
// of earlier epochs persist until the next checkpoint covers their records.

// manifestFormat versions the on-disk layout. Format 2 added the route
// epoch and the epoch-change log.
const manifestFormat = 2

// EpochChange is one entry of the manifest's epoch log: a completed width
// change and the sequencer value it happened at. Every version at or below
// Version was routed by an earlier epoch; later versions may carry Epoch.
type EpochChange struct {
	Epoch   uint64 `json:"epoch"`
	Width   int    `json:"width"`
	Version uint64 `json:"version"`
}

// Manifest is the checkpoint metadata of a durable store.
type Manifest struct {
	// Format is the layout version (manifestFormat).
	Format int `json:"format"`
	// Skills reproduces the universe so Open needs no out-of-band schema.
	Skills []string `json:"skills"`
	// Shards is the hash-partition count the current epoch's WAL
	// directories correspond to.
	Shards int `json:"shards"`
	// Epoch is the route-table generation the store was last running under
	// (1 for a store that never resharded).
	Epoch uint64 `json:"epoch,omitempty"`
	// Epochs is the log of completed width changes, oldest first.
	Epochs []EpochChange `json:"epochs,omitempty"`
	// Version is the global mutation sequencer at checkpoint; the snapshot
	// reflects exactly the mutations with versions 1..Version.
	Version uint64 `json:"version"`
	// Watermarks are the per-shard highest recorded versions at checkpoint.
	Watermarks []uint64 `json:"watermarks,omitempty"`
	// LowWater are the per-shard versions below which WAL segments may have
	// been truncated; a changelog cursor at or above its shard's low-water
	// can be warm-started from the recovered rings.
	LowWater []uint64 `json:"low_water,omitempty"`
	// Snapshot names the snapshot file this manifest pairs with (empty for
	// the version-0 manifest NewDurable writes). Snapshots are written
	// under version-stamped names and the manifest renamed over last, so a
	// crash between the two steps leaves the old manifest pointing at the
	// old snapshot — never a mismatched pair.
	Snapshot string `json:"snapshot,omitempty"`
	// Events is the event-log length at checkpoint (informational; the
	// event WAL is never truncated because cold audits replay it whole).
	Events int `json:"events,omitempty"`
	// Audit is the incremental audit engine's serialised state (opaque to
	// the store; internal/audit.State via the crowdfair/sim layers), valid
	// against the changelog cursors that fed LowWater.
	Audit json.RawMessage `json:"audit,omitempty"`
}

func manifestPath(dir string) string { return filepath.Join(dir, "MANIFEST.json") }

func snapshotName(version uint64) string {
	return fmt.Sprintf("snapshot-%016d.json", version)
}

// WALDir returns the changelog WAL root under a durable store directory.
func WALDir(dir string) string { return filepath.Join(dir, "wal") }

// EventsDir returns the conventional event-log segment directory under a
// durable platform directory (owned by internal/eventlog, placed here so
// every layer agrees on the layout).
func EventsDir(dir string) string { return filepath.Join(dir, "events") }

// walShardDir names one shard's WAL directory. Epoch 1 keeps the bare
// shard-%04d layout (what every pre-reshard store wrote); later epochs are
// qualified so an 8→16 split cannot collide with the old epoch's still-live
// directories of the same shard index.
func walShardDir(dir string, epoch uint64, i int) string {
	if epoch <= 1 {
		return filepath.Join(WALDir(dir), fmt.Sprintf("shard-%04d", i))
	}
	return filepath.Join(WALDir(dir), fmt.Sprintf("e%04d-shard-%04d", epoch, i))
}

// writeFileAtomic writes data to path via a temp file, fsync, and rename,
// so readers never observe a half-written manifest or snapshot.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Exists reports whether dir already holds a durable store (a manifest).
func Exists(dir string) bool {
	_, err := os.Stat(manifestPath(dir))
	return err == nil
}

// ReadManifest loads the manifest of a durable store directory.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: parse manifest: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("store: manifest format %d, want %d", m.Format, manifestFormat)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("store: manifest shard count %d", m.Shards)
	}
	return &m, nil
}

func writeManifest(dir string, m *Manifest) error {
	// Compact encoding: the embedded audit blob can run to megabytes, and
	// indenting it roughly doubles the write for no reader benefit.
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	if err := writeFileAtomic(manifestPath(dir), data); err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	return nil
}

// NewDurable returns an empty store whose shards tee every mutation into a
// segmented write-ahead log under dir. The directory must not already hold
// a durable store (use Open to recover one).
func NewDurable(u *model.Universe, shards int, dir string, opts wal.Options) (*Store, error) {
	if _, err := os.Stat(manifestPath(dir)); err == nil {
		return nil, fmt.Errorf("store: %s already holds a durable store (use Open)", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := NewSharded(u, shards)
	s.dir, s.walOpts = dir, opts
	rt := s.table()
	for i, sh := range rt.shards {
		sink, err := newWALSink(walShardDir(dir, rt.epoch, i), opts)
		if err != nil {
			return nil, err
		}
		sh.wal = sink
	}
	m := &Manifest{Format: manifestFormat, Skills: u.Names(), Shards: rt.width(), Epoch: rt.epoch}
	if err := writeManifest(dir, m); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the persistence root ("" for a volatile store).
func (s *Store) Dir() string { return s.dir }

// Durable reports whether mutations are teed into a write-ahead log.
func (s *Store) Durable() bool { return s.dir != "" }

// EpochLog returns the completed width changes of this store's lifetime,
// oldest first (nil for a store that never resharded).
func (s *Store) EpochLog() []EpochChange {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return append([]EpochChange(nil), s.epochs...)
}

// SyncWAL flushes every shard's durable sink to stable storage.
func (s *Store) SyncWAL() error {
	_, _, shs := s.view()
	for _, sh := range shs {
		sh.mu.Lock()
		var err error
		if sh.wal != nil {
			err = sh.wal.Sync()
		}
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// WALStats aggregates the append/batch/fsync counters of every live
// shard sink — zero for volatile stores. Appends/Syncs is the realised
// group-commit amortisation.
func (s *Store) WALStats() wal.WriterStats {
	var agg wal.WriterStats
	_, _, shs := s.view()
	for _, sh := range shs {
		sh.mu.RLock()
		if ws, ok := sh.wal.(*walSink); ok && ws != nil {
			st := ws.Stats()
			agg.Appends += st.Appends
			agg.Batches += st.Batches
			agg.Syncs += st.Syncs
		}
		sh.mu.RUnlock()
	}
	return agg
}

// Close closes every shard's durable sink and detaches it. The store
// stays fully usable in memory afterwards — reads and even mutations
// succeed — but durability ends: post-Close mutations are never written
// to the WAL and will be absent after the next Open.
func (s *Store) Close() error {
	// ckptMu excludes a concurrent Reshard, which creates and rewires
	// sinks; without it a mid-migration Close could miss a brand-new one.
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	var firstErr error
	for _, sh := range s.table().shards {
		sh.mu.Lock()
		if sh.wal != nil {
			if err := sh.wal.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.wal = nil
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// CheckpointOptions carries the cross-subsystem state a checkpoint pins
// alongside the store snapshot.
type CheckpointOptions struct {
	// Audit is the incremental auditor's serialised state (opaque blob).
	Audit json.RawMessage
	// AuditCursors are the per-shard changelog cursors the audit state was
	// saved at; they lower the per-shard low-water so warm-start replay
	// still finds every record between cursor and watermark. Ignored unless
	// one cursor per shard is supplied.
	AuditCursors []uint64
	// Events is the current event-log length, recorded for observability.
	Events int
}

// Checkpoint freezes the store, writes snapshot + manifest under the
// store's directory, and truncates WAL segments that both the snapshot and
// the audit cursors have passed. Mutators block for the duration (they
// need shard write locks); readers proceed. Returns the new manifest.
func (s *Store) Checkpoint(o CheckpointOptions) (*Manifest, error) {
	if s.dir == "" {
		return nil, fmt.Errorf("store: checkpoint of a volatile store")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	// ckptMu excludes Reshard for its whole migration, so no successor
	// table exists here: the current table's shards are the entire store.
	rt := s.table()
	shs := rt.shards
	for _, sh := range shs {
		sh.mu.RLock()
	}
	defer func() {
		for _, sh := range shs {
			sh.mu.RUnlock()
		}
	}()

	m := &Manifest{
		Format:     manifestFormat,
		Skills:     s.universe.Names(),
		Shards:     len(shs),
		Epoch:      rt.epoch,
		Epochs:     append([]EpochChange(nil), s.epochs...),
		Version:    s.version.Load(),
		Watermarks: make([]uint64, len(shs)),
		LowWater:   make([]uint64, len(shs)),
		Snapshot:   snapshotName(s.version.Load()),
		Events:     o.Events,
		Audit:      o.Audit,
	}
	for i, sh := range shs {
		m.Watermarks[i] = sh.applied
		m.LowWater[i] = sh.applied
		if len(o.AuditCursors) == len(shs) && o.AuditCursors[i] < m.LowWater[i] {
			m.LowWater[i] = o.AuditCursors[i]
		}
	}

	snap := s.snapshot(shs)
	data, err := snap.Encode()
	if err != nil {
		return nil, fmt.Errorf("store: encode snapshot: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(s.dir, m.Snapshot), data); err != nil {
		return nil, fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := writeManifest(s.dir, m); err != nil {
		return nil, err
	}
	// The manifest now points at the new snapshot; older ones are orphans.
	if files, err := filepath.Glob(filepath.Join(s.dir, "snapshot-*.json")); err == nil {
		for _, f := range files {
			if filepath.Base(f) != m.Snapshot {
				if err := os.Remove(f); err != nil {
					return nil, fmt.Errorf("store: drop stale snapshot: %w", err)
				}
			}
		}
	}

	// The manifest is durable: segments at or below each shard's low-water
	// are dead. Rotate first so the active segment becomes truncatable too.
	// All mutators are blocked on the shard locks, so touching the sinks
	// here is race-free.
	live := make(map[string]bool, len(shs))
	for i, sh := range shs {
		live[filepath.Base(walShardDir(s.dir, rt.epoch, i))] = true
		ws, ok := sh.wal.(*walSink)
		if !ok || ws == nil {
			continue
		}
		if err := ws.w.Sync(); err != nil {
			return nil, err
		}
		if err := ws.w.Rotate(); err != nil {
			return nil, err
		}
		if err := ws.w.TruncateBefore(m.LowWater[i]); err != nil {
			return nil, err
		}
	}
	// Directories of retired epochs (and of widths beyond the current one)
	// hold only records the snapshot now covers: remove everything that is
	// not a live sink's directory.
	if dirs, err := os.ReadDir(WALDir(s.dir)); err == nil {
		for _, e := range dirs {
			if e.IsDir() && !live[e.Name()] {
				if err := os.RemoveAll(filepath.Join(WALDir(s.dir), e.Name())); err != nil {
					return nil, fmt.Errorf("store: drop retired shard wal: %w", err)
				}
			}
		}
	}
	return m, nil
}

// replayStream is one shard directory's decoded mutation stream during
// recovery, consumed in version order by the k-way merge.
type replayStream struct {
	r       *wal.Reader
	head    Mutation
	hasHead bool
}

func (rs *replayStream) advance() error {
	key, payload, err := rs.r.Next()
	if err == io.EOF {
		rs.hasHead = false
		return nil
	}
	if err != nil {
		return err
	}
	m, err := decodeMutation(key, payload)
	if err != nil {
		// A CRC-valid but undecodable record is a hole just like a torn
		// frame: stop this stream at the longest valid prefix.
		rs.hasHead = false
		return nil
	}
	rs.head = m
	rs.hasHead = true
	return nil
}

// primaryID returns the mutated entity's own id, the shard-routing key.
func (m *Mutation) primaryID() string { return changePrimaryID(m.Change) }

// setEpoch re-stamps a not-yet-published store (recovery only: no
// concurrent access) with the given route epoch.
func (s *Store) setEpoch(epoch uint64) {
	rt := s.route.Load()
	for _, sh := range rt.shards {
		sh.epoch = epoch
	}
	s.route.Store(newRouteTable(epoch, rt.shards))
}

// openSnapshot rebuilds the checkpointed entity state (or an empty store)
// from a manifest at the given shard width.
func openSnapshot(dir string, man *Manifest, shards int) (*Store, error) {
	if man.Snapshot != "" {
		data, err := os.ReadFile(filepath.Join(dir, man.Snapshot))
		if err != nil {
			return nil, fmt.Errorf("store: read snapshot: %w", err)
		}
		snap, err := model.DecodeSnapshot(data)
		if err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
		s, err := FromSnapshotSharded(snap, shards)
		if err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
		return s, nil
	}
	u, err := model.NewUniverse(man.Skills...)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	return NewSharded(u, shards), nil
}

// Open recovers a durable store from dir: the checkpoint snapshot is
// rebuilt through the bulk insert paths, then the WAL tail — every epoch's
// shard directories — is replayed in globally merged version order with
// original version numbers, re-seeding the in-memory changelog rings (so
// warm-started audit cursors keep working) and stopping at the first
// version gap; the longest globally valid prefix survives a torn or
// corrupted final record. shards <= 0 reopens at the manifest's width; a
// different width replays correctly but starts a new route epoch and
// invalidates saved audit cursors (warm starts fall back to a full scan).
// The returned store has live WAL sinks attached and continues appending
// where the recovered log ends.
func Open(dir string, shards int, opts wal.Options) (*Store, *Manifest, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	if shards <= 0 {
		shards = man.Shards
	}
	sameLayout := shards == man.Shards &&
		len(man.Watermarks) == shards && len(man.LowWater) == shards

	epoch := man.Epoch
	if epoch == 0 {
		epoch = 1
	}
	s, err := openSnapshot(dir, man, shards)
	if err != nil {
		return nil, nil, err
	}
	s.dir, s.walOpts = dir, opts
	s.epochs = append([]EpochChange(nil), man.Epochs...)
	if shards != man.Shards {
		// An explicit width change at reopen is a reshard performed at
		// rest: it starts a fresh epoch so its WAL directories cannot
		// collide with the manifest epoch's. The epoch-log entry is
		// persisted by the next checkpoint or online Reshard.
		epoch++
		s.epochs = append(s.epochs, EpochChange{Epoch: epoch, Width: shards, Version: man.Version})
	}
	s.setEpoch(epoch)

	// Reset the rebuild bookkeeping to the manifest's recovery baseline:
	// the bulk loads above consumed sequencer values and seeded rings with
	// rebuild-local versions that have nothing to do with the original
	// numbering the WAL tail carries.
	for i, sh := range s.table().shards {
		sh.ring = changeRing{cap: sh.ring.cap}
		if sameLayout {
			sh.applied = man.Watermarks[i]
			sh.ring.droppedMax = man.LowWater[i]
		} else {
			sh.applied = man.Version
			sh.ring.droppedMax = man.Version
		}
	}
	s.version.Store(man.Version)

	lastApplied, preSnapshotTear, err := s.replayWAL(dir, man)
	if err != nil {
		return nil, nil, err
	}
	if preSnapshotTear {
		// Corruption below the snapshot version: entity state is intact
		// (the snapshot covers it) but the rings cannot promise continuity
		// for saved cursors — force stale readers onto the full-scan path.
		for _, sh := range s.table().shards {
			if sh.ring.droppedMax < man.Version {
				sh.ring.droppedMax = man.Version
			}
		}
	}

	// Drop any records past the recovered prefix so reopened writers
	// continue a dense log, then attach live sinks.
	if dirs, err := os.ReadDir(WALDir(dir)); err == nil {
		for _, e := range dirs {
			if err := wal.TruncateAfter(filepath.Join(WALDir(dir), e.Name()), lastApplied); err != nil {
				return nil, nil, err
			}
		}
	}
	for i, sh := range s.table().shards {
		sink, err := newWALSink(walShardDir(dir, epoch, i), opts)
		if err != nil {
			return nil, nil, err
		}
		sh.wal = sink
	}
	return s, man, nil
}

// Bootstrap rebuilds the checkpointed state of a durable store directory
// without attaching WAL sinks, replaying the tail, or truncating anything
// on disk — the read-only foundation a replica (internal/replica) builds
// on. The returned store is volatile (Durable() == false) and positioned
// exactly at the manifest: Version() == manifest version, every ring empty
// with droppedMax at the manifest version, so changelog consumers start
// from the WAL tail the replica will feed through Apply.
func Bootstrap(dir string) (*Store, *Manifest, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	s, err := openSnapshot(dir, man, man.Shards)
	if err != nil {
		return nil, nil, err
	}
	epoch := man.Epoch
	if epoch == 0 {
		epoch = 1
	}
	s.setEpoch(epoch)
	s.epochs = append([]EpochChange(nil), man.Epochs...)
	for i, sh := range s.table().shards {
		sh.ring = changeRing{cap: sh.ring.cap}
		sh.ring.droppedMax = man.Version
		if len(man.Watermarks) == len(s.table().shards) {
			sh.applied = man.Watermarks[i]
		} else {
			sh.applied = man.Version
		}
	}
	s.version.Store(man.Version)
	return s, man, nil
}

// DecodeWALMutation decodes one changelog WAL frame (key = version,
// payload as written by the store's sinks) — the ingestion side of WAL
// shipping.
func DecodeWALMutation(key uint64, payload []byte) (Mutation, error) {
	return decodeMutation(key, payload)
}

// Apply applies a decoded WAL mutation at its original version and epoch,
// routed through the live table — the replication path: a follower tailing
// another process's log feeds records here in global version order. The
// entity is validated like any live mutation; like the live mutators, the
// durability wait of a durable replica happens after the shard lock is
// released.
func (s *Store) Apply(m Mutation) error {
	sh := s.lockOwner(m.primaryID())
	return commitOutside(sh, func() (wal.Commit, error) {
		return s.applyMutation(sh, m)
	})
}

// replayWAL merges every shard directory's stream by version and applies
// the tail. Returns the highest version surviving recovery and whether a
// stream tore below the snapshot version.
func (s *Store) replayWAL(dir string, man *Manifest) (lastApplied uint64, preSnapshotTear bool, err error) {
	lastApplied = man.Version
	entries, err := os.ReadDir(WALDir(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return lastApplied, false, nil
		}
		return 0, false, fmt.Errorf("store: open wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	streams := make([]*replayStream, 0, len(names))
	defer func() {
		for _, rs := range streams {
			rs.r.Close()
		}
	}()
	for _, name := range names {
		r, err := wal.OpenDir(filepath.Join(WALDir(dir), name))
		if err != nil {
			return 0, false, err
		}
		rs := &replayStream{r: r}
		if err := rs.advance(); err != nil {
			return 0, false, err
		}
		streams = append(streams, rs)
	}

	for {
		best := -1
		for i, rs := range streams {
			if !rs.hasHead {
				continue
			}
			if best < 0 || rs.head.Change.Version < streams[best].head.Change.Version {
				best = i
			}
		}
		if best < 0 {
			break
		}
		m := streams[best].head
		v := m.Change.Version
		if v > man.Version {
			if v != lastApplied+1 {
				// Version gap: a record was lost (torn tail in some
				// shard). Everything from the gap on is discarded — the
				// longest globally dense prefix wins.
				break
			}
			if err := s.applyReplay(m); err != nil {
				return 0, false, err
			}
			lastApplied = v
		} else {
			// The snapshot already holds this mutation's effect; re-seed
			// the owning shard's ring so warm-started changelog cursors
			// between low-water and watermark still read cleanly.
			sh := s.table().shardFor(m.primaryID())
			sh.ring.record(m.Change)
			if v > sh.applied {
				sh.applied = v
			}
		}
		if err := streams[best].advance(); err != nil {
			return 0, false, err
		}
	}
	for _, rs := range streams {
		if rs.r.Damaged() && rs.head.Change.Version <= man.Version {
			preSnapshotTear = true
		}
	}
	return lastApplied, preSnapshotTear, nil
}

// applyReplay applies one post-snapshot WAL mutation with its original
// version. The store is not yet published, so no locks are needed; the
// locked helpers only assume the lock is held, they do not acquire it.
// Sinks are not attached during replay, so the ticket is always zero.
func (s *Store) applyReplay(m Mutation) error {
	_, err := s.applyMutation(s.table().shardFor(m.primaryID()), m)
	return err
}

// applyMutation applies one decoded mutation under the held (or not yet
// shared) owning shard, preserving its original version and epoch, and
// returns the durability ticket of the re-recorded mutation.
func (s *Store) applyMutation(sh *shard, m Mutation) (wal.Commit, error) {
	v, e := m.Change.Version, m.Change.Epoch
	switch {
	case m.Change.Entity == EntityWorker && m.Change.Op == OpInsert:
		if err := m.Worker.Validate(s.universe); err != nil {
			return wal.Commit{}, fmt.Errorf("store: replay v%d: %w", v, err)
		}
		return s.putWorkerLocked(sh, m.Worker, v, e)
	case m.Change.Entity == EntityWorker && m.Change.Op == OpUpdate:
		if err := m.Worker.Validate(s.universe); err != nil {
			return wal.Commit{}, fmt.Errorf("store: replay v%d: %w", v, err)
		}
		return s.updateWorkerLocked(sh, m.Worker, v, e)
	case m.Change.Entity == EntityRequester:
		if err := m.Requester.Validate(); err != nil {
			return wal.Commit{}, fmt.Errorf("store: replay v%d: %w", v, err)
		}
		return s.putRequesterLocked(sh, m.Requester, v, e)
	case m.Change.Entity == EntityTask:
		if err := m.Task.Validate(s.universe); err != nil {
			return wal.Commit{}, fmt.Errorf("store: replay v%d: %w", v, err)
		}
		return s.putTaskLocked(sh, m.Task, v, e)
	case m.Change.Entity == EntityContribution && m.Change.Op == OpInsert:
		if err := m.Contribution.Validate(); err != nil {
			return wal.Commit{}, fmt.Errorf("store: replay v%d: %w", v, err)
		}
		return s.putContributionLocked(sh, m.Contribution, v, e)
	case m.Change.Entity == EntityContribution && m.Change.Op == OpUpdate:
		if err := m.Contribution.Validate(); err != nil {
			return wal.Commit{}, fmt.Errorf("store: replay v%d: %w", v, err)
		}
		return s.updateContributionLocked(sh, m.Contribution, v, e)
	}
	return wal.Commit{}, fmt.Errorf("store: replay v%d: unknown mutation kind", v)
}
