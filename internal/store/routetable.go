package store

import "sync/atomic"

// routeTable is the immutable, epoch-stamped routing state of the store:
// which shard owns which key. Routing used to be two fields inlined in
// Store (a mask and a shard slice); lifting them into one immutable value
// swapped through an atomic pointer is what makes live resharding possible —
// a Reshard builds the next epoch's table off to the side, migrates shard by
// shard, and publishes the new epoch with a single pointer store. A table is
// never mutated after publication; every mutation routed through it stamps
// its changelog record (and WAL frame) with the table's epoch.
//
// Epochs start at 1 and increase by exactly one per reshard. During a
// migration two adjacent tables are live at once: the current one
// (Store.route) and its successor (Store.next). A shard whose contents have
// been handed off to the successor layout is marked retired; routing falls
// through retired shards to the successor table (see lockOwner), and once
// every shard of the old epoch is retired the successor is promoted to
// Store.route and Store.next is cleared.
type routeTable struct {
	epoch  uint64
	shards []*shard

	// mask enables the power-of-two routing fast path: when the shard
	// count is a power of two, h % n == h & (n-1), so routing skips the
	// integer division. masked distinguishes a real mask of 0 (one shard)
	// from "not a power of two".
	mask   uint64
	masked bool
}

func newRouteTable(epoch uint64, shards []*shard) *routeTable {
	rt := &routeTable{epoch: epoch, shards: shards}
	if n := len(shards); n&(n-1) == 0 {
		rt.mask, rt.masked = uint64(n-1), true
	}
	return rt
}

// width returns the table's shard count.
func (rt *routeTable) width() int { return len(rt.shards) }

// index routes an id to its owning shard under this table.
func (rt *routeTable) index(id string) int {
	h := fnv64a(id)
	if rt.masked {
		return int(h & rt.mask)
	}
	return int(h % uint64(len(rt.shards)))
}

// shardFor returns the shard owning id under this table.
func (rt *routeTable) shardFor(id string) *shard { return rt.shards[rt.index(id)] }

// successor reports whether nt is the table that directly follows rt — the
// only table retired shards may fall through to. A non-adjacent pair means
// the loads that produced it straddled a completed reshard and must be
// retried against fresh pointers.
func (rt *routeTable) successor(nt *routeTable) bool {
	return nt != nil && nt.epoch == rt.epoch+1
}

// table returns the current routing table.
func (s *Store) table() *routeTable { return s.route.Load() }

// Epoch returns the current route-table epoch. It starts at 1 and advances
// by one on every completed Reshard (and when Open reopens a durable store
// at a width different from its manifest's).
func (s *Store) Epoch() uint64 { return s.table().epoch }

// lockOwner write-locks and returns the shard owning id, following the
// migration protocol: route through the current table; if the shard there
// has been retired (its contents handed off to the next epoch's layout),
// fall through to the successor table; if the tables moved underneath us —
// a reshard completed between loads — retry against the fresh pointers.
// At most one shard lock is ever held while waiting, which keeps writers
// out of every deadlock cycle.
func (s *Store) lockOwner(id string) *shard {
	for {
		rt := s.route.Load()
		sh := rt.shardFor(id)
		sh.mu.Lock()
		if !sh.retired {
			return sh
		}
		sh.mu.Unlock()
		if nt := s.next.Load(); rt.successor(nt) {
			sh = nt.shardFor(id)
			sh.mu.Lock()
			if !sh.retired {
				return sh
			}
			sh.mu.Unlock()
		}
	}
}

// rlockOwner read-locks and returns the shard owning id (see lockOwner).
func (s *Store) rlockOwner(id string) *shard {
	for {
		rt := s.route.Load()
		sh := rt.shardFor(id)
		sh.mu.RLock()
		if !sh.retired {
			return sh
		}
		sh.mu.RUnlock()
		if nt := s.next.Load(); rt.successor(nt) {
			sh = nt.shardFor(id)
			sh.mu.RLock()
			if !sh.retired {
				return sh
			}
			sh.mu.RUnlock()
		}
	}
}

// view returns a consistent shard set covering the whole key space: the
// current table's shards plus, while a reshard is migrating, the successor
// table's. The double-check against both atomic pointers guarantees the
// returned slice spans every live entity — a reshard that completed between
// the loads is detected and the read retried.
func (s *Store) view() (rt, nt *routeTable, shs []*shard) {
	for {
		rt = s.route.Load()
		nt = s.next.Load()
		if rt.successor(nt) {
			shs = make([]*shard, 0, len(rt.shards)+len(nt.shards))
			shs = append(append(shs, rt.shards...), nt.shards...)
			return rt, nt, shs
		}
		if nt == nil && s.route.Load() == rt {
			return rt, nil, rt.shards
		}
		// The pointers straddled a reshard boundary; reload both.
	}
}

// rlockView acquires read locks over a validated whole-key-space view and
// returns the locked shards plus the release function. Locks are taken in
// table order (current epoch's shards first, then the successor's), the
// same order handoffs acquire theirs, so the view is deadlock-free; after
// acquisition the route pointers are re-checked and the view retried if a
// reshard started or finished in between — a successful return therefore
// pins a set of shards that no concurrent handoff can move entities out of
// or into unseen.
func (s *Store) rlockView() ([]*shard, func()) {
	for {
		rt, nt, shs := s.view()
		for _, sh := range shs {
			sh.mu.RLock()
		}
		if s.route.Load() == rt && s.next.Load() == nt {
			return shs, func() {
				for _, sh := range shs {
					sh.mu.RUnlock()
				}
			}
		}
		for _, sh := range shs {
			sh.mu.RUnlock()
		}
	}
}

// routePtr is a typed alias kept close to the fields it documents; see
// Store.route / Store.next in store.go.
type routePtr = atomic.Pointer[routeTable]
