package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/wal"
)

// groupCommitWorkload drives appenders concurrent goroutines, each
// inserting opsPer workers with disjoint IDs. Content is a pure function of
// (goroutine, step), so any interleaving commits the same record set — only
// version assignment varies with scheduling.
func groupCommitWorkload(t *testing.T, s *Store, u *model.Universe, appenders, opsPer int) {
	t.Helper()
	errs := make([]error, appenders)
	var wg sync.WaitGroup
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				w := &model.Worker{
					ID:       model.WorkerID(fmt.Sprintf("gw%02d-%03d", g, i)),
					Declared: model.Attributes{"country": model.Str("jp")},
					Computed: model.Attributes{"acceptance_ratio": model.Num(float64((g+i)%10) / 10)},
					Skills:   u.MustVector(u.Name((g + i) % u.Size())),
				}
				if err := s.PutWorker(w); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("appender %d: %v", g, err)
		}
	}
}

// walMutationsByVersion decodes every surviving WAL record under dir and
// returns the mutations sorted by version — the canonical commit order a
// recovery replays.
func walMutationsByVersion(t *testing.T, dir string) []Mutation {
	t.Helper()
	var out []Mutation
	entries, err := os.ReadDir(WALDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		r, err := wal.OpenDir(filepath.Join(WALDir(dir), e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for {
			key, payload, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			m, err := decodeMutation(key, append([]byte(nil), payload...))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, m)
		}
		r.Close()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Change.Version < out[j].Change.Version })
	return out
}

// checkGroupRecovery opens a (possibly damaged) durable store written under
// a group-commit policy and asserts it recovered exactly the longest
// globally dense version prefix: version, merged-changelog density, and
// entity state equal to replaying that prefix of the canonical records.
func checkGroupRecovery(t *testing.T, trial string, u *model.Universe, recs []Mutation, opts wal.Options, label string) {
	t.Helper()
	surviving := survivingVersions(t, trial)
	wantVer := uint64(0)
	for surviving[wantVer+1] {
		wantVer++
	}
	got, _, err := Open(trial, 0, opts)
	if err != nil {
		t.Fatalf("%s: open: %v", label, err)
	}
	defer got.Close()
	if got.Version() != wantVer {
		t.Fatalf("%s: recovered version %d, want longest dense prefix %d", label, got.Version(), wantVer)
	}
	changes, ok := got.ChangesSince(0)
	if !ok {
		t.Fatalf("%s: merged changelog truncated", label)
	}
	if uint64(len(changes)) != wantVer {
		t.Fatalf("%s: merged changelog has %d records, want %d", label, len(changes), wantVer)
	}
	for i, c := range changes {
		if c.Version != uint64(i+1) {
			t.Fatalf("%s: gap at position %d (version %d)", label, i, c.Version)
		}
	}
	want := NewSharded(u, 2)
	for _, m := range recs {
		if m.Change.Version > wantVer {
			break
		}
		if err := want.applyReplay(m); err != nil {
			t.Fatalf("%s: replay v%d: %v", label, m.Change.Version, err)
		}
	}
	if snapBytes(t, got) != snapBytes(t, want) {
		t.Fatalf("%s: recovered state differs from dense-prefix replay to v%d", label, wantVer)
	}
}

// TestGroupCommitTornTailTorture is the crash-consistency contract for
// batched commits: concurrent appenders fill batches under each grouped
// sync policy, then the tail segment is truncated at every byte offset —
// including mid-batch, where one Write carried several frames — and
// recovery must land on exactly the longest dense version prefix with state
// equal to replaying those records.
func TestGroupCommitTornTailTorture(t *testing.T) {
	for _, pol := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval(time.Millisecond)} {
		t.Run(pol.String(), func(t *testing.T) {
			u := testUniverse()
			base := t.TempDir()
			opts := wal.Options{SegmentBytes: 256, Sync: pol}
			ds, err := NewDurable(u, 2, base, opts)
			if err != nil {
				t.Fatal(err)
			}
			groupCommitWorkload(t, ds, u, 4, 12)
			st := ds.WALStats()
			if err := ds.Close(); err != nil {
				t.Fatal(err)
			}
			if st.Appends == 0 {
				t.Fatal("workload appended nothing through the WAL")
			}
			recs := walMutationsByVersion(t, base)
			if uint64(len(recs)) != 48 {
				t.Fatalf("canonical record set has %d records, want 48", len(recs))
			}

			seg := lastSegmentWithTail(t, base)
			info, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			rel, err := filepath.Rel(base, seg)
			if err != nil {
				t.Fatal(err)
			}
			size := int(info.Size())
			stride := 1
			if testing.Short() {
				stride = 7
			}
			for cut := 0; cut <= size; cut += stride {
				trial := copyTree(t, base)
				if err := os.Truncate(filepath.Join(trial, rel), int64(cut)); err != nil {
					t.Fatal(err)
				}
				checkGroupRecovery(t, trial, u, recs, opts, fmt.Sprintf("truncate@%d", cut))
			}
		})
	}
}

// TestGroupCommitRecoveryDeterminism pins the cross-policy determinism
// contract: the same workload committed under every sync policy and
// appender concurrency recovers to exactly the in-memory state the primary
// held at close, and — since record content is scheduling-independent —
// single-appender runs recover byte-identical snapshots across all four
// policies.
func TestGroupCommitRecoveryDeterminism(t *testing.T) {
	u := testUniverse()
	policies := []wal.SyncPolicy{wal.SyncNever, wal.SyncOnRotate, wal.SyncInterval(time.Millisecond), wal.SyncAlways}
	for _, conc := range []int{1, 4} {
		var serialSnap string
		for _, pol := range policies {
			label := fmt.Sprintf("conc=%d/%s", conc, pol)
			base := t.TempDir()
			opts := wal.Options{SegmentBytes: 512, Sync: pol}
			ds, err := NewDurable(u, 3, base, opts)
			if err != nil {
				t.Fatal(err)
			}
			groupCommitWorkload(t, ds, u, conc, 24/conc)
			live := snapBytes(t, ds)
			liveVer := ds.Version()
			if err := ds.Close(); err != nil {
				t.Fatal(err)
			}
			got, _, err := Open(base, 0, opts)
			if err != nil {
				t.Fatalf("%s: open: %v", label, err)
			}
			if got.Version() != liveVer {
				t.Fatalf("%s: recovered version %d, want %d", label, got.Version(), liveVer)
			}
			if snapBytes(t, got) != live {
				t.Fatalf("%s: recovered snapshot differs from pre-close state", label)
			}
			if err := got.Close(); err != nil {
				t.Fatal(err)
			}
			if conc == 1 {
				if serialSnap == "" {
					serialSnap = live
				} else if live != serialSnap {
					t.Fatalf("%s: serial snapshot differs across sync policies", label)
				}
			}
		}
	}
}
