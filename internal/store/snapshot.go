package store

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/par"
)

// Snapshot captures the entire store as a serialisable model.Snapshot.
func (s *Store) Snapshot() *model.Snapshot {
	return &model.Snapshot{
		Skills:        s.universe.Names(),
		Workers:       s.Workers(),
		Requesters:    s.Requesters(),
		Tasks:         s.Tasks(),
		Contributions: s.Contributions(),
	}
}

// FromSnapshot builds a fully-indexed store from a snapshot, validating
// every entity and referential link on the way in.
func FromSnapshot(snap *model.Snapshot) (*Store, error) {
	u, err := snap.Universe()
	if err != nil {
		return nil, fmt.Errorf("store: snapshot universe: %w", err)
	}
	s := New(u)
	for _, r := range snap.Requesters {
		if err := s.PutRequester(r); err != nil {
			return nil, fmt.Errorf("store: load snapshot: %w", err)
		}
	}
	for _, w := range snap.Workers {
		if err := s.PutWorker(w); err != nil {
			return nil, fmt.Errorf("store: load snapshot: %w", err)
		}
	}
	for _, t := range snap.Tasks {
		if err := s.PutTask(t); err != nil {
			return nil, fmt.Errorf("store: load snapshot: %w", err)
		}
	}
	for _, c := range snap.Contributions {
		if err := s.PutContribution(c); err != nil {
			return nil, fmt.Errorf("store: load snapshot: %w", err)
		}
	}
	return s, nil
}

// CandidateWorkerPairs returns worker-id pairs that share at least one
// skill, using the inverted index to avoid the full O(n²) cross product.
// Each pair appears once with the lexicographically smaller id first.
// Workers with empty skill vectors never appear (they can share no skill);
// callers that must compare skill-less workers should fall back to the
// exhaustive scan.
//
// This is the index-pruned candidate generation benchmarked against the
// exhaustive scan in experiment E7. Deduplication is by ownership — a pair
// is emitted only from the bucket of the pair's first shared skill — which
// avoids a per-pair hash map on the hot path. Ownership also makes the
// buckets independent, so generation fans out one goroutine per skill
// bucket on a bounded pool; per-bucket outputs are concatenated in skill
// order, keeping the result identical to the serial scan.
func (s *Store) CandidateWorkerPairs() [][2]model.WorkerID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	perSkill := make([][][2]model.WorkerID, len(s.workersBySkill))
	par.For(len(s.workersBySkill), 0, func(skill int) {
		ids := s.workersBySkill[skill]
		if len(ids) < 2 {
			return
		}
		bucket := make([]*model.Worker, len(ids))
		for i, id := range ids {
			bucket[i] = s.workers[id]
		}
		var out [][2]model.WorkerID
		for i := 0; i < len(bucket); i++ {
			wi := bucket[i]
			for j := i + 1; j < len(bucket); j++ {
				wj := bucket[j]
				if firstSharedSkill(wi.Skills, wj.Skills) != skill {
					continue // another bucket owns this pair
				}
				a, b := wi.ID, wj.ID
				if b < a {
					a, b = b, a
				}
				out = append(out, [2]model.WorkerID{a, b})
			}
		}
		perSkill[skill] = out
	})
	var out [][2]model.WorkerID
	for _, pairs := range perSkill {
		out = append(out, pairs...)
	}
	return out
}

// firstSharedSkill returns the lowest index set in both vectors, or -1.
func firstSharedSkill(a, b model.SkillVector) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] && b[i] {
			return i
		}
	}
	return -1
}

// CandidateTaskPairs returns task-id pairs sharing at least one required
// skill and posted by different requesters — the candidate set for Axiom 2
// (requester fairness applies across distinct requesters).
func (s *Store) CandidateTaskPairs() [][2]model.TaskID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out [][2]model.TaskID
	bucket := make([]*model.Task, 0, 64)
	for skill, ids := range s.tasksBySkill {
		bucket = bucket[:0]
		for _, id := range ids {
			bucket = append(bucket, s.tasks[id])
		}
		for i := 0; i < len(bucket); i++ {
			ti := bucket[i]
			for j := i + 1; j < len(bucket); j++ {
				tj := bucket[j]
				if ti.Requester == tj.Requester {
					continue
				}
				if firstSharedSkill(ti.Skills, tj.Skills) != skill {
					continue
				}
				a, b := ti.ID, tj.ID
				if b < a {
					a, b = b, a
				}
				out = append(out, [2]model.TaskID{a, b})
			}
		}
	}
	return out
}
