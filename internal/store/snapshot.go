package store

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/par"
)

// Snapshot captures the entire store as a serialisable model.Snapshot.
// Workers, tasks, and contributions — the tables that grow with traffic —
// are gathered shard-parallel (each shard's entities are cloned and sorted
// on its own goroutine, then merged), so snapshotting a large sharded
// store scales with cores; the small requester table is gathered serially.
func (s *Store) Snapshot() *model.Snapshot {
	shs, release := s.rlockView()
	defer release()
	return s.snapshot(shs)
}

// snapshot gathers the full state under a held whole-key-space view (the
// caller — Snapshot or Checkpoint — pins the shard locks for a consistent
// cut across all four tables).
func (s *Store) snapshot(held []*shard) *model.Snapshot {
	return &model.Snapshot{
		Skills:        s.universe.Names(),
		Workers:       s.workersSlice(true, held),
		Requesters:    s.requestersSlice(held),
		Tasks:         s.tasksSlice(true, held),
		Contributions: s.contributionsSlice(true, held),
	}
}

// FromSnapshot builds a fully-indexed store from a snapshot, validating
// every entity and referential link on the way in. Loading uses the bulk
// shard-parallel insert paths.
func FromSnapshot(snap *model.Snapshot) (*Store, error) {
	return FromSnapshotSharded(snap, DefaultShardCount)
}

// FromSnapshotSharded is FromSnapshot with an explicit hash-partition
// count (recovery rebuilds a checkpointed store at its manifest's width).
func FromSnapshotSharded(snap *model.Snapshot, shards int) (*Store, error) {
	u, err := snap.Universe()
	if err != nil {
		return nil, fmt.Errorf("store: snapshot universe: %w", err)
	}
	s := NewSharded(u, shards)
	for _, r := range snap.Requesters {
		if err := s.PutRequester(r); err != nil {
			return nil, fmt.Errorf("store: load snapshot: %w", err)
		}
	}
	if err := s.BulkPutWorkers(snap.Workers); err != nil {
		return nil, fmt.Errorf("store: load snapshot: %w", err)
	}
	if err := s.BulkPutTasks(snap.Tasks); err != nil {
		return nil, fmt.Errorf("store: load snapshot: %w", err)
	}
	if err := s.BulkPutContributions(snap.Contributions); err != nil {
		return nil, fmt.Errorf("store: load snapshot: %w", err)
	}
	return s, nil
}

// skillBucket merges the per-shard skill-index runs for one skill into a
// single id-sorted slice of stored worker pointers. Caller must hold read
// locks over the given whole-key-space view.
func skillBucket(shs []*shard, skill int) []*model.Worker {
	per := make([][]*model.Worker, 0, len(shs))
	for _, sh := range shs {
		if sh.retired {
			continue
		}
		ids := sh.workersBySkill[skill]
		if len(ids) == 0 {
			continue
		}
		ws := make([]*model.Worker, len(ids))
		for k, id := range ids {
			ws[k] = sh.workers[id]
		}
		per = append(per, ws)
	}
	return mergeSorted(per, func(a, b *model.Worker) bool { return a.ID < b.ID })
}

// CandidateWorkerPairs returns worker-id pairs that share at least one
// skill, using the inverted index to avoid the full O(n²) cross product.
// Each pair appears once with the lexicographically smaller id first.
// Workers with empty skill vectors never appear (they can share no skill);
// callers that must compare skill-less workers should fall back to the
// exhaustive scan.
//
// This is the index-pruned candidate generation benchmarked against the
// exhaustive scan in experiment E7. Deduplication is by ownership — a pair
// is emitted only from the bucket of the pair's first shared skill — which
// avoids a per-pair hash map on the hot path. Ownership also makes the
// buckets independent, so generation fans out one goroutine per skill
// bucket on a bounded pool; per-bucket outputs are concatenated in skill
// order, keeping the result deterministic regardless of scheduling. The
// scan holds every shard's read lock for the duration, like the old
// single-lock scan held its one lock.
func (s *Store) CandidateWorkerPairs() [][2]model.WorkerID {
	shs, release := s.rlockView()
	defer release()
	nSkills := s.universe.Size()
	perSkill := make([][][2]model.WorkerID, nSkills)
	par.For(nSkills, 0, func(skill int) {
		bucket := skillBucket(shs, skill)
		if len(bucket) < 2 {
			return
		}
		var out [][2]model.WorkerID
		for i := 0; i < len(bucket); i++ {
			wi := bucket[i]
			for j := i + 1; j < len(bucket); j++ {
				wj := bucket[j]
				if firstSharedSkill(wi.Skills, wj.Skills) != skill {
					continue // another bucket owns this pair
				}
				a, b := wi.ID, wj.ID
				if b < a {
					a, b = b, a
				}
				out = append(out, [2]model.WorkerID{a, b})
			}
		}
		perSkill[skill] = out
	})
	var out [][2]model.WorkerID
	for _, pairs := range perSkill {
		out = append(out, pairs...)
	}
	return out
}

// firstSharedSkill returns the lowest index set in both vectors, or -1.
func firstSharedSkill(a, b model.SkillVector) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] && b[i] {
			return i
		}
	}
	return -1
}

// CandidateTaskPairs returns task-id pairs sharing at least one required
// skill and posted by different requesters — the candidate set for Axiom 2
// (requester fairness applies across distinct requesters).
func (s *Store) CandidateTaskPairs() [][2]model.TaskID {
	shs, release := s.rlockView()
	defer release()
	var out [][2]model.TaskID
	bucket := make([]*model.Task, 0, 64)
	perShard := make([][]*model.Task, 0, len(shs))
	for skill := 0; skill < s.universe.Size(); skill++ {
		perShard = perShard[:0]
		for _, sh := range shs {
			if sh.retired {
				continue
			}
			ids := sh.tasksBySkill[skill]
			if len(ids) == 0 {
				continue
			}
			ts := make([]*model.Task, len(ids))
			for k, id := range ids {
				ts[k] = sh.tasks[id]
			}
			perShard = append(perShard, ts)
		}
		bucket = append(bucket[:0], mergeSorted(perShard, func(a, b *model.Task) bool { return a.ID < b.ID })...)
		for i := 0; i < len(bucket); i++ {
			ti := bucket[i]
			for j := i + 1; j < len(bucket); j++ {
				tj := bucket[j]
				if ti.Requester == tj.Requester {
					continue
				}
				if firstSharedSkill(ti.Skills, tj.Skills) != skill {
					continue
				}
				a, b := ti.ID, tj.ID
				if b < a {
					a, b = b, a
				}
				out = append(out, [2]model.TaskID{a, b})
			}
		}
	}
	return out
}
