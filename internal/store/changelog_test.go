package store

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

func changelogStore(t *testing.T) *Store {
	t.Helper()
	u := model.MustUniverse("a", "b")
	s := New(u)
	if err := s.PutRequester(&model.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestChangelogRecordsEveryMutation(t *testing.T) {
	s := changelogStore(t)
	w := &model.Worker{ID: "w1", Skills: s.Universe().MustVector("a")}
	if err := s.PutWorker(w); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTask(&model.Task{ID: "t1", Requester: "r1", Skills: s.Universe().MustVector("a")}); err != nil {
		t.Fatal(err)
	}
	c := &model.Contribution{ID: "c1", Task: "t1", Worker: "w1", Quality: 0.5}
	if err := s.PutContribution(c); err != nil {
		t.Fatal(err)
	}
	c.Paid = 1.0
	if err := s.UpdateContribution(c); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateWorker(w); err != nil {
		t.Fatal(err)
	}

	changes, ok := s.ChangesSince(0)
	if !ok {
		t.Fatal("changelog reported truncation on a fresh store")
	}
	want := []struct {
		op     Op
		entity Entity
	}{
		{OpInsert, EntityRequester},
		{OpInsert, EntityWorker},
		{OpInsert, EntityTask},
		{OpInsert, EntityContribution},
		{OpUpdate, EntityContribution},
		{OpUpdate, EntityWorker},
	}
	if len(changes) != len(want) {
		t.Fatalf("changes = %d, want %d: %v", len(changes), len(want), changes)
	}
	for i, c := range changes {
		if c.Version != uint64(i+1) {
			t.Errorf("change %d: version %d, want %d", i, c.Version, i+1)
		}
		if c.Op != want[i].op || c.Entity != want[i].entity {
			t.Errorf("change %d: %v %v, want %v %v", i, c.Op, c.Entity, want[i].op, want[i].entity)
		}
	}
	// Contribution changes carry their touched neighbours.
	if changes[3].Task != "t1" || changes[3].Worker != "w1" || changes[3].Contribution != "c1" {
		t.Errorf("contribution change ids = %+v", changes[3])
	}
	// Incremental read from the middle.
	tail, ok := s.ChangesSince(4)
	if !ok || len(tail) != 2 {
		t.Fatalf("ChangesSince(4) = %v, %v", tail, ok)
	}
	if tail[0].Version != 5 {
		t.Errorf("tail starts at version %d, want 5", tail[0].Version)
	}
	// At or beyond head: empty and complete.
	if tail, ok = s.ChangesSince(s.Version()); !ok || tail != nil {
		t.Fatalf("ChangesSince(head) = %v, %v", tail, ok)
	}
}

func TestChangelogTruncationSignal(t *testing.T) {
	// One shard: the cap is then an exact global retention window, so the
	// eviction boundary is predictable change by change. Multi-shard
	// truncation (per-shard rings overflowing independently) is covered in
	// shard_test.go.
	u := model.MustUniverse("a", "b")
	s := NewSharded(u, 1)
	if err := s.PutRequester(&model.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	s.SetChangelogCap(4)
	for i := 0; i < 10; i++ {
		w := &model.Worker{
			ID:     model.WorkerID(fmt.Sprintf("w%02d", i)),
			Skills: s.Universe().MustVector("a"),
		}
		if err := s.PutWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	// 11 mutations total (requester + 10 workers); only 4 retained.
	if _, ok := s.ChangesSince(0); ok {
		t.Fatal("expected truncation for a version past the retention window")
	}
	if _, ok := s.ChangesSince(6); ok {
		t.Fatal("expected truncation: change 7 was evicted")
	}
	changes, ok := s.ChangesSince(7)
	if !ok || len(changes) != 4 {
		t.Fatalf("ChangesSince(7) = %v, %v; want the 4 retained changes", changes, ok)
	}
	for i, c := range changes {
		if c.Version != uint64(8+i) {
			t.Errorf("retained change %d: version %d, want %d", i, c.Version, 8+i)
		}
	}
	// Shrinking the cap drops oldest-first; growing keeps what is retained.
	s.SetChangelogCap(2)
	if cs, ok := s.ChangesSince(9); !ok || len(cs) != 2 {
		t.Fatalf("after shrink: ChangesSince(9) = %v, %v", cs, ok)
	}
	s.SetChangelogCap(0)
	if _, ok := s.ChangesSince(s.Version() - 1); ok {
		t.Fatal("cap 0 must report truncation for any past version")
	}
}

// TestShardChangesSinceCursorAtHead pins the boundary semantics of the
// per-shard cursor API: a cursor exactly at the shard's watermark (or the
// exact drop boundary after an overflow) reads as complete-and-empty, not
// as truncation.
func TestShardChangesSinceCursorAtHead(t *testing.T) {
	u := model.MustUniverse("a")
	s := NewSharded(u, 2)
	s.SetChangelogCap(4)
	target := 0
	for i := 0; i < 10; i++ {
		w := &model.Worker{ID: workerIDForShard(t, s, target, i), Skills: u.MustVector("a")}
		if err := s.PutWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	head := s.ShardVersion(target)
	if head == 0 {
		t.Fatal("target shard recorded nothing")
	}
	// Exactly at the head: empty and complete.
	if chs, ok := s.ShardChangesSince(target, head); !ok || len(chs) != 0 {
		t.Fatalf("cursor at head = (%v, %v), want (empty, true)", chs, ok)
	}
	// Beyond the head (a cursor from a newer global version that this
	// shard never recorded): still complete.
	if chs, ok := s.ShardChangesSince(target, head+5); !ok || len(chs) != 0 {
		t.Fatalf("cursor past head = (%v, %v), want (empty, true)", chs, ok)
	}
	// The ring overflowed (10 records, cap 4): a zero cursor is truncated,
	// but a cursor exactly at the newest dropped version is complete — it
	// has seen everything the ring no longer retains.
	if _, ok := s.ShardChangesSince(target, 0); ok {
		t.Fatal("zero cursor survived a ring overflow")
	}
	retained, ok := s.ShardChangesSince(target, head-1)
	if !ok || len(retained) != 1 || retained[0].Version != head {
		t.Fatalf("cursor at head-1 = (%v, %v), want the head record", retained, ok)
	}
	all, ok := s.ShardChangesSince(target, boundary(t, s, target))
	if !ok || len(all) != 4 {
		t.Fatalf("cursor at drop boundary = (%d records, %v), want (4, true)", len(all), ok)
	}
}

// boundary returns the newest dropped version of the shard's ring: the
// version just before its oldest retained record.
func boundary(t *testing.T, s *Store, shard int) uint64 {
	t.Helper()
	sh := s.table().shards[shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.ring.droppedMax
}

// TestShardChangesSinceOutOfRange pins index hygiene: negative, too-large,
// and post-merge indexes read as total truncation instead of panicking.
func TestShardChangesSinceOutOfRange(t *testing.T) {
	u := model.MustUniverse("a")
	s := NewSharded(u, 4)
	if err := s.PutRequester(&model.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{-1, 4, 99} {
		if chs, ok := s.ShardChangesSince(idx, 0); ok || chs != nil {
			t.Fatalf("ShardChangesSince(%d) = (%v, %v), want (nil, false)", idx, chs, ok)
		}
		if v := s.ShardVersion(idx); v != 0 {
			t.Fatalf("ShardVersion(%d) = %d, want 0", idx, v)
		}
	}
}

// TestShardChangesSinceOverflowRacingBulkPut drives a cursor-based reader
// against bulk writers overflowing a tiny ring: every complete read must
// be strictly increasing and past the cursor, and every truncation signal
// must be recoverable by rescanning from the shard watermark — the audit
// engine's exact consumption pattern.
func TestShardChangesSinceOverflowRacingBulkPut(t *testing.T) {
	u := model.MustUniverse("a", "b")
	s := NewSharded(u, 2)
	s.SetChangelogCap(8)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for batch := 0; batch < 60; batch++ {
			ws := make([]*model.Worker, 20)
			for i := range ws {
				ws[i] = &model.Worker{
					ID:     model.WorkerID(fmt.Sprintf("w%03d-%02d", batch, i)),
					Skills: u.MustVector([]string{"a", "b"}[i%2]),
				}
			}
			if err := s.BulkPutWorkers(ws); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	cursors := make([]uint64, s.ShardCount())
	truncations := 0
	for loop := 0; ; loop++ {
		for i := range cursors {
			chs, ok := s.ShardChangesSince(i, cursors[i])
			if !ok {
				// The ring dropped records past our cursor mid-race: the
				// documented fallback is a rescan from the watermark.
				truncations++
				cursors[i] = s.ShardVersion(i)
				continue
			}
			last := cursors[i]
			for _, c := range chs {
				if c.Version <= last {
					t.Fatalf("shard %d: version %d not increasing past %d", i, c.Version, last)
				}
				last = c.Version
			}
			cursors[i] = last
		}
		select {
		case <-done:
			if t.Failed() {
				t.FailNow()
			}
			// Writers stopped: rescanning from the watermark and reading
			// once more must drain each shard exactly to its head.
			for i := range cursors {
				if chs, ok := s.ShardChangesSince(i, s.ShardVersion(i)); !ok || len(chs) != 0 {
					t.Fatalf("shard %d not drained at watermark: (%v, %v)", i, chs, ok)
				}
			}
			if total := len(s.Workers()); total != 60*20 {
				t.Fatalf("store holds %d workers, want %d", total, 60*20)
			}
			// With cap 8 and 600-record shard streams, the racing reader
			// must have been truncated at least once for the test to have
			// exercised the contested path.
			if truncations == 0 {
				t.Log("warning: reader never observed truncation (timing-dependent)")
			}
			return
		default:
		}
	}
}

func TestRevisionsTrackLastMutation(t *testing.T) {
	s := changelogStore(t)
	w := &model.Worker{ID: "w1", Skills: s.Universe().MustVector("a")}
	if err := s.PutWorker(w); err != nil {
		t.Fatal(err)
	}
	rev1 := s.WorkerRevision("w1")
	if rev1 == 0 {
		t.Fatal("inserted worker has zero revision")
	}
	if err := s.PutTask(&model.Task{ID: "t1", Requester: "r1", Skills: s.Universe().MustVector("a")}); err != nil {
		t.Fatal(err)
	}
	if s.WorkerRevision("w1") != rev1 {
		t.Fatal("unrelated mutation moved the worker revision")
	}
	if err := s.UpdateWorker(w); err != nil {
		t.Fatal(err)
	}
	if s.WorkerRevision("w1") <= rev1 {
		t.Fatal("update did not advance the worker revision")
	}
	if s.TaskRevision("t1") == 0 || s.TaskRevision("missing") != 0 {
		t.Fatal("task revision bookkeeping wrong")
	}
	c := &model.Contribution{ID: "c1", Task: "t1", Worker: "w1", Quality: 0.5}
	if err := s.PutContribution(c); err != nil {
		t.Fatal(err)
	}
	crev := s.ContributionRevision("c1")
	if err := s.UpdateContribution(c); err != nil {
		t.Fatal(err)
	}
	if s.ContributionRevision("c1") <= crev {
		t.Fatal("contribution update did not advance its revision")
	}
}
