package store

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

func changelogStore(t *testing.T) *Store {
	t.Helper()
	u := model.MustUniverse("a", "b")
	s := New(u)
	if err := s.PutRequester(&model.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestChangelogRecordsEveryMutation(t *testing.T) {
	s := changelogStore(t)
	w := &model.Worker{ID: "w1", Skills: s.Universe().MustVector("a")}
	if err := s.PutWorker(w); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTask(&model.Task{ID: "t1", Requester: "r1", Skills: s.Universe().MustVector("a")}); err != nil {
		t.Fatal(err)
	}
	c := &model.Contribution{ID: "c1", Task: "t1", Worker: "w1", Quality: 0.5}
	if err := s.PutContribution(c); err != nil {
		t.Fatal(err)
	}
	c.Paid = 1.0
	if err := s.UpdateContribution(c); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateWorker(w); err != nil {
		t.Fatal(err)
	}

	changes, ok := s.ChangesSince(0)
	if !ok {
		t.Fatal("changelog reported truncation on a fresh store")
	}
	want := []struct {
		op     Op
		entity Entity
	}{
		{OpInsert, EntityRequester},
		{OpInsert, EntityWorker},
		{OpInsert, EntityTask},
		{OpInsert, EntityContribution},
		{OpUpdate, EntityContribution},
		{OpUpdate, EntityWorker},
	}
	if len(changes) != len(want) {
		t.Fatalf("changes = %d, want %d: %v", len(changes), len(want), changes)
	}
	for i, c := range changes {
		if c.Version != uint64(i+1) {
			t.Errorf("change %d: version %d, want %d", i, c.Version, i+1)
		}
		if c.Op != want[i].op || c.Entity != want[i].entity {
			t.Errorf("change %d: %v %v, want %v %v", i, c.Op, c.Entity, want[i].op, want[i].entity)
		}
	}
	// Contribution changes carry their touched neighbours.
	if changes[3].Task != "t1" || changes[3].Worker != "w1" || changes[3].Contribution != "c1" {
		t.Errorf("contribution change ids = %+v", changes[3])
	}
	// Incremental read from the middle.
	tail, ok := s.ChangesSince(4)
	if !ok || len(tail) != 2 {
		t.Fatalf("ChangesSince(4) = %v, %v", tail, ok)
	}
	if tail[0].Version != 5 {
		t.Errorf("tail starts at version %d, want 5", tail[0].Version)
	}
	// At or beyond head: empty and complete.
	if tail, ok = s.ChangesSince(s.Version()); !ok || tail != nil {
		t.Fatalf("ChangesSince(head) = %v, %v", tail, ok)
	}
}

func TestChangelogTruncationSignal(t *testing.T) {
	// One shard: the cap is then an exact global retention window, so the
	// eviction boundary is predictable change by change. Multi-shard
	// truncation (per-shard rings overflowing independently) is covered in
	// shard_test.go.
	u := model.MustUniverse("a", "b")
	s := NewSharded(u, 1)
	if err := s.PutRequester(&model.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	s.SetChangelogCap(4)
	for i := 0; i < 10; i++ {
		w := &model.Worker{
			ID:     model.WorkerID(fmt.Sprintf("w%02d", i)),
			Skills: s.Universe().MustVector("a"),
		}
		if err := s.PutWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	// 11 mutations total (requester + 10 workers); only 4 retained.
	if _, ok := s.ChangesSince(0); ok {
		t.Fatal("expected truncation for a version past the retention window")
	}
	if _, ok := s.ChangesSince(6); ok {
		t.Fatal("expected truncation: change 7 was evicted")
	}
	changes, ok := s.ChangesSince(7)
	if !ok || len(changes) != 4 {
		t.Fatalf("ChangesSince(7) = %v, %v; want the 4 retained changes", changes, ok)
	}
	for i, c := range changes {
		if c.Version != uint64(8+i) {
			t.Errorf("retained change %d: version %d, want %d", i, c.Version, 8+i)
		}
	}
	// Shrinking the cap drops oldest-first; growing keeps what is retained.
	s.SetChangelogCap(2)
	if cs, ok := s.ChangesSince(9); !ok || len(cs) != 2 {
		t.Fatalf("after shrink: ChangesSince(9) = %v, %v", cs, ok)
	}
	s.SetChangelogCap(0)
	if _, ok := s.ChangesSince(s.Version() - 1); ok {
		t.Fatal("cap 0 must report truncation for any past version")
	}
}

func TestRevisionsTrackLastMutation(t *testing.T) {
	s := changelogStore(t)
	w := &model.Worker{ID: "w1", Skills: s.Universe().MustVector("a")}
	if err := s.PutWorker(w); err != nil {
		t.Fatal(err)
	}
	rev1 := s.WorkerRevision("w1")
	if rev1 == 0 {
		t.Fatal("inserted worker has zero revision")
	}
	if err := s.PutTask(&model.Task{ID: "t1", Requester: "r1", Skills: s.Universe().MustVector("a")}); err != nil {
		t.Fatal(err)
	}
	if s.WorkerRevision("w1") != rev1 {
		t.Fatal("unrelated mutation moved the worker revision")
	}
	if err := s.UpdateWorker(w); err != nil {
		t.Fatal(err)
	}
	if s.WorkerRevision("w1") <= rev1 {
		t.Fatal("update did not advance the worker revision")
	}
	if s.TaskRevision("t1") == 0 || s.TaskRevision("missing") != 0 {
		t.Fatal("task revision bookkeeping wrong")
	}
	c := &model.Contribution{ID: "c1", Task: "t1", Worker: "w1", Quality: 0.5}
	if err := s.PutContribution(c); err != nil {
		t.Fatal(err)
	}
	crev := s.ContributionRevision("c1")
	if err := s.UpdateContribution(c); err != nil {
		t.Fatal(err)
	}
	if s.ContributionRevision("c1") <= crev {
		t.Fatal("contribution update did not advance its revision")
	}
}
