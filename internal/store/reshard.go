package store

import (
	"fmt"

	"repro/internal/model"
)

// Reshard migrates the store to a new shard width under live traffic — the
// online split (n > current width) or merge (n < current width). The
// protocol, built on the epoch-stamped route tables of routetable.go:
//
//  1. Build the successor epoch's shards (with fresh WAL sinks on a
//     durable store) and publish them through Store.next. From this point
//     writers and readers know a migration is in flight: routing falls
//     through retired shards, cross-shard readers pin both tables.
//  2. Hand off each current-epoch shard in index order: under its write
//     lock, move every entity, revision, and retained changelog record to
//     its successor-table owner, then mark the shard retired. Writers to a
//     migrating shard block only for that shard's handoff; traffic to
//     every other shard proceeds untouched.
//  3. Promote the successor to Store.route, clear Store.next, and append
//     the width change to the epoch log (and, on a durable store, the
//     manifest — so Open recovers across the reshard boundary by merging
//     every epoch's WAL directories).
//
// Lock order: a handoff holds one current-epoch shard plus at most one
// successor shard at a time, always current before successor — the same
// order rlockView acquires its view in — and plain writers never hold two
// locks, so the wait-for graph stays acyclic.
//
// Reshard serialises with Checkpoint and Close on ckptMu and with itself;
// calling it with the current width is a no-op (identical hash routing).
func (s *Store) Reshard(n int) error {
	if n < 1 {
		n = 1
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	rt := s.table()
	if n == rt.width() {
		return nil
	}
	epoch := rt.epoch + 1
	clogCap := int(s.clogCap.Load())
	shs := make([]*shard, n)
	for i := range shs {
		shs[i] = newShard(s.universe.Size(), clogCap, epoch)
		if s.dir != "" {
			sink, err := newWALSink(walShardDir(s.dir, epoch, i), s.walOpts)
			if err != nil {
				for _, sh := range shs[:i] {
					sh.wal.Close()
				}
				return fmt.Errorf("store: reshard: %w", err)
			}
			shs[i].wal = sink
		}
	}
	nt := newRouteTable(epoch, shs)
	s.next.Store(nt)

	// A handoff fails only on a WAL sync/close error while sealing the
	// retiring shard's sink; in-memory migration of that shard has
	// already completed. Every shard must still hand off before the
	// cutover — stopping early would strand entities in unrouted shards —
	// so the loop runs to completion and the first seal error is reported
	// after the store is consistently on the new epoch.
	var sealErr error
	for _, old := range rt.shards {
		if err := s.handoff(old, nt); err != nil && sealErr == nil {
			sealErr = err
		}
	}
	if err := s.finishCutover(rt, nt); err != nil {
		return err
	}
	if sealErr != nil {
		return fmt.Errorf("store: reshard: %w", sealErr)
	}
	return nil
}

// finishCutover promotes the successor table and records the epoch change
// (in memory and, for durable stores, in the manifest). Caller holds
// ckptMu; every shard of rt must already be retired.
func (s *Store) finishCutover(rt, nt *routeTable) error {
	s.route.Store(nt)
	s.next.Store(nil)
	ec := EpochChange{Epoch: nt.epoch, Width: nt.width(), Version: s.version.Load()}
	s.epochs = append(s.epochs, ec)
	if s.dir == "" {
		return nil
	}
	man, err := ReadManifest(s.dir)
	if err != nil {
		return fmt.Errorf("store: reshard: %w", err)
	}
	man.Shards = nt.width()
	man.Epoch = nt.epoch
	man.Epochs = append(man.Epochs, ec)
	// The old watermarks and low-water marks described the retired
	// layout; dropping them sends the next Open down the width-change
	// recovery path (rings reset to the snapshot version, saved audit
	// cursors fall back to a rescan).
	man.Watermarks, man.LowWater = nil, nil
	if err := writeManifest(s.dir, man); err != nil {
		return fmt.Errorf("store: reshard: %w", err)
	}
	return nil
}

// handoff migrates one current-epoch shard into the successor table: every
// entity map, secondary index entry, revision, and retained changelog
// record moves to its new owner, then the shard is marked retired and its
// memory released. Runs under the retiring shard's write lock, taking each
// touched successor shard's lock one at a time (current-epoch before
// successor-epoch, matching rlockView's order).
func (s *Store) handoff(old *shard, nt *routeTable) error {
	old.mu.Lock()
	defer old.mu.Unlock()

	// Group everything by successor-table owner first, then land each
	// target group under a single lock acquisition. Per-target changelog
	// groups stay version-sorted because the source ring is.
	type group struct {
		workers  []*model.Worker
		reqs     []*model.Requester
		tasks    []*model.Task
		contribs []*model.Contribution
		changes  []Change
	}
	groups := make(map[int]*group)
	at := func(i int) *group {
		g := groups[i]
		if g == nil {
			g = &group{}
			groups[i] = g
		}
		return g
	}
	for id, w := range old.workers {
		g := at(nt.index(string(id)))
		g.workers = append(g.workers, w)
	}
	for id, r := range old.requesters {
		g := at(nt.index(string(id)))
		g.reqs = append(g.reqs, r)
	}
	for id, t := range old.tasks {
		g := at(nt.index(string(id)))
		g.tasks = append(g.tasks, t)
	}
	for id, c := range old.contribs {
		g := at(nt.index(string(id)))
		g.contribs = append(g.contribs, c)
	}
	for _, c := range old.ring.changesAfter(0) {
		g := at(nt.index(changePrimaryID(c)))
		g.changes = append(g.changes, c)
	}

	for i := 0; i < nt.width(); i++ {
		g := groups[i]
		if g == nil {
			continue
		}
		t := nt.shards[i]
		t.mu.Lock()
		for _, w := range g.workers {
			t.workers[w.ID] = w
			for _, k := range w.Skills.Indices() {
				t.workersBySkill[k] = insertSortedID(t.workersBySkill[k], w.ID)
			}
			t.workerRev[w.ID] = old.workerRev[w.ID]
		}
		for _, r := range g.reqs {
			t.requesters[r.ID] = r
		}
		for _, tk := range g.tasks {
			t.tasks[tk.ID] = tk
			for _, k := range tk.Skills.Indices() {
				t.tasksBySkill[k] = insertSortedID(t.tasksBySkill[k], tk.ID)
			}
			t.tasksByReq[tk.Requester] = insertSortedID(t.tasksByReq[tk.Requester], tk.ID)
			t.taskRev[tk.ID] = old.taskRev[tk.ID]
		}
		for _, c := range g.contribs {
			t.contribs[c.ID] = c
		}
		for _, c := range g.contribs {
			t.contribsByTask[c.Task] = insertContribID(t.contribsByTask[c.Task], t.contribs, c.ID)
			t.contribsByWorker[c.Worker] = insertContribID(t.contribsByWorker[c.Worker], t.contribs, c.ID)
			t.contribRev[c.ID] = old.contribRev[c.ID]
		}
		t.ring.merge(g.changes, old.ring.droppedMax)
		if old.applied > t.applied {
			// The watermark promise ("every owned mutation at or below
			// applied is visible") survives raising it past versions the
			// target never owned.
			t.applied = old.applied
		}
		t.mu.Unlock()
	}

	// Seal the retiring shard's WAL: its records stay on disk for
	// recovery (Open merges every epoch's directories) until the next
	// checkpoint retires the directory itself.
	var sealErr error
	if old.wal != nil {
		if err := old.wal.Sync(); err != nil {
			sealErr = err
		}
		if err := old.wal.Close(); err != nil && sealErr == nil {
			sealErr = err
		}
		old.wal = nil
	}

	old.retired = true
	if old.applied > old.ring.droppedMax {
		old.ring.droppedMax = old.applied
	}
	old.ring.buf, old.ring.start, old.ring.n = nil, 0, 0
	// Release the migrated state. Index slices are re-made empty (not
	// nil'd) so a reader that reaches a retired shard before checking the
	// flag still indexes safely.
	old.workers, old.requesters, old.tasks, old.contribs = nil, nil, nil, nil
	old.workersBySkill = make([][]model.WorkerID, len(old.workersBySkill))
	old.tasksBySkill = make([][]model.TaskID, len(old.tasksBySkill))
	old.tasksByReq, old.contribsByTask, old.contribsByWorker = nil, nil, nil
	old.workerRev, old.taskRev, old.contribRev = nil, nil, nil
	return sealErr
}
