package store

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

func TestMutationCodecRoundTrip(t *testing.T) {
	muts := []Mutation{
		{
			Change: Change{Version: 1, Op: OpInsert, Entity: EntityWorker, Worker: "w1"},
			Worker: &model.Worker{
				ID:       "w1",
				Declared: model.Attributes{"country": model.Str("jp"), "age": model.Num(33)},
				Computed: model.Attributes{"acceptance_ratio": model.Num(0.875)},
				Skills:   model.SkillVector{true, false, true},
			},
		},
		{
			Change: Change{Version: 2, Op: OpUpdate, Entity: EntityWorker, Worker: "w2"},
			Worker: &model.Worker{ID: "w2", Skills: model.SkillVector{false, false, false}},
		},
		{
			Change:    Change{Version: 3, Op: OpInsert, Entity: EntityRequester, Requester: "r1"},
			Requester: &model.Requester{ID: "r1", Name: "Requester One"},
		},
		{
			Change: Change{Version: 4, Op: OpInsert, Entity: EntityTask, Task: "t1", Requester: "r1"},
			Task: &model.Task{
				ID: "t1", Requester: "r1", Skills: model.SkillVector{false, true, false},
				Reward: 2.5, Quota: 3, Published: 5, Title: "label images",
			},
		},
		{
			Change: Change{
				Version: 5, Op: OpInsert, Entity: EntityContribution,
				Contribution: "c1", Task: "t1", Worker: "w1",
			},
			Contribution: &model.Contribution{
				ID: "c1", Task: "t1", Worker: "w1",
				Text: "an answer", Quality: 0.75, Accepted: true, Paid: 1.25, SubmittedAt: 42,
			},
		},
		{
			Change: Change{
				Version: 6, Op: OpUpdate, Entity: EntityContribution,
				Contribution: "c2", Task: "t1", Worker: "w2",
			},
			Contribution: &model.Contribution{
				ID: "c2", Task: "t1", Worker: "w2",
				Ranking: []string{"a", "b", "c"}, Quality: 0.25, SubmittedAt: -1,
			},
		},
	}
	for _, m := range muts {
		payload := encodeMutation(nil, m)
		got, err := decodeMutation(m.Change.Version, payload)
		if err != nil {
			t.Fatalf("decode v%d: %v", m.Change.Version, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip v%d:\n got %#v\nwant %#v", m.Change.Version, got, m)
		}
		// Truncated payloads must degrade to an error, never panic. (A rare
		// prefix can happen to parse as a complete shorter record — the WAL
		// frame CRC, not the codec, is what rules that out in practice.)
		for cut := 0; cut < len(payload); cut++ {
			_, _ = decodeMutation(m.Change.Version, payload[:cut])
		}
	}
}
