package store

import (
	"fmt"
	"testing"
)

// TestMaskRoutingMatchesModulo pins the power-of-two fast path to the
// modulo routing it replaces: h % n == h & (n-1) whenever n is a power of
// two, so the mask must never move an entity to a different shard.
func TestMaskRoutingMatchesModulo(t *testing.T) {
	u := testUniverse()
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		s := NewSharded(u, n)
		if !s.table().masked {
			t.Fatalf("shards=%d: mask fast path not enabled", n)
		}
		for i := 0; i < 2000; i++ {
			id := fmt.Sprintf("entity-%d-%d", n, i)
			want := int(fnv64a(id) % uint64(n))
			if got := s.shardIndex(id); got != want {
				t.Fatalf("shards=%d id=%s: mask route %d, modulo route %d", n, id, got, want)
			}
		}
	}
	for _, n := range []int{3, 5, 6, 7, 12, 13} {
		if s := NewSharded(u, n); s.table().masked {
			t.Fatalf("shards=%d: mask fast path wrongly enabled", n)
		}
	}
}

// routeSink defeats dead-code elimination in the routing benchmarks.
var routeSink int

// BenchmarkShardRouteModulo measures id routing through the generic
// modulo path (13 shards — not a power of two).
func BenchmarkShardRouteModulo(b *testing.B) {
	s := NewSharded(testUniverse(), 13)
	ids := benchIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routeSink = s.shardIndex(ids[i%len(ids)])
	}
}

// BenchmarkShardRouteMask measures the same routing through the
// power-of-two mask fast path (16 shards).
func BenchmarkShardRouteMask(b *testing.B) {
	s := NewSharded(testUniverse(), 16)
	ids := benchIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routeSink = s.shardIndex(ids[i%len(ids)])
	}
}

func benchIDs() []string {
	ids := make([]string, 1024)
	for i := range ids {
		ids[i] = fmt.Sprintf("worker-%06d", i)
	}
	return ids
}
