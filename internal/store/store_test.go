package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
)

func testUniverse() *model.Universe {
	return model.MustUniverse("go", "sql", "nlp")
}

func seeded(t *testing.T) *Store {
	t.Helper()
	u := testUniverse()
	s := New(u)
	if err := s.PutRequester(&model.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutWorker(&model.Worker{ID: "w1", Skills: u.MustVector("go", "sql")}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutWorker(&model.Worker{ID: "w2", Skills: u.MustVector("nlp")}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTask(&model.Task{ID: "t1", Requester: "r1", Skills: u.MustVector("go"), Reward: 1}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutAndGetWorker(t *testing.T) {
	s := seeded(t)
	w, err := s.Worker("w1")
	if err != nil {
		t.Fatal(err)
	}
	if w.ID != "w1" || !w.Skills[0] {
		t.Fatalf("worker = %+v", w)
	}
	if _, err := s.Worker("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing worker error = %v", err)
	}
}

func TestPutWorkerDuplicate(t *testing.T) {
	s := seeded(t)
	err := s.PutWorker(&model.Worker{ID: "w1", Skills: testUniverse().MustVector()})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate error = %v", err)
	}
}

func TestPutWorkerInvalid(t *testing.T) {
	s := seeded(t)
	err := s.PutWorker(&model.Worker{ID: "", Skills: testUniverse().MustVector()})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("invalid error = %v", err)
	}
}

func TestStoreClonesOnWrite(t *testing.T) {
	u := testUniverse()
	s := New(u)
	w := &model.Worker{ID: "w1", Skills: u.MustVector("go"), Computed: model.Attributes{"x": model.Num(1)}}
	if err := s.PutWorker(w); err != nil {
		t.Fatal(err)
	}
	w.Computed["x"] = model.Num(99)
	w.Skills[0] = false
	got, _ := s.Worker("w1")
	if got.Computed["x"].Num != 1 || !got.Skills[0] {
		t.Fatal("store shares storage with caller")
	}
}

func TestStoreClonesOnRead(t *testing.T) {
	s := seeded(t)
	a, _ := s.Worker("w1")
	a.Skills[0] = false
	b, _ := s.Worker("w1")
	if !b.Skills[0] {
		t.Fatal("read result shares storage with store")
	}
}

func TestUpdateWorkerReindexes(t *testing.T) {
	s := seeded(t)
	u := s.Universe()
	w, _ := s.Worker("w1")
	w.Skills = u.MustVector("nlp")
	if err := s.UpdateWorker(w); err != nil {
		t.Fatal(err)
	}
	goIdx, _ := u.Index("go")
	nlpIdx, _ := u.Index("nlp")
	if ids := s.WorkersWithSkill(goIdx); len(ids) != 0 {
		t.Fatalf("stale index entry: %v", ids)
	}
	ids := s.WorkersWithSkill(nlpIdx)
	if len(ids) != 2 {
		t.Fatalf("nlp workers = %v", ids)
	}
}

func TestUpdateWorkerNotFound(t *testing.T) {
	s := seeded(t)
	err := s.UpdateWorker(&model.Worker{ID: "ghost", Skills: testUniverse().MustVector()})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestWorkersSorted(t *testing.T) {
	s := seeded(t)
	ws := s.Workers()
	if len(ws) != 2 || ws[0].ID != "w1" || ws[1].ID != "w2" {
		t.Fatalf("workers = %v", ws)
	}
	if s.WorkerCount() != 2 {
		t.Fatalf("count = %d", s.WorkerCount())
	}
}

func TestTaskRequiresRequester(t *testing.T) {
	u := testUniverse()
	s := New(u)
	err := s.PutTask(&model.Task{ID: "t", Requester: "ghost", Skills: u.MustVector()})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("orphan task error = %v", err)
	}
}

func TestTasksByRequesterAndSkill(t *testing.T) {
	s := seeded(t)
	u := s.Universe()
	if err := s.PutTask(&model.Task{ID: "t2", Requester: "r1", Skills: u.MustVector("go", "nlp")}); err != nil {
		t.Fatal(err)
	}
	if ids := s.TasksByRequester("r1"); len(ids) != 2 {
		t.Fatalf("tasks by requester = %v", ids)
	}
	goIdx, _ := u.Index("go")
	if ids := s.TasksWithSkill(goIdx); len(ids) != 2 {
		t.Fatalf("tasks with go = %v", ids)
	}
	nlpIdx, _ := u.Index("nlp")
	if ids := s.TasksWithSkill(nlpIdx); len(ids) != 1 || ids[0] != "t2" {
		t.Fatalf("tasks with nlp = %v", ids)
	}
}

func TestContributionReferentialIntegrity(t *testing.T) {
	s := seeded(t)
	base := model.Contribution{ID: "c1", Task: "t1", Worker: "w1", Quality: 0.5}
	ghostTask := base
	ghostTask.Task = "ghost"
	if err := s.PutContribution(&ghostTask); !errors.Is(err, ErrNotFound) {
		t.Errorf("ghost task error = %v", err)
	}
	ghostWorker := base
	ghostWorker.Worker = "ghost"
	if err := s.PutContribution(&ghostWorker); !errors.Is(err, ErrNotFound) {
		t.Errorf("ghost worker error = %v", err)
	}
	if err := s.PutContribution(&base); err != nil {
		t.Fatal(err)
	}
	if err := s.PutContribution(&base); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate error = %v", err)
	}
}

func TestContributionsOrderedBySubmission(t *testing.T) {
	s := seeded(t)
	for i, at := range []int64{5, 1, 3} {
		c := &model.Contribution{
			ID: model.ContributionID(fmt.Sprintf("c%d", i)), Task: "t1", Worker: "w1",
			Quality: 0.5, SubmittedAt: at,
		}
		if err := s.PutContribution(c); err != nil {
			t.Fatal(err)
		}
	}
	cs := s.ContributionsByTask("t1")
	if len(cs) != 3 || cs[0].SubmittedAt != 1 || cs[2].SubmittedAt != 5 {
		t.Fatalf("order = %v,%v,%v", cs[0].SubmittedAt, cs[1].SubmittedAt, cs[2].SubmittedAt)
	}
	byW := s.ContributionsByWorker("w1")
	if len(byW) != 3 {
		t.Fatalf("by worker = %d", len(byW))
	}
}

func TestUpdateContribution(t *testing.T) {
	s := seeded(t)
	c := &model.Contribution{ID: "c1", Task: "t1", Worker: "w1", Quality: 0.5}
	if err := s.PutContribution(c); err != nil {
		t.Fatal(err)
	}
	c.Paid = 2.5
	c.Accepted = true
	if err := s.UpdateContribution(c); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Contribution("c1")
	if got.Paid != 2.5 || !got.Accepted {
		t.Fatalf("update lost: %+v", got)
	}
	// Task/worker are immutable.
	c.Worker = "w2"
	if err := s.UpdateContribution(c); !errors.Is(err, ErrInvalid) {
		t.Errorf("immutable field change error = %v", err)
	}
}

func TestVersionBumps(t *testing.T) {
	s := seeded(t)
	v := s.Version()
	if err := s.PutRequester(&model.Requester{ID: "r2"}); err != nil {
		t.Fatal(err)
	}
	if s.Version() != v+1 {
		t.Fatalf("version did not bump: %d -> %d", v, s.Version())
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	u := testUniverse()
	s := New(u)
	if err := s.PutRequester(&model.Requester{ID: "r1"}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := model.WorkerID(fmt.Sprintf("w-%d-%d", g, i))
				if err := s.PutWorker(&model.Worker{ID: id, Skills: u.MustVector("go")}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Workers()
				s.WorkerCount()
			}
		}()
	}
	wg.Wait()
	if s.WorkerCount() != 200 {
		t.Fatalf("workers = %d, want 200", s.WorkerCount())
	}
}
