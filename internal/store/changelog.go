package store

import "repro/internal/model"

// Op enumerates the mutation kinds recorded in the changelog.
type Op uint8

// Mutation kinds.
const (
	OpInsert Op = iota
	OpUpdate
)

// String renders the op for logs.
func (o Op) String() string {
	if o == OpUpdate {
		return "update"
	}
	return "insert"
}

// Entity enumerates the store's tables.
type Entity uint8

// Entity tables.
const (
	EntityWorker Entity = iota
	EntityRequester
	EntityTask
	EntityContribution
)

// String renders the entity kind for logs.
func (e Entity) String() string {
	switch e {
	case EntityWorker:
		return "worker"
	case EntityRequester:
		return "requester"
	case EntityTask:
		return "task"
	case EntityContribution:
		return "contribution"
	default:
		return "unknown"
	}
}

// Change is one mutation record in the store's changelog. Every successful
// mutation appends exactly one Change — to the changelog ring of the shard
// owning the mutated entity — whose Version is the value of the global
// sequencer after the mutation. Versions are globally dense: merging every
// shard's log yields consecutive integers, which is how ChangesSince tells
// a complete suffix from one still missing in-flight appends. Id fields
// beyond the mutated entity's own are the touched neighbours: a
// contribution change carries its task and worker, a task change its
// requester. Incremental consumers (internal/audit) use them to compute
// dirty sets without re-reading the entity.
type Change struct {
	Version uint64
	// Epoch is the route-table generation that routed this mutation (see
	// routetable.go); it records which shard layout the change was
	// committed under. Routing metadata only: two stores reaching the
	// same state through different reshard histories carry different
	// epochs on otherwise identical changes.
	Epoch  uint64
	Op     Op
	Entity Entity

	Worker       model.WorkerID
	Requester    model.RequesterID
	Task         model.TaskID
	Contribution model.ContributionID
}

// changePrimaryID returns the mutated entity's own id — the shard-routing
// key of the change.
func changePrimaryID(c Change) string {
	switch c.Entity {
	case EntityWorker:
		return string(c.Worker)
	case EntityRequester:
		return string(c.Requester)
	case EntityTask:
		return string(c.Task)
	default:
		return string(c.Contribution)
	}
}

// DefaultChangelogCap is the number of mutation records retained per shard
// by a new store. At ~100 bytes per record the default bounds changelog
// memory to a few megabytes per shard while covering far more history than
// any audit cadence needs; readers that fall further behind get a
// truncation signal and must fall back to a full scan.
const DefaultChangelogCap = 1 << 16

// SetChangelogCap resizes every shard's retention window to at most n
// records (n < 1 disables retention entirely: every ChangesSince for a past
// version reports truncation). Existing records beyond the new cap are
// dropped oldest-first per shard; shards created by a later Reshard inherit
// the new cap.
func (s *Store) SetChangelogCap(n int) {
	s.clogCap.Store(int64(n))
	_, _, shs := s.view()
	for _, sh := range shs {
		sh.setChangelogCap(n)
	}
}

// ChangesSince returns every mutation recorded after version v, merged
// across shards into one version-ordered, gap-free stream, oldest first.
// The boolean reports completeness: false means at least one shard's ring
// has dropped a record past v (the caller missed changes and must fall back
// to a full scan). A v at or beyond the current version returns (nil, true).
//
// Under concurrent mutation the merged suffix can transiently miss an
// allocated-but-not-yet-appended version; the result is trimmed at the
// first such gap, so what is returned is always a dense prefix and the
// trimmed-off tail is re-delivered by the next call. Shard-local consumers
// that track one cursor per shard (internal/audit) should prefer
// ShardChangesSince, which needs no cross-shard merge.
func (s *Store) ChangesSince(v uint64) ([]Change, bool) {
	shs, release := s.rlockView()
	per := make([][]Change, len(shs))
	for i, sh := range shs {
		// A retired shard's records were merged into the successor
		// epoch's rings at handoff (truncation signal included), so it
		// contributes nothing here.
		if sh.retired {
			continue
		}
		if sh.ring.droppedMax > v {
			release()
			return nil, false
		}
		per[i] = sh.changesAfter(v)
	}
	release()
	merged := mergeSorted(per, func(a, b Change) bool { return a.Version < b.Version })
	for i := range merged {
		if merged[i].Version != v+1+uint64(i) {
			merged = merged[:i]
			break
		}
	}
	if len(merged) == 0 {
		return nil, true
	}
	return merged, true
}

// ShardChangesSince returns the changes recorded in one shard after version
// v, oldest first — the per-shard cursor API. Versions within the result
// are strictly increasing but not consecutive (the global sequencer
// interleaves shards). The boolean reports completeness for this shard:
// false means its ring dropped a record past v, or the index no longer
// names a live shard — an out-of-range index or a shard retired by a
// concurrent Reshard reads as total truncation, pushing cursor-based
// consumers onto their rescan/remap path instead of panicking.
func (s *Store) ShardChangesSince(shard int, v uint64) ([]Change, bool) {
	rt := s.table()
	if shard < 0 || shard >= rt.width() {
		return nil, false
	}
	sh := rt.shards[shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.retired || sh.ring.droppedMax > v {
		return nil, false
	}
	return sh.changesAfter(v), true
}

// ShardVersion returns the shard's watermark: the highest version recorded
// in it (0 for an out-of-range index). Every mutation owned by the shard
// with a version at or below the watermark is visible to reads issued
// after the call.
func (s *Store) ShardVersion(shard int) uint64 {
	rt := s.table()
	if shard < 0 || shard >= rt.width() {
		return 0
	}
	sh := rt.shards[shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.applied
}

// WorkerRevision returns the store version at which the worker last mutated
// (0 for unknown ids). Revisions key memoized pairwise-similarity caches:
// two audits seeing equal (id, revision) pairs are guaranteed to see equal
// entity values.
func (s *Store) WorkerRevision(id model.WorkerID) uint64 {
	sh := s.rlockOwner(string(id))
	defer sh.mu.RUnlock()
	return sh.workerRev[id]
}

// TaskRevision returns the store version at which the task was inserted
// (0 for unknown ids).
func (s *Store) TaskRevision(id model.TaskID) uint64 {
	sh := s.rlockOwner(string(id))
	defer sh.mu.RUnlock()
	return sh.taskRev[id]
}

// ContributionRevision returns the store version at which the contribution
// last mutated (0 for unknown ids).
func (s *Store) ContributionRevision(id model.ContributionID) uint64 {
	sh := s.rlockOwner(string(id))
	defer sh.mu.RUnlock()
	return sh.contribRev[id]
}
