package store

import "repro/internal/model"

// Op enumerates the mutation kinds recorded in the changelog.
type Op uint8

// Mutation kinds.
const (
	OpInsert Op = iota
	OpUpdate
)

// String renders the op for logs.
func (o Op) String() string {
	if o == OpUpdate {
		return "update"
	}
	return "insert"
}

// Entity enumerates the store's tables.
type Entity uint8

// Entity tables.
const (
	EntityWorker Entity = iota
	EntityRequester
	EntityTask
	EntityContribution
)

// String renders the entity kind for logs.
func (e Entity) String() string {
	switch e {
	case EntityWorker:
		return "worker"
	case EntityRequester:
		return "requester"
	case EntityTask:
		return "task"
	case EntityContribution:
		return "contribution"
	default:
		return "unknown"
	}
}

// Change is one mutation record in the store's changelog. Every successful
// mutation appends exactly one Change whose Version equals the store version
// after the mutation, so versions of consecutive changes are consecutive
// integers — ChangesSince can tell a complete suffix from a truncated one by
// counting. Id fields beyond the mutated entity's own are the touched
// neighbours: a contribution change carries its task and worker, a task
// change its requester. Incremental consumers (internal/audit) use them to
// compute dirty sets without re-reading the entity.
type Change struct {
	Version uint64
	Op      Op
	Entity  Entity

	Worker       model.WorkerID
	Requester    model.RequesterID
	Task         model.TaskID
	Contribution model.ContributionID
}

// DefaultChangelogCap is the number of mutation records retained by a new
// store. At ~100 bytes per record the default bounds changelog memory to a
// few megabytes while covering far more history than any audit cadence
// needs; readers that fall further behind get a truncation signal and must
// fall back to a full scan.
const DefaultChangelogCap = 1 << 16

// SetChangelogCap resizes the changelog's retention window to at most n
// records (n < 1 disables retention entirely: every ChangesSince for a past
// version reports truncation). Existing records beyond the new cap are
// dropped oldest-first.
func (s *Store) SetChangelogCap(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	// Re-pack the retained suffix into a fresh ring.
	keep := s.clogLen
	if keep > n {
		keep = n
	}
	buf := make([]Change, 0, keep)
	for i := s.clogLen - keep; i < s.clogLen; i++ {
		buf = append(buf, s.clog[(s.clogStart+i)%len(s.clog)])
	}
	s.clog = buf
	s.clogStart = 0
	s.clogLen = keep
	s.clogCap = n
}

// record appends a change under the already-held write lock.
func (s *Store) record(c Change) {
	if s.clogCap < 1 {
		return
	}
	if s.clogLen < s.clogCap {
		if len(s.clog) < s.clogCap {
			s.clog = append(s.clog, c)
		} else {
			s.clog[(s.clogStart+s.clogLen)%len(s.clog)] = c
		}
		s.clogLen++
		return
	}
	// Full ring: overwrite the oldest record.
	s.clog[s.clogStart] = c
	s.clogStart = (s.clogStart + 1) % len(s.clog)
}

// ChangesSince returns every mutation recorded after version v, oldest
// first. The boolean reports completeness: false means the changelog has
// been truncated past v (the caller missed changes and must fall back to a
// full scan). A v at or beyond the current version returns (nil, true).
func (s *Store) ChangesSince(v uint64) ([]Change, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v >= s.version {
		return nil, true
	}
	need := s.version - v
	if uint64(s.clogLen) < need {
		return nil, false
	}
	skip := s.clogLen - int(need)
	out := make([]Change, 0, need)
	for i := skip; i < s.clogLen; i++ {
		out = append(out, s.clog[(s.clogStart+i)%len(s.clog)])
	}
	return out, true
}

// WorkerRevision returns the store version at which the worker last mutated
// (0 for unknown ids). Revisions key memoized pairwise-similarity caches:
// two audits seeing equal (id, revision) pairs are guaranteed to see equal
// entity values.
func (s *Store) WorkerRevision(id model.WorkerID) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.workerRev[id]
}

// TaskRevision returns the store version at which the task was inserted
// (0 for unknown ids).
func (s *Store) TaskRevision(id model.TaskID) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.taskRev[id]
}

// ContributionRevision returns the store version at which the contribution
// last mutated (0 for unknown ids).
func (s *Store) ContributionRevision(id model.ContributionID) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.contribRev[id]
}
