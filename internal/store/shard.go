package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/wal"
)

// shard is one hash partition of the store: a full set of entity tables,
// secondary indexes, revision maps, and a changelog ring, guarded by its own
// RWMutex. Entities are assigned to shards by FNV-1a hash of their primary
// id, so each mutation touches exactly one shard's lock (plus read-only
// existence probes of referenced shards) and mutation throughput scales with
// the shard count instead of serialising on a single store-wide mutex.
//
// Index invariants: workersBySkill / tasksBySkill / tasksByReq entries are
// sorted ascending by id; contribsByTask / contribsByWorker entries are
// sorted by (SubmittedAt, ID). Sorting is maintained at insert time so the
// hot read paths merge pre-sorted runs instead of re-sorting per call.
// Every index lists only entities owned by this shard; store-level readers
// merge across shards.
//
// Every mutation is recorded through two LogSinks under the shard's write
// lock: the always-present in-memory changelog ring (what ChangesSince and
// the incremental auditors read) and, on durable stores, a write-ahead sink
// teeing the same stream — change plus entity post-image — to segmented
// files (internal/wal). Appending under the lock is what keeps the on-disk
// record order identical to the version order.
type shard struct {
	mu sync.RWMutex

	// epoch is the route-table generation this shard belongs to; changes
	// recorded here are stamped with it. retired marks a shard whose
	// contents were handed off to the next epoch's layout by Reshard:
	// routing falls through it (see lockOwner) and cross-shard readers
	// skip it. Both are written only under mu.
	epoch   uint64
	retired bool

	workers    map[model.WorkerID]*model.Worker
	requesters map[model.RequesterID]*model.Requester
	tasks      map[model.TaskID]*model.Task
	contribs   map[model.ContributionID]*model.Contribution

	workersBySkill   [][]model.WorkerID
	tasksBySkill     [][]model.TaskID
	tasksByReq       map[model.RequesterID][]model.TaskID
	contribsByTask   map[model.TaskID][]model.ContributionID
	contribsByWorker map[model.WorkerID][]model.ContributionID

	// Per-entity revisions: the global version at which each entity owned
	// by this shard last mutated.
	workerRev  map[model.WorkerID]uint64
	taskRev    map[model.TaskID]uint64
	contribRev map[model.ContributionID]uint64

	// applied is the highest global version recorded in this shard — the
	// shard's watermark. Every mutation with a version at or below applied
	// is fully visible to readers that acquire mu after the watermark was
	// read.
	applied uint64

	// ring is the in-memory changelog sink; wal, when non-nil, is the
	// durable write-ahead sink the same stream is teed into.
	ring changeRing
	wal  LogSink
}

func newShard(skills, clogCap int, epoch uint64) *shard {
	return &shard{
		epoch:            epoch,
		workers:          make(map[model.WorkerID]*model.Worker),
		requesters:       make(map[model.RequesterID]*model.Requester),
		tasks:            make(map[model.TaskID]*model.Task),
		contribs:         make(map[model.ContributionID]*model.Contribution),
		workersBySkill:   make([][]model.WorkerID, skills),
		tasksBySkill:     make([][]model.TaskID, skills),
		tasksByReq:       make(map[model.RequesterID][]model.TaskID),
		contribsByTask:   make(map[model.TaskID][]model.ContributionID),
		contribsByWorker: make(map[model.WorkerID][]model.ContributionID),
		workerRev:        make(map[model.WorkerID]uint64),
		taskRev:          make(map[model.TaskID]uint64),
		contribRev:       make(map[model.ContributionID]uint64),
		ring:             changeRing{cap: clogCap},
	}
}

// record tees a mutation into the shard's sinks under the already-held
// write lock and advances the shard watermark. The in-memory state is
// already applied when record runs; a WAL failure therefore leaves the
// change live in memory but possibly not on disk, and the returned error
// tells the mutator durability was not achieved. The returned ticket is
// the durable sink's group-commit ack: mutators Wait on it after
// releasing the shard lock, so the covering fsync never runs under the
// lock.
func (sh *shard) record(m Mutation) (wal.Commit, error) {
	sh.applied = m.Change.Version
	sh.ring.record(m.Change)
	if sh.wal != nil {
		ack, err := sh.wal.Append(m)
		if err != nil {
			return wal.Commit{}, fmt.Errorf("store: wal append: %w", err)
		}
		return ack, nil
	}
	return wal.Commit{}, nil
}

// setChangelogCap resizes this shard's retention window, dropping the oldest
// retained records when shrinking.
func (sh *shard) setChangelogCap(n int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.ring.setCap(n)
}

// changesAfter copies this shard's retained records with Version > v, oldest
// first, under the already-held read lock.
func (sh *shard) changesAfter(v uint64) []Change {
	return sh.ring.changesAfter(v)
}

// fnv64a hashes an id for shard routing.
func fnv64a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// insertSortedID inserts id into an ascending id slice, preallocating only
// the single appended slot (no re-sort).
func insertSortedID[T ~string](ids []T, id T) []T {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	ids = append(ids, id)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// removeSortedID removes id from an ascending id slice in place via binary
// search (the old linear-scan removeWorkerID).
func removeSortedID[T ~string](ids []T, id T) []T {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	if i < len(ids) && ids[i] == id {
		return append(ids[:i], ids[i+1:]...)
	}
	return ids
}

// contribPos finds the position of the (at, id) key in a contribution index
// sorted by (SubmittedAt, ID). contribs must hold every listed id.
func contribPos(ids []model.ContributionID, contribs map[model.ContributionID]*model.Contribution, at int64, id model.ContributionID) int {
	return sort.Search(len(ids), func(k int) bool {
		c := contribs[ids[k]]
		if c.SubmittedAt != at {
			return c.SubmittedAt > at
		}
		return ids[k] >= id
	})
}

// insertContribID inserts id into a (SubmittedAt, ID)-sorted index. The
// contribution must already be present in contribs.
func insertContribID(ids []model.ContributionID, contribs map[model.ContributionID]*model.Contribution, id model.ContributionID) []model.ContributionID {
	c := contribs[id]
	i := contribPos(ids, contribs, c.SubmittedAt, id)
	ids = append(ids, id)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// removeContribID removes id (which sorted at submittedAt when inserted)
// from a (SubmittedAt, ID)-sorted index.
func removeContribID(ids []model.ContributionID, contribs map[model.ContributionID]*model.Contribution, at int64, id model.ContributionID) []model.ContributionID {
	i := contribPos(ids, contribs, at, id)
	if i < len(ids) && ids[i] == id {
		return append(ids[:i], ids[i+1:]...)
	}
	return ids
}

// mergeSorted k-way merges pre-sorted runs into one sorted slice. The output
// is preallocated to the total length; with a single run the run is returned
// as-is (callers own the inputs).
func mergeSorted[T any](lists [][]T, less func(a, b T) bool) []T {
	nonEmpty := lists[:0:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			nonEmpty = append(nonEmpty, l)
			total += len(l)
		}
	}
	switch len(nonEmpty) {
	case 0:
		return nil
	case 1:
		return nonEmpty[0]
	}
	out := make([]T, 0, total)
	idx := make([]int, len(nonEmpty))
	for len(out) < total {
		best := -1
		for li, l := range nonEmpty {
			if idx[li] >= len(l) {
				continue
			}
			if best < 0 || less(l[idx[li]], nonEmpty[best][idx[best]]) {
				best = li
			}
		}
		out = append(out, nonEmpty[best][idx[best]])
		idx[best]++
	}
	return out
}
