package store

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

// applyMutationStream drives a deterministic mixed mutation sequence —
// inserts and updates across all four tables — against the store. The same
// seed produces the same sequence, so two stores differing only in shard
// count receive identical mutations in identical order.
func applyMutationStream(t *testing.T, s *Store, seed uint64, n int) {
	t.Helper()
	u := s.Universe()
	rng := stats.NewRNG(seed)
	reqs := []model.RequesterID{"r1", "r2", "r3"}
	for _, r := range reqs {
		if err := s.PutRequester(&model.Requester{ID: r}); err != nil {
			t.Fatal(err)
		}
	}
	skills := [][]string{{"go"}, {"sql"}, {"go", "nlp"}, {"nlp", "sql"}}
	var wn, tn, cn int
	addWorker := func() {
		wn++
		w := &model.Worker{
			ID:     model.WorkerID(fmt.Sprintf("w%05d", wn)),
			Skills: u.MustVector(skills[rng.Intn(len(skills))]...),
		}
		if err := s.PutWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	addTask := func() {
		tn++
		task := &model.Task{
			ID:        model.TaskID(fmt.Sprintf("t%05d", tn)),
			Requester: reqs[rng.Intn(len(reqs))],
			Skills:    u.MustVector(skills[rng.Intn(len(skills))]...),
			Reward:    1 + rng.Float64(),
		}
		if err := s.PutTask(task); err != nil {
			t.Fatal(err)
		}
	}
	addWorker()
	addTask()
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			addWorker()
		case 1:
			addTask()
		case 2:
			cn++
			c := &model.Contribution{
				ID:          model.ContributionID(fmt.Sprintf("c%05d", cn)),
				Task:        model.TaskID(fmt.Sprintf("t%05d", 1+rng.Intn(tn))),
				Worker:      model.WorkerID(fmt.Sprintf("w%05d", 1+rng.Intn(wn))),
				Quality:     rng.Float64(),
				SubmittedAt: int64(rng.Intn(50)),
			}
			if err := s.PutContribution(c); err != nil {
				t.Fatal(err)
			}
		case 3:
			w, err := s.Worker(model.WorkerID(fmt.Sprintf("w%05d", 1+rng.Intn(wn))))
			if err != nil {
				t.Fatal(err)
			}
			w.Skills = u.MustVector(skills[rng.Intn(len(skills))]...)
			if err := s.UpdateWorker(w); err != nil {
				t.Fatal(err)
			}
		case 4:
			if cn == 0 {
				addWorker()
				continue
			}
			c, err := s.Contribution(model.ContributionID(fmt.Sprintf("c%05d", 1+rng.Intn(cn))))
			if err != nil {
				t.Fatal(err)
			}
			c.Paid = rng.Float64()
			c.Accepted = true
			if err := s.UpdateContribution(c); err != nil {
				t.Fatal(err)
			}
		case 5:
			addTask()
		}
	}
}

// TestShardCountDeterminism pins the tentpole's core contract: a store is
// semantically shard-count-invariant. The same sequential mutation stream
// must produce byte-identical entity tables, index views, and — because
// sequential mutation allocates versions in call order — an identical
// version-ordered merged changelog at every shard count, including the
// single-lock layout.
func TestShardCountDeterminism(t *testing.T) {
	u := model.MustUniverse("go", "sql", "nlp")
	build := func(shards int) *Store {
		s := NewSharded(u, shards)
		applyMutationStream(t, s, 1234, 400)
		return s
	}
	base := build(1)
	baseChanges, ok := base.ChangesSince(0)
	if !ok {
		t.Fatal("baseline changelog truncated")
	}
	for _, shards := range []int{2, 3, 8, 13} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := build(shards)
			if s.ShardCount() != shards {
				t.Fatalf("ShardCount = %d", s.ShardCount())
			}
			if !reflect.DeepEqual(s.Workers(), base.Workers()) {
				t.Error("workers differ from single-shard store")
			}
			if !reflect.DeepEqual(s.Tasks(), base.Tasks()) {
				t.Error("tasks differ from single-shard store")
			}
			if !reflect.DeepEqual(s.Requesters(), base.Requesters()) {
				t.Error("requesters differ from single-shard store")
			}
			if !reflect.DeepEqual(s.Contributions(), base.Contributions()) {
				t.Error("contributions differ from single-shard store")
			}
			for skill := 0; skill < u.Size(); skill++ {
				if !reflect.DeepEqual(s.WorkersWithSkill(skill), base.WorkersWithSkill(skill)) {
					t.Errorf("skill %d worker index differs", skill)
				}
				if !reflect.DeepEqual(s.TasksWithSkill(skill), base.TasksWithSkill(skill)) {
					t.Errorf("skill %d task index differs", skill)
				}
			}
			for _, task := range base.Tasks() {
				if !reflect.DeepEqual(s.ContributionsByTask(task.ID), base.ContributionsByTask(task.ID)) {
					t.Errorf("contributions of %s differ", task.ID)
				}
			}
			if s.Version() != base.Version() {
				t.Fatalf("version = %d, want %d", s.Version(), base.Version())
			}
			changes, ok := s.ChangesSince(0)
			if !ok {
				t.Fatal("merged changelog truncated")
			}
			if !reflect.DeepEqual(changes, baseChanges) {
				t.Fatalf("merged changelog differs: %d vs %d records", len(changes), len(baseChanges))
			}
			// Snapshot round-trips across shard counts too.
			if !reflect.DeepEqual(s.Snapshot(), base.Snapshot()) {
				t.Error("snapshots differ")
			}
		})
	}
}

// TestBulkMutationsMatchSequential pins that the shard-parallel bulk paths
// produce the same final state as per-entity calls (modulo version
// assignment order, which concurrent fan-out does not promise).
func TestBulkMutationsMatchSequential(t *testing.T) {
	u := model.MustUniverse("go", "sql")
	mkWorkers := func(n int) []*model.Worker {
		ws := make([]*model.Worker, n)
		for i := range ws {
			ws[i] = &model.Worker{
				ID:     model.WorkerID(fmt.Sprintf("w%04d", i)),
				Skills: u.MustVector([]string{"go", "sql"}[i%2]),
			}
		}
		return ws
	}
	seqSt := NewSharded(u, 4)
	bulkSt := NewSharded(u, 4)
	ws := mkWorkers(200)
	for _, w := range ws {
		if err := seqSt.PutWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := bulkSt.BulkPutWorkers(ws); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqSt.Workers(), bulkSt.Workers()) {
		t.Fatal("bulk insert state differs from sequential")
	}
	if bulkSt.Version() != uint64(len(ws)) {
		t.Fatalf("bulk version = %d, want %d", bulkSt.Version(), len(ws))
	}
	// Duplicate detection still works through the bulk path.
	if err := bulkSt.BulkPutWorkers(ws[:3]); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("bulk duplicate error = %v", err)
	}
	// Bulk updates reindex exactly like sequential ones.
	for _, w := range ws {
		w.Skills = u.MustVector("go")
	}
	if err := bulkSt.BulkUpdateWorkers(ws); err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if err := seqSt.UpdateWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	goIdx, _ := u.Index("go")
	sqlIdx, _ := u.Index("sql")
	if !reflect.DeepEqual(seqSt.WorkersWithSkill(goIdx), bulkSt.WorkersWithSkill(goIdx)) {
		t.Fatal("bulk update left a different skill index")
	}
	if ids := bulkSt.WorkersWithSkill(sqlIdx); len(ids) != 0 {
		t.Fatalf("stale sql index entries after bulk update: %v", ids)
	}
	// Referential checks hold through bulk task inserts.
	if err := bulkSt.BulkPutTasks([]*model.Task{
		{ID: "t1", Requester: "ghost", Skills: u.MustVector("go")},
	}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("orphan bulk task error = %v", err)
	}
}

// TestMergedChangesGapFreeUnderConcurrentMutators is the -race stress test
// for the merged changelog contract: while writers mutate across shards, a
// cursor-driven reader must only ever observe a version-ordered, gap-free
// stream, and once the writers stop it must drain to exactly the final
// version.
func TestMergedChangesGapFreeUnderConcurrentMutators(t *testing.T) {
	u := model.MustUniverse("go", "sql")
	s := NewSharded(u, 8)
	const writers = 6
	const perWriter = 300

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				w := &model.Worker{
					ID:     model.WorkerID(fmt.Sprintf("w%d-%04d", g, i)),
					Skills: u.MustVector([]string{"go", "sql"}[i%2]),
				}
				if err := s.PutWorker(w); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if err := s.UpdateWorker(w); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var cursor uint64
	seen := 0
	consume := func() {
		changes, ok := s.ChangesSince(cursor)
		if !ok {
			t.Error("changelog truncated mid-run (cap should cover the whole stream)")
			return
		}
		for i, c := range changes {
			if c.Version != cursor+1+uint64(i) {
				t.Errorf("gap or disorder: change %d has version %d, cursor %d", i, c.Version, cursor)
				return
			}
		}
		if len(changes) > 0 {
			cursor = changes[len(changes)-1].Version
			seen += len(changes)
		}
	}
	for {
		select {
		case <-done:
			// Writers stopped: one final read must drain everything.
			consume()
			want := s.Version()
			if cursor != want || uint64(seen) != want {
				t.Fatalf("drained to version %d (%d changes), want %d", cursor, seen, want)
			}
			return
		default:
			consume()
			if t.Failed() {
				return
			}
		}
	}
}

// workerIDForShard finds an id that hashes to the wanted shard.
func workerIDForShard(t *testing.T, s *Store, shard int, tag int) model.WorkerID {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := model.WorkerID(fmt.Sprintf("w%d-%04d", tag, i))
		if s.WorkerShard(id) == shard {
			return id
		}
	}
	t.Fatal("no id found for shard")
	return ""
}

// TestShardRingOverflowTruncation pins per-shard truncation: when one
// shard's ring overflows, merged reads past its drop point report
// truncation, the untouched shard stays individually complete, and reads
// from beyond the dropped version still succeed.
func TestShardRingOverflowTruncation(t *testing.T) {
	u := model.MustUniverse("go")
	s := NewSharded(u, 2)
	s.SetChangelogCap(4)

	// Land the requester in shard 1 and all workers in shard 0, so shard
	// 0's ring is the only one overflowing.
	var req model.RequesterID
	for i := 0; ; i++ {
		id := model.RequesterID(fmt.Sprintf("r%03d", i))
		if s.RequesterShard(id) == 1 {
			req = id
			break
		}
	}
	if err := s.PutRequester(&model.Requester{ID: req}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		id := workerIDForShard(t, s, 0, i)
		if err := s.PutWorker(&model.Worker{ID: id, Skills: u.MustVector("go")}); err != nil {
			t.Fatal(err)
		}
	}

	// Versions: 1 = requester (shard 1), 2..11 = workers (shard 0).
	// Shard 0 retains versions 8..11 and has dropped up to 7.
	if _, ok := s.ChangesSince(0); ok {
		t.Fatal("expected merged truncation after shard 0 overflow")
	}
	if _, ok := s.ChangesSince(6); ok {
		t.Fatal("expected merged truncation: shard 0 dropped version 7")
	}
	if _, ok := s.ShardChangesSince(0, 6); ok {
		t.Fatal("expected shard 0 truncation at version 6")
	}
	if ch, ok := s.ShardChangesSince(1, 0); !ok || len(ch) != 1 || ch[0].Version != 1 {
		t.Fatalf("shard 1 should be complete from 0: %v, %v", ch, ok)
	}
	changes, ok := s.ChangesSince(7)
	if !ok || len(changes) != 4 {
		t.Fatalf("ChangesSince(7) = %v, %v; want the 4 retained shard-0 changes", changes, ok)
	}
	for i, c := range changes {
		if c.Version != uint64(8+i) {
			t.Errorf("retained change %d: version %d, want %d", i, c.Version, 8+i)
		}
	}
	if v := s.ShardVersion(0); v != 11 {
		t.Errorf("shard 0 watermark = %d, want 11", v)
	}
	if v := s.ShardVersion(1); v != 1 {
		t.Errorf("shard 1 watermark = %d, want 1", v)
	}
}

// TestContributionIndexOrderAfterUpdate pins that the (SubmittedAt, ID)
// index order survives updates that move the sort key — the sorted-at-
// insert replacement for the old per-read sort.
func TestContributionIndexOrderAfterUpdate(t *testing.T) {
	s := seeded(t)
	for i, at := range []int64{7, 2, 5, 2} {
		c := &model.Contribution{
			ID: model.ContributionID(fmt.Sprintf("c%d", i)), Task: "t1", Worker: "w1",
			Quality: 0.5, SubmittedAt: at,
		}
		if err := s.PutContribution(c); err != nil {
			t.Fatal(err)
		}
	}
	c, err := s.Contribution("c0")
	if err != nil {
		t.Fatal(err)
	}
	c.SubmittedAt = 1 // move 7 -> 1: must re-sort to the front
	if err := s.UpdateContribution(c); err != nil {
		t.Fatal(err)
	}
	got := s.ContributionsByTask("t1")
	var prev *model.Contribution
	for _, cc := range got {
		if prev != nil && !contribOrderLess(prev, cc) {
			t.Fatalf("order violated: %s@%d before %s@%d", prev.ID, prev.SubmittedAt, cc.ID, cc.SubmittedAt)
		}
		prev = cc
	}
	if got[0].ID != "c0" || got[0].SubmittedAt != 1 {
		t.Fatalf("moved contribution not first: %v@%d", got[0].ID, got[0].SubmittedAt)
	}
}
