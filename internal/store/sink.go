package store

import (
	"repro/internal/model"
	"repro/internal/wal"
)

// Mutation pairs one changelog record with the post-image of the mutated
// entity — everything a durable sink needs to replay the change on a cold
// store. Exactly one entity pointer is set, matching Change.Entity; the
// pointer aliases the store's own immutable clone (updates swap pointers,
// never mutate in place), so sinks may read it without copying but must
// not modify it.
type Mutation struct {
	Change       Change
	Worker       *model.Worker
	Requester    *model.Requester
	Task         *model.Task
	Contribution *model.Contribution
}

// LogSink consumes a shard's mutation stream in version order. Every shard
// owns one in-memory sink (its changelog ring) and, on durable stores, one
// write-ahead sink teeing the same stream to segmented files. Append is
// called under the owning shard's write lock, so implementations need no
// locking of their own and observe strictly increasing versions.
//
// Append returns a durability ticket: the record is accepted (ordered,
// encoded, queued) when Append returns, and durable when Commit.Wait
// returns. Mutators wait on the ticket after releasing the shard lock —
// append-under-lock, ack-outside-lock — so a group-commit fsync never runs
// under a shard lock. Sinks with nothing to flush (memory rings, ungrouped
// WAL policies) return the zero Commit, whose Wait is an immediate nil.
type LogSink interface {
	Append(m Mutation) (wal.Commit, error)
	// Sync flushes buffered records to stable storage (no-op for memory
	// sinks).
	Sync() error
	// Close releases the sink; Append must not be called afterwards.
	Close() error
}

// changeRing is the in-memory LogSink: the bounded per-shard changelog
// ring that incremental auditors read through ChangesSince. Versions
// within one ring are strictly increasing (appends happen under the shard
// lock) but not consecutive — the global sequencer interleaves shards.
type changeRing struct {
	buf   []Change
	start int
	n     int
	cap   int
	// droppedMax is the highest version ever evicted from this ring (0 if
	// none): the shard-local truncation signal. A reader positioned at
	// version v missed changes iff droppedMax > v.
	droppedMax uint64
}

// Append implements LogSink. Ring appends cannot fail and are immediately
// "durable" (they have no disk to reach).
func (r *changeRing) Append(m Mutation) (wal.Commit, error) {
	r.record(m.Change)
	return wal.Commit{}, nil
}

// Sync implements LogSink (memory rings have nothing to flush).
func (r *changeRing) Sync() error { return nil }

// Close implements LogSink.
func (r *changeRing) Close() error { return nil }

// record appends a change, evicting the oldest when full. With retention
// disabled (cap < 1) every change counts as immediately dropped so
// ChangesSince keeps reporting truncation.
func (r *changeRing) record(c Change) {
	if r.cap < 1 {
		if c.Version > r.droppedMax {
			r.droppedMax = c.Version
		}
		return
	}
	if r.n < r.cap {
		if len(r.buf) < r.cap {
			r.buf = append(r.buf, c)
		} else {
			r.buf[(r.start+r.n)%len(r.buf)] = c
		}
		r.n++
		return
	}
	// Full ring: overwrite the oldest record.
	if old := r.buf[r.start].Version; old > r.droppedMax {
		r.droppedMax = old
	}
	r.buf[r.start] = c
	r.start = (r.start + 1) % len(r.buf)
}

// setCap resizes the retention window, dropping the oldest retained
// records when shrinking.
func (r *changeRing) setCap(n int) {
	if n < 0 {
		n = 0
	}
	keep := r.n
	if keep > n {
		keep = n
	}
	if dropped := r.n - keep; dropped > 0 {
		last := r.buf[(r.start+dropped-1)%len(r.buf)].Version
		if last > r.droppedMax {
			r.droppedMax = last
		}
	}
	buf := make([]Change, 0, keep)
	for i := r.n - keep; i < r.n; i++ {
		buf = append(buf, r.buf[(r.start+i)%len(r.buf)])
	}
	r.buf = buf
	r.start = 0
	r.n = keep
	r.cap = n
}

// merge folds a version-sorted batch of records from another ring into
// this one — the handoff path of Reshard, where a retiring shard's
// retained changelog is redistributed to the successor layout. The merged
// ring keeps the newest cap records; anything evicted, plus the source
// ring's own truncation signal, raises droppedMax so cursor-based readers
// still learn exactly what history is gone.
func (r *changeRing) merge(recs []Change, srcDroppedMax uint64) {
	if srcDroppedMax > r.droppedMax {
		r.droppedMax = srcDroppedMax
	}
	if len(recs) == 0 {
		return
	}
	if r.cap < 1 {
		if v := recs[len(recs)-1].Version; v > r.droppedMax {
			r.droppedMax = v
		}
		return
	}
	merged := mergeSorted([][]Change{r.changesAfter(0), recs},
		func(a, b Change) bool { return a.Version < b.Version })
	if drop := len(merged) - r.cap; drop > 0 {
		if v := merged[drop-1].Version; v > r.droppedMax {
			r.droppedMax = v
		}
		merged = merged[drop:]
	}
	r.buf = append([]Change(nil), merged...)
	r.start = 0
	r.n = len(r.buf)
}

// changesAfter copies the retained records with Version > v, oldest first.
// The ring is version-sorted, so the suffix is found by binary search.
func (r *changeRing) changesAfter(v uint64) []Change {
	lo, hi := 0, r.n
	for lo < hi {
		mid := (lo + hi) / 2
		if r.buf[(r.start+mid)%len(r.buf)].Version > v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == r.n {
		return nil
	}
	out := make([]Change, 0, r.n-lo)
	for i := lo; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// walSink is the durable LogSink: it encodes each mutation with the
// compact binary codec and appends it to a per-shard segmented WAL,
// keyed by version so checkpoint truncation can drop dead segments.
type walSink struct {
	w       *wal.Writer
	scratch []byte
}

func newWALSink(dir string, opts wal.Options) (*walSink, error) {
	w, err := wal.Create(dir, opts)
	if err != nil {
		return nil, err
	}
	return &walSink{w: w}, nil
}

// Append implements LogSink. Encoding and enqueueing happen under the
// shard lock, which is what keeps the on-disk order identical to the
// version order; the fsync behind the returned ticket does not (callers
// Wait after unlocking). AppendAsync copies the frame into the batch
// buffer synchronously, so reusing scratch across calls is safe.
func (s *walSink) Append(m Mutation) (wal.Commit, error) {
	s.scratch = encodeMutation(s.scratch[:0], m)
	return s.w.AppendAsync(m.Change.Version, s.scratch)
}

// Sync implements LogSink.
func (s *walSink) Sync() error { return s.w.Sync() }

// Close implements LogSink.
func (s *walSink) Close() error { return s.w.Close() }

// Stats exposes the underlying writer's append/batch/fsync counters.
func (s *walSink) Stats() wal.WriterStats { return s.w.Stats() }
