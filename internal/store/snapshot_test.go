package store

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/stats"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := seeded(t)
	if err := s.PutContribution(&model.Contribution{ID: "c1", Task: "t1", Worker: "w1", Quality: 0.5}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	back, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Workers(), back.Workers()) {
		t.Error("workers differ after round trip")
	}
	if !reflect.DeepEqual(s.Tasks(), back.Tasks()) {
		t.Error("tasks differ after round trip")
	}
	if !reflect.DeepEqual(s.Contributions(), back.Contributions()) {
		t.Error("contributions differ after round trip")
	}
	// Indexes must be rebuilt, not just entity maps.
	goIdx, _ := s.Universe().Index("go")
	if !reflect.DeepEqual(s.WorkersWithSkill(goIdx), back.WorkersWithSkill(goIdx)) {
		t.Error("skill index differs after round trip")
	}
}

func TestFromSnapshotRejectsBadData(t *testing.T) {
	snap := &model.Snapshot{} // no skills
	if _, err := FromSnapshot(snap); err == nil {
		t.Error("empty snapshot accepted")
	}
	snap = &model.Snapshot{
		Skills: []string{"a"},
		Tasks:  []*model.Task{{ID: "t", Requester: "ghost", Skills: model.SkillVector{false}}},
	}
	if _, err := FromSnapshot(snap); err == nil {
		t.Error("orphan task accepted")
	}
}

// exhaustivePairs computes the ground truth for CandidateWorkerPairs: all
// pairs of workers sharing at least one skill.
func exhaustivePairs(s *Store) [][2]model.WorkerID {
	ws := s.Workers()
	var out [][2]model.WorkerID
	for i := 0; i < len(ws); i++ {
		for j := i + 1; j < len(ws); j++ {
			shared := false
			for k := range ws[i].Skills {
				if ws[i].Skills[k] && ws[j].Skills[k] {
					shared = true
					break
				}
			}
			if shared {
				a, b := ws[i].ID, ws[j].ID
				if b < a {
					a, b = b, a
				}
				out = append(out, [2]model.WorkerID{a, b})
			}
		}
	}
	return out
}

func sortPairs(ps [][2]model.WorkerID) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

func TestCandidateWorkerPairsMatchesExhaustive(t *testing.T) {
	u := model.MustUniverse("a", "b", "c", "d")
	s := New(u)
	rng := stats.NewRNG(99)
	for i := 0; i < 40; i++ {
		skills := model.NewSkillVector(4)
		for k := range skills {
			skills[k] = rng.Bool(0.4)
		}
		w := &model.Worker{ID: model.WorkerID(fmt.Sprintf("w%02d", i)), Skills: skills}
		if err := s.PutWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	got := s.CandidateWorkerPairs()
	want := exhaustivePairs(s)
	sortPairs(got)
	sortPairs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("candidate pairs mismatch: got %d pairs, want %d", len(got), len(want))
	}
}

func TestCandidateWorkerPairsNoDuplicates(t *testing.T) {
	f := func(seed uint64) bool {
		u := model.MustUniverse("a", "b", "c")
		s := New(u)
		rng := stats.NewRNG(seed)
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			skills := model.NewSkillVector(3)
			for k := range skills {
				skills[k] = rng.Bool(0.5)
			}
			if err := s.PutWorker(&model.Worker{ID: model.WorkerID(fmt.Sprintf("w%02d", i)), Skills: skills}); err != nil {
				return false
			}
		}
		pairs := s.CandidateWorkerPairs()
		seen := make(map[[2]model.WorkerID]bool, len(pairs))
		for _, p := range pairs {
			if p[0] >= p[1] {
				return false // canonical order violated
			}
			if seen[p] {
				return false // duplicate
			}
			seen[p] = true
		}
		return len(pairs) == len(exhaustivePairs(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCandidateTaskPairsExcludeSameRequester(t *testing.T) {
	u := model.MustUniverse("a")
	s := New(u)
	for _, r := range []string{"r1", "r2"} {
		if err := s.PutRequester(&model.Requester{ID: model.RequesterID(r)}); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(id, req string) {
		if err := s.PutTask(&model.Task{ID: model.TaskID(id), Requester: model.RequesterID(req), Skills: u.MustVector("a")}); err != nil {
			t.Fatal(err)
		}
	}
	mk("t1", "r1")
	mk("t2", "r1")
	mk("t3", "r2")
	pairs := s.CandidateTaskPairs()
	// t1-t2 share a requester and must be excluded; t1-t3 and t2-t3 remain.
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if p[0] == "t1" && p[1] == "t2" {
			t.Fatal("same-requester pair included")
		}
	}
}

func TestCandidatePairsEmptyStore(t *testing.T) {
	s := New(model.MustUniverse("a"))
	if got := s.CandidateWorkerPairs(); len(got) != 0 {
		t.Fatalf("empty store pairs = %v", got)
	}
	if got := s.CandidateTaskPairs(); len(got) != 0 {
		t.Fatalf("empty store task pairs = %v", got)
	}
}
