// Package store provides the in-memory, index-backed platform database that
// the fairness checkers and the simulator operate over.
//
// The EDBT framing of the paper treats a crowdsourcing platform as a data
// management problem: audits are queries over the platform state (workers,
// tasks, requesters, contributions). Store keeps that state in typed tables
// with primary-key hash indexes plus the secondary indexes the audits need:
// a skill inverted index over workers and tasks (used to prune candidate
// pairs in Axiom 1/2 checks, the E7 ablation), a per-requester task index,
// and per-task / per-worker contribution indexes.
//
// Store is safe for concurrent readers and writers via a single RWMutex —
// audits are read-heavy scans, mutation is append-mostly, and the workload
// sizes here never justify finer-grained latching.
//
// Every mutation also lands in a bounded changelog (see changelog.go) keyed
// by the store's version counter, and bumps the touched entity's revision.
// Incremental consumers — the delta-driven fairness audits of internal/audit
// — read the changelog through ChangesSince to re-check only what moved, and
// key memoized pair similarities by (id, revision).
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
)

// Sentinel errors.
var (
	ErrNotFound  = errors.New("store: not found")
	ErrDuplicate = errors.New("store: duplicate id")
	ErrInvalid   = errors.New("store: invalid entity")
)

// Store is the platform database. Construct with New.
type Store struct {
	mu       sync.RWMutex
	universe *model.Universe

	workers    map[model.WorkerID]*model.Worker
	requesters map[model.RequesterID]*model.Requester
	tasks      map[model.TaskID]*model.Task
	contribs   map[model.ContributionID]*model.Contribution

	// Secondary indexes.
	workersBySkill   [][]model.WorkerID // skill index -> worker ids
	tasksBySkill     [][]model.TaskID   // skill index -> task ids
	tasksByReq       map[model.RequesterID][]model.TaskID
	contribsByTask   map[model.TaskID][]model.ContributionID
	contribsByWorker map[model.WorkerID][]model.ContributionID

	version uint64 // bumped on every mutation; used for optimistic scans

	// Per-entity revisions: the version at which each entity last mutated.
	// Read through WorkerRevision and friends in changelog.go.
	workerRev  map[model.WorkerID]uint64
	taskRev    map[model.TaskID]uint64
	contribRev map[model.ContributionID]uint64

	// Changelog ring buffer (see changelog.go).
	clog      []Change
	clogStart int
	clogLen   int
	clogCap   int
}

// New returns an empty store over the given skill universe.
func New(u *model.Universe) *Store {
	return &Store{
		universe:         u,
		workers:          make(map[model.WorkerID]*model.Worker),
		requesters:       make(map[model.RequesterID]*model.Requester),
		tasks:            make(map[model.TaskID]*model.Task),
		contribs:         make(map[model.ContributionID]*model.Contribution),
		workersBySkill:   make([][]model.WorkerID, u.Size()),
		tasksBySkill:     make([][]model.TaskID, u.Size()),
		tasksByReq:       make(map[model.RequesterID][]model.TaskID),
		contribsByTask:   make(map[model.TaskID][]model.ContributionID),
		contribsByWorker: make(map[model.WorkerID][]model.ContributionID),
		workerRev:        make(map[model.WorkerID]uint64),
		taskRev:          make(map[model.TaskID]uint64),
		contribRev:       make(map[model.ContributionID]uint64),
		clogCap:          DefaultChangelogCap,
	}
}

// Universe returns the skill universe the store was built over.
func (s *Store) Universe() *model.Universe { return s.universe }

// Version returns the current mutation counter. Two equal versions bracket
// an unchanged store, which lets long audits assert the trace did not move
// under them.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// PutWorker validates and inserts a worker. The store keeps its own clone,
// so later mutation of w by the caller does not affect stored state.
func (s *Store) PutWorker(w *model.Worker) error {
	if err := w.Validate(s.universe); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.workers[w.ID]; dup {
		return fmt.Errorf("worker %s: %w", w.ID, ErrDuplicate)
	}
	c := w.Clone()
	s.workers[c.ID] = c
	for _, i := range c.Skills.Indices() {
		s.workersBySkill[i] = append(s.workersBySkill[i], c.ID)
	}
	s.version++
	s.workerRev[c.ID] = s.version
	s.record(Change{Version: s.version, Op: OpInsert, Entity: EntityWorker, Worker: c.ID})
	return nil
}

// UpdateWorker replaces an existing worker's attributes and skills.
func (s *Store) UpdateWorker(w *model.Worker) error {
	if err := w.Validate(s.universe); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.workers[w.ID]
	if !ok {
		return fmt.Errorf("worker %s: %w", w.ID, ErrNotFound)
	}
	if !old.Skills.Equal(w.Skills) {
		for _, i := range old.Skills.Indices() {
			s.workersBySkill[i] = removeWorkerID(s.workersBySkill[i], w.ID)
		}
		for _, i := range w.Skills.Indices() {
			s.workersBySkill[i] = append(s.workersBySkill[i], w.ID)
		}
	}
	s.workers[w.ID] = w.Clone()
	s.version++
	s.workerRev[w.ID] = s.version
	s.record(Change{Version: s.version, Op: OpUpdate, Entity: EntityWorker, Worker: w.ID})
	return nil
}

// Worker returns a copy of the worker with the given id.
func (s *Store) Worker(id model.WorkerID) (*model.Worker, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w, ok := s.workers[id]
	if !ok {
		return nil, fmt.Errorf("worker %s: %w", id, ErrNotFound)
	}
	return w.Clone(), nil
}

// Workers returns copies of all workers sorted by id.
func (s *Store) Workers() []*model.Worker {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*model.Worker, 0, len(s.workers))
	for _, w := range s.workers {
		out = append(out, w.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WorkerCount returns the number of workers without copying them.
func (s *Store) WorkerCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.workers)
}

// WorkersWithSkill returns the ids of workers whose vector sets the given
// skill index, sorted. The result is a fresh slice owned by the caller.
func (s *Store) WorkersWithSkill(skill int) []model.WorkerID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]model.WorkerID(nil), s.workersBySkill[skill]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PutRequester validates and inserts a requester.
func (s *Store) PutRequester(r *model.Requester) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.requesters[r.ID]; dup {
		return fmt.Errorf("requester %s: %w", r.ID, ErrDuplicate)
	}
	c := *r
	s.requesters[r.ID] = &c
	s.version++
	s.record(Change{Version: s.version, Op: OpInsert, Entity: EntityRequester, Requester: r.ID})
	return nil
}

// Requester returns a copy of the requester with the given id.
func (s *Store) Requester(id model.RequesterID) (*model.Requester, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.requesters[id]
	if !ok {
		return nil, fmt.Errorf("requester %s: %w", id, ErrNotFound)
	}
	c := *r
	return &c, nil
}

// Requesters returns copies of all requesters sorted by id.
func (s *Store) Requesters() []*model.Requester {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*model.Requester, 0, len(s.requesters))
	for _, r := range s.requesters {
		c := *r
		out = append(out, &c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PutTask validates and inserts a task; its requester must already exist.
func (s *Store) PutTask(t *model.Task) error {
	if err := t.Validate(s.universe); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tasks[t.ID]; dup {
		return fmt.Errorf("task %s: %w", t.ID, ErrDuplicate)
	}
	if _, ok := s.requesters[t.Requester]; !ok {
		return fmt.Errorf("task %s: requester %s: %w", t.ID, t.Requester, ErrNotFound)
	}
	c := t.Clone()
	s.tasks[c.ID] = c
	for _, i := range c.Skills.Indices() {
		s.tasksBySkill[i] = append(s.tasksBySkill[i], c.ID)
	}
	s.tasksByReq[c.Requester] = append(s.tasksByReq[c.Requester], c.ID)
	s.version++
	s.taskRev[c.ID] = s.version
	s.record(Change{Version: s.version, Op: OpInsert, Entity: EntityTask, Task: c.ID, Requester: c.Requester})
	return nil
}

// Task returns a copy of the task with the given id.
func (s *Store) Task(id model.TaskID) (*model.Task, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tasks[id]
	if !ok {
		return nil, fmt.Errorf("task %s: %w", id, ErrNotFound)
	}
	return t.Clone(), nil
}

// Tasks returns copies of all tasks sorted by id.
func (s *Store) Tasks() []*model.Task {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*model.Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		out = append(out, t.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TaskCount returns the number of tasks.
func (s *Store) TaskCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tasks)
}

// TasksByRequester returns ids of tasks posted by the requester, sorted.
func (s *Store) TasksByRequester(id model.RequesterID) []model.TaskID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]model.TaskID(nil), s.tasksByReq[id]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TasksWithSkill returns ids of tasks requiring the given skill index, sorted.
func (s *Store) TasksWithSkill(skill int) []model.TaskID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]model.TaskID(nil), s.tasksBySkill[skill]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PutContribution validates and inserts a contribution; its task and worker
// must already exist.
func (s *Store) PutContribution(c *model.Contribution) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.contribs[c.ID]; dup {
		return fmt.Errorf("contribution %s: %w", c.ID, ErrDuplicate)
	}
	if _, ok := s.tasks[c.Task]; !ok {
		return fmt.Errorf("contribution %s: task %s: %w", c.ID, c.Task, ErrNotFound)
	}
	if _, ok := s.workers[c.Worker]; !ok {
		return fmt.Errorf("contribution %s: worker %s: %w", c.ID, c.Worker, ErrNotFound)
	}
	cc := c.Clone()
	s.contribs[cc.ID] = cc
	s.contribsByTask[cc.Task] = append(s.contribsByTask[cc.Task], cc.ID)
	s.contribsByWorker[cc.Worker] = append(s.contribsByWorker[cc.Worker], cc.ID)
	s.version++
	s.contribRev[cc.ID] = s.version
	s.record(Change{
		Version: s.version, Op: OpInsert, Entity: EntityContribution,
		Contribution: cc.ID, Task: cc.Task, Worker: cc.Worker,
	})
	return nil
}

// UpdateContribution replaces an existing contribution (e.g. after the
// requester's accept/reject decision or payment).
func (s *Store) UpdateContribution(c *model.Contribution) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.contribs[c.ID]
	if !ok {
		return fmt.Errorf("contribution %s: %w", c.ID, ErrNotFound)
	}
	if old.Task != c.Task || old.Worker != c.Worker {
		return fmt.Errorf("contribution %s: task/worker are immutable: %w", c.ID, ErrInvalid)
	}
	s.contribs[c.ID] = c.Clone()
	s.version++
	s.contribRev[c.ID] = s.version
	s.record(Change{
		Version: s.version, Op: OpUpdate, Entity: EntityContribution,
		Contribution: c.ID, Task: c.Task, Worker: c.Worker,
	})
	return nil
}

// Contribution returns a copy of the contribution with the given id.
func (s *Store) Contribution(id model.ContributionID) (*model.Contribution, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.contribs[id]
	if !ok {
		return nil, fmt.Errorf("contribution %s: %w", id, ErrNotFound)
	}
	return c.Clone(), nil
}

// Contributions returns copies of all contributions sorted by id.
func (s *Store) Contributions() []*model.Contribution {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*model.Contribution, 0, len(s.contribs))
	for _, c := range s.contribs {
		out = append(out, c.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ContributionsByTask returns copies of the contributions to a task,
// ordered by submission time then id.
func (s *Store) ContributionsByTask(id model.TaskID) []*model.Contribution {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.contribsByTask[id]
	out := make([]*model.Contribution, 0, len(ids))
	for _, cid := range ids {
		out = append(out, s.contribs[cid].Clone())
	}
	sortContribs(out)
	return out
}

// ContributionsByWorker returns copies of the contributions by a worker,
// ordered by submission time then id.
func (s *Store) ContributionsByWorker(id model.WorkerID) []*model.Contribution {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.contribsByWorker[id]
	out := make([]*model.Contribution, 0, len(ids))
	for _, cid := range ids {
		out = append(out, s.contribs[cid].Clone())
	}
	sortContribs(out)
	return out
}

func sortContribs(cs []*model.Contribution) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].SubmittedAt != cs[j].SubmittedAt {
			return cs[i].SubmittedAt < cs[j].SubmittedAt
		}
		return cs[i].ID < cs[j].ID
	})
}

func removeWorkerID(ids []model.WorkerID, id model.WorkerID) []model.WorkerID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
