// Package store provides the in-memory, index-backed platform database that
// the fairness checkers and the simulator operate over.
//
// The EDBT framing of the paper treats a crowdsourcing platform as a data
// management problem: audits are queries over the platform state (workers,
// tasks, requesters, contributions). Store keeps that state in typed tables
// with primary-key hash indexes plus the secondary indexes the audits need:
// a skill inverted index over workers and tasks (used to prune candidate
// pairs in Axiom 1/2 checks, the E7 ablation), a per-requester task index,
// and per-task / per-worker contribution indexes.
//
// Concurrency model: the store is hash-partitioned into ShardCount shards
// (see shard.go), each owning the entities whose id hashes to it together
// with that partition's secondary indexes, revision map, and changelog
// ring. Which shard owns which id is decided by an immutable, epoch-stamped
// route table (routetable.go) swapped through an atomic pointer; Reshard
// (reshard.go) migrates the store to a new shard width under live traffic
// by publishing a successor table and handing shards off one at a time.
// Every mutation takes exactly one shard's write lock — referenced entities
// in other shards are probed under read locks, which is safe because
// entities are never deleted — so writers to different shards never contend
// and mutation throughput scales with cores. A single atomic sequencer
// allocates global versions; allocation happens while the owning shard's
// write lock is held, which yields the store's core visibility invariant:
// every mutation with a version at or below Version() is fully applied and
// visible to any subsequently acquired shard lock.
//
// Multi-shard readers (Workers, ChangesSince, the candidate-pair
// generators) acquire a validated whole-key-space view (rlockView) so a
// concurrent reshard can never hide or duplicate entities mid-scan; they
// see a state at least as new as any version bracket they read first.
// Incremental consumers — the delta-driven fairness audits of
// internal/audit — read the per-shard changelogs through ShardChangesSince
// (or the version-merged ChangesSince) to re-check only what moved, and key
// memoized pair similarities by (id, revision).
//
// Durability: each shard's changelog is a LogSink pair — the in-memory
// ring plus, on stores built with NewDurable or Open, a write-ahead sink
// appending change + entity post-image to segmented files under the shard
// lock (internal/wal), so the on-disk order equals the version order.
// Checkpoint pins a snapshot and truncates dead segments; Open rebuilds
// the snapshot and replays the WAL tail with original version numbers,
// recovering the longest globally dense prefix after a torn final record
// (see checkpoint.go).
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/wal"
)

// Sentinel errors.
var (
	ErrNotFound  = errors.New("store: not found")
	ErrDuplicate = errors.New("store: duplicate id")
	ErrInvalid   = errors.New("store: invalid entity")
)

// DefaultShardCount is the partition count used by New. It is a fixed
// constant — not GOMAXPROCS-derived — so a trace replayed on any machine
// lands entities in the same shards, and a *sequentially* replayed trace
// produces the same merged changelog (the bulk fan-out paths interleave
// version assignment across shards nondeterministically, so bulk-loaded
// stores promise identical state but not identical change order). The
// determinism tests pin that results are identical for every shard count,
// so callers needing a different width (1 for strict single-lock
// semantics, more for very wide machines) use NewSharded.
const DefaultShardCount = 8

// Store is the platform database. Construct with New or NewSharded for a
// volatile store, NewDurable for one teeing every mutation into a
// write-ahead log, or Open to recover a durable store from disk.
type Store struct {
	universe *model.Universe
	version  atomic.Uint64 // global mutation sequencer

	// route is the current epoch's routing table (never nil); next holds
	// its successor while a Reshard is migrating shards, and nil
	// otherwise. Both are immutable once published — see routetable.go
	// for the two-table handoff protocol.
	route routePtr
	next  routePtr

	// clogCap remembers the per-shard changelog retention so shards
	// created by a later Reshard inherit SetChangelogCap.
	clogCap atomic.Int64

	// dir is the persistence root of a durable store ("" when volatile);
	// walOpts parameterises its segment writers. ckptMu serialises the
	// whole-store maintenance operations — Checkpoint, Reshard, and Close
	// — which all touch every shard's sink or the manifest at once.
	dir     string
	walOpts wal.Options
	ckptMu  sync.Mutex

	// epochs records completed width changes, oldest first (guarded by
	// ckptMu; read via EpochLog).
	epochs []EpochChange
}

// New returns an empty store over the given skill universe, partitioned
// into DefaultShardCount shards.
func New(u *model.Universe) *Store { return NewSharded(u, DefaultShardCount) }

// NewSharded returns an empty store partitioned into the given number of
// hash shards (values < 1 mean one shard, i.e. the single-lock layout).
func NewSharded(u *model.Universe, shards int) *Store {
	if shards < 1 {
		shards = 1
	}
	s := &Store{universe: u}
	s.clogCap.Store(DefaultChangelogCap)
	shs := make([]*shard, shards)
	for i := range shs {
		shs[i] = newShard(u.Size(), DefaultChangelogCap, 1)
	}
	s.route.Store(newRouteTable(1, shs))
	return s
}

// Universe returns the skill universe the store was built over.
func (s *Store) Universe() *model.Universe { return s.universe }

// ShardCount returns the number of hash partitions in the current epoch.
func (s *Store) ShardCount() int { return s.table().width() }

// Version returns the current mutation counter. Two equal versions bracket
// an unchanged store, which lets long audits assert the trace did not move
// under them; every mutation versioned at or below the returned value is
// visible to reads issued after the call.
func (s *Store) Version() uint64 { return s.version.Load() }

// shardIndex routes an id under the current epoch's table.
func (s *Store) shardIndex(id string) int { return s.table().index(id) }

// allocVersion returns the version a mutation commits under: the next
// sequencer value normally, or the forced original version during WAL
// replay (where the sequencer is advanced to at least that value so
// post-recovery mutations continue the original numbering).
func (s *Store) allocVersion(forced uint64) uint64 {
	if forced == 0 {
		return s.version.Add(1)
	}
	for {
		cur := s.version.Load()
		if cur >= forced || s.version.CompareAndSwap(cur, forced) {
			return forced
		}
	}
}

// commitOutside runs fn — a *Locked mutator — under sh's already-acquired
// write lock, releases the lock, and only then waits on the durability
// ticket: the append-under-lock / ack-outside-lock shape every
// single-entity mutator shares. Holding the shard lock across the ticket
// wait would serialise every writer of the shard on the group-commit
// fsync; releasing first lets concurrent appenders pile into the batch the
// one fsync then covers. Version-dense recovery is preserved because the
// WAL enqueue (ordering) still happens under the lock — only the ack
// (durability) moves outside it.
func commitOutside(sh *shard, fn func() (wal.Commit, error)) error {
	ack, err := func() (wal.Commit, error) {
		defer sh.mu.Unlock()
		return fn()
	}()
	if err != nil {
		return err
	}
	return ack.Wait()
}

// WorkerShard returns the index of the shard owning the worker id.
func (s *Store) WorkerShard(id model.WorkerID) int { return s.shardIndex(string(id)) }

// RequesterShard returns the index of the shard owning the requester id.
func (s *Store) RequesterShard(id model.RequesterID) int { return s.shardIndex(string(id)) }

// TaskShard returns the index of the shard owning the task id.
func (s *Store) TaskShard(id model.TaskID) int { return s.shardIndex(string(id)) }

// ContributionShard returns the index of the shard owning the contribution.
func (s *Store) ContributionShard(id model.ContributionID) int { return s.shardIndex(string(id)) }

// --- Workers ---

// PutWorker validates and inserts a worker. The store keeps its own clone,
// so later mutation of w by the caller does not affect stored state.
func (s *Store) PutWorker(w *model.Worker) error {
	if err := w.Validate(s.universe); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	sh := s.lockOwner(string(w.ID))
	return commitOutside(sh, func() (wal.Commit, error) {
		return s.putWorkerLocked(sh, w, 0, 0)
	})
}

// putWorkerLocked inserts under the held shard lock. ver is 0 for live
// mutations (allocate the next version) and the original version during
// WAL replay; epoch likewise is 0 to stamp the owning shard's epoch and
// the original epoch during replay. Like every *Locked mutator it returns
// the record's durability ticket for the caller to Wait on after
// unlocking.
func (s *Store) putWorkerLocked(sh *shard, w *model.Worker, ver, epoch uint64) (wal.Commit, error) {
	if _, dup := sh.workers[w.ID]; dup {
		return wal.Commit{}, fmt.Errorf("worker %s: %w", w.ID, ErrDuplicate)
	}
	c := w.Clone()
	sh.workers[c.ID] = c
	for _, i := range c.Skills.Indices() {
		sh.workersBySkill[i] = insertSortedID(sh.workersBySkill[i], c.ID)
	}
	v := s.allocVersion(ver)
	if epoch == 0 {
		epoch = sh.epoch
	}
	sh.workerRev[c.ID] = v
	return sh.record(Mutation{
		Change: Change{Version: v, Epoch: epoch, Op: OpInsert, Entity: EntityWorker, Worker: c.ID},
		Worker: c,
	})
}

// UpdateWorker replaces an existing worker's attributes and skills.
func (s *Store) UpdateWorker(w *model.Worker) error {
	if err := w.Validate(s.universe); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	sh := s.lockOwner(string(w.ID))
	return commitOutside(sh, func() (wal.Commit, error) {
		return s.updateWorkerLocked(sh, w, 0, 0)
	})
}

func (s *Store) updateWorkerLocked(sh *shard, w *model.Worker, ver, epoch uint64) (wal.Commit, error) {
	old, ok := sh.workers[w.ID]
	if !ok {
		return wal.Commit{}, fmt.Errorf("worker %s: %w", w.ID, ErrNotFound)
	}
	if !old.Skills.Equal(w.Skills) {
		for _, i := range old.Skills.Indices() {
			sh.workersBySkill[i] = removeSortedID(sh.workersBySkill[i], w.ID)
		}
		for _, i := range w.Skills.Indices() {
			sh.workersBySkill[i] = insertSortedID(sh.workersBySkill[i], w.ID)
		}
	}
	c := w.Clone()
	sh.workers[w.ID] = c
	v := s.allocVersion(ver)
	if epoch == 0 {
		epoch = sh.epoch
	}
	sh.workerRev[w.ID] = v
	return sh.record(Mutation{
		Change: Change{Version: v, Epoch: epoch, Op: OpUpdate, Entity: EntityWorker, Worker: w.ID},
		Worker: c,
	})
}

// Worker returns a copy of the worker with the given id.
func (s *Store) Worker(id model.WorkerID) (*model.Worker, error) {
	sh := s.rlockOwner(string(id))
	w, ok := sh.workers[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("worker %s: %w", id, ErrNotFound)
	}
	// Stored entities are immutable once inserted (updates swap the
	// pointer), so cloning outside the lock is safe. Same below.
	return w.Clone(), nil
}

// Workers returns copies of all workers sorted by id.
func (s *Store) Workers() []*model.Worker {
	return s.workersSlice(false, nil)
}

// workersSlice gathers per-shard sorted runs (optionally shard-parallel)
// and merges them into the id-sorted result. held, when non-nil, is the
// locked view an enclosing critical section (Checkpoint) already pinned;
// nil callers acquire their own.
func (s *Store) workersSlice(parallel bool, held []*shard) []*model.Worker {
	shs, release := held, func() {}
	if shs == nil {
		shs, release = s.rlockView()
	}
	per := make([][]*model.Worker, len(shs))
	gather := func(i int) {
		sh := shs[i]
		out := make([]*model.Worker, 0, len(sh.workers))
		for _, w := range sh.workers {
			out = append(out, w)
		}
		sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
		for k, w := range out {
			out[k] = w.Clone()
		}
		per[i] = out
	}
	if parallel {
		par.Do(len(shs), 0, gather)
	} else {
		for i := range shs {
			gather(i)
		}
	}
	release()
	return mergeSorted(per, func(a, b *model.Worker) bool { return a.ID < b.ID })
}

// WorkerCount returns the number of workers without copying them.
func (s *Store) WorkerCount() int {
	shs, release := s.rlockView()
	n := 0
	for _, sh := range shs {
		n += len(sh.workers)
	}
	release()
	return n
}

// WorkersWithSkill returns the ids of workers whose vector sets the given
// skill index, sorted. The result is a fresh slice owned by the caller.
func (s *Store) WorkersWithSkill(skill int) []model.WorkerID {
	shs, release := s.rlockView()
	per := make([][]model.WorkerID, len(shs))
	for i, sh := range shs {
		if sh.retired {
			continue
		}
		per[i] = append([]model.WorkerID(nil), sh.workersBySkill[skill]...)
	}
	release()
	return mergeSorted(per, func(a, b model.WorkerID) bool { return a < b })
}

// BulkPutWorkers inserts many workers, fanning the inserts out across
// shards in parallel (insertion order within a shard follows ws order).
// On error the store keeps every insert that succeeded: each shard stops
// at its own first failure, so entities after a failing one may still land
// if they hash to other shards — callers must not retry a failed batch
// wholesale.
func (s *Store) BulkPutWorkers(ws []*model.Worker) error {
	for _, w := range ws {
		if err := w.Validate(s.universe); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalid, err)
		}
	}
	return s.bulkApply(len(ws), func(k int) string { return string(ws[k].ID) },
		func(sh *shard, k int) (wal.Commit, error) { return s.putWorkerLocked(sh, ws[k], 0, 0) })
}

// BulkUpdateWorkers applies many worker updates, fanning out across shards
// in parallel. On error, updates that succeeded before each shard's own
// first failure remain applied (see BulkPutWorkers).
func (s *Store) BulkUpdateWorkers(ws []*model.Worker) error {
	for _, w := range ws {
		if err := w.Validate(s.universe); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalid, err)
		}
	}
	return s.bulkApply(len(ws), func(k int) string { return string(ws[k].ID) },
		func(sh *shard, k int) (wal.Commit, error) { return s.updateWorkerLocked(sh, ws[k], 0, 0) })
}

// bulkApply groups n items by owning shard under the current route table
// and applies each group under a single lock acquisition, in parallel
// across shards. If a group's shard was retired by a concurrent reshard
// between grouping and locking, that group falls back to per-item routed
// application — correctness never depends on the grouping staying fresh.
//
// Durability: each shard group waits only on its last item's ticket, after
// releasing the shard lock. Within one writer batches seal and flush
// strictly in append order with a sticky error (see wal/groupcommit.go),
// so the last ticket's success covers every earlier append of the group
// and its failure reports any earlier batch's failure.
func (s *Store) bulkApply(n int, id func(k int) string, apply func(sh *shard, k int) (wal.Commit, error)) error {
	rt := s.table()
	groups := make([][]int, rt.width())
	for k := 0; k < n; k++ {
		i := rt.index(id(k))
		groups[i] = append(groups[i], k)
	}
	errs := make([]error, len(groups))
	par.Do(len(groups), 0, func(i int) {
		if len(groups[i]) == 0 {
			return
		}
		sh := rt.shards[i]
		sh.mu.Lock()
		if sh.retired {
			sh.mu.Unlock()
			for _, k := range groups[i] {
				osh := s.lockOwner(id(k))
				ack, err := apply(osh, k)
				osh.mu.Unlock()
				if err == nil {
					err = ack.Wait()
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
			return
		}
		var last wal.Commit
		for _, k := range groups[i] {
			ack, err := apply(sh, k)
			if err != nil {
				errs[i] = err
				break
			}
			last = ack
		}
		sh.mu.Unlock()
		if errs[i] == nil {
			errs[i] = last.Wait()
		}
	})
	return errors.Join(errs...)
}

// --- Requesters ---

// PutRequester validates and inserts a requester.
func (s *Store) PutRequester(r *model.Requester) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	sh := s.lockOwner(string(r.ID))
	return commitOutside(sh, func() (wal.Commit, error) {
		return s.putRequesterLocked(sh, r, 0, 0)
	})
}

func (s *Store) putRequesterLocked(sh *shard, r *model.Requester, ver, epoch uint64) (wal.Commit, error) {
	if _, dup := sh.requesters[r.ID]; dup {
		return wal.Commit{}, fmt.Errorf("requester %s: %w", r.ID, ErrDuplicate)
	}
	c := *r
	sh.requesters[r.ID] = &c
	v := s.allocVersion(ver)
	if epoch == 0 {
		epoch = sh.epoch
	}
	return sh.record(Mutation{
		Change:    Change{Version: v, Epoch: epoch, Op: OpInsert, Entity: EntityRequester, Requester: r.ID},
		Requester: &c,
	})
}

// Requester returns a copy of the requester with the given id.
func (s *Store) Requester(id model.RequesterID) (*model.Requester, error) {
	sh := s.rlockOwner(string(id))
	r, ok := sh.requesters[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("requester %s: %w", id, ErrNotFound)
	}
	c := *r
	return &c, nil
}

// Requesters returns copies of all requesters sorted by id.
func (s *Store) Requesters() []*model.Requester {
	return s.requestersSlice(nil)
}

func (s *Store) requestersSlice(held []*shard) []*model.Requester {
	shs, release := held, func() {}
	if shs == nil {
		shs, release = s.rlockView()
	}
	per := make([][]*model.Requester, len(shs))
	for i, sh := range shs {
		out := make([]*model.Requester, 0, len(sh.requesters))
		for _, r := range sh.requesters {
			out = append(out, r)
		}
		sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
		for k, r := range out {
			c := *r
			out[k] = &c
		}
		per[i] = out
	}
	release()
	return mergeSorted(per, func(a, b *model.Requester) bool { return a.ID < b.ID })
}

func (s *Store) hasRequester(id model.RequesterID) bool {
	sh := s.rlockOwner(string(id))
	_, ok := sh.requesters[id]
	sh.mu.RUnlock()
	return ok
}

// --- Tasks ---

// PutTask validates and inserts a task; its requester must already exist.
// The existence probe takes only the requester shard's read lock: entities
// are never deleted, so the probe cannot go stale before the insert.
func (s *Store) PutTask(t *model.Task) error {
	if err := t.Validate(s.universe); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if !s.hasRequester(t.Requester) {
		return fmt.Errorf("task %s: requester %s: %w", t.ID, t.Requester, ErrNotFound)
	}
	sh := s.lockOwner(string(t.ID))
	return commitOutside(sh, func() (wal.Commit, error) {
		return s.putTaskLocked(sh, t, 0, 0)
	})
}

func (s *Store) putTaskLocked(sh *shard, t *model.Task, ver, epoch uint64) (wal.Commit, error) {
	if _, dup := sh.tasks[t.ID]; dup {
		return wal.Commit{}, fmt.Errorf("task %s: %w", t.ID, ErrDuplicate)
	}
	c := t.Clone()
	sh.tasks[c.ID] = c
	for _, i := range c.Skills.Indices() {
		sh.tasksBySkill[i] = insertSortedID(sh.tasksBySkill[i], c.ID)
	}
	sh.tasksByReq[c.Requester] = insertSortedID(sh.tasksByReq[c.Requester], c.ID)
	v := s.allocVersion(ver)
	if epoch == 0 {
		epoch = sh.epoch
	}
	sh.taskRev[c.ID] = v
	return sh.record(Mutation{
		Change: Change{Version: v, Epoch: epoch, Op: OpInsert, Entity: EntityTask, Task: c.ID, Requester: c.Requester},
		Task:   c,
	})
}

// BulkPutTasks inserts many tasks, probing the referenced requesters up
// front and fanning the inserts out across shards in parallel.
func (s *Store) BulkPutTasks(ts []*model.Task) error {
	for _, t := range ts {
		if err := t.Validate(s.universe); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		if !s.hasRequester(t.Requester) {
			return fmt.Errorf("task %s: requester %s: %w", t.ID, t.Requester, ErrNotFound)
		}
	}
	return s.bulkApply(len(ts), func(k int) string { return string(ts[k].ID) },
		func(sh *shard, k int) (wal.Commit, error) { return s.putTaskLocked(sh, ts[k], 0, 0) })
}

// Task returns a copy of the task with the given id.
func (s *Store) Task(id model.TaskID) (*model.Task, error) {
	sh := s.rlockOwner(string(id))
	t, ok := sh.tasks[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("task %s: %w", id, ErrNotFound)
	}
	return t.Clone(), nil
}

// Tasks returns copies of all tasks sorted by id.
func (s *Store) Tasks() []*model.Task {
	return s.tasksSlice(false, nil)
}

func (s *Store) tasksSlice(parallel bool, held []*shard) []*model.Task {
	shs, release := held, func() {}
	if shs == nil {
		shs, release = s.rlockView()
	}
	per := make([][]*model.Task, len(shs))
	gather := func(i int) {
		sh := shs[i]
		out := make([]*model.Task, 0, len(sh.tasks))
		for _, t := range sh.tasks {
			out = append(out, t)
		}
		sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
		for k, t := range out {
			out[k] = t.Clone()
		}
		per[i] = out
	}
	if parallel {
		par.Do(len(shs), 0, gather)
	} else {
		for i := range shs {
			gather(i)
		}
	}
	release()
	return mergeSorted(per, func(a, b *model.Task) bool { return a.ID < b.ID })
}

// TaskCount returns the number of tasks.
func (s *Store) TaskCount() int {
	shs, release := s.rlockView()
	n := 0
	for _, sh := range shs {
		n += len(sh.tasks)
	}
	release()
	return n
}

// TasksByRequester returns ids of tasks posted by the requester, sorted.
func (s *Store) TasksByRequester(id model.RequesterID) []model.TaskID {
	shs, release := s.rlockView()
	per := make([][]model.TaskID, len(shs))
	for i, sh := range shs {
		per[i] = append([]model.TaskID(nil), sh.tasksByReq[id]...)
	}
	release()
	return mergeSorted(per, func(a, b model.TaskID) bool { return a < b })
}

// TasksWithSkill returns ids of tasks requiring the given skill index, sorted.
func (s *Store) TasksWithSkill(skill int) []model.TaskID {
	shs, release := s.rlockView()
	per := make([][]model.TaskID, len(shs))
	for i, sh := range shs {
		if sh.retired {
			continue
		}
		per[i] = append([]model.TaskID(nil), sh.tasksBySkill[skill]...)
	}
	release()
	return mergeSorted(per, func(a, b model.TaskID) bool { return a < b })
}

// --- Contributions ---

// PutContribution validates and inserts a contribution; its task and worker
// must already exist (read-locked probes of their shards; sound because
// entities are never deleted).
func (s *Store) PutContribution(c *model.Contribution) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if err := s.checkContribRefs(c); err != nil {
		return err
	}
	sh := s.lockOwner(string(c.ID))
	return commitOutside(sh, func() (wal.Commit, error) {
		return s.putContributionLocked(sh, c, 0, 0)
	})
}

func (s *Store) checkContribRefs(c *model.Contribution) error {
	tsh := s.rlockOwner(string(c.Task))
	_, ok := tsh.tasks[c.Task]
	tsh.mu.RUnlock()
	if !ok {
		return fmt.Errorf("contribution %s: task %s: %w", c.ID, c.Task, ErrNotFound)
	}
	wsh := s.rlockOwner(string(c.Worker))
	_, ok = wsh.workers[c.Worker]
	wsh.mu.RUnlock()
	if !ok {
		return fmt.Errorf("contribution %s: worker %s: %w", c.ID, c.Worker, ErrNotFound)
	}
	return nil
}

func (s *Store) putContributionLocked(sh *shard, c *model.Contribution, ver, epoch uint64) (wal.Commit, error) {
	if _, dup := sh.contribs[c.ID]; dup {
		return wal.Commit{}, fmt.Errorf("contribution %s: %w", c.ID, ErrDuplicate)
	}
	cc := c.Clone()
	sh.contribs[cc.ID] = cc
	sh.contribsByTask[cc.Task] = insertContribID(sh.contribsByTask[cc.Task], sh.contribs, cc.ID)
	sh.contribsByWorker[cc.Worker] = insertContribID(sh.contribsByWorker[cc.Worker], sh.contribs, cc.ID)
	v := s.allocVersion(ver)
	if epoch == 0 {
		epoch = sh.epoch
	}
	sh.contribRev[cc.ID] = v
	return sh.record(Mutation{
		Change: Change{
			Version: v, Epoch: epoch, Op: OpInsert, Entity: EntityContribution,
			Contribution: cc.ID, Task: cc.Task, Worker: cc.Worker,
		},
		Contribution: cc,
	})
}

// BulkPutContributions inserts many contributions, probing referenced tasks
// and workers up front and fanning out across shards in parallel.
func (s *Store) BulkPutContributions(cs []*model.Contribution) error {
	for _, c := range cs {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		if err := s.checkContribRefs(c); err != nil {
			return err
		}
	}
	return s.bulkApply(len(cs), func(k int) string { return string(cs[k].ID) },
		func(sh *shard, k int) (wal.Commit, error) { return s.putContributionLocked(sh, cs[k], 0, 0) })
}

// UpdateContribution replaces an existing contribution (e.g. after the
// requester's accept/reject decision or payment).
func (s *Store) UpdateContribution(c *model.Contribution) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	sh := s.lockOwner(string(c.ID))
	return commitOutside(sh, func() (wal.Commit, error) {
		return s.updateContributionLocked(sh, c, 0, 0)
	})
}

func (s *Store) updateContributionLocked(sh *shard, c *model.Contribution, ver, epoch uint64) (wal.Commit, error) {
	old, ok := sh.contribs[c.ID]
	if !ok {
		return wal.Commit{}, fmt.Errorf("contribution %s: %w", c.ID, ErrNotFound)
	}
	if old.Task != c.Task || old.Worker != c.Worker {
		return wal.Commit{}, fmt.Errorf("contribution %s: task/worker are immutable: %w", c.ID, ErrInvalid)
	}
	cc := c.Clone()
	if old.SubmittedAt != c.SubmittedAt {
		// The (SubmittedAt, ID) sort key moved: re-position the index
		// entries before swapping in the new value.
		sh.contribsByTask[c.Task] = removeContribID(sh.contribsByTask[c.Task], sh.contribs, old.SubmittedAt, c.ID)
		sh.contribsByWorker[c.Worker] = removeContribID(sh.contribsByWorker[c.Worker], sh.contribs, old.SubmittedAt, c.ID)
		sh.contribs[c.ID] = cc
		sh.contribsByTask[c.Task] = insertContribID(sh.contribsByTask[c.Task], sh.contribs, c.ID)
		sh.contribsByWorker[c.Worker] = insertContribID(sh.contribsByWorker[c.Worker], sh.contribs, c.ID)
	} else {
		sh.contribs[c.ID] = cc
	}
	v := s.allocVersion(ver)
	if epoch == 0 {
		epoch = sh.epoch
	}
	sh.contribRev[c.ID] = v
	return sh.record(Mutation{
		Change: Change{
			Version: v, Epoch: epoch, Op: OpUpdate, Entity: EntityContribution,
			Contribution: c.ID, Task: c.Task, Worker: c.Worker,
		},
		Contribution: cc,
	})
}

// Contribution returns a copy of the contribution with the given id.
func (s *Store) Contribution(id model.ContributionID) (*model.Contribution, error) {
	sh := s.rlockOwner(string(id))
	c, ok := sh.contribs[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("contribution %s: %w", id, ErrNotFound)
	}
	return c.Clone(), nil
}

// Contributions returns copies of all contributions sorted by id.
func (s *Store) Contributions() []*model.Contribution {
	return s.contributionsSlice(false, nil)
}

func (s *Store) contributionsSlice(parallel bool, held []*shard) []*model.Contribution {
	shs, release := held, func() {}
	if shs == nil {
		shs, release = s.rlockView()
	}
	per := make([][]*model.Contribution, len(shs))
	gather := func(i int) {
		sh := shs[i]
		out := make([]*model.Contribution, 0, len(sh.contribs))
		for _, c := range sh.contribs {
			out = append(out, c)
		}
		sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
		for k, c := range out {
			out[k] = c.Clone()
		}
		per[i] = out
	}
	if parallel {
		par.Do(len(shs), 0, gather)
	} else {
		for i := range shs {
			gather(i)
		}
	}
	release()
	return mergeSorted(per, func(a, b *model.Contribution) bool { return a.ID < b.ID })
}

// ContributionCount returns the number of contributions.
func (s *Store) ContributionCount() int {
	shs, release := s.rlockView()
	n := 0
	for _, sh := range shs {
		n += len(sh.contribs)
	}
	release()
	return n
}

// contribOrderLess is the (SubmittedAt, ID) read order of the per-task and
// per-worker contribution listings.
func contribOrderLess(a, b *model.Contribution) bool {
	if a.SubmittedAt != b.SubmittedAt {
		return a.SubmittedAt < b.SubmittedAt
	}
	return a.ID < b.ID
}

// ContributionsByTask returns copies of the contributions to a task,
// ordered by submission time then id. Per-shard index runs are maintained
// in that order at insert time, so the read is a merge, not a sort.
func (s *Store) ContributionsByTask(id model.TaskID) []*model.Contribution {
	shs, release := s.rlockView()
	per := make([][]*model.Contribution, len(shs))
	for i, sh := range shs {
		ids := sh.contribsByTask[id]
		out := make([]*model.Contribution, len(ids))
		for k, cid := range ids {
			out[k] = sh.contribs[cid]
		}
		per[i] = out
	}
	release()
	for _, run := range per {
		for k, c := range run {
			run[k] = c.Clone()
		}
	}
	return mergeSorted(per, contribOrderLess)
}

// ContributionsByWorker returns copies of the contributions by a worker,
// ordered by submission time then id.
func (s *Store) ContributionsByWorker(id model.WorkerID) []*model.Contribution {
	shs, release := s.rlockView()
	per := make([][]*model.Contribution, len(shs))
	for i, sh := range shs {
		ids := sh.contribsByWorker[id]
		out := make([]*model.Contribution, len(ids))
		for k, cid := range ids {
			out[k] = sh.contribs[cid]
		}
		per[i] = out
	}
	release()
	for _, run := range per {
		for k, c := range run {
			run[k] = c.Clone()
		}
	}
	return mergeSorted(per, contribOrderLess)
}
