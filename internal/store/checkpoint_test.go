package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/wal"
)

// script is a deterministic mutation sequence applied one call at a time
// (sequential, so mutation i commits as version i+1) to both a durable
// store and the volatile replicas recovery results are compared against.
type scriptStep func(s *Store) error

// mutationScript builds a mixed workload: requesters, workers, tasks,
// contributions, and updates of workers and contributions.
func mutationScript(u *model.Universe, n int) []scriptStep {
	var steps []scriptStep
	steps = append(steps, func(s *Store) error {
		return s.PutRequester(&model.Requester{ID: "r1", Name: "req one"})
	})
	steps = append(steps, func(s *Store) error {
		return s.PutRequester(&model.Requester{ID: "r2"})
	})
	for i := 0; len(steps) < n; i++ {
		i := i
		switch i % 5 {
		case 0:
			steps = append(steps, func(s *Store) error {
				return s.PutWorker(&model.Worker{
					ID:       model.WorkerID(fmt.Sprintf("w%03d", i)),
					Declared: model.Attributes{"country": model.Str("jp")},
					Computed: model.Attributes{"acceptance_ratio": model.Num(float64(i%10) / 10)},
					Skills:   u.MustVector(u.Name(i % u.Size())),
				})
			})
		case 1:
			steps = append(steps, func(s *Store) error {
				req := model.RequesterID("r1")
				if i%2 == 0 {
					req = "r2"
				}
				return s.PutTask(&model.Task{
					ID: model.TaskID(fmt.Sprintf("t%03d", i)), Requester: req,
					Skills: u.MustVector(u.Name(i % u.Size())), Reward: 1 + float64(i%3),
				})
			})
		case 2:
			steps = append(steps, func(s *Store) error {
				return s.PutContribution(&model.Contribution{
					ID:   model.ContributionID(fmt.Sprintf("c%03d", i)),
					Task: model.TaskID(fmt.Sprintf("t%03d", i-1)), Worker: model.WorkerID(fmt.Sprintf("w%03d", i-2)),
					Text: fmt.Sprintf("answer %d", i), Quality: 0.5, SubmittedAt: int64(i),
				})
			})
		case 3:
			steps = append(steps, func(s *Store) error {
				w, err := s.Worker(model.WorkerID(fmt.Sprintf("w%03d", i-3)))
				if err != nil {
					return err
				}
				w.Computed["acceptance_ratio"] = model.Num(float64(i%7) / 7)
				return s.UpdateWorker(w)
			})
		case 4:
			steps = append(steps, func(s *Store) error {
				c, err := s.Contribution(model.ContributionID(fmt.Sprintf("c%03d", i-2)))
				if err != nil {
					return err
				}
				c.Accepted = true
				c.Paid = 1.5
				return s.UpdateContribution(c)
			})
		}
	}
	return steps[:n]
}

// applySteps runs the first n steps against s.
func applySteps(t *testing.T, s *Store, steps []scriptStep, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := steps[i](s); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// snapBytes renders the full store state deterministically for equality.
func snapBytes(t *testing.T, s *Store) string {
	t.Helper()
	data, err := s.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestOpenRecoversWALOnlyStore(t *testing.T) {
	u := testUniverse()
	dir := t.TempDir()
	steps := mutationScript(u, 60)
	ds, err := NewDurable(u, 4, dir, wal.Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	applySteps(t, ds, steps, len(steps))
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	got, man, err := Open(dir, 0, wal.Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if man.Shards != 4 || got.ShardCount() != 4 {
		t.Fatalf("shards: manifest %d store %d", man.Shards, got.ShardCount())
	}
	want := NewSharded(u, 4)
	applySteps(t, want, steps, len(steps))
	if snapBytes(t, got) != snapBytes(t, want) {
		t.Fatal("recovered state differs from replayed replica")
	}
	if got.Version() != want.Version() {
		t.Fatalf("version %d, want %d", got.Version(), want.Version())
	}
	// Recovery without a checkpoint replays everything: the merged
	// changelog must be the complete dense history.
	changes, ok := got.ChangesSince(0)
	if !ok {
		t.Fatal("ChangesSince(0) reported truncation after full replay")
	}
	if uint64(len(changes)) != got.Version() {
		t.Fatalf("merged changelog has %d records, want %d", len(changes), got.Version())
	}
	// Appends continue the original version numbering.
	if err := got.PutWorker(&model.Worker{ID: "wnew", Skills: u.MustVector("go")}); err != nil {
		t.Fatal(err)
	}
	if got.Version() != want.Version()+1 {
		t.Fatalf("post-recovery version %d, want %d", got.Version(), want.Version()+1)
	}
}

func TestCheckpointOpenRoundTrip(t *testing.T) {
	u := testUniverse()
	dir := t.TempDir()
	steps := mutationScript(u, 80)
	opts := wal.Options{SegmentBytes: 256}
	ds, err := NewDurable(u, 3, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	applySteps(t, ds, steps, 50)
	man, err := ds.Checkpoint(CheckpointOptions{Events: 123})
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != 50 || man.Events != 123 || man.Snapshot == "" {
		t.Fatalf("manifest: %+v", man)
	}
	applySteps(t, ds, steps[50:], 30)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	got, man2, err := Open(dir, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if man2.Version != 50 {
		t.Fatalf("reopened manifest version %d", man2.Version)
	}
	want := NewSharded(u, 3)
	applySteps(t, want, steps, len(steps))
	if snapBytes(t, got) != snapBytes(t, want) {
		t.Fatal("recovered state differs from replayed replica")
	}
	if got.Version() != want.Version() {
		t.Fatalf("version %d, want %d", got.Version(), want.Version())
	}
	// The post-checkpoint tail must read back gap-free from the manifest
	// version on.
	changes, ok := got.ChangesSince(man.Version)
	if !ok {
		t.Fatal("ChangesSince(checkpoint) truncated")
	}
	if uint64(len(changes)) != got.Version()-man.Version {
		t.Fatalf("tail has %d records, want %d", len(changes), got.Version()-man.Version)
	}
	// Checkpointing again truncates dead segments; a second recovery from
	// the fresh checkpoint still matches.
	if _, err := got.Checkpoint(CheckpointOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := got.Close(); err != nil {
		t.Fatal(err)
	}
	got2, _, err := Open(dir, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer got2.Close()
	if snapBytes(t, got2) != snapBytes(t, want) {
		t.Fatal("second recovery differs")
	}
}

func TestOpenAtDifferentShardCount(t *testing.T) {
	u := testUniverse()
	dir := t.TempDir()
	steps := mutationScript(u, 40)
	ds, err := NewDurable(u, 2, dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	applySteps(t, ds, steps, 25)
	if _, err := ds.Checkpoint(CheckpointOptions{}); err != nil {
		t.Fatal(err)
	}
	applySteps(t, ds, steps[25:], 15)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := Open(dir, 5, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.ShardCount() != 5 {
		t.Fatalf("shard count %d", got.ShardCount())
	}
	want := NewSharded(u, 5)
	applySteps(t, want, steps, len(steps))
	if snapBytes(t, got) != snapBytes(t, want) {
		t.Fatal("re-sharded recovery differs")
	}
}

// survivingVersions reads every WAL shard dir of a (possibly damaged)
// store directory and returns the set of record versions still readable.
func survivingVersions(t *testing.T, dir string) map[uint64]bool {
	t.Helper()
	out := make(map[uint64]bool)
	entries, err := os.ReadDir(WALDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		r, err := wal.OpenDir(filepath.Join(WALDir(dir), e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for {
			key, _, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out[key] = true
		}
		r.Close()
	}
	return out
}

// copyTree clones a durable store directory for destructive experiments.
func copyTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// lastSegmentOfLargestShardWAL picks the shard WAL dir with the most data
// and returns its final segment path.
func lastSegmentWithTail(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(WALDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	best, bestSize := "", int64(-1)
	for _, e := range entries {
		shardDir := filepath.Join(WALDir(dir), e.Name())
		segs, err := filepath.Glob(filepath.Join(shardDir, "seg-*.wal"))
		if err != nil || len(segs) == 0 {
			continue
		}
		last := segs[len(segs)-1]
		info, err := os.Stat(last)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > bestSize {
			best, bestSize = last, info.Size()
		}
	}
	if best == "" {
		t.Fatal("no WAL segments found")
	}
	return best
}

// checkRecovery opens a (possibly damaged) durable store dir and asserts
// it recovered exactly the longest globally dense version prefix of the
// surviving WAL records, with a gap-free merged changelog and entity state
// equal to replaying that prefix of the script.
func checkRecovery(t *testing.T, trial string, u *model.Universe, steps []scriptStep, label string) {
	t.Helper()
	surviving := survivingVersions(t, trial)
	wantVer := uint64(0)
	for surviving[wantVer+1] {
		wantVer++
	}
	got, _, err := Open(trial, 0, wal.Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("%s: open: %v", label, err)
	}
	defer got.Close()
	if got.Version() != wantVer {
		t.Fatalf("%s: recovered version %d, want longest dense prefix %d", label, got.Version(), wantVer)
	}
	changes, ok := got.ChangesSince(0)
	if !ok {
		t.Fatalf("%s: merged changelog truncated", label)
	}
	if uint64(len(changes)) != wantVer {
		t.Fatalf("%s: merged changelog has %d records, want %d", label, len(changes), wantVer)
	}
	for i, c := range changes {
		if c.Version != uint64(i+1) {
			t.Fatalf("%s: gap at position %d (version %d)", label, i, c.Version)
		}
	}
	want := NewSharded(u, 2)
	applySteps(t, want, steps, int(wantVer))
	if snapBytes(t, got) != snapBytes(t, want) {
		t.Fatalf("%s: recovered state differs from %d-step replica", label, wantVer)
	}
}

// TestTornTailTorture truncates the tail of the last (largest) WAL segment
// at every byte offset and asserts Open recovers exactly the longest valid
// prefix with no gap in the merged ChangesSince — the crash-recovery
// contract.
func TestTornTailTorture(t *testing.T) {
	u := testUniverse()
	base := t.TempDir()
	steps := mutationScript(u, 36)
	ds, err := NewDurable(u, 2, base, wal.Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	applySteps(t, ds, steps, len(steps))
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegmentWithTail(t, base)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(base, seg)
	if err != nil {
		t.Fatal(err)
	}
	size := int(info.Size())
	stride := 1
	if testing.Short() {
		stride = 7
	}
	for cut := 0; cut <= size; cut += stride {
		trial := copyTree(t, base)
		if err := os.Truncate(filepath.Join(trial, rel), int64(cut)); err != nil {
			t.Fatal(err)
		}
		checkRecovery(t, trial, u, steps, fmt.Sprintf("truncate@%d", cut))
	}
}

// TestCorruptTailTorture flips a byte at every offset of the last segment
// instead of truncating; recovery must still settle on a dense prefix.
func TestCorruptTailTorture(t *testing.T) {
	u := testUniverse()
	base := t.TempDir()
	steps := mutationScript(u, 36)
	ds, err := NewDurable(u, 2, base, wal.Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	applySteps(t, ds, steps, len(steps))
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegmentWithTail(t, base)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(base, seg)
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if testing.Short() {
		stride = 7
	}
	for off := 0; off < len(data); off += stride {
		trial := copyTree(t, base)
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xa5
		if err := os.WriteFile(filepath.Join(trial, rel), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		checkRecovery(t, trial, u, steps, fmt.Sprintf("corrupt@%d", off))
	}
}

// TestTornTailAfterCheckpoint tears the post-checkpoint tail: the
// checkpointed state must survive untouched and only tail versions past
// the tear are lost.
func TestTornTailAfterCheckpoint(t *testing.T) {
	u := testUniverse()
	base := t.TempDir()
	steps := mutationScript(u, 60)
	ds, err := NewDurable(u, 2, base, wal.Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	applySteps(t, ds, steps, 40)
	man, err := ds.Checkpoint(CheckpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	applySteps(t, ds, steps[40:], 20)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegmentWithTail(t, base)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear a few bytes off the end: the last record of that shard dies.
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	got, _, err := Open(base, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.Version() < man.Version {
		t.Fatalf("recovered version %d below checkpoint %d", got.Version(), man.Version)
	}
	if got.Version() >= 60 {
		t.Fatalf("torn record survived: version %d", got.Version())
	}
	want := NewSharded(u, 2)
	applySteps(t, want, steps, int(got.Version()))
	if snapBytes(t, got) != snapBytes(t, want) {
		t.Fatal("recovered state differs from prefix replica")
	}
}

func TestNewDurableRefusesExistingStore(t *testing.T) {
	u := testUniverse()
	dir := t.TempDir()
	ds, err := NewDurable(u, 2, dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds.Close()
	if _, err := NewDurable(u, 2, dir, wal.Options{}); err == nil {
		t.Fatal("NewDurable over an existing store must fail")
	}
}
