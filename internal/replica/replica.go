// Package replica implements WAL-shipped read replicas: a follower that
// tails the write-ahead directories of another process's durable store
// (internal/store) and event log (internal/eventlog), replaying mutations
// into its own read-only copy. The primary never knows the replica exists —
// shipping is pull-only, off the same segment files the primary appends to
// — so audit read load moves off the primary without touching its write
// path.
//
// Bootstrap + tail: Open rebuilds the checkpointed state from the
// manifest's snapshot (store.Bootstrap — no sinks attached, nothing on
// disk is mutated), then CatchUp polls every WAL shard directory — sealed
// segments and the growing active one, across every route epoch the
// primary has lived through — decodes frames past the checkpoint, and
// applies them in globally dense version order through store.Apply. A
// frame still being appended (torn tail) parks the directory's offset and
// is retried on the next pass; a version gap across directories simply
// waits for the missing shard's flush. The event log is tailed the same
// way from sequence 1 (event segments are never truncated).
//
// The replica's shard layout is its own: mutations are re-routed by id on
// apply, so the follower works unchanged while the primary splits or
// merges shards — a reshard just makes new epoch directories appear on a
// later poll.
//
// Staleness contract: AppliedVersion is monotonically non-decreasing;
// Staleness reports (applied, observed, lag) where observed is the highest
// version seen on disk during the last pass, so lag bounds how far the
// replica trails the primary's *flushed* log. Mutations the primary has
// not yet synced to its segments are invisible here — after the primary
// stops writing and syncs, a CatchUp pass converges the replica exactly.
//
// Known limitation: a primary checkpoint may truncate segments the replica
// has not read yet (the primary retains the WAL only down to its own
// low-water marks). A replica that falls that far behind misses records
// and reports the hole through ErrGap rather than applying around it;
// re-open a fresh replica from the newer checkpoint instead.
package replica

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/eventlog"
	"repro/internal/store"
	"repro/internal/wal"
)

// ErrGap reports that the primary truncated WAL records the replica had
// not applied yet: the follower cannot reach the primary's state and must
// be re-opened from the current checkpoint.
var ErrGap = errors.New("replica: wal truncated past the applied version")

// Staleness is the replica's reported lag bound after a CatchUp pass.
type Staleness struct {
	// Applied is the highest global version replayed into the local store.
	Applied uint64
	// Observed is the highest version seen in the primary's flushed WAL
	// during the last pass (>= Applied).
	Observed uint64
	// Lag is Observed - Applied: how many flushed primary mutations the
	// replica has not applied yet (0 when fully caught up with the
	// flushed log).
	Lag uint64
}

// record is one decoded-but-unapplied WAL record queued on a directory
// tail (version order within a tail, by construction of the log).
type record struct {
	key uint64
	mut store.Mutation
	ev  eventlog.Event
}

// dirTail tracks the replica's read position in one segment directory:
// current segment ordinal, byte offset within it, and the decoded records
// waiting for their turn in the global order.
type dirTail struct {
	dir     string
	started bool
	ord     int
	off     int64
	pending []record
}

// poll reads every record now flushed past the tail's position, decoding
// through dec (which may skip a record by returning false). Returns the
// highest key observed.
func (t *dirTail) poll(dec func(key uint64, payload []byte) (record, bool, error)) (uint64, error) {
	segs, err := wal.Segments(t.dir)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return 0, nil
	}
	if !t.started {
		t.started = true
		t.ord = segs[0].Ordinal
		t.off = 0
	}
	var maxKey uint64
	for {
		idx := sort.Search(len(segs), func(i int) bool { return segs[i].Ordinal >= t.ord })
		if idx == len(segs) {
			// Our position was truncated away entirely; nothing to read
			// until new segments appear (the gap, if any, surfaces when
			// the global apply order stalls).
			return maxKey, nil
		}
		if segs[idx].Ordinal != t.ord {
			// The exact segment is gone (checkpoint truncation); jump to
			// the oldest survivor and let key-based skipping sort out
			// what was already applied.
			t.ord = segs[idx].Ordinal
			t.off = 0
		}
		r, err := wal.OpenSegmentReader(segs[idx].Path, t.off)
		if err != nil {
			if os.IsNotExist(err) {
				// Raced a truncation between listing and open.
				return maxKey, nil
			}
			// A shrunk file (out-of-range offset) means truncation moved
			// under us; restart the segment.
			t.off = 0
			return maxKey, nil
		}
		for {
			key, payload, err := r.Next()
			if err != nil {
				break
			}
			if key > maxKey {
				maxKey = key
			}
			rec, keep, derr := dec(key, payload)
			if derr != nil {
				r.Close()
				return maxKey, derr
			}
			if keep {
				t.pending = append(t.pending, rec)
			}
		}
		clean := r.Clean()
		t.off = r.Offset()
		r.Close()
		if clean && idx+1 < len(segs) {
			// Sealed segment fully consumed; move to the next one.
			t.ord = segs[idx+1].Ordinal
			t.off = 0
			continue
		}
		// Either we are parked on a torn/in-flight frame (retry it next
		// pass) or we drained the active segment.
		return maxKey, nil
	}
}

// Replica is a read-only follower of one durable platform directory.
// Methods are safe for concurrent use; the background poller started by
// Run serialises with manual CatchUp calls on the same mutex.
type Replica struct {
	dir string

	mu       sync.Mutex
	st       *store.Store
	log      *eventlog.Log
	man      *store.Manifest
	applied  uint64
	eventSeq uint64
	observed uint64
	tails    map[string]*dirTail
	events   *dirTail

	stop chan struct{}
	done chan struct{}
}

// Open bootstraps a replica from the checkpointed state of a durable
// store directory. Nothing under dir is ever written; the replica's store
// is volatile and owned entirely by this process. Call CatchUp (or Run)
// to start shipping the WAL tail.
func Open(dir string) (*Replica, error) {
	st, man, err := store.Bootstrap(dir)
	if err != nil {
		return nil, err
	}
	return &Replica{
		dir:      dir,
		st:       st,
		log:      eventlog.New(),
		man:      man,
		applied:  man.Version,
		observed: man.Version,
		tails:    make(map[string]*dirTail),
		events:   &dirTail{dir: store.EventsDir(dir)},
	}, nil
}

// Store returns the replica's local store. Treat it as read-only: it is
// positioned at AppliedVersion and mutated only by CatchUp.
func (r *Replica) Store() *store.Store { return r.st }

// Log returns the replica's local event log (read-only, like Store).
func (r *Replica) Log() *eventlog.Log { return r.log }

// AppliedVersion returns the highest global version applied so far. It
// never decreases.
func (r *Replica) AppliedVersion() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Watermarks returns the replica store's per-shard applied versions (the
// local layout's watermarks — the replica routes by its own table).
func (r *Replica) Watermarks() []uint64 {
	out := make([]uint64, r.st.ShardCount())
	for i := range out {
		out[i] = r.st.ShardVersion(i)
	}
	return out
}

// Staleness reports the lag bound as of the last CatchUp pass.
func (r *Replica) Staleness() Staleness {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Staleness{Applied: r.applied, Observed: r.observed, Lag: r.observed - r.applied}
}

// CatchUp runs one shipping pass: poll every WAL directory for newly
// flushed records, then apply everything that extends the dense global
// version order. Returns the number of store mutations applied. A pass
// that applies nothing and observes nothing new means the replica has
// converged with the primary's flushed log.
func (r *Replica) CatchUp() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	// Discover shard directories anew each pass: a primary reshard makes
	// new epoch directories appear mid-tail.
	walRoot := store.WALDir(r.dir)
	if entries, err := os.ReadDir(walRoot); err == nil {
		for _, e := range entries {
			if e.IsDir() {
				if _, ok := r.tails[e.Name()]; !ok {
					r.tails[e.Name()] = &dirTail{dir: walRoot + string(os.PathSeparator) + e.Name()}
				}
			}
		}
	}

	names := make([]string, 0, len(r.tails))
	for name := range r.tails {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := r.tails[name]
		maxKey, err := t.poll(func(key uint64, payload []byte) (record, bool, error) {
			if key <= r.man.Version || key <= r.applied {
				// Covered by the bootstrap snapshot or already applied
				// (a truncation jump re-read the segment).
				return record{}, false, nil
			}
			m, err := store.DecodeWALMutation(key, payload)
			if err != nil {
				return record{}, false, fmt.Errorf("replica: %s: %w", name, err)
			}
			return record{key: key, mut: m}, true, nil
		})
		if err != nil {
			return 0, err
		}
		if maxKey > r.observed {
			r.observed = maxKey
		}
	}

	// Apply in dense global order: at each step exactly one directory's
	// queue head is version applied+1 (each version lives in one shard's
	// log). A missing head means that shard's record is not flushed yet —
	// stop and retry next pass.
	applied := 0
	for {
		var next *dirTail
		for _, name := range names {
			t := r.tails[name]
			for len(t.pending) > 0 && t.pending[0].key <= r.applied {
				t.pending = t.pending[1:]
			}
			if len(t.pending) > 0 && t.pending[0].key == r.applied+1 {
				next = t
				break
			}
		}
		if next == nil {
			break
		}
		if err := r.st.Apply(next.pending[0].mut); err != nil {
			return applied, fmt.Errorf("replica: apply v%d: %w", next.pending[0].key, err)
		}
		next.pending = next.pending[1:]
		r.applied++
		applied++
	}

	if err := r.catchUpEvents(); err != nil {
		return applied, err
	}

	// Detect the truncation hole: every queue drained or parked beyond a
	// version we can never reach means the primary checkpointed past us.
	if r.observed > r.applied {
		stuck := true
		for _, name := range names {
			t := r.tails[name]
			if len(t.pending) > 0 && t.pending[0].key == r.applied+1 {
				stuck = false
				break
			}
		}
		if stuck {
			// Only report a hard gap when a newer manifest proves the
			// missing versions were checkpointed away (otherwise the
			// primary just has not flushed that shard yet).
			if man, err := store.ReadManifest(r.dir); err == nil && man.Version > r.applied {
				return applied, fmt.Errorf("%w: applied %d, checkpoint at %d", ErrGap, r.applied, man.Version)
			}
		}
	}
	return applied, nil
}

// catchUpEvents tails the event-log directory, applying events in dense
// sequence order (event segments are never truncated, so the stream always
// starts at sequence 1).
func (r *Replica) catchUpEvents() error {
	_, err := r.events.poll(func(seq uint64, payload []byte) (record, bool, error) {
		if seq <= r.eventSeq {
			return record{}, false, nil
		}
		e, err := eventlog.DecodeWALEvent(seq, payload)
		if err != nil {
			return record{}, false, fmt.Errorf("replica: events: %w", err)
		}
		return record{key: seq, ev: e}, true, nil
	})
	if err != nil {
		return err
	}
	t := r.events
	for len(t.pending) > 0 && t.pending[0].key == r.eventSeq+1 {
		e := t.pending[0].ev
		if _, err := r.log.Append(eventlog.Event{
			Time: e.Time, Type: e.Type,
			Worker: e.Worker, Task: e.Task, Requester: e.Requester, Contribution: e.Contribution,
			Amount: e.Amount, Field: e.Field, Note: e.Note,
		}); err != nil {
			return fmt.Errorf("replica: events: %w", err)
		}
		t.pending = t.pending[1:]
		r.eventSeq++
	}
	return nil
}

// Run starts a background poller calling CatchUp every interval until
// Stop. Errors are delivered to onErr (nil to ignore); polling continues
// after an error — a transient race with the primary's truncation heals on
// the next pass.
func (r *Replica) Run(interval time.Duration, onErr func(error)) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-tick.C:
				if _, err := r.CatchUp(); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
}

// Stop halts the background poller started by Run (no-op otherwise).
func (r *Replica) Stop() {
	if r.stop == nil {
		return
	}
	close(r.stop)
	<-r.done
	r.stop, r.done = nil, nil
}
