// Package retention models worker behaviour in response to fairness and
// transparency — the objective measures of §4.1 ("quantify measures such as
// contributions quality for fairness and worker retention for
// transparency").
//
// The model is a per-worker satisfaction process: satisfaction starts at a
// baseline and is moved by platform events (payments raise it; wrongful
// rejections, interruptions, and reneged bonuses lower it), while
// transparency damps the negative shocks — the mechanism the literature the
// paper cites reports (requester transparency increases engagement [16],
// workflow transparency increases contributions [13], feedback increases
// motivation [12]). Workers whose satisfaction falls below their churn
// point leave; engaged workers put more effort into contributions, which is
// how fairness/transparency feed back into contribution quality.
//
// The numeric constants are stated in one place (Params) and documented as
// modelling choices; the E6 experiment only relies on the directions, which
// are the paper's own hypotheses.
package retention

import (
	"repro/internal/model"
	"repro/internal/stats"
)

// Params sets the satisfaction dynamics. Zero values select documented
// defaults via WithDefaults; an explicit zero is expressed with any
// negative value (e.g. OpacityDrag: -1 means "no drag at all"), so a
// deliberate 0 is never silently upgraded to the default.
type Params struct {
	// Baseline is initial satisfaction in [0,1] (default 0.7).
	Baseline float64
	// ChurnPoint: a worker leaves when satisfaction < ChurnPoint
	// (default 0.3).
	ChurnPoint float64
	// PaymentBoost is the satisfaction gain per fair payment (default 0.02).
	PaymentBoost float64
	// RejectionShock is the satisfaction loss on an unexplained rejection
	// (default 0.15); with full transparency the loss is scaled by
	// (1 - TransparencyRelief * transparencyScore).
	RejectionShock float64
	// InterruptShock is the loss when in-progress work is cancelled
	// (default 0.2).
	InterruptShock float64
	// RenegeShock is the loss when a promised bonus is not paid
	// (default 0.25).
	RenegeShock float64
	// TransparencyRelief in [0,1] is how much a fully transparent platform
	// dampens negative shocks (default 0.6) — disclosed criteria make
	// rejections legible rather than arbitrary.
	TransparencyRelief float64
	// QualityCoupling is how strongly satisfaction modulates contribution
	// quality around its skill-determined base (default 0.3): effective
	// quality = base * (1 - QualityCoupling/2 + QualityCoupling*satisfaction).
	QualityCoupling float64
	// OpacityDrag is the per-round satisfaction decay on a fully opaque
	// platform (default 0.015), scaled by (1 - transparencyScore): the
	// standing frustration the paper's introduction attributes to opacity
	// ("a crowdsourcing platform that provides better transparency would
	// generate less frustration among workers and see better worker
	// retention"). Applied by EndRound.
	OpacityDrag float64
}

// WithDefaults fills zero fields with the documented defaults and maps
// negative fields (the explicit-zero sentinel) to 0.
func (p Params) WithDefaults() Params {
	p.Baseline = orDefault(p.Baseline, 0.7)
	p.ChurnPoint = orDefault(p.ChurnPoint, 0.3)
	p.PaymentBoost = orDefault(p.PaymentBoost, 0.02)
	p.RejectionShock = orDefault(p.RejectionShock, 0.15)
	p.InterruptShock = orDefault(p.InterruptShock, 0.2)
	p.RenegeShock = orDefault(p.RenegeShock, 0.25)
	p.TransparencyRelief = orDefault(p.TransparencyRelief, 0.6)
	p.QualityCoupling = orDefault(p.QualityCoupling, 0.3)
	p.OpacityDrag = orDefault(p.OpacityDrag, 0.015)
	return p
}

// orDefault maps 0 to the documented default and any negative value to an
// explicit 0.
func orDefault(v, def float64) float64 {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// Model tracks satisfaction for a worker population under a given
// transparency score.
type Model struct {
	params       Params
	transparency float64 // TransparencyScore of the platform policy, [0,1]
	satisfaction map[model.WorkerID]float64
	left         map[model.WorkerID]bool
	rng          *stats.RNG
}

// NewModel returns a model with the given parameters and platform
// transparency score in [0,1].
func NewModel(params Params, transparencyScore float64, rng *stats.RNG) *Model {
	if transparencyScore < 0 {
		transparencyScore = 0
	}
	if transparencyScore > 1 {
		transparencyScore = 1
	}
	return &Model{
		params:       params.WithDefaults(),
		transparency: transparencyScore,
		satisfaction: make(map[model.WorkerID]float64),
		left:         make(map[model.WorkerID]bool),
		rng:          rng,
	}
}

// Join registers a worker at baseline satisfaction.
func (m *Model) Join(id model.WorkerID) {
	if _, ok := m.satisfaction[id]; !ok {
		m.satisfaction[id] = m.params.Baseline
	}
}

// Satisfaction returns the worker's current satisfaction (0 if unknown).
func (m *Model) Satisfaction(id model.WorkerID) float64 { return m.satisfaction[id] }

// Active reports whether the worker is still on the platform.
func (m *Model) Active(id model.WorkerID) bool {
	_, joined := m.satisfaction[id]
	return joined && !m.left[id]
}

// relief scales a negative shock by the platform's transparency.
func (m *Model) relief(shock float64) float64 {
	return shock * (1 - m.params.TransparencyRelief*m.transparency)
}

// shift applies a satisfaction delta and returns true if the worker churned
// as a result.
func (m *Model) shift(id model.WorkerID, delta float64) bool {
	if m.left[id] {
		return false
	}
	s := m.satisfaction[id] + delta
	if s > 1 {
		s = 1
	}
	if s < 0 {
		s = 0
	}
	m.satisfaction[id] = s
	if s < m.params.ChurnPoint {
		m.left[id] = true
		return true
	}
	return false
}

// OnPayment records a payment to the worker; returns true if (impossibly
// for a boost) the worker churned.
func (m *Model) OnPayment(id model.WorkerID) bool {
	return m.shift(id, m.params.PaymentBoost)
}

// OnRejection records a rejection. explained marks rejections accompanied
// by disclosed rejection criteria (the requester-transparency case), which
// hurt less than opaque ones on top of the platform-level relief.
func (m *Model) OnRejection(id model.WorkerID, explained bool) bool {
	shock := m.relief(m.params.RejectionShock)
	if explained {
		shock /= 2
	}
	return m.shift(id, -shock)
}

// OnInterruption records cancelled in-progress work (the Axiom 5 injury).
func (m *Model) OnInterruption(id model.WorkerID) bool {
	return m.shift(id, -m.relief(m.params.InterruptShock))
}

// OnRenege records a dishonoured bonus promise.
func (m *Model) OnRenege(id model.WorkerID) bool {
	return m.shift(id, -m.relief(m.params.RenegeShock))
}

// EndRound applies the opacity drag to every active worker and returns the
// ids of workers who churned as a result. Fully transparent platforms
// (score 1) have zero drag.
func (m *Model) EndRound() []model.WorkerID {
	drag := m.params.OpacityDrag * (1 - m.transparency)
	if drag == 0 {
		return nil
	}
	var churned []model.WorkerID
	ids := make([]model.WorkerID, 0, len(m.satisfaction))
	for id := range m.satisfaction {
		ids = append(ids, id)
	}
	// Deterministic order keeps runs reproducible across map iteration.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		if m.left[id] {
			continue
		}
		if m.shift(id, -drag) {
			churned = append(churned, id)
		}
	}
	return churned
}

// EffectiveQuality modulates a worker's skill-determined base quality by
// their current engagement. Satisfied workers work near (above) base;
// dissatisfied ones degrade.
func (m *Model) EffectiveQuality(id model.WorkerID, base float64) float64 {
	s := m.satisfaction[id]
	q := base * (1 - m.params.QualityCoupling/2 + m.params.QualityCoupling*s)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return q
}

// RetentionRate returns the share of joined workers still active.
func (m *Model) RetentionRate() float64 {
	if len(m.satisfaction) == 0 {
		return 1
	}
	left := 0
	for id := range m.satisfaction {
		if m.left[id] {
			left++
		}
	}
	return 1 - float64(left)/float64(len(m.satisfaction))
}

// Joined returns the number of workers ever registered.
func (m *Model) Joined() int { return len(m.satisfaction) }

// Churned returns the number of workers who left.
func (m *Model) Churned() int {
	n := 0
	for id := range m.satisfaction {
		if m.left[id] {
			n++
		}
	}
	return n
}
