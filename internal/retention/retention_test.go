package retention

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

func newModel(transparency float64) *Model {
	return NewModel(Params{}, transparency, stats.NewRNG(1))
}

func TestJoinAndBaseline(t *testing.T) {
	m := newModel(0)
	m.Join("w1")
	if got := m.Satisfaction("w1"); got != 0.7 {
		t.Fatalf("baseline = %v", got)
	}
	if !m.Active("w1") {
		t.Fatal("joined worker inactive")
	}
	if m.Active("ghost") {
		t.Fatal("unknown worker active")
	}
	if m.Joined() != 1 {
		t.Fatalf("joined = %d", m.Joined())
	}
	// Double join must not reset satisfaction.
	m.OnPayment("w1")
	s := m.Satisfaction("w1")
	m.Join("w1")
	if m.Satisfaction("w1") != s {
		t.Fatal("re-join reset satisfaction")
	}
}

func TestPaymentBoosts(t *testing.T) {
	m := newModel(0)
	m.Join("w1")
	m.OnPayment("w1")
	if got := m.Satisfaction("w1"); got != 0.72 {
		t.Fatalf("after payment = %v", got)
	}
}

func TestSatisfactionClampedAtOne(t *testing.T) {
	m := newModel(0)
	m.Join("w1")
	for i := 0; i < 100; i++ {
		m.OnPayment("w1")
	}
	if got := m.Satisfaction("w1"); got != 1 {
		t.Fatalf("satisfaction = %v, want clamped 1", got)
	}
}

func TestRejectionsChurnOpaqueWorkers(t *testing.T) {
	m := newModel(0)
	m.Join("w1")
	churned := false
	for i := 0; i < 10 && !churned; i++ {
		churned = m.OnRejection("w1", false)
	}
	if !churned {
		t.Fatal("repeated opaque rejections never churned the worker")
	}
	if m.Active("w1") {
		t.Fatal("churned worker still active")
	}
	if m.RetentionRate() != 0 {
		t.Fatalf("retention = %v", m.RetentionRate())
	}
	if m.Churned() != 1 {
		t.Fatalf("churned = %d", m.Churned())
	}
}

func TestTransparencyDampensShocks(t *testing.T) {
	opaque := newModel(0)
	transparent := newModel(1)
	opaque.Join("w1")
	transparent.Join("w1")
	opaque.OnRejection("w1", false)
	transparent.OnRejection("w1", false)
	if transparent.Satisfaction("w1") <= opaque.Satisfaction("w1") {
		t.Fatalf("transparency did not dampen: %v vs %v",
			transparent.Satisfaction("w1"), opaque.Satisfaction("w1"))
	}
}

func TestExplainedRejectionHurtsLess(t *testing.T) {
	a, b := newModel(0), newModel(0)
	a.Join("w1")
	b.Join("w1")
	a.OnRejection("w1", true)
	b.OnRejection("w1", false)
	if a.Satisfaction("w1") <= b.Satisfaction("w1") {
		t.Fatal("explained rejection did not hurt less")
	}
}

func TestInterruptionAndRenegeShocks(t *testing.T) {
	m := newModel(0)
	m.Join("w1")
	m.Join("w2")
	m.OnInterruption("w1")
	m.OnRenege("w2")
	// Renege (0.25) must hurt more than interruption (0.2).
	if m.Satisfaction("w2") >= m.Satisfaction("w1") {
		t.Fatalf("renege %v vs interrupt %v", m.Satisfaction("w2"), m.Satisfaction("w1"))
	}
}

func TestChurnedWorkerIgnoresFurtherEvents(t *testing.T) {
	m := newModel(0)
	m.Join("w1")
	for i := 0; i < 10; i++ {
		m.OnRenege("w1")
	}
	s := m.Satisfaction("w1")
	m.OnPayment("w1")
	if m.Satisfaction("w1") != s {
		t.Fatal("churned worker satisfaction moved")
	}
	if m.Active("w1") {
		t.Fatal("payment revived churned worker")
	}
}

func TestEffectiveQualityCoupling(t *testing.T) {
	m := newModel(0)
	m.Join("sad")
	m.Join("happy")
	for i := 0; i < 2; i++ {
		m.OnRejection("sad", false)
	}
	for i := 0; i < 10; i++ {
		m.OnPayment("happy")
	}
	sadQ := m.EffectiveQuality("sad", 0.8)
	happyQ := m.EffectiveQuality("happy", 0.8)
	if sadQ >= happyQ {
		t.Fatalf("quality coupling inverted: sad %v vs happy %v", sadQ, happyQ)
	}
	if sadQ < 0 || happyQ > 1 {
		t.Fatalf("quality out of range: %v, %v", sadQ, happyQ)
	}
}

func TestEndRoundOpacityDrag(t *testing.T) {
	opaque := newModel(0)
	transparent := newModel(1)
	opaque.Join("w1")
	transparent.Join("w1")
	for i := 0; i < 5; i++ {
		opaque.EndRound()
		transparent.EndRound()
	}
	if transparent.Satisfaction("w1") <= opaque.Satisfaction("w1") {
		t.Fatal("opacity drag missing")
	}
	if transparent.Satisfaction("w1") != 0.7 {
		t.Fatalf("fully transparent platform dragged: %v", transparent.Satisfaction("w1"))
	}
}

func TestEndRoundChurnsEventually(t *testing.T) {
	m := NewModel(Params{OpacityDrag: 0.2}, 0, stats.NewRNG(1))
	m.Join("w1")
	var churned []model.WorkerID
	for i := 0; i < 10 && len(churned) == 0; i++ {
		churned = m.EndRound()
	}
	if len(churned) != 1 || churned[0] != "w1" {
		t.Fatalf("churned = %v", churned)
	}
}

func TestEndRoundDeterministicOrder(t *testing.T) {
	run := func() []model.WorkerID {
		m := NewModel(Params{OpacityDrag: 0.5}, 0, stats.NewRNG(1))
		for i := 0; i < 20; i++ {
			m.Join(model.WorkerID(fmt.Sprintf("w%02d", i)))
		}
		return m.EndRound()
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("non-deterministic churn order:\n%v\n%v", a, b)
	}
}

func TestRetentionRateEmpty(t *testing.T) {
	if newModel(0).RetentionRate() != 1 {
		t.Fatal("empty model retention should be 1")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.Baseline != 0.7 || p.ChurnPoint != 0.3 || p.OpacityDrag != 0.015 {
		t.Fatalf("defaults = %+v", p)
	}
	// Explicit values survive.
	p = Params{Baseline: 0.5}.WithDefaults()
	if p.Baseline != 0.5 {
		t.Fatal("explicit baseline overwritten")
	}
}

func TestTransparencyScoreClamped(t *testing.T) {
	m := NewModel(Params{}, 5, stats.NewRNG(1)) // out-of-range score
	m.Join("w1")
	m.OnRejection("w1", false)
	// Clamped to 1: relief = 0.6, shock = 0.15*0.4 = 0.06.
	want := 0.7 - 0.15*(1-0.6)
	if got := m.Satisfaction("w1"); math.Abs(got-want) > 1e-12 {
		t.Fatalf("satisfaction = %v, want %v", got, want)
	}
}

// Negative params are the explicit-zero sentinel; plain zero still selects
// the documented default.
func TestParamsExplicitZeroSentinel(t *testing.T) {
	def := Params{}.WithDefaults()
	if def.OpacityDrag != 0.015 || def.RejectionShock != 0.15 {
		t.Fatalf("defaults changed: %+v", def)
	}
	p := Params{OpacityDrag: -1, RejectionShock: -1, ChurnPoint: -1}.WithDefaults()
	if p.OpacityDrag != 0 || p.RejectionShock != 0 || p.ChurnPoint != 0 {
		t.Fatalf("explicit zeros not honoured: %+v", p)
	}
	// Behavioural check: zero opacity drag on a fully opaque platform must
	// leave satisfaction untouched at end of round.
	m := NewModel(Params{OpacityDrag: -1}, 0, stats.NewRNG(1))
	m.Join("w1")
	before := m.Satisfaction("w1")
	if churned := m.EndRound(); len(churned) != 0 {
		t.Fatalf("churned = %v", churned)
	}
	if m.Satisfaction("w1") != before {
		t.Fatalf("satisfaction moved from %v to %v with zero drag", before, m.Satisfaction("w1"))
	}
	// Zero rejection shock: rejections are free.
	m2 := NewModel(Params{RejectionShock: -1}, 0, stats.NewRNG(1))
	m2.Join("w1")
	before = m2.Satisfaction("w1")
	m2.OnRejection("w1", false)
	if m2.Satisfaction("w1") != before {
		t.Fatal("zero rejection shock still moved satisfaction")
	}
}
