// Package sweep is the concurrent experiment-sweep engine: it expands a
// grid of experiments × scales × seeds into jobs, runs them on a bounded
// worker pool, and collects the result tables in grid order.
//
// Determinism is the contract. Each job derives a private seed from the
// grid's base seed and the job's coordinates via stats.DeriveSeed, so the
// stream a shard consumes depends only on its position in the grid — never
// on which pool worker ran it or in what order jobs finished. The same
// grid at any parallelism therefore produces byte-identical reports
// (excluding wall-clock fields), which TestSweepDeterministic pins down.
package sweep

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/experiments"
	"repro/internal/par"
	"repro/internal/stats"
)

// Grid is the parameter space of one sweep: the cross product of
// experiments, scale factors, and replicate seeds.
type Grid struct {
	// Experiments lists experiment IDs ("E1".."E10"); empty means all.
	Experiments []string
	// Scales multiplies each experiment's default sizes; empty means {1}.
	Scales []float64
	// Seeds are the replicate base seeds; empty means {42}.
	Seeds []uint64
}

// Job is one cell of the grid.
type Job struct {
	// Index is the job's position in grid order (experiments outermost,
	// then scales, then seeds).
	Index int `json:"index"`
	// Experiment is the experiment ID.
	Experiment string `json:"experiment"`
	// Scale is the size multiplier.
	Scale float64 `json:"scale"`
	// Seed is the replicate base seed from the grid.
	Seed uint64 `json:"seed"`
	// ShardSeed is the derived per-shard seed actually fed to the
	// experiment's RNG streams.
	ShardSeed uint64 `json:"shard_seed"`
}

// Result is one finished job.
type Result struct {
	Job
	// Table is the experiment's result grid.
	Table *experiments.Table `json:"table"`
	// Elapsed is the job's wall time. It is excluded from determinism
	// comparisons.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Report is a completed sweep in grid order.
type Report struct {
	// Parallelism is the pool size the sweep ran with.
	Parallelism int `json:"parallelism"`
	// Results holds one entry per job, ordered by Job.Index.
	Results []Result `json:"results"`
}

// Options tunes a sweep run.
type Options struct {
	// Parallelism bounds the worker pool; <= 0 means GOMAXPROCS.
	Parallelism int
}

// Jobs expands the grid into jobs in deterministic grid order, resolving
// defaults and validating experiment IDs.
func (g Grid) Jobs() ([]Job, error) {
	exps := g.Experiments
	if len(exps) == 0 {
		exps = experiments.IDs()
	}
	specIdx := make(map[string]int, len(exps))
	for i, id := range experiments.IDs() {
		specIdx[id] = i
	}
	for _, id := range exps {
		if _, ok := specIdx[id]; !ok {
			return nil, fmt.Errorf("sweep: unknown experiment %q (want one of %v)", id, experiments.IDs())
		}
	}
	scales := g.Scales
	if len(scales) == 0 {
		scales = []float64{1}
	}
	for _, s := range scales {
		if s <= 0 {
			return nil, fmt.Errorf("sweep: non-positive scale %v", s)
		}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{42}
	}
	jobs := make([]Job, 0, len(exps)*len(scales)*len(seeds))
	for _, id := range exps {
		for si, scale := range scales {
			for _, seed := range seeds {
				jobs = append(jobs, Job{
					Index:      len(jobs),
					Experiment: id,
					Scale:      scale,
					Seed:       seed,
					// The shard seed mixes the grid coordinates, not the
					// job index, so adding experiments or scales to a grid
					// never perturbs the streams of the cells it already
					// had.
					ShardSeed: stats.DeriveSeed(seed, uint64(specIdx[id]), uint64(si)),
				})
			}
		}
	}
	return jobs, nil
}

// Run executes the grid on a bounded worker pool and returns the report in
// grid order.
func Run(g Grid, opt Options) (*Report, error) {
	jobs, err := g.Jobs()
	if err != nil {
		return nil, err
	}
	workers := opt.Parallelism
	if workers <= 0 {
		workers = par.Workers()
	}
	results := make([]Result, len(jobs))
	// Do, not For: jobs are whole experiments, so even a two-job grid is
	// worth the pool. While the job pool holds the process's worker-token
	// budget, the experiments' inner kernels (pair generation, answer
	// scoring) find no spare tokens and run inline — parallelism stays at
	// the job level instead of multiplying.
	par.Do(len(jobs), workers, func(i int) {
		job := jobs[i]
		spec, _ := experiments.SpecByID(job.Experiment) // validated by Jobs
		start := time.Now()
		table := spec.Run(experiments.Params{Seed: job.ShardSeed, Scale: job.Scale})
		results[i] = Result{Job: job, Table: table, Elapsed: time.Since(start)}
	})
	return &Report{Parallelism: workers, Results: results}, nil
}

// String renders every result as a human-readable table preceded by its
// grid coordinates.
func (r *Report) String() string {
	var b []byte
	for _, res := range r.Results {
		b = append(b, fmt.Sprintf("--- job %d: %s scale=%g seed=%d (shard seed %d)\n",
			res.Index, res.Experiment, res.Scale, res.Seed, res.ShardSeed)...)
		b = append(b, res.Table.String()...)
		b = append(b, '\n')
	}
	return string(b)
}

// JSON renders the report machine-readable, indented for diffing.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Fingerprint summarises the sweep's tables (IDs, columns, rows) without
// any wall-clock field — the byte-identical payload determinism tests and
// cache keys compare.
func (r *Report) Fingerprint() string {
	var b []byte
	for _, res := range r.Results {
		b = append(b, fmt.Sprintf("%d|%s|%g|%d|%d\n", res.Index, res.Experiment, res.Scale, res.Seed, res.ShardSeed)...)
		b = append(b, res.Table.String()...)
	}
	return string(b)
}
