package sweep

import (
	"encoding/json"
	"strings"
	"testing"
)

// deterministicGrid covers experiments whose tables carry no wall-clock
// cells (E7/E8 embed timings in their rows, so their bytes legitimately
// vary run to run even though their measured quantities do not).
func deterministicGrid() Grid {
	return Grid{
		Experiments: []string{"E1", "E3", "E4"},
		Scales:      []float64{0.1, 0.2},
		Seeds:       []uint64{1, 2},
	}
}

func TestSweepDeterministic(t *testing.T) {
	grid := deterministicGrid()
	serial, err := Run(grid, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(grid, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(grid, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Fingerprint() != parallel.Fingerprint() {
		t.Fatal("parallel sweep diverged from the serial run on the same grid")
	}
	if parallel.Fingerprint() != again.Fingerprint() {
		t.Fatal("two identical parallel sweeps diverged")
	}
}

func TestSweepSeedChangesResults(t *testing.T) {
	a, err := Run(Grid{Experiments: []string{"E1"}, Scales: []float64{0.1}, Seeds: []uint64{1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Grid{Experiments: []string{"E1"}, Scales: []float64{0.1}, Seeds: []uint64{2}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Results[0].Table.String() == b.Results[0].Table.String() {
		t.Fatal("different seeds produced identical E1 tables")
	}
}

func TestGridJobsOrderAndDefaults(t *testing.T) {
	jobs, err := Grid{}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 11 {
		t.Fatalf("default grid expanded to %d jobs, want 11 (all experiments × {1} × {42})", len(jobs))
	}
	if jobs[0].Experiment != "E1" || jobs[10].Experiment != "E11" {
		t.Fatalf("default grid order wrong: first %s last %s", jobs[0].Experiment, jobs[10].Experiment)
	}
	for i, j := range jobs {
		if j.Index != i {
			t.Fatalf("job %d has Index %d", i, j.Index)
		}
		if j.Seed != 42 || j.Scale != 1 {
			t.Fatalf("job %d defaults wrong: %+v", i, j)
		}
	}
}

func TestGridShardSeedsStableUnderGridGrowth(t *testing.T) {
	small, err := Grid{Experiments: []string{"E2"}, Seeds: []uint64{7}}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	big, err := Grid{Experiments: []string{"E1", "E2", "E3"}, Seeds: []uint64{7}}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if small[0].ShardSeed != big[1].ShardSeed {
		t.Fatal("adding experiments to the grid perturbed an existing cell's shard seed")
	}
	if big[0].ShardSeed == big[1].ShardSeed || big[1].ShardSeed == big[2].ShardSeed {
		t.Fatal("distinct grid cells share a shard seed")
	}
}

func TestGridRejectsInvalid(t *testing.T) {
	if _, err := (Grid{Experiments: []string{"E99"}}).Jobs(); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := (Grid{Scales: []float64{0}}).Jobs(); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := Run(Grid{Experiments: []string{"nope"}}, Options{}); err == nil {
		t.Fatal("Run accepted an invalid grid")
	}
}

func TestReportJSONRoundTrips(t *testing.T) {
	rep, err := Run(Grid{Experiments: []string{"E3"}, Scales: []float64{0.2}, Seeds: []uint64{5}}, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Results) != 1 || decoded.Results[0].Experiment != "E3" {
		t.Fatalf("decoded report wrong: %+v", decoded)
	}
	if decoded.Results[0].Table == nil || len(decoded.Results[0].Table.Rows) == 0 {
		t.Fatal("decoded table empty")
	}
	if !strings.Contains(rep.String(), "=== E3") {
		t.Fatal("human rendering missing table header")
	}
}
