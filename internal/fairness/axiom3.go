package fairness

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/similarity"
	"repro/internal/store"
)

// CheckAxiom3 audits fairness in worker compensation:
//
//	"Given two distinct workers wi and wj who contributed to the same task
//	 t, if their contributions are similar, they should receive the same
//	 reward dt."
//
// For each task, contributions from distinct workers are compared pairwise
// with ContributionSimilarity (n-grams for text, nDCG for rankings, per the
// paper); pairs at/above cfg.ContributionThreshold must be paid within
// cfg.PayTolerance (relative) of each other.
func CheckAxiom3(st *store.Store, cfg Config) *Report {
	tasks := st.Tasks()
	ids := make([]model.TaskID, len(tasks))
	for i, t := range tasks {
		ids[i] = t.ID
	}
	return foldTaskAudits(CheckAxiom3Tasks(st, cfg, ids))
}

// CheckAxiom3Delta audits only the tasks in dirty — those whose
// contribution sets gained members or payments since the last audit. The
// per-task verdicts are exactly CheckAxiom3's, so replacing the stored
// results for dirty tasks reproduces the full audit: contributions never
// move between tasks, and a task with no changed contribution cannot change
// status.
func CheckAxiom3Delta(st *store.Store, cfg Config, dirty map[model.TaskID]bool) *Report {
	return foldTaskAudits(CheckAxiom3Tasks(st, cfg, sortedIDList(dirty)))
}

// TaskAudit is one task's Axiom 3 verdict, as produced by CheckAxiom3Tasks:
// the pair count the task contributed and its violations in checker order.
type TaskAudit struct {
	Task       model.TaskID
	Checked    int
	Violations []Violation
}

// CheckAxiom3Tasks audits each listed task independently, fanning the
// per-task checks out on the bounded pool into disjoint result slots —
// the batch form incremental auditors fold from, replacing one
// map-allocating delta call per dirty task. Slot k is always ids[k]'s
// verdict, so output is byte-identical to a serial loop regardless of
// scheduling; pass ids sorted for deterministic concatenation order.
func CheckAxiom3Tasks(st *store.Store, cfg Config, ids []model.TaskID) []TaskAudit {
	prov := cfg.provider(st)
	out := make([]TaskAudit, len(ids))
	par.For(len(ids), 0, func(k int) {
		checked, vs := checkAxiom3Task(st, cfg, prov, ids[k])
		out[k] = TaskAudit{Task: ids[k], Checked: checked, Violations: vs}
	})
	return out
}

// foldTaskAudits concatenates per-task verdicts into one report.
func foldTaskAudits(audits []TaskAudit) *Report {
	rep := &Report{Axiom: Axiom3Compensation}
	for i := range audits {
		rep.Checked += audits[i].Checked
		rep.Violations = append(rep.Violations, audits[i].Violations...)
	}
	sortViolations(rep.Violations)
	return rep
}

// checkAxiom3Task runs the pairwise compensation audit over one task's
// contributions. The exact backend scores every pair (pruned=false from
// the provider) on the parallel kernel; the LSH backend scores only the
// index's candidate pairs, walked in the same serial pair order. Without a
// memo scores are computed directly; with one, each pair is routed through
// the cache (the memoized path is the incremental engine's, where most
// pairs are warm). Exhaustive mode forces the all-pairs path.
func checkAxiom3Task(st *store.Store, cfg Config, prov CandidateProvider, tid model.TaskID) (int, []Violation) {
	simThr := orDefault(cfg.ContributionThreshold, 0.8)
	payTol := orDefault(cfg.PayTolerance, 0.01)
	contribs := st.ContributionsByTask(tid)

	// emit scores one pair against the thresholds.
	checked := 0
	var out []Violation
	emit := func(k int, sim float64) {
		i, j := similarity.PairAt(len(contribs), k)
		a, b := contribs[i], contribs[j]
		if a.Worker == b.Worker {
			return // the axiom quantifies over distinct workers
		}
		checked++
		if sim < simThr {
			return
		}
		if equalPay(a.Paid, b.Paid, payTol) {
			return
		}
		gap := math.Abs(a.Paid - b.Paid)
		hi := math.Max(a.Paid, b.Paid)
		var sev float64
		if hi > 0 {
			sev = gap / hi
		} else {
			sev = 1
		}
		out = append(out, Violation{
			Axiom:    Axiom3Compensation,
			Subjects: []string{string(a.ID), string(b.ID)},
			Detail: fmt.Sprintf("task %s: contributions %.0f%% similar but paid %.4f vs %.4f",
				tid, sim*100, a.Paid, b.Paid),
			Severity: sev,
		})
	}

	score := func(i, j int) float64 {
		a, b := contribs[i], contribs[j]
		if cfg.Memo != nil {
			return cfg.Memo.ContribPair(a.ID, b.ID, func() float64 {
				return similarity.ContributionSimilarity(a, b)
			})
		}
		return similarity.ContributionSimilarity(a, b)
	}

	var ks []int
	pruned := false
	if !cfg.Exhaustive {
		ks, pruned = prov.ContribPairs(tid, contribs)
	}
	buf := getSims()
	defer putSims(buf)
	if !pruned {
		// Score every pair up front on the parallel kernel — profile
		// construction dominates audit cost on text-heavy tasks — then walk
		// the scores in the kernel's serial pair order so the report is
		// identical to the old nested loop. The score buffer is pooled:
		// delta audits run this per dirty task per pass.
		sims := similarity.ScorePairsInto((*buf)[:0], len(contribs), score)
		*buf = sims
		for k := range sims {
			emit(k, sims[k])
		}
		return checked, out
	}
	// Pruned path: score only the candidate pairs, still on the parallel
	// pool, then walk them in ascending pair order.
	sims := (*buf)[:0]
	if cap(sims) < len(ks) {
		sims = make([]float64, len(ks))
	} else {
		sims = sims[:len(ks)]
	}
	*buf = sims
	par.For(len(ks), 0, func(x int) {
		i, j := similarity.PairAt(len(contribs), ks[x])
		sims[x] = score(i, j)
	})
	for x, k := range ks {
		emit(k, sims[x])
	}
	return checked, out
}

// equalPay reports whether two payments are within the relative tolerance
// (relative to the larger; two zero payments are equal).
func equalPay(a, b, tol float64) bool {
	hi := math.Max(a, b)
	if hi == 0 {
		return true
	}
	return math.Abs(a-b)/hi <= tol
}
