package fairness

import (
	"fmt"
	"math"

	"repro/internal/similarity"
	"repro/internal/store"
)

// CheckAxiom3 audits fairness in worker compensation:
//
//	"Given two distinct workers wi and wj who contributed to the same task
//	 t, if their contributions are similar, they should receive the same
//	 reward dt."
//
// For each task, contributions from distinct workers are compared pairwise
// with ContributionSimilarity (n-grams for text, nDCG for rankings, per the
// paper); pairs at/above cfg.ContributionThreshold must be paid within
// cfg.PayTolerance (relative) of each other.
func CheckAxiom3(st *store.Store, cfg Config) *Report {
	rep := &Report{Axiom: Axiom3Compensation}
	simThr := orDefault(cfg.ContributionThreshold, 0.8)
	payTol := orDefault(cfg.PayTolerance, 0.01)

	for _, t := range st.Tasks() {
		contribs := st.ContributionsByTask(t.ID)
		// Score every pair up front on the parallel kernel — profile
		// construction dominates audit cost on text-heavy tasks — then walk
		// the scores in the kernel's serial pair order so the report is
		// identical to the old nested loop.
		sims := similarity.ContributionPairScores(contribs)
		for k, sim := range sims {
			i, j := similarity.PairAt(len(contribs), k)
			a, b := contribs[i], contribs[j]
			if a.Worker == b.Worker {
				continue // the axiom quantifies over distinct workers
			}
			rep.Checked++
			if sim < simThr {
				continue
			}
			if equalPay(a.Paid, b.Paid, payTol) {
				continue
			}
			gap := math.Abs(a.Paid - b.Paid)
			hi := math.Max(a.Paid, b.Paid)
			var sev float64
			if hi > 0 {
				sev = gap / hi
			} else {
				sev = 1
			}
			rep.Violations = append(rep.Violations, Violation{
				Axiom:    Axiom3Compensation,
				Subjects: []string{string(a.ID), string(b.ID)},
				Detail: fmt.Sprintf("task %s: contributions %.0f%% similar but paid %.4f vs %.4f",
					t.ID, sim*100, a.Paid, b.Paid),
				Severity: sev,
			})
		}
	}
	sortViolations(rep.Violations)
	return rep
}

// equalPay reports whether two payments are within the relative tolerance
// (relative to the larger; two zero payments are equal).
func equalPay(a, b, tol float64) bool {
	hi := math.Max(a, b)
	if hi == 0 {
		return true
	}
	return math.Abs(a-b)/hi <= tol
}
