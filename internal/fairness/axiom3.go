package fairness

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/similarity"
	"repro/internal/store"
)

// CheckAxiom3 audits fairness in worker compensation:
//
//	"Given two distinct workers wi and wj who contributed to the same task
//	 t, if their contributions are similar, they should receive the same
//	 reward dt."
//
// For each task, contributions from distinct workers are compared pairwise
// with ContributionSimilarity (n-grams for text, nDCG for rankings, per the
// paper); pairs at/above cfg.ContributionThreshold must be paid within
// cfg.PayTolerance (relative) of each other.
func CheckAxiom3(st *store.Store, cfg Config) *Report {
	rep := &Report{Axiom: Axiom3Compensation}
	for _, t := range st.Tasks() {
		checked, vs := checkAxiom3Task(st, cfg, t.ID)
		rep.Checked += checked
		rep.Violations = append(rep.Violations, vs...)
	}
	sortViolations(rep.Violations)
	return rep
}

// CheckAxiom3Delta audits only the tasks in dirty — those whose
// contribution sets gained members or payments since the last audit. The
// per-task verdicts are exactly CheckAxiom3's, so replacing the stored
// results for dirty tasks reproduces the full audit: contributions never
// move between tasks, and a task with no changed contribution cannot change
// status.
func CheckAxiom3Delta(st *store.Store, cfg Config, dirty map[model.TaskID]bool) *Report {
	rep := &Report{Axiom: Axiom3Compensation}
	ids := make([]model.TaskID, 0, len(dirty))
	for id := range dirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		checked, vs := checkAxiom3Task(st, cfg, id)
		rep.Checked += checked
		rep.Violations = append(rep.Violations, vs...)
	}
	sortViolations(rep.Violations)
	return rep
}

// checkAxiom3Task runs the pairwise compensation audit over one task's
// contributions. Without a memo the pair scores come from the parallel
// kernel; with one, each pair is routed through the cache (the memoized
// path is the incremental engine's, where most pairs are warm).
func checkAxiom3Task(st *store.Store, cfg Config, tid model.TaskID) (int, []Violation) {
	simThr := orDefault(cfg.ContributionThreshold, 0.8)
	payTol := orDefault(cfg.PayTolerance, 0.01)
	contribs := st.ContributionsByTask(tid)

	// Score every pair up front on the parallel kernel — profile
	// construction dominates audit cost on text-heavy tasks — then walk the
	// scores in the kernel's serial pair order so the report is identical
	// to the old nested loop. With a memo attached each score routes
	// through the (concurrency-safe) cache, so warm pairs are lookups and
	// cold tasks still fan out.
	var sims []float64
	if cfg.Memo == nil {
		sims = similarity.ContributionPairScores(contribs)
	} else {
		sims = similarity.ScorePairs(len(contribs), func(i, j int) float64 {
			a, b := contribs[i], contribs[j]
			return cfg.Memo.ContribPair(a.ID, b.ID, func() float64 {
				return similarity.ContributionSimilarity(a, b)
			})
		})
	}

	checked := 0
	var out []Violation
	for k := 0; k < similarity.PairCount(len(contribs)); k++ {
		i, j := similarity.PairAt(len(contribs), k)
		a, b := contribs[i], contribs[j]
		if a.Worker == b.Worker {
			continue // the axiom quantifies over distinct workers
		}
		checked++
		sim := sims[k]
		if sim < simThr {
			continue
		}
		if equalPay(a.Paid, b.Paid, payTol) {
			continue
		}
		gap := math.Abs(a.Paid - b.Paid)
		hi := math.Max(a.Paid, b.Paid)
		var sev float64
		if hi > 0 {
			sev = gap / hi
		} else {
			sev = 1
		}
		out = append(out, Violation{
			Axiom:    Axiom3Compensation,
			Subjects: []string{string(a.ID), string(b.ID)},
			Detail: fmt.Sprintf("task %s: contributions %.0f%% similar but paid %.4f vs %.4f",
				tid, sim*100, a.Paid, b.Paid),
			Severity: sev,
		})
	}
	return checked, out
}

// equalPay reports whether two payments are within the relative tolerance
// (relative to the larger; two zero payments are equal).
func equalPay(a, b, tol float64) bool {
	hi := math.Max(a, b)
	if hi == 0 {
		return true
	}
	return math.Abs(a-b)/hi <= tol
}
