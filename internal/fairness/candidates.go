package fairness

import (
	"math"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/similarity"
)

// Candidate-index kinds accepted by Config.CandidateIndex.
const (
	// CandidateExact is the inverted-token-index backend: full recall,
	// byte-identical to the pre-index inline scans — the escape hatch and
	// the determinism oracle LSH is validated against.
	CandidateExact = "exact"
	// CandidateLSH is the MinHash/LSH banding backend: sub-quadratic
	// candidate generation with recall ≥ ~0.98 at the configured
	// thresholds (band/row parameters are derived from them).
	CandidateLSH = "lsh"
)

// CandidateKind normalises Config.CandidateIndex: the empty string means
// CandidateExact. It panics on an unknown kind — a configuration error, not
// a runtime condition.
func (c *Config) CandidateKind() string {
	switch c.CandidateIndex {
	case "", CandidateExact:
		return CandidateExact
	case CandidateLSH:
		return CandidateLSH
	default:
		panic("fairness: unknown candidate index kind " + c.CandidateIndex)
	}
}

// CandidateProvider supplies pruned candidate pairs to the Axiom 1–3
// checkers. The full-pass enumerations and the per-entity Partners views
// must describe the same pair set, and pair membership must depend only on
// the two endpoints' current contents — the properties that keep delta
// audits equivalent to full ones. internal/audit injects an incrementally
// maintained provider; when Config.Candidates is nil the checkers build a
// transient one per call from the store snapshot.
type CandidateProvider interface {
	// WorkerPairs yields every candidate worker pair, a < b, each once.
	WorkerPairs(yield func(a, b model.WorkerID))
	// WorkerPartners yields every candidate partner of one worker, each
	// once, never the worker itself.
	WorkerPartners(id model.WorkerID, yield func(p model.WorkerID))
	// TaskPairs yields every candidate task pair, a < b, each once.
	TaskPairs(yield func(a, b model.TaskID))
	// TaskPartners yields every candidate partner of one task.
	TaskPartners(id model.TaskID, yield func(p model.TaskID))
	// ContribPairs returns the candidate pairs among one task's
	// contributions as ascending linear pair indices (similarity.PairAt
	// order over len(contribs)). pruned=false means "every pair is a
	// candidate" and ks is meaningless — the exact backend's answer, which
	// keeps Axiom 3's all-pairs kernel path intact.
	ContribPairs(tid model.TaskID, contribs []*model.Contribution) (ks []int, pruned bool)
}

// IndexPlan is the concrete index recipe a Config implies: which backend,
// which seeds and band/row parameters, and how each entity kind is
// tokenised. It is the shared vocabulary between the transient providers
// built by the checkers and the long-lived, incrementally maintained
// indexes owned by internal/audit — both construct indexes from the same
// plan, which is why their candidate sets (and therefore reports) agree.
type IndexPlan struct {
	// Kind is CandidateExact or CandidateLSH.
	Kind string
	// Seed is the root LSH seed (meaningful only for CandidateLSH).
	Seed uint64
	// Worker, Task and Contrib are the per-entity-kind LSH parameters
	// (zero-valued for CandidateExact).
	Worker  similarity.LSHParams
	Task    similarity.LSHParams
	Contrib similarity.LSHParams

	policy similarity.AttrPolicy
	ngramN int
}

// Plan derives the index recipe from the config's kind, seed and
// thresholds. Worker and task indexes are parameterised by SkillThreshold,
// contribution indexes by ContributionThreshold.
func (c *Config) Plan() IndexPlan {
	p := IndexPlan{
		Kind:   c.CandidateKind(),
		Seed:   c.LSHSeed,
		policy: c.attrPolicy(),
		ngramN: 3,
	}
	if p.Kind == CandidateLSH {
		skillThr := orDefault(c.SkillThreshold, 0.9)
		contribThr := orDefault(c.ContributionThreshold, 0.8)
		p.Worker = similarity.ChooseLSHParams(skillThr, deriveSeed(c.LSHSeed, "worker"))
		p.Task = similarity.ChooseLSHParams(skillThr, deriveSeed(c.LSHSeed, "task"))
		p.Contrib = similarity.ChooseLSHParams(contribThr, deriveSeed(c.LSHSeed, "contrib"))
	}
	return p
}

// deriveSeed gives each entity kind an independent hash family from one
// root seed.
func deriveSeed(seed uint64, scope string) uint64 {
	return similarity.Mix64(seed ^ similarity.HashToken("lsh:"+scope))
}

// NewWorkerIndex returns an empty index for worker candidates.
func (p IndexPlan) NewWorkerIndex() similarity.CandidateIndex {
	if p.Kind == CandidateLSH {
		return similarity.NewLSHIndex(p.Worker)
	}
	return similarity.NewExactIndex()
}

// NewTaskIndex returns an empty index for task candidates.
func (p IndexPlan) NewTaskIndex() similarity.CandidateIndex {
	if p.Kind == CandidateLSH {
		return similarity.NewLSHIndex(p.Task)
	}
	return similarity.NewExactIndex()
}

// Sentinel tokens. Entities the similarity measures treat as trivially
// similar when "empty" (skill-less workers/tasks, empty-text contributions)
// must still share a token, or the index would never pair them; a dedicated
// sentinel pairs them with each other and nothing else — exactly the
// semantics of the old explicit skill-less comparison loops.
var (
	skilllessToken = similarity.HashToken("fairness:no-skills")
	emptyTextToken = similarity.HashToken("fairness:empty-contribution")
)

// lshSkillWeight is how many salted copies of each skill token the LSH
// worker tokenisation emits. Skill similarity is the most selective of
// Axiom 1's three conditions, but a worker has few attribute fields and
// coarse attribute buckets are shared by large population fractions —
// unweighted, the handful of near-universal attribute tokens would
// dominate the Jaccard estimate and pull every pair's signature agreement
// toward the bucket-sharing rate, flooding the index with dissimilar
// candidates. Replicating each skill token keeps set overlap dominated by
// the skill dimension while the attribute tokens still contribute
// (attribute-dissimilar pairs rank strictly lower).
const lshSkillWeight = 4

var lshSkillSalts = [lshSkillWeight]uint64{
	similarity.HashToken("fairness:skill-copy-0"),
	similarity.HashToken("fairness:skill-copy-1"),
	similarity.HashToken("fairness:skill-copy-2"),
	similarity.HashToken("fairness:skill-copy-3"),
}

// WorkerTokens tokenises a worker for its candidate index: skill indices
// (or the skill-less sentinel), plus — for LSH only — bucketed declared and
// computed attributes, with skill tokens weighted by replication so the
// signature reflects every similarity dimension Axiom 1 thresholds without
// letting the few coarse attribute tokens drown the skill overlap. The
// exact backend indexes plain skills alone, reproducing the store's
// skill-sharing candidate generation byte-for-byte.
func (p IndexPlan) WorkerTokens(w *model.Worker) []uint64 {
	toks := skillTokens(w.Skills)
	if p.Kind == CandidateLSH {
		weighted := make([]uint64, 0, lshSkillWeight*len(toks)+8)
		for _, t := range toks {
			for _, salt := range &lshSkillSalts {
				weighted = append(weighted, similarity.Mix64(t^salt))
			}
		}
		toks = p.appendAttrTokens(weighted, "d:", w.Declared)
		toks = p.appendAttrTokens(toks, "c:", w.Computed)
	}
	return toks
}

// TaskTokens tokenises a task: its required-skill indices (or the
// skill-less sentinel). Rewards are not tokenised — reward comparability is
// a cheap filter the Axiom 2 checker applies per candidate.
func (p IndexPlan) TaskTokens(t *model.Task) []uint64 {
	return skillTokens(t.Skills)
}

// ContribTokens tokenises a contribution: hashed ranking items for ranked
// payloads, hashed character n-grams for text (the same preprocessing as
// the n-gram similarity the checker scores with), and the empty-text
// sentinel otherwise so trivially identical empty contributions still pair.
func (p IndexPlan) ContribTokens(c *model.Contribution) []uint64 {
	if len(c.Ranking) > 0 {
		out := make([]uint64, len(c.Ranking))
		for i, item := range c.Ranking {
			out[i] = similarity.HashToken("rank:" + item)
		}
		return out
	}
	toks := similarity.TextNGramTokens(c.Text, p.ngramN)
	if len(toks) == 0 {
		return []uint64{emptyTextToken}
	}
	return toks
}

func skillTokens(v model.SkillVector) []uint64 {
	idx := v.Indices()
	if len(idx) == 0 {
		return []uint64{skilllessToken}
	}
	out := make([]uint64, len(idx))
	for i, s := range idx {
		out[i] = uint64(s)
	}
	return out
}

// appendAttrTokens emits tokens for one attribute set. Categorical values
// token on (field, value). Numeric values are bucketed at width 2×tolerance
// and emit both their bucket and its right neighbour: any pair with
// per-field similarity > 0 (|a−b| < 2·tol) lands within one bucket of each
// other and therefore shares a token, so bucketing never hides a pair the
// attribute threshold could accept. Zero tolerance tokens on exact bits.
func (p IndexPlan) appendAttrTokens(out []uint64, side string, attrs model.Attributes) []uint64 {
	for name, v := range attrs {
		if p.policy.IgnoreFields[name] {
			continue
		}
		field := similarity.HashToken(side + name)
		if v.Kind == model.AttrStr {
			out = append(out, similarity.Mix64(field^similarity.HashToken(v.Str)))
			continue
		}
		tol := p.policy.NumTolerance
		if t, ok := p.policy.FieldTolerance[name]; ok {
			tol = t
		}
		if tol <= 0 {
			out = append(out, similarity.Mix64(field^math.Float64bits(v.Num)))
			continue
		}
		b := uint64(int64(math.Floor(v.Num / (2 * tol))))
		out = append(out, similarity.Mix64(field^b), similarity.Mix64(field^(b+1)))
	}
	return out
}

// PopulateIndex fills an index with n entities, computing LSH signatures on
// the parallel pool (signature hashing dominates LSH build cost) and then
// bulk-installing them — band hashing fans out per entity and bucket
// insertion per band (see LSHIndex.BulkUpsertSignatures). For exact indexes
// it upserts directly. The result is identical to n sequential Upserts.
func PopulateIndex(ix similarity.CandidateIndex, n int, id func(int) string, tokens func(int) []uint64) {
	if lsh, ok := ix.(*similarity.LSHIndex); ok {
		ids := make([]string, n)
		sigs := make([][]uint32, n)
		par.For(n, 0, func(i int) {
			ids[i] = id(i)
			sigs[i] = lsh.Hasher().Signature(tokens(i))
		})
		lsh.BulkUpsertSignatures(ids, sigs)
		return
	}
	for i := 0; i < n; i++ {
		ix.Upsert(id(i), tokens(i))
	}
}

// contribIxPool recycles transient contribution LSH indexes, one pool per
// parameter set (parameters are derived from the config, so a process
// typically cycles through one or two). Recycled indexes keep their bucket
// maps and signature freelists warm, so the per-task rebuild in
// ContribCandidates allocates almost nothing in steady state. sync.Pool is
// concurrency-safe, which matters now that CheckAxiom3Tasks fans tasks out.
var contribIxPool sync.Map // similarity.LSHParams → *sync.Pool of *LSHIndex

func getContribIndex(p similarity.LSHParams) *similarity.LSHIndex {
	v, ok := contribIxPool.Load(p)
	if !ok {
		v, _ = contribIxPool.LoadOrStore(p, &sync.Pool{})
	}
	if ix, ok := v.(*sync.Pool).Get().(*similarity.LSHIndex); ok {
		return ix
	}
	return similarity.NewLSHIndex(p)
}

func putContribIndex(p similarity.LSHParams, ix *similarity.LSHIndex) {
	ix.Reset()
	if v, ok := contribIxPool.Load(p); ok {
		v.(*sync.Pool).Put(ix)
	}
}

// posPool recycles the contribution-ID position maps ContribCandidates
// builds per task.
var posPool = sync.Pool{New: func() any { return make(map[string]int, 32) }}

// ContribCandidates prunes one task's contribution pairs: it builds a
// transient LSH index over the contributions and returns the candidate
// pairs as ascending linear pair indices. For the exact backend it reports
// pruned=false — Axiom 3 keeps its all-pairs scoring kernel. The index is
// transient by design: contributions are only ever compared within one
// task, and a dirty task is always re-audited against its current
// contribution set, so there is no cross-pass state to maintain — but its
// storage is pooled, and upserting serially into a recycled index reuses
// the freelisted signature buffers (tasks themselves are already fanned out
// by CheckAxiom3Tasks, so intra-task parallel hashing would only fight the
// outer shards for the same pool).
func (p IndexPlan) ContribCandidates(contribs []*model.Contribution) (ks []int, pruned bool) {
	if p.Kind != CandidateLSH {
		return nil, false
	}
	n := len(contribs)
	if n < 2 {
		return []int{}, true
	}
	ix := getContribIndex(p.Contrib)
	defer putContribIndex(p.Contrib, ix)
	for i := 0; i < n; i++ {
		ix.Upsert(string(contribs[i].ID), p.ContribTokens(contribs[i]))
	}
	pos := posPool.Get().(map[string]int)
	defer func() {
		clear(pos)
		posPool.Put(pos)
	}()
	for i, c := range contribs {
		pos[string(c.ID)] = i
	}
	ks = make([]int, 0, n)
	ix.Pairs(func(a, b string) {
		i, j := pos[a], pos[b]
		if j < i {
			i, j = j, i
		}
		ks = append(ks, similarity.PairIndex(n, i, j))
	})
	sort.Ints(ks)
	return ks, true
}

// provider resolves the candidate source for one checker pass: the injected
// provider if any, otherwise a transient snapshot-built one.
func (c *Config) provider(src snapshotSource) CandidateProvider {
	if c.Candidates != nil {
		return c.Candidates
	}
	return &snapshotProvider{plan: c.Plan(), src: src}
}

// snapshotSource is the slice of the store API the transient provider
// needs (satisfied by *store.Store).
type snapshotSource interface {
	Workers() []*model.Worker
	Tasks() []*model.Task
}

// snapshotProvider builds indexes on demand from the current store
// snapshot — the candidate source for one-shot checker calls (CheckAll and
// friends). Each index is built at most once per pass; the once-guards make
// the lazy builds safe under the checkers' sharded Partners calls, which
// may race to trigger the first build.
type snapshotProvider struct {
	plan       IndexPlan
	src        snapshotSource
	workerOnce sync.Once
	taskOnce   sync.Once
	workerIx   similarity.CandidateIndex
	taskIx     similarity.CandidateIndex
}

func (sp *snapshotProvider) workers() similarity.CandidateIndex {
	sp.workerOnce.Do(func() {
		ws := sp.src.Workers()
		ix := sp.plan.NewWorkerIndex()
		PopulateIndex(ix, len(ws), func(i int) string { return string(ws[i].ID) },
			func(i int) []uint64 { return sp.plan.WorkerTokens(ws[i]) })
		sp.workerIx = ix
	})
	return sp.workerIx
}

func (sp *snapshotProvider) tasks() similarity.CandidateIndex {
	sp.taskOnce.Do(func() {
		ts := sp.src.Tasks()
		ix := sp.plan.NewTaskIndex()
		PopulateIndex(ix, len(ts), func(i int) string { return string(ts[i].ID) },
			func(i int) []uint64 { return sp.plan.TaskTokens(ts[i]) })
		sp.taskIx = ix
	})
	return sp.taskIx
}

// WorkerPairs implements CandidateProvider.
func (sp *snapshotProvider) WorkerPairs(yield func(a, b model.WorkerID)) {
	sp.workers().Pairs(func(a, b string) { yield(model.WorkerID(a), model.WorkerID(b)) })
}

// WorkerPartners implements CandidateProvider.
func (sp *snapshotProvider) WorkerPartners(id model.WorkerID, yield func(p model.WorkerID)) {
	sp.workers().Partners(string(id), func(p string) { yield(model.WorkerID(p)) })
}

// TaskPairs implements CandidateProvider.
func (sp *snapshotProvider) TaskPairs(yield func(a, b model.TaskID)) {
	sp.tasks().Pairs(func(a, b string) { yield(model.TaskID(a), model.TaskID(b)) })
}

// TaskPartners implements CandidateProvider.
func (sp *snapshotProvider) TaskPartners(id model.TaskID, yield func(p model.TaskID)) {
	sp.tasks().Partners(string(id), func(p string) { yield(model.TaskID(p)) })
}

// ContribPairs implements CandidateProvider.
func (sp *snapshotProvider) ContribPairs(_ model.TaskID, contribs []*model.Contribution) ([]int, bool) {
	return sp.plan.ContribCandidates(contribs)
}
