package fairness

import (
	"strings"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/workload"
)

// deltaTrace builds a store + biased offer log with genuine Axiom 1/2
// violations (every 7th qualified worker is skipped).
func deltaTrace(tb testing.TB, workers, tasks int, seed uint64) (*store.Store, *eventlog.Log) {
	tb.Helper()
	rng := stats.NewRNG(seed)
	pop := workload.GeneratePopulation(workload.PopulationSpec{
		Workers: workers, Archetypes: 6,
	}, rng.Split())
	batch := workload.GenerateTasks(workload.TaskSpec{
		Tasks: tasks, Requesters: 4, Quota: 2,
	}, pop, rng.Split())
	st := store.New(pop.Universe)
	for _, r := range batch.Requesters {
		if err := st.PutRequester(r); err != nil {
			tb.Fatal(err)
		}
	}
	for _, w := range pop.Workers {
		if err := st.PutWorker(w); err != nil {
			tb.Fatal(err)
		}
	}
	for _, t := range batch.Tasks {
		if err := st.PutTask(t); err != nil {
			tb.Fatal(err)
		}
	}
	log := eventlog.New()
	for wi, w := range pop.Workers {
		if wi%7 == 0 {
			continue
		}
		for _, t := range batch.Tasks {
			if w.Skills.Covers(t.Skills) {
				log.MustAppend(eventlog.Event{Type: eventlog.TaskOffered, Worker: w.ID, Task: t.ID})
			}
		}
	}
	// Contributions with uneven pay for Axiom 3 material.
	seq := 0
	for ti, t := range batch.Tasks {
		if ti%3 != 0 {
			continue
		}
		for wi, w := range pop.Workers {
			if wi > 3 {
				break
			}
			seq++
			c := &model.Contribution{
				ID: model.ContributionID(string(rune('a'+seq%26)) + string(t.ID) + string(w.ID)), Task: t.ID, Worker: w.ID,
				Text: "identical answer text", Quality: 0.8, Accepted: true,
				Paid: float64(wi) * 0.5,
			}
			if err := st.PutContribution(c); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return st, log
}

func requireSameReport(t *testing.T, name string, full, delta *Report) {
	t.Helper()
	if full.Checked != delta.Checked {
		t.Errorf("%s: checked %d (full) vs %d (all-dirty delta)", name, full.Checked, delta.Checked)
	}
	if len(full.Violations) != len(delta.Violations) {
		t.Fatalf("%s: %d violations (full) vs %d (delta)", name, len(full.Violations), len(delta.Violations))
	}
	for i := range full.Violations {
		if full.Violations[i].String() != delta.Violations[i].String() {
			t.Fatalf("%s: violation %d differs:\nfull:  %s\ndelta: %s",
				name, i, full.Violations[i], delta.Violations[i])
		}
	}
}

// An all-dirty delta pass must reproduce the full scan byte for byte —
// the cold-start contract the incremental audit engine relies on.
func TestDeltaAllDirtyMatchesFull(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		st, log := deltaTrace(t, 120, 40, seed)
		cfg := DefaultConfig()

		allWorkers := make(map[model.WorkerID]bool)
		for _, w := range st.Workers() {
			allWorkers[w.ID] = true
		}
		allTasks := make(map[model.TaskID]bool)
		for _, task := range st.Tasks() {
			allTasks[task.ID] = true
		}

		requireSameReport(t, "axiom1",
			CheckAxiom1(st, log, cfg), CheckAxiom1Delta(st, log, cfg, allWorkers))
		requireSameReport(t, "axiom2",
			CheckAxiom2(st, log, cfg), CheckAxiom2Delta(st, log, cfg, allTasks))
		requireSameReport(t, "axiom3",
			CheckAxiom3(st, cfg), CheckAxiom3Delta(st, cfg, allTasks))
		requireSameReport(t, "axiom4",
			CheckAxiom4(st, log), CheckAxiom4Delta(st, log, allWorkers))

		exh := cfg
		exh.Exhaustive = true
		requireSameReport(t, "axiom1-exhaustive",
			CheckAxiom1(st, log, exh), CheckAxiom1Delta(st, log, exh, allWorkers))
		requireSameReport(t, "axiom2-exhaustive",
			CheckAxiom2(st, log, exh), CheckAxiom2Delta(st, log, exh, allTasks))
	}
}

// A violation found by the full scan must be found by a delta pass whose
// dirty set contains either endpoint; an empty dirty set audits nothing.
func TestDeltaDirtySubsets(t *testing.T) {
	st, log := deltaTrace(t, 90, 30, 3)
	cfg := DefaultConfig()
	full := CheckAxiom1(st, log, cfg)
	if len(full.Violations) == 0 {
		t.Fatal("trace produced no Axiom 1 violations; test needs material")
	}
	empty := CheckAxiom1Delta(st, log, cfg, nil)
	if empty.Checked != 0 || len(empty.Violations) != 0 {
		t.Fatalf("empty dirty set still audited: %v", empty)
	}
	v := full.Violations[0]
	dirty := map[model.WorkerID]bool{model.WorkerID(v.Subjects[0]): true}
	delta := CheckAxiom1Delta(st, log, cfg, dirty)
	found := false
	for _, dv := range delta.Violations {
		if dv.String() == v.String() {
			found = true
		}
		// Every delta violation must touch the dirty worker.
		if dv.Subjects[0] != v.Subjects[0] && dv.Subjects[1] != v.Subjects[0] {
			t.Fatalf("delta reported a clean pair: %s", dv)
		}
	}
	if !found {
		t.Fatalf("delta with dirty %s missed violation %s", v.Subjects[0], v)
	}
	if delta.Checked >= full.Checked {
		t.Fatalf("delta checked %d pairs, full %d — no pruning happened", delta.Checked, full.Checked)
	}
}

// The streaming Axiom 5 checker must match the batch checker no matter how
// the trace is sliced.
func TestAxiom5StreamMatchesBatch(t *testing.T) {
	log := eventlog.New()
	ev := func(typ eventlog.Type, w, task string, tm int64) {
		log.MustAppend(eventlog.Event{Type: typ, Worker: model.WorkerID(w), Task: model.TaskID(task), Time: tm})
	}
	ev(eventlog.TaskStarted, "w1", "t1", 1)
	ev(eventlog.TaskStarted, "w2", "t1", 1)
	ev(eventlog.TaskInterrupted, "w1", "t1", 3)
	ev(eventlog.TaskSubmitted, "w2", "t1", 4)
	ev(eventlog.TaskStarted, "w3", "t2", 5)
	ev(eventlog.TaskInterrupted, "w3", "t2", 6)
	ev(eventlog.TaskInterrupted, "w3", "t2", 7) // double interrupt: second is a no-op

	batch := CheckAxiom5(log)
	stream := NewAxiom5Stream()
	events := log.Events()
	mid := len(events) / 2
	for _, e := range events[:mid] {
		stream.Observe(e)
	}
	_ = stream.Report() // mid-trace report must not disturb the stream
	for _, e := range events[mid:] {
		stream.Observe(e)
	}
	requireSameReport(t, "axiom5", batch, stream.Report())
	if batch.Checked != 3 || len(batch.Violations) != 2 {
		t.Fatalf("unexpected batch report: %v", batch)
	}
}

// AccessIndex.Observe must deduplicate repeated offers and report dirtiness
// only on genuine change.
func TestAccessIndexObserveDedup(t *testing.T) {
	ix := NewAccessIndex()
	e := eventlog.Event{Type: eventlog.TaskOffered, Worker: "w1", Task: "t1"}
	if !ix.Observe(e) {
		t.Fatal("first offer must dirty the index")
	}
	if ix.Observe(e) {
		t.Fatal("repeated offer must be a no-op")
	}
	if ix.Observe(eventlog.Event{Type: eventlog.TaskSubmitted, Worker: "w1", Task: "t1"}) {
		t.Fatal("non-offer events must be no-ops")
	}
	if got := ix.offerSet("w1").size(); got != 1 {
		t.Fatalf("offer set size = %d, want 1", got)
	}
	if got := ix.audienceSet("t1").size(); got != 1 {
		t.Fatalf("audience size = %d, want 1", got)
	}
}

// Negative threshold fields are the explicit-zero sentinel: AccessThreshold
// -1 must behave as 0 (no overlap demanded at all), not as the 1.0 default
// that plain 0 selects.
func TestConfigExplicitZeroSentinel(t *testing.T) {
	s := twinStore(t)
	log := offerLog(map[string][]string{
		"w1": {"t1", "t2"},
		"w2": {}, // twin of w1 with no access at all
	})
	def := DefaultConfig()
	if rep := CheckAxiom1(s, log, def); len(rep.Violations) != 1 {
		t.Fatalf("default config: violations = %v", rep.Violations)
	}
	zero := DefaultConfig()
	zero.AccessThreshold = -1 // explicit 0: any overlap, even none, passes
	if rep := CheckAxiom1(s, log, zero); len(rep.Violations) != 0 {
		t.Fatalf("explicit-zero access threshold still violated: %v", rep.Violations)
	}
	// Explicit-zero pay tolerance demands exactly equal pay.
	exact := DefaultConfig()
	exact.PayTolerance = -1
	for _, c := range []*model.Contribution{
		{ID: "c1", Task: "t1", Worker: "w1", Text: "same answer", Quality: 0.9, Accepted: true, Paid: 1.0},
		{ID: "c2", Task: "t1", Worker: "w2", Text: "same answer", Quality: 0.9, Accepted: true, Paid: 1.005},
	} {
		if err := s.PutContribution(c); err != nil {
			t.Fatal(err)
		}
	}
	if rep := CheckAxiom3(s, exact); len(rep.Violations) != 1 {
		t.Fatalf("exact pay tolerance: violations = %v", rep.Violations)
	}
	// The 0.5% gap is inside the default 1% tolerance.
	if rep := CheckAxiom3(s, def); len(rep.Violations) != 0 {
		t.Fatalf("default pay tolerance: violations = %v", rep.Violations)
	}
}

// Axiom 1 violation details must report deduplicated offer-set sizes:
// repeating the same offer is not more access.
func TestAxiom1DetailDeduplicatesOfferCounts(t *testing.T) {
	s := twinStore(t)
	log := offerLog(map[string][]string{
		"w1": {"t1", "t2", "t1", "t1", "t2"}, // 2 distinct tasks offered 5 times
		"w2": {"t1"},
	})
	rep := CheckAxiom1(s, log, DefaultConfig())
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %v", rep.Violations)
	}
	want := "(|offers| 2 vs 1)"
	if !strings.Contains(rep.Violations[0].Detail, want) {
		t.Fatalf("detail %q does not contain %q", rep.Violations[0].Detail, want)
	}
}
