package fairness

import (
	"fmt"
	"sort"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/store"
)

// CheckAxiom4 audits requester fairness in task completion:
//
//	"Requesters must be able to detect workers behaving maliciously during
//	 task completion."
//
// The axiom is about *capability*: a compliant platform runs a detector and
// records its flags. The checker treats a worker as detectably malicious
// when their computed acceptance ratio is below the conventional spam line
// (0.5) yet the log shows no WorkerFlagged event for them — i.e. the
// platform had the evidence and surfaced nothing to requesters. Platforms
// that never flag anyone while hosting low-acceptance workers therefore
// fail wholesale, which matches the paper's complaint that detection is
// left entirely to requesters. The quantitative quality of detectors is
// evaluated separately in experiment E4 (package detect).
func CheckAxiom4(st *store.Store, log *eventlog.Log) *Report {
	return checkAxiom4(st, FlaggedFromLog(log), nil, true)
}

// CheckAxiom4Delta re-judges only the workers in dirty — those whose
// computed attributes changed or who were newly flagged since the last
// audit. Per-worker verdicts are exactly CheckAxiom4's.
func CheckAxiom4Delta(st *store.Store, log *eventlog.Log, dirty map[model.WorkerID]bool) *Report {
	return checkAxiom4(st, FlaggedFromLog(log), dirty, false)
}

// CheckAxiom4Flagged is CheckAxiom4Delta over a caller-maintained flag set,
// so long-lived auditors never replay the whole log. A nil dirty set with
// full=false audits nothing.
func CheckAxiom4Flagged(st *store.Store, flagged map[model.WorkerID]bool, dirty map[model.WorkerID]bool) *Report {
	return checkAxiom4(st, flagged, dirty, false)
}

// FlaggedFromLog collects the workers the platform ever flagged.
func FlaggedFromLog(log *eventlog.Log) map[model.WorkerID]bool {
	flagged := make(map[model.WorkerID]bool)
	for _, e := range log.ByType(eventlog.WorkerFlagged) {
		flagged[e.Worker] = true
	}
	return flagged
}

func checkAxiom4(st *store.Store, flagged map[model.WorkerID]bool, dirty map[model.WorkerID]bool, full bool) *Report {
	var ids []model.WorkerID
	if full {
		ws := st.Workers()
		ids = make([]model.WorkerID, len(ws))
		for i, w := range ws {
			ids[i] = w.ID
		}
	} else {
		ids = sortedIDList(dirty)
	}
	return foldWorkerAudits(CheckAxiom4Workers(st, flagged, ids))
}

// WorkerAudit is one worker's Axiom 4 verdict, as produced by
// CheckAxiom4Workers: whether the worker was judged at all (Checked) and the
// violation, if any.
type WorkerAudit struct {
	Worker     model.WorkerID
	Checked    int
	Violations []Violation
}

// CheckAxiom4Workers judges each listed worker independently, fanning the
// store fetches and judgements out on the bounded pool into disjoint result
// slots — the batch form incremental auditors fold from, replacing one
// map-allocating delta call per dirty worker. Slot k is always ids[k]'s
// verdict, so output order is fixed by ids regardless of scheduling; flagged
// is only read. Unknown ids yield empty audits.
func CheckAxiom4Workers(st *store.Store, flagged map[model.WorkerID]bool, ids []model.WorkerID) []WorkerAudit {
	out := make([]WorkerAudit, len(ids))
	par.For(len(ids), 0, func(k int) {
		out[k].Worker = ids[k]
		w, err := st.Worker(ids[k])
		if err != nil {
			return
		}
		checked, v := judgeAxiom4(w, flagged)
		out[k].Checked = checked
		if v != nil {
			out[k].Violations = append(out[k].Violations, *v)
		}
	})
	return out
}

// judgeAxiom4 applies the spam-line judgement to one worker. checked is 0
// when the worker has no acceptance history (the sim stores a ratio on zero
// submissions as absent, and a ratio on no history is meaningless).
func judgeAxiom4(w *model.Worker, flagged map[model.WorkerID]bool) (checked int, viol *Violation) {
	const spamLine = 0.5
	v, ok := w.Computed[model.AttrAcceptanceRatio]
	if !ok || v.Kind != model.AttrNum {
		return 0, nil
	}
	if v.Num >= spamLine || flagged[w.ID] {
		return 1, nil
	}
	return 1, &Violation{
		Axiom:    Axiom4MaliciousDetection,
		Subjects: []string{string(w.ID)},
		Detail: fmt.Sprintf("acceptance ratio %.2f below %.2f but the platform never flagged the worker",
			v.Num, spamLine),
		Severity: spamLine - v.Num,
	}
}

// foldWorkerAudits concatenates per-worker verdicts into one report.
func foldWorkerAudits(audits []WorkerAudit) *Report {
	rep := &Report{Axiom: Axiom4MaliciousDetection}
	for i := range audits {
		rep.Checked += audits[i].Checked
		rep.Violations = append(rep.Violations, audits[i].Violations...)
	}
	sortViolations(rep.Violations)
	return rep
}

// CheckAxiom5 audits worker fairness in task completion:
//
//	"A worker who started completing a task should not be interrupted."
//
// Every TaskStarted event must be matched by a later TaskSubmitted for the
// same (worker, task); a TaskInterrupted event in between is a violation.
// A start with neither outcome (the trace ended mid-flight) is not counted
// as a violation but does count as checked work.
func CheckAxiom5(log *eventlog.Log) *Report {
	s := NewAxiom5Stream()
	for _, e := range log.Events() {
		s.Observe(e)
	}
	return s.Report()
}

// Axiom5Stream is the incremental form of CheckAxiom5: a streaming checker
// that folds trace events in one at a time and can emit a report at any
// point. Feeding it a whole log reproduces CheckAxiom5 exactly; a
// long-lived auditor feeds it only the events appended since the last pass.
type Axiom5Stream struct {
	started    map[ax5Key]int64
	checked    int
	violations []Violation
}

type ax5Key struct {
	w model.WorkerID
	t model.TaskID
}

// NewAxiom5Stream returns a stream positioned at an empty trace.
func NewAxiom5Stream() *Axiom5Stream {
	return &Axiom5Stream{started: make(map[ax5Key]int64)}
}

// Observe folds one event into the stream.
func (s *Axiom5Stream) Observe(e eventlog.Event) {
	k := ax5Key{e.Worker, e.Task}
	switch e.Type {
	case eventlog.TaskStarted:
		s.started[k] = e.Time
		s.checked++
	case eventlog.TaskSubmitted:
		delete(s.started, k)
	case eventlog.TaskInterrupted:
		if t0, ok := s.started[k]; ok {
			s.violations = append(s.violations, Violation{
				Axiom:    Axiom5NoInterruption,
				Subjects: []string{string(e.Worker)},
				Detail: fmt.Sprintf("task %s: started at t=%d, interrupted at t=%d after %d ticks of work",
					e.Task, t0, e.Time, e.Time-t0),
				Severity: 1,
			})
			delete(s.started, k)
		}
	}
}

// Axiom5Start is one in-flight (started, not yet submitted or interrupted)
// task in a serialised Axiom5Stream.
type Axiom5Start struct {
	Worker model.WorkerID `json:"worker"`
	Task   model.TaskID   `json:"task"`
	Time   int64          `json:"time"`
}

// Axiom5State is the serialisable image of an Axiom5Stream. Violations
// keep their observation order so a restored stream renders reports
// identical to one that observed the whole trace.
type Axiom5State struct {
	InFlight   []Axiom5Start `json:"in_flight,omitempty"`
	Checked    int           `json:"checked"`
	Violations []Violation   `json:"violations,omitempty"`
}

// Save captures the stream for a checkpoint.
func (s *Axiom5Stream) Save() *Axiom5State {
	st := &Axiom5State{
		Checked:    s.checked,
		Violations: append([]Violation(nil), s.violations...),
	}
	for k, t0 := range s.started {
		st.InFlight = append(st.InFlight, Axiom5Start{Worker: k.w, Task: k.t, Time: t0})
	}
	sort.Slice(st.InFlight, func(i, j int) bool {
		if st.InFlight[i].Worker != st.InFlight[j].Worker {
			return st.InFlight[i].Worker < st.InFlight[j].Worker
		}
		return st.InFlight[i].Task < st.InFlight[j].Task
	})
	return st
}

// RestoreAxiom5Stream rebuilds a stream from a saved state; observing the
// post-checkpoint suffix of the trace then reproduces a full replay.
func RestoreAxiom5Stream(st *Axiom5State) *Axiom5Stream {
	s := NewAxiom5Stream()
	if st == nil {
		return s
	}
	for _, f := range st.InFlight {
		s.started[ax5Key{f.Worker, f.Task}] = f.Time
	}
	s.checked = st.Checked
	s.violations = append([]Violation(nil), st.Violations...)
	return s
}

// Report renders the stream's current verdict. The returned report owns its
// violation slice; further Observe calls do not mutate it.
func (s *Axiom5Stream) Report() *Report {
	rep := &Report{
		Axiom:   Axiom5NoInterruption,
		Checked: s.checked,
	}
	if len(s.violations) > 0 {
		rep.Violations = append([]Violation(nil), s.violations...)
	}
	sortViolations(rep.Violations)
	return rep
}

// IncomeGini returns the Gini coefficient over per-worker incomes recorded
// in the store's contributions — the inequality index E1 reports next to
// the violation rates. Workers with no contributions count as zero income
// only if includeIdle is set.
func IncomeGini(st *store.Store, includeIdle bool) float64 {
	incomes := make(map[model.WorkerID]float64)
	if includeIdle {
		for _, w := range st.Workers() {
			incomes[w.ID] = 0
		}
	}
	for _, c := range st.Contributions() {
		incomes[c.Worker] += c.Paid
	}
	xs := make([]float64, 0, len(incomes))
	ids := make([]model.WorkerID, 0, len(incomes))
	for id := range incomes {
		ids = append(ids, id)
	}
	sortWorkerIDs(ids)
	for _, id := range ids {
		xs = append(xs, incomes[id])
	}
	return gini(xs)
}

func sortWorkerIDs(ids []model.WorkerID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// gini duplicates stats.Gini locally to keep the fairness package free of a
// stats dependency cycle risk; the two implementations are tested against
// each other.
func gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := range s {
		if s[i] < 0 {
			s[i] = 0
		}
	}
	// insertion sort (n is workload-scale, fine)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := float64(len(s))
	var cum, total float64
	for i, x := range s {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(n*total) - (n+1)/n
}
