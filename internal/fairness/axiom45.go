package fairness

import (
	"fmt"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/store"
)

// CheckAxiom4 audits requester fairness in task completion:
//
//	"Requesters must be able to detect workers behaving maliciously during
//	 task completion."
//
// The axiom is about *capability*: a compliant platform runs a detector and
// records its flags. The checker treats a worker as detectably malicious
// when their computed acceptance ratio is below the conventional spam line
// (0.5) yet the log shows no WorkerFlagged event for them — i.e. the
// platform had the evidence and surfaced nothing to requesters. Platforms
// that never flag anyone while hosting low-acceptance workers therefore
// fail wholesale, which matches the paper's complaint that detection is
// left entirely to requesters. The quantitative quality of detectors is
// evaluated separately in experiment E4 (package detect).
func CheckAxiom4(st *store.Store, log *eventlog.Log) *Report {
	rep := &Report{Axiom: Axiom4MaliciousDetection}
	flagged := make(map[model.WorkerID]bool)
	for _, e := range log.ByType(eventlog.WorkerFlagged) {
		flagged[e.Worker] = true
	}
	const spamLine = 0.5
	for _, w := range st.Workers() {
		v, ok := w.Computed[model.AttrAcceptanceRatio]
		if !ok || v.Kind != model.AttrNum {
			continue
		}
		// Only workers with some history are judged; a ratio on zero
		// submissions is meaningless and is stored as absent by the sim.
		rep.Checked++
		if v.Num >= spamLine || flagged[w.ID] {
			continue
		}
		rep.Violations = append(rep.Violations, Violation{
			Axiom:    Axiom4MaliciousDetection,
			Subjects: []string{string(w.ID)},
			Detail: fmt.Sprintf("acceptance ratio %.2f below %.2f but the platform never flagged the worker",
				v.Num, spamLine),
			Severity: spamLine - v.Num,
		})
	}
	sortViolations(rep.Violations)
	return rep
}

// CheckAxiom5 audits worker fairness in task completion:
//
//	"A worker who started completing a task should not be interrupted."
//
// Every TaskStarted event must be matched by a later TaskSubmitted for the
// same (worker, task); a TaskInterrupted event in between is a violation.
// A start with neither outcome (the trace ended mid-flight) is not counted
// as a violation but does count as checked work.
func CheckAxiom5(log *eventlog.Log) *Report {
	rep := &Report{Axiom: Axiom5NoInterruption}
	type key struct {
		w model.WorkerID
		t model.TaskID
	}
	started := make(map[key]int64)
	for _, e := range log.Events() {
		k := key{e.Worker, e.Task}
		switch e.Type {
		case eventlog.TaskStarted:
			started[k] = e.Time
			rep.Checked++
		case eventlog.TaskSubmitted:
			delete(started, k)
		case eventlog.TaskInterrupted:
			if t0, ok := started[k]; ok {
				rep.Violations = append(rep.Violations, Violation{
					Axiom:    Axiom5NoInterruption,
					Subjects: []string{string(e.Worker)},
					Detail: fmt.Sprintf("task %s: started at t=%d, interrupted at t=%d after %d ticks of work",
						e.Task, t0, e.Time, e.Time-t0),
					Severity: 1,
				})
				delete(started, k)
			}
		}
	}
	sortViolations(rep.Violations)
	return rep
}

// IncomeGini returns the Gini coefficient over per-worker incomes recorded
// in the store's contributions — the inequality index E1 reports next to
// the violation rates. Workers with no contributions count as zero income
// only if includeIdle is set.
func IncomeGini(st *store.Store, includeIdle bool) float64 {
	incomes := make(map[model.WorkerID]float64)
	if includeIdle {
		for _, w := range st.Workers() {
			incomes[w.ID] = 0
		}
	}
	for _, c := range st.Contributions() {
		incomes[c.Worker] += c.Paid
	}
	xs := make([]float64, 0, len(incomes))
	ids := make([]model.WorkerID, 0, len(incomes))
	for id := range incomes {
		ids = append(ids, id)
	}
	sortWorkerIDs(ids)
	for _, id := range ids {
		xs = append(xs, incomes[id])
	}
	return gini(xs)
}

func sortWorkerIDs(ids []model.WorkerID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// gini duplicates stats.Gini locally to keep the fairness package free of a
// stats dependency cycle risk; the two implementations are tested against
// each other.
func gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := range s {
		if s[i] < 0 {
			s[i] = 0
		}
	}
	// insertion sort (n is workload-scale, fine)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := float64(len(s))
	var cum, total float64
	for i, x := range s {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(n*total) - (n+1)/n
}
