package fairness

import (
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/par"
)

// Parallel pair-checking scaffolding shared by the Axiom 1 and 2 checkers.
//
// Every parallel path follows par's determinism-by-disjoint-slots contract:
// the pair space is sharded by outer index (one pairSlot per worker/task or
// per dirty id), workers append only to their own slot, and the slots are
// folded into the report serially in index order. Because that order is
// exactly the serial loop's emission order, the merged Checked count,
// CheckedPairs sequence, and (post-sort) Violations are byte-identical to
// a serial run regardless of scheduling — the property the audit engine's
// determinism tests pin down.

// pairSlot accumulates one shard's results: the pairs it examined, and the
// violations it found, in the shard's serial emission order.
type pairSlot struct {
	checked int
	pairs   [][2]string
	viols   []Violation
}

// mergeSlots folds per-shard slots into rep in shard order, sizing the
// report's slices exactly so the fold costs at most one allocation each.
func mergeSlots(rep *Report, slots []pairSlot) {
	var checked, npairs, nviols int
	for i := range slots {
		checked += slots[i].checked
		npairs += len(slots[i].pairs)
		nviols += len(slots[i].viols)
	}
	rep.Checked += checked
	if npairs > 0 && rep.CheckedPairs == nil {
		rep.CheckedPairs = make([][2]string, 0, npairs)
	}
	if nviols > 0 && rep.Violations == nil {
		rep.Violations = make([]Violation, 0, nviols)
	}
	for i := range slots {
		rep.CheckedPairs = append(rep.CheckedPairs, slots[i].pairs...)
		rep.Violations = append(rep.Violations, slots[i].viols...)
	}
}

// sortedIDList projects a dirty-id set onto the sorted slice form the delta
// checkers consume.
func sortedIDList[T ~string](m map[T]bool) []T {
	ids := make([]T, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// containsSorted reports membership of id in an ascending-sorted id slice.
func containsSorted[T ~string](ids []T, id T) bool {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	return i < len(ids) && ids[i] == id
}

// deltaScratch is the reusable workspace of one pair checker's delta pass:
// per-dirty-id partner lists, the needed-entity union and its fetch table,
// the per-shard result slots, and the backing array their pair records are
// carved from. Everything keeps its capacity between passes (the pools
// below recycle instances), so a steady-state delta audit's phase
// bookkeeping settles at zero allocations — only the entity clones and the
// findings themselves remain.
type deltaScratch[ID ~string, E any] struct {
	partners [][]ID
	need     map[ID]bool
	keys     []ID
	vals     []*E
	table    map[ID]*E
	slots    []pairSlot
	backing  [][2]string
}

// reset readies the scratch for a pass over n dirty ids, dropping last
// pass's contents but keeping every buffer's capacity.
func (s *deltaScratch[ID, E]) reset(n int) {
	if cap(s.partners) >= n {
		s.partners = s.partners[:n]
	} else {
		s.partners = make([][]ID, n)
	}
	if cap(s.slots) >= n {
		s.slots = s.slots[:n]
	} else {
		s.slots = make([]pairSlot, n)
	}
	for k := 0; k < n; k++ {
		s.partners[k] = s.partners[k][:0]
		s.slots[k].checked = 0
		s.slots[k].pairs = nil
		s.slots[k].viols = s.slots[k].viols[:0]
	}
	if s.need == nil {
		s.need = make(map[ID]bool, 2*n)
		s.table = make(map[ID]*E, 2*n)
	} else {
		clear(s.need)
		clear(s.table)
	}
}

// fetch resolves every id in s.need to its entity exactly once, fanning the
// store fetches (which clone) out on the bounded pool; absent ids map to
// nil. The filled table is read-only until the next reset, so concurrent
// check shards can share it.
func (s *deltaScratch[ID, E]) fetch(fetch func(ID) (*E, error)) map[ID]*E {
	s.keys = s.keys[:0]
	for id := range s.need {
		s.keys = append(s.keys, id)
	}
	if cap(s.vals) >= len(s.keys) {
		s.vals = s.vals[:len(s.keys)]
	} else {
		s.vals = make([]*E, len(s.keys))
	}
	par.For(len(s.keys), 0, func(i int) {
		if e, err := fetch(s.keys[i]); err == nil {
			s.vals[i] = e
		} else {
			s.vals[i] = nil
		}
	})
	for i, id := range s.keys {
		s.table[id] = s.vals[i]
	}
	return s.table
}

// carvePairs hands each slot a pair-record buffer sliced out of one shared
// backing array. Slot k checks at most len(partners[k]) pairs, so the
// full-cap three-index slices are disjoint by construction: a shard can
// never grow into its neighbour, and the whole pass records its checked
// pairs with at most one allocation.
func (s *deltaScratch[ID, E]) carvePairs() {
	total := 0
	for _, ps := range s.partners {
		total += len(ps)
	}
	if cap(s.backing) >= total {
		s.backing = s.backing[:total]
	} else {
		s.backing = make([][2]string, total)
	}
	off := 0
	for k := range s.slots {
		n := len(s.partners[k])
		s.slots[k].pairs = s.backing[off : off : off+n]
		off += n
	}
}

// Per-instantiation scratch pools: the worker checker (Axiom 1) and the
// task checker (Axiom 2) each recycle their own delta workspaces, so the
// engine's concurrent axiom passes never contend over one.
var (
	workerDeltaPool = sync.Pool{New: func() any { return new(deltaScratch[model.WorkerID, model.Worker]) }}
	taskDeltaPool   = sync.Pool{New: func() any { return new(deltaScratch[model.TaskID, model.Task]) }}
)

// simsPool recycles the pair-score buffers the Axiom 3 kernel fills per
// task per pass.
var simsPool = sync.Pool{New: func() any { return new([]float64) }}

func getSims() *[]float64  { return simsPool.Get().(*[]float64) }
func putSims(b *[]float64) { simsPool.Put(b) }
