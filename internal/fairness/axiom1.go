package fairness

import (
	"fmt"
	"sort"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/store"
)

// CheckAxiom1 audits worker fairness in task assignment:
//
//	"Given two different workers wi and wj, if Awi is similar to Awj and
//	 Cwi is similar to Cwj, and Swi is similar to Swj, then wi and wj
//	 should have access to the same tasks."
//
// Access is reconstructed from TaskOffered events in the log. For every
// pair of similar workers (all three similarity conditions at their
// thresholds), the checker compares offer sets by Jaccard overlap and
// reports a violation when the overlap falls below cfg.AccessThreshold.
// Offer sets are deduplicated: repeating the same offer neither changes the
// overlap nor the reported set sizes.
//
// Candidate pairs come from the store's skill inverted index unless
// cfg.Exhaustive is set; pairs of workers with empty skill vectors are
// always compared exhaustively since the index cannot see them.
func CheckAxiom1(st *store.Store, log *eventlog.Log, cfg Config) *Report {
	return checkAxiom1(st, AccessIndexFromLog(log), cfg, nil, true)
}

// CheckAxiom1Delta audits only the candidate pairs with at least one
// endpoint in dirty, under exactly the same similarity and access
// predicates as CheckAxiom1. It is the incremental entry point: given the
// set of workers whose attributes, skills, or offer sets changed since the
// last audit, re-checking these pairs (and dropping previously recorded
// violations that touch a dirty worker) reproduces the full audit's
// violation set — pairs of two clean workers cannot have changed status.
// Report.Checked counts only the pairs this delta pass examined.
func CheckAxiom1Delta(st *store.Store, log *eventlog.Log, cfg Config, dirty map[model.WorkerID]bool) *Report {
	return checkAxiom1(st, AccessIndexFromLog(log), cfg, dirty, false)
}

// CheckAxiom1DeltaIndexed is CheckAxiom1Delta over a caller-maintained
// AccessIndex, so long-lived auditors (internal/audit) never replay the
// whole event log per pass.
func CheckAxiom1DeltaIndexed(st *store.Store, ix *AccessIndex, cfg Config, dirty map[model.WorkerID]bool) *Report {
	return checkAxiom1(st, ix, cfg, dirty, false)
}

// CheckAxiom1Indexed is the full scan over a caller-maintained AccessIndex
// — the incremental engine's cold-start path.
func CheckAxiom1Indexed(st *store.Store, ix *AccessIndex, cfg Config) *Report {
	return checkAxiom1(st, ix, cfg, nil, true)
}

// checkAxiom1 is the shared core. full selects the complete pair scan;
// otherwise only pairs touching dirty are examined.
func checkAxiom1(st *store.Store, ix *AccessIndex, cfg Config, dirty map[model.WorkerID]bool, full bool) *Report {
	rep := &Report{Axiom: Axiom1WorkerAssignment}
	workers := st.Workers()
	byID := make(map[model.WorkerID]*model.Worker, len(workers))
	for _, w := range workers {
		byID[w.ID] = w
	}

	skillThr := orDefault(cfg.SkillThreshold, 0.9)
	attrThr := orDefault(cfg.AttrThreshold, 0.9)
	accessThr := orDefault(cfg.AccessThreshold, 1.0)
	measure := cfg.skillMeasure()
	policy := cfg.attrPolicy()

	// check examines one pair; callers pass a.ID < b.ID so memo keys and
	// violation subjects are canonical.
	check := func(a, b *model.Worker) {
		rep.Checked++
		if cfg.RecordCheckedPairs {
			rep.CheckedPairs = append(rep.CheckedPairs, [2]string{string(a.ID), string(b.ID)})
		}
		var sc WorkerPairScores
		if cfg.Memo != nil {
			sc = cfg.Memo.WorkerPair(a.ID, b.ID, func() WorkerPairScores {
				return WorkerPairScores{
					Skill:    measure.Func(a.Skills, b.Skills),
					Declared: policy.Similarity(a.Declared, b.Declared),
					Computed: policy.Similarity(a.Computed, b.Computed),
				}
			})
			if sc.Skill < skillThr || sc.Declared < attrThr || sc.Computed < attrThr {
				return
			}
		} else {
			if measure.Func(a.Skills, b.Skills) < skillThr {
				return
			}
			if policy.Similarity(a.Declared, b.Declared) < attrThr {
				return
			}
			if policy.Similarity(a.Computed, b.Computed) < attrThr {
				return
			}
		}
		aSet, bSet := ix.offerSet(a.ID), ix.offerSet(b.ID)
		overlap := aSet.jaccard(bSet)
		if overlap >= accessThr {
			return
		}
		rep.Violations = append(rep.Violations, Violation{
			Axiom:    Axiom1WorkerAssignment,
			Subjects: []string{string(a.ID), string(b.ID)},
			Detail: fmt.Sprintf("similar workers saw different tasks: offer overlap %.2f < %.2f (|offers| %d vs %d)",
				overlap, accessThr, aSet.size(), bSet.size()),
			Severity: accessThr - overlap,
		})
	}

	var skillless []*model.Worker
	for _, w := range workers {
		if w.Skills.Count() == 0 {
			skillless = append(skillless, w)
		}
	}

	switch {
	case full && cfg.Exhaustive:
		for i := 0; i < len(workers); i++ {
			for j := i + 1; j < len(workers); j++ {
				check(workers[i], workers[j])
			}
		}
	case full:
		for _, pair := range st.CandidateWorkerPairs() {
			a, b := byID[pair[0]], byID[pair[1]]
			if a == nil || b == nil {
				// Inserted after the worker snapshot was taken (audit racing
				// mutation); the insert is still pending for the next pass.
				continue
			}
			check(a, b)
		}
		// Workers with no skills share no index entry; compare them among
		// themselves (they are trivially skill-similar to each other).
		for i := 0; i < len(skillless); i++ {
			for j := i + 1; j < len(skillless); j++ {
				check(skillless[i], skillless[j])
			}
		}
	case cfg.Exhaustive:
		for i := 0; i < len(workers); i++ {
			for j := i + 1; j < len(workers); j++ {
				if dirty[workers[i].ID] || dirty[workers[j].ID] {
					check(workers[i], workers[j])
				}
			}
		}
	default:
		dirtyIDs := make([]model.WorkerID, 0, len(dirty))
		for id := range dirty {
			if byID[id] != nil {
				dirtyIDs = append(dirtyIDs, id)
			}
		}
		sort.Slice(dirtyIDs, func(i, j int) bool { return dirtyIDs[i] < dirtyIDs[j] })
		// Partner candidates come from an inverted index built over the
		// pass's own worker snapshot (workers are id-sorted, so buckets
		// are too), populated only for the skills dirty workers actually
		// have: one O(set bits) build beats per-dirty-worker queries
		// against the store's sharded index, and a snapshot-consistent
		// bucket can never name a worker the snapshot lacks.
		var bySkill [][]model.WorkerID
		if len(dirtyIDs) > 0 {
			needed := make([]bool, st.Universe().Size())
			for _, did := range dirtyIDs {
				for _, skill := range byID[did].Skills.Indices() {
					needed[skill] = true
				}
			}
			bySkill = make([][]model.WorkerID, len(needed))
			for _, w := range workers {
				for _, skill := range w.Skills.Indices() {
					if needed[skill] {
						bySkill[skill] = append(bySkill[skill], w.ID)
					}
				}
			}
		}
		for _, did := range dirtyIDs {
			d := byID[did]
			seen := map[model.WorkerID]bool{did: true}
			for _, skill := range d.Skills.Indices() {
				for _, pid := range bySkill[skill] {
					if seen[pid] {
						continue
					}
					seen[pid] = true
					p := byID[pid]
					if dirty[pid] && pid < did {
						continue // the partner's own delta pass owns this pair
					}
					a, b := d, p
					if b.ID < a.ID {
						a, b = b, a
					}
					check(a, b)
				}
			}
		}
		for i := 0; i < len(skillless); i++ {
			for j := i + 1; j < len(skillless); j++ {
				if dirty[skillless[i].ID] || dirty[skillless[j].ID] {
					check(skillless[i], skillless[j])
				}
			}
		}
	}
	sortViolations(rep.Violations)
	return rep
}

// Axiom1FromOffers is a convenience entry point for auditing an assignment
// result directly (before any simulation): it synthesises the TaskOffered
// view from an offers map instead of an event log.
func Axiom1FromOffers(st *store.Store, offers map[model.WorkerID][]model.TaskID, cfg Config) *Report {
	log := eventlog.New()
	for _, w := range st.Workers() {
		for _, t := range offers[w.ID] {
			log.MustAppend(eventlog.Event{Type: eventlog.TaskOffered, Worker: w.ID, Task: t})
		}
	}
	return CheckAxiom1(st, log, cfg)
}
