package fairness

import (
	"fmt"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/store"
)

// CheckAxiom1 audits worker fairness in task assignment:
//
//	"Given two different workers wi and wj, if Awi is similar to Awj and
//	 Cwi is similar to Cwj, and Swi is similar to Swj, then wi and wj
//	 should have access to the same tasks."
//
// Access is reconstructed from TaskOffered events in the log. For every
// pair of similar workers (all three similarity conditions at their
// thresholds), the checker compares offer sets by Jaccard overlap and
// reports a violation when the overlap falls below cfg.AccessThreshold.
// Offer sets are deduplicated: repeating the same offer neither changes the
// overlap nor the reported set sizes.
//
// Candidate pairs come from the config's candidate index (an exact
// inverted token index by default, MinHash/LSH pruning when
// cfg.CandidateIndex selects it) unless cfg.Exhaustive forces the O(n²)
// scan. Workers with empty skill vectors carry a sentinel token, so they
// pair with each other (they are trivially skill-similar) and nothing
// else.
func CheckAxiom1(st *store.Store, log *eventlog.Log, cfg Config) *Report {
	return checkAxiom1(st, AccessIndexFromLog(log), cfg, nil, true)
}

// CheckAxiom1Delta audits only the candidate pairs with at least one
// endpoint in dirty, under exactly the same similarity and access
// predicates as CheckAxiom1. It is the incremental entry point: given the
// set of workers whose attributes, skills, or offer sets changed since the
// last audit, re-checking these pairs (and dropping previously recorded
// violations that touch a dirty worker) reproduces the full audit's
// violation set — pairs of two clean workers cannot have changed status.
// Report.Checked counts only the pairs this delta pass examined.
func CheckAxiom1Delta(st *store.Store, log *eventlog.Log, cfg Config, dirty map[model.WorkerID]bool) *Report {
	return checkAxiom1(st, AccessIndexFromLog(log), cfg, sortedIDList(dirty), false)
}

// CheckAxiom1DeltaIndexed is CheckAxiom1Delta over a caller-maintained
// AccessIndex, so long-lived auditors (internal/audit) never replay the
// whole event log per pass. dirty must be sorted ascending and
// deduplicated — the slice form lets per-pass auditors reuse one scratch
// buffer instead of allocating id sets, and gives the checker O(log n)
// membership via binary search.
func CheckAxiom1DeltaIndexed(st *store.Store, ix *AccessIndex, cfg Config, dirty []model.WorkerID) *Report {
	return checkAxiom1(st, ix, cfg, dirty, false)
}

// CheckAxiom1Indexed is the full scan over a caller-maintained AccessIndex
// — the incremental engine's cold-start path.
func CheckAxiom1Indexed(st *store.Store, ix *AccessIndex, cfg Config) *Report {
	return checkAxiom1(st, ix, cfg, nil, true)
}

// checkAxiom1 is the shared core. full selects the complete pair scan;
// otherwise only pairs touching dirty (sorted ascending, deduplicated) are
// examined. Every path shards the pair space by outer index into disjoint
// pairSlots and folds them in order, so parallel runs are byte-identical
// to serial ones (see parallel.go).
func checkAxiom1(st *store.Store, ix *AccessIndex, cfg Config, dirty []model.WorkerID, full bool) *Report {
	rep := &Report{Axiom: Axiom1WorkerAssignment}
	skillThr := orDefault(cfg.SkillThreshold, 0.9)
	attrThr := orDefault(cfg.AttrThreshold, 0.9)
	accessThr := orDefault(cfg.AccessThreshold, 1.0)
	measure := cfg.skillMeasure()
	policy := cfg.attrPolicy()

	// check examines one pair into the calling shard's slot; callers pass
	// a.ID < b.ID so memo keys and violation subjects are canonical. The
	// memo (when present) is concurrency-safe by contract.
	check := func(sl *pairSlot, a, b *model.Worker) {
		sl.checked++
		if cfg.RecordCheckedPairs {
			sl.pairs = append(sl.pairs, [2]string{string(a.ID), string(b.ID)})
		}
		var sc WorkerPairScores
		if cfg.Memo != nil {
			sc = cfg.Memo.WorkerPair(a.ID, b.ID, func() WorkerPairScores {
				return WorkerPairScores{
					Skill:    measure.Func(a.Skills, b.Skills),
					Declared: policy.Similarity(a.Declared, b.Declared),
					Computed: policy.Similarity(a.Computed, b.Computed),
				}
			})
			if sc.Skill < skillThr || sc.Declared < attrThr || sc.Computed < attrThr {
				return
			}
		} else {
			if measure.Func(a.Skills, b.Skills) < skillThr {
				return
			}
			if policy.Similarity(a.Declared, b.Declared) < attrThr {
				return
			}
			if policy.Similarity(a.Computed, b.Computed) < attrThr {
				return
			}
		}
		aSet, bSet := ix.offerSet(a.ID), ix.offerSet(b.ID)
		overlap := aSet.jaccard(bSet)
		if overlap >= accessThr {
			return
		}
		sl.viols = append(sl.viols, Violation{
			Axiom:    Axiom1WorkerAssignment,
			Subjects: []string{string(a.ID), string(b.ID)},
			Detail: fmt.Sprintf("similar workers saw different tasks: offer overlap %.2f < %.2f (|offers| %d vs %d)",
				overlap, accessThr, aSet.size(), bSet.size()),
			Severity: accessThr - overlap,
		})
	}

	switch {
	case full || cfg.Exhaustive:
		// Full and exhaustive passes touch (nearly) every worker, so one
		// bulk snapshot is the cheap shape. Shard by outer worker: slot i
		// owns every pair whose smaller endpoint is workers[i].
		workers := st.Workers()
		slots := make([]pairSlot, len(workers))
		switch {
		case cfg.Exhaustive && full:
			par.For(len(workers), 0, func(i int) {
				sl := &slots[i]
				for j := i + 1; j < len(workers); j++ {
					check(sl, workers[i], workers[j])
				}
			})
		case cfg.Exhaustive:
			par.For(len(workers), 0, func(i int) {
				sl := &slots[i]
				iDirty := containsSorted(dirty, workers[i].ID)
				for j := i + 1; j < len(workers); j++ {
					if iDirty || containsSorted(dirty, workers[j].ID) {
						check(sl, workers[i], workers[j])
					}
				}
			})
		default:
			byID := make(map[model.WorkerID]*model.Worker, len(workers))
			for _, w := range workers {
				byID[w.ID] = w
			}
			prov := cfg.provider(st)
			// Pairs and Partners describe the same pair set, so owning each
			// pair at its smaller endpoint enumerates every index pair
			// exactly once — but sharded, where the Pairs stream is not.
			par.For(len(workers), 0, func(i int) {
				sl := &slots[i]
				a := workers[i]
				prov.WorkerPartners(a.ID, func(pid model.WorkerID) {
					if pid <= a.ID {
						return // the pair's smaller endpoint owns it
					}
					b := byID[pid]
					if b == nil {
						// The index saw a worker the snapshot lacks (audit
						// racing mutation); the insert is still pending for
						// the next pass.
						return
					}
					check(sl, a, b)
				})
			})
		}
		mergeSlots(rep, slots)
	default:
		// Delta passes touch only dirty workers and their candidate
		// partners — a bulk snapshot here would cost O(n) per pass and
		// dominate small deltas at large populations. Three phases, each
		// sharded with disjoint writes: enumerate candidate partners per
		// dirty id, resolve the union of needed entities once (fetches
		// clone, so deduplication matters), then check each dirty id's
		// pairs into its own slot.
		prov := cfg.provider(st)
		ds := workerDeltaPool.Get().(*deltaScratch[model.WorkerID, model.Worker])
		defer workerDeltaPool.Put(ds)
		ds.reset(len(dirty))
		par.For(len(dirty), 0, func(k int) {
			prov.WorkerPartners(dirty[k], func(pid model.WorkerID) {
				ds.partners[k] = append(ds.partners[k], pid)
			})
		})
		for _, id := range dirty {
			ds.need[id] = true
		}
		for _, ps := range ds.partners {
			for _, pid := range ps {
				ds.need[pid] = true
			}
		}
		table := ds.fetch(st.Worker)
		if cfg.RecordCheckedPairs {
			ds.carvePairs()
		}
		par.For(len(dirty), 0, func(k int) {
			did := dirty[k]
			d := table[did]
			if d == nil {
				return // deleted, or indexed ahead of this pass
			}
			sl := &ds.slots[k]
			for _, pid := range ds.partners[k] {
				p := table[pid]
				if p == nil {
					continue
				}
				if pid < did && containsSorted(dirty, pid) {
					continue // the partner's own shard owns this pair
				}
				a, b := d, p
				if b.ID < a.ID {
					a, b = b, a
				}
				check(sl, a, b)
			}
		})
		mergeSlots(rep, ds.slots)
	}
	sortViolations(rep.Violations)
	return rep
}

// Axiom1FromOffers is a convenience entry point for auditing an assignment
// result directly (before any simulation): it synthesises the TaskOffered
// view from an offers map instead of an event log.
func Axiom1FromOffers(st *store.Store, offers map[model.WorkerID][]model.TaskID, cfg Config) *Report {
	log := eventlog.New()
	for _, w := range st.Workers() {
		for _, t := range offers[w.ID] {
			log.MustAppend(eventlog.Event{Type: eventlog.TaskOffered, Worker: w.ID, Task: t})
		}
	}
	return CheckAxiom1(st, log, cfg)
}
