package fairness

import (
	"fmt"

	"repro/internal/eventlog"
	"repro/internal/model"
	"repro/internal/store"
)

// CheckAxiom1 audits worker fairness in task assignment:
//
//	"Given two different workers wi and wj, if Awi is similar to Awj and
//	 Cwi is similar to Cwj, and Swi is similar to Swj, then wi and wj
//	 should have access to the same tasks."
//
// Access is reconstructed from TaskOffered events in the log. For every
// pair of similar workers (all three similarity conditions at their
// thresholds), the checker compares offer sets by Jaccard overlap and
// reports a violation when the overlap falls below cfg.AccessThreshold.
//
// Candidate pairs come from the store's skill inverted index unless
// cfg.Exhaustive is set; pairs of workers with empty skill vectors are
// always compared exhaustively since the index cannot see them.
func CheckAxiom1(st *store.Store, log *eventlog.Log, cfg Config) *Report {
	rep := &Report{Axiom: Axiom1WorkerAssignment}
	offers := offersFromLog(log)
	workers := st.Workers()
	byID := make(map[model.WorkerID]*model.Worker, len(workers))
	for _, w := range workers {
		byID[w.ID] = w
	}

	skillThr := orDefault(cfg.SkillThreshold, 0.9)
	attrThr := orDefault(cfg.AttrThreshold, 0.9)
	accessThr := orDefault(cfg.AccessThreshold, 1.0)
	measure := cfg.skillMeasure()
	policy := cfg.attrPolicy()

	// Precompute offer sets once; the pairwise loop only does lookups.
	offerSets := make(map[model.WorkerID]idSet[model.TaskID], len(offers))
	for id, ts := range offers {
		offerSets[id] = newIDSet(ts)
	}
	emptySet := newIDSet[model.TaskID](nil)
	setOf := func(id model.WorkerID) idSet[model.TaskID] {
		if s, ok := offerSets[id]; ok {
			return s
		}
		return emptySet
	}

	check := func(a, b *model.Worker) {
		rep.Checked++
		if measure.Func(a.Skills, b.Skills) < skillThr {
			return
		}
		if policy.Similarity(a.Declared, b.Declared) < attrThr {
			return
		}
		if policy.Similarity(a.Computed, b.Computed) < attrThr {
			return
		}
		overlap := setOf(a.ID).jaccard(setOf(b.ID))
		if overlap >= accessThr {
			return
		}
		rep.Violations = append(rep.Violations, Violation{
			Axiom:    Axiom1WorkerAssignment,
			Subjects: []string{string(a.ID), string(b.ID)},
			Detail: fmt.Sprintf("similar workers saw different tasks: offer overlap %.2f < %.2f (|offers| %d vs %d)",
				overlap, accessThr, len(offers[a.ID]), len(offers[b.ID])),
			Severity: accessThr - overlap,
		})
	}

	if cfg.Exhaustive {
		for i := 0; i < len(workers); i++ {
			for j := i + 1; j < len(workers); j++ {
				check(workers[i], workers[j])
			}
		}
	} else {
		for _, pair := range st.CandidateWorkerPairs() {
			check(byID[pair[0]], byID[pair[1]])
		}
		// Workers with no skills share no index entry; compare them among
		// themselves (they are trivially skill-similar to each other).
		var skillless []*model.Worker
		for _, w := range workers {
			if w.Skills.Count() == 0 {
				skillless = append(skillless, w)
			}
		}
		for i := 0; i < len(skillless); i++ {
			for j := i + 1; j < len(skillless); j++ {
				check(skillless[i], skillless[j])
			}
		}
	}
	sortViolations(rep.Violations)
	return rep
}

// Axiom1FromOffers is a convenience entry point for auditing an assignment
// result directly (before any simulation): it synthesises the TaskOffered
// view from an offers map instead of an event log.
func Axiom1FromOffers(st *store.Store, offers map[model.WorkerID][]model.TaskID, cfg Config) *Report {
	log := eventlog.New()
	for _, w := range st.Workers() {
		for _, t := range offers[w.ID] {
			log.MustAppend(eventlog.Event{Type: eventlog.TaskOffered, Worker: w.ID, Task: t})
		}
	}
	return CheckAxiom1(st, log, cfg)
}
